// E13 — §2's third observation, quantified: "Faults are correlated."
//
// The paper's §3 analysis (and Tables 1-2) assumes independence. This bench measures how far
// the independence-based nines overstate reliability once the §2 correlation mechanisms are
// modeled: cluster-wide common-cause shocks (rollouts, platform CVEs), rack-level failure
// domains, and exchangeable "bad day" drift (beta-binomial). Same marginal per-node failure
// probability in every row — only the correlation structure changes.

#include <algorithm>
#include <cstdio>
#include <string>
#include <memory>

#include "bench/bench_util.h"
#include "src/analysis/placement.h"
#include "src/analysis/reliability.h"
#include "src/quorum/availability.h"

namespace probcon {
namespace {

Probability RaftSafeLiveUnderModel(std::unique_ptr<JointFailureModel> model) {
  const int n = model->n();
  const ReliabilityAnalyzer analyzer(std::move(model));
  return AnalyzeRaft(RaftConfig::Standard(n), analyzer).safe_and_live;
}

void CommonCauseSweep() {
  std::printf("\ncommon-cause shocks, 5 nodes, marginal p per window held at ~1%%:\n");
  bench::Table table({"P(shock)", "P(node dies | shock)", "S&L", "nines"});
  // Baseline: independent.
  {
    const auto sl = RaftSafeLiveUnderModel(
        std::make_unique<IndependentFailureModel>(std::vector<double>(5, 0.01)));
    char nines[16];
    std::snprintf(nines, sizeof(nines), "%.2f", sl.nines());
    table.AddRow({"0 (independent)", "-", FormatPercent(sl), nines});
  }
  for (const double shock : {1e-4, 1e-3, 1e-2}) {
    for (const double hit : {0.5, 0.95}) {
      // Keep the marginal at 1%: base + (1-base)*shock*hit = 0.01.
      const double base = (0.01 - shock * hit) / (1.0 - shock * hit);
      const auto sl = RaftSafeLiveUnderModel(std::make_unique<CommonCauseFailureModel>(
          std::vector<double>(5, base), shock, std::vector<double>(5, hit)));
      char shock_text[16];
      char hit_text[16];
      char nines[16];
      std::snprintf(shock_text, sizeof(shock_text), "%g", shock);
      std::snprintf(hit_text, sizeof(hit_text), "%g", hit);
      std::snprintf(nines, sizeof(nines), "%.2f", sl.nines());
      table.AddRow({shock_text, hit_text, FormatPercent(sl), nines});
    }
  }
  table.Print();
}

void FailureDomainSweep() {
  std::printf("\nrack placement, 6 nodes (majority quorum 4), node base p=0.5%%, rack "
              "p=1%%:\n");
  bench::Table table({"placement", "S&L", "nines"});
  const std::vector<double> base(6, 0.005);
  const struct {
    const char* label;
    std::vector<int> domain_of;
    std::vector<double> domain_p;
  } placements[] = {
      {"6 racks (fully spread)", {0, 1, 2, 3, 4, 5}, std::vector<double>(6, 0.01)},
      {"3 racks x 2 nodes", {0, 0, 1, 1, 2, 2}, std::vector<double>(3, 0.01)},
      {"2 racks x 3 nodes", {0, 0, 0, 1, 1, 1}, std::vector<double>(2, 0.01)},
      {"1 rack (all together)", {0, 0, 0, 0, 0, 0}, std::vector<double>(1, 0.01)},
  };
  for (const auto& placement : placements) {
    const auto sl = RaftSafeLiveUnderModel(std::make_unique<FailureDomainModel>(
        base, placement.domain_of, placement.domain_p));
    char nines[16];
    std::snprintf(nines, sizeof(nines), "%.2f", sl.nines());
    table.AddRow({placement.label, FormatPercent(sl), nines});
  }
  table.Print();
}

void PlacementOptimizer() {
  std::printf("\nplacement optimizer (5 nodes, base p=0.2%%, racks @1%% event rate):\n");
  const std::vector<double> base(5, 0.002);
  bench::Table table({"racks available", "optimizer's split", "S&L", "nines"});
  for (int racks = 1; racks <= 5; ++racks) {
    const auto best = OptimizeRackPlacement(base, std::vector<double>(racks, 0.01));
    std::vector<int> counts(racks, 0);
    for (const int rack : best.rack_of) {
      ++counts[rack];
    }
    std::sort(counts.begin(), counts.end(), std::greater<int>());
    std::string split;
    for (const int count : counts) {
      if (count > 0) {
        split += (split.empty() ? "" : "-") + std::to_string(count);
      }
    }
    char nines[16];
    std::snprintf(nines, sizeof(nines), "%.2f", best.safe_and_live.nines());
    table.AddRow({std::to_string(racks), split, FormatPercent(best.safe_and_live), nines});
  }
  table.Print();
  std::printf(
      "  non-obvious: with TWO racks the optimizer PACKS (no split survives the bigger\n"
      "  rack's loss, so spreading only adds exposure); three racks unlock the 2-2-1 split.\n");
}

void BetaBinomialSweep() {
  std::printf("\nexchangeable drift (beta-binomial), 5 nodes, marginal 1%%:\n");
  bench::Table table({"pairwise correlation", "S&L", "nines"});
  {
    const auto sl = RaftSafeLiveUnderModel(
        std::make_unique<IndependentFailureModel>(std::vector<double>(5, 0.01)));
    char nines[16];
    std::snprintf(nines, sizeof(nines), "%.2f", sl.nines());
    table.AddRow({"0 (independent)", FormatPercent(sl), nines});
  }
  for (const double rho : {0.01, 0.05, 0.2, 0.5}) {
    // Marginal alpha/(alpha+beta) = 0.01, correlation 1/(alpha+beta+1) = rho.
    const double total = 1.0 / rho - 1.0;
    const double alpha = 0.01 * total;
    const double beta = total - alpha;
    const auto sl =
        RaftSafeLiveUnderModel(std::make_unique<BetaBinomialFailureModel>(5, alpha, beta));
    char rho_text[16];
    char nines[16];
    std::snprintf(rho_text, sizeof(rho_text), "%g", rho);
    std::snprintf(nines, sizeof(nines), "%.2f", sl.nines());
    table.AddRow({rho_text, FormatPercent(sl), nines});
  }
  table.Print();
  std::printf(
      "\nshape check: identical marginals, collapsing nines — the independence assumption in\n"
      "the paper's own §3 analysis is load-bearing, exactly as its §2/§4 warn.\n");
}

}  // namespace
}  // namespace probcon

int main() {
  probcon::bench::PrintBanner("E13", "correlation destroys independence-based nines");
  probcon::CommonCauseSweep();
  probcon::FailureDomainSweep();
  probcon::PlacementOptimizer();
  probcon::BetaBinomialSweep();
  return 0;
}
