// ES1 — many-connection load generator for the probcon::serve query daemon.
//
// Drives a real TcpServer (the multi-reactor epoll transport, in-process on 127.0.0.1)
// from an epoll-based generator that scales from 1 to 1024 concurrent connections. Each
// connection runs a closed loop with a pipelining window: up to `window` (8) requests of
// that connection are in flight at once, approximating an open loop at high connection
// counts. The conns=1 cells instead run the classic synchronous client
// (ServeClient::Query, one request outstanding, full envelope parse per response) — the
// pre-pipelining methodology — so the scaling cells compare against what a real single
// client used to achieve. Four phases per connection count:
//
//   cold       every request a distinct table2 key (all misses; engine-bound)
//   warm       a fixed key set, fully pre-warmed (all hits; transport-bound)
//   mixed      90% warm keys / 10% fresh cold keys
//   overload   distinct ~50k-trial montecarlo queries; at 16+ connections the pipelined
//              inflight exceeds the server's admission cap, so shedding kicks in and the
//              generator counts OK vs RESOURCE_EXHAUSTED responses
//
// at connection counts 1 / 16 / 256 / 1024 — 16 cells — plus a pair of resilience cells:
// the warm workload driven by the ResilientClient once through a fault-free ChaosProxy
// ("resilient_clean") and once through the same proxy armed with a deterministic flaky-
// network plan of seeded mid-stream closes, an RST, and 2ms stalls ("resilient_flaky").
// Retries and reconnects must absorb the faults: at full scale the flaky goodput (OK
// responses per second) is CHECKed >= 90% of clean, and both cells report retry counts
// and latency percentiles so the tail cost of a flaky network is visible in the artifact.
//
// The scaling criterion (warm aggregate throughput at 256 connections >= 3x the
// single-connection warm baseline) is CHECKed, as are:
//
//   * per-phase books: ok + shed == requests issued, zero transport/server errors
//   * server/client agreement: the serve.requests and serve.shed counter deltas across
//     each phase equal the generator's own books (+1 for the closing stats query)
//   * byte-identity: every warm response's result is byte-identical to the pre-warm
//     reference for its key (pipelining and sharding must not change answers)
//
// Emits BENCH_serve.json (`--json <path>`) with per-cell qps and client-side
// p50/p90/p95/p99/max latency. `--scale N` divides per-cell request totals by N and
// `--max-connections N` skips cells above N connections (CI smoke under sanitizers);
// `--reactors N` overrides the transport's shard count (0 = auto).
//
// Latencies here are wall-clock (steady_clock; bench/serve_load.cc is on the lint
// monotonic-clock allowlist). The request mix and seeds are fixed, so the WORK is
// deterministic even though the timings are not.

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <arpa/inet.h>
#include <fcntl.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/check.h"
#include "src/common/json.h"
#include "src/obs/metrics.h"
#include "src/serve/client.h"
#include "src/serve/framing.h"
#include "src/serve/server.h"
#include "src/serve/spec.h"
#include "src/serve/transport.h"
#include "src/wirechaos/proxy.h"
#include "src/wirechaos/wire_plan.h"

namespace probcon {
namespace {

// Request ids encode (connection, sequence) so a completion routes back to its slot:
// id = conn * kIdStride + seq + 1. Ids stay unique per phase; phases reconnect.
constexpr uint64_t kIdStride = 1u << 20;

// ---------------------------------------------------------------------------
// Workload definition

// The fixed warm key set: the queries a deployment-review dashboard would refresh.
struct Query {
  std::string kind;
  Json params;
};

std::vector<Query> WarmQueries() {
  std::vector<Query> queries;
  for (const int n : {4, 5, 7, 8}) {
    Json params = Json::Object();
    params.Set("n", Json::Number(n));
    queries.push_back({"table1", std::move(params)});
  }
  for (const int n : {3, 5, 7, 9}) {
    for (const double p : {0.01, 0.02, 0.04, 0.08}) {
      Json fault = Json::Object();
      fault.Set("n", Json::Number(n));
      fault.Set("p", Json::Number(p));
      Json params = Json::Object();
      params.Set("fault", std::move(fault));
      queries.push_back({"table2", std::move(params)});
    }
  }
  for (const int n : {5, 7, 9}) {
    Json fault = Json::Object();
    fault.Set("n", Json::Number(n));
    fault.Set("p", Json::Number(0.02));
    Json params = Json::Object();
    params.Set("protocol", Json::String("raft"));
    params.Set("fault", std::move(fault));
    params.Set("target_live", Json::Number(0.999));
    queries.push_back({"quorum_size", std::move(params)});
  }
  return queries;
}

// Fresh cold keys: distinct table2 cells, unique across the whole run so no phase ever
// re-hits another phase's key.
uint64_t g_cold_counter = 0;

Query ColdQuery() {
  const uint64_t c = ++g_cold_counter;
  Json fault = Json::Object();
  fault.Set("n", Json::Number(3 + 2 * static_cast<double>(c % 4)));
  fault.Set("p", Json::Number(1e-4 + 1e-7 * static_cast<double>(c)));
  Json params = Json::Object();
  params.Set("fault", std::move(fault));
  return {"table2", std::move(params)};
}

// Overload keys: distinct montecarlo estimates, expensive enough that pipelined inflight
// accumulates past the server's admission cap.
uint64_t g_seed_counter = 0;

Query OverloadQuery() {
  Json fault = Json::Object();
  fault.Set("n", Json::Number(7));
  fault.Set("p", Json::Number(0.02));
  Json params = Json::Object();
  params.Set("protocol", Json::String("raft"));
  params.Set("fault", std::move(fault));
  params.Set("trials", Json::Number(50000));
  params.Set("seed", Json::Number(static_cast<double>(++g_seed_counter)));
  return {"montecarlo", std::move(params)};
}

// ---------------------------------------------------------------------------
// The epoll generator

struct GenConn {
  int fd = -1;
  uint64_t issued = 0;
  uint64_t completed = 0;
  uint64_t target = 0;
  uint32_t interest = 0;
  serve::FrameDecoder decoder;
  std::string outbound;
  size_t offset = 0;
  std::map<uint64_t, std::chrono::steady_clock::time_point> sent_at;
};

// A scanned view of a response envelope. The generator deliberately does NOT parse the
// whole response JSON per request — at hundreds of thousands of responses the parse would
// dominate the client side of a shared-core measurement. Envelopes are serialized
// deterministically ({"v": 1, "id": N, "status": "...", ...}), so scanning for the two
// fixed fields is exact.
struct WireView {
  uint64_t id = 0;
  std::string_view status;
  size_t id_begin = 0;  // Digit span of the id, for masking in identity checks.
  size_t id_end = 0;
};

WireView ScanEnvelope(const std::string& text) {
  WireView view;
  const size_t id_key = text.find("\"id\": ");
  CHECK(id_key != std::string::npos) << "response lacks id: " << text;
  view.id_begin = id_key + 6;
  size_t pos = view.id_begin;
  while (pos < text.size() && text[pos] >= '0' && text[pos] <= '9') {
    view.id = view.id * 10 + static_cast<uint64_t>(text[pos] - '0');
    ++pos;
  }
  view.id_end = pos;
  CHECK(view.id_end > view.id_begin) << "response id is not numeric: " << text;
  const size_t status_key = text.find("\"status\": \"", pos);
  CHECK(status_key != std::string::npos) << "response lacks status: " << text;
  const size_t status_begin = status_key + 11;
  const size_t status_end = text.find('"', status_begin);
  CHECK(status_end != std::string::npos);
  view.status = std::string_view(text).substr(status_begin, status_end - status_begin);
  return view;
}

// The envelope with its id digits excised (ids differ in digit count, so the span is
// removed, not overwritten): for a memoized key, every response must be identical except
// for the echoed request id.
std::string MaskId(const std::string& text, const WireView& view) {
  return text.substr(0, view.id_begin) + text.substr(view.id_end);
}

struct PhaseBooks {
  double seconds = 0.0;
  uint64_t ok = 0;
  uint64_t shed = 0;
  uint64_t errors = 0;
  std::vector<double> latencies_us;  // Sorted on return.

  uint64_t total() const { return ok + shed + errors; }
  double Quantile(double q) const {
    CHECK(!latencies_us.empty());
    const size_t index =
        static_cast<size_t>(q * static_cast<double>(latencies_us.size() - 1));
    return latencies_us[index];
  }
  double Qps() const {
    return seconds > 0.0 ? static_cast<double>(latencies_us.size()) / seconds : 0.0;
  }
};

int ConnectBlocking(uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  CHECK(fd >= 0) << "socket(): " << std::strerror(errno);
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  address.sin_port = htons(port);
  CHECK(::connect(fd, reinterpret_cast<const sockaddr*>(&address), sizeof(address)) == 0)
      << "connect(): " << std::strerror(errno);
  const int flags = ::fcntl(fd, F_GETFL, 0);
  CHECK(flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0);
  const int enable = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &enable, sizeof(enable));
  return fd;
}

// The sequential baseline: ONE connection driven by the classic synchronous client
// (ServeClient::Query — envelope built from a Json tree, blocking round trip, full
// response parse, one request outstanding). This is exactly the pre-pipelining
// measurement methodology, so the scaling cells' qps is comparable against what a real
// single client used to get.
PhaseBooks RunSequentialPhase(uint16_t port, uint64_t total_requests,
                              const std::function<Query(size_t, uint64_t)>& make_query) {
  auto channel = serve::TcpChannel::Connect(port);
  CHECK(channel.ok()) << channel.status().ToString();
  serve::ServeClient client(std::move(*channel));
  PhaseBooks books;
  books.latencies_us.reserve(total_requests);
  const auto phase_start = std::chrono::steady_clock::now();
  for (uint64_t seq = 0; seq < total_requests; ++seq) {
    const Query query = make_query(0, seq);
    const auto start = std::chrono::steady_clock::now();
    Result<serve::ResponseEnvelope> envelope = client.Query(query.kind, query.params);
    const auto end = std::chrono::steady_clock::now();
    CHECK(envelope.ok()) << envelope.status().ToString();
    books.latencies_us.push_back(
        std::chrono::duration<double, std::micro>(end - start).count());
    if (envelope->status.ok()) {
      ++books.ok;
    } else if (envelope->status.code() == StatusCode::kResourceExhausted) {
      ++books.shed;
    } else {
      ++books.errors;
      std::fprintf(stderr, "unexpected response status: %s\n",
                   envelope->status.ToString().c_str());
    }
  }
  books.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - phase_start).count();
  std::sort(books.latencies_us.begin(), books.latencies_us.end());
  return books;
}

// The resilience cells: the warm key set driven synchronously through a ResilientClient.
// Every response must be a definite OK — injected transport faults are absorbed by the
// retry loop, never surfaced — so `ok` here is goodput in the strict sense.
PhaseBooks RunResilientPhase(serve::ResilientClient& client, uint64_t total_requests,
                             const std::vector<Query>& queries) {
  PhaseBooks books;
  books.latencies_us.reserve(total_requests);
  const auto phase_start = std::chrono::steady_clock::now();
  for (uint64_t seq = 0; seq < total_requests; ++seq) {
    const Query& query = queries[seq % queries.size()];
    const auto start = std::chrono::steady_clock::now();
    Result<serve::ResponseEnvelope> envelope = client.Query(query.kind, query.params);
    const auto end = std::chrono::steady_clock::now();
    CHECK(envelope.ok()) << "resilient query failed past the retry policy: "
                         << envelope.status().ToString();
    CHECK(envelope->status.ok()) << envelope->status.ToString();
    ++books.ok;
    books.latencies_us.push_back(
        std::chrono::duration<double, std::micro>(end - start).count());
  }
  books.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - phase_start).count();
  std::sort(books.latencies_us.begin(), books.latencies_us.end());
  return books;
}

// The deterministic flaky-network plan: mid-stream closes on the first four proxied
// connections (each kill forces a reconnect, so the client walks the accept order), one
// RST for variety, and 2ms response stalls sprinkled across the surviving streams. Byte
// offsets land mid-response at warm-phase response sizes, so every kill is a mid-frame
// loss of an already-answered request — the idempotent-safe retry case.
wirechaos::WirePlan FlakyNetworkPlan() {
  wirechaos::WirePlan plan;
  plan.seed = 20260808;
  auto kill = [&plan](int conn, wirechaos::WireFaultKind kind, uint64_t after_bytes) {
    wirechaos::WireFault fault;
    fault.kind = kind;
    fault.conn_index = conn;
    fault.direction = wirechaos::WireDirection::kServerToClient;
    fault.after_bytes = after_bytes;
    plan.faults.push_back(fault);
  };
  auto stall = [&plan](int conn, uint64_t after_bytes) {
    wirechaos::WireFault fault;
    fault.kind = wirechaos::WireFaultKind::kStall;
    fault.conn_index = conn;
    fault.direction = wirechaos::WireDirection::kServerToClient;
    fault.after_bytes = after_bytes;
    fault.stall_ms = 2.0;
    plan.faults.push_back(fault);
  };
  stall(0, 20000);
  kill(0, wirechaos::WireFaultKind::kCloseAfter, 50000);
  kill(1, wirechaos::WireFaultKind::kCloseAfter, 60000);
  stall(2, 25000);
  kill(2, wirechaos::WireFaultKind::kCloseAfter, 70000);
  kill(3, wirechaos::WireFaultKind::kAbortAfter, 80000);
  stall(4, 30000);
  return plan;
}

// A request-payload template: serialized envelope split at the id digits, so issuing a
// request is two string appends instead of a Json-tree build plus a full serialization.
// The generator must stay cheaper than the server on a shared core, or the measurement
// caps at the generator's own throughput.
struct PayloadTemplate {
  std::string prefix;  // Everything before the id digits.
  std::string suffix;  // Everything after.

  static PayloadTemplate For(const Query& query) {
    const std::string text =
        serve::RequestEnvelope::Serialize(0, query.kind, query.params, 0.0, false);
    const size_t id_pos = text.find("\"id\": 0");
    CHECK(id_pos != std::string::npos);
    return {text.substr(0, id_pos + 6), text.substr(id_pos + 7)};
  }
  std::string Render(uint64_t id) const {
    std::string out;
    out.reserve(prefix.size() + suffix.size() + 12);
    out += prefix;
    out += std::to_string(id);
    out += suffix;
    return out;
  }
};

// Runs one phase: `connections` sockets, each issuing its share of `total_requests` with
// at most `window` in flight, payload text from `make_payload(conn, seq, id)`. Each
// response is scanned, matched to its request by id, and fed to `on_response` (may be
// null).
PhaseBooks RunPhase(uint16_t port, size_t connections, uint64_t total_requests, int window,
                    const std::function<std::string(size_t, uint64_t, uint64_t)>& make_payload,
                    const std::function<void(const WireView&, const std::string&)>&
                        on_response) {
  PhaseBooks books;
  books.latencies_us.reserve(total_requests);

  std::vector<GenConn> conns(connections);
  for (size_t i = 0; i < connections; ++i) {
    conns[i].fd = ConnectBlocking(port);
    conns[i].target = total_requests / connections +
                      (i < total_requests % connections ? 1 : 0);
  }
  const int epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
  CHECK(epoll_fd >= 0);
  for (size_t i = 0; i < connections; ++i) {
    epoll_event event{};
    event.events = EPOLLIN;
    event.data.u64 = i;
    CHECK(::epoll_ctl(epoll_fd, EPOLL_CTL_ADD, conns[i].fd, &event) == 0);
    conns[i].interest = EPOLLIN;
  }

  uint64_t completed_total = 0;
  const auto phase_start = std::chrono::steady_clock::now();

  auto refill = [&](size_t index) {
    GenConn& conn = conns[index];
    while (conn.issued < conn.target &&
           conn.issued - conn.completed < static_cast<uint64_t>(window)) {
      const uint64_t id = index * kIdStride + conn.issued + 1;
      const std::string payload = make_payload(index, conn.issued, id);
      conn.sent_at.emplace(id, std::chrono::steady_clock::now());
      // Frame the payload straight into the outbound buffer — no EncodeFrame temporary.
      const uint32_t length = static_cast<uint32_t>(payload.size());
      char header[8] = {'P', 'C', 'S', 'V',
                        static_cast<char>((length >> 24) & 0xff),
                        static_cast<char>((length >> 16) & 0xff),
                        static_cast<char>((length >> 8) & 0xff),
                        static_cast<char>(length & 0xff)};
      conn.outbound.append(header, sizeof(header));
      conn.outbound += payload;
      ++conn.issued;
    }
  };
  auto flush = [&](size_t index) {
    GenConn& conn = conns[index];
    while (conn.offset < conn.outbound.size()) {
      const ssize_t sent = ::send(conn.fd, conn.outbound.data() + conn.offset,
                                  conn.outbound.size() - conn.offset, MSG_NOSIGNAL);
      if (sent > 0) {
        conn.offset += static_cast<size_t>(sent);
        continue;
      }
      if (sent < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      if (sent < 0 && errno == EINTR) continue;
      CHECK(false) << "send(): " << std::strerror(errno);
    }
    if (conn.offset == conn.outbound.size()) {
      conn.outbound.clear();
      conn.offset = 0;
    }
  };
  auto update_interest = [&](size_t index) {
    GenConn& conn = conns[index];
    uint32_t want = conn.completed < conn.target ? static_cast<uint32_t>(EPOLLIN) : 0u;
    if (conn.offset < conn.outbound.size()) want |= EPOLLOUT;
    if (want != conn.interest) {
      epoll_event event{};
      event.events = want;
      event.data.u64 = index;
      CHECK(::epoll_ctl(epoll_fd, EPOLL_CTL_MOD, conn.fd, &event) == 0);
      conn.interest = want;
    }
  };

  for (size_t i = 0; i < connections; ++i) {
    refill(i);
    flush(i);
    update_interest(i);
  }

  char buffer[64 * 1024];
  epoll_event events[128];
  while (completed_total < total_requests) {
    const int ready = ::epoll_wait(epoll_fd, events, 128, -1);
    if (ready < 0) {
      CHECK(errno == EINTR) << "epoll_wait(): " << std::strerror(errno);
      continue;
    }
    for (int e = 0; e < ready; ++e) {
      const size_t index = static_cast<size_t>(events[e].data.u64);
      GenConn& conn = conns[index];
      if ((events[e].events & EPOLLOUT) != 0) {
        flush(index);
      }
      if ((events[e].events & (EPOLLIN | EPOLLHUP | EPOLLERR)) != 0) {
        while (true) {
          const ssize_t received = ::recv(conn.fd, buffer, sizeof(buffer), 0);
          if (received < 0) {
            if (errno == EAGAIN || errno == EWOULDBLOCK) break;
            if (errno == EINTR) continue;
            CHECK(false) << "recv(): " << std::strerror(errno);
          }
          CHECK(received != 0) << "server closed connection mid-phase (conn " << index
                               << ", " << conn.completed << "/" << conn.target << ")";
          conn.decoder.Feed(std::string_view(buffer, static_cast<size_t>(received)));
          while (true) {
            Result<std::optional<std::string>> next = conn.decoder.Next();
            CHECK(next.ok()) << next.status().ToString();
            if (!next->has_value()) break;
            const auto now = std::chrono::steady_clock::now();
            const std::string& text = **next;
            const WireView view = ScanEnvelope(text);
            const auto sent_it = conn.sent_at.find(view.id);
            CHECK(sent_it != conn.sent_at.end())
                << "response id " << view.id << " matches no in-flight request";
            books.latencies_us.push_back(
                std::chrono::duration<double, std::micro>(now - sent_it->second).count());
            conn.sent_at.erase(sent_it);
            if (view.status == "OK") {
              ++books.ok;
            } else if (view.status == "RESOURCE_EXHAUSTED") {
              ++books.shed;
            } else {
              ++books.errors;
              std::fprintf(stderr, "unexpected response status: %s\n", text.c_str());
            }
            if (on_response != nullptr) {
              on_response(view, text);
            }
            ++conn.completed;
            ++completed_total;
          }
          refill(index);
          flush(index);
        }
      }
      update_interest(index);
    }
  }
  books.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - phase_start).count();

  ::close(epoll_fd);
  for (GenConn& conn : conns) {
    ::close(conn.fd);
  }
  std::sort(books.latencies_us.begin(), books.latencies_us.end());
  return books;
}

// ---------------------------------------------------------------------------
// Reporting and cross-checks

void AddCell(bench::Table& table, bench::JsonReport& report, const std::string& name,
             size_t connections, const PhaseBooks& books) {
  auto fmt = [](double v) {
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.1f", v);
    return std::string(buffer);
  };
  table.AddRow({name, std::to_string(connections), std::to_string(books.total()),
                std::to_string(books.shed), fmt(books.Qps()), fmt(books.Quantile(0.5)),
                fmt(books.Quantile(0.9)), fmt(books.Quantile(0.99)),
                fmt(books.latencies_us.back())});
  const std::string cell = name + "_c" + std::to_string(connections);
  report.AddValue(cell + ".requests", static_cast<double>(books.total()));
  report.AddValue(cell + ".ok", static_cast<double>(books.ok));
  report.AddValue(cell + ".shed", static_cast<double>(books.shed));
  report.AddValue(cell + ".qps", books.Qps());
  report.AddValue(cell + ".p50_us", books.Quantile(0.5));
  report.AddValue(cell + ".p90_us", books.Quantile(0.9));
  report.AddValue(cell + ".p95_us", books.Quantile(0.95));
  report.AddValue(cell + ".p99_us", books.Quantile(0.99));
  report.AddValue(cell + ".max_us", books.latencies_us.back());
}

// Reads a counter out of a `stats` response.
uint64_t StatsCounter(const serve::ResponseEnvelope& stats, const std::string& name) {
  const Json* counters = stats.result.Find("metrics");
  counters = counters == nullptr ? nullptr : counters->Find("counters");
  const Json* value = counters == nullptr ? nullptr : counters->Find(name);
  CHECK(value != nullptr) << "stats snapshot lacks counter " << name;
  return static_cast<uint64_t>(value->NumberValue());
}

long long FlagValue(int argc, char** argv, const char* name, long long fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) {
      return std::atoll(argv[i + 1]);
    }
  }
  return fallback;
}

int Main(int argc, char** argv) {
  bench::PrintBanner("ES1", "serve: multi-reactor daemon under many-connection load");

  const long long scale = std::max(1LL, FlagValue(argc, argv, "--scale", 1));
  const long long max_connections = FlagValue(argc, argv, "--max-connections", 1024);
  const long long reactors = FlagValue(argc, argv, "--reactors", 0);

  MetricsRegistry metrics;
  serve::ServerOptions options;
  serve::QueryServer server(options, &metrics);
  serve::TcpServerOptions transport_options;
  transport_options.reactors = static_cast<int>(reactors);
  transport_options.listen_backlog = 2048;
  serve::TcpServer transport(server, &metrics, transport_options);
  const Status started = transport.Start(0);
  CHECK(started.ok()) << started.ToString();
  const uint16_t port = transport.port();
  std::printf("transport: %d reactor shard(s), %d cache shard(s), port %u\n\n",
              transport.reactor_count(), server.cache().shard_count(), port);

  // Pre-warm the fixed key set over a pipelined batch so every warm-phase request is a
  // cache hit from the first response on.
  const std::vector<Query> warm_queries = WarmQueries();
  {
    auto channel = serve::TcpChannel::Connect(port);
    CHECK(channel.ok()) << channel.status().ToString();
    serve::ServeClient client(std::move(*channel));
    std::vector<serve::ServeClient::BatchItem> items;
    items.reserve(warm_queries.size());
    for (const Query& query : warm_queries) {
      items.push_back({query.kind, query.params, 0.0, false});
    }
    auto responses = client.QueryBatch(items);
    CHECK(responses.ok()) << responses.status().ToString();
    for (size_t i = 0; i < warm_queries.size(); ++i) {
      CHECK((*responses)[i].status.ok()) << (*responses)[i].status.ToString();
    }
  }
  // Per-key reference envelope (id digits masked), captured from the first warm response
  // for each key and held across ALL cells: every later warm response for the key must be
  // byte-identical — pipelining, reactor sharding, and cache sharding must not change a
  // single byte of a memoized answer.
  std::vector<std::string> warm_masked_reference(warm_queries.size());
  std::vector<PayloadTemplate> warm_templates;
  warm_templates.reserve(warm_queries.size());
  for (const Query& query : warm_queries) {
    warm_templates.push_back(PayloadTemplate::For(query));
  }

  // A dedicated stats connection, used between phases for the server/client cross-check.
  auto stats_channel = serve::TcpChannel::Connect(port);
  CHECK(stats_channel.ok()) << stats_channel.status().ToString();
  serve::ServeClient stats_client(std::move(*stats_channel));
  auto query_stats = [&stats_client]() -> serve::ResponseEnvelope {
    auto stats = stats_client.Query("stats", Json::Object());
    CHECK(stats.ok()) << stats.status().ToString();
    CHECK(stats->status.ok()) << stats->status.ToString();
    return *std::move(stats);
  };
  serve::ResponseEnvelope baseline = query_stats();
  uint64_t last_requests = StatsCounter(baseline, "serve.requests");
  uint64_t last_shed = StatsCounter(baseline, "serve.shed");

  bench::Table table({"phase", "conns", "requests", "shed", "qps", "p50_us", "p90_us",
                      "p99_us", "max_us"});
  bench::JsonReport report;
  double warm_qps_c1 = 0.0;
  double warm_qps_c256 = 0.0;

  for (const size_t connections : {1u, 16u, 256u, 1024u}) {
    if (static_cast<long long>(connections) > max_connections) continue;
    // Scaling cells pipeline 8 deep per connection; the conns=1 cells instead run the
    // classic synchronous client as the baseline (see RunSequentialPhase).
    const int window = 8;
    const uint64_t cold_total =
        std::max<uint64_t>(connections, std::max<uint64_t>(1, 512 / scale));
    const uint64_t warm_total =
        std::max<uint64_t>(connections, std::max<uint64_t>(1, 8192 / scale));
    const uint64_t mixed_total =
        std::max<uint64_t>(connections, std::max<uint64_t>(1, 2048 / scale));
    const uint64_t overload_total =
        std::max<uint64_t>(connections, std::max<uint64_t>(1, 256 / scale));

    struct Cell {
      const char* name;
      uint64_t total;
      std::function<Query(size_t, uint64_t)> make_query;  // Sequential baseline cells.
      std::function<std::string(size_t, uint64_t, uint64_t)> make_payload;  // Generator.
      std::function<void(const WireView&, const std::string&)> on_response;
    };
    const size_t warm_count = warm_queries.size();
    const auto warm_query = [&warm_queries, warm_count](size_t, uint64_t seq) {
      const Query& query = warm_queries[seq % warm_count];
      return Query{query.kind, query.params};
    };
    const auto warm_payload = [&warm_templates, warm_count](size_t, uint64_t seq,
                                                            uint64_t id) {
      return warm_templates[seq % warm_count].Render(id);
    };
    const auto serialize_query = [](const Query& query, uint64_t id) {
      return serve::RequestEnvelope::Serialize(id, query.kind, query.params, 0.0, false);
    };
    const auto warm_check = [&warm_masked_reference, warm_count](
                                const WireView& view, const std::string& text) {
      CHECK(text.find("\"cached\": true") != std::string::npos)
          << "warm request missed the cache: " << text;
      const size_t key = (view.id % kIdStride - 1) % warm_count;
      std::string masked = MaskId(text, view);
      if (warm_masked_reference[key].empty()) {
        warm_masked_reference[key] = std::move(masked);
      } else {
        CHECK(masked == warm_masked_reference[key])
            << "warm response for key " << key
            << " is not byte-identical to the reference";
      }
    };
    const std::vector<Cell> cells = {
        {"cold", cold_total, [](size_t, uint64_t) { return ColdQuery(); },
         [&serialize_query](size_t, uint64_t, uint64_t id) {
           return serialize_query(ColdQuery(), id);
         },
         nullptr},
        {"warm", warm_total, warm_query, warm_payload, warm_check},
        {"mixed", mixed_total,
         [&warm_query](size_t conn, uint64_t seq) {
           return seq % 10 == 0 ? ColdQuery() : warm_query(conn, seq);
         },
         [&warm_payload, &serialize_query](size_t conn, uint64_t seq, uint64_t id) {
           return seq % 10 == 0 ? serialize_query(ColdQuery(), id)
                                : warm_payload(conn, seq, id);
         },
         nullptr},
        {"overload", overload_total, [](size_t, uint64_t) { return OverloadQuery(); },
         [&serialize_query](size_t, uint64_t, uint64_t id) {
           return serialize_query(OverloadQuery(), id);
         },
         nullptr},
    };

    for (const Cell& cell : cells) {
      const PhaseBooks books =
          connections == 1
              ? RunSequentialPhase(port, cell.total, cell.make_query)
              : RunPhase(port, connections, cell.total, window, cell.make_payload,
                         cell.on_response);
      CHECK(books.total() == cell.total)
          << cell.name << "_c" << connections << ": issued " << cell.total << ", answered "
          << books.total();
      CHECK(books.errors == 0)
          << cell.name << "_c" << connections << ": " << books.errors
          << " responses with unexpected status";

      // Server-side books must agree with ours: the serve.requests delta since the last
      // stats query is this cell's requests plus the closing stats query itself, and the
      // serve.shed delta is exactly the rejects we counted.
      serve::ResponseEnvelope stats = query_stats();
      const uint64_t requests_now = StatsCounter(stats, "serve.requests");
      const uint64_t shed_now = StatsCounter(stats, "serve.shed");
      CHECK(requests_now - last_requests == cell.total + 1)
          << cell.name << "_c" << connections << ": server counted "
          << requests_now - last_requests - 1 << " requests, client issued " << cell.total;
      CHECK(shed_now - last_shed == books.shed)
          << cell.name << "_c" << connections << ": server shed " << shed_now - last_shed
          << ", client saw " << books.shed;
      last_requests = requests_now;
      last_shed = shed_now;

      AddCell(table, report, cell.name, connections, books);
      if (std::strcmp(cell.name, "warm") == 0) {
        if (connections == 1) warm_qps_c1 = books.Qps();
        if (connections == 256) warm_qps_c256 = books.Qps();
      }
    }
  }

  // Resilience cells: the warm workload through a ChaosProxy, clean vs flaky. The clean
  // cell also runs through a (fault-free) proxy so the ratio isolates the cost of the
  // injected faults rather than the relay hop itself.
  // Long enough to amortize the plan's fixed fault cost (stalls + backoff sleeps are a
  // constant few ms) so the goodput ratio measures steady-state retry overhead, not noise.
  const uint64_t resilient_total = std::max<uint64_t>(1, 16384 / scale);
  serve::RetryOptions retry_options;
  retry_options.max_attempts = 4;
  retry_options.initial_backoff_ms = 0.2;
  retry_options.max_backoff_ms = 1.0;
  retry_options.seed = 0xF1A6;
  retry_options.attempt_timeout_ms = 2000.0;
  PhaseBooks clean_books;
  {
    wirechaos::ChaosProxy proxy(port, wirechaos::WirePlan{});
    const Status proxy_started = proxy.Start();
    CHECK(proxy_started.ok()) << proxy_started.ToString();
    serve::ResilientClient client(
        serve::ResilientClient::TcpFactory(proxy.port(),
                                           retry_options.attempt_timeout_ms),
        retry_options);
    clean_books = RunResilientPhase(client, resilient_total, warm_queries);
    CHECK(client.retries() == 0)
        << "the fault-free proxy should need no retries, saw " << client.retries();
    AddCell(table, report, "resilient_clean", 1, clean_books);
  }
  PhaseBooks flaky_books;
  uint64_t flaky_retries = 0;
  uint64_t flaky_faults_fired = 0;
  {
    const wirechaos::WirePlan plan = FlakyNetworkPlan();
    wirechaos::ChaosProxy proxy(port, plan);
    const Status proxy_started = proxy.Start();
    CHECK(proxy_started.ok()) << proxy_started.ToString();
    serve::ResilientClient client(
        serve::ResilientClient::TcpFactory(proxy.port(),
                                           retry_options.attempt_timeout_ms),
        retry_options);
    flaky_books = RunResilientPhase(client, resilient_total, warm_queries);
    flaky_retries = client.retries();
    flaky_faults_fired = proxy.counters().faults_fired;
    AddCell(table, report, "resilient_flaky", 1, flaky_books);
    if (scale == 1) {
      // At full scale the streams are long enough that every planned fault fires; a
      // shrunken smoke run may finish before the later offsets arm.
      CHECK(flaky_faults_fired == plan.faults.size())
          << "only " << flaky_faults_fired << " of " << plan.faults.size()
          << " planned faults fired";
      CHECK(flaky_retries >= 4) << "four connection kills should force >= 4 retries, saw "
                                << flaky_retries;
    }
  }
  const double goodput_ratio =
      clean_books.Qps() > 0.0 ? flaky_books.Qps() / clean_books.Qps() : 0.0;
  std::printf("flaky goodput: %.1f qps / %.1f qps clean = %.1f%% (%llu retries, "
              "%llu faults fired)\n",
              flaky_books.Qps(), clean_books.Qps(), 100.0 * goodput_ratio,
              static_cast<unsigned long long>(flaky_retries),
              static_cast<unsigned long long>(flaky_faults_fired));
  report.AddValue("flaky.goodput_ratio", goodput_ratio);
  report.AddValue("flaky.retries", static_cast<double>(flaky_retries));
  report.AddValue("flaky.faults_fired", static_cast<double>(flaky_faults_fired));
  if (scale == 1) {
    CHECK(goodput_ratio >= 0.9)
        << "retries must absorb the flaky network: goodput fell to "
        << 100.0 * goodput_ratio << "% of clean";
  }

  table.Print();
  report.AddTable("serve_load", table);
  report.AddValue("transport.reactors", transport.reactor_count());
  report.AddValue("cache.shards", server.cache().shard_count());

  const auto cache = server.cache().snapshot();
  std::printf("\ncache: %llu hits, %llu misses, %llu entries, %llu coalesced\n",
              static_cast<unsigned long long>(cache.hits),
              static_cast<unsigned long long>(cache.misses),
              static_cast<unsigned long long>(cache.entry_count),
              static_cast<unsigned long long>(cache.coalesced));
  report.AddValue("cache.hits", static_cast<double>(cache.hits));
  report.AddValue("cache.misses", static_cast<double>(cache.misses));

  if (warm_qps_c1 > 0.0 && warm_qps_c256 > 0.0) {
    const double scaling = warm_qps_c256 / warm_qps_c1;
    std::printf("warm scaling: %.1f qps at 256 conns / %.1f qps at 1 conn = %.2fx\n",
                warm_qps_c256, warm_qps_c1, scaling);
    report.AddValue("warm.scaling_256_over_1", scaling);
    // Enforced only on full-scale runs: scaled-down cells (--scale > 1) leave too few
    // requests per connection for a steady state, so their ratio is reported but not a
    // pass/fail criterion (keeps sanitizer smokes from flaking on a shrunken phase).
    if (scale == 1) {
      CHECK(scaling >= 3.0) << "pipelined 256-connection warm throughput should be >= 3x "
                               "the sequential single-connection baseline";
    }
  }

  transport.Stop();
  server.Drain();

  const std::string json_path = bench::JsonPathFromArgs(argc, argv);
  if (!json_path.empty() && !report.WriteTo(json_path)) {
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace probcon

int main(int argc, char** argv) { return probcon::Main(argc, argv); }
