// ES1 — closed-loop load generator for the probcon::serve query daemon.
//
// Drives a QueryServer in-process through the LoopbackChannel (the same code path the TCP
// transport feeds, minus the sockets) with a fixed mix of table1 / table2 / quorum_size
// queries, and measures the memoization cache's effect:
//
//   cold phase   every distinct query computed for the first time (all misses)
//   warm phase   the same query set repeated; every answer should come from cache
//
// Emits BENCH_serve.json (`--json <path>`) with per-phase throughput and client-side
// p50/p90/p95/p99/max latency plus the server's cache counters, so the "warm-cache repeat
// is served without recomputation and measurably faster" claim is checkable from the
// committed artifact. A final `stats` query exercises the introspection verb under load
// and cross-checks the server-side per-request accounting against the client's count.
//
// Latencies here are wall-clock (steady_clock; bench/serve_load.cc is on the lint
// monotonic-clock allowlist). The request mix and seeds are fixed, so the WORK is
// deterministic even though the timings are not.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/check.h"
#include "src/common/json.h"
#include "src/obs/metrics.h"
#include "src/serve/client.h"
#include "src/serve/server.h"

namespace probcon {
namespace {

struct Query {
  std::string kind;
  std::string params_text;
};

// The fixed request mix: the paper-table rows plus quorum-sizing queries — the queries a
// deployment-review dashboard would refresh.
std::vector<Query> WorkloadQueries() {
  std::vector<Query> queries;
  for (const int n : {4, 5, 7, 8}) {
    queries.push_back({"table1", "{\"n\": " + std::to_string(n) + "}"});
  }
  for (const int n : {3, 5, 7, 9}) {
    for (const char* p : {"0.01", "0.02", "0.04", "0.08"}) {
      queries.push_back({"table2", "{\"fault\": {\"n\": " + std::to_string(n) +
                                       ", \"p\": " + p + "}}"});
    }
  }
  for (const int n : {5, 7, 9}) {
    queries.push_back({"quorum_size",
                       "{\"protocol\": \"raft\", \"fault\": {\"n\": " + std::to_string(n) +
                           ", \"p\": 0.02}, \"target_live\": 0.999}"});
  }
  // One genuinely expensive query: a 2M-trial Monte Carlo estimate. Cold it dominates the
  // tail; warm it is a cache hit like everything else — the memoization payoff in one row.
  queries.push_back({"montecarlo",
                     "{\"protocol\": \"raft\", \"fault\": {\"n\": 7, \"p\": 0.02}, "
                     "\"trials\": 2000000, \"seed\": 42}"});
  return queries;
}

struct PhaseResult {
  double seconds = 0.0;
  std::vector<double> latencies_us;  // Sorted on return.

  double Quantile(double q) const {
    CHECK(!latencies_us.empty());
    const size_t index = static_cast<size_t>(q * static_cast<double>(latencies_us.size() - 1));
    return latencies_us[index];
  }
  double Qps() const {
    return seconds > 0.0 ? static_cast<double>(latencies_us.size()) / seconds : 0.0;
  }
};

PhaseResult RunPhase(serve::ServeClient& client, const std::vector<Query>& queries,
                     int repetitions) {
  PhaseResult result;
  result.latencies_us.reserve(queries.size() * static_cast<size_t>(repetitions));
  const auto phase_start = std::chrono::steady_clock::now();
  for (int rep = 0; rep < repetitions; ++rep) {
    for (const Query& query : queries) {
      Result<Json> params = ParseJson(query.params_text, "bench params");
      CHECK(params.ok()) << params.status().ToString();
      const auto start = std::chrono::steady_clock::now();
      Result<serve::ResponseEnvelope> response = client.Query(query.kind, *params);
      const auto end = std::chrono::steady_clock::now();
      CHECK(response.ok()) << response.status().ToString();
      CHECK(response->status.ok()) << response->status.ToString();
      result.latencies_us.push_back(
          std::chrono::duration<double, std::micro>(end - start).count());
    }
  }
  result.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - phase_start).count();
  std::sort(result.latencies_us.begin(), result.latencies_us.end());
  return result;
}

void AddPhase(bench::Table& table, bench::JsonReport& report, const std::string& name,
              const PhaseResult& phase) {
  auto fmt = [](double v) {
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.1f", v);
    return std::string(buffer);
  };
  table.AddRow({name, std::to_string(phase.latencies_us.size()), fmt(phase.Qps()),
                fmt(phase.Quantile(0.5)), fmt(phase.Quantile(0.9)),
                fmt(phase.Quantile(0.95)), fmt(phase.Quantile(0.99)),
                fmt(phase.latencies_us.back())});
  report.AddValue(name + ".requests", static_cast<double>(phase.latencies_us.size()));
  report.AddValue(name + ".qps", phase.Qps());
  report.AddValue(name + ".p50_us", phase.Quantile(0.5));
  report.AddValue(name + ".p90_us", phase.Quantile(0.9));
  report.AddValue(name + ".p95_us", phase.Quantile(0.95));
  report.AddValue(name + ".p99_us", phase.Quantile(0.99));
  report.AddValue(name + ".max_us", phase.latencies_us.back());
}

int Main(int argc, char** argv) {
  bench::PrintBanner("ES1", "serve: memoized query daemon under closed-loop load");

  MetricsRegistry metrics;
  serve::ServerOptions options;
  serve::QueryServer server(options, &metrics);
  serve::ServeClient client(std::make_unique<serve::LoopbackChannel>(server));

  const std::vector<Query> queries = WorkloadQueries();
  constexpr int kWarmRepetitions = 50;

  const PhaseResult cold = RunPhase(client, queries, 1);
  const auto after_cold = server.cache().snapshot();
  const PhaseResult warm = RunPhase(client, queries, kWarmRepetitions);
  const auto after_warm = server.cache().snapshot();

  bench::Table table(
      {"phase", "requests", "qps", "p50_us", "p90_us", "p95_us", "p99_us", "max_us"});
  bench::JsonReport report;
  AddPhase(table, report, "cold", cold);
  AddPhase(table, report, "warm", warm);
  table.Print();
  report.AddTable("serve_load", table);

  const uint64_t warm_hits = after_warm.hits - after_cold.hits;
  const uint64_t warm_misses = after_warm.misses - after_cold.misses;
  std::printf("\ncold: %zu distinct queries, %llu cache misses (all computed)\n",
              queries.size(), static_cast<unsigned long long>(after_cold.misses));
  std::printf("warm: %llu hits / %llu misses over %d repetitions\n",
              static_cast<unsigned long long>(warm_hits),
              static_cast<unsigned long long>(warm_misses), kWarmRepetitions);
  std::printf("speedup p50 cold/warm: %.1fx\n", cold.Quantile(0.5) / warm.Quantile(0.5));

  CHECK(warm_misses == 0) << "warm phase recomputed a memoized query";
  CHECK(after_cold.misses == queries.size()) << "cold phase should miss once per query";

  report.AddValue("cache.cold_misses", static_cast<double>(after_cold.misses));
  report.AddValue("cache.warm_hits", static_cast<double>(warm_hits));
  report.AddValue("cache.warm_misses", static_cast<double>(warm_misses));
  report.AddValue("speedup.p50_cold_over_warm", cold.Quantile(0.5) / warm.Quantile(0.5));

  // The stats verb, exercised under the post-load registry: its per-kind request
  // accounting must agree with the client's own books (cold + warm issues of each kind).
  Result<serve::ResponseEnvelope> stats = client.Query("stats", Json::Object());
  CHECK(stats.ok()) << stats.status().ToString();
  CHECK(stats->status.ok()) << stats->status.ToString();
  const Json* latency = stats->result.Find("metrics");
  latency = latency == nullptr ? nullptr : latency->Find("histograms");
  latency = latency == nullptr ? nullptr : latency->Find("serve.latency_ms");
  CHECK(latency != nullptr) << "stats snapshot lacks serve.latency_ms";
  const Json* served = latency->Find("count");
  CHECK(served != nullptr && served->NumberValue() ==
            static_cast<double>(cold.latencies_us.size() + warm.latencies_us.size()))
      << "server-side request count disagrees with the client's";
  const Json* server_p99 = latency->Find("p99");
  CHECK(server_p99 != nullptr);
  // Server-side quantiles are in ms (bucket-interpolated); report alongside the exact
  // client-side numbers for cross-checking.
  report.AddValue("server.latency_ms.count", served->NumberValue());
  report.AddValue("server.latency_ms.p99", server_p99->NumberValue());

  const std::string json_path = bench::JsonPathFromArgs(argc, argv);
  if (!json_path.empty() && !report.WriteTo(json_path)) {
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace probcon

int main(int argc, char** argv) { return probcon::Main(argc, argv); }
