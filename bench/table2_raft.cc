// E2 — Reproduces Table 2 of the paper: Raft safe-and-live probability for uniform node
// failure probabilities p_u in {1, 2, 4, 8}% at N in {3, 5, 7, 9}.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/analysis/reliability.h"
#include "src/exec/parallel.h"

namespace probcon {
namespace {

struct PaperRow {
  int n;
  const char* cells[4];  // p = 1%, 2%, 4%, 8%.
};

void Run(const std::string& json_path) {
  bench::PrintBanner("E2 / Table 2", "Raft reliability for uniform node failure p_u");
  constexpr double kProbabilities[] = {0.01, 0.02, 0.04, 0.08};
  const PaperRow kPaper[] = {
      {3, {"99.97%", "99.88%", "99.53%", "98.18%"}},
      {5, {"99.9990%", "99.992%", "99.94%", "99.55%"}},
      {7, {"99.99997%", "99.9995%", "99.992%", "99.88%"}},
      {9, {"99.999998%", "99.99996%", "99.9988%", "99.97%"}},
  };

  bench::Table table({"N", "|Qper|", "|Qvc|", "S&L p=1%", "S&L p=2%", "S&L p=4%", "S&L p=8%",
                      "paper 1%", "paper 2%", "paper 4%", "paper 8%"});
  // All 16 (N, p) cells are independent analyses; fan rows out across the pool.
  const auto rows = RunTrials(std::size(kPaper), [&](uint64_t row_index) {
    const PaperRow& row = kPaper[row_index];
    const RaftConfig config = RaftConfig::Standard(row.n);
    std::vector<std::string> cells = {std::to_string(row.n), std::to_string(config.q_per),
                                      std::to_string(config.q_vc)};
    for (const double p : kProbabilities) {
      const auto analyzer = ReliabilityAnalyzer::ForUniformNodes(row.n, p);
      const ReliabilityReport report = AnalyzeRaft(config, analyzer);
      cells.push_back(FormatPercent(report.safe_and_live));
    }
    for (const char* paper_cell : row.cells) {
      cells.emplace_back(paper_cell);
    }
    return cells;
  });
  for (const auto& row : rows) {
    table.AddRow(row);
  }
  table.Print();
  std::printf("\nEvery row should match the paper's Table 2 cell-for-cell.\n");
  if (!json_path.empty()) {
    bench::JsonReport report;
    report.AddTable("table2_raft", table);
    report.WriteTo(json_path);
  }
}

}  // namespace
}  // namespace probcon

int main(int argc, char** argv) {
  probcon::Run(probcon::bench::JsonPathFromArgs(argc, argv));
  return 0;
}
