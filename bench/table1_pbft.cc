// E1 — Reproduces Table 1 of the paper: PBFT reliability with uniform p_u = 1%.
//
//   | N | |Qeq| |Qper| |Qvc| |Qvc_t| | Safe% | Live% | Safe and Live% |
//
// Quorum sizes are the standard PBFT choices for each N (the same the paper tabulates).
// Paper values are hardcoded alongside for direct comparison.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/analysis/reliability.h"
#include "src/exec/parallel.h"

namespace probcon {
namespace {

struct PaperRow {
  int n;
  const char* safe;
  const char* live;
  const char* safe_and_live;
};

void Run(const std::string& json_path) {
  bench::PrintBanner("E1 / Table 1", "PBFT reliability, uniform p_u = 1%");
  constexpr double kFailureProbability = 0.01;
  const PaperRow kPaper[] = {
      {4, "99.94%", "99.94%", "99.94%"},
      {5, "99.9990%", "99.90%", "99.90%"},
      {7, "99.997%", "99.997%", "99.997%"},
      {8, "99.99993%", "99.995%", "99.995%"},
  };

  bench::Table table({"N", "|Qeq|", "|Qper|", "|Qvc|", "|Qvc_t|", "Safe%", "Live%", "S&L%",
                      "paper Safe%", "paper Live%", "paper S&L%"});
  // Each row's report is an independent analysis; RunTrials fans them out and returns
  // the cells in row order.
  const auto rows = RunTrials(std::size(kPaper), [&](uint64_t row_index) {
    const PaperRow& row = kPaper[row_index];
    const PbftConfig config = PbftConfig::Standard(row.n);
    const auto analyzer = ReliabilityAnalyzer::ForUniformNodes(row.n, kFailureProbability);
    const ReliabilityReport report = AnalyzePbft(config, analyzer);
    return std::vector<std::string>{
        std::to_string(row.n), std::to_string(config.q_eq), std::to_string(config.q_per),
        std::to_string(config.q_vc), std::to_string(config.q_vc_t),
        FormatPercent(report.safe), FormatPercent(report.live),
        FormatPercent(report.safe_and_live), row.safe, row.live, row.safe_and_live};
  });
  for (const auto& row : rows) {
    table.AddRow(row);
  }
  table.Print();
  std::printf("\nEvery row should match the paper's Table 1 cell-for-cell.\n");
  if (!json_path.empty()) {
    bench::JsonReport report;
    report.AddTable("table1_pbft", table);
    report.WriteTo(json_path);
  }
}

}  // namespace
}  // namespace probcon

int main(int argc, char** argv) {
  probcon::Run(probcon::bench::JsonPathFromArgs(argc, argv));
  return 0;
}
