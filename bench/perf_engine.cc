// E12 — google-benchmark microbenchmarks for the analysis engine: the cost of the three
// evaluation strategies (exact 2^N enumeration, Poisson-binomial count DP, Monte Carlo) and
// of the protocol implementations on the simulator. This is the ablation behind DESIGN.md
// decision D2.
//
// The BM_*Threads benchmarks re-run the heavy strategies under ScopedThreadPool overrides
// of 1/2/8 workers; `--json <path>` writes name -> {ns_per_op, threads, speedup_vs_1_thread}
// (see docs/PERFORMANCE.md for how BENCH_engine.json is produced and read).

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "src/analysis/importance_sampling.h"
#include "src/analysis/reliability.h"
#include "src/consensus/raft/raft_cluster.h"
#include "src/exec/parallel.h"
#include "src/exec/thread_pool.h"
#include "src/prob/poisson_binomial.h"

namespace probcon {
namespace {

std::vector<double> MixedProbabilities(int n) {
  std::vector<double> probs;
  probs.reserve(n);
  for (int i = 0; i < n; ++i) {
    probs.push_back(0.01 + 0.07 * (i % 5) / 4.0);
  }
  return probs;
}

void BM_ExactEnumeration(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto analyzer = ReliabilityAnalyzer::ForIndependentNodes(MixedProbabilities(n));
  const auto predicate = MakeRaftLivePredicate(RaftConfig::Standard(n));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        analyzer.EventProbability(predicate, AnalysisMethod::kExact).complement());
  }
}
BENCHMARK(BM_ExactEnumeration)->Arg(5)->Arg(10)->Arg(15)->Arg(20);

void BM_CountDp(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto analyzer = ReliabilityAnalyzer::ForIndependentNodes(MixedProbabilities(n));
  const auto predicate = MakeRaftLivePredicate(RaftConfig::Standard(n));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        analyzer.EventProbability(predicate, AnalysisMethod::kCountDp).complement());
  }
}
BENCHMARK(BM_CountDp)->Arg(5)->Arg(20)->Arg(64);

void BM_MonteCarlo(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto analyzer = ReliabilityAnalyzer::ForIndependentNodes(MixedProbabilities(n));
  const auto predicate = MakeRaftLivePredicate(RaftConfig::Standard(n));
  MonteCarloOptions options;
  options.trials = 100'000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyzer.EstimateEventProbability(predicate, options).point);
  }
}
BENCHMARK(BM_MonteCarlo)->Arg(5)->Arg(20)->Arg(64);

void BM_PoissonBinomialConstruction(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto probs = MixedProbabilities(n);
  for (auto _ : state) {
    PoissonBinomial pb(probs);
    benchmark::DoNotOptimize(pb.Pmf(n / 2));
  }
}
BENCHMARK(BM_PoissonBinomialConstruction)->Arg(9)->Arg(64)->Arg(256);

void BM_PbftFullReport(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto analyzer = ReliabilityAnalyzer::ForUniformNodes(n, 0.01);
  const auto config = PbftConfig::Standard(n);
  for (auto _ : state) {
    const auto report = AnalyzePbft(config, analyzer);
    benchmark::DoNotOptimize(report.safe_and_live.complement());
  }
}
BENCHMARK(BM_PbftFullReport)->Arg(4)->Arg(7)->Arg(31);

void BM_ImportanceSampling(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const IndependentFailureModel model(MixedProbabilities(n));
  const auto predicate = CountPredicate(
      [n](int failures, int /*nodes*/) { return failures >= n / 2 + 1; });
  ImportanceSamplingOptions options;
  options.trials = 100'000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        EstimateRareEventProbability(model, predicate, options).probability);
  }
}
BENCHMARK(BM_ImportanceSampling)->Arg(9)->Arg(20);

void BM_RaftSimulatedSecond(benchmark::State& state) {
  // Cost of one simulated second of a healthy 5-node Raft cluster.
  for (auto _ : state) {
    RaftClusterOptions options;
    options.config = RaftConfig::Standard(5);
    options.seed = 1;
    RaftCluster cluster(options);
    cluster.Start();
    cluster.RunUntil(1'000.0);
    benchmark::DoNotOptimize(cluster.checker().committed_slots());
  }
}
BENCHMARK(BM_RaftSimulatedSecond);

// --- Thread-count scaling (the probcon::exec runtime) -------------------------------------
//
// Each benchmark overrides the global pool for the duration of the run; the work and its
// chunking are identical across arguments, so the RESULT is bit-identical and only the
// wall time changes. UseRealTime because the work runs on pool workers, not the timing
// thread.

void BM_MonteCarloThreads(benchmark::State& state) {
  ScopedThreadPool pool(static_cast<int>(state.range(0)));
  const int n = 64;
  const auto analyzer = ReliabilityAnalyzer::ForIndependentNodes(MixedProbabilities(n));
  const auto predicate = MakeRaftLivePredicate(RaftConfig::Standard(n));
  MonteCarloOptions options;
  options.trials = 100'000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyzer.EstimateEventProbability(predicate, options).point);
  }
}
BENCHMARK(BM_MonteCarloThreads)->Arg(1)->Arg(2)->Arg(8)->UseRealTime();

void BM_ExactEnumerationThreads(benchmark::State& state) {
  ScopedThreadPool pool(static_cast<int>(state.range(0)));
  const int n = 20;
  const auto analyzer = ReliabilityAnalyzer::ForIndependentNodes(MixedProbabilities(n));
  const auto predicate = MakeRaftLivePredicate(RaftConfig::Standard(n));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        analyzer.EventProbability(predicate, AnalysisMethod::kExact).complement());
  }
}
BENCHMARK(BM_ExactEnumerationThreads)->Arg(1)->Arg(2)->Arg(8)->UseRealTime();

void BM_ImportanceSamplingThreads(benchmark::State& state) {
  ScopedThreadPool pool(static_cast<int>(state.range(0)));
  const int n = 20;
  const IndependentFailureModel model(MixedProbabilities(n));
  const auto predicate = CountPredicate(
      [n](int failures, int /*nodes*/) { return failures >= n / 2 + 1; });
  ImportanceSamplingOptions options;
  options.trials = 100'000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        EstimateRareEventProbability(model, predicate, options).probability);
  }
}
BENCHMARK(BM_ImportanceSamplingThreads)->Arg(1)->Arg(2)->Arg(8)->UseRealTime();

void BM_RaftTrialSweepThreads(benchmark::State& state) {
  ScopedThreadPool pool(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    const auto committed = RunTrials(8, [](uint64_t trial) {
      RaftClusterOptions options;
      options.config = RaftConfig::Standard(5);
      options.seed = trial + 1;
      RaftCluster cluster(options);
      cluster.Start();
      cluster.RunUntil(500.0);
      return cluster.checker().max_committed_slot();
    });
    benchmark::DoNotOptimize(committed.data());
  }
}
BENCHMARK(BM_RaftTrialSweepThreads)->Arg(1)->Arg(2)->Arg(8)->UseRealTime();

// Console output as usual, plus an in-memory capture of (name, ns/op) so main can emit the
// BENCH_engine.json document. Thread-count runs are named BM_Foo/<threads>/real_time.
class JsonCapturingReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& reports) override {
    for (const Run& run : reports) {
      if (run.error_occurred) {
        continue;
      }
      runs_.emplace_back(run.benchmark_name(), run.GetAdjustedRealTime());
    }
    benchmark::ConsoleReporter::ReportRuns(reports);
  }

  // {"benchmarks": {name: {"ns_per_op": x, "threads": t, "speedup_vs_1_thread": s}}}.
  // `threads` is the ScopedThreadPool argument for BM_*Threads runs (0 otherwise), and
  // speedup is measured against the same benchmark's 1-worker run.
  std::string ToJson() const {
    std::map<std::string, double> one_thread_ns;
    for (const auto& [name, ns] : runs_) {
      if (ThreadArg(name) == 1) {
        one_thread_ns[BaseName(name)] = ns;
      }
    }
    std::string json = "{\n  \"benchmarks\": {";
    for (size_t i = 0; i < runs_.size(); ++i) {
      const auto& [name, ns] = runs_[i];
      const int threads = ThreadArg(name);
      char entry[256];
      const auto baseline = one_thread_ns.find(BaseName(name));
      if (threads > 0 && baseline != one_thread_ns.end() && ns > 0.0) {
        std::snprintf(entry, sizeof(entry),
                      "{\"ns_per_op\": %.6g, \"threads\": %d, \"speedup_vs_1_thread\": %.3f}",
                      ns, threads, baseline->second / ns);
      } else {
        std::snprintf(entry, sizeof(entry), "{\"ns_per_op\": %.6g}", ns);
      }
      json += (i > 0 ? ",\n    " : "\n    ") + ("\"" + bench::JsonEscape(name) + "\": ") + entry;
    }
    json += runs_.empty() ? "}" : "\n  }";
    json += "\n}\n";
    return json;
  }

 private:
  // "BM_MonteCarloThreads/8/real_time" -> 8; 0 when the name has no numeric argument.
  static int ThreadArg(const std::string& name) {
    if (name.find("Threads/") == std::string::npos) {
      return 0;
    }
    const size_t slash = name.find('/');
    return std::atoi(name.c_str() + slash + 1);
  }

  static std::string BaseName(const std::string& name) {
    return name.substr(0, name.find('/'));
  }

  std::vector<std::pair<std::string, double>> runs_;
};

}  // namespace
}  // namespace probcon

int main(int argc, char** argv) {
  const std::string json_path = probcon::bench::JsonPathFromArgs(argc, argv);
  // Drop the --json pair before handing argv to google-benchmark (it rejects unknown flags).
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::string(argv[i]) == "--json" && i + 1 < argc) {
      ++i;
      continue;
    }
    args.push_back(argv[i]);
  }
  int filtered_argc = static_cast<int>(args.size());
  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data())) {
    return 1;
  }
  probcon::JsonCapturingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  if (!json_path.empty()) {
    std::FILE* file = std::fopen(json_path.c_str(), "w");
    if (file == nullptr) {
      std::fprintf(stderr, "cannot write JSON report to %s\n", json_path.c_str());
      return 1;
    }
    const std::string json = reporter.ToJson();
    std::fwrite(json.data(), 1, json.size(), file);
    std::fclose(file);
    std::printf("JSON report written to %s\n", json_path.c_str());
  }
  return 0;
}
