// E12 — google-benchmark microbenchmarks for the analysis engine: the cost of the three
// evaluation strategies (exact 2^N enumeration, Poisson-binomial count DP, Monte Carlo) and
// of the protocol implementations on the simulator. This is the ablation behind DESIGN.md
// decision D2.

#include <benchmark/benchmark.h>

#include "src/analysis/importance_sampling.h"
#include "src/analysis/reliability.h"
#include "src/consensus/raft/raft_cluster.h"
#include "src/prob/poisson_binomial.h"

namespace probcon {
namespace {

std::vector<double> MixedProbabilities(int n) {
  std::vector<double> probs;
  probs.reserve(n);
  for (int i = 0; i < n; ++i) {
    probs.push_back(0.01 + 0.07 * (i % 5) / 4.0);
  }
  return probs;
}

void BM_ExactEnumeration(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto analyzer = ReliabilityAnalyzer::ForIndependentNodes(MixedProbabilities(n));
  const auto predicate = MakeRaftLivePredicate(RaftConfig::Standard(n));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        analyzer.EventProbability(predicate, AnalysisMethod::kExact).complement());
  }
}
BENCHMARK(BM_ExactEnumeration)->Arg(5)->Arg(10)->Arg(15)->Arg(20);

void BM_CountDp(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto analyzer = ReliabilityAnalyzer::ForIndependentNodes(MixedProbabilities(n));
  const auto predicate = MakeRaftLivePredicate(RaftConfig::Standard(n));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        analyzer.EventProbability(predicate, AnalysisMethod::kCountDp).complement());
  }
}
BENCHMARK(BM_CountDp)->Arg(5)->Arg(20)->Arg(64);

void BM_MonteCarlo(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto analyzer = ReliabilityAnalyzer::ForIndependentNodes(MixedProbabilities(n));
  const auto predicate = MakeRaftLivePredicate(RaftConfig::Standard(n));
  MonteCarloOptions options;
  options.trials = 100'000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyzer.EstimateEventProbability(predicate, options).point);
  }
}
BENCHMARK(BM_MonteCarlo)->Arg(5)->Arg(20)->Arg(64);

void BM_PoissonBinomialConstruction(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto probs = MixedProbabilities(n);
  for (auto _ : state) {
    PoissonBinomial pb(probs);
    benchmark::DoNotOptimize(pb.Pmf(n / 2));
  }
}
BENCHMARK(BM_PoissonBinomialConstruction)->Arg(9)->Arg(64)->Arg(256);

void BM_PbftFullReport(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto analyzer = ReliabilityAnalyzer::ForUniformNodes(n, 0.01);
  const auto config = PbftConfig::Standard(n);
  for (auto _ : state) {
    const auto report = AnalyzePbft(config, analyzer);
    benchmark::DoNotOptimize(report.safe_and_live.complement());
  }
}
BENCHMARK(BM_PbftFullReport)->Arg(4)->Arg(7)->Arg(31);

void BM_ImportanceSampling(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const IndependentFailureModel model(MixedProbabilities(n));
  const auto predicate = CountPredicate(
      [n](int failures, int /*nodes*/) { return failures >= n / 2 + 1; });
  ImportanceSamplingOptions options;
  options.trials = 100'000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        EstimateRareEventProbability(model, predicate, options).probability);
  }
}
BENCHMARK(BM_ImportanceSampling)->Arg(9)->Arg(20);

void BM_RaftSimulatedSecond(benchmark::State& state) {
  // Cost of one simulated second of a healthy 5-node Raft cluster.
  for (auto _ : state) {
    RaftClusterOptions options;
    options.config = RaftConfig::Standard(5);
    options.seed = 1;
    RaftCluster cluster(options);
    cluster.Start();
    cluster.RunUntil(1'000.0);
    benchmark::DoNotOptimize(cluster.checker().committed_slots());
  }
}
BENCHMARK(BM_RaftSimulatedSecond);

}  // namespace
}  // namespace probcon

BENCHMARK_MAIN();
