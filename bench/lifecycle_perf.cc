// ES2 — Fleet-lifecycle performance: CTMC solver wall-time against lumped state count, and
// served throughput of the lifecycle kinds (availability / mission_reliability /
// repair_sweep) over an in-process loopback server, cold (engine) vs warm (memo cache).
//
// The solver table justifies the serving caps in src/serve/spec.cc: the direct solves are
// O(m^3) in the state count m, so kMaxFleetStatesServe bounds worst-case engine time, and
// the uniformization budget bounds mission solves. Emits BENCH_lifecycle.json
// (`--json <path>`), same shape as BENCH_serve.json.
//
// Latencies are wall-clock (steady_clock; bench/lifecycle_perf.cc is on the lint
// monotonic-clock allowlist) — this harness measures the host, not the model.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/json.h"
#include "src/lifecycle/fleet_model.h"
#include "src/lifecycle/repair_sweep.h"
#include "src/serve/client.h"
#include "src/serve/server.h"

namespace probcon {
namespace {

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
      .count();
}

// One solver measurement: availability + MTTU + one-year mission reliability at the given
// class layout, repeated enough to get a stable per-solve figure.
void SolverRow(bench::Table* table, bench::JsonReport* report, const std::string& label,
               const std::vector<int>& class_counts) {
  FleetParams params;
  for (size_t c = 0; c < class_counts.size(); ++c) {
    // Spread rates across vintages so the chain is genuinely heterogeneous.
    params.classes.push_back(
        {.count = class_counts[c], .failure_rate = 1e-3 * static_cast<double>(c + 1)});
  }
  params.repair_rate = 0.1;
  params.repair_servers = 2;
  const FleetModel model(params, FleetProtocol::kRaft);

  constexpr int kReps = 5;
  const auto steady_start = std::chrono::steady_clock::now();
  for (int i = 0; i < kReps; ++i) {
    auto availability = model.TrySteadyStateAvailability(false, {});
    CHECK(availability.ok());
  }
  const double steady_ms = MsSince(steady_start) / kReps;

  const auto mttu_start = std::chrono::steady_clock::now();
  for (int i = 0; i < kReps; ++i) {
    auto mttu = model.TryMeanTimeToUnavailability(false, {});
    CHECK(mttu.ok());
  }
  const double mttu_ms = MsSince(mttu_start) / kReps;

  const auto mission_start = std::chrono::steady_clock::now();
  for (int i = 0; i < kReps; ++i) {
    auto reliability = model.TryMissionReliability(8766.0, false, {});
    CHECK(reliability.ok());
  }
  const double mission_ms = MsSince(mission_start) / kReps;

  char steady_text[32], mttu_text[32], mission_text[32];
  std::snprintf(steady_text, sizeof(steady_text), "%.3f", steady_ms);
  std::snprintf(mttu_text, sizeof(mttu_text), "%.3f", mttu_ms);
  std::snprintf(mission_text, sizeof(mission_text), "%.3f", mission_ms);
  table->AddRow({label, std::to_string(model.state_count()), steady_text, mttu_text,
                 mission_text});
  report->AddValue(label + ".states", model.state_count());
  report->AddValue(label + ".steady_ms", steady_ms);
  report->AddValue(label + ".mttu_ms", mttu_ms);
  report->AddValue(label + ".mission_ms", mission_ms);
}

Json AvailabilityParams(int count) {
  Json cls = Json::Object();
  cls.Set("count", Json::Number(count));
  cls.Set("failure_rate", Json::Number(1e-3));
  Json classes = Json::Array();
  classes.Append(std::move(cls));
  Json fleet = Json::Object();
  fleet.Set("classes", std::move(classes));
  fleet.Set("repair_rate", Json::Number(0.1));
  Json params = Json::Object();
  params.Set("protocol", Json::String("raft"));
  params.Set("fleet", std::move(fleet));
  return params;
}

Json MissionParams(int rounds) {
  Json curve = Json::Object();
  curve.Set("kind", Json::String("weibull"));
  curve.Set("shape", Json::Number(0.7));
  curve.Set("scale", Json::Number(100000.0));
  Json schedule = Json::Object();
  schedule.Set("curve", std::move(curve));
  schedule.Set("n", Json::Number(5));
  schedule.Set("round_hours", Json::Number(24.0));
  schedule.Set("rounds", Json::Number(rounds));
  Json params = Json::Object();
  params.Set("protocol", Json::String("raft"));
  params.Set("schedule", std::move(schedule));
  return params;
}

Json SweepParams(int points) {
  Json cls = Json::Object();
  cls.Set("count", Json::Number(5));
  cls.Set("failure_rate", Json::Number(1e-3));
  Json classes = Json::Array();
  classes.Append(std::move(cls));
  Json fleet = Json::Object();
  fleet.Set("classes", std::move(classes));
  Json params = Json::Object();
  params.Set("protocol", Json::String("raft"));
  params.Set("fleet", std::move(fleet));
  params.Set("min_rate", Json::Number(0.01));
  params.Set("max_rate", Json::Number(10.0));
  params.Set("points", Json::Number(points));
  params.Set("target_availability", Json::Number(0.99999));
  return params;
}

// Issues `requests` queries of one kind; `vary` perturbs the params per request so the cold
// run misses the memo cache every time (vary = false repeats one request: warm path).
void ServeRows(bench::Table* table, bench::JsonReport* report, const std::string& kind,
               int requests, bool vary) {
  serve::QueryServer server(serve::ServerOptions{});
  serve::ServeClient client(std::make_unique<serve::LoopbackChannel>(server));
  const auto start = std::chrono::steady_clock::now();
  int ok = 0;
  for (int i = 0; i < requests; ++i) {
    const int variant = vary ? i : 0;
    Json params;
    if (kind == "availability") {
      params = AvailabilityParams(3 + variant % 30);
    } else if (kind == "mission_reliability") {
      params = MissionParams(10 + variant % 50);
    } else {
      params = SweepParams(4 + variant % 16);
    }
    auto response = client.Query(kind, params);
    if (response.ok() && response->status.ok()) {
      ++ok;
    }
  }
  const double total_ms = MsSince(start);
  const double qps = requests / (total_ms / 1000.0);
  const std::string label = kind + (vary ? ".cold" : ".warm");
  char qps_text[32], ms_text[32];
  std::snprintf(qps_text, sizeof(qps_text), "%.1f", qps);
  std::snprintf(ms_text, sizeof(ms_text), "%.3f", total_ms / requests);
  table->AddRow({label, std::to_string(requests), std::to_string(ok), ms_text, qps_text});
  report->AddValue(label + ".qps", qps);
  report->AddValue(label + ".mean_ms", total_ms / requests);
}

void Run(const char* json_path) {
  bench::PrintBanner("ES2", "fleet-lifecycle solver scaling and served throughput");
  bench::JsonReport report;

  bench::Table solver({"fleet", "states", "steady_ms", "mttu_ms", "mission_ms"});
  SolverRow(&solver, &report, "1x7", {7});
  SolverRow(&solver, &report, "1x15", {15});
  SolverRow(&solver, &report, "1x31", {31});
  SolverRow(&solver, &report, "1x63", {63});
  SolverRow(&solver, &report, "2x15", {15, 15});
  SolverRow(&solver, &report, "3x9", {9, 9, 9});
  SolverRow(&solver, &report, "4x5", {5, 5, 5, 5});
  solver.Print();
  report.AddTable("lifecycle_solver", solver);

  std::printf("\nserved throughput (loopback, single connection):\n");
  bench::Table serve_table({"kind", "requests", "ok", "mean_ms", "qps"});
  for (const std::string kind : {"availability", "mission_reliability", "repair_sweep"}) {
    ServeRows(&serve_table, &report, kind, 64, /*vary=*/true);
    ServeRows(&serve_table, &report, kind, 512, /*vary=*/false);
  }
  serve_table.Print();
  report.AddTable("lifecycle_serve", serve_table);

  if (json_path != nullptr && !report.WriteTo(json_path)) {
    std::exit(1);
  }
}

}  // namespace
}  // namespace probcon

int main(int argc, char** argv) {
  const char* json_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    }
  }
  probcon::Run(json_path);
  return 0;
}
