// E7 — §4 claim: quorum systems that enforce durability are too conservative.
//
// "In a 100 node cluster where |Q_per| = 10 and p_u = 10% there is a 50% chance that |Q_per|
//  faults occur. However, for this situation to incur data loss, the failures must perfectly
//  overlap with the most recently formed persistence quorum which has a one in ten billion
//  probability."

#include <cstdio>

#include "bench/bench_util.h"
#include "src/analysis/durability.h"

namespace probcon {
namespace {

void Run() {
  bench::PrintBanner("E7", "f-threshold pessimism: failure count vs placement overlap");

  const auto headline = AnalyzePersistenceOverlap(100, 10, 0.10);
  std::printf("n=100, |Q_per|=10, p=10%%:\n");
  std::printf("  P(>= 10 faults occur)           = %.3f   (paper: ~50%%)\n",
              headline.quorum_many_failures.value());
  std::printf("  P(they wipe the exact quorum)   = %.3g   (paper: 1e-10)\n",
              headline.specific_quorum_wipeout.value());
  std::printf("  gap: %.1e x\n\n", headline.quorum_many_failures.value() /
                                       headline.specific_quorum_wipeout.value());

  bench::Table table({"n", "q_per", "p", "P(>= q_per faults)", "P(specific quorum wiped)",
                      "gap"});
  const struct {
    int n;
    int q;
    double p;
  } sweeps[] = {{20, 5, 0.10}, {50, 5, 0.10},  {100, 5, 0.10}, {100, 10, 0.10},
                {100, 10, 0.05}, {200, 10, 0.10}, {100, 20, 0.10}};
  for (const auto& sweep : sweeps) {
    const auto overlap = AnalyzePersistenceOverlap(sweep.n, sweep.q, sweep.p);
    char count_text[32];
    char wipe_text[32];
    char gap_text[32];
    std::snprintf(count_text, sizeof(count_text), "%.3g",
                  overlap.quorum_many_failures.value());
    std::snprintf(wipe_text, sizeof(wipe_text), "%.3g",
                  overlap.specific_quorum_wipeout.value());
    std::snprintf(gap_text, sizeof(gap_text), "%.1e",
                  overlap.quorum_many_failures.value() /
                      overlap.specific_quorum_wipeout.value());
    char p_text[16];
    std::snprintf(p_text, sizeof(p_text), "%g", sweep.p);
    table.AddRow({std::to_string(sweep.n), std::to_string(sweep.q), p_text, count_text,
                  wipe_text, gap_text});
  }
  table.Print();
  std::printf(
      "\nshape check: the count-based (f-threshold) risk and the placement-aware risk diverge\n"
      "by many orders of magnitude, and the gap widens with cluster size.\n");
}

}  // namespace
}  // namespace probcon

int main() {
  probcon::Run();
  return 0;
}
