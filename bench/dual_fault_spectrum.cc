// E15 — §2 point 4, quantified: "Faults cannot be simply treated as crashes or Byzantine."
//
// The paper quotes Google's fleet: ~4% annual crash rate but only ~0.01% Byzantine-like
// corruption-execution rate. Under that mix, this bench compares — per window — pure CFT
// (Raft), pure BFT (PBFT), and Upright's split-budget model (u total / r Byzantine), at
// matched cluster sizes. The dual fault model exposes what the single-mode analysis hides:
// Raft's safety is capped by the Byzantine rate it ignores, while PBFT pays 3f+1 nodes to
// defend against events a hundred-fold rarer than crashes.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/analysis/dual_fault.h"

namespace probcon {
namespace {

void MatchedComparison() {
  // Per-month window derived from the paper's annual numbers.
  const DualFaultProbabilities mix{/*crash=*/0.04 / 12.0, /*byzantine=*/0.0001 / 12.0};
  std::printf("\nper-month fault mix per node: crash %.3f%%, byzantine %.6f%%\n",
              100.0 * mix.crash, 100.0 * mix.byzantine);

  bench::Table table({"protocol", "n", "Safe%", "Live%", "S&L"});
  {
    const auto report =
        AnalyzeRaftUnderDualFaults(3, std::vector<DualFaultProbabilities>(3, mix));
    table.AddRow({"Raft (CFT)", "3", FormatPercent(report.safe), FormatPercent(report.live),
                  FormatPercent(report.safe_and_live)});
  }
  {
    const auto report =
        AnalyzeRaftUnderDualFaults(5, std::vector<DualFaultProbabilities>(5, mix));
    table.AddRow({"Raft (CFT)", "5", FormatPercent(report.safe), FormatPercent(report.live),
                  FormatPercent(report.safe_and_live)});
  }
  {
    const auto report = AnalyzePbftUnderDualFaults(
        PbftConfig::Standard(4), std::vector<DualFaultProbabilities>(4, mix));
    table.AddRow({"PBFT (BFT)", "4", FormatPercent(report.safe), FormatPercent(report.live),
                  FormatPercent(report.safe_and_live)});
  }
  {
    const auto report = AnalyzePbftUnderDualFaults(
        PbftConfig::Standard(7), std::vector<DualFaultProbabilities>(7, mix));
    table.AddRow({"PBFT (BFT)", "7", FormatPercent(report.safe), FormatPercent(report.live),
                  FormatPercent(report.safe_and_live)});
  }
  for (const auto& budgets : {std::pair<int, int>{1, 1}, {2, 1}, {2, 2}}) {
    const auto config = UprightConfig::ForBudgets(budgets.first, budgets.second);
    const auto report = AnalyzeUpright(
        config, std::vector<DualFaultProbabilities>(config.n, mix));
    table.AddRow({config.Describe(), std::to_string(config.n), FormatPercent(report.safe),
                  FormatPercent(report.live), FormatPercent(report.safe_and_live)});
  }
  table.Print();
  std::printf(
      "shape check: Raft's safety saturates at the Byzantine-free probability its model\n"
      "ignores; upright(u=2,r=1) at n=6 buys BFT-grade safety with one node fewer than\n"
      "PBFT n=7 and better liveness under the crash-dominated mix.\n");
}

void ByzantineShareSweep() {
  std::printf("\nsweep: hold total fault mass at 0.4%%/window, vary the Byzantine share:\n");
  bench::Table table({"byz share", "Raft n=5 S&L", "upright(2,1) n=6 S&L", "PBFT n=7 S&L"});
  for (const double share : {0.0, 0.001, 0.01, 0.1, 0.5, 1.0}) {
    const double total = 0.004;
    const DualFaultProbabilities mix{total * (1.0 - share), total * share};
    const auto raft =
        AnalyzeRaftUnderDualFaults(5, std::vector<DualFaultProbabilities>(5, mix));
    const auto upright = AnalyzeUpright(UprightConfig::ForBudgets(2, 1),
                                        std::vector<DualFaultProbabilities>(6, mix));
    const auto pbft = AnalyzePbftUnderDualFaults(
        PbftConfig::Standard(7), std::vector<DualFaultProbabilities>(7, mix));
    char share_text[16];
    std::snprintf(share_text, sizeof(share_text), "%g", share);
    table.AddRow({share_text, FormatPercent(raft.safe_and_live),
                  FormatPercent(upright.safe_and_live), FormatPercent(pbft.safe_and_live)});
  }
  table.Print();
  std::printf(
      "shape check: the crossover — CFT wins only while the Byzantine share is ~0; the\n"
      "split-budget model tracks the best of both across the spectrum.\n");
}

}  // namespace
}  // namespace probcon

int main() {
  probcon::bench::PrintBanner("E15", "crash vs Byzantine fault mix (dual-threshold models)");
  probcon::MatchedComparison();
  probcon::ByzantineShareSweep();
  return 0;
}
