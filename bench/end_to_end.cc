// E16 — §4 "End-to-end guarantees": what the application sees.
//
// Consensus-level S&L is not the SLA. This bench takes Table-2-style clusters and derives
// the availability (outage minutes per year, as a function of recovery speed) and the
// mission durability (as a function of fork preservation) — the two §4 observations about
// the mismatch between consensus guarantees and the nines applications quote.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/analysis/end_to_end.h"

namespace probcon {
namespace {

void Run() {
  // A 5-node Raft cluster at p=1%/month (Table 2's second row, monthly window).
  EndToEndParams params;
  const auto analyzer = ReliabilityAnalyzer::ForUniformNodes(5, 0.01);
  params.consensus = AnalyzeRaft(RaftConfig::Standard(5), analyzer);
  params.window_hours = 720.0;

  std::printf("\nconsensus layer: 5-node Raft @ p=1%%/month -> live %s per month\n",
              FormatPercent(params.consensus.live).c_str());

  std::printf("\navailability vs recovery speed (same consensus protocol!):\n");
  bench::Table availability({"recovery (MTTR)", "availability", "outage min/year"});
  for (const double mttr : {0.05, 0.5, 4.0, 48.0}) {
    params.mean_time_to_recover = mttr;
    const auto report = ComputeEndToEnd(params);
    char mttr_text[24];
    char minutes[24];
    std::snprintf(mttr_text, sizeof(mttr_text), "%.2f h", mttr);
    std::snprintf(minutes, sizeof(minutes), "%.4g", report.outage_minutes_per_year);
    availability.AddRow({mttr_text, FormatPercent(report.availability), minutes});
  }
  availability.Print();

  std::printf("\ndurability vs fork handling, PBFT n=4 @ p=1%% (unsafe 5.9e-4/month):\n");
  EndToEndParams pbft_params;
  pbft_params.consensus = AnalyzePbft(PbftConfig::Standard(4),
                                      ReliabilityAnalyzer::ForUniformNodes(4, 0.01));
  pbft_params.window_hours = 720.0;
  pbft_params.mean_time_to_recover = 0.5;
  bench::Table durability({"P(data loss | safety violation)", "1-year durability"});
  for (const double loss : {1.0, 0.1, 0.01, 0.0001}) {
    pbft_params.data_loss_given_violation = loss;
    const auto report = ComputeEndToEnd(pbft_params);
    char loss_text[16];
    std::snprintf(loss_text, sizeof(loss_text), "%g", loss);
    durability.AddRow({loss_text, FormatPercent(report.mission_durability)});
  }
  durability.Print();
  std::printf(
      "\nshape check (paper §4): the same consensus protocol spans ~3 availability nines\n"
      "depending on recovery speed, and an 'unsafe' protocol whose forks are preserved is\n"
      "orders of magnitude more durable than its safety figure suggests.\n");
}

}  // namespace
}  // namespace probcon

int main() {
  probcon::bench::PrintBanner("E16", "consensus guarantees vs application-level nines");
  probcon::Run();
  return 0;
}
