// E3 — §1/§3 claim: "one can run Raft on nine, less reliable nodes that suffer a 8% failure
// rate and obtain the same 99.97% safety and liveness. If these resources are 10x cheaper
// ... this yields a 3x reduction in cost."

#include <cstdio>

#include "bench/bench_util.h"
#include "src/analysis/cost.h"
#include "src/analysis/reliability.h"

namespace probcon {
namespace {

void Run() {
  bench::PrintBanner("E3", "larger networks of less reliable nodes can be cheaper");

  const NodeType reliable{"on-demand(p=1%)", 0.01, 10.0};
  const NodeType spot{"spot(p=8%)", 0.08, 1.0};  // 10x cheaper.

  bench::Table table({"cluster", "S&L", "nines", "cost", "vs 3x on-demand"});
  const auto baseline = EvaluateRaftCluster({reliable}, {3});
  const auto alternative = EvaluateRaftCluster({spot}, {9});
  char buffer[64];
  for (const auto* plan : {&baseline, &alternative}) {
    std::snprintf(buffer, sizeof(buffer), "%.2f", plan->safe_and_live.nines());
    const double ratio = baseline.total_cost / plan->total_cost;
    char ratio_text[32];
    std::snprintf(ratio_text, sizeof(ratio_text), "%.2fx cheaper", ratio);
    table.AddRow({plan->Describe(), FormatPercent(plan->safe_and_live), buffer,
                  std::to_string(static_cast<int>(plan->total_cost)), ratio_text});
  }
  table.Print();

  std::printf(
      "\npaper: both print 99.97%%; nine spot nodes at 10x lower unit price cut cost ~3x.\n");

  // Let the optimizer rediscover it from the target alone.
  ClusterSearchOptions options;
  options.max_n = 9;
  const auto best =
      CheapestRaftCluster({reliable, spot}, Probability::FromComplement(3.2e-4), options);
  if (best.ok()) {
    std::printf("optimizer pick for a 99.97%%-class target: %s\n", best->Describe().c_str());
  }
}

}  // namespace
}  // namespace probcon

int main() {
  probcon::Run();
  return 0;
}
