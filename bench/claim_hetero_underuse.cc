// E4 — §3 claim: "Raft and PBFT underutilize reliable nodes."
//
// Paper setup: a 7-node p=8% Raft cluster is 99.88% safe-and-live. Replacing three nodes with
// p=1% ones (almost half the cluster) improves the count-based figure only slightly, because
// quorum-oblivious Raft may persist data on the unreliable nodes alone. Requiring every
// persistence quorum to include a reliable node lifts worst-case durability much further.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/analysis/durability.h"
#include "src/analysis/reliability.h"

namespace probcon {
namespace {

void Run() {
  bench::PrintBanner("E4", "fault-curve-aware quorum placement vs oblivious Raft");

  const std::vector<double> uniform(7, 0.08);
  const std::vector<double> mixed = {0.08, 0.08, 0.08, 0.08, 0.01, 0.01, 0.01};
  const auto config = RaftConfig::Standard(7);

  const auto uniform_report =
      AnalyzeRaft(config, ReliabilityAnalyzer::ForIndependentNodes(uniform));
  const auto mixed_report =
      AnalyzeRaft(config, ReliabilityAnalyzer::ForIndependentNodes(mixed));

  bench::Table sl({"cluster", "S&L", "paper"});
  sl.AddRow({"7 nodes @ 8%", FormatPercent(uniform_report.safe_and_live), "99.88%"});
  sl.AddRow({"4 @ 8% + 3 @ 1% (oblivious)", FormatPercent(mixed_report.safe_and_live),
             "~99.98%"});
  sl.Print();

  // Durability of a committed entry: which 4 nodes hold it?
  const IndependentFailureModel mixed_model(mixed);
  const auto placement = AnalyzePlacementDurability(mixed_model, config.q_per);
  const auto constrained = WorstCaseLossWithReliableConstraint(
      mixed_model, config.q_per, /*reliable_set=*/0b1110000, /*min_reliable=*/1);

  bench::Table durability({"persistence-quorum policy", "worst-case durability", "paper"});
  durability.AddRow({"oblivious (may use only 8% nodes)",
                     FormatPercent(placement.worst_case_loss.Not()), "(implied baseline)"});
  durability.AddRow({">= 1 reliable node per quorum",
                     FormatPercent(constrained.Not()), "99.994%"});
  durability.AddRow({"most reliable 4 nodes", FormatPercent(placement.best_case_loss.Not()),
                     "-"});
  durability.AddRow({"random quorum", FormatPercent(placement.random_quorum_loss.Not()), "-"});
  durability.Print();

  std::printf(
      "\nshape check: replacing 3 of 7 nodes barely moves the count-based S&L figure, while\n"
      "the placement-aware constraint improves worst-case durability by %.0fx.\n",
      placement.worst_case_loss.value() / constrained.value());
}

}  // namespace
}  // namespace probcon

int main() {
  probcon::Run();
  return 0;
}
