// E10 — Ablations of the §4 probability-native mechanisms:
//   (a) dynamic quorum sizing vs fixed majorities,
//   (b) committee sampling strategies over a heterogeneous fleet,
//   (c) reliability-aware vs round-robin leader placement,
//   (d) preemptive reconfiguration as the fleet ages,
//   (e) Ben-Or (quorum-free randomized consensus) decision-round distribution,
//   (f) VRF-style sortition committee sizing (Algorand, §5).

#include <cmath>
#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "src/analysis/committee.h"
#include "src/analysis/reliability.h"
#include "src/analysis/weighted.h"
#include "src/consensus/benor/benor_node.h"
#include "src/probnative/leader_selector.h"
#include "src/probnative/quorum_sizer.h"
#include "src/probnative/reconfiguration.h"
#include "src/probnative/sortition.h"
#include "src/sim/metrics.h"

namespace probcon {
namespace {

std::vector<double> HeterogeneousFleet() {
  std::vector<double> fleet;
  Rng rng(2024);
  for (int i = 0; i < 21; ++i) {
    // Mix of tiers: a third excellent, a third average, a third flaky.
    if (i % 3 == 0) {
      fleet.push_back(0.002 + 0.002 * rng.NextDouble());
    } else if (i % 3 == 1) {
      fleet.push_back(0.01 + 0.01 * rng.NextDouble());
    } else {
      fleet.push_back(0.05 + 0.1 * rng.NextDouble());
    }
  }
  return fleet;
}

void QuorumSizing() {
  std::printf("\n(a) dynamic quorum sizing, n=9 heterogeneous:\n");
  std::vector<double> cluster = {0.002, 0.002, 0.002, 0.01, 0.01, 0.01, 0.08, 0.08, 0.08};
  const auto majority = AnalyzeRaft(RaftConfig::Standard(9),
                                    ReliabilityAnalyzer::ForIndependentNodes(cluster));
  std::printf("  fixed majorities (5/5): live %s\n", FormatPercent(majority.live).c_str());
  for (const double target : {1e-3, 1e-5, 1e-7}) {
    const auto sized = SizeRaftQuorums(cluster, Probability::FromComplement(target));
    if (sized.ok()) {
      std::printf("  target %.0e -> %s, live %s (q_per shrinks when the target allows)\n",
                  target, sized->config.Describe().c_str(),
                  FormatPercent(sized->live).c_str());
    } else {
      std::printf("  target %.0e -> infeasible on this cluster\n", target);
    }
  }
}

void CommitteeSampling() {
  std::printf("\n(b) committee sampling from a 21-node fleet:\n");
  const auto fleet = HeterogeneousFleet();
  Rng rng(7);
  bench::Table table({"committee", "size", "Raft S&L"});
  for (const int m : {3, 5, 7}) {
    const auto best = SelectCommittee(fleet, m, CommitteeStrategy::kMostReliable, nullptr);
    const auto random = SelectCommittee(fleet, m, CommitteeStrategy::kRandom, &rng);
    table.AddRow({"most reliable", std::to_string(m),
                  FormatPercent(CommitteeRaftReliability(fleet, best))});
    table.AddRow({"random (oblivious)", std::to_string(m),
                  FormatPercent(CommitteeRaftReliability(fleet, random))});
  }
  std::vector<int> everyone(fleet.size());
  for (size_t i = 0; i < fleet.size(); ++i) {
    everyone[i] = static_cast<int>(i);
  }
  table.AddRow({"whole fleet", std::to_string(fleet.size()),
                FormatPercent(CommitteeRaftReliability(fleet, everyone))});
  table.Print();
  const int minimal =
      MinCommitteeSizeForTarget(fleet, Probability::FromComplement(1e-6));
  std::printf("  smallest committee for six nines: %d nodes (vs %zu-node fleet)\n", minimal,
              fleet.size());
}

void LeaderPlacement() {
  std::printf("\n(c) leader placement over one week (fault-curve aware vs round-robin):\n");
  const ConstantFaultCurve steady(1e-5);
  const WeibullFaultCurve aging(3.0, 5000.0);
  const ConstantFaultCurve flaky(5e-4);
  const LeaderSelector selector({&steady, &aging, &flaky, &steady, &aging},
                                {0.0, 6000.0, 0.0, 100.0, 500.0});
  const double week = 168.0;
  std::printf("  expected leader failures: round-robin %.4f, best-leader %.6f (%.0fx fewer)\n",
              selector.ExpectedLeaderFailuresRoundRobin(week),
              selector.ExpectedLeaderFailuresBestLeader(week),
              selector.ExpectedLeaderFailuresRoundRobin(week) /
                  selector.ExpectedLeaderFailuresBestLeader(week));
}

void PreemptiveReconfiguration() {
  std::printf("\n(d) preemptive reconfiguration as nodes age (bathtub wear-out):\n");
  const ConstantFaultCurve good(1e-6);
  const WeibullFaultCurve wearing(4.0, 20000.0);
  std::vector<FleetNode> fleet = {
      {0, &good, 0.0},     {1, &good, 0.0},     {2, &wearing, 0.0},
      {3, &good, 0.0},     {4, &wearing, 0.0},
  };
  const Probability target = Probability::FromComplement(1e-6);
  for (const double age : {1000.0, 10000.0, 17000.0}) {
    fleet[2].age = age;
    fleet[4].age = age * 0.5;
    const auto plan = PlanReconfiguration(fleet, {0, 1, 2}, {3, 4}, 720.0, target);
    std::printf("  node 2 at age %6.0f h: before %s, swaps %zu, after %s%s\n", age,
                FormatPercent(plan.reliability_before).c_str(), plan.swaps.size(),
                FormatPercent(plan.reliability_after).c_str(),
                plan.meets_target ? "" : " (target unmet)");
  }
}

void SortitionSizing() {
  std::printf("\n(f) VRF-style sortition (Algorand, paper §5): expected committee size for an\n"
              "    honest-majority committee at each nines target, 100-node fleet:\n");
  bench::Table table({"fleet p", "3 nines", "5 nines", "7 nines"});
  for (const double p : {0.01, 0.05, 0.10, 0.20}) {
    const std::vector<double> fleet(100, p);
    std::vector<std::string> row;
    char p_text[16];
    std::snprintf(p_text, sizeof(p_text), "%g", p);
    row.push_back(p_text);
    for (const double nines : {3.0, 5.0, 7.0}) {
      const double committee = MinExpectedCommitteeForHonestMajority(
          fleet, Probability::FromComplement(std::pow(10.0, -nines)));
      char text[24];
      if (committee < 0.0) {
        std::snprintf(text, sizeof(text), "infeasible");
      } else {
        std::snprintf(text, sizeof(text), "%.1f nodes", committee);
      }
      row.emplace_back(text);
    }
    table.AddRow(std::move(row));
  }
  table.Print();
  std::printf("  sampling stays far below the 100-node fleet until faults are rampant.\n");
}

void BenOrRounds() {
  std::printf("\n(e) Ben-Or decision rounds (quorum-free consensus), n=5 f=2, 60 runs:\n");
  SampleStats rounds;
  for (uint64_t seed = 1; seed <= 60; ++seed) {
    Simulator simulator(seed);
    Network network(&simulator, 5, std::make_unique<UniformLatencyModel>(5.0, 15.0));
    std::vector<std::unique_ptr<BenOrNode>> nodes;
    for (int i = 0; i < 5; ++i) {
      nodes.push_back(std::make_unique<BenOrNode>(&simulator, &network, i, 2, i % 2));
    }
    for (auto& node : nodes) {
      node->Start();
    }
    simulator.Run(120'000.0);
    for (const auto& node : nodes) {
      if (node->decided()) {
        rounds.Add(static_cast<double>(node->decision_round()));
        break;
      }
    }
  }
  std::printf("  rounds to decide: mean %.2f, p50 %.0f, p99 %.0f, max %.0f\n", rounds.Mean(),
              rounds.Percentile(0.5), rounds.Percentile(0.99), rounds.Max());
}

void StakeWeightedVoting() {
  std::printf("\n(g) stake-by-reliability voting (the §2 stake/trust idea as quorum weights):\n");
  bench::Table table({"cluster", "one-node-one-vote S&L", "log-odds stake S&L"});
  const struct {
    const char* label;
    std::vector<double> probs;
  } fleets[] = {
      {"3 good + 4 flaky", {0.001, 0.001, 0.001, 0.2, 0.2, 0.2, 0.2}},
      {"uniform 5 @ 4%", {0.04, 0.04, 0.04, 0.04, 0.04}},
      {"1 great + 6 poor", {0.0001, 0.15, 0.15, 0.15, 0.15, 0.15, 0.15}},
  };
  for (const auto& fleet : fleets) {
    const int n = static_cast<int>(fleet.probs.size());
    const auto uniform = AnalyzeWeightedRaft(WeightedRaftConfig::Uniform(n), fleet.probs);
    const auto staked = AnalyzeWeightedRaft(
        WeightedRaftConfig::StakeByReliability(fleet.probs), fleet.probs);
    table.AddRow({fleet.label, FormatPercent(uniform.safe_and_live),
                  FormatPercent(staked.safe_and_live)});
  }
  table.Print();
  std::printf("  same structural safety; reliability-proportional stake converts node-count\n"
              "  quorums into weight-of-evidence quorums.\n");
}

}  // namespace
}  // namespace probcon

int main() {
  probcon::bench::PrintBanner("E10", "probability-native mechanism ablations (paper §4)");
  probcon::QuorumSizing();
  probcon::CommitteeSampling();
  probcon::LeaderPlacement();
  probcon::PreemptiveReconfiguration();
  probcon::BenOrRounds();
  probcon::SortitionSizing();
  probcon::StakeWeightedVoting();
  return 0;
}
