// E6 — §3 claim: "Linear size quorums can be overkill."
//
// At N=100 the f-threshold view-change trigger quorum is f+1 = 34 nodes, to guarantee one
// correct member. Probabilistically, at p_u = 1% a random FIVE-node sample already contains a
// correct node with ten nines. This bench sweeps sample sizes and reports the nines, for both
// the iid model and the adversarial fixed-f hypergeometric model.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/quorum/probabilistic_quorum.h"

namespace probcon {
namespace {

void Run() {
  bench::PrintBanner("E6", "probabilistic quorums vs f+1-sized trigger quorums (N=100)");

  constexpr int kN = 100;
  constexpr int kF = 33;  // f-threshold sizing: |Q_vc_t| = f + 1 = 34.
  constexpr double kP = 0.01;

  bench::Table table({"sample size q", "P(all faulty), iid p=1%", "nines",
                      "P(all from fixed 33-node bad set)"});
  for (const int q : {1, 2, 3, 5, 8, 13, 21, 34}) {
    const auto iid = IidQuorumAllFaulty(q, kP);
    const auto hyper = RandomQuorumAllFromSet(kN, q, kF);
    char iid_text[32];
    char nines_text[32];
    char hyper_text[32];
    std::snprintf(iid_text, sizeof(iid_text), "%.3g", iid.value());
    std::snprintf(nines_text, sizeof(nines_text), "%.1f", iid.Not().nines());
    std::snprintf(hyper_text, sizeof(hyper_text), "%.3g", hyper.value());
    table.AddRow({std::to_string(q), iid_text, nines_text, hyper_text});
  }
  table.Print();

  std::printf("\npaper: q=5 at p=1%% already gives ten nines (P = 1e-10).\n");
  const int for_nine_nines =
      MinQuorumSizeForCorrectMember(kN, kF, Probability::FromComplement(1e-9));
  std::printf(
      "even against an adversarial fixed bad set of 33, nine nines need only q=%d (vs 34).\n",
      for_nine_nines);

  std::printf("\nrandom-quorum intersection (MRW probabilistic quorums), N=100:\n");
  bench::Table intersect({"q", "P(two random q-quorums disjoint)"});
  for (const int q : {5, 10, 15, 20, 25, 34, 51}) {
    char text[32];
    std::snprintf(text, sizeof(text), "%.3g", RandomQuorumsDisjoint(kN, q, q).value());
    intersect.AddRow({std::to_string(q), text});
  }
  intersect.Print();
}

}  // namespace
}  // namespace probcon

int main() {
  probcon::Run();
  return 0;
}
