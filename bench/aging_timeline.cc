// E14 — §2's second observation, quantified: "Fault likelihood evolves over time."
//
// A cluster of bathtub-curve nodes is analyzed monthly over four years of ageing. The
// f-threshold model would report the same "tolerates f=2" forever; the probabilistic view
// shows the nines eroding as wear-out sets in, the instant the cluster drops below its
// reliability target, and how the reliability-aware protocol variants buy the difference.

#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "src/analysis/timeline.h"
#include "src/faultmodel/afr.h"
#include "src/faultmodel/fault_curve.h"
#include "src/probnative/reliability_aware_raft.h"

namespace probcon {
namespace {

void TimelineSweep() {
  // Five identical bathtub nodes: infant mortality fading over ~3 months, 2% AFR useful
  // life, wear-out around year 4.
  const auto bathtub = MakeBathtubCurve(/*infant_shape=*/0.5, /*infant_scale=*/3.0e6,
                                        /*useful_life_rate=*/RateFromAfr(0.02),
                                        /*wearout_shape=*/5.0, /*wearout_scale=*/4.2e4);
  std::vector<const FaultCurve*> curves(5, &bathtub);
  std::vector<double> ages(5, 0.0);

  TimelineOptions options;
  options.horizon = 4.0 * kHoursPerYear;
  options.steps = 9;
  options.window = 30 * 24.0;

  const auto timeline =
      RaftReliabilityTimeline(RaftConfig::Standard(5), curves, ages, options);
  bench::Table table({"fleet age", "p(node fails/month)", "S&L", "nines"});
  for (const auto& point : timeline) {
    char age[24];
    char p[24];
    char nines[16];
    std::snprintf(age, sizeof(age), "%.1f y", point.time / kHoursPerYear);
    std::snprintf(p, sizeof(p), "%.3f%%", 100.0 * point.window_failure_probabilities[0]);
    std::snprintf(nines, sizeof(nines), "%.2f", point.report.safe_and_live.nines());
    table.AddRow({age, p, FormatPercent(point.report.safe_and_live), nines});
  }
  table.Print();

  const auto target = Probability::FromComplement(1e-5);
  const double infancy_breach = FirstTimeBelowTarget(timeline, target);
  std::vector<TimelinePoint> after_burn_in(timeline.begin() + 2, timeline.end());
  const double wearout_breach = FirstTimeBelowTarget(after_burn_in, target);
  std::printf("\nfive-nines target breached during infant mortality (t=%.1f y) and again at\n"
              "wear-out (t=%.1f y) -> burn-in handles the first, preemptive reconfiguration\n"
              "(E10d) the second.\n",
              infancy_breach / kHoursPerYear, wearout_breach / kHoursPerYear);
}

void StaggeredFleet() {
  std::printf("\nstaggered vintages (the operational fix): replace one node per year.\n");
  const auto bathtub = MakeBathtubCurve(0.5, 3.0e6, RateFromAfr(0.02), 5.0, 4.2e4);
  std::vector<const FaultCurve*> curves(5, &bathtub);
  // Ages spread over 0..4 years instead of marching in lockstep.
  const std::vector<double> staggered = {0.0, 1.0 * kHoursPerYear, 2.0 * kHoursPerYear,
                                         3.0 * kHoursPerYear, 3.5 * kHoursPerYear};
  TimelineOptions options;
  options.horizon = 1.0 * kHoursPerYear;
  options.steps = 5;
  options.window = 30 * 24.0;
  const auto timeline =
      RaftReliabilityTimeline(RaftConfig::Standard(5), curves, staggered, options);
  bench::Table table({"t", "S&L (staggered fleet)", "nines"});
  for (const auto& point : timeline) {
    char t[24];
    char nines[16];
    std::snprintf(t, sizeof(t), "+%.2f y", point.time / kHoursPerYear);
    std::snprintf(nines, sizeof(nines), "%.2f", point.report.safe_and_live.nines());
    table.AddRow({t, FormatPercent(point.report.safe_and_live), nines});
  }
  table.Print();
}

void ReliabilityAwareVariant() {
  std::printf("\nreliability-aware Raft on a mixed-age cluster (protocol-level E4):\n");
  // 2 young nodes (0.2%/mo) + 3 old ones (2%/mo).
  const std::vector<double> probs = {0.002, 0.002, 0.02, 0.02, 0.02};
  const auto report = AnalyzeReliabilityAwareRaft(RaftConfig::Standard(5), probs,
                                                  /*durable_member_count=*/2);
  bench::Table table({"variant", "live", "worst-case durability"});
  table.AddRow({"plain Raft", FormatPercent(report.baseline_live),
                FormatPercent(report.baseline_durability)});
  table.AddRow({"durable-member commit quorums", FormatPercent(report.live),
                FormatPercent(report.durability)});
  table.Print();
  std::printf("the constraint costs %.2g of liveness complement and buys %.0fx durability.\n",
              report.live.complement() - report.baseline_live.complement(),
              report.baseline_durability.complement() / report.durability.complement());
}

}  // namespace
}  // namespace probcon

int main() {
  probcon::bench::PrintBanner("E14", "reliability over fleet lifetime (bathtub ageing)");
  probcon::TimelineSweep();
  probcon::StaggeredFleet();
  probcon::ReliabilityAwareVariant();
  return 0;
}
