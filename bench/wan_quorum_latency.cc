// E17 — The performance side of probability-native consensus: smaller commit quorums are
// FASTER, and the probabilistic analysis tells you when you can afford them.
//
// A 5-node geo-replicated Raft cluster (3 regions, WAN latencies) measures commit latency
// under majority quorums (q_per=3: must wait for a cross-region ack) vs. a flexible
// q_per=2 / q_vc=4 configuration (commits can complete intra-region). The analysis side
// prices the liveness cost of each configuration, so the latency-for-nines trade is explicit
// — the paper's "more performant hardware with no reliability trade-off" argument applied to
// quorum geometry.

#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "src/analysis/reliability.h"
#include "src/consensus/raft/raft_cluster.h"

namespace probcon {
namespace {

std::unique_ptr<NetworkModel> WanTopology() {
  // Nodes 0,1: us-east; 2,3: us-west; 4: eu. One-way latencies in ms.
  const std::vector<int> region_of = {0, 0, 1, 1, 2};
  const std::vector<std::vector<SimTime>> region_latency = {
      {1.0, 32.0, 45.0},
      {32.0, 1.0, 70.0},
      {45.0, 70.0, 1.0},
  };
  return std::make_unique<MatrixLatencyModel>(
      MatrixLatencyModel::FromRegions(region_of, region_latency, /*local_latency=*/1.0));
}

struct RunResult {
  double p50 = 0.0;
  double p99 = 0.0;
  uint64_t commits = 0;
};

RunResult RunConfig(const RaftConfig& config, uint64_t seed) {
  RaftClusterOptions options;
  options.config = config;
  options.network_model_factory = WanTopology;
  // WAN-scale timeouts so elections don't thrash.
  options.timing.election_timeout_min = 600.0;
  options.timing.election_timeout_max = 1'200.0;
  options.timing.heartbeat_interval = 150.0;
  options.client_interval = 50.0;
  options.seed = seed;
  RaftCluster cluster(options);
  cluster.Start();
  cluster.RunUntil(120'000.0);
  RunResult result;
  if (!cluster.checker().commit_latency().empty()) {
    result.p50 = cluster.checker().commit_latency().Percentile(0.5);
    result.p99 = cluster.checker().commit_latency().Percentile(0.99);
  }
  result.commits = cluster.checker().committed_slots();
  return result;
}

void Run() {
  std::printf("\n5 nodes across us-east(2) / us-west(2) / eu(1); client at the leader's "
              "region.\n\n");
  bench::Table table({"config", "commit p50 (ms)", "commit p99 (ms)", "analytic live @p=1%",
                      "@p=4%"});
  const RaftConfig configs[] = {
      RaftConfig::Standard(5),  // q_per=3: every commit crosses a region.
      RaftConfig{5, 2, 4},      // q_per=2: an intra-region ack can commit.
      RaftConfig{5, 4, 2},      // Anti-pattern: bigger commit quorum, cheaper elections.
  };
  for (const auto& config : configs) {
    // Average over seeds to wash out leader placement luck.
    double p50 = 0.0;
    double p99 = 0.0;
    constexpr int kSeeds = 5;
    for (uint64_t seed = 1; seed <= kSeeds; ++seed) {
      const auto result = RunConfig(config, seed * 17);
      p50 += result.p50 / kSeeds;
      p99 += result.p99 / kSeeds;
    }
    const auto live1 =
        AnalyzeRaft(config, ReliabilityAnalyzer::ForUniformNodes(5, 0.01)).live;
    const auto live4 =
        AnalyzeRaft(config, ReliabilityAnalyzer::ForUniformNodes(5, 0.04)).live;
    char p50_text[24];
    char p99_text[24];
    std::snprintf(p50_text, sizeof(p50_text), "%.1f", p50);
    std::snprintf(p99_text, sizeof(p99_text), "%.1f", p99);
    const bool safe = RaftIsSafeStructurally(config);
    table.AddRow({config.Describe() + (safe ? "" : " (UNSAFE)"), p50_text, p99_text,
                  FormatPercent(live1), FormatPercent(live4)});
  }
  table.Print();
  std::printf(
      "\nshape check: shrinking q_per from 3 to 2 cuts the commit path below the WAN RTT; the\n"
      "analysis prices the liveness change so the trade is explicit rather than hidden.\n");
}

}  // namespace
}  // namespace probcon

int main() {
  probcon::bench::PrintBanner("E17", "quorum geometry vs commit latency (geo-replication)");
  probcon::Run();
  return 0;
}
