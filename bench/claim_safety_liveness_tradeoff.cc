// E5 — §3 claim: "There is a hidden exploitable trade-off between safety and liveness."
//
// In the f-threshold model, PBFT at 4 and 5 nodes both "tolerate 1 fault", so 5 nodes look
// pointless. Probabilistically, 5 nodes buy 42-60x better safety for a 1.67x liveness hit —
// and beat the 40%-more-expensive 7-node cluster on safety. This bench prints the whole
// frontier, plus the quorum-size frontier at fixed n (the knob §4 proposes exposing).

#include <cstdio>

#include "bench/bench_util.h"
#include "src/analysis/reliability.h"
#include "src/probnative/quorum_sizer.h"

namespace probcon {
namespace {

void Run() {
  bench::PrintBanner("E5", "PBFT safety/liveness trade-off (4 vs 5 vs 7 nodes, p=1%)");

  bench::Table table({"N", "unsafe prob", "unlive prob", "Safe%", "Live%"});
  double unsafe4 = 0.0;
  double unsafe5 = 0.0;
  double unlive4 = 0.0;
  double unlive5 = 0.0;
  for (const int n : {4, 5, 7}) {
    const auto report = AnalyzePbft(PbftConfig::Standard(n),
                                    ReliabilityAnalyzer::ForUniformNodes(n, 0.01));
    char unsafe_text[32];
    char unlive_text[32];
    std::snprintf(unsafe_text, sizeof(unsafe_text), "%.3g", report.safe.complement());
    std::snprintf(unlive_text, sizeof(unlive_text), "%.3g", report.live.complement());
    table.AddRow({std::to_string(n), unsafe_text, unlive_text, FormatPercent(report.safe),
                  FormatPercent(report.live)});
    if (n == 4) {
      unsafe4 = report.safe.complement();
      unlive4 = report.live.complement();
    }
    if (n == 5) {
      unsafe5 = report.safe.complement();
      unlive5 = report.live.complement();
    }
  }
  table.Print();
  std::printf(
      "\nmeasured: 5 nodes are %.0fx safer and %.2fx less live than 4 (paper: 42-60x, "
      "1.67x).\n",
      unsafe4 / unsafe5, unlive5 / unlive4);

  std::printf("\nquorum-size frontier at n=7, p=1%% (same trade-off, one cluster):\n");
  bench::Table frontier({"q", "q_vc_t", "Safe%", "Live%"});
  for (const auto& point : PbftQuorumFrontier(std::vector<double>(7, 0.01))) {
    frontier.AddRow({std::to_string(point.config.q_eq), std::to_string(point.config.q_vc_t),
                     FormatPercent(point.safe), FormatPercent(point.live)});
  }
  frontier.Print();
}

}  // namespace
}  // namespace probcon

int main() {
  probcon::Run();
  return 0;
}
