// E9 — The storage-community metrics the paper says consensus should adopt (§2): MTTF / MTTDL
// / steady-state availability from Markov repair models, computed for consensus clusters.
//
// Mirrors Zorfu's "mean time to more than f failures" analysis and the RAID MTTDL
// calculations (Patterson et al.) the paper cites, with lambda taken from AFR-style fault
// curves and a configurable repair rate mu.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/faultmodel/afr.h"
#include "src/markov/repair_model.h"

namespace probcon {
namespace {

std::string Hours(double h) {
  char buffer[48];
  if (h > 24.0 * 365.25 * 1000.0) {
    std::snprintf(buffer, sizeof(buffer), "%.3g years", h / (24.0 * 365.25));
  } else if (h > 24.0 * 365.25) {
    std::snprintf(buffer, sizeof(buffer), "%.1f years", h / (24.0 * 365.25));
  } else {
    std::snprintf(buffer, sizeof(buffer), "%.1f days", h / 24.0);
  }
  return buffer;
}

void Run() {
  bench::PrintBanner("E9", "MTTF / MTTDL / availability for consensus clusters with repair");

  // lambda from a 4% AFR (the paper's "traditional server faults" figure); repair in 12h.
  const double lambda = RateFromAfr(0.04);
  const double mu = 1.0 / 12.0;

  bench::Table table({"cluster", "MTTU (liveness outage)", "MTT all-replicas-down",
                      "steady-state availability"});
  for (const int n : {3, 5, 7, 9}) {
    RepairModelParams params;
    params.n = n;
    params.failure_rate = lambda;
    params.repair_rate = mu;
    params.repair_servers = n;
    const ConsensusRepairModel model(params);
    const int quorum = n / 2 + 1;
    const auto mttu = model.MeanTimeToUnavailability(quorum);
    const auto wipe = model.MeanTimeToQuorumLoss(n);
    const auto availability = model.SteadyStateAvailability(quorum);
    table.AddRow({"raft n=" + std::to_string(n), mttu.ok() ? Hours(*mttu) : "-",
                  wipe.ok() ? Hours(*wipe) : "-",
                  availability.ok() ? FormatPercent(*availability) : "-"});
  }
  table.Print();

  std::printf("\nrepair-rate sensitivity (n=5, quorum=3, AFR=4%%):\n");
  bench::Table sensitivity({"repair time", "MTTU", "availability"});
  for (const double hours : {1.0, 12.0, 72.0, 24.0 * 30}) {
    RepairModelParams params;
    params.n = 5;
    params.failure_rate = lambda;
    params.repair_rate = 1.0 / hours;
    params.repair_servers = 5;
    const ConsensusRepairModel model(params);
    const auto mttu = model.MeanTimeToUnavailability(3);
    const auto availability = model.SteadyStateAvailability(3);
    char label[32];
    std::snprintf(label, sizeof(label), "%.0f h", hours);
    sensitivity.AddRow({label, mttu.ok() ? Hours(*mttu) : "-",
                        availability.ok() ? FormatPercent(*availability) : "-"});
  }
  sensitivity.Print();

  std::printf("\nmission-window risk, n=5 AFR=4%% repair=12h (transient analysis):\n");
  bench::Table transient({"mission", "P(liveness outage within mission)"});
  RepairModelParams params;
  params.n = 5;
  params.failure_rate = lambda;
  params.repair_rate = 1.0 / 12.0;
  params.repair_servers = 5;
  const ConsensusRepairModel model(params);
  for (const double days : {30.0, 90.0, 365.25, 3 * 365.25}) {
    char label[32];
    std::snprintf(label, sizeof(label), "%.0f days", days);
    char risk[32];
    std::snprintf(risk, sizeof(risk), "%.3g",
                  model.UnavailabilityWithin(3, days * 24.0).value());
    transient.AddRow({label, risk});
  }
  transient.Print();
  std::printf(
      "\nshape check: MTTU grows steeply with cluster size and repair speed — the 'expected\n"
      "time until something bad happens' framing the paper imports from storage.\n");
}

}  // namespace
}  // namespace probcon

int main() {
  probcon::Run();
  return 0;
}
