// E8 — Validates the §3 analytical model against the EXECUTABLE protocols on the simulator.
//
// The analysis predicts, per failure configuration, whether the protocol is safe/live; the
// simulator samples actual runs. Three cross-checks:
//
//  (1) Raft liveness frequencies: crash each node with probability p before the measurement
//      window; the fraction of live runs must land inside the analytic Poisson-binomial
//      prediction's confidence band. (Failure probabilities are inflated vs the paper's 1-8%
//      so a few hundred runs resolve the frequencies.)
//  (2) Raft safety: with Theorem-3.2-satisfying quorums, no run may ever violate safety;
//      with violating quorums (q_vc too small) violations must actually appear.
//  (3) PBFT safety semantics: sampled runs may only violate safety in configurations the
//      Theorem-3.1 predicate marks unsafe (the theorem quantifies over ALL schedules, so the
//      empirical rate is a lower bound on the configuration rate).

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/analysis/reliability.h"
#include "src/chaos/nemesis.h"
#include "src/common/check.h"
#include "src/common/rng.h"
#include "src/consensus/pbft/pbft_cluster.h"
#include "src/consensus/raft/raft_cluster.h"
#include "src/exec/parallel.h"
#include "src/exec/thread_pool.h"
#include "src/faultmodel/fault_curve.h"
#include "src/obs/run_report.h"
#include "src/prob/interval.h"
#include "src/sim/failure_injector.h"

namespace probcon {
namespace {

constexpr SimTime kCrashWindow = 2'000.0;
constexpr SimTime kMeasureStart = 6'000.0;
constexpr SimTime kRunEnd = 12'000.0;

struct RaftTrialResult {
  bool live = false;
  bool safe = false;
  int crashes = 0;
  uint64_t elections = 0;  // kElectionStarted count, from the per-trial trace.
};

RaftTrialResult RunRaftTrial(int n, double p, const RaftConfig& config, uint64_t seed) {
  RaftClusterOptions options;
  options.config = config;
  options.seed = seed;
  RaftCluster cluster(options);
  // Tracing never touches the rng, so instrumented trials sample the same runs as before.
  TraceLog trace;
  MetricsRegistry metrics;
  cluster.simulator().AttachTracer(&trace, &metrics);
  cluster.Start();

  // Decide the failure configuration up front (the analysis' model) and crash at a uniform
  // time inside the crash window.
  RaftTrialResult result;
  Rng rng(seed * 7919 + 13);
  for (int i = 0; i < n; ++i) {
    if (rng.NextBernoulli(p)) {
      ++result.crashes;
      const SimTime when = kCrashWindow * rng.NextDouble();
      RaftNode* node = &cluster.node(i);
      cluster.simulator().ScheduleAt(when, [node]() { node->Crash(); });
    }
  }
  cluster.RunUntil(kMeasureStart);
  const uint64_t committed_before = cluster.checker().max_committed_slot();
  cluster.RunUntil(kRunEnd);
  result.live = cluster.checker().max_committed_slot() > committed_before;
  result.safe = cluster.checker().safe();
  if (const Counter* elections = metrics.FindCounter("raft.elections_started")) {
    result.elections = elections->value();
  }
  return result;
}

void ValidateRaftLiveness(bench::JsonReport* report) {
  std::printf("\n(1) Raft liveness: empirical run fraction vs analytic prediction\n");
  bench::Table table({"n", "p", "trials", "empirical live", "95% CI", "analytic", "inside CI",
                      "avg elections"});
  constexpr int kTrials = 150;
  for (const int n : {3, 5}) {
    for (const double p : {0.15, 0.3, 0.5}) {
      const RaftConfig config = RaftConfig::Standard(n);
      // Each trial is an independent simulator run keyed only by its seed, so the batch
      // fans out across the pool; aggregation below walks results in trial order.
      const auto results = RunTrials(kTrials, [&](uint64_t trial) {
        return RunRaftTrial(n, p, config, static_cast<uint64_t>(n) * 1000 + trial);
      });
      uint64_t live_runs = 0;
      uint64_t total_elections = 0;
      for (const auto& result : results) {
        if (result.live) {
          ++live_runs;
        }
        total_elections += result.elections;
      }
      const auto ci = WilsonInterval(live_runs, kTrials);
      const auto analyzer = ReliabilityAnalyzer::ForUniformNodes(n, p);
      const double analytic =
          analyzer.EventProbability(MakeRaftLivePredicate(config)).value();
      char empirical_text[32];
      char ci_text[48];
      char analytic_text[32];
      char p_text[16];
      char elections_text[32];
      std::snprintf(empirical_text, sizeof(empirical_text), "%.3f", ci.point);
      std::snprintf(ci_text, sizeof(ci_text), "[%.3f, %.3f]", ci.low, ci.high);
      std::snprintf(analytic_text, sizeof(analytic_text), "%.3f", analytic);
      std::snprintf(p_text, sizeof(p_text), "%g", p);
      std::snprintf(elections_text, sizeof(elections_text), "%.1f",
                    static_cast<double>(total_elections) / kTrials);
      const bool inside = analytic >= ci.low && analytic <= ci.high;
      table.AddRow({std::to_string(n), p_text, std::to_string(kTrials), empirical_text,
                    ci_text, analytic_text, inside ? "yes" : "NO", elections_text});
    }
  }
  table.Print();
  if (report != nullptr) {
    report->AddTable("raft_liveness", table);
  }
}

void ValidateRaftSafety(bench::JsonReport* report) {
  std::printf("\n(2) Raft safety: structural theorem vs observed violations\n");
  bench::Table table({"config", "theorem", "runs", "violating runs"});
  const struct {
    RaftConfig config;
    const char* label;
  } cases[] = {
      {RaftConfig{5, 3, 3}, "n=5 majorities (safe)"},
      {RaftConfig{5, 2, 4}, "n=5 flexible q_per=2,q_vc=4 (safe)"},
      {RaftConfig{5, 2, 2}, "n=5 q_vc=2 (UNSAFE: N >= 2|Q_vc|)"},
  };
  for (const auto& test_case : cases) {
    constexpr int kRuns = 12;
    const auto violating = RunTrials(kRuns, [&](uint64_t run) {
      RaftClusterOptions options;
      options.config = test_case.config;
      options.seed = (run + 1) * 271;
      RaftCluster cluster(options);
      cluster.Start();
      cluster.RunUntil(1'000.0);
      cluster.network().SetPartition({0, 0, 1, 1, 1});
      cluster.RunUntil(6'000.0);
      cluster.network().ClearPartition();
      cluster.RunUntil(12'000.0);
      return !cluster.checker().safe();
    });
    int violations = 0;
    for (const bool violated : violating) {
      violations += violated ? 1 : 0;
    }
    table.AddRow({test_case.label,
                  RaftIsSafeStructurally(test_case.config) ? "safe" : "unsafe",
                  std::to_string(kRuns), std::to_string(violations)});
  }
  table.Print();
  std::printf("expectation: zero violations in safe rows, nonzero in the unsafe row.\n");
  if (report != nullptr) {
    report->AddTable("raft_safety", table);
  }
}

void ValidatePbftSafety(bench::JsonReport* report) {
  std::printf("\n(3) PBFT safety: sampled-run violations only in predicate-unsafe configs\n");
  bench::Table table({"n", "byz set", "Thm 3.1 verdict", "runs", "violating runs"});
  const struct {
    int n;
    std::vector<ByzantineBehavior> behaviors;
    const char* label;
  } cases[] = {
      {4,
       {ByzantineBehavior::kEquivocate, ByzantineBehavior::kHonest, ByzantineBehavior::kHonest,
        ByzantineBehavior::kHonest},
       "1 byz"},
      {4,
       {ByzantineBehavior::kEquivocate, ByzantineBehavior::kPromiscuous,
        ByzantineBehavior::kHonest, ByzantineBehavior::kHonest},
       "2 byz"},
      {7,
       {ByzantineBehavior::kEquivocate, ByzantineBehavior::kPromiscuous,
        ByzantineBehavior::kHonest, ByzantineBehavior::kHonest, ByzantineBehavior::kHonest,
        ByzantineBehavior::kHonest, ByzantineBehavior::kHonest},
       "2 byz"},
      {7,
       {ByzantineBehavior::kEquivocate, ByzantineBehavior::kPromiscuous,
        ByzantineBehavior::kPromiscuous, ByzantineBehavior::kHonest, ByzantineBehavior::kHonest,
        ByzantineBehavior::kHonest, ByzantineBehavior::kHonest},
       "3 byz"},
  };
  for (const auto& test_case : cases) {
    int byz_count = 0;
    for (const auto behavior : test_case.behaviors) {
      if (behavior != ByzantineBehavior::kHonest) {
        ++byz_count;
      }
    }
    const bool predicted_safe = PbftIsSafe(PbftConfig::Standard(test_case.n), byz_count);
    constexpr int kRuns = 6;
    const auto violating = RunTrials(kRuns, [&](uint64_t run) {
      PbftClusterOptions options;
      options.config = PbftConfig::Standard(test_case.n);
      options.behaviors = test_case.behaviors;
      options.seed = (run + 1) * 7;
      PbftCluster cluster(options);
      cluster.Start();
      cluster.RunUntil(15'000.0);
      return !cluster.checker().safe();
    });
    int violations = 0;
    for (const bool violated : violating) {
      violations += violated ? 1 : 0;
    }
    table.AddRow({std::to_string(test_case.n), test_case.label,
                  predicted_safe ? "safe" : "unsafe", std::to_string(kRuns),
                  std::to_string(violations)});
  }
  table.Print();
  std::printf(
      "expectation: zero violations in rows the theorem calls safe; violations appear in\n"
      "unsafe rows (the theorem quantifies over all schedules, so sampled rates are lower\n"
      "bounds, not equalities).\n");
  if (report != nullptr) {
    report->AddTable("pbft_safety", table);
  }
}

// Chaos cross-check: partition-heal churn through the Nemesis, compared against the
// analytic quorum-loss fraction. Each churn tick (every second) starts an 800 ms partition
// with probability p = 4%; half the splits are 2|3 (a majority side survives), half are
// 2|2|1 (no group holds a quorum -> the cluster MUST stall). Analytically the no-quorum
// windows cover p * (duration/interval) * P(no-quorum split) of the run; empirically each
// such window also drags a re-election tail behind it, so the measured unavailability is a
// strict upper envelope of the analytic floor.
void ValidateChaosUnavailability(bench::JsonReport* report) {
  std::printf("\n(4) chaos churn: empirical unavailability vs analytic quorum-loss floor\n");
  constexpr int kTrials = 10;
  constexpr SimTime kHorizon = 120'000.0;
  constexpr SimTime kChurnInterval = 1'000.0;
  constexpr SimTime kPartitionDuration = 800.0;
  constexpr double kChurnProbability = 0.04;

  struct ChurnTrial {
    double analytic = 0.0;   // No-quorum window time / horizon, from the plan itself.
    double empirical = 0.0;  // Window start -> first subsequent commit, summed / horizon.
    bool safe = false;
  };
  const auto trials = RunTrials(kTrials, [&](uint64_t trial) {
    ChurnTrial out;
    ChaosPlan plan;
    plan.seed = DeriveStreamSeed(99, trial);
    plan.horizon = kHorizon;
    std::vector<SimTime> no_quorum_starts;
    Rng rng(DeriveStreamSeed(4242, trial));
    for (SimTime t = kChurnInterval; t + kPartitionDuration < kHorizon;
         t += kChurnInterval) {
      if (!rng.NextBernoulli(kChurnProbability)) {
        continue;
      }
      ChaosRegime regime;
      regime.kind = RegimeKind::kPartition;
      regime.start = t;
      regime.end = t + kPartitionDuration;
      if (rng.NextBernoulli(0.5)) {
        regime.groups = {0, 0, 1, 1, 2};  // 2|2|1: no quorum anywhere.
        no_quorum_starts.push_back(t);
        out.analytic += kPartitionDuration / kHorizon;
      } else {
        regime.groups = {0, 0, 1, 1, 1};  // 2|3: the majority side keeps committing.
      }
      plan.regimes.push_back(regime);
    }

    RaftClusterOptions options;
    options.config = RaftConfig::Standard(5);
    options.seed = plan.seed;
    RaftCluster cluster(options);
    TraceLog trace;
    MetricsRegistry metrics;
    cluster.simulator().AttachTracer(&trace, &metrics);
    Nemesis nemesis(&cluster.simulator(), &cluster.network(), cluster.processes());
    CHECK(nemesis.Arm(plan).ok());
    cluster.Start();
    cluster.RunUntil(kHorizon);
    out.safe = cluster.checker().safe();

    // Downtime per no-quorum window: window start until the first commit at or after it
    // (which can only land after the heal), i.e. blackout plus the re-election tail.
    const std::vector<TraceEvent> commits = trace.EventsOfType(TraceEventType::kCommit);
    size_t cursor = 0;
    for (const SimTime start : no_quorum_starts) {
      while (cursor < commits.size() && commits[cursor].time < start) {
        ++cursor;
      }
      const SimTime next_commit = cursor < commits.size() ? commits[cursor].time : kHorizon;
      out.empirical += (next_commit - start) / kHorizon;
    }
    return out;
  });

  double analytic_sum = 0.0;
  double empirical_sum = 0.0;
  int safe_runs = 0;
  for (const ChurnTrial& trial : trials) {
    analytic_sum += trial.analytic;
    empirical_sum += trial.empirical;
    safe_runs += trial.safe ? 1 : 0;
  }
  const double model_floor = kChurnProbability * (kPartitionDuration / kChurnInterval) * 0.5;
  const double analytic = analytic_sum / kTrials;
  const double empirical = empirical_sum / kTrials;

  bench::Table table({"trials", "model floor", "sampled floor", "empirical", "tail overhead",
                      "safe runs"});
  char model_text[32], analytic_text[32], empirical_text[32], overhead_text[32];
  std::snprintf(model_text, sizeof(model_text), "%.4f", model_floor);
  std::snprintf(analytic_text, sizeof(analytic_text), "%.4f", analytic);
  std::snprintf(empirical_text, sizeof(empirical_text), "%.4f", empirical);
  std::snprintf(overhead_text, sizeof(overhead_text), "%.2fx",
                analytic > 0.0 ? empirical / analytic : 0.0);
  table.AddRow({std::to_string(kTrials), model_text, analytic_text, empirical_text,
                overhead_text, std::to_string(safe_runs) + "/" + std::to_string(kTrials)});
  table.Print();
  std::printf(
      "expectation: empirical >= sampled floor (every no-quorum window stalls commits for\n"
      "at least its own duration; the excess is leader re-election), and all runs safe.\n");
  if (report != nullptr) {
    report->AddTable("chaos_unavailability", table);
    report->AddValue("chaos.unavailability.model_floor", model_floor);
    report->AddValue("chaos.unavailability.analytic", analytic);
    report->AddValue("chaos.unavailability.empirical", empirical);
  }
}

// One fully traced exemplar run (src/obs): the RunReport makes "why did a run lose
// liveness" legible — elections and crashes per node, commit-latency distribution, fault
// timeline — instead of a bare live/safe bit.
void TracedExemplarRun() {
  std::printf("\n(5) traced exemplar: 5-node Raft, crash+repair, full run report\n\n");
  RaftClusterOptions options;
  options.config = RaftConfig::Standard(5);
  options.seed = 20250806;
  RaftCluster cluster(options);
  TraceLog trace;
  MetricsRegistry metrics;
  cluster.simulator().AttachTracer(&trace, &metrics);

  std::vector<std::unique_ptr<FaultCurve>> curves;
  for (int i = 0; i < 5; ++i) {
    curves.push_back(std::make_unique<ConstantFaultCurve>(
        ConstantFaultCurve::FromWindowProbability(0.3, 10'000.0)));
  }
  FailureInjector injector(&cluster.simulator(), cluster.processes(), std::move(curves),
                           /*repair_rate=*/1.0 / 2'000.0);
  cluster.Start();
  injector.Arm();
  cluster.RunUntil(kRunEnd);

  RunReportOptions report_options;
  report_options.max_timeline_rows = 12;
  std::printf("%s", RenderRunReport(trace, metrics, report_options).c_str());
}

// Snapshot of the global pool's scheduler counters after all trial batches ran: how much
// work the pool actually did, and how much of it moved between queues.
void ReportPoolActivity(bench::JsonReport* report) {
  MetricsRegistry pool_metrics;
  ThreadPool::Global().ExportMetrics(pool_metrics);
  const ThreadPool::Stats stats = ThreadPool::Global().GetStats();
  std::printf("\n(6) exec pool activity: %d worker(s), %llu tasks executed, %llu steals\n",
              ThreadPool::Global().worker_count(),
              static_cast<unsigned long long>(stats.tasks_executed),
              static_cast<unsigned long long>(stats.steals));
  if (report != nullptr) {
    report->AddValue("exec.pool.workers", ThreadPool::Global().worker_count());
    report->AddValue("exec.pool.tasks_executed", static_cast<double>(stats.tasks_executed));
    report->AddValue("exec.pool.steals", static_cast<double>(stats.steals));
    report->AddValue("exec.pool.external_busy_seconds", stats.external_busy_seconds);
  }
}

}  // namespace
}  // namespace probcon

int main(int argc, char** argv) {
  const std::string json_path = probcon::bench::JsonPathFromArgs(argc, argv);
  probcon::bench::JsonReport report;
  probcon::bench::JsonReport* report_ptr = json_path.empty() ? nullptr : &report;
  probcon::bench::PrintBanner("E8", "analytical model vs executable protocols");
  probcon::ValidateRaftLiveness(report_ptr);
  probcon::ValidateRaftSafety(report_ptr);
  probcon::ValidatePbftSafety(report_ptr);
  probcon::ValidateChaosUnavailability(report_ptr);
  probcon::TracedExemplarRun();
  probcon::ReportPoolActivity(report_ptr);
  if (report_ptr != nullptr) {
    report.WriteTo(json_path);
  }
  return 0;
}
