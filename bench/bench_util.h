// Shared helpers for the experiment harness binaries: fixed-width table rendering,
// paper-vs-measured comparison rows, and machine-readable JSON output.
//
// Every harness main accepts `--json <path>`: tables still print to stdout, and the same
// cells are additionally written to <path> as one JSON document, so cross-PR tooling can
// diff experiment outputs without scraping the fixed-width rendering.

#ifndef PROBCON_BENCH_BENCH_UTIL_H_
#define PROBCON_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

namespace probcon::bench {

// Prints a header box for an experiment.
inline void PrintBanner(const std::string& experiment_id, const std::string& title) {
  std::printf("\n=== %s: %s ===\n", experiment_id.c_str(), title.c_str());
}

// Fixed-width row rendering: every cell padded to the widest cell in its column.
class Table {
 public:
  explicit Table(std::vector<std::string> header) : header_(std::move(header)) {}

  void AddRow(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  void Print() const {
    std::vector<size_t> widths(header_.size(), 0);
    auto widen = [&](const std::vector<std::string>& row) {
      for (size_t i = 0; i < row.size() && i < widths.size(); ++i) {
        widths[i] = std::max(widths[i], row[i].size());
      }
    };
    widen(header_);
    for (const auto& row : rows_) {
      widen(row);
    }
    auto print_row = [&](const std::vector<std::string>& row) {
      for (size_t i = 0; i < widths.size(); ++i) {
        const std::string& cell = i < row.size() ? row[i] : std::string();
        std::printf("| %-*s ", static_cast<int>(widths[i]), cell.c_str());
      }
      std::printf("|\n");
    };
    print_row(header_);
    for (size_t i = 0; i < widths.size(); ++i) {
      std::printf("|%s", std::string(widths[i] + 2, '-').c_str());
    }
    std::printf("|\n");
    for (const auto& row : rows_) {
      print_row(row);
    }
  }

  const std::vector<std::string>& header() const { return header_; }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

// Escapes backslash, double quote, and control characters for a JSON string literal.
inline std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// Collects named tables and scalars from one harness run and renders them as a single
// JSON document: {"tables": {name: {"header": [...], "rows": [[...]]}}, "values": {...}}.
// Insertion order is preserved, so identical runs produce byte-identical files.
class JsonReport {
 public:
  void AddTable(const std::string& name, const Table& table) {
    std::string json = "{\"header\": [";
    for (size_t i = 0; i < table.header().size(); ++i) {
      json += (i > 0 ? ", " : "") + Quote(table.header()[i]);
    }
    json += "], \"rows\": [";
    for (size_t r = 0; r < table.rows().size(); ++r) {
      json += r > 0 ? ", [" : "[";
      const auto& row = table.rows()[r];
      for (size_t i = 0; i < row.size(); ++i) {
        json += (i > 0 ? ", " : "") + Quote(row[i]);
      }
      json += "]";
    }
    json += "]}";
    tables_.emplace_back(name, std::move(json));
  }

  void AddValue(const std::string& name, double value) {
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.9g", value);
    values_.emplace_back(name, std::string(buffer));
  }

  std::string ToJson() const {
    std::string json = "{\n  \"tables\": {";
    for (size_t i = 0; i < tables_.size(); ++i) {
      json += (i > 0 ? ",\n    " : "\n    ") + Quote(tables_[i].first) + ": " +
              tables_[i].second;
    }
    json += tables_.empty() ? "}" : "\n  }";
    json += ",\n  \"values\": {";
    for (size_t i = 0; i < values_.size(); ++i) {
      json += (i > 0 ? ",\n    " : "\n    ") + Quote(values_[i].first) + ": " +
              values_[i].second;
    }
    json += values_.empty() ? "}" : "\n  }";
    json += "\n}\n";
    return json;
  }

  // Writes the document; prints a diagnostic and returns false when the path is not
  // writable.
  bool WriteTo(const std::string& path) const {
    std::FILE* file = std::fopen(path.c_str(), "w");
    if (file == nullptr) {
      std::fprintf(stderr, "cannot write JSON report to %s\n", path.c_str());
      return false;
    }
    const std::string json = ToJson();
    std::fwrite(json.data(), 1, json.size(), file);
    std::fclose(file);
    std::printf("JSON report written to %s\n", path.c_str());
    return true;
  }

 private:
  static std::string Quote(const std::string& text) { return "\"" + JsonEscape(text) + "\""; }

  std::vector<std::pair<std::string, std::string>> tables_;
  std::vector<std::pair<std::string, std::string>> values_;
};

// Extracts the value of a "--json <path>" argument pair; empty string when absent.
inline std::string JsonPathFromArgs(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--json") {
      return argv[i + 1];
    }
  }
  return std::string();
}

}  // namespace probcon::bench

#endif  // PROBCON_BENCH_BENCH_UTIL_H_
