// Shared helpers for the experiment harness binaries: fixed-width table rendering and
// paper-vs-measured comparison rows.

#ifndef PROBCON_BENCH_BENCH_UTIL_H_
#define PROBCON_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>
#include <vector>

namespace probcon::bench {

// Prints a header box for an experiment.
inline void PrintBanner(const std::string& experiment_id, const std::string& title) {
  std::printf("\n=== %s: %s ===\n", experiment_id.c_str(), title.c_str());
}

// Fixed-width row rendering: every cell padded to the widest cell in its column.
class Table {
 public:
  explicit Table(std::vector<std::string> header) : header_(std::move(header)) {}

  void AddRow(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  void Print() const {
    std::vector<size_t> widths(header_.size(), 0);
    auto widen = [&](const std::vector<std::string>& row) {
      for (size_t i = 0; i < row.size() && i < widths.size(); ++i) {
        widths[i] = std::max(widths[i], row[i].size());
      }
    };
    widen(header_);
    for (const auto& row : rows_) {
      widen(row);
    }
    auto print_row = [&](const std::vector<std::string>& row) {
      for (size_t i = 0; i < widths.size(); ++i) {
        const std::string& cell = i < row.size() ? row[i] : std::string();
        std::printf("| %-*s ", static_cast<int>(widths[i]), cell.c_str());
      }
      std::printf("|\n");
    };
    print_row(header_);
    for (size_t i = 0; i < widths.size(); ++i) {
      std::printf("|%s", std::string(widths[i] + 2, '-').c_str());
    }
    std::printf("|\n");
    for (const auto& row : rows_) {
      print_row(row);
    }
  }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace probcon::bench

#endif  // PROBCON_BENCH_BENCH_UTIL_H_
