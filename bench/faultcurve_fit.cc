// E11 — Fault-curve estimation from telemetry (paper §2/§4: "fault curves can be computed
// using the large amount of telemetry that modern deployments track").
//
// Generates a synthetic drive-stats fleet (the substitution for Backblaze data), fits curves
// with the estimators, and reports recovered-vs-true parameters plus the downstream effect:
// how much does estimation error move a Raft reliability figure?

#include <cstdio>

#include "bench/bench_util.h"
#include "src/analysis/reliability.h"
#include "src/faultmodel/afr.h"
#include "src/faultmodel/estimator.h"
#include "src/telemetry/fleet_generator.h"

namespace probcon {
namespace {

void Run() {
  bench::PrintBanner("E11", "recovering fault curves from synthetic fleet telemetry");

  FleetGenerator generator(42);
  const auto fleet = FleetGenerator::SyntheticDriveStatsFleet();
  const double window = 2.0 * kHoursPerYear;  // Two years of monitoring.

  bench::Table table({"cohort", "devices", "failures", "true 1y-AFR", "fitted 1y-AFR",
                      "fitted curve"});
  for (const auto& cohort : fleet) {
    const auto observations = generator.GenerateObservations(cohort, window);
    int failures = 0;
    for (const auto& obs : observations) {
      failures += obs.failed ? 1 : 0;
    }
    // True first-year failure probability for a fresh device of this cohort.
    const double true_afr = cohort.curve->FailureProbability(0.0, kHoursPerYear);

    // Fit both families and keep the better-likelihood one.
    const auto exponential = FitExponential(observations);
    const auto weibull = FitWeibull(observations);
    std::string fitted_text = "-";
    double fitted_afr = 0.0;
    if (weibull.ok() &&
        (!exponential.ok() ||
         LogLikelihood(*weibull, observations) > LogLikelihood(*exponential, observations))) {
      fitted_text = weibull->Describe();
      fitted_afr = weibull->FailureProbability(0.0, kHoursPerYear);
    } else if (exponential.ok()) {
      fitted_text = exponential->Describe();
      fitted_afr = exponential->FailureProbability(0.0, kHoursPerYear);
    }
    char true_text[32];
    char fitted_afr_text[32];
    std::snprintf(true_text, sizeof(true_text), "%.2f%%", 100.0 * true_afr);
    std::snprintf(fitted_afr_text, sizeof(fitted_afr_text), "%.2f%%", 100.0 * fitted_afr);
    table.AddRow({cohort.model, std::to_string(cohort.count), std::to_string(failures),
                  true_text, fitted_afr_text, fitted_text});
  }
  table.Print();

  // Downstream sensitivity: run the Table-2 computation with true vs fitted probabilities.
  std::printf("\ndownstream effect on a 5-node Raft cluster built from cohort 0 + 1 nodes:\n");
  const auto& cohort_a = fleet[0];
  const auto& cohort_b = fleet[1];
  const double window_month = 30 * 24.0;
  const auto fit_a = FitExponential(generator.GenerateObservations(cohort_a, window));
  const auto fit_b = FitExponential(generator.GenerateObservations(cohort_b, window));
  if (fit_a.ok() && fit_b.ok()) {
    const double true_pa = cohort_a.curve->FailureProbability(0.0, window_month);
    const double true_pb = cohort_b.curve->FailureProbability(0.0, window_month);
    const double fit_pa = fit_a->FailureProbability(0.0, window_month);
    const double fit_pb = fit_b->FailureProbability(0.0, window_month);
    const auto truth = AnalyzeRaft(
        RaftConfig::Standard(5),
        ReliabilityAnalyzer::ForIndependentNodes({true_pa, true_pa, true_pb, true_pb, true_pb}));
    const auto fitted = AnalyzeRaft(
        RaftConfig::Standard(5),
        ReliabilityAnalyzer::ForIndependentNodes({fit_pa, fit_pa, fit_pb, fit_pb, fit_pb}));
    std::printf("  with true curves:   S&L %s\n", FormatPercent(truth.safe_and_live).c_str());
    std::printf("  with fitted curves: S&L %s\n", FormatPercent(fitted.safe_and_live).c_str());
    std::printf("  nines error: %.3f\n",
                truth.safe_and_live.nines() - fitted.safe_and_live.nines());
  }

  // Spot evictions: the paper's other telemetry source.
  std::printf("\nspot-instance eviction telemetry (inhomogeneous Poisson, diurnal peaks):\n");
  Rng rng(77);
  const double duration = 24.0 * 90;
  const auto trace = GenerateSpotEvictionTrace(rng, duration, 0.002, 6.0);
  std::printf("  %zu fleet-wide evictions over 90 days (100 instances)\n", trace.size());
  for (const double hours : {1.0, 24.0, 168.0}) {
    std::printf("  P(evicted within %5.0f h) = %.4f\n", hours,
                EmpiricalEvictionProbability(trace, duration, 100, hours));
  }
}

}  // namespace
}  // namespace probcon

int main() {
  probcon::Run();
  return 0;
}
