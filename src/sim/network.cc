#include "src/sim/network.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "src/common/check.h"

namespace probcon {

UniformLatencyModel::UniformLatencyModel(SimTime min_latency, SimTime max_latency,
                                         double drop_probability)
    : min_latency_(min_latency),
      max_latency_(max_latency),
      drop_probability_(drop_probability) {
  CHECK(min_latency >= 0.0 && max_latency >= min_latency);
  CHECK(drop_probability >= 0.0 && drop_probability < 1.0);
}

SimTime UniformLatencyModel::SampleLatency(int /*from*/, int /*to*/, Rng& rng) const {
  return min_latency_ + (max_latency_ - min_latency_) * rng.NextDouble();
}

bool UniformLatencyModel::ShouldDrop(int /*from*/, int /*to*/, Rng& rng) const {
  return drop_probability_ > 0.0 && rng.NextBernoulli(drop_probability_);
}

LogNormalLatencyModel::LogNormalLatencyModel(SimTime median, double sigma,
                                             double drop_probability)
    : median_(median), sigma_(sigma), drop_probability_(drop_probability) {
  CHECK_GT(median, 0.0);
  CHECK_GT(sigma, 0.0);
  CHECK(drop_probability >= 0.0 && drop_probability < 1.0);
}

SimTime LogNormalLatencyModel::SampleLatency(int /*from*/, int /*to*/, Rng& rng) const {
  const double latency = median_ * std::exp(sigma_ * rng.NextNormal());
  return std::min(std::max(latency, 0.1 * median_), 100.0 * median_);
}

bool LogNormalLatencyModel::ShouldDrop(int /*from*/, int /*to*/, Rng& rng) const {
  return drop_probability_ > 0.0 && rng.NextBernoulli(drop_probability_);
}

MatrixLatencyModel::MatrixLatencyModel(std::vector<std::vector<SimTime>> base_latency,
                                       double jitter, double drop_probability)
    : base_latency_(std::move(base_latency)),
      jitter_(jitter),
      drop_probability_(drop_probability) {
  CHECK(!base_latency_.empty());
  for (const auto& row : base_latency_) {
    CHECK_EQ(row.size(), base_latency_.size()) << "latency matrix must be square";
    for (const SimTime latency : row) {
      CHECK_GE(latency, 0.0);
    }
  }
  CHECK_GE(jitter, 0.0);
  CHECK(drop_probability >= 0.0 && drop_probability < 1.0);
}

MatrixLatencyModel MatrixLatencyModel::FromRegions(
    const std::vector<int>& region_of, const std::vector<std::vector<SimTime>>& region_latency,
    SimTime local_latency, double jitter) {
  const size_t n = region_of.size();
  CHECK_GT(n, 0u);
  std::vector<std::vector<SimTime>> base(n, std::vector<SimTime>(n, 0.0));
  for (size_t a = 0; a < n; ++a) {
    for (size_t b = 0; b < n; ++b) {
      const int ra = region_of[a];
      const int rb = region_of[b];
      CHECK(ra >= 0 && ra < static_cast<int>(region_latency.size()));
      CHECK(rb >= 0 && rb < static_cast<int>(region_latency.size()));
      base[a][b] = ra == rb ? local_latency : region_latency[ra][rb];
    }
  }
  return MatrixLatencyModel(std::move(base), jitter);
}

SimTime MatrixLatencyModel::SampleLatency(int from, int to, Rng& rng) const {
  CHECK(from >= 0 && from < static_cast<int>(base_latency_.size()));
  CHECK(to >= 0 && to < static_cast<int>(base_latency_.size()));
  return base_latency_[from][to] * (1.0 + jitter_ * rng.NextDouble());
}

bool MatrixLatencyModel::ShouldDrop(int /*from*/, int /*to*/, Rng& rng) const {
  return drop_probability_ > 0.0 && rng.NextBernoulli(drop_probability_);
}

Network::Network(Simulator* simulator, int node_count, std::unique_ptr<NetworkModel> model)
    : simulator_(simulator), node_count_(node_count), model_(std::move(model)) {
  CHECK(simulator != nullptr);
  CHECK_GT(node_count, 0);
  CHECK(model_ != nullptr);
  handlers_.resize(node_count);
  node_up_.assign(node_count, 1);
}

void Network::RegisterHandler(int node, MessageHandler handler) {
  CHECK(node >= 0 && node < node_count_);
  handlers_[node] = std::move(handler);
}

void Network::SetLinkPerturbation(int from, int to, const LinkPerturbation& perturbation) {
  CHECK(from >= -1 && from < node_count_);
  CHECK(to >= -1 && to < node_count_);
  CHECK_GE(perturbation.latency_factor, 0.0);
  CHECK_GE(perturbation.extra_latency, 0.0);
  CHECK(perturbation.extra_drop >= 0.0 && perturbation.extra_drop <= 1.0);
  const int key = (from + 1) * (node_count_ + 1) + (to + 1);
  if (perturbation.IsNeutral()) {
    perturbations_.erase(key);
  } else {
    perturbations_[key] = perturbation;
  }
}

void Network::ClearLinkPerturbations() { perturbations_.clear(); }

void Network::SetDuplication(double probability) {
  CHECK(probability >= 0.0 && probability <= 1.0);
  duplicate_probability_ = probability;
}

void Network::SetReordering(double probability, SimTime window) {
  CHECK(probability >= 0.0 && probability <= 1.0);
  CHECK_GE(window, 0.0);
  reorder_probability_ = probability;
  reorder_window_ = window;
}

void Network::SetNodeUp(int node, bool up) {
  CHECK(node >= 0 && node < node_count_);
  node_up_[node] = up ? 1 : 0;
}

bool Network::NodeUp(int node) const {
  CHECK(node >= 0 && node < node_count_);
  return node_up_[node] != 0;
}

LinkPerturbation Network::EffectivePerturbation(int from, int to) const {
  LinkPerturbation effective;
  // Exact link, all-into-`to`, all-out-of-`from`, and global wildcard entries compose.
  const int keys[] = {(from + 1) * (node_count_ + 1) + (to + 1),
                      0 * (node_count_ + 1) + (to + 1),
                      (from + 1) * (node_count_ + 1) + 0, 0};
  for (const int key : keys) {
    const auto it = perturbations_.find(key);
    if (it == perturbations_.end()) {
      continue;
    }
    effective.latency_factor *= it->second.latency_factor;
    effective.extra_latency += it->second.extra_latency;
    effective.extra_drop = 1.0 - (1.0 - effective.extra_drop) * (1.0 - it->second.extra_drop);
  }
  return effective;
}

bool Network::SampleDelay(int from, int to, SimTime* delay) {
  Rng& rng = simulator_->rng();
  if (model_->ShouldDrop(from, to, rng)) {
    return false;
  }
  SimTime latency = model_->SampleLatency(from, to, rng);
  if (!perturbations_.empty()) {
    const LinkPerturbation perturbation = EffectivePerturbation(from, to);
    if (perturbation.extra_drop > 0.0 && rng.NextBernoulli(perturbation.extra_drop)) {
      return false;
    }
    latency = latency * perturbation.latency_factor + perturbation.extra_latency;
  }
  if (reorder_probability_ > 0.0 && rng.NextBernoulli(reorder_probability_)) {
    latency += reorder_window_ * rng.NextDouble();
    ++messages_reordered_;
    simulator_->tracer().CounterAdd("net.messages_reordered");
  }
  *delay = latency;
  return true;
}

void Network::ScheduleDelivery(int from, int to, SimTime delay,
                               std::shared_ptr<const SimMessage> message) {
  Tracer& tracer = simulator_->tracer();
  if (tracer.enabled()) {
    tracer.HistogramRecord("net.delivery_latency_ms", delay,
                           HistogramOptions::Exponential(1.0, 2.0, 12));
  }
  simulator_->Schedule(delay, [this, from, to, message = std::move(message)]() {
    // Partitions are re-checked at delivery time so a cut made while the message was in
    // flight also severs it.
    if (!Reachable(from, to)) {
      ++messages_dropped_;
      simulator_->tracer().MessageDropped(from, to);
      simulator_->tracer().CounterAdd("net.messages_dropped");
      return;
    }
    // A message addressed to a node that crashed after it was scheduled is dropped here,
    // without ever invoking the (stale) handler of the dead process.
    if (node_up_[to] == 0) {
      ++messages_to_dead_;
      simulator_->tracer().CounterAdd("net.messages_to_dead");
      return;
    }
    ++messages_delivered_;
    simulator_->tracer().CounterAdd("net.messages_delivered");
    if (handlers_[to] != nullptr) {
      handlers_[to](from, message);
    }
  });
}

void Network::Send(int from, int to, std::shared_ptr<const SimMessage> message) {
  CHECK(from >= 0 && from < node_count_);
  CHECK(to >= 0 && to < node_count_);
  CHECK(message != nullptr);
  ++messages_sent_;
  Tracer& tracer = simulator_->tracer();
  tracer.CounterAdd("net.messages_sent");
  SimTime delay = 0.0;
  if (!Reachable(from, to) || !SampleDelay(from, to, &delay)) {
    ++messages_dropped_;
    tracer.MessageDropped(from, to);
    tracer.CounterAdd("net.messages_dropped");
    return;
  }
  ScheduleDelivery(from, to, delay, message);
  if (duplicate_probability_ > 0.0 &&
      simulator_->rng().NextBernoulli(duplicate_probability_)) {
    // The duplicate takes its own path through the model: independent latency (so it may
    // overtake the original) and independent drop.
    SimTime duplicate_delay = 0.0;
    if (SampleDelay(from, to, &duplicate_delay)) {
      ++messages_duplicated_;
      tracer.CounterAdd("net.messages_duplicated");
      ScheduleDelivery(from, to, duplicate_delay, std::move(message));
    }
  }
}

void Network::Broadcast(int from, const std::shared_ptr<const SimMessage>& message,
                        bool include_self) {
  for (int to = 0; to < node_count_; ++to) {
    if (to == from && !include_self) {
      continue;
    }
    Send(from, to, message);
  }
}

void Network::SetPartition(std::vector<int> group_of) {
  CHECK_EQ(group_of.size(), static_cast<size_t>(node_count_));
  partition_group_ = std::move(group_of);
}

void Network::ClearPartition() { partition_group_.clear(); }

bool Network::Reachable(int from, int to) const {
  if (partition_group_.empty() || from == to) {
    return true;
  }
  return partition_group_[from] == partition_group_[to];
}

}  // namespace probcon
