#include "src/sim/network.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "src/common/check.h"

namespace probcon {

UniformLatencyModel::UniformLatencyModel(SimTime min_latency, SimTime max_latency,
                                         double drop_probability)
    : min_latency_(min_latency),
      max_latency_(max_latency),
      drop_probability_(drop_probability) {
  CHECK(min_latency >= 0.0 && max_latency >= min_latency);
  CHECK(drop_probability >= 0.0 && drop_probability < 1.0);
}

SimTime UniformLatencyModel::SampleLatency(int /*from*/, int /*to*/, Rng& rng) const {
  return min_latency_ + (max_latency_ - min_latency_) * rng.NextDouble();
}

bool UniformLatencyModel::ShouldDrop(int /*from*/, int /*to*/, Rng& rng) const {
  return drop_probability_ > 0.0 && rng.NextBernoulli(drop_probability_);
}

LogNormalLatencyModel::LogNormalLatencyModel(SimTime median, double sigma,
                                             double drop_probability)
    : median_(median), sigma_(sigma), drop_probability_(drop_probability) {
  CHECK_GT(median, 0.0);
  CHECK_GT(sigma, 0.0);
  CHECK(drop_probability >= 0.0 && drop_probability < 1.0);
}

SimTime LogNormalLatencyModel::SampleLatency(int /*from*/, int /*to*/, Rng& rng) const {
  const double latency = median_ * std::exp(sigma_ * rng.NextNormal());
  return std::min(std::max(latency, 0.1 * median_), 100.0 * median_);
}

bool LogNormalLatencyModel::ShouldDrop(int /*from*/, int /*to*/, Rng& rng) const {
  return drop_probability_ > 0.0 && rng.NextBernoulli(drop_probability_);
}

MatrixLatencyModel::MatrixLatencyModel(std::vector<std::vector<SimTime>> base_latency,
                                       double jitter, double drop_probability)
    : base_latency_(std::move(base_latency)),
      jitter_(jitter),
      drop_probability_(drop_probability) {
  CHECK(!base_latency_.empty());
  for (const auto& row : base_latency_) {
    CHECK_EQ(row.size(), base_latency_.size()) << "latency matrix must be square";
    for (const SimTime latency : row) {
      CHECK_GE(latency, 0.0);
    }
  }
  CHECK_GE(jitter, 0.0);
  CHECK(drop_probability >= 0.0 && drop_probability < 1.0);
}

MatrixLatencyModel MatrixLatencyModel::FromRegions(
    const std::vector<int>& region_of, const std::vector<std::vector<SimTime>>& region_latency,
    SimTime local_latency, double jitter) {
  const size_t n = region_of.size();
  CHECK_GT(n, 0u);
  std::vector<std::vector<SimTime>> base(n, std::vector<SimTime>(n, 0.0));
  for (size_t a = 0; a < n; ++a) {
    for (size_t b = 0; b < n; ++b) {
      const int ra = region_of[a];
      const int rb = region_of[b];
      CHECK(ra >= 0 && ra < static_cast<int>(region_latency.size()));
      CHECK(rb >= 0 && rb < static_cast<int>(region_latency.size()));
      base[a][b] = ra == rb ? local_latency : region_latency[ra][rb];
    }
  }
  return MatrixLatencyModel(std::move(base), jitter);
}

SimTime MatrixLatencyModel::SampleLatency(int from, int to, Rng& rng) const {
  CHECK(from >= 0 && from < static_cast<int>(base_latency_.size()));
  CHECK(to >= 0 && to < static_cast<int>(base_latency_.size()));
  return base_latency_[from][to] * (1.0 + jitter_ * rng.NextDouble());
}

bool MatrixLatencyModel::ShouldDrop(int /*from*/, int /*to*/, Rng& rng) const {
  return drop_probability_ > 0.0 && rng.NextBernoulli(drop_probability_);
}

Network::Network(Simulator* simulator, int node_count, std::unique_ptr<NetworkModel> model)
    : simulator_(simulator), node_count_(node_count), model_(std::move(model)) {
  CHECK(simulator != nullptr);
  CHECK_GT(node_count, 0);
  CHECK(model_ != nullptr);
  handlers_.resize(node_count);
}

void Network::RegisterHandler(int node, MessageHandler handler) {
  CHECK(node >= 0 && node < node_count_);
  handlers_[node] = std::move(handler);
}

void Network::Send(int from, int to, std::shared_ptr<const SimMessage> message) {
  CHECK(from >= 0 && from < node_count_);
  CHECK(to >= 0 && to < node_count_);
  CHECK(message != nullptr);
  ++messages_sent_;
  Tracer& tracer = simulator_->tracer();
  tracer.CounterAdd("net.messages_sent");
  if (!Reachable(from, to) || model_->ShouldDrop(from, to, simulator_->rng())) {
    ++messages_dropped_;
    tracer.MessageDropped(from, to);
    tracer.CounterAdd("net.messages_dropped");
    return;
  }
  const SimTime latency = model_->SampleLatency(from, to, simulator_->rng());
  if (tracer.enabled()) {
    tracer.HistogramRecord("net.delivery_latency_ms", latency,
                           HistogramOptions::Exponential(1.0, 2.0, 12));
  }
  simulator_->Schedule(latency, [this, from, to, message = std::move(message)]() {
    // Partitions are re-checked at delivery time so a cut made while the message was in
    // flight also severs it.
    if (!Reachable(from, to)) {
      ++messages_dropped_;
      simulator_->tracer().MessageDropped(from, to);
      simulator_->tracer().CounterAdd("net.messages_dropped");
      return;
    }
    ++messages_delivered_;
    simulator_->tracer().CounterAdd("net.messages_delivered");
    if (handlers_[to] != nullptr) {
      handlers_[to](from, message);
    }
  });
}

void Network::Broadcast(int from, const std::shared_ptr<const SimMessage>& message,
                        bool include_self) {
  for (int to = 0; to < node_count_; ++to) {
    if (to == from && !include_self) {
      continue;
    }
    Send(from, to, message);
  }
}

void Network::SetPartition(std::vector<int> group_of) {
  CHECK_EQ(group_of.size(), static_cast<size_t>(node_count_));
  partition_group_ = std::move(group_of);
}

void Network::ClearPartition() { partition_group_.clear(); }

bool Network::Reachable(int from, int to) const {
  if (partition_group_.empty() || from == to) {
    return true;
  }
  return partition_group_[from] == partition_group_[to];
}

}  // namespace probcon
