// Deterministic discrete-event simulator.
//
// The simulator is the testbed substitute: real Raft/PBFT/Ben-Or implementations run on it
// with fault-curve-driven failure injection, giving empirical safety/liveness frequencies to
// cross-check the paper's closed-form analysis (experiment E8).
//
// Determinism contract: a run is a pure function of (event schedule, seed). Events at equal
// timestamps fire in scheduling order (FIFO via a monotone sequence number); all randomness
// flows through the simulator's Rng.

#ifndef PROBCON_SRC_SIM_SIMULATOR_H_
#define PROBCON_SRC_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "src/common/check.h"
#include "src/common/rng.h"
#include "src/obs/trace.h"

namespace probcon {

using SimTime = double;

// Handle for cancelling a scheduled event.
struct EventId {
  uint64_t sequence = 0;
};

class Simulator {
 public:
  explicit Simulator(uint64_t seed = 1);

  SimTime Now() const { return now_; }
  Rng& rng() { return rng_; }

  // Schedules `action` to run at Now() + delay (delay >= 0).
  EventId Schedule(SimTime delay, std::function<void()> action);

  // Schedules at an absolute time (>= Now()).
  EventId ScheduleAt(SimTime when, std::function<void()> action);

  // Cancels a pending event; cancelling an already-fired or cancelled event is a no-op.
  void Cancel(EventId id);

  // Runs events until the queue empties or the clock passes `until`. Returns the number of
  // events executed.
  uint64_t Run(SimTime until);

  // Executes the single next event, if any. Returns false when the queue is empty.
  bool Step();

  // Number of events executed so far.
  uint64_t executed_events() const { return executed_; }

  // --- Observability (src/obs) ---
  //
  // Attaches an external trace log + metrics registry; events are timestamped with this
  // simulator's clock. Both pointers must outlive the simulator (or a later detach). The
  // simulator owns the Tracer handle and hands it to the network, processes, and protocol
  // nodes via tracer(); when nothing is attached the handle is disabled and every recording
  // call is an inline null-check no-op, so untraced runs are unaffected.
  void AttachTracer(TraceLog* trace, MetricsRegistry* metrics);
  void DetachTracer() { tracer_ = Tracer(); }
  Tracer& tracer() { return tracer_; }

  // Mirrors sim time into LOG prefixes (logging.h's SetLogClock). The installed clock reads
  // this simulator: call ClearLogClock() before the simulator is destroyed.
  void InstallLogClock();

 private:
  struct Event {
    SimTime when;
    uint64_t sequence;
    std::function<void()> action;

    bool operator>(const Event& other) const {
      if (when != other.when) {
        return when > other.when;
      }
      return sequence > other.sequence;
    }
  };

  SimTime now_ = 0.0;
  uint64_t next_sequence_ = 0;
  uint64_t executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> queue_;
  std::unordered_set<uint64_t> cancelled_;
  Rng rng_;
  Tracer tracer_;

  // Drops cancelled events sitting at the head of the queue.
  void PurgeCancelled();
};

}  // namespace probcon

#endif  // PROBCON_SRC_SIM_SIMULATOR_H_
