// Simple run metrics: sample accumulators with mean/percentile queries.

#ifndef PROBCON_SRC_SIM_METRICS_H_
#define PROBCON_SRC_SIM_METRICS_H_

#include <algorithm>
#include <cstddef>
#include <vector>

#include "src/common/check.h"

namespace probcon {

class SampleStats {
 public:
  void Add(double value) { samples_.push_back(value); }

  size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  double Mean() const {
    CHECK(!samples_.empty());
    double sum = 0.0;
    for (const double s : samples_) {
      sum += s;
    }
    return sum / static_cast<double>(samples_.size());
  }

  double Min() const {
    CHECK(!samples_.empty());
    return *std::min_element(samples_.begin(), samples_.end());
  }

  double Max() const {
    CHECK(!samples_.empty());
    return *std::max_element(samples_.begin(), samples_.end());
  }

  // Nearest-rank percentile, q in [0, 1].
  double Percentile(double q) const {
    CHECK(!samples_.empty());
    CHECK(q >= 0.0 && q <= 1.0);
    std::vector<double> sorted = samples_;
    std::sort(sorted.begin(), sorted.end());
    const size_t rank = static_cast<size_t>(q * static_cast<double>(sorted.size() - 1) + 0.5);
    return sorted[std::min(rank, sorted.size() - 1)];
  }

 private:
  std::vector<double> samples_;
};

}  // namespace probcon

#endif  // PROBCON_SRC_SIM_METRICS_H_
