// Simple run metrics: sample accumulators with mean/percentile queries.
//
// SampleStats retains every sample (exact percentiles); for streaming, bounded-memory
// instruments see src/obs/metrics.h. Percentile queries sort a cached copy once and reuse it
// until the next Add, so query-heavy consumers (report tables asking for p50/p90/p99) pay
// one sort instead of one per query.

#ifndef PROBCON_SRC_SIM_METRICS_H_
#define PROBCON_SRC_SIM_METRICS_H_

#include <algorithm>
#include <cstddef>
#include <vector>

#include "src/common/check.h"

namespace probcon {

class SampleStats {
 public:
  struct Summary {
    size_t count = 0;
    double mean = 0.0;
    double min = 0.0;
    double max = 0.0;
    double p50 = 0.0;
    double p90 = 0.0;
    double p99 = 0.0;
  };

  void Add(double value) {
    samples_.push_back(value);
    sorted_valid_ = false;
  }

  size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  double Mean() const {
    CHECK(!samples_.empty());
    double sum = 0.0;
    for (const double s : samples_) {
      sum += s;
    }
    return sum / static_cast<double>(samples_.size());
  }

  double Min() const {
    CHECK(!samples_.empty());
    return *std::min_element(samples_.begin(), samples_.end());
  }

  double Max() const {
    CHECK(!samples_.empty());
    return *std::max_element(samples_.begin(), samples_.end());
  }

  // Nearest-rank percentile, q in [0, 1].
  double Percentile(double q) const {
    CHECK(!samples_.empty());
    CHECK(q >= 0.0 && q <= 1.0);
    const std::vector<double>& sorted = Sorted();
    const size_t rank = static_cast<size_t>(q * static_cast<double>(sorted.size() - 1) + 0.5);
    return sorted[std::min(rank, sorted.size() - 1)];
  }

  // All the headline stats in one pass over the cached sorted copy.
  Summary Summarize() const {
    CHECK(!samples_.empty());
    const std::vector<double>& sorted = Sorted();
    Summary summary;
    summary.count = sorted.size();
    summary.mean = Mean();
    summary.min = sorted.front();
    summary.max = sorted.back();
    summary.p50 = Percentile(0.5);
    summary.p90 = Percentile(0.9);
    summary.p99 = Percentile(0.99);
    return summary;
  }

 private:
  const std::vector<double>& Sorted() const {
    if (!sorted_valid_) {
      sorted_cache_ = samples_;
      std::sort(sorted_cache_.begin(), sorted_cache_.end());
      sorted_valid_ = true;
    }
    return sorted_cache_;
  }

  std::vector<double> samples_;
  mutable std::vector<double> sorted_cache_;
  mutable bool sorted_valid_ = false;
};

}  // namespace probcon

#endif  // PROBCON_SRC_SIM_METRICS_H_
