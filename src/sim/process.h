// Process: a crash-recoverable node running on the simulator.
//
// Crash semantics: while crashed, delivered messages are discarded and timers are suppressed
// (a timer set before the crash silently does not fire). Recover() bumps an epoch so stale
// timers from before the crash stay dead, then calls OnRecover() — protocols reset volatile
// state there; durable state (modeled as ordinary members the protocol chooses not to reset)
// survives, mirroring a real process restart with an intact disk.

#ifndef PROBCON_SRC_SIM_PROCESS_H_
#define PROBCON_SRC_SIM_PROCESS_H_

#include <cstdint>
#include <functional>
#include <memory>

#include "src/sim/network.h"
#include "src/sim/simulator.h"

namespace probcon {

class Process {
 public:
  Process(Simulator* simulator, Network* network, int id);
  virtual ~Process() = default;

  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;

  int id() const { return id_; }
  bool crashed() const { return crashed_; }

  // Installs the network handler and calls OnStart(). Call exactly once, before Run().
  void Start();

  // Crash-stop: discard future messages/timers until Recover().
  void Crash();

  // Restart after a crash; volatile state is the protocol's job via OnRecover().
  void Recover();

 protected:
  // Protocol entry points.
  virtual void OnStart() = 0;
  virtual void OnMessage(int from, const std::shared_ptr<const SimMessage>& message) = 0;
  virtual void OnRecover() {}

  // Schedules `action` to run after `delay` unless this process crashes (or crashes and
  // recovers) in between.
  void SetTimer(SimTime delay, std::function<void()> action);

  void SendTo(int to, std::shared_ptr<const SimMessage> message);
  void BroadcastAll(const std::shared_ptr<const SimMessage>& message, bool include_self);

  Simulator& simulator() { return *simulator_; }
  Network& network() { return *network_; }
  SimTime Now() const { return simulator_->Now(); }
  Rng& rng() { return simulator_->rng(); }
  int cluster_size() const { return network_->node_count(); }

 private:
  Simulator* simulator_;
  Network* network_;
  int id_;
  bool crashed_ = false;
  uint64_t epoch_ = 0;  // Incremented on crash and recover; invalidates in-flight timers.
};

}  // namespace probcon

#endif  // PROBCON_SRC_SIM_PROCESS_H_
