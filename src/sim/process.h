// Process: a crash-recoverable node running on the simulator.
//
// Crash semantics: while crashed, delivered messages are discarded and timers are suppressed
// (a timer set before the crash silently does not fire). Recover() bumps an epoch so stale
// timers from before the crash stay dead, then calls OnRecover() — protocols reset volatile
// state there; durable state (modeled as ordinary members the protocol chooses not to reset)
// survives, mirroring a real process restart with an intact disk.

#ifndef PROBCON_SRC_SIM_PROCESS_H_
#define PROBCON_SRC_SIM_PROCESS_H_

#include <cstdint>
#include <functional>
#include <memory>

#include "src/sim/network.h"
#include "src/sim/simulator.h"

namespace probcon {

class Process {
 public:
  Process(Simulator* simulator, Network* network, int id);
  virtual ~Process() = default;

  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;

  int id() const { return id_; }
  bool crashed() const { return crashed_; }

  // Installs the network handler and calls OnStart(). Call exactly once, before Run().
  void Start();

  // Crash-stop: discard future messages/timers until Recover(). Calling Crash() on an
  // already-crashed node is a no-op except that it still bumps the crash generation — the
  // caller (a shock, the nemesis) thereby CLAIMS the outage, invalidating repairs that were
  // scheduled against the earlier crash (see crash_generation()).
  void Crash();

  // Restart after a crash; volatile state is the protocol's job via OnRecover().
  void Recover();

  // Monotone counter bumped by every Crash() call (including claims on an already-down
  // node). A repair action captured at generation g must only Recover() while the node is
  // crashed AND still at generation g; otherwise a later, independent failure (shock,
  // nemesis) owns the outage and the stale repair must not resurrect the node.
  uint64_t crash_generation() const { return crash_generation_; }

  // --- Gray-failure degradation (chaos regimes; all default to healthy) ---

  // While > 0, every delivered message waits this long before OnMessage runs: the process
  // is alive and responsive to nothing — the gray "slow node" the f-threshold model hides.
  void SetHandlerDelay(SimTime delay);
  SimTime handler_delay() const { return handler_delay_; }

  // Multiplies every SetTimer delay (gray mode stretches a busy process's timers).
  void SetTimerScale(double scale);

  // Clock-skew model: this node's local clock runs `rate` times real time, so a timer set
  // for D fires after D / rate of simulated time (a fast clock times out early).
  void SetClockRate(double rate);

 protected:
  // Protocol entry points.
  virtual void OnStart() = 0;
  virtual void OnMessage(int from, const std::shared_ptr<const SimMessage>& message) = 0;
  virtual void OnRecover() {}

  // Schedules `action` to run after `delay` unless this process crashes (or crashes and
  // recovers) in between.
  void SetTimer(SimTime delay, std::function<void()> action);

  void SendTo(int to, std::shared_ptr<const SimMessage> message);
  void BroadcastAll(const std::shared_ptr<const SimMessage>& message, bool include_self);

  Simulator& simulator() { return *simulator_; }
  Network& network() { return *network_; }
  SimTime Now() const { return simulator_->Now(); }
  Rng& rng() { return simulator_->rng(); }
  int cluster_size() const { return network_->node_count(); }

 private:
  // Runs OnMessage now, or defers it by handler_delay_ while degraded.
  void DeliverMessage(int from, const std::shared_ptr<const SimMessage>& message);

  Simulator* simulator_;
  Network* network_;
  int id_;
  bool crashed_ = false;
  uint64_t epoch_ = 0;  // Incremented on crash and recover; invalidates in-flight timers.
  uint64_t crash_generation_ = 0;
  SimTime handler_delay_ = 0.0;
  double timer_scale_ = 1.0;
  double clock_rate_ = 1.0;
};

}  // namespace probcon

#endif  // PROBCON_SRC_SIM_PROCESS_H_
