// Failure injection driven by fault curves.
//
// Each node gets a fault curve; failure ages are sampled by inverse-CDF and scheduled as
// Crash() events. Optionally an exponential repair process restarts crashed nodes and samples
// a fresh failure age (conditioning on the node's accumulated age). A correlated-shock
// schedule can crash arbitrary node groups at fixed times, modeling rollouts gone bad.

#ifndef PROBCON_SRC_SIM_FAILURE_INJECTOR_H_
#define PROBCON_SRC_SIM_FAILURE_INJECTOR_H_

#include <memory>
#include <optional>
#include <vector>

#include "src/faultmodel/fault_curve.h"
#include "src/sim/process.h"
#include "src/sim/simulator.h"

namespace probcon {

struct ShockEvent {
  SimTime when = 0.0;
  std::vector<int> victims;  // Node ids crashed simultaneously.
};

class FailureInjector {
 public:
  // `processes` are borrowed and must outlive the injector. `curves[i]` drives node i.
  // If `repair_rate` is set, crashed nodes recover after Exponential(repair_rate) and are
  // re-armed with a fresh failure age.
  FailureInjector(Simulator* simulator, std::vector<Process*> processes,
                  std::vector<std::unique_ptr<FaultCurve>> curves,
                  std::optional<double> repair_rate = std::nullopt);

  // Samples and schedules the initial failure of every node, plus any shocks. Call once
  // before Simulator::Run.
  void Arm(const std::vector<ShockEvent>& shocks = {});

  int crash_count() const { return crash_count_; }
  int recovery_count() const { return recovery_count_; }

 private:
  void ScheduleFailure(int node);
  void CrashNode(int node);

  Simulator* simulator_;
  std::vector<Process*> processes_;
  std::vector<std::unique_ptr<FaultCurve>> curves_;
  std::optional<double> repair_rate_;
  int crash_count_ = 0;
  int recovery_count_ = 0;
};

}  // namespace probcon

#endif  // PROBCON_SRC_SIM_FAILURE_INJECTOR_H_
