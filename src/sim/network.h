// Simulated message network: point-to-point links with pluggable latency distributions,
// probabilistic drops, and partitions.
//
// Messages are immutable, shared payloads derived from SimMessage; the network stamps the TRUE
// sender on delivery, so Byzantine nodes can equivocate (send different payloads to different
// peers) but cannot forge another node's identity — the standard authenticated-channels
// assumption PBFT makes.

#ifndef PROBCON_SRC_SIM_NETWORK_H_
#define PROBCON_SRC_SIM_NETWORK_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/sim/simulator.h"

namespace probcon {

class SimMessage {
 public:
  virtual ~SimMessage() = default;
  virtual std::string Describe() const = 0;
};

using MessageHandler =
    std::function<void(int from, const std::shared_ptr<const SimMessage>&)>;

// Latency/drop policy for each directed link.
class NetworkModel {
 public:
  virtual ~NetworkModel() = default;
  virtual SimTime SampleLatency(int from, int to, Rng& rng) const = 0;
  virtual bool ShouldDrop(int from, int to, Rng& rng) const = 0;
};

// Uniform latency in [min, max] with an iid drop probability; the default workhorse model.
class UniformLatencyModel final : public NetworkModel {
 public:
  UniformLatencyModel(SimTime min_latency, SimTime max_latency, double drop_probability = 0.0);

  SimTime SampleLatency(int from, int to, Rng& rng) const override;
  bool ShouldDrop(int from, int to, Rng& rng) const override;

 private:
  SimTime min_latency_;
  SimTime max_latency_;
  double drop_probability_;
};

// Log-normal latency (heavy right tail, the shape datacenter RPC studies report): the
// underlying normal has parameters derived from the requested median and sigma.
class LogNormalLatencyModel final : public NetworkModel {
 public:
  // `median` > 0 in sim time units; `sigma` is the log-space standard deviation (0.3-0.8
  // covers typical RPC tail weight). Latency is clamped to [0.1 * median, 100 * median].
  LogNormalLatencyModel(SimTime median, double sigma, double drop_probability = 0.0);

  SimTime SampleLatency(int from, int to, Rng& rng) const override;
  bool ShouldDrop(int from, int to, Rng& rng) const override;

 private:
  SimTime median_;
  double sigma_;
  double drop_probability_;
};

// Per-pair base latencies (a WAN/geo topology) plus multiplicative uniform jitter in
// [1, 1 + jitter]. Base matrix must be n x n; the diagonal is loopback.
class MatrixLatencyModel final : public NetworkModel {
 public:
  MatrixLatencyModel(std::vector<std::vector<SimTime>> base_latency, double jitter = 0.2,
                     double drop_probability = 0.0);

  // Convenience: nodes placed in regions, with a region-to-region latency matrix and a
  // small intra-region latency.
  static MatrixLatencyModel FromRegions(const std::vector<int>& region_of,
                                        const std::vector<std::vector<SimTime>>& region_latency,
                                        SimTime local_latency, double jitter = 0.2);

  SimTime SampleLatency(int from, int to, Rng& rng) const override;
  bool ShouldDrop(int from, int to, Rng& rng) const override;

 private:
  std::vector<std::vector<SimTime>> base_latency_;
  double jitter_;
  double drop_probability_;
};

// Dynamic override stacked on top of the base NetworkModel for one directed link: the
// sampled latency is scaled and shifted, and an extra iid drop is applied on top of the
// model's own. The chaos nemesis uses these to create evolving asymmetric degradation
// (a link can be slow A->B while healthy B->A) without rebuilding the network.
struct LinkPerturbation {
  double latency_factor = 1.0;  // Multiplies the sampled latency (>= 0).
  SimTime extra_latency = 0.0;  // Added after scaling (>= 0).
  double extra_drop = 0.0;      // Additional drop probability in [0, 1].

  bool IsNeutral() const {
    return latency_factor == 1.0 && extra_latency == 0.0 && extra_drop == 0.0;
  }
};

class Network {
 public:
  Network(Simulator* simulator, int node_count, std::unique_ptr<NetworkModel> model);

  int node_count() const { return node_count_; }

  // Installs the delivery callback for `node`. Must be set before messages arrive.
  void RegisterHandler(int node, MessageHandler handler);

  // Sends `message` from -> to (self-sends are delivered with zero latency jitter as well).
  void Send(int from, int to, std::shared_ptr<const SimMessage> message);

  // Sends to every node; includes the sender itself iff `include_self`.
  void Broadcast(int from, const std::shared_ptr<const SimMessage>& message,
                 bool include_self);

  // Assigns each node to a partition group; messages across groups are dropped until
  // ClearPartition. Group vector must have node_count entries.
  void SetPartition(std::vector<int> group_of);
  void ClearPartition();

  // --- Dynamic chaos overrides (all default to "off") ---

  // Installs/clears a directed-link override; from/to of -1 act as wildcards (all senders /
  // all receivers), so SetLinkPerturbation(-1, 3, p) degrades everything flowing INTO node 3.
  // Wildcard and exact overrides compose multiplicatively (factors) / additively (latency,
  // drop). Setting a neutral perturbation clears the entry.
  void SetLinkPerturbation(int from, int to, const LinkPerturbation& perturbation);
  void ClearLinkPerturbations();

  // Each sent message is delivered a second time with probability `probability`, with an
  // independently sampled latency (at-least-once delivery, the at-most-once assumption the
  // protocols must not rely on).
  void SetDuplication(double probability);

  // Each sent message gets extra uniform delay in [0, window] with probability
  // `probability`, creating bounded reordering relative to FIFO-per-link delivery.
  void SetReordering(double probability, SimTime window);

  // Liveness registry: delivery to a node marked down is dropped at delivery time and
  // counted in messages_to_dead (never invoking the handler of a dead process). Process
  // crash/recovery keeps this in sync automatically.
  void SetNodeUp(int node, bool up);
  bool NodeUp(int node) const;

  uint64_t messages_sent() const { return messages_sent_; }
  uint64_t messages_delivered() const { return messages_delivered_; }
  uint64_t messages_dropped() const { return messages_dropped_; }
  uint64_t messages_to_dead() const { return messages_to_dead_; }
  uint64_t messages_duplicated() const { return messages_duplicated_; }
  uint64_t messages_reordered() const { return messages_reordered_; }

 private:
  bool Reachable(int from, int to) const;
  // Effective override for a directed link: exact entry composed with wildcards.
  LinkPerturbation EffectivePerturbation(int from, int to) const;
  // Samples one end-to-end delay (model + perturbation + reordering) or returns false if
  // the message is dropped by the model or the perturbation.
  bool SampleDelay(int from, int to, SimTime* delay);
  void ScheduleDelivery(int from, int to, SimTime delay,
                        std::shared_ptr<const SimMessage> message);

  Simulator* simulator_;
  int node_count_;
  std::unique_ptr<NetworkModel> model_;
  std::vector<MessageHandler> handlers_;
  std::vector<int> partition_group_;  // Empty = fully connected.
  // Keyed by (from + 1) * (node_count + 1) + (to + 1) so -1 wildcards fit; empty when no
  // chaos overrides are active (the common case pays one map.empty() branch).
  std::map<int, LinkPerturbation> perturbations_;
  std::vector<char> node_up_;
  double duplicate_probability_ = 0.0;
  double reorder_probability_ = 0.0;
  SimTime reorder_window_ = 0.0;
  uint64_t messages_sent_ = 0;
  uint64_t messages_delivered_ = 0;
  uint64_t messages_dropped_ = 0;
  uint64_t messages_to_dead_ = 0;
  uint64_t messages_duplicated_ = 0;
  uint64_t messages_reordered_ = 0;
};

}  // namespace probcon

#endif  // PROBCON_SRC_SIM_NETWORK_H_
