#include "src/sim/simulator.h"

#include <utility>

#include "src/common/logging.h"

namespace probcon {

Simulator::Simulator(uint64_t seed) : rng_(seed) {}

void Simulator::AttachTracer(TraceLog* trace, MetricsRegistry* metrics) {
  CHECK(trace != nullptr) << "use DetachTracer() to disable tracing";
  tracer_ = Tracer(trace, metrics, [this]() { return now_; });
}

void Simulator::InstallLogClock() {
  SetLogClock([this]() { return now_; });
}

EventId Simulator::Schedule(SimTime delay, std::function<void()> action) {
  CHECK_GE(delay, 0.0);
  return ScheduleAt(now_ + delay, std::move(action));
}

EventId Simulator::ScheduleAt(SimTime when, std::function<void()> action) {
  CHECK_GE(when, now_);
  CHECK(action != nullptr);
  const uint64_t sequence = next_sequence_++;
  queue_.push(Event{when, sequence, std::move(action)});
  return EventId{sequence};
}

void Simulator::Cancel(EventId id) { cancelled_.insert(id.sequence); }

void Simulator::PurgeCancelled() {
  while (!queue_.empty() && cancelled_.erase(queue_.top().sequence) > 0) {
    queue_.pop();
  }
}

uint64_t Simulator::Run(SimTime until) {
  uint64_t count = 0;
  PurgeCancelled();
  while (!queue_.empty() && queue_.top().when <= until) {
    if (Step()) {
      ++count;
    }
    PurgeCancelled();
  }
  if (now_ < until) {
    now_ = until;
  }
  return count;
}

bool Simulator::Step() {
  PurgeCancelled();
  if (queue_.empty()) {
    return false;
  }
  // priority_queue::top is const; the action is moved out right before pop — the element is
  // removed immediately so no observable mutation remains.
  Event event = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  CHECK_GE(event.when, now_);
  now_ = event.when;
  ++executed_;
  event.action();
  return true;
}

}  // namespace probcon
