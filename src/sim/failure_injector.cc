#include "src/sim/failure_injector.h"

#include <cmath>
#include <utility>

#include "src/common/check.h"

namespace probcon {

FailureInjector::FailureInjector(Simulator* simulator, std::vector<Process*> processes,
                                 std::vector<std::unique_ptr<FaultCurve>> curves,
                                 std::optional<double> repair_rate)
    : simulator_(simulator),
      processes_(std::move(processes)),
      curves_(std::move(curves)),
      repair_rate_(repair_rate) {
  CHECK(simulator != nullptr);
  CHECK(!processes_.empty());
  CHECK_EQ(processes_.size(), curves_.size());
  for (size_t i = 0; i < processes_.size(); ++i) {
    CHECK(processes_[i] != nullptr);
    CHECK(curves_[i] != nullptr);
  }
  if (repair_rate_.has_value()) {
    CHECK_GT(*repair_rate_, 0.0);
  }
}

void FailureInjector::Arm(const std::vector<ShockEvent>& shocks) {
  for (size_t i = 0; i < processes_.size(); ++i) {
    ScheduleFailure(static_cast<int>(i));
  }
  for (const auto& shock : shocks) {
    simulator_->ScheduleAt(shock.when, [this, victims = shock.victims]() {
      simulator_->tracer().CounterAdd("fault.shocks");
      for (const int node : victims) {
        CHECK(node >= 0 && node < static_cast<int>(processes_.size()));
        CrashNode(node);
      }
    });
  }
}

void FailureInjector::ScheduleFailure(int node) {
  const double age = simulator_->Now();
  const double failure_age =
      curves_[node]->SampleFailureAge(age, simulator_->rng().NextDouble());
  if (!std::isfinite(failure_age)) {
    return;  // Zero-hazard curve: the node never fails.
  }
  simulator_->ScheduleAt(failure_age, [this, node]() { CrashNode(node); });
}

void FailureInjector::CrashNode(int node) {
  Process* process = processes_[node];
  const bool was_crashed = process->crashed();
  // Crash() is idempotent on an already-down node but still bumps the crash generation:
  // when a shock hits a node the sampled-failure path already killed (or vice versa), the
  // later fault CLAIMS the outage, and the repair scheduled against the earlier crash goes
  // stale below. Without the claim, a repair landing at the same instant as a shock would
  // resurrect the node the shock just killed.
  process->Crash();  // Process::Crash emits the kNodeCrashed trace event.
  if (!was_crashed) {
    ++crash_count_;
    simulator_->tracer().CounterAdd("fault.crashes_injected");
  }
  if (repair_rate_.has_value()) {
    const uint64_t generation = process->crash_generation();
    const SimTime repair_delay = simulator_->rng().NextExponential(*repair_rate_);
    simulator_->Schedule(repair_delay, [this, node, generation]() {
      Process* target = processes_[node];
      if (target->crashed() && target->crash_generation() == generation) {
        target->Recover();
        ++recovery_count_;
        simulator_->tracer().CounterAdd("fault.recoveries");
        ScheduleFailure(node);
      }
    });
  }
}

}  // namespace probcon
