#include "src/sim/process.h"

#include <utility>

#include "src/common/check.h"

namespace probcon {

Process::Process(Simulator* simulator, Network* network, int id)
    : simulator_(simulator), network_(network), id_(id) {
  CHECK(simulator != nullptr);
  CHECK(network != nullptr);
  CHECK(id >= 0 && id < network->node_count());
}

void Process::Start() {
  network_->RegisterHandler(id_, [this](int from,
                                        const std::shared_ptr<const SimMessage>& message) {
    if (!crashed_) {
      OnMessage(from, message);
    }
  });
  OnStart();
}

void Process::Crash() {
  if (crashed_) {
    return;
  }
  crashed_ = true;
  ++epoch_;
  simulator_->tracer().NodeCrashed(id_);
}

void Process::Recover() {
  CHECK(crashed_) << "node" << id_ << "is not crashed";
  crashed_ = false;
  ++epoch_;
  simulator_->tracer().NodeRecovered(id_);
  OnRecover();
}

void Process::SetTimer(SimTime delay, std::function<void()> action) {
  const uint64_t epoch_at_set = epoch_;
  simulator_->Schedule(delay, [this, epoch_at_set, action = std::move(action)]() {
    if (!crashed_ && epoch_ == epoch_at_set) {
      action();
    }
  });
}

void Process::SendTo(int to, std::shared_ptr<const SimMessage> message) {
  if (crashed_) {
    return;
  }
  network_->Send(id_, to, std::move(message));
}

void Process::BroadcastAll(const std::shared_ptr<const SimMessage>& message,
                           bool include_self) {
  if (crashed_) {
    return;
  }
  network_->Broadcast(id_, message, include_self);
}

}  // namespace probcon
