#include "src/sim/process.h"

#include <utility>

#include "src/common/check.h"

namespace probcon {

Process::Process(Simulator* simulator, Network* network, int id)
    : simulator_(simulator), network_(network), id_(id) {
  CHECK(simulator != nullptr);
  CHECK(network != nullptr);
  CHECK(id >= 0 && id < network->node_count());
}

void Process::Start() {
  network_->RegisterHandler(id_, [this](int from,
                                        const std::shared_ptr<const SimMessage>& message) {
    DeliverMessage(from, message);
  });
  OnStart();
}

void Process::DeliverMessage(int from, const std::shared_ptr<const SimMessage>& message) {
  if (crashed_) {
    return;  // Defense in depth: the network already drops deliveries to down nodes.
  }
  if (handler_delay_ > 0.0) {
    // Gray mode: the message is "received" but the process gets to it late. A crash (or
    // crash+recover) in the meantime discards it, like any queued-but-unprocessed input.
    const uint64_t epoch_at_delivery = epoch_;
    simulator_->Schedule(handler_delay_, [this, epoch_at_delivery, from, message]() {
      if (!crashed_ && epoch_ == epoch_at_delivery) {
        OnMessage(from, message);
      }
    });
    return;
  }
  OnMessage(from, message);
}

void Process::Crash() {
  ++crash_generation_;
  if (crashed_) {
    return;  // Already down; the generation bump above records the new claim.
  }
  crashed_ = true;
  ++epoch_;
  network_->SetNodeUp(id_, false);
  simulator_->tracer().NodeCrashed(id_);
}

void Process::Recover() {
  CHECK(crashed_) << "node" << id_ << "is not crashed";
  crashed_ = false;
  ++epoch_;
  network_->SetNodeUp(id_, true);
  simulator_->tracer().NodeRecovered(id_);
  OnRecover();
}

void Process::SetHandlerDelay(SimTime delay) {
  CHECK_GE(delay, 0.0);
  handler_delay_ = delay;
}

void Process::SetTimerScale(double scale) {
  CHECK_GT(scale, 0.0);
  timer_scale_ = scale;
}

void Process::SetClockRate(double rate) {
  CHECK_GT(rate, 0.0);
  clock_rate_ = rate;
}

void Process::SetTimer(SimTime delay, std::function<void()> action) {
  const uint64_t epoch_at_set = epoch_;
  simulator_->Schedule(delay * timer_scale_ / clock_rate_,
                       [this, epoch_at_set, action = std::move(action)]() {
                         if (!crashed_ && epoch_ == epoch_at_set) {
                           action();
                         }
                       });
}

void Process::SendTo(int to, std::shared_ptr<const SimMessage> message) {
  if (crashed_) {
    return;
  }
  network_->Send(id_, to, std::move(message));
}

void Process::BroadcastAll(const std::shared_ptr<const SimMessage>& message,
                           bool include_self) {
  if (crashed_) {
    return;
  }
  network_->Broadcast(id_, message, include_self);
}

}  // namespace probcon
