// Wire-level chaos plans for the real serving path.
//
// A WirePlan is a typed, JSON-serializable schedule of transport faults injected between a
// real client socket and the probcond TCP server by the in-process ChaosProxy
// (src/wirechaos/proxy.h). It mirrors the src/chaos plan/regime structure — "chaos as
// data, not code" — but targets the byte stream instead of the simulated network: a fault
// addresses one proxied connection (by accept order), one direction of its stream, and a
// byte offset at which it fires.
//
// Everything is deterministic: GenerateWirePlan(seed) is a pure function of the seed, a
// garble fault's corruption bytes come from a SplitMix64 stream keyed by the fault's own
// seed, and a plan round-trips through ToJson/FromJson byte-identically, so a failing plan
// dumped by the campaign runner replays exactly.

#ifndef PROBCON_SRC_WIRECHAOS_WIRE_PLAN_H_
#define PROBCON_SRC_WIRECHAOS_WIRE_PLAN_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"

namespace probcon::wirechaos {

enum class WireFaultKind : int {
  kRefuseConnect = 0,  // Close the client connection immediately at accept (clean FIN).
  kAbortConnect,       // Reset the client connection at accept (RST via SO_LINGER 0).
  kCloseAfter,         // Clean close of both legs after forwarding `after_bytes` (FIN
                       // mid-frame when the offset lands inside one).
  kAbortAfter,         // RST-style abort of both legs after forwarding `after_bytes`.
  kTruncate,           // Silently delete `skip_bytes` from the stream at `after_bytes` and
                       // keep forwarding — desynchronizes length-prefixed framing.
  kGarble,             // XOR `garble_bytes` bytes starting at `after_bytes` with a
                       // SplitMix64 stream keyed by `garble_seed` (corrupts length
                       // prefixes, magics, or payload JSON depending on the offset).
  kStall,              // Pause forwarding of the direction for `stall_ms` once
                       // `after_bytes` have been forwarded.
  kSlowDrip,           // Forward the direction in `drip_bytes` chunks separated by
                       // `drip_ms` gaps once `after_bytes` have been forwarded.
  kDuplicateConnect,   // Mirror the first `dup_bytes` client bytes into a second upstream
                       // connection (a retrying client's ghost double-send).
};
inline constexpr int kWireFaultKindCount = 9;

std::string_view WireFaultKindName(WireFaultKind kind);
Result<WireFaultKind> WireFaultKindFromName(std::string_view name);

enum class WireDirection : int {
  kClientToServer = 0,
  kServerToClient,
};

std::string_view WireDirectionName(WireDirection direction);

// One fault, addressed to (connection accept index, stream direction, byte offset). Only
// the parameter subset for `kind` is meaningful (and serialized); the rest stay at their
// defaults so operator== is structural.
struct WireFault {
  WireFaultKind kind = WireFaultKind::kCloseAfter;
  int conn_index = 0;       // Which proxied connection, in accept order.
  WireDirection direction = WireDirection::kClientToServer;
  uint64_t after_bytes = 0;  // Stream offset (bytes forwarded in `direction`) that arms it.
  uint64_t skip_bytes = 0;   // kTruncate: bytes silently deleted.
  uint64_t garble_bytes = 0;  // kGarble: bytes XOR-corrupted.
  uint64_t garble_seed = 1;   // kGarble: SplitMix64 key for the corruption mask.
  double stall_ms = 0.0;      // kStall: forwarding pause.
  uint64_t drip_bytes = 0;    // kSlowDrip: chunk size.
  double drip_ms = 0.0;       // kSlowDrip: gap between chunks.
  uint64_t dup_bytes = 0;     // kDuplicateConnect: mirrored client prefix.

  bool operator==(const WireFault& other) const;
  std::string Describe() const;
};

struct WirePlan {
  uint64_t seed = 1;
  std::vector<WireFault> faults;

  bool operator==(const WirePlan& other) const;

  // Structural validity: parameters in range for each fault's kind. Bounds keep any single
  // plan cheap to execute (stalls and drips are capped well under a campaign deadline).
  Status Validate() const;

  // Deterministic two-space-indented JSON, mirroring ChaosPlan::ToJson.
  std::string ToJson() const;
  static Result<WirePlan> FromJson(std::string_view text);

  std::string Describe() const;
};

// Bounds enforced by Validate() and respected by GenerateWirePlan().
inline constexpr int kMaxWireConnIndex = 64;
inline constexpr uint64_t kMaxWireOffsetBytes = 1u << 20;
inline constexpr double kMaxWireStallMs = 1000.0;
inline constexpr double kMaxWireDripMs = 100.0;
inline constexpr uint64_t kMaxWireGarbleBytes = 4096;

// Generates a random plan with 1-5 faults as a pure function of `seed`. Offsets are biased
// toward the first frame header (0-12 bytes) where corruption bites hardest; stalls and
// drips stay well under the campaign's per-call deadline so a fault-free retry can finish.
WirePlan GenerateWirePlan(uint64_t seed);

}  // namespace probcon::wirechaos

#endif  // PROBCON_SRC_WIRECHAOS_WIRE_PLAN_H_
