// Wire-chaos campaign runner: hammers a live in-process query server through the
// ChaosProxy with many generated WirePlans and checks the resilience contract — every
// client call must resolve to a definite, acceptable status within its deadline (plus a
// hang-detection slack), no matter what the wire does.
//
// Acceptable resolutions are OK, UNAVAILABLE, DEADLINE_EXCEEDED, RESOURCE_EXHAUSTED, and
// INVALID_ARGUMENT (a payload garble can corrupt a request's JSON inside an intact frame —
// PCSV carries no checksum — and the server rightly rejects it): a fault plan may
// legitimately defeat the retry policy, but it must never produce a hang, a crash, or a
// nonsense verdict. A failing plan is shrunk (greedy fault removal to a
// fixed point, the src/chaos shrink idiom) and optionally dumped as a repro — the original
// plan, the minimized plan, and the reason — under `repro_dir`.

#ifndef PROBCON_SRC_WIRECHAOS_CAMPAIGN_H_
#define PROBCON_SRC_WIRECHAOS_CAMPAIGN_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/wirechaos/wire_plan.h"

namespace probcon::wirechaos {

struct WireCampaignOptions {
  uint64_t seed = 1;  // Root seed; plan i uses DeriveStreamSeed(seed, i + 1).
  int plans = 1000;
  double call_deadline_ms = 2000.0;   // Per-call deadline handed to the resilient client.
  double attempt_timeout_ms = 250.0;  // Per-attempt connect + exchange bound.
  // Extra wall allowance past the deadline before a call counts as hung: the last attempt
  // may start just inside the deadline and still run its attempt timeout.
  double hang_slack_ms = 1500.0;
  std::string repro_dir;  // Non-empty: failing plans are dumped here.
  bool verbose = false;   // Progress lines to stderr every 50 plans.
};

struct WireCampaignFailure {
  int plan_index = 0;
  WirePlan plan;
  WirePlan shrunk;
  std::string reason;
};

struct WireCampaignResult {
  int plans_run = 0;
  uint64_t calls = 0;
  uint64_t ok = 0;
  std::map<std::string, uint64_t> statuses;  // Status name → resolution count.
  uint64_t retries = 0;
  uint64_t hedges = 0;
  uint64_t proxy_faults_fired = 0;
  std::vector<WireCampaignFailure> failures;

  std::string Describe() const;
};

// Starts one in-process QueryServer + TcpServer, then runs every plan's workload through
// a fresh ChaosProxy + ResilientClient pair. A non-OK Result means the harness itself
// could not run (server failed to start); plan failures are reported in the result.
Result<WireCampaignResult> RunWireCampaign(const WireCampaignOptions& options);

}  // namespace probcon::wirechaos

#endif  // PROBCON_SRC_WIRECHAOS_CAMPAIGN_H_
