#include "src/wirechaos/campaign.h"

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string_view>
#include <utility>

#include "src/common/json.h"
#include "src/common/rng.h"
#include "src/serve/client.h"
#include "src/serve/server.h"
#include "src/serve/spec.h"
#include "src/serve/transport.h"
#include "src/wirechaos/proxy.h"

namespace probcon::wirechaos {

namespace {

using Clock = std::chrono::steady_clock;

double ElapsedMs(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

// The statuses a fault plan may legitimately force. Anything else — or a call outliving
// deadline + slack — is a resilience bug. INVALID_ARGUMENT is in the set because PCSV
// frames carry no payload checksum (TCP already checksums; the proxy models a wire more
// hostile than the deployment threat model), so a client-to-server garble that spares the
// id digits reaches the server as a well-formed frame holding corrupt JSON and is
// correctly rejected as a bad request. The contract is definiteness within the deadline,
// not correctness under arbitrary payload corruption.
bool AcceptableResolution(StatusCode code) {
  return code == StatusCode::kOk || code == StatusCode::kUnavailable ||
         code == StatusCode::kDeadlineExceeded || code == StatusCode::kResourceExhausted ||
         code == StatusCode::kInvalidArgument;
}

struct PlanOutcome {
  bool failed = false;
  std::string reason;
  uint64_t calls = 0;
  uint64_t ok = 0;
  std::map<std::string, uint64_t> statuses;
  uint64_t retries = 0;
  uint64_t hedges = 0;
  uint64_t faults_fired = 0;
};

void RecordResolution(PlanOutcome& outcome, std::string_view what, StatusCode code,
                      const std::string& detail, double elapsed_ms, double deadline_ms,
                      double slack_ms) {
  ++outcome.calls;
  ++outcome.statuses[std::string(StatusCodeName(code))];
  if (code == StatusCode::kOk) {
    ++outcome.ok;
  }
  if (outcome.failed) {
    return;  // Keep the first reason; later calls still count toward totals.
  }
  if (elapsed_ms > deadline_ms + slack_ms) {
    outcome.failed = true;
    outcome.reason = std::string(what) + " took " + std::to_string(elapsed_ms) +
                     "ms against a " + std::to_string(deadline_ms) + "ms deadline (hang)";
    return;
  }
  if (!AcceptableResolution(code)) {
    outcome.failed = true;
    outcome.reason = std::string(what) + " resolved to " +
                     std::string(StatusCodeName(code)) + ": " + detail;
  }
}

// The fixed per-plan workload: four single queries plus one hedged pipelined batch,
// spanning cheap inline verbs and pool-backed engine verbs.
PlanOutcome RunPlanWorkload(uint16_t upstream_port, const WirePlan& plan,
                            const WireCampaignOptions& options) {
  PlanOutcome outcome;
  ChaosProxy proxy(upstream_port, plan);
  Status started = proxy.Start();
  if (!started.ok()) {
    outcome.failed = true;
    outcome.reason = "proxy failed to start: " + started.message();
    return outcome;
  }

  serve::RetryOptions retry;
  retry.max_attempts = 4;
  retry.seed = DeriveStreamSeed(plan.seed, 0x52455452ull);  // "RETR"
  retry.attempt_timeout_ms = options.attempt_timeout_ms;
  serve::ResilientClient client(
      serve::ResilientClient::TcpFactory(proxy.port(), options.attempt_timeout_ms), retry);

  auto run_call = [&](std::string_view kind, const Json& params) {
    const Clock::time_point start = Clock::now();
    Result<serve::ResponseEnvelope> envelope =
        client.Query(kind, params, options.call_deadline_ms);
    const StatusCode code =
        envelope.ok() ? envelope->status.code() : envelope.status().code();
    const std::string detail =
        envelope.ok() ? envelope->status.message() : envelope.status().message();
    RecordResolution(outcome, kind, code, detail, ElapsedMs(start),
                     options.call_deadline_ms, options.hang_slack_ms);
  };

  auto fault_spec = [](int n, double p) {
    Json fault = Json::Object();
    fault.Set("n", Json::Number(n));
    fault.Set("p", Json::Number(p));
    return fault;
  };

  Json table2 = Json::Object();
  table2.Set("n", Json::Number(5));

  Json montecarlo = Json::Object();
  montecarlo.Set("protocol", Json::String("raft"));
  montecarlo.Set("fault", fault_spec(5, 0.01));
  montecarlo.Set("trials", Json::Number(static_cast<uint64_t>(4096)));
  montecarlo.Set("seed", Json::Number(static_cast<uint64_t>(7)));

  Json quorum = Json::Object();
  quorum.Set("protocol", Json::String("raft"));
  quorum.Set("fault", fault_spec(7, 0.01));
  quorum.Set("target_live", Json::Number(0.999));

  run_call("ping", Json::Object());
  run_call("table2", table2);
  run_call("montecarlo", montecarlo);
  run_call("quorum_size", quorum);

  // Pipelined batch on a second client with hedging armed: a stalled primary exchange
  // races a hedge connection through the same proxy.
  serve::RetryOptions hedged = retry;
  hedged.seed = DeriveStreamSeed(plan.seed, 0x48454447ull);  // "HEDG"
  hedged.hedge_delay_ms = options.attempt_timeout_ms / 2.0;
  serve::ResilientClient batcher(
      serve::ResilientClient::TcpFactory(proxy.port(), options.attempt_timeout_ms), hedged);

  Json table1 = Json::Object();
  table1.Set("n", Json::Number(4));

  std::vector<serve::ServeClient::BatchItem> items;
  items.push_back({"ping", Json::Object(), options.call_deadline_ms, false});
  items.push_back({"table1", std::move(table1), options.call_deadline_ms, false});
  items.push_back({"table2", std::move(table2), options.call_deadline_ms, false});
  items.push_back({"quorum_size", std::move(quorum), options.call_deadline_ms, false});

  const Clock::time_point batch_start = Clock::now();
  Result<std::vector<serve::ResponseEnvelope>> batch = batcher.QueryBatch(items);
  const double batch_elapsed = ElapsedMs(batch_start);
  if (!batch.ok()) {
    RecordResolution(outcome, "batch", batch.status().code(), batch.status().message(),
                     batch_elapsed, options.call_deadline_ms, options.hang_slack_ms);
  } else {
    for (size_t i = 0; i < batch->size(); ++i) {
      RecordResolution(outcome, "batch[" + std::to_string(i) + "]",
                       (*batch)[i].status.code(), (*batch)[i].status.message(),
                       batch_elapsed, options.call_deadline_ms, options.hang_slack_ms);
    }
  }

  outcome.retries = client.retries() + batcher.retries();
  outcome.hedges = client.hedges() + batcher.hedges();
  proxy.Stop();
  outcome.faults_fired = proxy.counters().faults_fired;
  return outcome;
}

// Greedy shrink, the src/chaos idiom: drop faults back-to-front, keep any removal that
// still fails, iterate to a fixed point.
WirePlan ShrinkPlan(uint16_t upstream_port, const WirePlan& plan,
                    const WireCampaignOptions& options) {
  WirePlan current = plan;
  bool changed = true;
  while (changed && !current.faults.empty()) {
    changed = false;
    for (size_t i = current.faults.size(); i-- > 0;) {
      WirePlan candidate = current;
      candidate.faults.erase(candidate.faults.begin() + static_cast<ptrdiff_t>(i));
      if (RunPlanWorkload(upstream_port, candidate, options).failed) {
        current = std::move(candidate);
        changed = true;
      }
    }
  }
  return current;
}

void DumpRepro(const std::string& dir, const WireCampaignFailure& failure) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  const std::string stem = dir + "/wire-" + std::to_string(failure.plan_index);
  std::ofstream(stem + ".plan.json") << failure.plan.ToJson();
  std::ofstream(stem + ".min.plan.json") << failure.shrunk.ToJson();
  std::ofstream(stem + ".reason.txt") << failure.reason << "\n";
}

}  // namespace

std::string WireCampaignResult::Describe() const {
  std::string out = "wire campaign: " + std::to_string(plans_run) + " plans, " +
                    std::to_string(calls) + " calls, " + std::to_string(ok) + " ok, " +
                    std::to_string(retries) + " retries, " + std::to_string(hedges) +
                    " hedges, " + std::to_string(proxy_faults_fired) + " faults fired, " +
                    std::to_string(failures.size()) + " failing plans\n";
  out += "resolutions:\n";
  for (const auto& [name, count] : statuses) {
    out += "  " + name + ": " + std::to_string(count) + "\n";
  }
  for (const WireCampaignFailure& failure : failures) {
    out += "FAIL plan " + std::to_string(failure.plan_index) + ": " + failure.reason +
           "\n  shrunk to: " + failure.shrunk.Describe() + "\n";
  }
  return out;
}

Result<WireCampaignResult> RunWireCampaign(const WireCampaignOptions& options) {
  if (options.plans <= 0) {
    return InvalidArgumentError("wire campaign: plans must be > 0");
  }
  serve::ServerOptions server_options;
  serve::QueryServer server(server_options, nullptr);
  serve::TcpServer transport(server);
  RETURN_IF_ERROR(transport.Start(0));

  WireCampaignResult result;
  for (int i = 0; i < options.plans; ++i) {
    const WirePlan plan =
        GenerateWirePlan(DeriveStreamSeed(options.seed, static_cast<uint64_t>(i) + 1));
    PlanOutcome outcome = RunPlanWorkload(transport.port(), plan, options);
    ++result.plans_run;
    result.calls += outcome.calls;
    result.ok += outcome.ok;
    result.retries += outcome.retries;
    result.hedges += outcome.hedges;
    result.proxy_faults_fired += outcome.faults_fired;
    for (const auto& [name, count] : outcome.statuses) {
      result.statuses[name] += count;
    }
    if (outcome.failed) {
      WireCampaignFailure failure;
      failure.plan_index = i;
      failure.plan = plan;
      failure.shrunk = ShrinkPlan(transport.port(), plan, options);
      failure.reason = outcome.reason;
      if (!options.repro_dir.empty()) {
        DumpRepro(options.repro_dir, failure);
      }
      result.failures.push_back(std::move(failure));
    }
    if (options.verbose && (i + 1) % 50 == 0) {
      std::fprintf(stderr, "wirechaos: %d/%d plans, %llu calls, %zu failures\n", i + 1,
                   options.plans, static_cast<unsigned long long>(result.calls),
                   result.failures.size());
    }
  }
  transport.Stop();
  return result;
}

}  // namespace probcon::wirechaos
