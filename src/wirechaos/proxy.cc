#include "src/wirechaos/proxy.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <string>
#include <utility>

#include "src/common/rng.h"

namespace probcon::wirechaos {
namespace {

using Clock = std::chrono::steady_clock;

// Per-leg buffering cap: a stalled sink backpressures its source at this point.
constexpr size_t kLegBufferCap = 256 * 1024;

// The deterministic corruption mask for garble faults: byte `index` of the SplitMix64
// stream keyed by the fault's seed. Zero masks are remapped so every garbled byte really
// changes on the wire.
uint8_t GarbleMask(uint64_t seed, uint64_t index) {
  uint64_t state = seed + index / 8;
  const uint64_t word = SplitMix64(state);
  const auto mask = static_cast<uint8_t>((word >> (8 * (index % 8))) & 0xff);
  return mask == 0 ? 0xA5 : mask;
}

void SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

void SetAbortOnClose(int fd) {
  // SO_LINGER with a zero timeout turns close() into an RST.
  struct linger hard {};
  hard.l_onoff = 1;
  hard.l_linger = 0;
  ::setsockopt(fd, SOL_SOCKET, SO_LINGER, &hard, sizeof(hard));
}

struct FaultState {
  WireFault fault;
  bool fired = false;
};

}  // namespace

struct ProxyConn {
  int client_fd = -1;
  int server_fd = -1;
  int dup_fd = -1;
  int index = 0;
  bool dead = false;
  bool close_pending = false;  // A close/abort fault fired; flush then tear down.
  bool close_abort = false;
  int close_leg = 0;
  uint64_t dup_budget = 0;

  struct Leg {
    std::string buf;  // Transformed bytes read from the source, pending write to the sink.
    size_t off = 0;
    uint64_t in_bytes = 0;  // Raw source-stream offset — the basis for fault triggers.
    bool src_eof = false;
    bool sink_shutdown = false;
    bool stalled = false;
    Clock::time_point resume_at{};
    bool dripping = false;
    Clock::time_point next_drip{};
    uint64_t drip_chunk = 0;
    double drip_gap_ms = 0.0;
    std::vector<FaultState> faults;

    size_t pending() const { return buf.size() - off; }
  };
  Leg legs[2];  // [0] = client_to_server, [1] = server_to_client.
};

ChaosProxy::ChaosProxy(uint16_t upstream_port, WirePlan plan)
    : upstream_port_(upstream_port), plan_(std::move(plan)) {}

ChaosProxy::~ChaosProxy() { Stop(); }

Status ChaosProxy::Start() {
  RETURN_IF_ERROR(plan_.Validate());
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return InternalError(std::string("proxy socket(): ") + std::strerror(errno));
  }
  const int enable = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &enable, sizeof(enable));
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  address.sin_port = 0;
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&address), sizeof(address)) !=
      0) {
    return InternalError(std::string("proxy bind(): ") + std::strerror(errno));
  }
  if (::listen(listen_fd_, 128) != 0) {
    return InternalError(std::string("proxy listen(): ") + std::strerror(errno));
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &bound_len) != 0) {
    return InternalError(std::string("proxy getsockname(): ") + std::strerror(errno));
  }
  port_ = ntohs(bound.sin_port);
  SetNonBlocking(listen_fd_);
  stop_.store(false, std::memory_order_relaxed);
  thread_ = std::thread([this] { Loop(); });
  started_ = true;
  return Status::Ok();
}

void ChaosProxy::Stop() {
  if (!started_) {
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    return;
  }
  stop_.store(true, std::memory_order_relaxed);
  thread_.join();
  started_ = false;
}

ChaosProxy::Counters ChaosProxy::counters() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return counters_;
}

void ChaosProxy::HandleAccept() {
  while (true) {
    const int client_fd = ::accept(listen_fd_, nullptr, nullptr);
    if (client_fd < 0) {
      return;  // EAGAIN, or a transient error the next poll retries.
    }
    SetNonBlocking(client_fd);
    const int enable = 1;
    ::setsockopt(client_fd, IPPROTO_TCP, TCP_NODELAY, &enable, sizeof(enable));

    int index = 0;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      index = static_cast<int>(counters_.accepted++);
    }

    // Connect-level faults fire before any upstream socket exists.
    bool refused = false;
    bool refuse_abort = false;
    uint64_t dup_budget = 0;
    for (const WireFault& fault : plan_.faults) {
      if (fault.conn_index != index) continue;
      if (fault.kind == WireFaultKind::kRefuseConnect) {
        refused = true;
      } else if (fault.kind == WireFaultKind::kAbortConnect) {
        refused = true;
        refuse_abort = true;
      } else if (fault.kind == WireFaultKind::kDuplicateConnect) {
        dup_budget = fault.dup_bytes;
      }
    }
    if (refused) {
      {
        std::lock_guard<std::mutex> lock(mutex_);
        ++counters_.faults_fired;
      }
      if (refuse_abort) SetAbortOnClose(client_fd);
      ::close(client_fd);
      continue;
    }

    // Upstream connect is blocking: the target is the in-process server on loopback.
    const int server_fd = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in upstream{};
    upstream.sin_family = AF_INET;
    upstream.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    upstream.sin_port = htons(upstream_port_);
    if (server_fd < 0 ||
        ::connect(server_fd, reinterpret_cast<const sockaddr*>(&upstream),
                  sizeof(upstream)) != 0) {
      if (server_fd >= 0) ::close(server_fd);
      ::close(client_fd);
      continue;
    }
    SetNonBlocking(server_fd);
    ::setsockopt(server_fd, IPPROTO_TCP, TCP_NODELAY, &enable, sizeof(enable));

    auto conn = std::make_unique<ProxyConn>();
    conn->client_fd = client_fd;
    conn->server_fd = server_fd;
    conn->index = index;
    conn->dup_budget = dup_budget;
    for (const WireFault& fault : plan_.faults) {
      if (fault.conn_index != index) continue;
      switch (fault.kind) {
        case WireFaultKind::kRefuseConnect:
        case WireFaultKind::kAbortConnect:
          break;
        case WireFaultKind::kDuplicateConnect: {
          const int dup_fd = ::socket(AF_INET, SOCK_STREAM, 0);
          if (dup_fd >= 0 &&
              ::connect(dup_fd, reinterpret_cast<const sockaddr*>(&upstream),
                        sizeof(upstream)) == 0) {
            SetNonBlocking(dup_fd);
            conn->dup_fd = dup_fd;
            std::lock_guard<std::mutex> lock(mutex_);
            ++counters_.faults_fired;
          } else if (dup_fd >= 0) {
            ::close(dup_fd);
          }
          break;
        }
        default:
          conn->legs[static_cast<int>(fault.direction)].faults.push_back(
              FaultState{fault, false});
          break;
      }
    }
    conns_.push_back(std::move(conn));
  }
}

namespace {

// Fires threshold faults that the stream offset has reached — including offset 0 at
// accept, before any bytes flow.
void ArmThresholdFaults(ProxyConn& conn, int leg_index, Clock::time_point now,
                        uint64_t* faults_fired) {
  ProxyConn::Leg& leg = conn.legs[leg_index];
  for (FaultState& state : leg.faults) {
    if (state.fired) continue;
    const WireFault& fault = state.fault;
    if (fault.after_bytes > leg.in_bytes) continue;
    switch (fault.kind) {
      case WireFaultKind::kStall:
        state.fired = true;
        ++*faults_fired;
        leg.stalled = true;
        leg.resume_at =
            now + std::chrono::microseconds(static_cast<int64_t>(fault.stall_ms * 1000.0));
        break;
      case WireFaultKind::kSlowDrip:
        state.fired = true;
        ++*faults_fired;
        leg.dripping = true;
        leg.next_drip = now;
        leg.drip_chunk = fault.drip_bytes;
        leg.drip_gap_ms = fault.drip_ms;
        break;
      case WireFaultKind::kCloseAfter:
      case WireFaultKind::kAbortAfter:
        state.fired = true;
        ++*faults_fired;
        conn.close_pending = true;
        conn.close_abort = fault.kind == WireFaultKind::kAbortAfter;
        conn.close_leg = leg_index;
        break;
      default:
        break;
    }
  }
}

// Applies byte-level transforms (close trim, truncation, garbling) to a freshly read raw
// chunk and appends the surviving bytes to the leg buffer.
void IngestChunk(ProxyConn& conn, int leg_index, const char* data, size_t size,
                 Clock::time_point now, uint64_t* faults_fired) {
  ProxyConn::Leg& leg = conn.legs[leg_index];
  const uint64_t base = leg.in_bytes;
  for (size_t i = 0; i < size && !conn.close_pending; ++i) {
    const uint64_t raw = base + i;
    auto byte = static_cast<uint8_t>(data[i]);
    bool drop = false;
    for (FaultState& state : leg.faults) {
      const WireFault& fault = state.fault;
      switch (fault.kind) {
        case WireFaultKind::kCloseAfter:
        case WireFaultKind::kAbortAfter:
          if (!state.fired && raw >= fault.after_bytes) {
            state.fired = true;
            ++*faults_fired;
            conn.close_pending = true;
            conn.close_abort = fault.kind == WireFaultKind::kAbortAfter;
            conn.close_leg = leg_index;
          }
          break;
        case WireFaultKind::kTruncate:
          if (raw >= fault.after_bytes && raw < fault.after_bytes + fault.skip_bytes) {
            if (!state.fired) {
              state.fired = true;
              ++*faults_fired;
            }
            drop = true;
          }
          break;
        case WireFaultKind::kGarble:
          if (raw >= fault.after_bytes && raw < fault.after_bytes + fault.garble_bytes) {
            if (!state.fired) {
              state.fired = true;
              ++*faults_fired;
            }
            byte ^= GarbleMask(fault.garble_seed, raw - fault.after_bytes);
          }
          break;
        default:
          break;
      }
      if (conn.close_pending) break;
    }
    if (conn.close_pending) break;
    if (!drop) leg.buf.push_back(static_cast<char>(byte));
  }
  leg.in_bytes += size;
  ArmThresholdFaults(conn, leg_index, now, faults_fired);
}

}  // namespace

void ChaosProxy::CloseConn(ProxyConn& conn) {
  if (conn.close_abort) {
    if (conn.client_fd >= 0) SetAbortOnClose(conn.client_fd);
    if (conn.server_fd >= 0) SetAbortOnClose(conn.server_fd);
  }
  if (conn.client_fd >= 0) ::close(conn.client_fd);
  if (conn.server_fd >= 0) ::close(conn.server_fd);
  if (conn.dup_fd >= 0) ::close(conn.dup_fd);
  conn.client_fd = conn.server_fd = conn.dup_fd = -1;
  conn.dead = true;
}

bool ChaosProxy::PumpConn(ProxyConn& conn) {
  const Clock::time_point now = Clock::now();
  uint64_t faults_fired = 0;
  uint64_t forwarded[2] = {0, 0};
  char buffer[16 * 1024];

  ArmThresholdFaults(conn, 0, now, &faults_fired);
  ArmThresholdFaults(conn, 1, now, &faults_fired);

  for (int leg_index = 0; leg_index < 2 && !conn.dead; ++leg_index) {
    ProxyConn::Leg& leg = conn.legs[leg_index];
    const int src = leg_index == 0 ? conn.client_fd : conn.server_fd;
    const int sink = leg_index == 0 ? conn.server_fd : conn.client_fd;

    // Read from the source through the fault transforms.
    while (!leg.src_eof && !conn.close_pending && leg.pending() < kLegBufferCap) {
      const ssize_t received = ::recv(src, buffer, sizeof(buffer), 0);
      if (received > 0) {
        if (leg_index == 0 && conn.dup_budget > 0 && conn.dup_fd >= 0) {
          const auto mirror =
              std::min<uint64_t>(conn.dup_budget, static_cast<uint64_t>(received));
          ::send(conn.dup_fd, buffer, static_cast<size_t>(mirror), MSG_NOSIGNAL);
          conn.dup_budget -= mirror;
          if (conn.dup_budget == 0) {
            // The ghost connection dies abruptly once its mirrored prefix is spent.
            ::close(conn.dup_fd);
            conn.dup_fd = -1;
          }
        }
        IngestChunk(conn, leg_index, buffer, static_cast<size_t>(received), now,
                    &faults_fired);
        continue;
      }
      if (received == 0) {
        leg.src_eof = true;
        break;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      conn.dead = true;
      break;
    }
    if (conn.dead) break;

    // Write to the sink, honoring stall and slow-drip pacing.
    while (leg.pending() > 0) {
      if (leg.stalled) {
        if (now < leg.resume_at) break;
        leg.stalled = false;
      }
      size_t limit = leg.pending();
      if (leg.dripping) {
        if (now < leg.next_drip) break;
        limit = std::min<size_t>(limit, leg.drip_chunk);
      }
      const ssize_t sent = ::send(sink, leg.buf.data() + leg.off, limit, MSG_NOSIGNAL);
      if (sent > 0) {
        leg.off += static_cast<size_t>(sent);
        forwarded[leg_index] += static_cast<uint64_t>(sent);
        if (leg.off == leg.buf.size()) {
          leg.buf.clear();
          leg.off = 0;
        }
        if (leg.dripping) {
          leg.next_drip = now + std::chrono::microseconds(
                                    static_cast<int64_t>(leg.drip_gap_ms * 1000.0));
          break;  // One chunk per pacing interval.
        }
        continue;
      }
      if (sent < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      if (sent < 0 && errno == EINTR) continue;
      conn.dead = true;
      break;
    }
    if (conn.dead) break;

    // Propagate a drained half-close.
    if (leg.src_eof && leg.pending() == 0 && !leg.sink_shutdown) {
      ::shutdown(sink, SHUT_WR);
      leg.sink_shutdown = true;
    }
  }

  // Drain (and discard) anything the server sends to a ghost duplicate connection.
  while (conn.dup_fd >= 0) {
    const ssize_t received = ::recv(conn.dup_fd, buffer, sizeof(buffer), 0);
    if (received > 0) continue;
    if (received < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (received < 0 && errno == EINTR) continue;
    ::close(conn.dup_fd);
    conn.dup_fd = -1;
  }

  if (faults_fired > 0 || forwarded[0] > 0 || forwarded[1] > 0) {
    std::lock_guard<std::mutex> lock(mutex_);
    counters_.faults_fired += faults_fired;
    counters_.client_to_server_bytes += forwarded[0];
    counters_.server_to_client_bytes += forwarded[1];
  }

  if (conn.dead) {
    CloseConn(conn);
    return false;
  }
  if (conn.close_pending && conn.legs[conn.close_leg].pending() == 0) {
    CloseConn(conn);
    return false;
  }
  if (conn.legs[0].src_eof && conn.legs[0].pending() == 0 && conn.legs[1].src_eof &&
      conn.legs[1].pending() == 0) {
    CloseConn(conn);
    return false;
  }
  return true;
}

void ChaosProxy::Loop() {
  std::vector<pollfd> fds;
  while (!stop_.load(std::memory_order_relaxed)) {
    const Clock::time_point now = Clock::now();
    fds.clear();
    fds.push_back(pollfd{listen_fd_, POLLIN, 0});

    int timeout_ms = 50;
    auto consider_wake = [&](Clock::time_point when) {
      const auto delta =
          std::chrono::duration_cast<std::chrono::milliseconds>(when - now).count();
      timeout_ms = std::max(1, std::min<int>(timeout_ms, static_cast<int>(delta) + 1));
    };
    for (const auto& conn : conns_) {
      short client_events = 0;
      short server_events = 0;
      for (int leg_index = 0; leg_index < 2; ++leg_index) {
        const ProxyConn::Leg& leg = conn->legs[leg_index];
        const bool wants_read =
            !leg.src_eof && !conn->close_pending && leg.pending() < kLegBufferCap;
        bool writable_now = leg.pending() > 0;
        if (writable_now && leg.stalled) {
          if (now < leg.resume_at) {
            writable_now = false;
            consider_wake(leg.resume_at);
          }
        }
        if (writable_now && leg.dripping && now < leg.next_drip) {
          writable_now = false;
          consider_wake(leg.next_drip);
        }
        if (leg_index == 0) {
          if (wants_read) client_events |= POLLIN;
          if (writable_now) server_events |= POLLOUT;
        } else {
          if (wants_read) server_events |= POLLIN;
          if (writable_now) client_events |= POLLOUT;
        }
      }
      fds.push_back(pollfd{conn->client_fd, client_events, 0});
      fds.push_back(pollfd{conn->server_fd, server_events, 0});
      if (conn->dup_fd >= 0) {
        fds.push_back(pollfd{conn->dup_fd, POLLIN, 0});
      }
    }

    const int ready = ::poll(fds.data(), fds.size(), timeout_ms);
    if (ready < 0 && errno != EINTR) break;

    if ((fds[0].revents & POLLIN) != 0) HandleAccept();

    // Pump every connection each wakeup: timers may have expired even without IO events,
    // and the per-socket syscalls are nonblocking anyway.
    for (size_t i = 0; i < conns_.size();) {
      if (PumpConn(*conns_[i])) {
        ++i;
      } else {
        conns_.erase(conns_.begin() + static_cast<long>(i));
      }
    }
  }

  for (const auto& conn : conns_) {
    CloseConn(*conn);
  }
  conns_.clear();
  ::close(listen_fd_);
  listen_fd_ = -1;
}

}  // namespace probcon::wirechaos
