#include "src/wirechaos/wire_plan.h"

#include <array>
#include <sstream>
#include <utility>

#include "src/common/check.h"
#include "src/common/json.h"
#include "src/common/rng.h"

namespace probcon::wirechaos {
namespace {

constexpr std::array<std::string_view, kWireFaultKindCount> kFaultNames = {
    "refuse_connect", "abort_connect", "close_after",       "abort_after", "truncate",
    "garble",         "stall",         "slow_drip",         "duplicate_connect",
};

constexpr std::array<std::string_view, 2> kDirectionNames = {"client_to_server",
                                                             "server_to_client"};

constexpr std::string_view kWhat = "wire plan JSON";

Result<WireFault> FaultFromJson(const Json& object) {
  if (!object.IsObject()) {
    return InvalidArgumentError("wire plan JSON: each fault must be an object");
  }
  const Json* kind_field = object.Find("kind");
  if (kind_field == nullptr || !kind_field->IsString()) {
    return InvalidArgumentError("wire plan JSON: fault missing string field 'kind'");
  }
  Result<WireFaultKind> kind = WireFaultKindFromName(kind_field->text);
  if (!kind.ok()) return kind.status();

  WireFault fault;
  fault.kind = *kind;
  RETURN_IF_ERROR(JsonReadInt(object, "conn", &fault.conn_index, kWhat));
  std::string direction(kDirectionNames[0]);
  RETURN_IF_ERROR(JsonReadString(object, "direction", &direction, kWhat));
  if (direction == kDirectionNames[0]) {
    fault.direction = WireDirection::kClientToServer;
  } else if (direction == kDirectionNames[1]) {
    fault.direction = WireDirection::kServerToClient;
  } else {
    return InvalidArgumentError("wire plan JSON: unknown direction '" + direction + "'");
  }
  RETURN_IF_ERROR(JsonReadUint64(object, "after_bytes", &fault.after_bytes, kWhat));
  RETURN_IF_ERROR(JsonReadUint64(object, "skip_bytes", &fault.skip_bytes, kWhat));
  RETURN_IF_ERROR(JsonReadUint64(object, "garble_bytes", &fault.garble_bytes, kWhat));
  RETURN_IF_ERROR(JsonReadUint64(object, "garble_seed", &fault.garble_seed, kWhat));
  RETURN_IF_ERROR(JsonReadDouble(object, "stall_ms", &fault.stall_ms, kWhat));
  RETURN_IF_ERROR(JsonReadUint64(object, "drip_bytes", &fault.drip_bytes, kWhat));
  RETURN_IF_ERROR(JsonReadDouble(object, "drip_ms", &fault.drip_ms, kWhat));
  RETURN_IF_ERROR(JsonReadUint64(object, "dup_bytes", &fault.dup_bytes, kWhat));
  return fault;
}

void AppendFaultJson(const WireFault& fault, std::string* out) {
  auto field = [out](std::string_view key, const std::string& value, bool* first) {
    if (!*first) *out += ", ";
    *first = false;
    *out += "\"";
    *out += key;
    *out += "\": ";
    *out += value;
  };
  bool first = true;
  *out += "    {";
  field("kind", "\"" + std::string(WireFaultKindName(fault.kind)) + "\"", &first);
  field("conn", std::to_string(fault.conn_index), &first);
  switch (fault.kind) {
    case WireFaultKind::kRefuseConnect:
    case WireFaultKind::kAbortConnect:
      break;
    case WireFaultKind::kCloseAfter:
    case WireFaultKind::kAbortAfter:
      field("direction", "\"" + std::string(WireDirectionName(fault.direction)) + "\"",
            &first);
      field("after_bytes", std::to_string(fault.after_bytes), &first);
      break;
    case WireFaultKind::kTruncate:
      field("direction", "\"" + std::string(WireDirectionName(fault.direction)) + "\"",
            &first);
      field("after_bytes", std::to_string(fault.after_bytes), &first);
      field("skip_bytes", std::to_string(fault.skip_bytes), &first);
      break;
    case WireFaultKind::kGarble:
      field("direction", "\"" + std::string(WireDirectionName(fault.direction)) + "\"",
            &first);
      field("after_bytes", std::to_string(fault.after_bytes), &first);
      field("garble_bytes", std::to_string(fault.garble_bytes), &first);
      field("garble_seed", std::to_string(fault.garble_seed), &first);
      break;
    case WireFaultKind::kStall:
      field("direction", "\"" + std::string(WireDirectionName(fault.direction)) + "\"",
            &first);
      field("after_bytes", std::to_string(fault.after_bytes), &first);
      field("stall_ms", FormatDouble(fault.stall_ms), &first);
      break;
    case WireFaultKind::kSlowDrip:
      field("direction", "\"" + std::string(WireDirectionName(fault.direction)) + "\"",
            &first);
      field("after_bytes", std::to_string(fault.after_bytes), &first);
      field("drip_bytes", std::to_string(fault.drip_bytes), &first);
      field("drip_ms", FormatDouble(fault.drip_ms), &first);
      break;
    case WireFaultKind::kDuplicateConnect:
      field("dup_bytes", std::to_string(fault.dup_bytes), &first);
      break;
  }
  *out += "}";
}

}  // namespace

std::string_view WireFaultKindName(WireFaultKind kind) {
  const int index = static_cast<int>(kind);
  CHECK(index >= 0 && index < kWireFaultKindCount);
  return kFaultNames[index];
}

Result<WireFaultKind> WireFaultKindFromName(std::string_view name) {
  for (int i = 0; i < kWireFaultKindCount; ++i) {
    if (kFaultNames[i] == name) {
      return static_cast<WireFaultKind>(i);
    }
  }
  return InvalidArgumentError("unknown wire fault kind '" + std::string(name) + "'");
}

std::string_view WireDirectionName(WireDirection direction) {
  return kDirectionNames[static_cast<int>(direction)];
}

bool WireFault::operator==(const WireFault& other) const {
  return kind == other.kind && conn_index == other.conn_index &&
         direction == other.direction && after_bytes == other.after_bytes &&
         skip_bytes == other.skip_bytes && garble_bytes == other.garble_bytes &&
         garble_seed == other.garble_seed && stall_ms == other.stall_ms &&
         drip_bytes == other.drip_bytes && drip_ms == other.drip_ms &&
         dup_bytes == other.dup_bytes;
}

std::string WireFault::Describe() const {
  std::ostringstream os;
  os << WireFaultKindName(kind) << " conn=" << conn_index;
  switch (kind) {
    case WireFaultKind::kRefuseConnect:
    case WireFaultKind::kAbortConnect:
      break;
    case WireFaultKind::kCloseAfter:
    case WireFaultKind::kAbortAfter:
      os << " " << WireDirectionName(direction) << " after=" << after_bytes << "B";
      break;
    case WireFaultKind::kTruncate:
      os << " " << WireDirectionName(direction) << " after=" << after_bytes << "B skip="
         << skip_bytes << "B";
      break;
    case WireFaultKind::kGarble:
      os << " " << WireDirectionName(direction) << " after=" << after_bytes << "B garble="
         << garble_bytes << "B seed=" << garble_seed;
      break;
    case WireFaultKind::kStall:
      os << " " << WireDirectionName(direction) << " after=" << after_bytes << "B stall="
         << FormatDouble(stall_ms) << "ms";
      break;
    case WireFaultKind::kSlowDrip:
      os << " " << WireDirectionName(direction) << " after=" << after_bytes << "B chunk="
         << drip_bytes << "B gap=" << FormatDouble(drip_ms) << "ms";
      break;
    case WireFaultKind::kDuplicateConnect:
      os << " dup=" << dup_bytes << "B";
      break;
  }
  return os.str();
}

bool WirePlan::operator==(const WirePlan& other) const {
  return seed == other.seed && faults == other.faults;
}

Status WirePlan::Validate() const {
  for (size_t i = 0; i < faults.size(); ++i) {
    const WireFault& fault = faults[i];
    const std::string where =
        "fault " + std::to_string(i) + " (" + std::string(WireFaultKindName(fault.kind)) +
        ")";
    if (fault.conn_index < 0 || fault.conn_index >= kMaxWireConnIndex) {
      return OutOfRangeError(where + ": conn must be in [0, " +
                             std::to_string(kMaxWireConnIndex) + ")");
    }
    if (fault.after_bytes > kMaxWireOffsetBytes) {
      return OutOfRangeError(where + ": after_bytes exceeds " +
                             std::to_string(kMaxWireOffsetBytes));
    }
    switch (fault.kind) {
      case WireFaultKind::kRefuseConnect:
      case WireFaultKind::kAbortConnect:
      case WireFaultKind::kCloseAfter:
      case WireFaultKind::kAbortAfter:
        break;
      case WireFaultKind::kTruncate:
        if (fault.skip_bytes < 1 || fault.skip_bytes > kMaxWireOffsetBytes) {
          return InvalidArgumentError(where + ": skip_bytes must be in [1, " +
                                      std::to_string(kMaxWireOffsetBytes) + "]");
        }
        break;
      case WireFaultKind::kGarble:
        if (fault.garble_bytes < 1 || fault.garble_bytes > kMaxWireGarbleBytes) {
          return InvalidArgumentError(where + ": garble_bytes must be in [1, " +
                                      std::to_string(kMaxWireGarbleBytes) + "]");
        }
        break;
      case WireFaultKind::kStall:
        if (fault.stall_ms < 0.0 || fault.stall_ms > kMaxWireStallMs) {
          return InvalidArgumentError(where + ": stall_ms must be in [0, " +
                                      FormatDouble(kMaxWireStallMs) + "]");
        }
        break;
      case WireFaultKind::kSlowDrip:
        if (fault.drip_bytes < 1) {
          return InvalidArgumentError(where + ": drip_bytes must be >= 1");
        }
        if (fault.drip_ms < 0.0 || fault.drip_ms > kMaxWireDripMs) {
          return InvalidArgumentError(where + ": drip_ms must be in [0, " +
                                      FormatDouble(kMaxWireDripMs) + "]");
        }
        break;
      case WireFaultKind::kDuplicateConnect:
        if (fault.dup_bytes < 1 || fault.dup_bytes > kMaxWireOffsetBytes) {
          return InvalidArgumentError(where + ": dup_bytes must be in [1, " +
                                      std::to_string(kMaxWireOffsetBytes) + "]");
        }
        break;
    }
  }
  return Status::Ok();
}

std::string WirePlan::ToJson() const {
  std::string out = "{\n";
  out += "  \"seed\": " + std::to_string(seed) + ",\n";
  out += "  \"faults\": [";
  for (size_t i = 0; i < faults.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    AppendFaultJson(faults[i], &out);
  }
  out += faults.empty() ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

Result<WirePlan> WirePlan::FromJson(std::string_view text) {
  Result<Json> root = ParseJson(text, kWhat);
  if (!root.ok()) return root.status();
  if (!root->IsObject()) {
    return InvalidArgumentError("wire plan JSON: top-level value must be an object");
  }
  WirePlan plan;
  RETURN_IF_ERROR(JsonReadUint64(*root, "seed", &plan.seed, kWhat));
  const Json* faults = root->Find("faults");
  if (faults != nullptr) {
    if (!faults->IsArray()) {
      return InvalidArgumentError("wire plan JSON: 'faults' must be an array");
    }
    for (const Json& item : faults->items) {
      Result<WireFault> fault = FaultFromJson(item);
      if (!fault.ok()) return fault.status();
      plan.faults.push_back(std::move(*fault));
    }
  }
  return plan;
}

std::string WirePlan::Describe() const {
  std::ostringstream os;
  os << "wire plan: seed=" << seed << " " << faults.size() << " fault(s)";
  for (const WireFault& fault : faults) {
    os << "\n  " << fault.Describe();
  }
  return os.str();
}

WirePlan GenerateWirePlan(uint64_t seed) {
  WirePlan plan;
  plan.seed = seed;
  Rng rng(DeriveStreamSeed(seed, 0x77697265u));  // "wire"
  const int fault_count = static_cast<int>(rng.NextInRange(1, 5));
  for (int i = 0; i < fault_count; ++i) {
    WireFault fault;
    fault.kind = static_cast<WireFaultKind>(rng.NextBelow(kWireFaultKindCount));
    // Connection indices are geometric-ish: most faults hit the first few connections a
    // retrying client will open, so a plan usually bites instead of idling.
    fault.conn_index = static_cast<int>(rng.NextBelow(rng.NextBernoulli(0.75) ? 3 : 8));
    // Drawn for every fault so the stream position per fault is fixed, but assigned only
    // for the kinds that serialize them — fields outside a kind's parameter subset must
    // stay at their defaults for ToJson/FromJson to round-trip structurally.
    const WireDirection direction = rng.NextBernoulli(0.5)
                                        ? WireDirection::kClientToServer
                                        : WireDirection::kServerToClient;
    // Offsets cluster on the first frame: inside the 8-byte header with probability ~1/2,
    // else somewhere in the first ~600 bytes of the stream.
    const uint64_t after_bytes =
        rng.NextBernoulli(0.5) ? rng.NextBelow(13) : rng.NextBelow(600);
    switch (fault.kind) {
      case WireFaultKind::kRefuseConnect:
      case WireFaultKind::kAbortConnect:
        break;
      case WireFaultKind::kCloseAfter:
      case WireFaultKind::kAbortAfter:
        fault.direction = direction;
        fault.after_bytes = after_bytes;
        break;
      case WireFaultKind::kTruncate:
        fault.direction = direction;
        fault.after_bytes = after_bytes;
        fault.skip_bytes = 1 + rng.NextBelow(16);
        break;
      case WireFaultKind::kGarble:
        fault.direction = direction;
        fault.after_bytes = after_bytes;
        fault.garble_bytes = 1 + rng.NextBelow(12);
        fault.garble_seed = rng.Next() | 1u;
        break;
      case WireFaultKind::kStall:
        fault.direction = direction;
        fault.after_bytes = after_bytes;
        fault.stall_ms = static_cast<double>(rng.NextInRange(5, 400));
        break;
      case WireFaultKind::kSlowDrip:
        fault.direction = direction;
        fault.after_bytes = after_bytes;
        fault.drip_bytes = 1 + rng.NextBelow(7);
        fault.drip_ms = static_cast<double>(rng.NextInRange(1, 20));
        break;
      case WireFaultKind::kDuplicateConnect:
        fault.dup_bytes = 1 + rng.NextBelow(256);
        break;
    }
    plan.faults.push_back(fault);
  }
  return plan;
}

}  // namespace probcon::wirechaos
