// ChaosProxy — an in-process, fault-injecting TCP relay for the serving path.
//
// The proxy listens on an ephemeral loopback port and forwards each accepted connection to
// the upstream probcond transport, applying the WirePlan's faults to the byte streams in
// between: clean closes and RST aborts mid-frame, silent truncation (framing desync),
// seeded garbling of length prefixes and payload bytes, bounded stalls, slow-dripped
// responses, and ghost duplicate connects. Faults address connections by accept order and
// byte offsets in the raw source stream, so a plan replays deterministically against the
// same client workload (modulo wall-clock timing, which only stretches — never reorders —
// each stream).
//
// One background thread runs a poll() loop over the listener and every proxied socket; the
// proxy never blocks the caller, and Stop() (also run by the destructor) tears everything
// down promptly. Buffering per direction is capped, so a stalled sink backpressures its
// source instead of growing without bound.

#ifndef PROBCON_SRC_WIRECHAOS_PROXY_H_
#define PROBCON_SRC_WIRECHAOS_PROXY_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/common/status.h"
#include "src/wirechaos/wire_plan.h"

namespace probcon::wirechaos {

struct ProxyConn;  // One proxied connection; defined in proxy.cc.

class ChaosProxy {
 public:
  // `upstream_port` is the live TcpServer's loopback port. The plan is validated and the
  // listener bound in Start().
  ChaosProxy(uint16_t upstream_port, WirePlan plan);
  ~ChaosProxy();

  ChaosProxy(const ChaosProxy&) = delete;
  ChaosProxy& operator=(const ChaosProxy&) = delete;

  Status Start();
  void Stop();

  // The proxy's own listening port; valid after Start() succeeds.
  uint16_t port() const { return port_; }

  struct Counters {
    uint64_t accepted = 0;
    uint64_t faults_fired = 0;
    uint64_t client_to_server_bytes = 0;  // Bytes forwarded after fault transforms.
    uint64_t server_to_client_bytes = 0;
  };
  Counters counters() const;

 private:
  void Loop();
  void HandleAccept();
  bool PumpConn(ProxyConn& conn);  // Returns false once the connection is finished.
  void CloseConn(ProxyConn& conn);

  const uint16_t upstream_port_;
  const WirePlan plan_;

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::thread thread_;
  std::atomic<bool> stop_{false};
  bool started_ = false;

  mutable std::mutex mutex_;
  Counters counters_;
  std::vector<std::unique_ptr<ProxyConn>> conns_;
};

}  // namespace probcon::wirechaos

#endif  // PROBCON_SRC_WIRECHAOS_PROXY_H_
