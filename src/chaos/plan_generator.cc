#include "src/chaos/plan_generator.h"

#include <algorithm>
#include <vector>

#include "src/common/check.h"

namespace probcon {

ChaosPlanGenerator::ChaosPlanGenerator(const ChaosPlanGeneratorOptions& options)
    : options_(options) {
  CHECK_GT(options_.node_count, 0);
  CHECK_GT(options_.horizon, 0.0);
  CHECK(options_.min_regimes >= 0 && options_.min_regimes <= options_.max_regimes);
  if (options_.max_simultaneous_crashes <= 0) {
    // Minority by default: an honest f-resilient cluster should survive every plan.
    options_.max_simultaneous_crashes = std::max(1, (options_.node_count - 1) / 2);
  }
}

ChaosPlan ChaosPlanGenerator::Generate(uint64_t seed, uint64_t plan_index) const {
  Rng rng(DeriveStreamSeed(seed, plan_index));
  ChaosPlan plan;
  plan.seed = DeriveStreamSeed(seed, plan_index);
  plan.horizon = options_.horizon;
  const int count = static_cast<int>(
      rng.NextInRange(options_.min_regimes, options_.max_regimes));
  plan.regimes.reserve(count);
  for (int i = 0; i < count; ++i) {
    plan.regimes.push_back(GenerateRegime(rng));
  }
  // Sort by start time so the plan reads chronologically; ties keep generation order.
  std::stable_sort(plan.regimes.begin(), plan.regimes.end(),
                   [](const ChaosRegime& a, const ChaosRegime& b) { return a.start < b.start; });
  CHECK(plan.Validate(options_.node_count).ok());
  return plan;
}

ChaosRegime ChaosPlanGenerator::GenerateRegime(Rng& rng) const {
  std::vector<RegimeKind> kinds;
  if (options_.allow_partition) kinds.push_back(RegimeKind::kPartition);
  if (options_.allow_link_degrade) kinds.push_back(RegimeKind::kLinkDegrade);
  if (options_.allow_gray_slow) kinds.push_back(RegimeKind::kGraySlow);
  if (options_.allow_clock_skew) kinds.push_back(RegimeKind::kClockSkew);
  if (options_.allow_duplicate) kinds.push_back(RegimeKind::kDuplicate);
  if (options_.allow_reorder) kinds.push_back(RegimeKind::kReorder);
  if (options_.allow_crash_restart) kinds.push_back(RegimeKind::kCrashRestart);
  if (options_.allow_durability_lapse) kinds.push_back(RegimeKind::kDurabilityLapse);
  CHECK(!kinds.empty()) << "generator options enable no regime kinds";

  const int n = options_.node_count;
  ChaosRegime regime;
  regime.kind = kinds[rng.NextBelow(kinds.size())];

  // Window: start anywhere in the first 80% of the horizon, duration 2-25% of the horizon
  // (long enough to straddle several election timeouts, short enough to leave quiet time).
  regime.start = rng.NextDouble() * options_.horizon * 0.8;
  const SimTime duration = options_.horizon * (0.02 + 0.23 * rng.NextDouble());
  regime.end = std::min(regime.start + duration, options_.horizon);

  // Draws a victim set of size `max_victims` at most (>= 1), without replacement.
  auto draw_victims = [&](int max_victims) {
    std::vector<int> pool(n);
    for (int i = 0; i < n; ++i) pool[i] = i;
    const int count = static_cast<int>(rng.NextInRange(1, std::max(1, max_victims)));
    std::vector<int> victims;
    victims.reserve(count);
    for (int i = 0; i < count; ++i) {
      const size_t pick = rng.NextBelow(pool.size());
      victims.push_back(pool[pick]);
      pool.erase(pool.begin() + static_cast<long>(pick));
    }
    std::sort(victims.begin(), victims.end());
    return victims;
  };

  switch (regime.kind) {
    case RegimeKind::kPartition: {
      // Random 2- or 3-way split; group 0 keeps at least one node by construction below.
      const int ways = rng.NextBernoulli(0.25) ? 3 : 2;
      regime.groups.assign(n, 0);
      for (int i = 0; i < n; ++i) {
        regime.groups[i] = static_cast<int>(rng.NextBelow(ways));
      }
      // Never an empty majority-candidate group.
      regime.groups[static_cast<size_t>(rng.NextBelow(n))] = 0;
      break;
    }
    case RegimeKind::kLinkDegrade: {
      // Asymmetric by construction: one direction of one link, or everything into a node.
      if (rng.NextBernoulli(0.3)) {
        regime.from = -1;
        regime.to = static_cast<int>(rng.NextBelow(n));
      } else {
        regime.from = static_cast<int>(rng.NextBelow(n));
        do {
          regime.to = static_cast<int>(rng.NextBelow(n));
        } while (regime.to == regime.from);
      }
      regime.latency_factor = 1.0 + 9.0 * rng.NextDouble();   // 1x - 10x
      regime.extra_latency = 50.0 * rng.NextDouble();         // up to 50ms
      regime.extra_drop = 0.3 * rng.NextDouble();             // up to 30%
      break;
    }
    case RegimeKind::kGraySlow:
      regime.nodes = draw_victims(std::max(1, (n - 1) / 2));
      regime.handler_delay = 20.0 + 180.0 * rng.NextDouble();  // 20-200ms: timeout-scale
      regime.timer_scale = 1.0 + 3.0 * rng.NextDouble();       // 1x - 4x
      break;
    case RegimeKind::kClockSkew:
      regime.nodes = draw_victims(std::max(1, (n - 1) / 2));
      // Rate in [0.5, 2.0]: symmetric in log space around a healthy clock.
      regime.clock_rate = rng.NextBernoulli(0.5) ? 0.5 + 0.5 * rng.NextDouble()
                                                 : 1.0 + rng.NextDouble();
      break;
    case RegimeKind::kDuplicate:
      regime.probability = 0.05 + 0.45 * rng.NextDouble();  // 5-50% of messages doubled
      break;
    case RegimeKind::kReorder:
      regime.probability = 0.05 + 0.45 * rng.NextDouble();
      regime.window = 10.0 + 90.0 * rng.NextDouble();  // up to ~100ms of shuffle
      break;
    case RegimeKind::kCrashRestart:
      regime.nodes = draw_victims(options_.max_simultaneous_crashes);
      break;
    case RegimeKind::kDurabilityLapse:
      regime.nodes = draw_victims(options_.max_simultaneous_crashes);
      regime.sync_every_n = static_cast<int>(rng.NextInRange(2, 16));
      break;
  }
  return regime;
}

}  // namespace probcon
