#include "src/chaos/nemesis.h"

#include <algorithm>
#include <map>
#include <string>
#include <utility>

#include "src/common/check.h"
#include "src/obs/trace.h"

namespace probcon {
namespace {

bool TargetsNodes(RegimeKind kind) {
  return kind == RegimeKind::kGraySlow || kind == RegimeKind::kClockSkew ||
         kind == RegimeKind::kCrashRestart || kind == RegimeKind::kDurabilityLapse;
}

}  // namespace

Nemesis::Nemesis(Simulator* simulator, Network* network, std::vector<Process*> processes)
    : simulator_(simulator), network_(network), processes_(std::move(processes)) {
  CHECK(simulator != nullptr);
  CHECK(network != nullptr);
}

void Nemesis::SetDurabilityControl(
    std::function<void(int node, const DurabilityPolicy&)> control) {
  durability_control_ = std::move(control);
}

Status Nemesis::Arm(const ChaosPlan& plan) {
  if (armed_) {
    return FailedPreconditionError("nemesis already armed");
  }
  RETURN_IF_ERROR(plan.Validate(network_->node_count()));
  for (const ChaosRegime& regime : plan.regimes) {
    if (TargetsNodes(regime.kind) &&
        static_cast<int>(processes_.size()) != network_->node_count()) {
      return FailedPreconditionError(
          "plan contains node-targeting regimes but the nemesis was built without one "
          "Process per node");
    }
    if (regime.kind == RegimeKind::kDurabilityLapse && !durability_control_) {
      return FailedPreconditionError(
          "plan contains durability_lapse regimes but no durability control is installed "
          "(SetDurabilityControl)");
    }
  }
  plan_ = plan;
  active_.assign(plan_.regimes.size(), 0);
  crash_claims_.assign(plan_.regimes.size(), {});
  armed_ = true;
  // Starts are scheduled before ends, so a zero-length window still starts then ends.
  for (size_t i = 0; i < plan_.regimes.size(); ++i) {
    simulator_->ScheduleAt(plan_.regimes[i].start, [this, i]() { StartRegime(i); });
  }
  for (size_t i = 0; i < plan_.regimes.size(); ++i) {
    simulator_->ScheduleAt(plan_.regimes[i].end, [this, i]() { EndRegime(i); });
  }
  return Status::Ok();
}

void Nemesis::StartRegime(size_t index) {
  const ChaosRegime& regime = plan_.regimes[index];
  active_[index] = 1;
  ++regimes_started_;
  simulator_->tracer().RegimeStarted(index, std::string(RegimeKindName(regime.kind)));
  simulator_->tracer().CounterAdd("chaos.regimes_started");

  switch (regime.kind) {
    case RegimeKind::kCrashRestart:
      for (int node : regime.nodes) {
        Process* process = processes_[node];
        // Crash() even when already down: the bumped generation claims the outage, so an
        // injector repair scheduled against the earlier crash cannot resurrect the node
        // mid-regime, and our own restart below stays valid.
        process->Crash();
        crash_claims_[index].emplace_back(node, process->crash_generation());
      }
      break;
    case RegimeKind::kDurabilityLapse:
      for (int node : regime.nodes) {
        durability_control_(node, DurabilityPolicy::Batched(regime.sync_every_n));
      }
      break;
    default:
      break;
  }
  Reconcile();
}

void Nemesis::EndRegime(size_t index) {
  const ChaosRegime& regime = plan_.regimes[index];
  active_[index] = 0;
  ++regimes_ended_;
  simulator_->tracer().RegimeEnded(index, std::string(RegimeKindName(regime.kind)));
  simulator_->tracer().CounterAdd("chaos.regimes_ended");

  switch (regime.kind) {
    case RegimeKind::kCrashRestart:
      for (const auto& [node, generation] : crash_claims_[index]) {
        Process* process = processes_[node];
        // Restart only if our claim is still the latest: a shock or another regime that
        // re-crashed the node in between owns the outage now.
        if (process->crashed() && process->crash_generation() == generation) {
          process->Recover();
        }
      }
      crash_claims_[index].clear();
      break;
    case RegimeKind::kDurabilityLapse:
      // The lapse window closes with a power event on every victim still running: a
      // crash + instant restart that discards the unsynced suffix (DurableCell::Restore in
      // the protocol's OnRecover). Victims someone else crashed stay down — their owner's
      // restart will surface the loss instead.
      for (int node : regime.nodes) {
        Process* process = processes_[node];
        if (!process->crashed()) {
          process->Crash();
          process->Recover();
        }
        durability_control_(node, DurabilityPolicy::WriteThrough());
      }
      break;
    default:
      break;
  }
  Reconcile();
}

void Nemesis::Reconcile() {
  const int n = network_->node_count();

  // --- Partitions: nodes communicate iff EVERY active partition co-locates them. ---
  {
    std::vector<const ChaosRegime*> partitions;
    for (size_t i = 0; i < plan_.regimes.size(); ++i) {
      if (active_[i] && plan_.regimes[i].kind == RegimeKind::kPartition) {
        partitions.push_back(&plan_.regimes[i]);
      }
    }
    if (partitions.empty()) {
      network_->ClearPartition();
    } else {
      // Composite group = the tuple of group ids across active partitions, numbered in
      // first-appearance order (deterministic).
      std::map<std::vector<int>, int> composite_ids;
      std::vector<int> groups(n);
      for (int node = 0; node < n; ++node) {
        std::vector<int> key;
        key.reserve(partitions.size());
        for (const ChaosRegime* partition : partitions) {
          key.push_back(partition->groups[node]);
        }
        auto [it, inserted] =
            composite_ids.emplace(std::move(key), static_cast<int>(composite_ids.size()));
        groups[node] = it->second;
      }
      network_->SetPartition(std::move(groups));
    }
  }

  // --- Link perturbations: stack multiplicatively / additively per directed link. ---
  {
    network_->ClearLinkPerturbations();
    std::map<std::pair<int, int>, LinkPerturbation> links;
    for (size_t i = 0; i < plan_.regimes.size(); ++i) {
      if (!active_[i] || plan_.regimes[i].kind != RegimeKind::kLinkDegrade) continue;
      const ChaosRegime& regime = plan_.regimes[i];
      LinkPerturbation& p = links[{regime.from, regime.to}];
      p.latency_factor *= regime.latency_factor;
      p.extra_latency += regime.extra_latency;
      p.extra_drop = std::min(0.999, p.extra_drop + regime.extra_drop);
    }
    for (const auto& [link, perturbation] : links) {
      network_->SetLinkPerturbation(link.first, link.second, perturbation);
    }
  }

  // --- Duplication / reordering: independent coins compose as 1 - prod(1 - p). ---
  {
    double keep_single = 1.0, keep_ordered = 1.0;
    SimTime window = 0.0;
    for (size_t i = 0; i < plan_.regimes.size(); ++i) {
      if (!active_[i]) continue;
      const ChaosRegime& regime = plan_.regimes[i];
      if (regime.kind == RegimeKind::kDuplicate) {
        keep_single *= 1.0 - regime.probability;
      } else if (regime.kind == RegimeKind::kReorder) {
        keep_ordered *= 1.0 - regime.probability;
        window = std::max(window, regime.window);
      }
    }
    network_->SetDuplication(1.0 - keep_single);
    network_->SetReordering(1.0 - keep_ordered, window);
  }

  // --- Per-node degradation: delays add, timer/clock factors multiply. ---
  if (!processes_.empty()) {
    std::vector<SimTime> handler_delay(n, 0.0);
    std::vector<double> timer_scale(n, 1.0);
    std::vector<double> clock_rate(n, 1.0);
    for (size_t i = 0; i < plan_.regimes.size(); ++i) {
      if (!active_[i]) continue;
      const ChaosRegime& regime = plan_.regimes[i];
      if (regime.kind == RegimeKind::kGraySlow) {
        for (int node : regime.nodes) {
          handler_delay[node] += regime.handler_delay;
          timer_scale[node] *= regime.timer_scale;
        }
      } else if (regime.kind == RegimeKind::kClockSkew) {
        for (int node : regime.nodes) {
          clock_rate[node] *= regime.clock_rate;
        }
      }
    }
    for (int node = 0; node < n; ++node) {
      processes_[node]->SetHandlerDelay(handler_delay[node]);
      processes_[node]->SetTimerScale(timer_scale[node]);
      processes_[node]->SetClockRate(clock_rate[node]);
    }
  }
}

}  // namespace probcon
