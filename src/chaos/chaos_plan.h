// ChaosPlan: a typed, JSON-serializable schedule of timed fault regimes.
//
// The paper's core complaint is that the f-threshold model collapses heterogeneous,
// time-varying, correlated faults into a single integer. A ChaosPlan is the executable
// refutation: a list of regimes — each a fault CLASS applied to specific nodes/links over a
// time window — that the Nemesis (nemesis.h) drives against a running cluster. Regimes are
// drawn from the gray-failure and Jepsen-nemesis literature rather than the crash-only
// vocabulary the seed simulator had:
//
//   partition          evolving split-brain (group vector per node), heals at window end
//   link_degrade       asymmetric per-link latency inflation + lossiness (a flaky NIC/path)
//   gray_slow          node is alive but slow: handler execution delayed, timers stretched
//   clock_skew         node's local clock runs fast/slow (timers fire early/late)
//   duplicate          network delivers some messages twice (at-least-once delivery)
//   reorder            bounded extra delay on random messages (reordering vs FIFO links)
//   crash_restart      crash victims at window start, restart them at window end
//   durability_lapse   victims' fsync goes batched: a restart loses the unsynced suffix
//
// Plans are plain data: serializable to JSON (ToJson) and back (FromJson), so every fuzz
// violation is a one-command repro, and shrinking is list surgery.

#ifndef PROBCON_SRC_CHAOS_CHAOS_PLAN_H_
#define PROBCON_SRC_CHAOS_CHAOS_PLAN_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"
#include "src/sim/simulator.h"

namespace probcon {

enum class RegimeKind : int {
  kPartition = 0,
  kLinkDegrade,
  kGraySlow,
  kClockSkew,
  kDuplicate,
  kReorder,
  kCrashRestart,
  kDurabilityLapse,
};

inline constexpr int kRegimeKindCount = 8;

// Stable snake_case name used in JSON and traces.
std::string_view RegimeKindName(RegimeKind kind);
Result<RegimeKind> RegimeKindFromName(std::string_view name);

struct ChaosRegime {
  RegimeKind kind = RegimeKind::kPartition;
  SimTime start = 0.0;  // Applied at `start`...
  SimTime end = 0.0;    // ...reverted at `end` (crash_restart: victims restart here).

  // Victim selectors (used by gray_slow, clock_skew, crash_restart, durability_lapse).
  std::vector<int> nodes;
  // partition: group id per node (size = cluster size).
  std::vector<int> groups;
  // link_degrade: directed link; -1 is a wildcard (all senders / all receivers).
  int from = -1;
  int to = -1;

  // Parameters (each regime kind reads its own subset; defaults are neutral).
  double latency_factor = 1.0;   // link_degrade
  SimTime extra_latency = 0.0;   // link_degrade
  double extra_drop = 0.0;       // link_degrade
  SimTime handler_delay = 0.0;   // gray_slow
  double timer_scale = 1.0;      // gray_slow
  double clock_rate = 1.0;       // clock_skew
  double probability = 0.0;      // duplicate / reorder
  SimTime window = 0.0;          // reorder: max extra delay
  int sync_every_n = 1;          // durability_lapse

  bool operator==(const ChaosRegime&) const = default;

  std::string Describe() const;
};

struct ChaosPlan {
  // The run seed the plan was generated for / should be replayed with. Replaying the same
  // plan under the same seed reproduces the run bit-for-bit (tests lock this).
  uint64_t seed = 1;
  SimTime horizon = 0.0;  // Nemesis activity ends by here; runs usually extend past it.
  std::vector<ChaosRegime> regimes;

  bool operator==(const ChaosPlan&) const = default;

  // Structural sanity vs a cluster of `node_count` nodes: windows ordered and inside
  // [0, horizon], node ids in range, parameters in their legal ranges.
  Status Validate(int node_count) const;

  // Deterministic, human-diffable JSON (two-space indent, fixed field order).
  std::string ToJson() const;
  static Result<ChaosPlan> FromJson(std::string_view text);

  std::string Describe() const;
};

}  // namespace probcon

#endif  // PROBCON_SRC_CHAOS_CHAOS_PLAN_H_
