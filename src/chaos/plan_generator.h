// Randomized ChaosPlan generation for the fuzz harness.
//
// A generator produces plan #i of a fuzz campaign from Rng(DeriveStreamSeed(seed, i)), so the
// campaign is reproducible bit-for-bit regardless of how plans are distributed across threads
// (the same chunk-seeding contract as the analysis samplers in src/common/rng.h). Each plan's
// regimes are sampled from the kinds enabled in the options; windows are drawn inside the
// horizon and parameters inside ranges calibrated to actually stress the protocols' timeout
// machinery (gray delays comparable to election timeouts, partitions longer than a round
// trip) without making every run trivially lose liveness.

#ifndef PROBCON_SRC_CHAOS_PLAN_GENERATOR_H_
#define PROBCON_SRC_CHAOS_PLAN_GENERATOR_H_

#include <cstdint>

#include "src/chaos/chaos_plan.h"
#include "src/common/rng.h"

namespace probcon {

struct ChaosPlanGeneratorOptions {
  int node_count = 5;
  SimTime horizon = 20000.0;  // Nemesis activity window (ms).
  int min_regimes = 2;
  int max_regimes = 6;

  // Which fault classes the generator may draw. Durability lapses are OFF by default: a
  // quorum-wide loss of unsynced state is allowed to break Raft/Paxos safety (that is the
  // point of the regime), so the honest-configuration fuzz acceptance excludes it.
  bool allow_partition = true;
  bool allow_link_degrade = true;
  bool allow_gray_slow = true;
  bool allow_clock_skew = true;
  bool allow_duplicate = true;
  bool allow_reorder = true;
  bool allow_crash_restart = true;
  bool allow_durability_lapse = false;

  // Crash at most this many nodes simultaneously (defaults to minority of node_count when
  // <= 0), so honest configurations keep a live quorum available.
  int max_simultaneous_crashes = 0;
};

class ChaosPlanGenerator {
 public:
  explicit ChaosPlanGenerator(const ChaosPlanGeneratorOptions& options);

  // Deterministic function of (seed, plan_index); the returned plan validates against
  // options.node_count and carries seed = DeriveStreamSeed(seed, plan_index) so replaying
  // the plan alone reproduces the run.
  ChaosPlan Generate(uint64_t seed, uint64_t plan_index) const;

 private:
  ChaosRegime GenerateRegime(Rng& rng) const;

  ChaosPlanGeneratorOptions options_;
};

}  // namespace probcon

#endif  // PROBCON_SRC_CHAOS_PLAN_GENERATOR_H_
