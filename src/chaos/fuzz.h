// Chaos fuzzing: run randomized ChaosPlans against full protocol clusters, check safety at
// every commit, watch liveness recovery after the last regime, and — on a violation — dump a
// replayable repro and greedily shrink the plan to a minimal failing schedule.
//
// The execution path is the real one (RaftCluster / PbftCluster / inline Paxos and Ben-Or
// clusters on the deterministic simulator), so a violating (plan, seed) pair found here
// replays bit-for-bit from the dumped JSON. Safety is judged by the external SafetyChecker
// (Raft/PBFT/Paxos) or cross-node decision agreement (Ben-Or), never by protocol-internal
// bookkeeping.

#ifndef PROBCON_SRC_CHAOS_FUZZ_H_
#define PROBCON_SRC_CHAOS_FUZZ_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/chaos/chaos_plan.h"
#include "src/chaos/plan_generator.h"
#include "src/common/status.h"
#include "src/consensus/pbft/pbft_node.h"
#include "src/exec/thread_pool.h"

namespace probcon {

enum class FuzzProtocol { kRaft, kPaxos, kPbft, kBenOr };

std::string_view FuzzProtocolName(FuzzProtocol protocol);

struct ChaosRunOptions {
  FuzzProtocol protocol = FuzzProtocol::kRaft;
  int node_count = 5;
  // Simulation continues this long past the plan horizon so the liveness watchdog can
  // observe post-chaos recovery.
  SimTime settle_time = 10000.0;

  // Raft quorum overrides (0 = standard majorities). Deliberately unsafe values (e.g.
  // q_per = q_vc = 2 on n = 5) are the fuzzer's negative control: they MUST produce
  // violations under chaos, proving the oracle has teeth.
  int raft_q_per = 0;
  int raft_q_vc = 0;

  // PBFT replica behaviours (empty = all honest; else one per replica).
  std::vector<ByzantineBehavior> pbft_behaviors;

  // Capture the obs trace into ChaosRunResult::trace_json (costs memory; repro dumps and
  // determinism tests need it, bulk fuzzing does not).
  bool capture_trace = false;
};

struct ChaosRunResult {
  bool safety_ok = true;
  std::string violation;  // First violation, human-readable; empty when safe.
  uint64_t committed_slots = 0;
  int decided_nodes = 0;  // Single-decree protocols: nodes holding a decision at the end.
  // Liveness watchdog: did any commit/decision land after the last regime ended?
  bool progress_after_chaos = false;
  SimTime recovery_time = -1.0;  // Last-regime-end -> first post-chaos commit; -1 = none.
  std::string trace_json;        // Deterministic obs trace (when capture_trace).
};

// Runs `plan` (cluster seeded with plan.seed) to plan.horizon + settle_time. Errors on
// structurally invalid plans or unsupported combinations (e.g. durability_lapse against
// protocols without durable state).
Result<ChaosRunResult> ExecuteChaosPlan(const ChaosPlan& plan, const ChaosRunOptions& options);

// Greedy shrink: starting from a failing plan, repeatedly try dropping whole regimes, then
// halving regime windows, keeping any mutation under which the violation (any violation)
// still reproduces; stops at a fixpoint or after `max_evaluations` runs. The result is
// guaranteed to still fail.
struct ShrinkOutcome {
  ChaosPlan plan;
  int evaluations = 0;  // Simulator runs spent shrinking.
};
Result<ShrinkOutcome> ShrinkChaosPlan(const ChaosPlan& failing_plan,
                                      const ChaosRunOptions& options,
                                      int max_evaluations = 200);

struct FuzzCampaignOptions {
  ChaosPlanGeneratorOptions generator;
  ChaosRunOptions run;
  uint64_t seed = 1;
  int plan_count = 100;
  // Directory for repro dumps (plan JSON + obs trace per violation); empty = no dumps.
  std::string repro_dir;
  bool shrink_violations = true;
  ThreadPool* pool = nullptr;  // nullptr = ThreadPool::Global().
};

struct FuzzViolation {
  uint64_t plan_index = 0;
  ChaosPlan plan;                      // The original failing plan.
  std::optional<ChaosPlan> shrunk;     // Minimal failing plan (when shrinking ran).
  std::string violation;               // Checker description.
  std::string repro_path;              // Plan dump path ("" if repro_dir unset).
};

struct FuzzReport {
  int plans_run = 0;
  int safety_violations = 0;
  int liveness_stalls = 0;  // Plans with no post-chaos progress (diagnostic, not a failure).
  std::vector<FuzzViolation> violations;

  std::string Describe() const;
};

// Runs plan_count generated plans (plan i from DeriveStreamSeed(seed, i)), in parallel over
// `pool`; results are deterministic for a fixed (options, seed) regardless of worker count.
Result<FuzzReport> RunFuzzCampaign(const FuzzCampaignOptions& options);

}  // namespace probcon

#endif  // PROBCON_SRC_CHAOS_FUZZ_H_
