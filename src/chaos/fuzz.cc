#include "src/chaos/fuzz.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <utility>

#include "src/chaos/nemesis.h"
#include "src/common/check.h"
#include "src/consensus/benor/benor_node.h"
#include "src/consensus/paxos/paxos_node.h"
#include "src/consensus/pbft/pbft_cluster.h"
#include "src/consensus/raft/raft_cluster.h"
#include "src/exec/parallel.h"
#include "src/obs/export.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace probcon {
namespace {

SimTime LastRegimeEnd(const ChaosPlan& plan) {
  SimTime last = 0.0;
  for (const ChaosRegime& regime : plan.regimes) {
    last = std::max(last, regime.end);
  }
  return last;
}

// Fills the liveness-watchdog fields from the trace: progress = any commit/decision event
// strictly after the last regime ended.
void EvaluateLiveness(const ChaosPlan& plan, const TraceLog& trace, ChaosRunResult* result) {
  const SimTime last_end = LastRegimeEnd(plan);
  for (const TraceEvent& event : trace.events()) {
    if (event.type != TraceEventType::kCommit && event.type != TraceEventType::kDecided) {
      continue;
    }
    if (event.time > last_end) {
      result->progress_after_chaos = true;
      result->recovery_time = event.time - last_end;
      return;
    }
  }
}

void FinishFromChecker(const SafetyChecker& checker, ChaosRunResult* result) {
  result->committed_slots = checker.committed_slots();
  result->safety_ok = checker.safe();
  if (!checker.safe()) {
    result->violation = checker.violations().front().Describe();
  }
}

Result<ChaosRunResult> RunRaft(const ChaosPlan& plan, const ChaosRunOptions& options) {
  RaftClusterOptions cluster_options;
  cluster_options.config = (options.raft_q_per > 0 && options.raft_q_vc > 0)
                               ? RaftConfig{options.node_count, options.raft_q_per,
                                            options.raft_q_vc}
                               : RaftConfig::Standard(options.node_count);
  cluster_options.seed = plan.seed;
  RaftCluster cluster(cluster_options);
  TraceLog trace;
  MetricsRegistry metrics;
  cluster.simulator().AttachTracer(&trace, &metrics);

  Nemesis nemesis(&cluster.simulator(), &cluster.network(), cluster.processes());
  nemesis.SetDurabilityControl([&cluster](int node, const DurabilityPolicy& policy) {
    cluster.node(node).SetDurabilityPolicy(policy);
  });
  RETURN_IF_ERROR(nemesis.Arm(plan));

  cluster.Start();
  cluster.RunUntil(plan.horizon + options.settle_time);

  ChaosRunResult result;
  FinishFromChecker(cluster.checker(), &result);
  EvaluateLiveness(plan, trace, &result);
  if (options.capture_trace) result.trace_json = TraceToJson(trace);
  return result;
}

Result<ChaosRunResult> RunPbft(const ChaosPlan& plan, const ChaosRunOptions& options) {
  PbftClusterOptions cluster_options;
  cluster_options.config = PbftConfig::Standard(options.node_count);
  cluster_options.behaviors = options.pbft_behaviors;
  cluster_options.seed = plan.seed;
  PbftCluster cluster(cluster_options);
  TraceLog trace;
  MetricsRegistry metrics;
  cluster.simulator().AttachTracer(&trace, &metrics);

  Nemesis nemesis(&cluster.simulator(), &cluster.network(), cluster.processes());
  // PBFT replicas model no durable cell yet; durability_lapse plans fail Arm() here.
  RETURN_IF_ERROR(nemesis.Arm(plan));

  cluster.Start();
  cluster.RunUntil(plan.horizon + options.settle_time);

  ChaosRunResult result;
  FinishFromChecker(cluster.checker(), &result);
  EvaluateLiveness(plan, trace, &result);
  if (options.capture_trace) result.trace_json = TraceToJson(trace);
  return result;
}

Result<ChaosRunResult> RunPaxos(const ChaosPlan& plan, const ChaosRunOptions& options) {
  const int n = options.node_count;
  Simulator simulator(plan.seed);
  TraceLog trace;
  MetricsRegistry metrics;
  simulator.AttachTracer(&trace, &metrics);
  Network network(&simulator, n, std::make_unique<UniformLatencyModel>(5.0, 15.0));
  SafetyChecker checker(&simulator);
  const PaxosConfig config = PaxosConfig::Standard(n);
  std::vector<std::unique_ptr<PaxosNode>> nodes;
  std::vector<Process*> processes;
  for (int i = 0; i < n; ++i) {
    nodes.push_back(std::make_unique<PaxosNode>(
        &simulator, &network, i, config, PaxosTimingConfig{}, &checker,
        Command{static_cast<uint64_t>(i) + 1, "value-" + std::to_string(i)}));
    processes.push_back(nodes.back().get());
  }

  Nemesis nemesis(&simulator, &network, processes);
  nemesis.SetDurabilityControl([&nodes](int node, const DurabilityPolicy& policy) {
    nodes[node]->SetDurabilityPolicy(policy);
  });
  RETURN_IF_ERROR(nemesis.Arm(plan));

  for (auto& node : nodes) node->Start();
  simulator.Run(plan.horizon + options.settle_time);

  ChaosRunResult result;
  FinishFromChecker(checker, &result);
  for (const auto& node : nodes) {
    if (node->decided()) ++result.decided_nodes;
  }
  EvaluateLiveness(plan, trace, &result);
  // Single-decree: a cluster that fully decided before the chaos ended is done, not stalled.
  if (result.decided_nodes == n) result.progress_after_chaos = true;
  if (options.capture_trace) result.trace_json = TraceToJson(trace);
  return result;
}

Result<ChaosRunResult> RunBenOr(const ChaosPlan& plan, const ChaosRunOptions& options) {
  const int n = options.node_count;
  const int f = (n - 1) / 2;
  Simulator simulator(plan.seed);
  TraceLog trace;
  MetricsRegistry metrics;
  simulator.AttachTracer(&trace, &metrics);
  Network network(&simulator, n, std::make_unique<UniformLatencyModel>(5.0, 15.0));
  std::vector<std::unique_ptr<BenOrNode>> nodes;
  std::vector<Process*> processes;
  for (int i = 0; i < n; ++i) {
    nodes.push_back(std::make_unique<BenOrNode>(&simulator, &network, i, f, i % 2));
    processes.push_back(nodes.back().get());
  }

  Nemesis nemesis(&simulator, &network, processes);
  // Ben-Or here is memoryless across restarts; durability_lapse plans fail Arm().
  RETURN_IF_ERROR(nemesis.Arm(plan));

  for (auto& node : nodes) node->Start();
  simulator.Run(plan.horizon + options.settle_time);

  ChaosRunResult result;
  // Agreement oracle: every decided node must hold the same bit.
  int decided_value = -1;
  for (const auto& node : nodes) {
    if (!node->decided()) continue;
    ++result.decided_nodes;
    if (decided_value == -1) {
      decided_value = node->decision();
    } else if (node->decision() != decided_value) {
      result.safety_ok = false;
      result.violation = "ben-or nodes decided both 0 and 1";
    }
  }
  result.committed_slots = result.decided_nodes > 0 ? 1 : 0;
  EvaluateLiveness(plan, trace, &result);
  // Single-decree: a cluster that fully decided before the chaos ended is done, not stalled.
  if (result.decided_nodes == n) result.progress_after_chaos = true;
  if (options.capture_trace) result.trace_json = TraceToJson(trace);
  return result;
}

}  // namespace

std::string_view FuzzProtocolName(FuzzProtocol protocol) {
  switch (protocol) {
    case FuzzProtocol::kRaft: return "raft";
    case FuzzProtocol::kPaxos: return "paxos";
    case FuzzProtocol::kPbft: return "pbft";
    case FuzzProtocol::kBenOr: return "benor";
  }
  CHECK(false) << "unreachable";
  return "";
}

Result<ChaosRunResult> ExecuteChaosPlan(const ChaosPlan& plan,
                                        const ChaosRunOptions& options) {
  if (options.node_count <= 0) {
    return InvalidArgumentError("node_count must be positive");
  }
  RETURN_IF_ERROR(plan.Validate(options.node_count));
  switch (options.protocol) {
    case FuzzProtocol::kRaft: return RunRaft(plan, options);
    case FuzzProtocol::kPaxos: return RunPaxos(plan, options);
    case FuzzProtocol::kPbft: return RunPbft(plan, options);
    case FuzzProtocol::kBenOr: return RunBenOr(plan, options);
  }
  return InvalidArgumentError("unknown protocol");
}

Result<ShrinkOutcome> ShrinkChaosPlan(const ChaosPlan& failing_plan,
                                      const ChaosRunOptions& options,
                                      int max_evaluations) {
  ChaosRunOptions run_options = options;
  run_options.capture_trace = false;

  int evaluations = 0;
  auto still_fails = [&](const ChaosPlan& candidate) -> Result<bool> {
    ++evaluations;
    Result<ChaosRunResult> result = ExecuteChaosPlan(candidate, run_options);
    if (!result.ok()) return result.status();
    return !result->safety_ok;
  };

  Result<bool> fails = still_fails(failing_plan);
  if (!fails.ok()) return fails.status();
  if (!*fails) {
    return FailedPreconditionError("shrink requires a plan that reproduces a violation");
  }

  ChaosPlan current = failing_plan;
  bool changed = true;
  while (changed && evaluations < max_evaluations) {
    changed = false;
    // Pass 1: drop whole regimes (scan back-to-front so erasing keeps earlier indices valid).
    for (int i = static_cast<int>(current.regimes.size()) - 1;
         i >= 0 && evaluations < max_evaluations; --i) {
      ChaosPlan candidate = current;
      candidate.regimes.erase(candidate.regimes.begin() + i);
      Result<bool> candidate_fails = still_fails(candidate);
      if (!candidate_fails.ok()) return candidate_fails.status();
      if (*candidate_fails) {
        current = std::move(candidate);
        changed = true;
      }
    }
    // Pass 2: halve regime windows (shorten from the end; keep >= 1ms of duration).
    for (size_t i = 0; i < current.regimes.size() && evaluations < max_evaluations; ++i) {
      const SimTime duration = current.regimes[i].end - current.regimes[i].start;
      if (duration < 2.0) continue;
      ChaosPlan candidate = current;
      candidate.regimes[i].end = candidate.regimes[i].start + duration / 2.0;
      Result<bool> candidate_fails = still_fails(candidate);
      if (!candidate_fails.ok()) return candidate_fails.status();
      if (*candidate_fails) {
        current = std::move(candidate);
        changed = true;
      }
    }
  }
  return ShrinkOutcome{std::move(current), evaluations};
}

Result<FuzzReport> RunFuzzCampaign(const FuzzCampaignOptions& options) {
  if (options.plan_count < 0) {
    return InvalidArgumentError("plan_count must be non-negative");
  }
  if (options.run.node_count != options.generator.node_count) {
    return InvalidArgumentError("generator and run node_count must agree");
  }
  const ChaosPlanGenerator generator(options.generator);

  struct Trial {
    Status status;
    ChaosRunResult result;
  };
  ChaosRunOptions sweep_options = options.run;
  sweep_options.capture_trace = false;
  const std::vector<Trial> trials = RunTrials(
      static_cast<uint64_t>(options.plan_count),
      [&](uint64_t i) -> Trial {
        const ChaosPlan plan = generator.Generate(options.seed, i);
        Result<ChaosRunResult> result = ExecuteChaosPlan(plan, sweep_options);
        if (!result.ok()) return Trial{result.status(), {}};
        return Trial{Status::Ok(), std::move(*result)};
      },
      options.pool);

  FuzzReport report;
  for (uint64_t i = 0; i < trials.size(); ++i) {
    const Trial& trial = trials[i];
    if (!trial.status.ok()) return trial.status;
    ++report.plans_run;
    if (!trial.result.progress_after_chaos) ++report.liveness_stalls;
    if (trial.result.safety_ok) continue;

    ++report.safety_violations;
    FuzzViolation violation;
    violation.plan_index = i;
    violation.plan = generator.Generate(options.seed, i);
    violation.violation = trial.result.violation;

    if (options.shrink_violations) {
      Result<ShrinkOutcome> shrunk = ShrinkChaosPlan(violation.plan, options.run);
      if (!shrunk.ok()) return shrunk.status();
      violation.shrunk = std::move(shrunk->plan);
    }

    if (!options.repro_dir.empty()) {
      std::error_code ec;
      std::filesystem::create_directories(options.repro_dir, ec);
      const std::string stem =
          options.repro_dir + "/violation_" + std::to_string(i);
      violation.repro_path = stem + ".plan.json";
      std::ofstream(violation.repro_path) << violation.plan.ToJson();
      if (violation.shrunk.has_value()) {
        std::ofstream(stem + ".min.plan.json") << violation.shrunk->ToJson();
      }
      // Replay the minimal (or original) plan with tracing for the repro bundle.
      ChaosRunOptions replay_options = options.run;
      replay_options.capture_trace = true;
      Result<ChaosRunResult> replay = ExecuteChaosPlan(
          violation.shrunk.has_value() ? *violation.shrunk : violation.plan, replay_options);
      if (replay.ok()) {
        std::ofstream(stem + ".trace.json") << replay->trace_json;
      }
    }
    report.violations.push_back(std::move(violation));
  }
  return report;
}

std::string FuzzReport::Describe() const {
  std::ostringstream os;
  os << "fuzz: " << plans_run << " plan(s), " << safety_violations
     << " safety violation(s), " << liveness_stalls << " liveness stall(s)";
  for (const FuzzViolation& violation : violations) {
    os << "\n  plan " << violation.plan_index << ": " << violation.violation;
    if (violation.shrunk.has_value()) {
      os << " (shrunk to " << violation.shrunk->regimes.size() << " regime(s))";
    }
    if (!violation.repro_path.empty()) {
      os << " repro=" << violation.repro_path;
    }
  }
  return os.str();
}

}  // namespace probcon
