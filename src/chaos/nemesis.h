// Nemesis: executes a ChaosPlan against a running simulation.
//
// Arm() schedules every regime boundary on the simulator; at each boundary the nemesis
// RECONCILES — it recomputes the full network/process chaos configuration from the set of
// currently active regimes rather than applying and reverting deltas. Overlapping regimes
// therefore compose deterministically: concurrent partitions intersect (two nodes talk iff
// every active partition puts them in the same group), link perturbations stack
// (multiplicative factors, additive latency/drop), duplication/reorder probabilities combine
// as independent coins, gray handler delays add, and timer/clock factors multiply. When the
// last overlapping regime ends the reconciled state is exactly "healthy" again — there is no
// revert bookkeeping to get wrong.
//
// Crash regimes use the Process crash-generation protocol: the nemesis claims the outage at
// the window start (even if the node is already down) and only restarts the node at the
// window end if its claim is still the latest — a FailureInjector shock that re-crashed the
// node in between keeps it down (see Process::crash_generation()).

#ifndef PROBCON_SRC_CHAOS_NEMESIS_H_
#define PROBCON_SRC_CHAOS_NEMESIS_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/chaos/chaos_plan.h"
#include "src/consensus/common/durable_state.h"
#include "src/sim/network.h"
#include "src/sim/process.h"
#include "src/sim/simulator.h"

namespace probcon {

class Nemesis {
 public:
  // `processes` may be empty if the plan contains no node-targeting regimes (pure network
  // chaos); otherwise it must cover every node id the plan touches.
  Nemesis(Simulator* simulator, Network* network, std::vector<Process*> processes);

  // Durability regimes need protocol-level cooperation (the DurableCell lives inside the
  // node); harnesses install a callback that applies `policy` to node `node`'s cell. Plans
  // with durability_lapse regimes fail Arm() when no control is installed.
  void SetDurabilityControl(std::function<void(int node, const DurabilityPolicy&)> control);

  // Validates the plan against the network size and schedules all regime boundaries.
  // Call once, before Simulator::RunUntil.
  Status Arm(const ChaosPlan& plan);

  uint64_t regimes_started() const { return regimes_started_; }
  uint64_t regimes_ended() const { return regimes_ended_; }

 private:
  void StartRegime(size_t index);
  void EndRegime(size_t index);
  // Recomputes every chaos knob from the regimes active right now.
  void Reconcile();

  Simulator* simulator_;
  Network* network_;
  std::vector<Process*> processes_;
  std::function<void(int, const DurabilityPolicy&)> durability_control_;

  ChaosPlan plan_;
  std::vector<char> active_;
  // Crash claims: generation captured when a crash_restart (or durability_lapse restart)
  // regime crashed each victim, consulted before restarting it.
  std::vector<std::vector<std::pair<int, uint64_t>>> crash_claims_;
  uint64_t regimes_started_ = 0;
  uint64_t regimes_ended_ = 0;
  bool armed_ = false;
};

}  // namespace probcon

#endif  // PROBCON_SRC_CHAOS_NEMESIS_H_
