#include "src/chaos/chaos_plan.h"

#include <array>
#include <sstream>
#include <utility>

#include "src/common/check.h"
#include "src/common/json.h"

namespace probcon {
namespace {

constexpr std::array<std::string_view, kRegimeKindCount> kRegimeNames = {
    "partition",  "link_degrade",  "gray_slow",     "clock_skew",
    "duplicate",  "reorder",       "crash_restart", "durability_lapse",
};

std::string FormatIntList(const std::vector<int>& values) {
  std::string out = "[";
  for (size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out += ", ";
    out += std::to_string(values[i]);
  }
  return out + "]";
}

// The JSON document model and parser live in src/common/json.h (shared with
// probcon::serve); only the plan-specific field extraction remains here.
constexpr std::string_view kWhat = "plan JSON";

Status ReadDouble(const Json& object, std::string_view key, double* out) {
  return JsonReadDouble(object, key, out, kWhat);
}

Status ReadInt(const Json& object, std::string_view key, int* out) {
  return JsonReadInt(object, key, out, kWhat);
}

Status ReadUint64(const Json& object, std::string_view key, uint64_t* out) {
  return JsonReadUint64(object, key, out, kWhat);
}

Status ReadIntList(const Json& object, std::string_view key, std::vector<int>* out) {
  return JsonReadIntList(object, key, out, kWhat);
}

Result<ChaosRegime> RegimeFromJson(const Json& object) {
  if (!object.IsObject()) {
    return InvalidArgumentError("plan JSON: each regime must be an object");
  }
  const Json* kind_field = object.Find("kind");
  if (kind_field == nullptr || !kind_field->IsString()) {
    return InvalidArgumentError("plan JSON: regime missing string field 'kind'");
  }
  Result<RegimeKind> kind = RegimeKindFromName(kind_field->text);
  if (!kind.ok()) return kind.status();

  ChaosRegime regime;
  regime.kind = *kind;
  RETURN_IF_ERROR(ReadDouble(object, "start", &regime.start));
  RETURN_IF_ERROR(ReadDouble(object, "end", &regime.end));
  RETURN_IF_ERROR(ReadIntList(object, "nodes", &regime.nodes));
  RETURN_IF_ERROR(ReadIntList(object, "groups", &regime.groups));
  RETURN_IF_ERROR(ReadInt(object, "from", &regime.from));
  RETURN_IF_ERROR(ReadInt(object, "to", &regime.to));
  RETURN_IF_ERROR(ReadDouble(object, "latency_factor", &regime.latency_factor));
  RETURN_IF_ERROR(ReadDouble(object, "extra_latency", &regime.extra_latency));
  RETURN_IF_ERROR(ReadDouble(object, "extra_drop", &regime.extra_drop));
  RETURN_IF_ERROR(ReadDouble(object, "handler_delay", &regime.handler_delay));
  RETURN_IF_ERROR(ReadDouble(object, "timer_scale", &regime.timer_scale));
  RETURN_IF_ERROR(ReadDouble(object, "clock_rate", &regime.clock_rate));
  RETURN_IF_ERROR(ReadDouble(object, "probability", &regime.probability));
  RETURN_IF_ERROR(ReadDouble(object, "window", &regime.window));
  RETURN_IF_ERROR(ReadInt(object, "sync_every_n", &regime.sync_every_n));
  return regime;
}

void AppendRegimeJson(const ChaosRegime& regime, std::string* out) {
  auto field = [out](std::string_view key, const std::string& value, bool* first) {
    if (!*first) *out += ", ";
    *first = false;
    *out += "\"";
    *out += key;
    *out += "\": ";
    *out += value;
  };
  bool first = true;
  *out += "    {";
  field("kind", "\"" + std::string(RegimeKindName(regime.kind)) + "\"", &first);
  field("start", FormatDouble(regime.start), &first);
  field("end", FormatDouble(regime.end), &first);
  switch (regime.kind) {
    case RegimeKind::kPartition:
      field("groups", FormatIntList(regime.groups), &first);
      break;
    case RegimeKind::kLinkDegrade:
      field("from", std::to_string(regime.from), &first);
      field("to", std::to_string(regime.to), &first);
      field("latency_factor", FormatDouble(regime.latency_factor), &first);
      field("extra_latency", FormatDouble(regime.extra_latency), &first);
      field("extra_drop", FormatDouble(regime.extra_drop), &first);
      break;
    case RegimeKind::kGraySlow:
      field("nodes", FormatIntList(regime.nodes), &first);
      field("handler_delay", FormatDouble(regime.handler_delay), &first);
      field("timer_scale", FormatDouble(regime.timer_scale), &first);
      break;
    case RegimeKind::kClockSkew:
      field("nodes", FormatIntList(regime.nodes), &first);
      field("clock_rate", FormatDouble(regime.clock_rate), &first);
      break;
    case RegimeKind::kDuplicate:
      field("probability", FormatDouble(regime.probability), &first);
      break;
    case RegimeKind::kReorder:
      field("probability", FormatDouble(regime.probability), &first);
      field("window", FormatDouble(regime.window), &first);
      break;
    case RegimeKind::kCrashRestart:
      field("nodes", FormatIntList(regime.nodes), &first);
      break;
    case RegimeKind::kDurabilityLapse:
      field("nodes", FormatIntList(regime.nodes), &first);
      field("sync_every_n", std::to_string(regime.sync_every_n), &first);
      break;
  }
  *out += "}";
}

Status CheckNodes(const ChaosRegime& regime, size_t index, int node_count) {
  if (regime.nodes.empty()) {
    return InvalidArgumentError("regime " + std::to_string(index) + " (" +
                                std::string(RegimeKindName(regime.kind)) +
                                ") selects no nodes");
  }
  for (int node : regime.nodes) {
    if (node < 0 || node >= node_count) {
      return OutOfRangeError("regime " + std::to_string(index) + " targets node " +
                             std::to_string(node) + " outside [0, " +
                             std::to_string(node_count) + ")");
    }
  }
  return Status::Ok();
}

Status CheckProbability(double p, size_t index, std::string_view what) {
  if (p < 0.0 || p > 1.0) {
    return InvalidArgumentError("regime " + std::to_string(index) + ": " + std::string(what) +
                                " must be in [0, 1], got " + FormatDouble(p));
  }
  return Status::Ok();
}

}  // namespace

std::string_view RegimeKindName(RegimeKind kind) {
  const int index = static_cast<int>(kind);
  CHECK(index >= 0 && index < kRegimeKindCount);
  return kRegimeNames[index];
}

Result<RegimeKind> RegimeKindFromName(std::string_view name) {
  for (int i = 0; i < kRegimeKindCount; ++i) {
    if (kRegimeNames[i] == name) {
      return static_cast<RegimeKind>(i);
    }
  }
  return InvalidArgumentError("unknown regime kind '" + std::string(name) + "'");
}

std::string ChaosRegime::Describe() const {
  std::ostringstream os;
  os << RegimeKindName(kind) << " [" << FormatDouble(start) << ", " << FormatDouble(end)
     << ")";
  switch (kind) {
    case RegimeKind::kPartition:
      os << " groups=" << FormatIntList(groups);
      break;
    case RegimeKind::kLinkDegrade:
      os << " link=" << from << "->" << to << " x" << FormatDouble(latency_factor) << " +"
         << FormatDouble(extra_latency) << "ms drop=" << FormatDouble(extra_drop);
      break;
    case RegimeKind::kGraySlow:
      os << " nodes=" << FormatIntList(nodes) << " handler+" << FormatDouble(handler_delay)
         << "ms timers x" << FormatDouble(timer_scale);
      break;
    case RegimeKind::kClockSkew:
      os << " nodes=" << FormatIntList(nodes) << " rate=" << FormatDouble(clock_rate);
      break;
    case RegimeKind::kDuplicate:
      os << " p=" << FormatDouble(probability);
      break;
    case RegimeKind::kReorder:
      os << " p=" << FormatDouble(probability) << " window=" << FormatDouble(window) << "ms";
      break;
    case RegimeKind::kCrashRestart:
      os << " nodes=" << FormatIntList(nodes);
      break;
    case RegimeKind::kDurabilityLapse:
      os << " nodes=" << FormatIntList(nodes) << " sync_every_n=" << sync_every_n;
      break;
  }
  return os.str();
}

Status ChaosPlan::Validate(int node_count) const {
  if (node_count <= 0) {
    return InvalidArgumentError("node_count must be positive");
  }
  if (horizon < 0.0) {
    return InvalidArgumentError("plan horizon must be non-negative");
  }
  for (size_t i = 0; i < regimes.size(); ++i) {
    const ChaosRegime& regime = regimes[i];
    if (regime.start < 0.0 || regime.end < regime.start || regime.end > horizon) {
      return InvalidArgumentError(
          "regime " + std::to_string(i) + " window [" + FormatDouble(regime.start) + ", " +
          FormatDouble(regime.end) + ") must satisfy 0 <= start <= end <= horizon (" +
          FormatDouble(horizon) + ")");
    }
    switch (regime.kind) {
      case RegimeKind::kPartition:
        if (static_cast<int>(regime.groups.size()) != node_count) {
          return InvalidArgumentError("regime " + std::to_string(i) + ": partition needs " +
                                      std::to_string(node_count) + " group assignments, got " +
                                      std::to_string(regime.groups.size()));
        }
        for (int group : regime.groups) {
          if (group < 0) {
            return InvalidArgumentError("regime " + std::to_string(i) +
                                        ": group ids must be non-negative");
          }
        }
        break;
      case RegimeKind::kLinkDegrade:
        if (regime.from < -1 || regime.from >= node_count || regime.to < -1 ||
            regime.to >= node_count) {
          return OutOfRangeError("regime " + std::to_string(i) +
                                 ": link endpoints must be -1 (wildcard) or a node id");
        }
        if (regime.latency_factor <= 0.0 || regime.extra_latency < 0.0) {
          return InvalidArgumentError("regime " + std::to_string(i) +
                                      ": latency perturbation must be positive");
        }
        RETURN_IF_ERROR(CheckProbability(regime.extra_drop, i, "extra_drop"));
        break;
      case RegimeKind::kGraySlow:
        RETURN_IF_ERROR(CheckNodes(regime, i, node_count));
        if (regime.handler_delay < 0.0 || regime.timer_scale <= 0.0) {
          return InvalidArgumentError("regime " + std::to_string(i) +
                                      ": gray_slow parameters out of range");
        }
        break;
      case RegimeKind::kClockSkew:
        RETURN_IF_ERROR(CheckNodes(regime, i, node_count));
        if (regime.clock_rate <= 0.0) {
          return InvalidArgumentError("regime " + std::to_string(i) +
                                      ": clock_rate must be positive");
        }
        break;
      case RegimeKind::kDuplicate:
        RETURN_IF_ERROR(CheckProbability(regime.probability, i, "probability"));
        break;
      case RegimeKind::kReorder:
        RETURN_IF_ERROR(CheckProbability(regime.probability, i, "probability"));
        if (regime.window < 0.0) {
          return InvalidArgumentError("regime " + std::to_string(i) +
                                      ": reorder window must be non-negative");
        }
        break;
      case RegimeKind::kCrashRestart:
        RETURN_IF_ERROR(CheckNodes(regime, i, node_count));
        break;
      case RegimeKind::kDurabilityLapse:
        RETURN_IF_ERROR(CheckNodes(regime, i, node_count));
        if (regime.sync_every_n < 1) {
          return InvalidArgumentError("regime " + std::to_string(i) +
                                      ": sync_every_n must be >= 1");
        }
        break;
    }
  }
  return Status::Ok();
}

std::string ChaosPlan::ToJson() const {
  std::string out = "{\n";
  out += "  \"seed\": " + std::to_string(seed) + ",\n";
  out += "  \"horizon\": " + FormatDouble(horizon) + ",\n";
  out += "  \"regimes\": [";
  for (size_t i = 0; i < regimes.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    AppendRegimeJson(regimes[i], &out);
  }
  out += regimes.empty() ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

Result<ChaosPlan> ChaosPlan::FromJson(std::string_view text) {
  Result<Json> root = ParseJson(text, kWhat);
  if (!root.ok()) return root.status();
  if (!root->IsObject()) {
    return InvalidArgumentError("plan JSON: top-level value must be an object");
  }
  ChaosPlan plan;
  RETURN_IF_ERROR(ReadUint64(*root, "seed", &plan.seed));
  RETURN_IF_ERROR(ReadDouble(*root, "horizon", &plan.horizon));
  const Json* regimes = root->Find("regimes");
  if (regimes != nullptr) {
    if (!regimes->IsArray()) {
      return InvalidArgumentError("plan JSON: 'regimes' must be an array");
    }
    for (const Json& item : regimes->items) {
      Result<ChaosRegime> regime = RegimeFromJson(item);
      if (!regime.ok()) return regime.status();
      plan.regimes.push_back(std::move(*regime));
    }
  }
  return plan;
}

std::string ChaosPlan::Describe() const {
  std::ostringstream os;
  os << "chaos plan: seed=" << seed << " horizon=" << FormatDouble(horizon) << "ms "
     << regimes.size() << " regime(s)";
  for (const ChaosRegime& regime : regimes) {
    os << "\n  " << regime.Describe();
  }
  return os.str();
}

}  // namespace probcon
