// Repair-rate sweeps: "how fast must repair be for five nines?" — the operator-facing
// question the fleet model exists to answer. Each sweep point re-solves the fleet chain at a
// candidate repair rate and reports steady-state availability, MTTU, and downtime per year;
// the result also surfaces the first (slowest) swept rate meeting an availability target.
// The sweep loop polls the cancel token between points, on top of the polls inside each
// CTMC solve.

#ifndef PROBCON_SRC_LIFECYCLE_REPAIR_SWEEP_H_
#define PROBCON_SRC_LIFECYCLE_REPAIR_SWEEP_H_

#include <optional>
#include <vector>

#include "src/common/status.h"
#include "src/lifecycle/fleet_model.h"
#include "src/markov/ctmc.h"
#include "src/prob/probability.h"

namespace probcon {

struct RepairSweepPoint {
  double repair_rate = 0.0;  // Per-technician mu (per hour).
  Probability availability;  // Steady-state, current membership.
  double mttu_hours = 0.0;   // Mean time from all-up to the first liveness outage.
  double downtime_hours_per_year = 0.0;
};

struct RepairSweepResult {
  std::vector<RepairSweepPoint> points;  // In the order the rates were given.
  // Smallest swept rate whose availability meets the target, when one was requested and met.
  std::optional<double> first_rate_meeting_target;
};

// Geometric grid helper for the common "from mu_min to mu_max in N points" sweep.
std::vector<double> GeometricRepairRates(double min_rate, double max_rate, int points);

// Solves `params`-with-each-rate under `protocol`. `repair_rates` must be positive and
// finite; `target_availability`, when set, must lie in (0, 1).
Result<RepairSweepResult> TryRepairRateSweep(const FleetParams& params, FleetProtocol protocol,
                                             const std::vector<double>& repair_rates,
                                             std::optional<double> target_availability,
                                             const CtmcSolveOptions& options);

}  // namespace probcon

#endif  // PROBCON_SRC_LIFECYCLE_REPAIR_SWEEP_H_
