#include "src/lifecycle/fleet_model.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <sstream>
#include <utility>

#include "src/analysis/protocol_spec.h"
#include "src/common/check.h"
#include "src/faultmodel/afr.h"

namespace probcon {

FleetClass FleetClass::FromCurve(const FaultCurve& curve, double age, int count) {
  CHECK_GE(age, 0.0);
  FleetClass cls;
  cls.count = count;
  cls.failure_rate = curve.HazardRate(age);
  return cls;
}

Status FleetModel::Validate(const FleetParams& params, int max_states) {
  if (params.classes.empty()) {
    return InvalidArgumentError("fleet needs at least one class");
  }
  bool any_old = false;
  int64_t states = 1;
  for (size_t c = 0; c < params.classes.size(); ++c) {
    const FleetClass& cls = params.classes[c];
    if (cls.count < 1) {
      std::ostringstream os;
      os << "class " << c << " count " << cls.count << " must be >= 1";
      return InvalidArgumentError(os.str());
    }
    if (!(cls.failure_rate > 0.0) || !std::isfinite(cls.failure_rate)) {
      std::ostringstream os;
      os << "class " << c << " failure_rate must be positive and finite";
      return InvalidArgumentError(os.str());
    }
    any_old = any_old || cls.in_old;
    states *= cls.count + 1;
    if (states > max_states) {
      std::ostringstream os;
      os << "lumped state count exceeds " << max_states
         << " (shrink class sizes or merge vintages)";
      return InvalidArgumentError(os.str());
    }
  }
  if (!any_old) {
    return InvalidArgumentError("no class is in the current (old) membership");
  }
  if (!(params.repair_rate >= 0.0) || !std::isfinite(params.repair_rate)) {
    return InvalidArgumentError("repair_rate must be >= 0 and finite");
  }
  if (params.repair_servers < 1) {
    return InvalidArgumentError("repair_servers must be >= 1");
  }
  return Status::Ok();
}

FleetModel::FleetModel(FleetParams params, FleetProtocol protocol)
    : params_(std::move(params)), protocol_(protocol) {
  const Status valid = Validate(params_);
  CHECK(valid.ok()) << valid.ToString();
  strides_.reserve(params_.classes.size());
  int stride = 1;
  for (const FleetClass& cls : params_.classes) {
    strides_.push_back(stride);
    stride *= cls.count + 1;
    total_nodes_ += cls.count;
  }
  state_count_ = stride;
}

int FleetModel::EncodeState(const std::vector<int>& failed) const {
  CHECK_EQ(failed.size(), params_.classes.size());
  int index = 0;
  for (size_t c = 0; c < failed.size(); ++c) {
    CHECK(failed[c] >= 0 && failed[c] <= params_.classes[c].count);
    index += failed[c] * strides_[c];
  }
  return index;
}

std::vector<int> FleetModel::DecodeState(int index) const {
  CHECK(index >= 0 && index < state_count_);
  std::vector<int> failed(params_.classes.size(), 0);
  for (size_t c = 0; c < params_.classes.size(); ++c) {
    failed[c] = (index / strides_[c]) % (params_.classes[c].count + 1);
  }
  return failed;
}

bool FleetModel::IsLiveForMembership(const std::vector<int>& failed,
                                     bool use_new_membership) const {
  int member_total = 0;
  int member_failed = 0;
  for (size_t c = 0; c < params_.classes.size(); ++c) {
    const FleetClass& cls = params_.classes[c];
    const bool member = use_new_membership ? cls.in_new : cls.in_old;
    if (!member) {
      continue;
    }
    member_total += cls.count;
    member_failed += failed[c];
  }
  if (member_total == 0) {
    return false;  // An empty membership can never form a quorum.
  }
  switch (protocol_) {
    case FleetProtocol::kRaft:
      return RaftIsLive(RaftConfig::Standard(member_total), member_total - member_failed);
    case FleetProtocol::kPbft:
      // Crashed nodes are conservatively counted toward the Byzantine budget (the paper's
      // §3 convention: the analysis cannot tell a crash from a corruption).
      return PbftIsLive(PbftConfig::Standard(member_total), member_failed);
  }
  return false;
}

bool FleetModel::IsLive(const std::vector<int>& failed) const {
  return IsLiveForMembership(failed, /*use_new_membership=*/false);
}

bool FleetModel::IsLiveDuringReconfiguration(const std::vector<int>& failed) const {
  // Joint consensus: commit/elect requires a quorum in BOTH memberships.
  return IsLiveForMembership(failed, /*use_new_membership=*/false) &&
         IsLiveForMembership(failed, /*use_new_membership=*/true);
}

std::vector<bool> FleetModel::OutageStates(bool reconfiguration) const {
  std::vector<bool> outage(static_cast<size_t>(state_count_), false);
  for (int s = 0; s < state_count_; ++s) {
    const std::vector<int> failed = DecodeState(s);
    outage[static_cast<size_t>(s)] =
        reconfiguration ? !IsLiveDuringReconfiguration(failed) : !IsLive(failed);
  }
  return outage;
}

Ctmc FleetModel::BuildChain(const std::vector<bool>* absorbing) const {
  Ctmc chain(state_count_);
  for (int s = 0; s < state_count_; ++s) {
    if (absorbing != nullptr && (*absorbing)[static_cast<size_t>(s)]) {
      continue;  // Absorbing states keep no outgoing transitions.
    }
    const std::vector<int> failed = DecodeState(s);
    int total_failed = 0;
    for (const int k : failed) {
      total_failed += k;
    }
    for (size_t c = 0; c < params_.classes.size(); ++c) {
      const FleetClass& cls = params_.classes[c];
      // Failure: one more of class c down.
      const int up = cls.count - failed[c];
      if (up > 0) {
        chain.AddTransition(s, s + strides_[c], up * cls.failure_rate);
      }
      // Repair: the shared pool runs min(K, S) technicians, allocated proportionally to
      // per-class backlogs, so the total repair rate matches the pool and the allocation
      // keeps the lumped chain Markov.
      if (params_.repair_rate > 0.0 && failed[c] > 0) {
        const int active = std::min(total_failed, params_.repair_servers);
        const double rate = active * params_.repair_rate *
                            (static_cast<double>(failed[c]) / total_failed);
        chain.AddTransition(s, s - strides_[c], rate);
      }
    }
  }
  return chain;
}

Result<Probability> FleetModel::TrySteadyStateAvailability(
    bool reconfiguration, const CtmcSolveOptions& options) const {
  if (params_.repair_rate == 0.0) {
    // Without repair every trajectory eventually drains below quorum and stays there: the
    // long-run live fraction is zero (same convention as ConsensusRepairModel).
    return Probability::Zero();
  }
  const Ctmc chain = BuildChain(nullptr);
  auto pi = chain.TrySteadyState(options);
  if (!pi.ok()) {
    return pi.status();
  }
  const std::vector<bool> outage = OutageStates(reconfiguration);
  // Accumulate the (small) outage mass so availability stays exact in its complement.
  double outage_mass = 0.0;
  for (int s = 0; s < state_count_; ++s) {
    if (outage[static_cast<size_t>(s)]) {
      outage_mass += (*pi)[static_cast<size_t>(s)];
    }
  }
  return Probability::FromComplement(std::min(1.0, outage_mass));
}

Result<double> FleetModel::TryMeanTimeToUnavailability(bool reconfiguration,
                                                       const CtmcSolveOptions& options) const {
  const std::vector<bool> outage = OutageStates(reconfiguration);
  std::vector<int> absorbing;
  for (int s = 0; s < state_count_; ++s) {
    if (outage[static_cast<size_t>(s)]) {
      absorbing.push_back(s);
    }
  }
  if (absorbing.empty()) {
    return FailedPreconditionError("no outage state exists for this fleet");
  }
  const Ctmc chain = BuildChain(nullptr);
  return chain.TryMeanTimeToAbsorption(/*start=*/0, absorbing, options);
}

Result<double> FleetModel::TryMeanTimeToQuorumLoss(int loss_threshold,
                                                   const CtmcSolveOptions& options) const {
  CHECK(loss_threshold >= 1 && loss_threshold <= total_nodes_);
  std::vector<int> absorbing;
  for (int s = 0; s < state_count_; ++s) {
    const std::vector<int> failed = DecodeState(s);
    int total_failed = 0;
    for (const int k : failed) {
      total_failed += k;
    }
    if (total_failed >= loss_threshold) {
      absorbing.push_back(s);
    }
  }
  const Ctmc chain = BuildChain(nullptr);
  return chain.TryMeanTimeToAbsorption(/*start=*/0, absorbing, options);
}

Result<Probability> FleetModel::TryMissionReliability(double mission_hours,
                                                      bool reconfiguration,
                                                      const CtmcSolveOptions& options) const {
  CHECK_GE(mission_hours, 0.0);
  const std::vector<bool> outage = OutageStates(reconfiguration);
  if (outage[0]) {
    return Probability::Zero();  // Not even the all-up fleet is live.
  }
  const Ctmc chain = BuildChain(&outage);
  Vector initial(static_cast<size_t>(state_count_), 0.0);
  initial[0] = 1.0;
  auto distribution = chain.TryTransientDistribution(initial, mission_hours, options);
  if (!distribution.ok()) {
    return distribution.status();
  }
  double outage_mass = 0.0;
  for (int s = 0; s < state_count_; ++s) {
    if (outage[static_cast<size_t>(s)]) {
      outage_mass += (*distribution)[static_cast<size_t>(s)];
    }
  }
  return Probability::FromComplement(std::min(1.0, outage_mass));
}

double FleetModel::DowntimeHoursPerYear(const Probability& availability) {
  return availability.complement() * kHoursPerYear;
}

}  // namespace probcon
