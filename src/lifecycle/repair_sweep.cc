#include "src/lifecycle/repair_sweep.h"

#include <cmath>
#include <utility>

#include "src/common/cancellation.h"
#include "src/common/check.h"

namespace probcon {

std::vector<double> GeometricRepairRates(double min_rate, double max_rate, int points) {
  CHECK_GT(min_rate, 0.0);
  CHECK_GE(max_rate, min_rate);
  CHECK_GT(points, 0);
  std::vector<double> rates;
  rates.reserve(static_cast<size_t>(points));
  if (points == 1) {
    rates.push_back(min_rate);
    return rates;
  }
  // Endpoints are pinned exactly (log/exp round-trips perturb the last ulp, and the serve
  // layer's canonical keys want a 2-point grid to equal its explicit spelling).
  const double log_min = std::log(min_rate);
  const double log_max = std::log(max_rate);
  rates.push_back(min_rate);
  for (int i = 1; i < points - 1; ++i) {
    const double alpha = static_cast<double>(i) / (points - 1);
    rates.push_back(std::exp(log_min + alpha * (log_max - log_min)));
  }
  rates.push_back(max_rate);
  return rates;
}

Result<RepairSweepResult> TryRepairRateSweep(const FleetParams& params, FleetProtocol protocol,
                                             const std::vector<double>& repair_rates,
                                             std::optional<double> target_availability,
                                             const CtmcSolveOptions& options) {
  CHECK(!repair_rates.empty());
  for (const double rate : repair_rates) {
    CHECK(rate > 0.0 && std::isfinite(rate));
  }
  if (target_availability.has_value()) {
    CHECK(*target_availability > 0.0 && *target_availability < 1.0);
  }
  RepairSweepResult result;
  result.points.reserve(repair_rates.size());
  for (const double rate : repair_rates) {
    if (IsCancelled(options.cancel)) {
      return CancelledError("repair sweep cancelled");
    }
    FleetParams swept = params;
    swept.repair_rate = rate;
    const FleetModel model(std::move(swept), protocol);
    auto availability =
        model.TrySteadyStateAvailability(/*reconfiguration=*/false, options);
    if (!availability.ok()) {
      return availability.status();
    }
    auto mttu = model.TryMeanTimeToUnavailability(/*reconfiguration=*/false, options);
    if (!mttu.ok()) {
      return mttu.status();
    }
    RepairSweepPoint point;
    point.repair_rate = rate;
    point.availability = *availability;
    point.mttu_hours = *mttu;
    point.downtime_hours_per_year = FleetModel::DowntimeHoursPerYear(*availability);
    result.points.push_back(point);
  }
  if (target_availability.has_value()) {
    // Smallest qualifying rate: availability is monotone in the repair rate, so scan the
    // sorted-by-rate view rather than trusting input order.
    std::optional<double> best;
    for (const RepairSweepPoint& point : result.points) {
      if (point.availability.value() >= *target_availability &&
          (!best.has_value() || point.repair_rate < *best)) {
        best = point.repair_rate;
      }
    }
    result.first_rate_meeting_target = best;
  }
  return result;
}

}  // namespace probcon
