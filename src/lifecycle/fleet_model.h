// Fleet-lifecycle availability models: the paper's "reason about consensus like the storage
// community reasons about RAID" argument, executed. A deployment is a *repairable fleet* of
// heterogeneous vintages — each vintage with its own failure rate, possibly drawn from a
// fault curve at the vintage's current age — and the questions that matter are mission-time
// reliability, steady-state availability, MTTU/MTTQL, and expected downtime per year, for
// Raft and PBFT quorum rules, including during reconfiguration windows when liveness needs a
// quorum in BOTH the old and the new membership.
//
// State space. Nodes within a vintage class are exchangeable (same rate, same membership
// flags), so the per-node chain lumps to per-class failed counts: a fleet with classes of
// sizes n_1..n_C has states (k_1..k_C), k_c in [0, n_c] — prod(n_c + 1) states instead of
// 2^N. Failures arrive per class at (n_c - k_c) * lambda_c. Repairs come from a shared pool
// of `repair_servers` technicians, each completing at rate mu; with K = sum(k_c) failed, the
// pool runs min(K, S) concurrent repairs allocated proportionally to per-class backlogs
// (rate toward class c: min(K, S) * mu * k_c / K). When S >= total nodes this degenerates to
// independent per-node repair at k_c * mu, which is how the homogeneous single-class model
// reduces exactly to ConsensusRepairModel with repair_servers = n.
//
// Lumping assumption. A class's failure law is exponential with the hazard frozen at the
// class's current age (FleetClass::FromCurve evaluates h(age) once). That is the same
// quasi-static approximation the storage MTTDL literature makes; callers tracking aging over
// long horizons should re-solve with refreshed rates (the serving layer's repair_sweep and
// availability queries are cheap enough to re-issue) or use RoundSchedule for the
// fully time-varying treatment.
//
// All solvers are cancellable (CtmcSolveOptions) so the serving daemon's deadline watchdog
// can abandon a solve mid-uniformization.

#ifndef PROBCON_SRC_LIFECYCLE_FLEET_MODEL_H_
#define PROBCON_SRC_LIFECYCLE_FLEET_MODEL_H_

#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/faultmodel/fault_curve.h"
#include "src/markov/ctmc.h"
#include "src/prob/probability.h"

namespace probcon {

// Which protocol's liveness predicate decides "the fleet is up". Quorum sizes are the
// standard ones, derived from the membership size under evaluation (majorities for Raft;
// n = 3f+1 quorums for PBFT with crashed nodes conservatively counted as faulty).
enum class FleetProtocol {
  kRaft,
  kPbft,
};

// One exchangeable vintage class.
struct FleetClass {
  int count = 0;             // Nodes in the class (>= 1).
  double failure_rate = 0.0; // Per-node lambda (per hour, > 0).
  // Membership flags for reconfiguration analysis: a joint-consensus window needs quorums
  // in both the old membership (classes with in_old) and the new one (in_new). Outside
  // reconfiguration only in_old matters. A class being repaired out still fails and ties up
  // repair capacity, which is exactly why reconfiguration windows are availability-critical.
  bool in_old = true;
  bool in_new = true;

  // Lumps a fault curve into a class rate by freezing the hazard at the vintage's age.
  static FleetClass FromCurve(const FaultCurve& curve, double age, int count);
};

struct FleetParams {
  std::vector<FleetClass> classes;
  double repair_rate = 0.0;  // Per-technician mu (per hour); 0 disables repair.
  int repair_servers = 1;    // Size of the shared repair pool (>= 1).
};

// Hard cap on the lumped state count (memory: the dense generator is m^2 doubles; time: the
// direct solves are O(m^3)). The serving layer enforces a tighter per-request cap.
inline constexpr int kMaxFleetStates = 4096;

class FleetModel {
 public:
  // CHECK-fails on structurally invalid params (empty classes, non-positive counts/rates,
  // state count above kMaxFleetStates). Edge callers validate first via Validate().
  FleetModel(FleetParams params, FleetProtocol protocol);

  // Status-returning validation for untrusted inputs (the serving edge), covering the same
  // conditions the constructor CHECKs plus an optional tighter state cap.
  static Status Validate(const FleetParams& params, int max_states = kMaxFleetStates);

  const FleetParams& params() const { return params_; }
  FleetProtocol protocol() const { return protocol_; }
  int state_count() const { return state_count_; }
  int total_nodes() const { return total_nodes_; }

  // Liveness of a per-class failed-count vector under the current membership, and under a
  // joint-consensus reconfiguration window (quorums in old AND new membership).
  bool IsLive(const std::vector<int>& failed) const;
  bool IsLiveDuringReconfiguration(const std::vector<int>& failed) const;

  // Long-run P(live) of the always-repairing chain. Zero when repair is disabled (every
  // trajectory eventually drains past the quorum with no way back up at the boundary — the
  // same convention as ConsensusRepairModel). `reconfiguration` selects the joint predicate.
  Result<Probability> TrySteadyStateAvailability(bool reconfiguration,
                                                 const CtmcSolveOptions& options) const;

  // Expected hours, from all-up, until the fleet first goes non-live (MTTU).
  Result<double> TryMeanTimeToUnavailability(bool reconfiguration,
                                             const CtmcSolveOptions& options) const;

  // Expected hours, from all-up, until `loss_threshold` nodes are simultaneously failed
  // fleet-wide (the count-level data-loss proxy, MTTQL).
  Result<double> TryMeanTimeToQuorumLoss(int loss_threshold,
                                         const CtmcSolveOptions& options) const;

  // P(no liveness outage within the mission), treating the first outage as absorbing:
  // the mission-time reliability figure. Complement-exact in the outage mass.
  Result<Probability> TryMissionReliability(double mission_hours, bool reconfiguration,
                                            const CtmcSolveOptions& options) const;

  // Convenience: complement of steady-state availability scaled to hours per year.
  static double DowntimeHoursPerYear(const Probability& availability);

 private:
  // Dense mixed-radix state index: index = sum_c k_c * stride_c.
  int EncodeState(const std::vector<int>& failed) const;
  std::vector<int> DecodeState(int index) const;

  // Full chain with repair everywhere. States for which `absorbing` (when non-null, indexed
  // by state) is true get no outgoing transitions.
  Ctmc BuildChain(const std::vector<bool>* absorbing) const;

  // States failing the selected liveness predicate.
  std::vector<bool> OutageStates(bool reconfiguration) const;

  bool IsLiveForMembership(const std::vector<int>& failed, bool use_new_membership) const;

  FleetParams params_;
  FleetProtocol protocol_;
  int state_count_ = 0;
  int total_nodes_ = 0;
  std::vector<int> strides_;
};

}  // namespace probcon

#endif  // PROBCON_SRC_LIFECYCLE_FLEET_MODEL_H_
