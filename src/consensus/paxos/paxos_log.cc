#include "src/consensus/paxos/paxos_log.h"

#include <algorithm>

#include "src/common/check.h"
#include "src/common/logging.h"

namespace probcon {

std::string PaxosLogPrepare::Describe() const {
  return "LogPrepare(s=" + std::to_string(slot) + ", b=" + std::to_string(ballot) + ")";
}
std::string PaxosLogPromise::Describe() const {
  return "LogPromise(s=" + std::to_string(slot) + ", b=" + std::to_string(ballot) + ")";
}
std::string PaxosLogAccept::Describe() const {
  return "LogAccept(s=" + std::to_string(slot) + ", b=" + std::to_string(ballot) + ", cmd#" +
         std::to_string(value.id) + ")";
}
std::string PaxosLogAccepted::Describe() const {
  return "LogAccepted(s=" + std::to_string(slot) + ", b=" + std::to_string(ballot) + ")";
}
std::string PaxosLogNack::Describe() const {
  return "LogNack(s=" + std::to_string(slot) + ", b=" + std::to_string(ballot) + ")";
}
std::string PaxosLogDecide::Describe() const {
  return "LogDecide(s=" + std::to_string(slot) + ", cmd#" + std::to_string(value.id) + ")";
}
std::string PaxosLogClientCommand::Describe() const {
  return "LogClientCommand(cmd#" + std::to_string(command.id) + ")";
}

PaxosLogNode::PaxosLogNode(Simulator* simulator, Network* network, int id,
                           const PaxosConfig& config, const PaxosTimingConfig& timing,
                           SafetyChecker* checker)
    : Process(simulator, network, id), config_(config), timing_(timing), checker_(checker) {
  CHECK_EQ(config.n, network->node_count());
  CHECK(checker != nullptr);
}

void PaxosLogNode::OnStart() {}

void PaxosLogNode::OnRecover() {
  // Acceptor state and decided values are durable; in-flight proposals restart.
  proposer_ = ProposerState{};
  ++retry_epoch_;
  MaybePropose();
}

void PaxosLogNode::OnMessage(int from, const std::shared_ptr<const SimMessage>& message) {
  if (const auto* client = dynamic_cast<const PaxosLogClientCommand*>(message.get())) {
    if (queued_command_ids_.insert(client->command.id).second &&
        decided_.end() ==
            std::find_if(decided_.begin(), decided_.end(), [&](const auto& entry) {
              return entry.second.id == client->command.id;
            })) {
      pending_.push_back(client->command);
      MaybePropose();
    }
  } else if (const auto* prepare = dynamic_cast<const PaxosLogPrepare*>(message.get())) {
    HandlePrepare(from, *prepare);
  } else if (const auto* promise = dynamic_cast<const PaxosLogPromise*>(message.get())) {
    HandlePromise(from, *promise);
  } else if (const auto* accept = dynamic_cast<const PaxosLogAccept*>(message.get())) {
    HandleAccept(from, *accept);
  } else if (const auto* accepted = dynamic_cast<const PaxosLogAccepted*>(message.get())) {
    HandleAccepted(from, *accepted);
  } else if (const auto* nack = dynamic_cast<const PaxosLogNack*>(message.get())) {
    HandleNack(*nack);
  } else if (const auto* decide = dynamic_cast<const PaxosLogDecide*>(message.get())) {
    HandleDecide(*decide);
  } else {
    LOG(Warning) << "paxos-log node " << id() << " ignoring " << message->Describe();
  }
}

// ---------------------------------------------------------------------------
// Proposer

uint64_t PaxosLogNode::LowestFreeSlot() const {
  uint64_t slot = 1;
  while (decided_.count(slot) > 0) {
    ++slot;
  }
  return slot;
}

void PaxosLogNode::MaybePropose() {
  if (proposer_.active || pending_.empty()) {
    return;
  }
  proposer_.active = true;
  proposer_.slot = LowestFreeSlot();
  StartRound();
}

void PaxosLogNode::StartRound() {
  CHECK(proposer_.active);
  if (decided_.count(proposer_.slot) > 0) {
    // Someone else filled it while we were retrying; move on.
    proposer_ = ProposerState{};
    MaybePropose();
    return;
  }
  ++attempt_;
  proposer_.ballot = attempt_ * static_cast<uint64_t>(config_.n) + id() + 1;
  proposer_.in_phase2 = false;
  proposer_.promises.clear();
  proposer_.accepted_votes.clear();
  proposer_.adopted_foreign_value = false;

  auto prepare = std::make_shared<PaxosLogPrepare>();
  prepare->slot = proposer_.slot;
  prepare->ballot = proposer_.ballot;
  BroadcastAll(prepare, /*include_self=*/true);
  ScheduleRetry();
}

void PaxosLogNode::ScheduleRetry() {
  ++retry_epoch_;
  const uint64_t epoch = retry_epoch_;
  const SimTime delay = timing_.proposal_timeout + timing_.backoff_max * rng().NextDouble();
  SetTimer(delay, [this, epoch]() {
    if (retry_epoch_ == epoch && proposer_.active) {
      StartRound();
    }
  });
}

void PaxosLogNode::HandlePromise(int from, const PaxosLogPromise& message) {
  if (!proposer_.active || proposer_.in_phase2 || message.slot != proposer_.slot ||
      message.ballot != proposer_.ballot) {
    return;
  }
  proposer_.promises.emplace(from, message);
  if (static_cast<int>(proposer_.promises.size()) < config_.q_prepare) {
    return;
  }
  proposer_.in_phase2 = true;
  uint64_t best_ballot = 0;
  proposer_.phase2_value = pending_.front();
  proposer_.adopted_foreign_value = false;
  for (const auto& [sender, promise] : proposer_.promises) {
    if (promise.accepted_ballot > best_ballot) {
      best_ballot = promise.accepted_ballot;
      proposer_.phase2_value = promise.accepted_value;
      proposer_.adopted_foreign_value = promise.accepted_value.id != pending_.front().id;
    }
  }
  auto accept = std::make_shared<PaxosLogAccept>();
  accept->slot = proposer_.slot;
  accept->ballot = proposer_.ballot;
  accept->value = proposer_.phase2_value;
  BroadcastAll(accept, /*include_self=*/true);
}

void PaxosLogNode::HandleAccepted(int from, const PaxosLogAccepted& message) {
  if (!proposer_.active || !proposer_.in_phase2 || message.slot != proposer_.slot ||
      message.ballot != proposer_.ballot) {
    return;
  }
  proposer_.accepted_votes.insert(from);
  if (static_cast<int>(proposer_.accepted_votes.size()) < config_.q_accept) {
    return;
  }
  // Chosen. Learn, disseminate, and either consume our command or retry it at the next slot.
  const uint64_t slot = proposer_.slot;
  const Command value = proposer_.phase2_value;
  const bool was_ours = !proposer_.adopted_foreign_value;
  proposer_ = ProposerState{};
  if (was_ours) {
    pending_.pop_front();
  }
  Learn(slot, value);
  auto decide = std::make_shared<PaxosLogDecide>();
  decide->slot = slot;
  decide->value = value;
  BroadcastAll(decide, /*include_self=*/false);
  MaybePropose();
}

void PaxosLogNode::HandleNack(const PaxosLogNack& message) {
  if (!proposer_.active || message.slot != proposer_.slot ||
      message.ballot != proposer_.ballot) {
    return;
  }
  attempt_ = std::max(attempt_, message.promised_ballot / static_cast<uint64_t>(config_.n));
  ScheduleRetry();
}

// ---------------------------------------------------------------------------
// Acceptor

void PaxosLogNode::HandlePrepare(int from, const PaxosLogPrepare& message) {
  AcceptorSlot& slot = acceptor_slots_[message.slot];
  if (message.ballot > slot.promised_ballot) {
    slot.promised_ballot = message.ballot;
    auto promise = std::make_shared<PaxosLogPromise>();
    promise->slot = message.slot;
    promise->ballot = message.ballot;
    promise->accepted_ballot = slot.accepted_ballot;
    if (slot.accepted_value.has_value()) {
      promise->accepted_value = *slot.accepted_value;
    }
    SendTo(from, std::move(promise));
    return;
  }
  auto nack = std::make_shared<PaxosLogNack>();
  nack->slot = message.slot;
  nack->ballot = message.ballot;
  nack->promised_ballot = slot.promised_ballot;
  SendTo(from, std::move(nack));
}

void PaxosLogNode::HandleAccept(int from, const PaxosLogAccept& message) {
  AcceptorSlot& slot = acceptor_slots_[message.slot];
  if (message.ballot >= slot.promised_ballot) {
    slot.promised_ballot = message.ballot;
    slot.accepted_ballot = message.ballot;
    slot.accepted_value = message.value;
    auto accepted = std::make_shared<PaxosLogAccepted>();
    accepted->slot = message.slot;
    accepted->ballot = message.ballot;
    accepted->value = message.value;
    SendTo(from, std::move(accepted));
    return;
  }
  auto nack = std::make_shared<PaxosLogNack>();
  nack->slot = message.slot;
  nack->ballot = message.ballot;
  nack->promised_ballot = slot.promised_ballot;
  SendTo(from, std::move(nack));
}

// ---------------------------------------------------------------------------
// Learner

void PaxosLogNode::HandleDecide(const PaxosLogDecide& message) {
  Learn(message.slot, message.value);
  // A decide may unblock our proposer (it was racing for that slot).
  if (proposer_.active && decided_.count(proposer_.slot) > 0) {
    const uint64_t epoch = ++retry_epoch_;
    (void)epoch;
    proposer_ = ProposerState{};
    MaybePropose();
  }
}

void PaxosLogNode::Learn(uint64_t slot, const Command& value) {
  const auto [it, inserted] = decided_.emplace(slot, value);
  if (!inserted) {
    return;
  }
  queued_command_ids_.insert(value.id);
  // Drop the command from our own queue if someone else got it chosen.
  for (auto pending_it = pending_.begin(); pending_it != pending_.end(); ++pending_it) {
    if (pending_it->id == value.id) {
      pending_.erase(pending_it);
      break;
    }
  }
  // Report the contiguous chosen prefix in order.
  while (true) {
    const auto next = decided_.find(chosen_prefix_ + 1);
    if (next == decided_.end()) {
      break;
    }
    ++chosen_prefix_;
    checker_->RecordCommit(id(), chosen_prefix_, next->second);
  }
}

}  // namespace probcon
