// Single-decree Paxos (Lamport's synod protocol) with Flexible-Paxos quorums.
//
// Every node plays proposer, acceptor, and learner for ONE decision. Proposers retry with
// increasing, globally unique ballots (ballot = attempt * n + id) and randomized backoff;
// acceptors follow the classic promise/accept rules; a proposer whose Accept gathers an
// accept-quorum of Accepted responses decides and disseminates the decision.
//
// Quorums follow Howard et al.'s Flexible Paxos: a prepare (phase-1) quorum of size q1 and
// an accept (phase-2) quorum of size q2 are safe iff q1 + q2 > n — they need only intersect
// EACH OTHER, not themselves. Configurations violating that inequality run fine and decide
// conflicting values under the right schedules; the SafetyChecker records it (the CFT
// negative control of experiment E8, Paxos flavour).
//
// Time unit: milliseconds.

#ifndef PROBCON_SRC_CONSENSUS_PAXOS_PAXOS_NODE_H_
#define PROBCON_SRC_CONSENSUS_PAXOS_PAXOS_NODE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>

#include "src/consensus/common/durable_state.h"
#include "src/consensus/common/safety_checker.h"
#include "src/consensus/common/types.h"
#include "src/sim/process.h"

namespace probcon {

struct PaxosConfig {
  int n = 0;
  int q_prepare = 0;  // Phase-1 quorum size.
  int q_accept = 0;   // Phase-2 quorum size.

  // Classic majorities for both phases.
  static PaxosConfig Standard(int n);

  // Safe iff q_prepare + q_accept > n (Flexible Paxos).
  bool IsStructurallySafe() const { return q_prepare + q_accept > n; }

  std::string Describe() const;
};

struct PaxosTimingConfig {
  SimTime proposal_timeout = 300.0;  // Retry a stalled proposal after this long.
  SimTime backoff_max = 400.0;       // Extra randomized delay before retrying.
  SimTime initial_delay_max = 200.0; // Spread of the first proposal attempts.
};

// --- Messages -----------------------------------------------------------------

struct PaxosPrepare final : public SimMessage {
  uint64_t ballot = 0;
  std::string Describe() const override;
};

struct PaxosPromise final : public SimMessage {
  uint64_t ballot = 0;
  uint64_t accepted_ballot = 0;  // 0 = nothing accepted yet.
  Command accepted_value;
  std::string Describe() const override;
};

struct PaxosAccept final : public SimMessage {
  uint64_t ballot = 0;
  Command value;
  std::string Describe() const override;
};

struct PaxosAccepted final : public SimMessage {
  uint64_t ballot = 0;
  Command value;
  std::string Describe() const override;
};

struct PaxosNack final : public SimMessage {
  uint64_t ballot = 0;          // The rejected ballot.
  uint64_t promised_ballot = 0; // What the acceptor is already promised to.
  std::string Describe() const override;
};

struct PaxosDecide final : public SimMessage {
  Command value;
  std::string Describe() const override;
};

// The acceptor state Paxos requires on stable storage: promises and accepts must survive a
// restart, or a node can promise/accept twice and split a decided value.
struct PaxosDurableImage {
  uint64_t promised_ballot = 0;
  uint64_t accepted_ballot = 0;
  std::optional<Command> accepted_value;
};

// --- Node -----------------------------------------------------------------------

class PaxosNode final : public Process {
 public:
  PaxosNode(Simulator* simulator, Network* network, int id, const PaxosConfig& config,
            const PaxosTimingConfig& timing, SafetyChecker* checker, Command proposal);

  bool decided() const { return decided_.has_value(); }
  const Command& decision() const;
  uint64_t highest_ballot_seen() const { return promised_ballot_; }

  // Acceptor-state durability (see RaftNode::SetDurabilityPolicy for the model). Batched
  // fsync means a restart can forget a promise or an accept — the exact storage fault that
  // breaks Paxos safety in the wild.
  void SetDurabilityPolicy(const DurabilityPolicy& policy) { durable_.SetPolicy(policy); }
  const DurableCell<PaxosDurableImage>& durable() const { return durable_; }

 protected:
  void OnStart() override;
  void OnMessage(int from, const std::shared_ptr<const SimMessage>& message) override;
  void OnRecover() override;

 private:
  // Proposer.
  void StartProposal();
  void HandlePromise(int from, const PaxosPromise& message);
  void HandleAccepted(int from, const PaxosAccepted& message);
  void HandleNack(const PaxosNack& message);
  void ScheduleRetry();
  uint64_t NextBallot();

  // Acceptor.
  void HandlePrepare(int from, const PaxosPrepare& message);
  void HandleAccept(int from, const PaxosAccept& message);

  // Learner.
  void HandleDecide(const PaxosDecide& message);
  void Decide(const Command& value);

  PaxosConfig config_;
  PaxosTimingConfig timing_;
  SafetyChecker* checker_;
  Command proposal_;  // This node's own candidate value.

  // Acceptor state (durable up to the fsync boundary; see durable_).
  uint64_t promised_ballot_ = 0;
  uint64_t accepted_ballot_ = 0;
  std::optional<Command> accepted_value_;
  DurableCell<PaxosDurableImage> durable_;
  void PersistAcceptorState();

  // Proposer state (volatile).
  uint64_t attempt_ = 0;
  uint64_t current_ballot_ = 0;
  bool in_phase2_ = false;
  std::map<int, PaxosPromise> promises_;
  std::set<int> accepted_votes_;
  Command phase2_value_;
  uint64_t retry_epoch_ = 0;

  // Learner state.
  std::optional<Command> decided_;
};

}  // namespace probcon

#endif  // PROBCON_SRC_CONSENSUS_PAXOS_PAXOS_NODE_H_
