// Multi-decree Paxos: a replicated log built from independent single-decree synod instances,
// one per slot (the construction sketched in "Paxos Made Simple" §3).
//
// Each node runs acceptor state per slot and a proposer that walks the log: a node that has
// pending client commands proposes at the lowest slot it believes free; chosen values are
// learned via Decide broadcasts; a proposer that discovers a slot was already taken (its
// phase 2 adopted a previously accepted value) re-queues its command for the next slot.
// There is no distinguished leader — proposers race and back off, which keeps the
// implementation honest about the classic Paxos liveness caveat; the E8-style validation of
// leaderful designs is Raft's job.
//
// Executed (slot, command) pairs are reported to the SafetyChecker, exactly like Raft and
// PBFT, so all three SMR implementations are checked by the same oracle.

#ifndef PROBCON_SRC_CONSENSUS_PAXOS_PAXOS_LOG_H_
#define PROBCON_SRC_CONSENSUS_PAXOS_PAXOS_LOG_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>

#include "src/consensus/common/safety_checker.h"
#include "src/consensus/common/types.h"
#include "src/consensus/paxos/paxos_node.h"
#include "src/sim/process.h"

namespace probcon {

// --- Slot-tagged messages (wrap the single-decree payloads) ---------------------

struct PaxosLogPrepare final : public SimMessage {
  uint64_t slot = 0;
  uint64_t ballot = 0;
  std::string Describe() const override;
};

struct PaxosLogPromise final : public SimMessage {
  uint64_t slot = 0;
  uint64_t ballot = 0;
  uint64_t accepted_ballot = 0;
  Command accepted_value;
  std::string Describe() const override;
};

struct PaxosLogAccept final : public SimMessage {
  uint64_t slot = 0;
  uint64_t ballot = 0;
  Command value;
  std::string Describe() const override;
};

struct PaxosLogAccepted final : public SimMessage {
  uint64_t slot = 0;
  uint64_t ballot = 0;
  Command value;
  std::string Describe() const override;
};

struct PaxosLogNack final : public SimMessage {
  uint64_t slot = 0;
  uint64_t ballot = 0;
  uint64_t promised_ballot = 0;
  std::string Describe() const override;
};

struct PaxosLogDecide final : public SimMessage {
  uint64_t slot = 0;
  Command value;
  std::string Describe() const override;
};

// Client command injected at a node; queued and proposed by that node.
struct PaxosLogClientCommand final : public SimMessage {
  Command command;
  std::string Describe() const override;
};

// --- Node ------------------------------------------------------------------------

class PaxosLogNode final : public Process {
 public:
  PaxosLogNode(Simulator* simulator, Network* network, int id, const PaxosConfig& config,
               const PaxosTimingConfig& timing, SafetyChecker* checker);

  uint64_t chosen_count() const { return chosen_prefix_; }
  uint64_t known_slots() const { return decided_.size(); }

 protected:
  void OnStart() override;
  void OnMessage(int from, const std::shared_ptr<const SimMessage>& message) override;
  void OnRecover() override;

 private:
  struct AcceptorSlot {
    uint64_t promised_ballot = 0;
    uint64_t accepted_ballot = 0;
    std::optional<Command> accepted_value;
  };

  struct ProposerState {
    bool active = false;
    uint64_t slot = 0;
    uint64_t ballot = 0;
    bool in_phase2 = false;
    std::map<int, PaxosLogPromise> promises;
    std::set<int> accepted_votes;
    Command phase2_value;
    bool adopted_foreign_value = false;
  };

  // Proposer.
  void MaybePropose();
  void StartRound();
  void ScheduleRetry();
  void HandlePromise(int from, const PaxosLogPromise& message);
  void HandleAccepted(int from, const PaxosLogAccepted& message);
  void HandleNack(const PaxosLogNack& message);

  // Acceptor.
  void HandlePrepare(int from, const PaxosLogPrepare& message);
  void HandleAccept(int from, const PaxosLogAccept& message);

  // Learner.
  void HandleDecide(const PaxosLogDecide& message);
  void Learn(uint64_t slot, const Command& value);
  uint64_t LowestFreeSlot() const;

  PaxosConfig config_;
  PaxosTimingConfig timing_;
  SafetyChecker* checker_;

  // Durable.
  std::map<uint64_t, AcceptorSlot> acceptor_slots_;
  std::map<uint64_t, Command> decided_;

  // Volatile.
  std::deque<Command> pending_;
  std::set<uint64_t> queued_command_ids_;
  ProposerState proposer_;
  uint64_t attempt_ = 0;
  uint64_t retry_epoch_ = 0;
  uint64_t chosen_prefix_ = 0;  // Contiguous decided prefix reported to the checker.
};

}  // namespace probcon

#endif  // PROBCON_SRC_CONSENSUS_PAXOS_PAXOS_LOG_H_
