#include "src/consensus/paxos/paxos_node.h"

#include <sstream>

#include "src/common/check.h"
#include "src/common/logging.h"

namespace probcon {

PaxosConfig PaxosConfig::Standard(int n) {
  CHECK_GT(n, 0);
  PaxosConfig config;
  config.n = n;
  config.q_prepare = n / 2 + 1;
  config.q_accept = n / 2 + 1;
  return config;
}

std::string PaxosConfig::Describe() const {
  std::ostringstream os;
  os << "paxos(n=" << n << ", q1=" << q_prepare << ", q2=" << q_accept << ")";
  return os.str();
}

std::string PaxosPrepare::Describe() const {
  return "Prepare(b=" + std::to_string(ballot) + ")";
}
std::string PaxosPromise::Describe() const {
  return "Promise(b=" + std::to_string(ballot) + ", ab=" + std::to_string(accepted_ballot) +
         ")";
}
std::string PaxosAccept::Describe() const {
  return "Accept(b=" + std::to_string(ballot) + ", cmd#" + std::to_string(value.id) + ")";
}
std::string PaxosAccepted::Describe() const {
  return "Accepted(b=" + std::to_string(ballot) + ", cmd#" + std::to_string(value.id) + ")";
}
std::string PaxosNack::Describe() const {
  return "Nack(b=" + std::to_string(ballot) + ", promised=" + std::to_string(promised_ballot) +
         ")";
}
std::string PaxosDecide::Describe() const {
  return "Decide(cmd#" + std::to_string(value.id) + ")";
}

PaxosNode::PaxosNode(Simulator* simulator, Network* network, int id,
                     const PaxosConfig& config, const PaxosTimingConfig& timing,
                     SafetyChecker* checker, Command proposal)
    : Process(simulator, network, id),
      config_(config),
      timing_(timing),
      checker_(checker),
      proposal_(std::move(proposal)) {
  CHECK_EQ(config.n, network->node_count());
  CHECK(config.q_prepare >= 1 && config.q_prepare <= config.n);
  CHECK(config.q_accept >= 1 && config.q_accept <= config.n);
  CHECK(checker != nullptr);
}

const Command& PaxosNode::decision() const {
  CHECK(decided_.has_value()) << "node" << id() << "has not decided";
  return *decided_;
}

void PaxosNode::OnStart() {
  // Stagger first proposals so a single proposer usually runs unopposed.
  SetTimer(timing_.initial_delay_max * rng().NextDouble() + 1.0,
           [this]() { StartProposal(); });
}

void PaxosNode::OnRecover() {
  // Acceptor state survives up to the last fsync (it is the durable half of Paxos); with a
  // batched policy, the restart forgets unsynced promises/accepts. Proposer state restarts.
  const uint64_t lost = durable_.Restore();
  if (lost > 0) {
    const PaxosDurableImage& image = durable_.synced();
    promised_ballot_ = image.promised_ballot;
    accepted_ballot_ = image.accepted_ballot;
    accepted_value_ = image.accepted_value;
    simulator().tracer().StateLost(id(), lost);
    simulator().tracer().CounterAdd("paxos.lossy_restarts");
  }
  in_phase2_ = false;
  promises_.clear();
  accepted_votes_.clear();
  ++retry_epoch_;
  if (!decided_.has_value()) {
    ScheduleRetry();
  }
}

void PaxosNode::OnMessage(int from, const std::shared_ptr<const SimMessage>& message) {
  if (const auto* prepare = dynamic_cast<const PaxosPrepare*>(message.get())) {
    HandlePrepare(from, *prepare);
  } else if (const auto* promise = dynamic_cast<const PaxosPromise*>(message.get())) {
    HandlePromise(from, *promise);
  } else if (const auto* accept = dynamic_cast<const PaxosAccept*>(message.get())) {
    HandleAccept(from, *accept);
  } else if (const auto* accepted = dynamic_cast<const PaxosAccepted*>(message.get())) {
    HandleAccepted(from, *accepted);
  } else if (const auto* nack = dynamic_cast<const PaxosNack*>(message.get())) {
    HandleNack(*nack);
  } else if (const auto* decide = dynamic_cast<const PaxosDecide*>(message.get())) {
    HandleDecide(*decide);
  } else {
    LOG(Warning) << "paxos node " << id() << " ignoring " << message->Describe();
  }
}

// ---------------------------------------------------------------------------
// Proposer

uint64_t PaxosNode::NextBallot() {
  ++attempt_;
  return attempt_ * static_cast<uint64_t>(config_.n) + static_cast<uint64_t>(id()) + 1;
}

void PaxosNode::StartProposal() {
  if (decided_.has_value()) {
    return;
  }
  current_ballot_ = NextBallot();
  in_phase2_ = false;
  promises_.clear();
  accepted_votes_.clear();

  auto prepare = std::make_shared<PaxosPrepare>();
  prepare->ballot = current_ballot_;
  BroadcastAll(prepare, /*include_self=*/true);
  ScheduleRetry();
}

void PaxosNode::ScheduleRetry() {
  ++retry_epoch_;
  const uint64_t epoch = retry_epoch_;
  const SimTime delay = timing_.proposal_timeout + timing_.backoff_max * rng().NextDouble();
  SetTimer(delay, [this, epoch]() {
    if (retry_epoch_ == epoch && !decided_.has_value()) {
      StartProposal();
    }
  });
}

void PaxosNode::HandlePromise(int from, const PaxosPromise& message) {
  if (decided_.has_value() || in_phase2_ || message.ballot != current_ballot_) {
    return;
  }
  promises_.emplace(from, message);
  if (static_cast<int>(promises_.size()) < config_.q_prepare) {
    return;
  }
  // Phase 2: adopt the highest-ballot accepted value among the promises, else our own.
  in_phase2_ = true;
  uint64_t best_ballot = 0;
  phase2_value_ = proposal_;
  for (const auto& [sender, promise] : promises_) {
    if (promise.accepted_ballot > best_ballot) {
      best_ballot = promise.accepted_ballot;
      phase2_value_ = promise.accepted_value;
    }
  }
  auto accept = std::make_shared<PaxosAccept>();
  accept->ballot = current_ballot_;
  accept->value = phase2_value_;
  BroadcastAll(accept, /*include_self=*/true);
}

void PaxosNode::HandleAccepted(int from, const PaxosAccepted& message) {
  if (decided_.has_value() || !in_phase2_ || message.ballot != current_ballot_) {
    return;
  }
  accepted_votes_.insert(from);
  if (static_cast<int>(accepted_votes_.size()) >= config_.q_accept) {
    Decide(phase2_value_);
    auto decide = std::make_shared<PaxosDecide>();
    decide->value = *decided_;
    BroadcastAll(decide, /*include_self=*/false);
  }
}

void PaxosNode::HandleNack(const PaxosNack& message) {
  if (decided_.has_value() || message.ballot != current_ballot_) {
    return;
  }
  // Our ballot lost; jump past the winner and retry after backoff.
  attempt_ = message.promised_ballot / static_cast<uint64_t>(config_.n) + 1;
  ScheduleRetry();
}

// ---------------------------------------------------------------------------
// Acceptor

void PaxosNode::HandlePrepare(int from, const PaxosPrepare& message) {
  if (message.ballot > promised_ballot_) {
    promised_ballot_ = message.ballot;
    PersistAcceptorState();  // The promise binds only once it is on disk.
    auto promise = std::make_shared<PaxosPromise>();
    promise->ballot = message.ballot;
    promise->accepted_ballot = accepted_ballot_;
    if (accepted_value_.has_value()) {
      promise->accepted_value = *accepted_value_;
    }
    SendTo(from, std::move(promise));
    return;
  }
  auto nack = std::make_shared<PaxosNack>();
  nack->ballot = message.ballot;
  nack->promised_ballot = promised_ballot_;
  SendTo(from, std::move(nack));
}

void PaxosNode::HandleAccept(int from, const PaxosAccept& message) {
  if (message.ballot >= promised_ballot_) {
    promised_ballot_ = message.ballot;
    accepted_ballot_ = message.ballot;
    accepted_value_ = message.value;
    PersistAcceptorState();  // The accept is ACKed by the response below.
    auto accepted = std::make_shared<PaxosAccepted>();
    accepted->ballot = message.ballot;
    accepted->value = message.value;
    SendTo(from, std::move(accepted));
    return;
  }
  auto nack = std::make_shared<PaxosNack>();
  nack->ballot = message.ballot;
  nack->promised_ballot = promised_ballot_;
  SendTo(from, std::move(nack));
}

// ---------------------------------------------------------------------------
// Learner

void PaxosNode::PersistAcceptorState() {
  durable_.Write(PaxosDurableImage{promised_ballot_, accepted_ballot_, accepted_value_});
}

void PaxosNode::HandleDecide(const PaxosDecide& message) { Decide(message.value); }

void PaxosNode::Decide(const Command& value) {
  if (decided_.has_value()) {
    return;  // Idempotent; the checker would catch a change of mind anyway.
  }
  decided_ = value;
  ++retry_epoch_;  // Silence pending retries.
  checker_->RecordCommit(id(), /*slot=*/1, value);
}

}  // namespace probcon
