// Ben-Or randomized binary consensus (PODC '83) — the paper's §4 example of consensus
// "beyond quorums": termination is probabilistic by design, which makes it the natural
// historical ancestor of probability-native protocols.
//
// Crash-tolerant variant for n > 2f. Each round has two phases:
//   Phase 1 (report):  broadcast R(round, value); await n - f reports. If more than n/2 carry
//                      the same v, propose v in phase 2, else propose "?" (none).
//   Phase 2 (propose): broadcast P(round, proposal); await n - f proposals. If >= f + 1 carry
//                      the same v: DECIDE v. Else if >= 1 carries v: adopt v. Else: flip a
//                      fair local coin.
//
// Expected round count is exponential in n for adversarial schedules but tiny for random
// ones; bench/probnative_ablation measures the distribution.

#ifndef PROBCON_SRC_CONSENSUS_BENOR_BENOR_NODE_H_
#define PROBCON_SRC_CONSENSUS_BENOR_BENOR_NODE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>

#include "src/sim/process.h"

namespace probcon {

struct BenOrReport final : public SimMessage {
  uint64_t round = 0;
  int value = 0;  // 0 or 1.

  std::string Describe() const override;
};

struct BenOrProposal final : public SimMessage {
  uint64_t round = 0;
  std::optional<int> value;  // nullopt = "?".

  std::string Describe() const override;
};

class BenOrNode final : public Process {
 public:
  // `fault_tolerance` is the f the protocol waits out (awaits n-f messages); requires
  // n > 2f for correctness.
  BenOrNode(Simulator* simulator, Network* network, int id, int fault_tolerance,
            int initial_value);

  bool decided() const { return decided_.has_value(); }
  int decision() const;
  uint64_t decision_round() const { return decision_round_; }
  SimTime decision_time() const { return decision_time_; }

 protected:
  void OnStart() override;
  void OnMessage(int from, const std::shared_ptr<const SimMessage>& message) override;

 private:
  void BeginRound();
  void MaybeFinishPhase1();
  void MaybeFinishPhase2();

  int fault_tolerance_;
  int value_;
  uint64_t round_ = 1;
  bool in_phase2_ = false;
  std::optional<int> decided_;
  uint64_t decision_round_ = 0;
  SimTime decision_time_ = 0.0;

  // round -> sender -> value.
  std::map<uint64_t, std::map<int, int>> reports_;
  std::map<uint64_t, std::map<int, std::optional<int>>> proposals_;
};

}  // namespace probcon

#endif  // PROBCON_SRC_CONSENSUS_BENOR_BENOR_NODE_H_
