#include "src/consensus/benor/benor_node.h"

#include <sstream>

#include "src/common/check.h"

namespace probcon {
namespace {

// Decided nodes keep participating for this many extra rounds so laggards can finish, then
// go quiet to bound message load.
constexpr uint64_t kLingerRounds = 30;

}  // namespace

std::string BenOrReport::Describe() const {
  std::ostringstream os;
  os << "BenOrReport(r=" << round << ", v=" << value << ")";
  return os.str();
}

std::string BenOrProposal::Describe() const {
  std::ostringstream os;
  os << "BenOrProposal(r=" << round << ", v=" << (value.has_value() ? std::to_string(*value) : "?")
     << ")";
  return os.str();
}

BenOrNode::BenOrNode(Simulator* simulator, Network* network, int id, int fault_tolerance,
                     int initial_value)
    : Process(simulator, network, id),
      fault_tolerance_(fault_tolerance),
      value_(initial_value) {
  CHECK(initial_value == 0 || initial_value == 1);
  CHECK_GE(fault_tolerance, 0);
  CHECK_GT(network->node_count(), 2 * fault_tolerance) << "Ben-Or needs n > 2f";
}

int BenOrNode::decision() const {
  CHECK(decided_.has_value()) << "node" << id() << "has not decided";
  return *decided_;
}

void BenOrNode::OnStart() { BeginRound(); }

void BenOrNode::BeginRound() {
  if (decided_.has_value() && round_ > decision_round_ + kLingerRounds) {
    return;
  }
  simulator().tracer().RoundAdvanced(id(), round_);
  simulator().tracer().CounterAdd("benor.rounds");
  in_phase2_ = false;
  auto report = std::make_shared<BenOrReport>();
  report->round = round_;
  report->value = value_;
  BroadcastAll(report, /*include_self=*/true);
}

void BenOrNode::OnMessage(int from, const std::shared_ptr<const SimMessage>& message) {
  if (const auto* report = dynamic_cast<const BenOrReport*>(message.get())) {
    reports_[report->round][from] = report->value;
    MaybeFinishPhase1();
  } else if (const auto* proposal = dynamic_cast<const BenOrProposal*>(message.get())) {
    proposals_[proposal->round][from] = proposal->value;
    MaybeFinishPhase2();
  }
}

void BenOrNode::MaybeFinishPhase1() {
  if (in_phase2_) {
    return;
  }
  const int n = cluster_size();
  const auto& round_reports = reports_[round_];
  if (static_cast<int>(round_reports.size()) < n - fault_tolerance_) {
    return;
  }
  int ones = 0;
  for (const auto& [sender, value] : round_reports) {
    ones += value;
  }
  const int total = static_cast<int>(round_reports.size());
  auto proposal = std::make_shared<BenOrProposal>();
  proposal->round = round_;
  if (2 * ones > n) {
    proposal->value = 1;
  } else if (2 * (total - ones) > n) {
    proposal->value = 0;
  } else {
    proposal->value = std::nullopt;
  }
  in_phase2_ = true;
  BroadcastAll(proposal, /*include_self=*/true);
}

void BenOrNode::MaybeFinishPhase2() {
  if (!in_phase2_) {
    return;
  }
  const int n = cluster_size();
  const auto& round_proposals = proposals_[round_];
  if (static_cast<int>(round_proposals.size()) < n - fault_tolerance_) {
    return;
  }
  int count[2] = {0, 0};
  for (const auto& [sender, value] : round_proposals) {
    if (value.has_value()) {
      ++count[*value];
    }
  }
  for (int v = 0; v < 2; ++v) {
    if (count[v] >= fault_tolerance_ + 1) {
      if (!decided_.has_value()) {
        decided_ = v;
        decision_round_ = round_;
        decision_time_ = Now();
        Tracer& tracer = simulator().tracer();
        tracer.Decided(id(), round_, v);
        tracer.CounterAdd("benor.decisions");
        if (tracer.enabled()) {
          tracer.HistogramRecord(
              "benor.decision_round", static_cast<double>(round_),
              HistogramOptions::Fixed({1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0}));
        }
      }
      value_ = v;
      ++round_;
      BeginRound();
      return;
    }
  }
  if (count[0] + count[1] >= 1) {
    value_ = count[1] > 0 ? 1 : 0;
  } else {
    value_ = rng().NextBernoulli(0.5) ? 1 : 0;  // The "free choice" coin.
  }
  ++round_;
  BeginRound();
}

}  // namespace probcon
