#include "src/consensus/raft/raft_node.h"

#include <algorithm>

#include "src/common/check.h"
#include "src/common/logging.h"

namespace probcon {

RaftNode::RaftNode(Simulator* simulator, Network* network, int id, const RaftConfig& config,
                   const RaftTimingConfig& timing, SafetyChecker* checker,
                   const RaftReliabilityPolicy& policy)
    : Process(simulator, network, id),
      config_(config),
      timing_(timing),
      checker_(checker),
      policy_(policy) {
  CHECK_EQ(config.n, network->node_count());
  CHECK(config.q_per >= 1 && config.q_per <= config.n);
  CHECK(config.q_vc >= 1 && config.q_vc <= config.n);
  CHECK(checker != nullptr);
  CHECK_GT(policy.election_priority, 0.0);
  next_index_.assign(config.n, 1);
  match_index_.assign(config.n, 0);
}

void RaftNode::OnStart() { ResetElectionTimer(); }

void RaftNode::OnRecover() {
  // Boot from disk: the last-synced image. With write-through durability it equals the
  // in-memory hard state and this is a no-op; with a batched fsync policy the unsynced
  // suffix (log tail, possibly a term bump or vote) is gone, and the node rejoins as a
  // lagging follower that must be repaired by the leader.
  const uint64_t lost = durable_.Restore();
  if (lost > 0) {
    const RaftDurableImage& image = durable_.synced();
    current_term_ = image.term;
    voted_for_ = image.voted_for;
    log_ = image.log;
    snapshot_last_index_ = image.snapshot_last_index;
    snapshot_last_term_ = image.snapshot_last_term;
    simulator().tracer().StateLost(id(), lost);
    simulator().tracer().CounterAdd("raft.lossy_restarts");
  }
  // Volatile state resets.
  role_ = Role::kFollower;
  commit_index_ = snapshot_last_index_;  // The snapshot is durable committed state.
  applied_index_ = snapshot_last_index_;
  votes_received_.clear();
  DropPendingReads();
  std::fill(next_index_.begin(), next_index_.end(), LastLogIndex() + 1);
  std::fill(match_index_.begin(), match_index_.end(), 0);
  ++election_epoch_;
  ResetElectionTimer();
}

void RaftNode::OnMessage(int from, const std::shared_ptr<const SimMessage>& message) {
  if (const auto* vote_req = dynamic_cast<const RequestVoteRequest*>(message.get())) {
    HandleRequestVote(from, *vote_req);
  } else if (const auto* vote_resp = dynamic_cast<const RequestVoteResponse*>(message.get())) {
    HandleVoteResponse(from, *vote_resp);
  } else if (const auto* append = dynamic_cast<const AppendEntriesRequest*>(message.get())) {
    HandleAppendEntries(from, *append);
  } else if (const auto* append_resp =
                 dynamic_cast<const AppendEntriesResponse*>(message.get())) {
    HandleAppendResponse(from, *append_resp);
  } else if (const auto* snapshot =
                 dynamic_cast<const InstallSnapshotRequest*>(message.get())) {
    HandleInstallSnapshot(from, *snapshot);
  } else if (const auto* proposal = dynamic_cast<const ClientProposal*>(message.get())) {
    HandleClientProposal(*proposal);
  } else {
    LOG(Warning) << "raft node " << id() << " ignoring " << message->Describe();
  }
}

// ---------------------------------------------------------------------------
// Role transitions

void RaftNode::BecomeFollower(uint64_t term) {
  if (term > current_term_) {
    current_term_ = term;
    voted_for_ = -1;
    PersistHardState();
  }
  role_ = Role::kFollower;
  votes_received_.clear();
  DropPendingReads();  // Leadership (if any) is gone; unconfirmed reads must not be served.
  ResetElectionTimer();
}

void RaftNode::StartElection() {
  role_ = Role::kCandidate;
  ++current_term_;
  voted_for_ = id();
  PersistHardState();
  votes_received_.clear();
  votes_received_.insert(id());
  ResetElectionTimer();
  simulator().tracer().ElectionStarted(id(), current_term_);
  simulator().tracer().CounterAdd("raft.elections_started");

  auto request = std::make_shared<RequestVoteRequest>();
  request->term = current_term_;
  request->candidate = id();
  request->last_log_index = LastLogIndex();
  request->last_log_term = LastLogTerm();
  BroadcastAll(request, /*include_self=*/false);

  // Degenerate single-voter quorum.
  if (static_cast<int>(votes_received_.size()) >= config_.q_vc) {
    BecomeLeader();
  }
}

void RaftNode::BecomeLeader() {
  CHECK(role_ == Role::kCandidate);
  role_ = Role::kLeader;
  simulator().tracer().LeaderElected(id(), current_term_);
  simulator().tracer().CounterAdd("raft.leaders_elected");
  std::fill(next_index_.begin(), next_index_.end(), LastLogIndex() + 1);
  std::fill(match_index_.begin(), match_index_.end(), 0);
  match_index_[id()] = LastLogIndex();
  BroadcastHeartbeats();
}

// ---------------------------------------------------------------------------
// Handlers

void RaftNode::HandleRequestVote(int from, const RequestVoteRequest& request) {
  if (request.term > current_term_) {
    BecomeFollower(request.term);
  }
  auto response = std::make_shared<RequestVoteResponse>();
  response->term = current_term_;
  response->granted = false;
  if (request.term == current_term_ && (voted_for_ == -1 || voted_for_ == request.candidate)) {
    // Up-to-date check (§5.4.1 of the Raft paper).
    const bool candidate_up_to_date =
        request.last_log_term > LastLogTerm() ||
        (request.last_log_term == LastLogTerm() && request.last_log_index >= LastLogIndex());
    if (candidate_up_to_date) {
      voted_for_ = request.candidate;
      PersistHardState();  // A vote must hit disk before the response leaves.
      response->granted = true;
      ResetElectionTimer();
    }
  }
  SendTo(from, std::move(response));
}

void RaftNode::HandleVoteResponse(int from, const RequestVoteResponse& response) {
  if (response.term > current_term_) {
    BecomeFollower(response.term);
    return;
  }
  if (role_ != Role::kCandidate || response.term != current_term_ || !response.granted) {
    return;
  }
  votes_received_.insert(from);
  if (static_cast<int>(votes_received_.size()) >= config_.q_vc) {
    BecomeLeader();
  }
}

void RaftNode::HandleAppendEntries(int from, const AppendEntriesRequest& request) {
  auto response = std::make_shared<AppendEntriesResponse>();
  response->term = current_term_;
  response->success = false;
  if (request.term < current_term_) {
    SendTo(from, std::move(response));
    return;
  }
  // Valid leader for this term (or newer): step down / stay follower, reset timer.
  if (request.term > current_term_ || role_ != Role::kFollower) {
    BecomeFollower(request.term);
  } else {
    ResetElectionTimer();
  }
  response->term = current_term_;

  // Log consistency check at prev_log_index.
  if (request.prev_log_index > LastLogIndex() ||
      request.prev_log_index < snapshot_last_index_ ||
      (request.prev_log_index > snapshot_last_index_ &&
       TermAt(request.prev_log_index) != request.prev_log_term)) {
    SendTo(from, std::move(response));
    return;
  }
  // Append: delete conflicting suffix, then add new entries.
  uint64_t index = request.prev_log_index;
  for (const LogEntry& entry : request.entries) {
    ++index;
    if (index <= snapshot_last_index_) {
      continue;  // Already compacted into the snapshot; necessarily committed.
    }
    if (index <= LastLogIndex()) {
      if (TermAt(index) != entry.term) {
        // With Theorem 3.2-violating quorum sizes this can truncate committed entries; let it
        // happen and re-report the divergent commits so the SafetyChecker records the
        // violation (experiment E8's negative control) instead of aborting the run.
        if (index <= commit_index_) {
          commit_index_ = index - 1;
          applied_index_ = std::min(applied_index_, commit_index_);
        }
        log_.resize(index - snapshot_last_index_ - 1);
        log_.push_back(entry);
      }
    } else {
      log_.push_back(entry);
    }
  }
  response->success = true;
  response->match_index = index;
  PersistHardState();  // The appended entries are ACKed by this response.

  if (request.leader_commit > commit_index_) {
    commit_index_ = std::min<uint64_t>(request.leader_commit, LastLogIndex());
    ApplyCommitted();
  }
  SendTo(from, std::move(response));
}

void RaftNode::HandleAppendResponse(int from, const AppendEntriesResponse& response) {
  if (response.term > current_term_) {
    BecomeFollower(response.term);
    return;
  }
  if (role_ != Role::kLeader || response.term != current_term_) {
    return;
  }
  if (response.success) {
    match_index_[from] = std::max(match_index_[from], response.match_index);
    next_index_[from] = match_index_[from] + 1;
    AdvanceCommitIndex();
    AckPendingReads(from);
  } else {
    // Log repair: back off and retry immediately.
    if (next_index_[from] > 1) {
      --next_index_[from];
    }
    SendAppendEntries(from);
  }
}

void RaftNode::HandleInstallSnapshot(int from, const InstallSnapshotRequest& request) {
  auto response = std::make_shared<AppendEntriesResponse>();
  response->term = current_term_;
  response->success = false;
  if (request.term < current_term_) {
    SendTo(from, std::move(response));
    return;
  }
  if (request.term > current_term_ || role_ != Role::kFollower) {
    BecomeFollower(request.term);
  } else {
    ResetElectionTimer();
  }
  response->term = current_term_;

  if (request.last_included_index <= snapshot_last_index_) {
    // Stale snapshot; we already have at least this much.
    response->success = true;
    response->match_index = snapshot_last_index_;
    SendTo(from, std::move(response));
    return;
  }
  if (request.last_included_index <= LastLogIndex() &&
      TermAt(request.last_included_index) == request.last_included_term) {
    // Retain the matching suffix beyond the snapshot point (§7 of the Raft paper).
    log_.erase(log_.begin(),
               log_.begin() +
                   static_cast<long>(request.last_included_index - snapshot_last_index_));
  } else {
    log_.clear();
  }
  snapshot_last_index_ = request.last_included_index;
  snapshot_last_term_ = request.last_included_term;
  PersistHardState();
  if (commit_index_ < snapshot_last_index_) {
    commit_index_ = snapshot_last_index_;
  }
  // Slots covered by the snapshot are durably committed on this node without per-slot
  // commands to report; skip the applied cursor past them.
  if (applied_index_ < snapshot_last_index_) {
    applied_index_ = snapshot_last_index_;
  }
  ApplyCommitted();
  response->success = true;
  response->match_index = snapshot_last_index_;
  SendTo(from, std::move(response));
}

void RaftNode::HandleClientProposal(const ClientProposal& proposal) {
  if (role_ != Role::kLeader) {
    return;  // Clients spray all nodes; only the leader acts.
  }
  // Dedup: drop if the command is already in the log (client retries).
  for (const LogEntry& entry : log_) {
    if (entry.command.id == proposal.command.id) {
      return;
    }
  }
  log_.push_back(LogEntry{current_term_, proposal.command});
  PersistHardState();
  match_index_[id()] = LastLogIndex();
  AdvanceCommitIndex();  // q_per == 1 commits immediately.
  for (int peer = 0; peer < config_.n; ++peer) {
    if (peer != id()) {
      SendAppendEntries(peer);
    }
  }
}

// ---------------------------------------------------------------------------
// Leader machinery

void RaftNode::SendAppendEntries(int peer) {
  const uint64_t next = next_index_[peer];
  if (next <= snapshot_last_index_) {
    // The entries this peer needs were compacted away; ship the snapshot point instead.
    auto snapshot = std::make_shared<InstallSnapshotRequest>();
    snapshot->term = current_term_;
    snapshot->leader = id();
    snapshot->last_included_index = snapshot_last_index_;
    snapshot->last_included_term = snapshot_last_term_;
    SendTo(peer, std::move(snapshot));
    return;
  }
  auto request = std::make_shared<AppendEntriesRequest>();
  request->term = current_term_;
  request->leader = id();
  request->prev_log_index = next - 1;
  request->prev_log_term = request->prev_log_index == 0 ? 0 : TermAt(request->prev_log_index);
  for (uint64_t i = next; i <= LastLogIndex(); ++i) {
    request->entries.push_back(EntryAt(i));
  }
  request->leader_commit = commit_index_;
  SendTo(peer, std::move(request));
}

void RaftNode::BroadcastHeartbeats() {
  if (role_ != Role::kLeader) {
    return;
  }
  for (int peer = 0; peer < config_.n; ++peer) {
    if (peer != id()) {
      SendAppendEntries(peer);
    }
  }
  SetTimer(timing_.heartbeat_interval, [this]() { BroadcastHeartbeats(); });
}

void RaftNode::AdvanceCommitIndex() {
  CHECK(role_ == Role::kLeader);
  // Highest index replicated on >= q_per nodes with an entry from the current term.
  for (uint64_t candidate = LastLogIndex(); candidate > commit_index_; --candidate) {
    if (TermAt(candidate) != current_term_) {
      break;  // §5.4.2: only current-term entries commit by counting.
    }
    int replicas = 0;
    uint64_t replicating_set = 0;
    for (int peer = 0; peer < config_.n; ++peer) {
      if (match_index_[peer] >= candidate) {
        ++replicas;
        replicating_set |= uint64_t{1} << peer;
      }
    }
    const bool durable_member_present =
        policy_.required_commit_members == 0 ||
        (replicating_set & policy_.required_commit_members) != 0;
    if (replicas >= config_.q_per && durable_member_present) {
      commit_index_ = candidate;
      ApplyCommitted();
      break;
    }
  }
}

// ---------------------------------------------------------------------------
// Linearizable reads

bool RaftNode::RequestRead(ReadCallback callback) {
  CHECK(callback != nullptr);
  if (crashed() || role_ != Role::kLeader) {
    return false;
  }
  PendingRead read;
  read.read_index = commit_index_;
  read.term = current_term_;
  read.callback = std::move(callback);
  if (config_.q_vc <= 1) {
    read.callback(read.read_index);  // Degenerate single-voter quorum: already confirmed.
    return true;
  }
  pending_reads_.push_back(std::move(read));
  // Kick a confirmation round immediately instead of waiting for the next heartbeat tick.
  for (int peer = 0; peer < config_.n; ++peer) {
    if (peer != id()) {
      SendAppendEntries(peer);
    }
  }
  return true;
}

void RaftNode::AckPendingReads(int from) {
  if (pending_reads_.empty()) {
    return;
  }
  std::vector<PendingRead> still_pending;
  for (auto& read : pending_reads_) {
    if (read.term != current_term_) {
      continue;  // Stale; drop without serving.
    }
    read.acks.insert(from);
    // Self plus q_vc - 1 confirming peers re-establishes exclusive leadership for this term.
    if (static_cast<int>(read.acks.size()) + 1 >= config_.q_vc) {
      read.callback(read.read_index);
    } else {
      still_pending.push_back(std::move(read));
    }
  }
  pending_reads_ = std::move(still_pending);
}

void RaftNode::DropPendingReads() { pending_reads_.clear(); }

// ---------------------------------------------------------------------------
// Helpers

void RaftNode::ResetElectionTimer() {
  ++election_epoch_;
  const uint64_t epoch = election_epoch_;
  const SimTime timeout =
      policy_.election_priority *
      (timing_.election_timeout_min +
       (timing_.election_timeout_max - timing_.election_timeout_min) * rng().NextDouble());
  SetTimer(timeout, [this, epoch]() {
    if (election_epoch_ == epoch && role_ != Role::kLeader) {
      StartElection();
    }
  });
}

void RaftNode::ApplyCommitted() {
  Tracer& tracer = simulator().tracer();
  while (applied_index_ < commit_index_) {
    ++applied_index_;
    tracer.Commit(id(), applied_index_);
    tracer.CounterAdd("raft.commits");
    checker_->RecordCommit(id(), applied_index_, EntryAt(applied_index_).command);
  }
  MaybeSnapshot();
}

void RaftNode::MaybeSnapshot() {
  if (timing_.snapshot_threshold == 0 ||
      applied_index_ - snapshot_last_index_ < timing_.snapshot_threshold) {
    return;
  }
  const uint64_t new_last = applied_index_;
  snapshot_last_term_ = TermAt(new_last);
  log_.erase(log_.begin(),
             log_.begin() + static_cast<long>(new_last - snapshot_last_index_));
  snapshot_last_index_ = new_last;
  PersistHardState();
  durable_.Sync();  // Compaction implies an fsync: the snapshot replaces the prefix.
  simulator().tracer().SnapshotTaken(id(), snapshot_last_index_);
  simulator().tracer().CounterAdd("raft.snapshots");
}

void RaftNode::PersistHardState() {
  durable_.Write(RaftDurableImage{current_term_, voted_for_, log_, snapshot_last_index_,
                                  snapshot_last_term_});
}

uint64_t RaftNode::TermAt(uint64_t index) const {
  DCHECK(index >= snapshot_last_index_ && index <= LastLogIndex());
  if (index == snapshot_last_index_) {
    return snapshot_last_term_;
  }
  return log_[index - snapshot_last_index_ - 1].term;
}

const LogEntry& RaftNode::EntryAt(uint64_t index) const {
  DCHECK(index > snapshot_last_index_ && index <= LastLogIndex());
  return log_[index - snapshot_last_index_ - 1];
}

}  // namespace probcon
