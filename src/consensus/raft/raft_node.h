// Raft consensus node (Ongaro & Ousterhout) with flexible quorum sizes.
//
// A faithful single-decree-per-slot Raft: randomized election timeouts, RequestVote with
// up-to-date log checks, AppendEntries log repair via nextIndex backoff, leader commit on a
// persistence quorum of matching replicas, follower commit via leaderCommit.
//
// Two deliberate extensions for this repository:
//   * Quorum sizes are parameters (RaftConfig): the election quorum |Q_vc| and the commit
//     quorum |Q_per| may differ from majorities, Flexible-Paxos style. Misconfigured quorums
//     (violating Theorem 3.2's structural conditions) run happily and produce real safety
//     violations — which the SafetyChecker catches; that is experiment E8's negative control.
//   * Crash/recovery separates durable state (term, vote, log) from volatile state, so the
//     failure injector can model restart-with-disk.
//
// Time unit: milliseconds.

#ifndef PROBCON_SRC_CONSENSUS_RAFT_RAFT_NODE_H_
#define PROBCON_SRC_CONSENSUS_RAFT_RAFT_NODE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <set>
#include <vector>

#include "src/analysis/protocol_spec.h"
#include "src/consensus/common/durable_state.h"
#include "src/consensus/common/safety_checker.h"
#include "src/consensus/common/types.h"
#include "src/consensus/raft/raft_messages.h"
#include "src/sim/process.h"

namespace probcon {

struct RaftTimingConfig {
  SimTime election_timeout_min = 150.0;
  SimTime election_timeout_max = 300.0;
  SimTime heartbeat_interval = 50.0;
  // Log compaction: snapshot once this many entries have been applied past the previous
  // snapshot point (0 = never compact). Stragglers whose next entry was compacted away
  // receive InstallSnapshot.
  uint64_t snapshot_threshold = 0;
};

// Fault-curve-aware protocol extensions (paper §4), both optional:
//  * required_commit_members: if nonzero, the leader only advances the commit index once the
//    replicating set includes at least one member of this bitmask — the "quorums must include
//    a reliable node" durability policy of experiment E4, enforced by the running protocol.
//  * election_priority: multiplies this node's election timeout; < 1 makes the node time out
//    first and win elections preferentially (reliability-aware leader placement).
struct RaftReliabilityPolicy {
  uint64_t required_commit_members = 0;
  double election_priority = 1.0;
};

// The hard state §5 of the Raft paper requires on stable storage before responding.
struct RaftDurableImage {
  uint64_t term = 0;
  int voted_for = -1;
  std::vector<LogEntry> log;
  uint64_t snapshot_last_index = 0;
  uint64_t snapshot_last_term = 0;
};

class RaftNode final : public Process {
 public:
  enum class Role { kFollower, kCandidate, kLeader };

  RaftNode(Simulator* simulator, Network* network, int id, const RaftConfig& config,
           const RaftTimingConfig& timing, SafetyChecker* checker,
           const RaftReliabilityPolicy& policy = {});

  using ReadCallback = std::function<void(uint64_t read_index)>;

  // Linearizable read barrier (the Raft dissertation's ReadIndex, §6.4): captures the commit
  // index, confirms leadership with a fresh quorum round, then invokes `callback` with the
  // index a read must be applied at to be linearizable. Returns false immediately (callback
  // never runs) if this node is not leader; a callback also never fires if leadership is
  // lost or the node crashes before confirmation — the caller retries elsewhere.
  bool RequestRead(ReadCallback callback);

  // Storage model: hard state (term, vote, log, snapshot point) round-trips through a
  // DurableCell on every mutation; a restart boots from the last-synced image. The default
  // write-through policy loses nothing; a batched policy (set by the chaos engine's
  // durability-lapse regime) makes a restart drop the unsynced suffix — the protocol must
  // then re-fetch it from the leader like any lagging follower.
  void SetDurabilityPolicy(const DurabilityPolicy& policy) { durable_.SetPolicy(policy); }
  const DurableCell<RaftDurableImage>& durable() const { return durable_; }

  Role role() const { return role_; }
  uint64_t current_term() const { return current_term_; }
  uint64_t commit_index() const { return commit_index_; }
  // The retained log suffix: entries (snapshot_last_index, LastLogIndex]. With compaction
  // disabled this is the whole log, 1-based via log()[i-1].
  const std::vector<LogEntry>& log() const { return log_; }
  uint64_t snapshot_last_index() const { return snapshot_last_index_; }
  bool is_leader() const { return role_ == Role::kLeader; }

 protected:
  void OnStart() override;
  void OnMessage(int from, const std::shared_ptr<const SimMessage>& message) override;
  void OnRecover() override;

 private:
  // --- Role transitions ---
  void BecomeFollower(uint64_t term);
  void StartElection();
  void BecomeLeader();

  // --- Handlers ---
  void HandleRequestVote(int from, const RequestVoteRequest& request);
  void HandleVoteResponse(int from, const RequestVoteResponse& response);
  void HandleAppendEntries(int from, const AppendEntriesRequest& request);
  void HandleAppendResponse(int from, const AppendEntriesResponse& response);
  void HandleInstallSnapshot(int from, const InstallSnapshotRequest& request);
  void HandleClientProposal(const ClientProposal& proposal);

  // --- Leader machinery ---
  void SendAppendEntries(int peer);
  void BroadcastHeartbeats();
  void AdvanceCommitIndex();

  // --- Linearizable reads ---
  struct PendingRead {
    uint64_t read_index = 0;
    uint64_t term = 0;
    std::set<int> acks;  // Peers that confirmed our leadership since the read arrived.
    ReadCallback callback;
  };
  void AckPendingReads(int from);
  void DropPendingReads();

  // --- Helpers ---
  void ResetElectionTimer();
  void ApplyCommitted();
  void MaybeSnapshot();
  // Mirrors the durable members into the DurableCell; called after every hard-state
  // mutation, i.e. at the points a real implementation would write (and maybe fsync) disk.
  void PersistHardState();
  uint64_t LastLogIndex() const { return snapshot_last_index_ + log_.size(); }
  uint64_t LastLogTerm() const {
    return log_.empty() ? snapshot_last_term_ : log_.back().term;
  }
  // Term/entry lookups for global 1-based indices; `index` must be in the retained range.
  uint64_t TermAt(uint64_t index) const;
  const LogEntry& EntryAt(uint64_t index) const;

  RaftConfig config_;
  RaftTimingConfig timing_;
  SafetyChecker* checker_;
  RaftReliabilityPolicy policy_;

  // Durable state (survives Crash/Recover up to the fsync boundary; see durable_).
  uint64_t current_term_ = 0;
  int voted_for_ = -1;
  std::vector<LogEntry> log_;  // Entries (snapshot_last_index_, snapshot_last_index_+size].
  uint64_t snapshot_last_index_ = 0;  // Compacted prefix boundary (0 = no snapshot).
  uint64_t snapshot_last_term_ = 0;
  DurableCell<RaftDurableImage> durable_;

  // Volatile state.
  Role role_ = Role::kFollower;
  uint64_t commit_index_ = 0;
  uint64_t applied_index_ = 0;
  uint64_t election_epoch_ = 0;  // Invalidates stale election timers.
  std::set<int> votes_received_;
  std::vector<uint64_t> next_index_;   // Leader: per-peer next entry to send.
  std::vector<uint64_t> match_index_;  // Leader: per-peer highest replicated index.
  std::vector<PendingRead> pending_reads_;
};

}  // namespace probcon

#endif  // PROBCON_SRC_CONSENSUS_RAFT_RAFT_NODE_H_
