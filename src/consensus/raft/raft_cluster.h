// Turn-key Raft cluster harness: builds simulator + network + nodes + safety checker, sprays
// client commands, and exposes run-level metrics. This is the unit the E8 validation bench
// and the examples drive.

#ifndef PROBCON_SRC_CONSENSUS_RAFT_RAFT_CLUSTER_H_
#define PROBCON_SRC_CONSENSUS_RAFT_RAFT_CLUSTER_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/analysis/protocol_spec.h"
#include "src/consensus/common/safety_checker.h"
#include "src/consensus/raft/raft_node.h"
#include "src/sim/network.h"
#include "src/sim/simulator.h"

namespace probcon {

struct RaftClusterOptions {
  RaftConfig config;
  RaftTimingConfig timing;
  // Empty = default policy everywhere; else one entry per node (reliability-aware variant).
  std::vector<RaftReliabilityPolicy> policies;
  SimTime network_latency_min = 5.0;
  SimTime network_latency_max = 15.0;
  double network_drop_probability = 0.0;
  // Overrides the uniform model above when set (e.g. MatrixLatencyModel for WAN topologies).
  std::function<std::unique_ptr<NetworkModel>()> network_model_factory;
  SimTime client_interval = 100.0;  // One command submitted every interval.
  // Payload for the i-th client command; defaults to "op-<id>". Lets applications drive a
  // real workload (e.g. the KV grammar in src/consensus/common/kv_state_machine.h).
  std::function<std::string(uint64_t id)> payload_generator;
  uint64_t seed = 1;
};

class RaftCluster {
 public:
  explicit RaftCluster(const RaftClusterOptions& options);

  // Starts nodes and the client loop; commands are sprayed to every node (the leader acts).
  void Start();

  // Runs the simulation until `until` (ms).
  void RunUntil(SimTime until);

  Simulator& simulator() { return simulator_; }
  Network& network() { return *network_; }
  SafetyChecker& checker() { return *checker_; }
  RaftNode& node(int i) { return *nodes_[i]; }
  int size() const { return static_cast<int>(nodes_.size()); }

  // Pointers for the failure injector.
  std::vector<Process*> processes();

  // Id of the current leader with the highest term, or -1.
  int LeaderId() const;

 private:
  void SubmitNextCommand();

  RaftClusterOptions options_;
  Simulator simulator_;
  std::unique_ptr<Network> network_;
  std::unique_ptr<SafetyChecker> checker_;
  std::vector<std::unique_ptr<RaftNode>> nodes_;
  uint64_t next_command_id_ = 1;
  bool started_ = false;
};

}  // namespace probcon

#endif  // PROBCON_SRC_CONSENSUS_RAFT_RAFT_CLUSTER_H_
