#include "src/consensus/raft/raft_messages.h"

#include <sstream>

namespace probcon {

std::string RequestVoteRequest::Describe() const {
  std::ostringstream os;
  os << "RequestVote(term=" << term << ", candidate=" << candidate << ", lli="
     << last_log_index << ", llt=" << last_log_term << ")";
  return os.str();
}

std::string RequestVoteResponse::Describe() const {
  std::ostringstream os;
  os << "VoteResponse(term=" << term << ", granted=" << granted << ")";
  return os.str();
}

std::string AppendEntriesRequest::Describe() const {
  std::ostringstream os;
  os << "AppendEntries(term=" << term << ", leader=" << leader << ", prev=" << prev_log_index
     << "/" << prev_log_term << ", entries=" << entries.size() << ", commit=" << leader_commit
     << ")";
  return os.str();
}

std::string AppendEntriesResponse::Describe() const {
  std::ostringstream os;
  os << "AppendResponse(term=" << term << ", success=" << success << ", match=" << match_index
     << ")";
  return os.str();
}

std::string InstallSnapshotRequest::Describe() const {
  std::ostringstream os;
  os << "InstallSnapshot(term=" << term << ", leader=" << leader << ", last="
     << last_included_index << "/" << last_included_term << ")";
  return os.str();
}

std::string ClientProposal::Describe() const {
  std::ostringstream os;
  os << "ClientProposal(cmd#" << command.id << ")";
  return os.str();
}

}  // namespace probcon
