#include "src/consensus/raft/raft_cluster.h"

#include <string>

#include "src/common/check.h"
#include "src/consensus/raft/raft_messages.h"

namespace probcon {

RaftCluster::RaftCluster(const RaftClusterOptions& options)
    : options_(options), simulator_(options.seed) {
  CHECK_GT(options.config.n, 0);
  network_ = std::make_unique<Network>(
      &simulator_, options.config.n,
      options.network_model_factory
          ? options.network_model_factory()
          : std::make_unique<UniformLatencyModel>(options.network_latency_min,
                                                  options.network_latency_max,
                                                  options.network_drop_probability));
  CHECK(options.policies.empty() ||
        options.policies.size() == static_cast<size_t>(options.config.n))
      << "policies must be empty or one per node";
  checker_ = std::make_unique<SafetyChecker>(&simulator_);
  for (int i = 0; i < options.config.n; ++i) {
    const RaftReliabilityPolicy policy =
        options.policies.empty() ? RaftReliabilityPolicy{} : options.policies[i];
    nodes_.push_back(std::make_unique<RaftNode>(&simulator_, network_.get(), i,
                                                options.config, options.timing,
                                                checker_.get(), policy));
  }
}

void RaftCluster::Start() {
  CHECK(!started_) << "cluster already started";
  started_ = true;
  for (auto& node : nodes_) {
    node->Start();
  }
  simulator_.Schedule(options_.client_interval, [this]() { SubmitNextCommand(); });
}

void RaftCluster::RunUntil(SimTime until) {
  CHECK(started_) << "call Start() first";
  simulator_.Run(until);
}

std::vector<Process*> RaftCluster::processes() {
  std::vector<Process*> result;
  result.reserve(nodes_.size());
  for (auto& node : nodes_) {
    result.push_back(node.get());
  }
  return result;
}

int RaftCluster::LeaderId() const {
  int leader = -1;
  uint64_t best_term = 0;
  for (const auto& node : nodes_) {
    if (!node->crashed() && node->is_leader() && node->current_term() >= best_term) {
      best_term = node->current_term();
      leader = node->id();
    }
  }
  return leader;
}

void RaftCluster::SubmitNextCommand() {
  Command command;
  command.id = next_command_id_++;
  command.payload = options_.payload_generator ? options_.payload_generator(command.id)
                                               : "op-" + std::to_string(command.id);
  checker_->RecordSubmission(command);

  auto proposal = std::make_shared<ClientProposal>();
  proposal->command = command;
  // Clients don't know the leader; spray everyone. Deliveries route through the network so
  // they respect partitions and latency. Sender id 0 is arbitrary (client traffic is modeled
  // as originating at node 0's switch port).
  for (int node = 0; node < size(); ++node) {
    network_->Send(/*from=*/node, node, proposal);
  }
  simulator_.Schedule(options_.client_interval, [this]() { SubmitNextCommand(); });
}

}  // namespace probcon
