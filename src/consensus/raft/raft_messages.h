// Raft wire messages (Ongaro & Ousterhout), as simulator payloads.

#ifndef PROBCON_SRC_CONSENSUS_RAFT_RAFT_MESSAGES_H_
#define PROBCON_SRC_CONSENSUS_RAFT_RAFT_MESSAGES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/consensus/common/types.h"
#include "src/sim/network.h"

namespace probcon {

struct RequestVoteRequest final : public SimMessage {
  uint64_t term = 0;
  int candidate = 0;
  uint64_t last_log_index = 0;  // 1-based; 0 = empty log.
  uint64_t last_log_term = 0;

  std::string Describe() const override;
};

struct RequestVoteResponse final : public SimMessage {
  uint64_t term = 0;
  bool granted = false;

  std::string Describe() const override;
};

struct AppendEntriesRequest final : public SimMessage {
  uint64_t term = 0;
  int leader = 0;
  uint64_t prev_log_index = 0;
  uint64_t prev_log_term = 0;
  std::vector<LogEntry> entries;
  uint64_t leader_commit = 0;

  std::string Describe() const override;
};

struct AppendEntriesResponse final : public SimMessage {
  uint64_t term = 0;
  bool success = false;
  uint64_t match_index = 0;  // Highest index known replicated when success.

  std::string Describe() const override;
};

// Leader -> straggler: replace your log prefix with my snapshot point (log compaction; §7 of
// the Raft paper, minus the application-state payload, which the harness reconstructs from
// the snapshot index).
struct InstallSnapshotRequest final : public SimMessage {
  uint64_t term = 0;
  int leader = 0;
  uint64_t last_included_index = 0;
  uint64_t last_included_term = 0;

  std::string Describe() const override;
};

// Client command forwarded to a node; non-leaders ignore it.
struct ClientProposal final : public SimMessage {
  Command command;

  std::string Describe() const override;
};

}  // namespace probcon

#endif  // PROBCON_SRC_CONSENSUS_RAFT_RAFT_MESSAGES_H_
