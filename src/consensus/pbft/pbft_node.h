// PBFT replica (Castro & Liskov) with flexible quorum sizes and injectable Byzantine
// behaviours.
//
// Normal case: the view's leader (view mod n) assigns sequence numbers and broadcasts
// pre-prepares; replicas broadcast prepares, collect a non-equivocation quorum |Q_eq| of
// matching prepares (the leader's pre-prepare counts as its prepare), then broadcast commits
// and execute once |Q_per| matching commits arrive. Execution is in sequence order, and every
// executed (slot, command) is reported to the SafetyChecker.
//
// View change: a replica that makes no progress for `progress_timeout` broadcasts a
// VIEW-CHANGE for view+1 carrying its prepared certificates. A replica that sees |Q_vc_t|
// view-change messages for a higher view joins it even if its own timer has not fired (the
// trigger quorum). The new view's leader assembles |Q_vc| view-changes into a NEW-VIEW that
// re-issues the prepared command of highest view per in-flight sequence (no-ops fill gaps).
//
// Byzantine behaviours (ByzantineBehavior) let experiments manufacture the faults the
// analysis assumes: an equivocating leader proposes different commands to different replicas;
// a promiscuous voter prepares/commits everything it hears, enabling conflicting quorums.
// With |Byz| past Theorem 3.1's thresholds, honest replicas commit conflicting commands and
// the SafetyChecker records it — experiment E8's BFT arm.
//
// Time unit: milliseconds.

#ifndef PROBCON_SRC_CONSENSUS_PBFT_PBFT_NODE_H_
#define PROBCON_SRC_CONSENSUS_PBFT_PBFT_NODE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "src/analysis/protocol_spec.h"
#include "src/consensus/common/safety_checker.h"
#include "src/consensus/common/types.h"
#include "src/consensus/pbft/pbft_messages.h"
#include "src/sim/process.h"

namespace probcon {

enum class ByzantineBehavior {
  kHonest,
  kEquivocate,   // As leader, send conflicting pre-prepares; also double-votes.
  kPromiscuous,  // Prepares and commits every proposal it hears, conflicts included.
  kSilent,       // Sends nothing (fail-stop malice).
};

struct PbftTimingConfig {
  SimTime progress_timeout = 400.0;
  SimTime view_change_resend = 300.0;
  // Broadcast a checkpoint every this many executed slots; a |Q_per| certificate of matching
  // checkpoints garbage-collects earlier slot state. 0 = disabled.
  uint64_t checkpoint_interval = 0;
};

class PbftNode final : public Process {
 public:
  PbftNode(Simulator* simulator, Network* network, int id, const PbftConfig& config,
           const PbftTimingConfig& timing, SafetyChecker* checker,
           ByzantineBehavior behavior = ByzantineBehavior::kHonest);

  uint64_t view() const { return view_; }
  bool IsLeader() const { return LeaderOf(view_) == id(); }
  uint64_t executed_count() const { return last_executed_; }
  uint64_t stable_checkpoint() const { return stable_checkpoint_; }
  size_t retained_slot_count() const { return slots_.size(); }
  ByzantineBehavior behavior() const { return behavior_; }

 protected:
  void OnStart() override;
  void OnMessage(int from, const std::shared_ptr<const SimMessage>& message) override;
  void OnRecover() override;

 private:
  struct SlotState {
    // Pre-prepare seen from the leader of `view` (at most one per view is accepted by honest
    // replicas).
    std::map<uint64_t, Command> pre_prepared_by_view;
    // view -> command id -> replicas that sent a prepare.
    std::map<uint64_t, std::map<uint64_t, std::set<int>>> prepares;
    // view -> command id -> replicas that sent a commit.
    std::map<uint64_t, std::map<uint64_t, std::set<int>>> commits;
    // Command text by id, learned from pre-prepares (needed to execute on commit votes).
    std::map<uint64_t, Command> known_commands;
    // Highest-view prepared certificate held locally.
    std::optional<PreparedProof> prepared;
    std::optional<Command> executed;
  };

  int LeaderOf(uint64_t view) const { return static_cast<int>(view % cluster_size()); }

  // --- Normal case ---
  void HandleClientRequest(const PbftClientRequest& request);
  void HandlePrePrepare(int from, const PbftPrePrepare& message);
  void HandlePrepare(int from, const PbftPrepare& message);
  void HandleCommit(int from, const PbftCommit& message);
  void MaybePrepare(uint64_t sequence);
  void MaybeCommit(uint64_t sequence, uint64_t view, uint64_t command_id);
  void MaybeExecute(uint64_t sequence);
  void ExecuteReady();

  // --- Checkpointing ---
  void HandleCheckpoint(int from, const PbftCheckpoint& message);
  void MaybeBroadcastCheckpoint();
  void AdvanceStableCheckpoint(uint64_t sequence);

  // --- View change ---
  void HandleViewChange(int from, const PbftViewChange& message);
  void HandleNewView(int from, const PbftNewView& message);
  void StartViewChange(uint64_t new_view);
  void MaybeAssembleNewView(uint64_t view);
  void ResetProgressTimer();

  // --- Byzantine helpers ---
  void LeadSlot(const Command& command);
  Command FabricateConflict(const Command& original) const;

  PbftConfig config_;
  PbftTimingConfig timing_;
  SafetyChecker* checker_;
  ByzantineBehavior behavior_;

  uint64_t view_ = 0;
  bool in_view_change_ = false;
  uint64_t next_sequence_ = 1;    // Leader-only: next sequence to assign.
  uint64_t last_executed_ = 0;    // Executed prefix (slots 1..last_executed_).
  uint64_t progress_epoch_ = 0;   // Invalidates stale progress timers.
  std::map<uint64_t, SlotState> slots_;
  std::set<uint64_t> seen_commands_;  // Dedup of client requests (leader side).
  // view -> sender -> view-change message.
  std::map<uint64_t, std::map<int, PbftViewChange>> view_changes_;
  std::set<uint64_t> view_change_sent_;  // Views we already voted to enter.
  uint64_t highest_view_change_voted_ = 0;
  // Byzantine voters: (view, command) pairs already echoed per sequence, to bound the storm.
  std::map<uint64_t, std::set<std::pair<uint64_t, uint64_t>>> byz_echoed_;
  // Checkpointing: running digest of the executed history, votes per (sequence, digest),
  // and the latest quorum-certified (stable) checkpoint.
  uint64_t execution_digest_ = 0xCBF29CE484222325ULL;
  std::map<uint64_t, std::map<uint64_t, std::set<int>>> checkpoint_votes_;
  uint64_t stable_checkpoint_ = 0;
};

}  // namespace probcon

#endif  // PROBCON_SRC_CONSENSUS_PBFT_PBFT_NODE_H_
