#include "src/consensus/pbft/pbft_node.h"

#include <algorithm>

#include "src/common/check.h"
#include "src/common/logging.h"

namespace probcon {

PbftNode::PbftNode(Simulator* simulator, Network* network, int id, const PbftConfig& config,
                   const PbftTimingConfig& timing, SafetyChecker* checker,
                   ByzantineBehavior behavior)
    : Process(simulator, network, id),
      config_(config),
      timing_(timing),
      checker_(checker),
      behavior_(behavior) {
  CHECK_EQ(config.n, network->node_count());
  CHECK(checker != nullptr);
}

void PbftNode::OnStart() { ResetProgressTimer(); }

void PbftNode::OnRecover() {
  // PBFT replicas persist their protocol state (prepared certificates must survive restarts);
  // only the timers restart.
  ++progress_epoch_;
  ResetProgressTimer();
}

void PbftNode::OnMessage(int from, const std::shared_ptr<const SimMessage>& message) {
  if (behavior_ == ByzantineBehavior::kSilent) {
    return;
  }
  if (const auto* request = dynamic_cast<const PbftClientRequest*>(message.get())) {
    HandleClientRequest(*request);
  } else if (const auto* pre_prepare = dynamic_cast<const PbftPrePrepare*>(message.get())) {
    HandlePrePrepare(from, *pre_prepare);
  } else if (const auto* prepare = dynamic_cast<const PbftPrepare*>(message.get())) {
    HandlePrepare(from, *prepare);
  } else if (const auto* commit = dynamic_cast<const PbftCommit*>(message.get())) {
    HandleCommit(from, *commit);
  } else if (const auto* checkpoint = dynamic_cast<const PbftCheckpoint*>(message.get())) {
    HandleCheckpoint(from, *checkpoint);
  } else if (const auto* view_change = dynamic_cast<const PbftViewChange*>(message.get())) {
    HandleViewChange(from, *view_change);
  } else if (const auto* new_view = dynamic_cast<const PbftNewView*>(message.get())) {
    HandleNewView(from, *new_view);
  } else {
    LOG(Warning) << "pbft node " << id() << " ignoring " << message->Describe();
  }
}

// ---------------------------------------------------------------------------
// Normal case

void PbftNode::HandleClientRequest(const PbftClientRequest& request) {
  if (!IsLeader() || in_view_change_) {
    return;
  }
  if (!seen_commands_.insert(request.command.id).second) {
    return;  // Duplicate client retry.
  }
  LeadSlot(request.command);
}

void PbftNode::LeadSlot(const Command& command) {
  const uint64_t sequence = next_sequence_++;
  if (behavior_ == ByzantineBehavior::kEquivocate) {
    // Conflicting proposals: half the replicas see the real command, half a fabricated one.
    const Command conflict = FabricateConflict(command);
    for (int replica = 0; replica < cluster_size(); ++replica) {
      auto pre_prepare = std::make_shared<PbftPrePrepare>();
      pre_prepare->view = view_;
      pre_prepare->sequence = sequence;
      pre_prepare->command = (replica % 2 == 0) ? command : conflict;
      SendTo(replica, std::move(pre_prepare));
    }
    return;
  }
  auto pre_prepare = std::make_shared<PbftPrePrepare>();
  pre_prepare->view = view_;
  pre_prepare->sequence = sequence;
  pre_prepare->command = command;
  BroadcastAll(pre_prepare, /*include_self=*/true);
}

Command PbftNode::FabricateConflict(const Command& original) const {
  Command conflict;
  // Distinct id space so fabricated commands never collide with client ids.
  conflict.id = original.id + (1ULL << 48);
  conflict.payload = "equivocation-of-" + std::to_string(original.id);
  return conflict;
}

void PbftNode::HandlePrePrepare(int from, const PbftPrePrepare& message) {
  if (from != LeaderOf(message.view)) {
    return;  // Only the view's leader may pre-prepare.
  }
  if (message.view != view_ || in_view_change_) {
    return;
  }
  SlotState& slot = slots_[message.sequence];
  slot.known_commands[message.command.id] = message.command;
  // The leader's pre-prepare counts as its prepare vote.
  slot.prepares[message.view][message.command.id].insert(from);

  if (behavior_ == ByzantineBehavior::kPromiscuous ||
      behavior_ == ByzantineBehavior::kEquivocate) {
    // Vote for anything, even a second conflicting proposal for the same slot.
    slot.pre_prepared_by_view.emplace(message.view, message.command);
    auto prepare = std::make_shared<PbftPrepare>();
    prepare->view = message.view;
    prepare->sequence = message.sequence;
    prepare->command_id = message.command.id;
    BroadcastAll(prepare, /*include_self=*/true);
    return;
  }
  // Honest: accept at most one pre-prepare per (view, sequence).
  const auto [it, inserted] = slot.pre_prepared_by_view.emplace(message.view, message.command);
  if (!inserted && it->second != message.command) {
    LOG(Debug) << "node " << id() << " saw equivocation at seq " << message.sequence;
    return;
  }
  auto prepare = std::make_shared<PbftPrepare>();
  prepare->view = message.view;
  prepare->sequence = message.sequence;
  prepare->command_id = message.command.id;
  BroadcastAll(prepare, /*include_self=*/true);
}

void PbftNode::HandlePrepare(int from, const PbftPrepare& message) {
  // Record votes for any view (a replica may adopt that view moments later); only act on the
  // current one.
  SlotState& slot = slots_[message.sequence];
  slot.prepares[message.view][message.command_id].insert(from);
  if (message.view == view_ && !in_view_change_) {
    MaybePrepare(message.sequence);
  }
}

void PbftNode::MaybePrepare(uint64_t sequence) {
  SlotState& slot = slots_[sequence];
  // Byzantine voters prepare AND commit every proposal with any support — the strongest
  // collusion available without forging identities. Honest replicas need their accepted
  // pre-prepare plus a |Q_eq| prepare quorum.
  if (behavior_ == ByzantineBehavior::kPromiscuous ||
      behavior_ == ByzantineBehavior::kEquivocate) {
    for (const auto& [cmd_id, voters] : slot.prepares[view_]) {
      // Echo each (view, command) at most once, or the self-delivered broadcasts would
      // retrigger this path forever.
      if (!byz_echoed_[sequence].insert({view_, cmd_id}).second) {
        continue;
      }
      auto prepare = std::make_shared<PbftPrepare>();
      prepare->view = view_;
      prepare->sequence = sequence;
      prepare->command_id = cmd_id;
      BroadcastAll(prepare, /*include_self=*/true);
      auto commit = std::make_shared<PbftCommit>();
      commit->view = view_;
      commit->sequence = sequence;
      commit->command_id = cmd_id;
      BroadcastAll(commit, /*include_self=*/true);
    }
    return;
  }
  const auto accepted = slot.pre_prepared_by_view.find(view_);
  if (accepted == slot.pre_prepared_by_view.end()) {
    return;
  }
  const uint64_t command_id = accepted->second.id;
  const auto& voters = slot.prepares[view_][command_id];
  if (static_cast<int>(voters.size()) < config_.q_eq) {
    return;
  }
  // Prepared: remember the certificate (for view changes) and commit-vote once.
  if (slot.prepared.has_value() && slot.prepared->view == view_) {
    return;  // Already prepared in this view; commit already sent.
  }
  slot.prepared = PreparedProof{view_, sequence, accepted->second};
  auto commit = std::make_shared<PbftCommit>();
  commit->view = view_;
  commit->sequence = sequence;
  commit->command_id = command_id;
  BroadcastAll(commit, /*include_self=*/true);
}

void PbftNode::HandleCommit(int from, const PbftCommit& message) {
  SlotState& slot = slots_[message.sequence];
  slot.commits[message.view][message.command_id].insert(from);
  MaybeCommit(message.sequence, message.view, message.command_id);
}

void PbftNode::MaybeCommit(uint64_t sequence, uint64_t view, uint64_t command_id) {
  SlotState& slot = slots_[sequence];
  if (slot.executed.has_value()) {
    return;
  }
  const auto& voters = slot.commits[view][command_id];
  if (static_cast<int>(voters.size()) < config_.q_per) {
    return;
  }
  const auto known = slot.known_commands.find(command_id);
  if (known == slot.known_commands.end()) {
    return;  // Commit quorum for a command we never saw the body of; wait for it.
  }
  slot.executed = known->second;
  ExecuteReady();
}

void PbftNode::ExecuteReady() {
  bool progressed = false;
  while (true) {
    const auto it = slots_.find(last_executed_ + 1);
    if (it == slots_.end() || !it->second.executed.has_value()) {
      break;
    }
    ++last_executed_;
    // Fold the executed (slot, command) into the running state digest (FNV-1a style).
    execution_digest_ ^= last_executed_;
    execution_digest_ *= 0x100000001B3ULL;
    execution_digest_ ^= it->second.executed->id;
    execution_digest_ *= 0x100000001B3ULL;
    simulator().tracer().Commit(id(), last_executed_);
    simulator().tracer().CounterAdd("pbft.commits");
    checker_->RecordCommit(id(), last_executed_, *it->second.executed);
    progressed = true;
  }
  if (progressed) {
    ResetProgressTimer();
    MaybeBroadcastCheckpoint();
  }
}

// ---------------------------------------------------------------------------
// Checkpointing

void PbftNode::MaybeBroadcastCheckpoint() {
  if (timing_.checkpoint_interval == 0 ||
      last_executed_ < stable_checkpoint_ + timing_.checkpoint_interval) {
    return;
  }
  auto checkpoint = std::make_shared<PbftCheckpoint>();
  checkpoint->sequence = last_executed_;
  checkpoint->digest = execution_digest_;
  BroadcastAll(checkpoint, /*include_self=*/true);
}

void PbftNode::HandleCheckpoint(int from, const PbftCheckpoint& message) {
  if (timing_.checkpoint_interval == 0 || message.sequence <= stable_checkpoint_) {
    return;
  }
  auto& voters = checkpoint_votes_[message.sequence][message.digest];
  voters.insert(from);
  if (static_cast<int>(voters.size()) >= config_.q_per) {
    AdvanceStableCheckpoint(message.sequence);
  }
}

void PbftNode::AdvanceStableCheckpoint(uint64_t sequence) {
  if (sequence <= stable_checkpoint_) {
    return;
  }
  stable_checkpoint_ = sequence;
  simulator().tracer().CheckpointStable(id(), sequence);
  simulator().tracer().CounterAdd("pbft.checkpoints_stable");
  // A laggard adopts the certified checkpoint as its execution frontier (state transfer is
  // modeled as instantaneous; skipped slots simply go unreported by this replica).
  if (last_executed_ < stable_checkpoint_) {
    last_executed_ = stable_checkpoint_;
    ResetProgressTimer();
  }
  // Garbage-collect slot state and checkpoint votes at or below the stable point.
  slots_.erase(slots_.begin(), slots_.upper_bound(stable_checkpoint_));
  checkpoint_votes_.erase(checkpoint_votes_.begin(),
                          checkpoint_votes_.upper_bound(stable_checkpoint_));
}

// ---------------------------------------------------------------------------
// View change

void PbftNode::ResetProgressTimer() {
  ++progress_epoch_;
  const uint64_t epoch = progress_epoch_;
  // Spread timers so view changes do not dogpile; exponentialish backoff per view.
  const SimTime timeout = timing_.progress_timeout * (1.0 + 0.2 * rng().NextDouble());
  SetTimer(timeout, [this, epoch]() {
    if (progress_epoch_ != epoch) {
      return;
    }
    // Escalate past views we already voted for, so a dead new-leader cannot wedge us.
    StartViewChange(std::max(view_, highest_view_change_voted_) + 1);
  });
}

void PbftNode::StartViewChange(uint64_t new_view) {
  if (new_view <= view_ || behavior_ == ByzantineBehavior::kSilent) {
    return;
  }
  if (!view_change_sent_.insert(new_view).second) {
    return;
  }
  highest_view_change_voted_ = std::max(highest_view_change_voted_, new_view);
  in_view_change_ = true;
  simulator().tracer().ViewChangeStarted(id(), new_view);
  simulator().tracer().CounterAdd("pbft.view_changes_started");
  auto message = std::make_shared<PbftViewChange>();
  message->new_view = new_view;
  for (const auto& [sequence, slot] : slots_) {
    if (slot.prepared.has_value()) {
      message->prepared.push_back(*slot.prepared);
    }
  }
  BroadcastAll(message, /*include_self=*/true);
  ResetProgressTimer();  // If this view change stalls, try the next view.
}

void PbftNode::HandleViewChange(int from, const PbftViewChange& message) {
  if (message.new_view <= view_) {
    return;
  }
  view_changes_[message.new_view][from] = message;
  const int support = static_cast<int>(view_changes_[message.new_view].size());
  // Trigger quorum: join the view change once |Q_vc_t| replicas ask for it.
  if (support >= config_.q_vc_t) {
    StartViewChange(message.new_view);
  }
  MaybeAssembleNewView(message.new_view);
}

void PbftNode::MaybeAssembleNewView(uint64_t view) {
  if (LeaderOf(view) != id() || view <= view_) {
    return;
  }
  const auto it = view_changes_.find(view);
  if (it == view_changes_.end() || static_cast<int>(it->second.size()) < config_.q_vc) {
    return;
  }
  // Collect, per sequence, the prepared certificate of highest view.
  std::map<uint64_t, PreparedProof> best;
  uint64_t max_sequence = 0;
  for (const auto& [sender, view_change] : it->second) {
    for (const PreparedProof& proof : view_change.prepared) {
      max_sequence = std::max(max_sequence, proof.sequence);
      const auto existing = best.find(proof.sequence);
      if (existing == best.end() || proof.view > existing->second.view) {
        best[proof.sequence] = proof;
      }
    }
  }
  max_sequence = std::max(max_sequence, last_executed_);

  auto new_view_msg = std::make_shared<PbftNewView>();
  new_view_msg->new_view = view;
  for (uint64_t sequence = stable_checkpoint_ + 1; sequence <= max_sequence; ++sequence) {
    PreparedProof proof;
    proof.view = view;
    proof.sequence = sequence;
    const auto chosen = best.find(sequence);
    if (chosen != best.end()) {
      proof.command = chosen->second.command;
    } else {
      proof.command = Command{0, "noop"};  // Gap filler.
    }
    new_view_msg->pre_prepares.push_back(proof);
  }
  next_sequence_ = max_sequence + 1;
  BroadcastAll(new_view_msg, /*include_self=*/true);
}

void PbftNode::HandleNewView(int from, const PbftNewView& message) {
  if (message.new_view < view_ || (message.new_view == view_ && !in_view_change_)) {
    return;
  }
  if (from != LeaderOf(message.new_view)) {
    return;
  }
  view_ = message.new_view;
  in_view_change_ = false;
  simulator().tracer().NewViewAdopted(id(), view_);
  simulator().tracer().CounterAdd("pbft.new_views_adopted");
  next_sequence_ = std::max<uint64_t>(next_sequence_, message.pre_prepares.size() + 1);
  ResetProgressTimer();
  // Process the re-issued pre-prepares as if freshly proposed in the new view.
  for (const PreparedProof& proof : message.pre_prepares) {
    PbftPrePrepare pre_prepare;
    pre_prepare.view = view_;
    pre_prepare.sequence = proof.sequence;
    pre_prepare.command = proof.command;
    HandlePrePrepare(from, pre_prepare);
  }
}

}  // namespace probcon
