#include "src/consensus/pbft/pbft_cluster.h"

#include <string>

#include "src/common/check.h"
#include "src/consensus/pbft/pbft_messages.h"

namespace probcon {

PbftCluster::PbftCluster(const PbftClusterOptions& options)
    : options_(options), simulator_(options.seed) {
  CHECK_GT(options.config.n, 0);
  CHECK(options.behaviors.empty() ||
        options.behaviors.size() == static_cast<size_t>(options.config.n))
      << "behaviors must be empty or one per replica";
  network_ = std::make_unique<Network>(
      &simulator_, options.config.n,
      std::make_unique<UniformLatencyModel>(options.network_latency_min,
                                            options.network_latency_max,
                                            options.network_drop_probability));
  checker_ = std::make_unique<SafetyChecker>(&simulator_);
  for (int i = 0; i < options.config.n; ++i) {
    const ByzantineBehavior behavior =
        options.behaviors.empty() ? ByzantineBehavior::kHonest : options.behaviors[i];
    nodes_.push_back(std::make_unique<PbftNode>(&simulator_, network_.get(), i,
                                                options.config, options.timing,
                                                checker_.get(), behavior));
  }
}

void PbftCluster::Start() {
  CHECK(!started_) << "cluster already started";
  started_ = true;
  for (auto& node : nodes_) {
    node->Start();
  }
  simulator_.Schedule(options_.client_interval, [this]() { SubmitNextCommand(); });
}

void PbftCluster::RunUntil(SimTime until) {
  CHECK(started_) << "call Start() first";
  simulator_.Run(until);
}

std::vector<Process*> PbftCluster::processes() {
  std::vector<Process*> result;
  result.reserve(nodes_.size());
  for (auto& node : nodes_) {
    result.push_back(node.get());
  }
  return result;
}

void PbftCluster::SubmitNextCommand() {
  Command command;
  command.id = next_command_id_++;
  command.payload = "op-" + std::to_string(command.id);
  checker_->RecordSubmission(command);

  auto request = std::make_shared<PbftClientRequest>();
  request->command = command;
  for (int node = 0; node < size(); ++node) {
    network_->Send(node, node, request);
  }
  simulator_.Schedule(options_.client_interval, [this]() { SubmitNextCommand(); });
}

}  // namespace probcon
