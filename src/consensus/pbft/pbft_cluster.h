// Turn-key PBFT cluster harness, mirroring RaftCluster: simulator + network + replicas +
// safety checker + a client loop, with per-replica Byzantine behaviour assignment.

#ifndef PROBCON_SRC_CONSENSUS_PBFT_PBFT_CLUSTER_H_
#define PROBCON_SRC_CONSENSUS_PBFT_PBFT_CLUSTER_H_

#include <memory>
#include <vector>

#include "src/analysis/protocol_spec.h"
#include "src/consensus/common/safety_checker.h"
#include "src/consensus/pbft/pbft_node.h"
#include "src/sim/network.h"
#include "src/sim/simulator.h"

namespace probcon {

struct PbftClusterOptions {
  PbftConfig config;
  PbftTimingConfig timing;
  std::vector<ByzantineBehavior> behaviors;  // Empty = all honest; else one per replica.
  SimTime network_latency_min = 5.0;
  SimTime network_latency_max = 15.0;
  double network_drop_probability = 0.0;
  SimTime client_interval = 100.0;
  uint64_t seed = 1;
};

class PbftCluster {
 public:
  explicit PbftCluster(const PbftClusterOptions& options);

  void Start();
  void RunUntil(SimTime until);

  Simulator& simulator() { return simulator_; }
  Network& network() { return *network_; }
  SafetyChecker& checker() { return *checker_; }
  PbftNode& node(int i) { return *nodes_[i]; }
  int size() const { return static_cast<int>(nodes_.size()); }

  std::vector<Process*> processes();

 private:
  void SubmitNextCommand();

  PbftClusterOptions options_;
  Simulator simulator_;
  std::unique_ptr<Network> network_;
  std::unique_ptr<SafetyChecker> checker_;
  std::vector<std::unique_ptr<PbftNode>> nodes_;
  uint64_t next_command_id_ = 1;
  bool started_ = false;
};

}  // namespace probcon

#endif  // PROBCON_SRC_CONSENSUS_PBFT_PBFT_CLUSTER_H_
