#include "src/consensus/pbft/pbft_messages.h"

#include <sstream>

namespace probcon {

std::string PbftClientRequest::Describe() const {
  std::ostringstream os;
  os << "PbftClientRequest(cmd#" << command.id << ")";
  return os.str();
}

std::string PbftPrePrepare::Describe() const {
  std::ostringstream os;
  os << "PrePrepare(v=" << view << ", n=" << sequence << ", cmd#" << command.id << ")";
  return os.str();
}

std::string PbftPrepare::Describe() const {
  std::ostringstream os;
  os << "Prepare(v=" << view << ", n=" << sequence << ", cmd#" << command_id << ")";
  return os.str();
}

std::string PbftCommit::Describe() const {
  std::ostringstream os;
  os << "Commit(v=" << view << ", n=" << sequence << ", cmd#" << command_id << ")";
  return os.str();
}

std::string PbftCheckpoint::Describe() const {
  std::ostringstream os;
  os << "Checkpoint(n=" << sequence << ", digest=" << digest << ")";
  return os.str();
}

std::string PbftViewChange::Describe() const {
  std::ostringstream os;
  os << "ViewChange(v=" << new_view << ", prepared=" << prepared.size() << ")";
  return os.str();
}

std::string PbftNewView::Describe() const {
  std::ostringstream os;
  os << "NewView(v=" << new_view << ", pre_prepares=" << pre_prepares.size() << ")";
  return os.str();
}

}  // namespace probcon
