// PBFT wire messages (Castro & Liskov), as simulator payloads.
//
// There is no cryptography in the simulator: the network authenticates the TRUE sender of
// every message (standard authenticated point-to-point channels), so Byzantine nodes can lie
// about their own state and equivocate, but cannot impersonate others. Command content plays
// the role of the request digest.

#ifndef PROBCON_SRC_CONSENSUS_PBFT_PBFT_MESSAGES_H_
#define PROBCON_SRC_CONSENSUS_PBFT_PBFT_MESSAGES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/consensus/common/types.h"
#include "src/sim/network.h"

namespace probcon {

struct PbftClientRequest final : public SimMessage {
  Command command;

  std::string Describe() const override;
};

struct PbftPrePrepare final : public SimMessage {
  uint64_t view = 0;
  uint64_t sequence = 0;
  Command command;

  std::string Describe() const override;
};

struct PbftPrepare final : public SimMessage {
  uint64_t view = 0;
  uint64_t sequence = 0;
  uint64_t command_id = 0;

  std::string Describe() const override;
};

struct PbftCommit final : public SimMessage {
  uint64_t view = 0;
  uint64_t sequence = 0;
  uint64_t command_id = 0;

  std::string Describe() const override;
};

// Proof that a replica prepared `command` at `sequence` in `view`; carried in view changes.
struct PreparedProof {
  uint64_t view = 0;
  uint64_t sequence = 0;
  Command command;
};

// Periodic checkpoint vote: "I executed through `sequence` with state `digest`". A quorum of
// matching checkpoints makes `sequence` stable and lets replicas garbage-collect earlier
// slots (Castro & Liskov §4.3).
struct PbftCheckpoint final : public SimMessage {
  uint64_t sequence = 0;
  uint64_t digest = 0;

  std::string Describe() const override;
};

struct PbftViewChange final : public SimMessage {
  uint64_t new_view = 0;
  std::vector<PreparedProof> prepared;

  std::string Describe() const override;
};

struct PbftNewView final : public SimMessage {
  uint64_t new_view = 0;
  // Pre-prepares the new leader re-issues, one per in-flight sequence.
  std::vector<PreparedProof> pre_prepares;

  std::string Describe() const override;
};

}  // namespace probcon

#endif  // PROBCON_SRC_CONSENSUS_PBFT_PBFT_MESSAGES_H_
