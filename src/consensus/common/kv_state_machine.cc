#include "src/consensus/common/kv_state_machine.h"

#include <sstream>
#include <vector>

namespace probcon {
namespace {

std::vector<std::string> Tokenize(const std::string& text) {
  std::istringstream stream(text);
  std::vector<std::string> tokens;
  std::string token;
  while (stream >> token) {
    tokens.push_back(token);
  }
  return tokens;
}

uint64_t Fnv1a(uint64_t hash, const std::string& text) {
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001B3ULL;
  }
  hash ^= 0xFF;  // Field separator so ("ab","c") != ("a","bc").
  hash *= 0x100000001B3ULL;
  return hash;
}

}  // namespace

std::string KvStateMachine::Apply(const Command& command) {
  ++applied_count_;
  const auto tokens = Tokenize(command.payload);
  if (tokens.empty()) {
    return "<err>";
  }
  const std::string& op = tokens[0];
  if (op == "put" && tokens.size() == 3) {
    store_[tokens[1]] = tokens[2];
    return "ok";
  }
  if (op == "get" && tokens.size() == 2) {
    const auto it = store_.find(tokens[1]);
    return it == store_.end() ? "<nil>" : it->second;
  }
  if (op == "del" && tokens.size() == 2) {
    return store_.erase(tokens[1]) > 0 ? "ok" : "<nil>";
  }
  if (op == "cas" && tokens.size() == 4) {
    const auto it = store_.find(tokens[1]);
    if (it != store_.end() && it->second == tokens[2]) {
      it->second = tokens[3];
      return "ok";
    }
    return "fail";
  }
  return "<err>";
}

std::optional<std::string> KvStateMachine::Get(const std::string& key) const {
  const auto it = store_.find(key);
  if (it == store_.end()) {
    return std::nullopt;
  }
  return it->second;
}

uint64_t KvStateMachine::Digest() const {
  uint64_t hash = 0xCBF29CE484222325ULL;
  for (const auto& [key, value] : store_) {  // std::map iterates in sorted order.
    hash = Fnv1a(hash, key);
    hash = Fnv1a(hash, value);
  }
  hash ^= applied_count_;
  hash *= 0x100000001B3ULL;
  return hash;
}

Command MakePut(uint64_t id, const std::string& key, const std::string& value) {
  return Command{id, "put " + key + " " + value};
}

Command MakeGet(uint64_t id, const std::string& key) {
  return Command{id, "get " + key};
}

Command MakeDel(uint64_t id, const std::string& key) {
  return Command{id, "del " + key};
}

Command MakeCas(uint64_t id, const std::string& key, const std::string& expected,
                const std::string& desired) {
  return Command{id, "cas " + key + " " + expected + " " + desired};
}

}  // namespace probcon
