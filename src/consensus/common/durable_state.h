// Durable-state model for crash-recovery protocols.
//
// Real consensus implementations are only as safe as their storage stack: a node that ACKs
// an append and then loses the entry to an unsynced page cache behaves, after restart, like
// a node that never saw it ("Redundancy Does Not Imply Fault Tolerance", FAST '17). The
// seed simulator modeled restart-with-intact-disk only; DurableCell makes the fsync boundary
// explicit so the chaos engine can inject exactly that fault class.
//
// A DurableCell<Image> holds two copies of a protocol's hard state: `latest` (what the
// in-memory process wrote) and `synced` (what the disk is guaranteed to hold). Write()
// records a new latest image and syncs it according to the active DurabilityPolicy;
// Restore() — called from OnRecover — rolls latest back to synced, returning how many
// acknowledged writes the restart lost. With the default write-through policy nothing is
// ever lost and recovery behaves exactly like the seed code.

#ifndef PROBCON_SRC_CONSENSUS_COMMON_DURABLE_STATE_H_
#define PROBCON_SRC_CONSENSUS_COMMON_DURABLE_STATE_H_

#include <cstdint>
#include <utility>

#include "src/common/check.h"

namespace probcon {

// When the storage stack makes a write durable.
struct DurabilityPolicy {
  // Sync after every n-th Write(); 1 = write-through (fsync on every write, nothing is ever
  // lost), larger values model batched/delayed fsync where a crash loses the tail since the
  // last sync point.
  int sync_every_n = 1;

  static DurabilityPolicy WriteThrough() { return DurabilityPolicy{1}; }
  static DurabilityPolicy Batched(int every_n) { return DurabilityPolicy{every_n}; }
};

template <typename Image>
class DurableCell {
 public:
  DurableCell() = default;
  explicit DurableCell(Image initial) : synced_(initial), latest_(std::move(initial)) {}

  // Policy changes take effect for subsequent writes; lowering the batch size does not
  // retroactively sync already-buffered writes (call Sync() for that).
  void SetPolicy(const DurabilityPolicy& policy) {
    CHECK_GE(policy.sync_every_n, 1);
    policy_ = policy;
  }
  const DurabilityPolicy& policy() const { return policy_; }

  // Records a new latest image; auto-syncs when the policy's batch fills.
  void Write(Image image) {
    latest_ = std::move(image);
    ++writes_;
    ++unsynced_writes_;
    if (unsynced_writes_ >= static_cast<uint64_t>(policy_.sync_every_n)) {
      Sync();
    }
  }

  // Explicit fsync: everything written so far survives any later crash.
  void Sync() {
    if (unsynced_writes_ == 0) {
      return;
    }
    synced_ = latest_;
    unsynced_writes_ = 0;
    ++syncs_;
  }

  // Crash-restart: the disk comes back with the last-synced image; buffered writes are
  // gone. Returns the number of acknowledged-but-unsynced writes the restart lost.
  uint64_t Restore() {
    const uint64_t lost = unsynced_writes_;
    latest_ = synced_;
    unsynced_writes_ = 0;
    lost_writes_ += lost;
    return lost;
  }

  // The image a restarting node boots from (equals latest() right after Restore()).
  const Image& synced() const { return synced_; }
  const Image& latest() const { return latest_; }

  uint64_t writes() const { return writes_; }
  uint64_t syncs() const { return syncs_; }
  uint64_t unsynced_writes() const { return unsynced_writes_; }
  uint64_t lost_writes() const { return lost_writes_; }

 private:
  DurabilityPolicy policy_;
  Image synced_{};
  Image latest_{};
  uint64_t writes_ = 0;
  uint64_t syncs_ = 0;
  uint64_t unsynced_writes_ = 0;
  uint64_t lost_writes_ = 0;
};

}  // namespace probcon

#endif  // PROBCON_SRC_CONSENSUS_COMMON_DURABLE_STATE_H_
