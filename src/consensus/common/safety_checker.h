// Global safety/liveness observer for protocol runs.
//
// The checker sits OUTSIDE the protocol (design decision D4 in DESIGN.md): every node reports
// each (slot, command) it commits, and the checker cross-checks agreement — two nodes
// committing different commands at the same slot is a safety violation, regardless of what the
// protocol believes. It also records first-commit times per slot for liveness/latency
// measurements.

#ifndef PROBCON_SRC_CONSENSUS_COMMON_SAFETY_CHECKER_H_
#define PROBCON_SRC_CONSENSUS_COMMON_SAFETY_CHECKER_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/consensus/common/types.h"
#include "src/sim/metrics.h"
#include "src/sim/simulator.h"

namespace probcon {

struct SafetyViolation {
  uint64_t slot = 0;
  int first_node = 0;
  int second_node = 0;
  Command first_command;
  Command second_command;
  SimTime detected_at = 0.0;

  std::string Describe() const;
};

class SafetyChecker {
 public:
  explicit SafetyChecker(Simulator* simulator);

  // A node reports that it committed `command` at `slot`. Re-commits of the same value at the
  // same slot by the same node are idempotent.
  void RecordCommit(int node, uint64_t slot, const Command& command);

  // A client submitted `command` at the current sim time (for end-to-end latency).
  void RecordSubmission(const Command& command);

  bool safe() const { return violations_.empty(); }
  const std::vector<SafetyViolation>& violations() const { return violations_; }

  // Number of distinct slots committed by at least one node.
  uint64_t committed_slots() const { return first_commit_time_.size(); }
  uint64_t total_commit_reports() const { return total_commit_reports_; }

  // Submission -> first commit latency samples (only for commands with both records).
  const SampleStats& commit_latency() const { return commit_latency_; }

  // Highest slot committed by any node, or 0 if none.
  uint64_t max_committed_slot() const;

 private:
  Simulator* simulator_;
  // slot -> (node -> command) records; compact because runs are bounded.
  std::map<uint64_t, std::map<int, Command>> commits_;
  std::map<uint64_t, SimTime> first_commit_time_;  // By slot.
  std::map<uint64_t, SimTime> submission_time_;    // By command id.
  std::vector<SafetyViolation> violations_;
  SampleStats commit_latency_;
  uint64_t total_commit_reports_ = 0;
};

}  // namespace probcon

#endif  // PROBCON_SRC_CONSENSUS_COMMON_SAFETY_CHECKER_H_
