// A deterministic key-value state machine — the application payload for the replicated-log
// protocols (the paper's "fault-tolerant core upon which application-logic is implemented").
//
// Command payload grammar (whitespace-separated):
//   put <key> <value>     -> "ok"
//   get <key>             -> value or "<nil>"
//   del <key>             -> "ok" or "<nil>"
//   cas <key> <old> <new> -> "ok" or "fail"
// Malformed commands apply as no-ops returning "<err>"; determinism is preserved because the
// result depends only on the command text and prior state.
//
// Replicas that applied the same committed prefix have equal Digest() — the cheap
// state-equivalence check used by tests and examples.

#ifndef PROBCON_SRC_CONSENSUS_COMMON_KV_STATE_MACHINE_H_
#define PROBCON_SRC_CONSENSUS_COMMON_KV_STATE_MACHINE_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "src/consensus/common/types.h"

namespace probcon {

class KvStateMachine {
 public:
  // Applies one committed command; returns the operation result.
  std::string Apply(const Command& command);

  std::optional<std::string> Get(const std::string& key) const;
  size_t size() const { return store_.size(); }
  uint64_t applied_count() const { return applied_count_; }

  // Order-independent digest over (key, value) pairs plus the applied-command count;
  // equal digests <=> replicas converged on the same state via the same number of commands.
  uint64_t Digest() const;

 private:
  std::map<std::string, std::string> store_;
  uint64_t applied_count_ = 0;
};

// Builds a Command for the grammar above (convenience for clients/tests).
Command MakePut(uint64_t id, const std::string& key, const std::string& value);
Command MakeGet(uint64_t id, const std::string& key);
Command MakeDel(uint64_t id, const std::string& key);
Command MakeCas(uint64_t id, const std::string& key, const std::string& expected,
                const std::string& desired);

}  // namespace probcon

#endif  // PROBCON_SRC_CONSENSUS_COMMON_KV_STATE_MACHINE_H_
