#include "src/consensus/common/safety_checker.h"

#include <sstream>

#include "src/common/check.h"

namespace probcon {

std::string SafetyViolation::Describe() const {
  std::ostringstream os;
  os << "slot " << slot << ": node " << first_node << " committed cmd#" << first_command.id
     << " but node " << second_node << " committed cmd#" << second_command.id << " (t="
     << detected_at << ")";
  return os.str();
}

SafetyChecker::SafetyChecker(Simulator* simulator) : simulator_(simulator) {
  CHECK(simulator != nullptr);
}

void SafetyChecker::RecordCommit(int node, uint64_t slot, const Command& command) {
  ++total_commit_reports_;
  Tracer& tracer = simulator_->tracer();
  auto& slot_commits = commits_[slot];
  // Agreement check against every other node's commit for this slot.
  for (const auto& [other_node, other_command] : slot_commits) {
    if (other_node != node && other_command != command) {
      SafetyViolation violation;
      violation.slot = slot;
      violation.first_node = other_node;
      violation.second_node = node;
      violation.first_command = other_command;
      violation.second_command = command;
      violation.detected_at = simulator_->Now();
      violations_.push_back(violation);
      tracer.SafetyViolationDetected(slot, violation.Describe());
      tracer.CounterAdd("consensus.safety_violations");
    }
  }
  // A single node must never change its mind about a committed slot either.
  auto it = slot_commits.find(node);
  if (it != slot_commits.end() && it->second != command) {
    SafetyViolation violation;
    violation.slot = slot;
    violation.first_node = node;
    violation.second_node = node;
    violation.first_command = it->second;
    violation.second_command = command;
    violation.detected_at = simulator_->Now();
    violations_.push_back(violation);
    tracer.SafetyViolationDetected(slot, violation.Describe());
    tracer.CounterAdd("consensus.safety_violations");
  }
  slot_commits[node] = command;

  if (first_commit_time_.find(slot) == first_commit_time_.end()) {
    first_commit_time_[slot] = simulator_->Now();
    const auto submitted = submission_time_.find(command.id);
    if (submitted != submission_time_.end()) {
      const SimTime latency = simulator_->Now() - submitted->second;
      commit_latency_.Add(latency);
      tracer.HistogramRecord("consensus.commit_latency_ms", latency,
                             HistogramOptions::DefaultLatencyMs());
    }
  }
}

void SafetyChecker::RecordSubmission(const Command& command) {
  submission_time_.emplace(command.id, simulator_->Now());
  simulator_->tracer().ClientSubmitted(command.id);
  simulator_->tracer().CounterAdd("consensus.submissions");
}

uint64_t SafetyChecker::max_committed_slot() const {
  if (first_commit_time_.empty()) {
    return 0;
  }
  return first_commit_time_.rbegin()->first;
}

}  // namespace probcon
