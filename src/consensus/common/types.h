// Shared vocabulary for the executable consensus protocols.

#ifndef PROBCON_SRC_CONSENSUS_COMMON_TYPES_H_
#define PROBCON_SRC_CONSENSUS_COMMON_TYPES_H_

#include <cstdint>
#include <string>

namespace probcon {

// A client operation. Ids are globally unique; the payload is opaque.
struct Command {
  uint64_t id = 0;
  std::string payload;

  bool operator==(const Command& other) const {
    return id == other.id && payload == other.payload;
  }
  bool operator!=(const Command& other) const { return !(*this == other); }
};

struct LogEntry {
  uint64_t term = 0;  // Raft term / PBFT view of the proposal.
  Command command;

  bool operator==(const LogEntry& other) const {
    return term == other.term && command == other.command;
  }
  bool operator!=(const LogEntry& other) const { return !(*this == other); }
};

}  // namespace probcon

#endif  // PROBCON_SRC_CONSENSUS_COMMON_TYPES_H_
