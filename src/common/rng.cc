#include "src/common/rng.h"

#include <numeric>

namespace probcon {

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  CHECK_LE(k, n);
  // Partial Fisher-Yates: only the first k positions are materialized in shuffled order.
  std::vector<size_t> pool(n);
  std::iota(pool.begin(), pool.end(), size_t{0});
  std::vector<size_t> sample;
  sample.reserve(k);
  for (size_t i = 0; i < k; ++i) {
    const size_t j = i + NextBelow(n - i);
    std::swap(pool[i], pool[j]);
    sample.push_back(pool[i]);
  }
  return sample;
}

}  // namespace probcon
