// Minimal leveled logging.
//
//   LOG(INFO) << "cluster of " << n << " nodes";
//
// Levels: DEBUG < INFO < WARNING < ERROR. The global threshold defaults to INFO, honors the
// PROBCON_LOG_LEVEL environment variable at startup (so bench/test binaries can be silenced
// without code changes), and can be changed at runtime (tests silence logging by raising
// it). Output goes to stderr so that bench binaries can print machine-readable tables on
// stdout.
//
// Sim-time prefixes: when a log clock is installed (Simulator::InstallLogClock or
// SetLogClock), every line carries "t=<now>" so protocol logs line up with trace events.

#ifndef PROBCON_SRC_COMMON_LOGGING_H_
#define PROBCON_SRC_COMMON_LOGGING_H_

#include <functional>
#include <iostream>
#include <sstream>
#include <string_view>

namespace probcon {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
};

// Returns the mutable global log threshold. Messages below it are discarded. First access
// seeds it from PROBCON_LOG_LEVEL (see LogLevelFromEnv).
LogLevel& GlobalLogThreshold();

std::string_view LogLevelName(LogLevel level);

// Parses PROBCON_LOG_LEVEL: "debug"/"info"/"warning"/"warn"/"error" (case-insensitive) or
// the numeric level 0-3. Returns `fallback` when unset or unparseable.
LogLevel LogLevelFromEnv(LogLevel fallback);

// Optional time source for log prefixes, typically a simulator clock. The clock must stay
// callable until cleared; call ClearLogClock() before destroying whatever it reads.
using LogClock = std::function<double()>;
void SetLogClock(LogClock clock);
void ClearLogClock();

namespace internal {

// One log statement; flushes on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, std::string_view file, int line);
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) {
      stream_ << value;
    }
    return *this;
  }

 private:
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace probcon

#define LOG(level)                                                                 \
  ::probcon::internal::LogMessage(::probcon::LogLevel::k##level, __FILE__, __LINE__)

#define LOG_IF(level, cond) \
  if (!(cond)) {            \
  } else                    \
    LOG(level)

#endif  // PROBCON_SRC_COMMON_LOGGING_H_
