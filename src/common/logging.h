// Minimal leveled logging.
//
//   LOG(INFO) << "cluster of " << n << " nodes";
//
// Levels: DEBUG < INFO < WARNING < ERROR. The global threshold defaults to INFO and can be
// changed at runtime (tests silence logging by raising it). Output goes to stderr so that
// bench binaries can print machine-readable tables on stdout.

#ifndef PROBCON_SRC_COMMON_LOGGING_H_
#define PROBCON_SRC_COMMON_LOGGING_H_

#include <iostream>
#include <sstream>
#include <string_view>

namespace probcon {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
};

// Returns the mutable global log threshold. Messages below it are discarded.
LogLevel& GlobalLogThreshold();

std::string_view LogLevelName(LogLevel level);

namespace internal {

// One log statement; flushes on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, std::string_view file, int line);
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) {
      stream_ << value;
    }
    return *this;
  }

 private:
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace probcon

#define LOG(level)                                                                 \
  ::probcon::internal::LogMessage(::probcon::LogLevel::k##level, __FILE__, __LINE__)

#define LOG_IF(level, cond) \
  if (!(cond)) {            \
  } else                    \
    LOG(level)

#endif  // PROBCON_SRC_COMMON_LOGGING_H_
