// Error handling primitives: `Status` (an error code plus message) and `Result<T>` (a value or
// a Status), in the spirit of absl::Status / absl::StatusOr but self-contained.
//
// Library code in this repository never throws for expected failure modes; fallible operations
// return Status or Result<T>. CHECK is reserved for programmer errors (violated preconditions).

#ifndef PROBCON_SRC_COMMON_STATUS_H_
#define PROBCON_SRC_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

#include "src/common/check.h"

namespace probcon {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kNotFound,
  kFailedPrecondition,
  kUnimplemented,
  kResourceExhausted,
  kInternal,
  kCancelled,
  kDeadlineExceeded,
  kUnavailable,
};

// Returns a stable human-readable name for `code` (e.g. "INVALID_ARGUMENT").
std::string_view StatusCodeName(StatusCode code);

// A success-or-error value. Cheap to copy on the OK path.
class [[nodiscard]] Status {
 public:
  Status() = default;  // OK.
  Status(StatusCode code, std::string message) : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // Returns "OK" or "CODE: message".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

Status InvalidArgumentError(std::string message);
Status OutOfRangeError(std::string message);
Status NotFoundError(std::string message);
Status FailedPreconditionError(std::string message);
Status UnimplementedError(std::string message);
Status ResourceExhaustedError(std::string message);
Status InternalError(std::string message);
Status CancelledError(std::string message);
Status DeadlineExceededError(std::string message);
Status UnavailableError(std::string message);

// Holds either a T or a non-OK Status. Accessing the value of an errored Result is a
// programmer error and CHECK-fails.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : data_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : data_(std::move(status)) {  // NOLINT(google-explicit-constructor)
    CHECK(!std::get<Status>(data_).ok()) << "Result constructed from OK status";
  }

  bool ok() const { return std::holds_alternative<T>(data_); }

  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(data_);
  }

  const T& value() const& {
    CHECK(ok()) << "Result::value() on error: " << status().ToString();
    return std::get<T>(data_);
  }
  T& value() & {
    CHECK(ok()) << "Result::value() on error: " << status().ToString();
    return std::get<T>(data_);
  }
  T&& value() && {
    CHECK(ok()) << "Result::value() on error: " << status().ToString();
    return std::get<T>(std::move(data_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  // Returns the contained value, or `fallback` when this Result holds an error.
  T value_or(T fallback) const { return ok() ? std::get<T>(data_) : std::move(fallback); }

 private:
  std::variant<T, Status> data_;
};

}  // namespace probcon

// Propagates a non-OK status from an expression to the caller.
#define RETURN_IF_ERROR(expr)                 \
  do {                                        \
    ::probcon::Status status_macro_ = (expr); \
    if (!status_macro_.ok()) {                \
      return status_macro_;                   \
    }                                         \
  } while (false)

#endif  // PROBCON_SRC_COMMON_STATUS_H_
