#include "src/common/logging.h"

namespace probcon {

LogLevel& GlobalLogThreshold() {
  static LogLevel threshold = LogLevel::kInfo;
  return threshold;
}

std::string_view LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

namespace internal {

LogMessage::LogMessage(LogLevel level, std::string_view file, int line)
    : enabled_(level >= GlobalLogThreshold()) {
  if (enabled_) {
    // Strip the directory prefix for readability.
    const size_t slash = file.rfind('/');
    if (slash != std::string_view::npos) {
      file = file.substr(slash + 1);
    }
    stream_ << "[" << LogLevelName(level) << " " << file << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    stream_ << "\n";
    std::cerr << stream_.str();
  }
}

}  // namespace internal
}  // namespace probcon
