#include "src/common/logging.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>

namespace probcon {
namespace {

LogClock& GlobalLogClock() {
  static LogClock clock;
  return clock;
}

}  // namespace

LogLevel LogLevelFromEnv(LogLevel fallback) {
  const char* raw = std::getenv("PROBCON_LOG_LEVEL");
  if (raw == nullptr || *raw == '\0') {
    return fallback;
  }
  std::string value(raw);
  for (char& c : value) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  if (value == "debug" || value == "0") {
    return LogLevel::kDebug;
  }
  if (value == "info" || value == "1") {
    return LogLevel::kInfo;
  }
  if (value == "warning" || value == "warn" || value == "2") {
    return LogLevel::kWarning;
  }
  if (value == "error" || value == "3") {
    return LogLevel::kError;
  }
  return fallback;
}

LogLevel& GlobalLogThreshold() {
  static LogLevel threshold = LogLevelFromEnv(LogLevel::kInfo);
  return threshold;
}

void SetLogClock(LogClock clock) { GlobalLogClock() = std::move(clock); }

void ClearLogClock() { GlobalLogClock() = nullptr; }

std::string_view LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

namespace internal {

LogMessage::LogMessage(LogLevel level, std::string_view file, int line)
    : enabled_(level >= GlobalLogThreshold()) {
  if (enabled_) {
    // Strip the directory prefix for readability.
    const size_t slash = file.rfind('/');
    if (slash != std::string_view::npos) {
      file = file.substr(slash + 1);
    }
    stream_ << "[" << LogLevelName(level);
    if (const LogClock& sim_clock = GlobalLogClock(); sim_clock != nullptr) {
      // Fixed formatting via snprintf so stream state (precision/flags) stays untouched for
      // the user's payload.
      char time_text[32];
      std::snprintf(time_text, sizeof(time_text), " t=%.1f", sim_clock());
      stream_ << time_text;
    }
    stream_ << " " << file << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    stream_ << "\n";
    std::cerr << stream_.str();
  }
}

}  // namespace internal
}  // namespace probcon
