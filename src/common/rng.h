// Deterministic pseudo-random number generation.
//
// Everything stochastic in this repository (Monte Carlo analysis, the discrete-event simulator,
// telemetry synthesis) draws from `Rng`, a xoshiro256** generator seeded via SplitMix64. Runs
// are reproducible: the same seed yields the same stream on every platform.
//
// `Rng` satisfies the UniformRandomBitGenerator concept, so it also works with <random>
// distributions, but the built-in helpers below are preferred because their output is
// platform-stable (libstdc++/libc++ distributions are not).

#ifndef PROBCON_SRC_COMMON_RNG_H_
#define PROBCON_SRC_COMMON_RNG_H_

#include <array>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "src/common/check.h"

namespace probcon {

// SplitMix64 step; used for seeding and as a cheap stateless mixer.
inline uint64_t SplitMix64(uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

// Derives the seed of logical stream `stream_id` under root `seed`.
//
// THE CHUNK SEEDING SCHEME (used by every parallelized sampler in the toolkit —
// ReliabilityAnalyzer::EstimateEventProbability, EstimateRareEventProbability, and any
// exec::ParallelReduce loop that draws randomness): a run with a caller-provided seed `s`
// splits its trials into fixed-size chunks and gives chunk c its own generator,
//
//   Rng rng(DeriveStreamSeed(s, c));
//
// Because the stream depends only on (s, c) — never on which thread runs the chunk or how
// many threads exist — estimates are reproducible bit-for-bit across PROBCON_THREADS
// settings, and distinct chunks get decorrelated xoshiro initializations (two SplitMix64
// outputs of the pair are XOR-folded, so nearby (seed, stream) pairs map to distant
// states). The fixed chunk size is part of the result's definition: changing it changes
// which trial draws which variate, exactly like reordering a sequential stream.
inline uint64_t DeriveStreamSeed(uint64_t seed, uint64_t stream_id) {
  uint64_t state = seed + 0x9E3779B97F4A7C15ULL * (stream_id + 1);
  const uint64_t first = SplitMix64(state);
  return first ^ SplitMix64(state);
}

// xoshiro256** 1.0 (Blackman & Vigna), a fast, high-quality 64-bit PRNG.
class Rng {
 public:
  using result_type = uint64_t;

  explicit Rng(uint64_t seed = 0x853C49E6748FEA9BULL) { Seed(seed); }

  void Seed(uint64_t seed) {
    uint64_t sm = seed;
    for (auto& word : state_) {
      word = SplitMix64(sm);
    }
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return std::numeric_limits<uint64_t>::max(); }

  uint64_t operator()() { return Next(); }

  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform double in [0, 1) with 53 bits of precision.
  double NextDouble() { return static_cast<double>(Next() >> 11) * 0x1.0p-53; }

  // Uniform integer in [0, bound) without modulo bias (Lemire's method with rejection).
  uint64_t NextBelow(uint64_t bound) {
    DCHECK(bound > 0);
    uint64_t x = Next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto low = static_cast<uint64_t>(m);
    if (low < bound) {
      const uint64_t threshold = -bound % bound;
      while (low < threshold) {
        x = Next();
        m = static_cast<__uint128_t>(x) * bound;
        low = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  // Uniform integer in [lo, hi] inclusive.
  int64_t NextInRange(int64_t lo, int64_t hi) {
    DCHECK(lo <= hi);
    return lo + static_cast<int64_t>(NextBelow(static_cast<uint64_t>(hi - lo) + 1));
  }

  // Bernoulli trial with success probability p.
  bool NextBernoulli(double p) { return NextDouble() < p; }

  // Exponential with rate lambda (mean 1/lambda).
  double NextExponential(double lambda) {
    DCHECK(lambda > 0.0);
    // 1 - NextDouble() is in (0, 1], so the log is finite.
    return -std::log1p(-NextDouble()) / lambda;
  }

  // Standard normal via Box-Muller (platform-stable, unlike std::normal_distribution).
  double NextNormal() {
    if (have_cached_normal_) {
      have_cached_normal_ = false;
      return cached_normal_;
    }
    double u1 = NextDouble();
    while (u1 <= 0.0) {
      u1 = NextDouble();
    }
    const double u2 = NextDouble();
    const double radius = std::sqrt(-2.0 * std::log(u1));
    const double angle = 2.0 * 3.14159265358979323846 * u2;
    cached_normal_ = radius * std::sin(angle);
    have_cached_normal_ = true;
    return radius * std::cos(angle);
  }

  double NextNormal(double mean, double stddev) { return mean + stddev * NextNormal(); }

  // Weibull with shape k and scale lambda (inverse-CDF method).
  double NextWeibull(double shape, double scale) {
    DCHECK(shape > 0.0);
    DCHECK(scale > 0.0);
    double u = NextDouble();
    while (u <= 0.0) {
      u = NextDouble();
    }
    return scale * std::pow(-std::log(u), 1.0 / shape);
  }

  // Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (size_t i = items.size(); i > 1; --i) {
      const size_t j = NextBelow(i);
      std::swap(items[i - 1], items[j]);
    }
  }

  // Samples `k` distinct indices from [0, n) in uniformly random order.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

  // Derives an independent generator; stream `i` is stable for a given parent seed.
  Rng Fork(uint64_t stream_id) {
    uint64_t sm = Next() ^ (0xD1342543DE82EF95ULL * (stream_id + 1));
    return Rng(SplitMix64(sm));
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  std::array<uint64_t, 4> state_{};
  double cached_normal_ = 0.0;
  bool have_cached_normal_ = false;
};

}  // namespace probcon

#endif  // PROBCON_SRC_COMMON_RNG_H_
