// Cooperative cancellation for long-running analyses.
//
// A CancelToken is a shared atomic flag: whoever owns the computation's lifetime (a serving
// deadline watchdog, a ctrl-C handler, a test) calls Cancel(); the computation polls
// Cancelled() at chunk boundaries and unwinds with StatusCode::kCancelled. The token itself
// carries no clock — deadlines are a *policy* of the caller (probcon::serve arms a watchdog
// thread that cancels expired tokens), so the analysis layer stays free of host-time reads
// and the determinism contract is untouched: a run that is never cancelled performs exactly
// the work it always did, in the same order.
//
// Polls are relaxed atomic loads — a handful of nanoseconds — so threading them through the
// Monte Carlo and 2^N enumeration inner loops (every kCancellationPollStride iterations)
// costs nothing measurable.

#ifndef PROBCON_SRC_COMMON_CANCELLATION_H_
#define PROBCON_SRC_COMMON_CANCELLATION_H_

#include <atomic>
#include <cstdint>

namespace probcon {

// Iterations between cancellation polls inside hot analysis loops.
inline constexpr uint64_t kCancellationPollStride = 1024;

class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }
  bool Cancelled() const { return cancelled_.load(std::memory_order_relaxed); }

 private:
  std::atomic<bool> cancelled_{false};
};

// True when `token` is non-null and cancelled — the one-line poll used in loops.
inline bool IsCancelled(const CancelToken* token) {
  return token != nullptr && token->Cancelled();
}

}  // namespace probcon

#endif  // PROBCON_SRC_COMMON_CANCELLATION_H_
