#include "src/common/json.h"

#include <array>
#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <limits>

#include "src/common/check.h"

namespace probcon {
namespace {

// Container nesting is parsed recursively, so untrusted input must not control the stack
// depth: a few bytes per level of "[[[[..." would otherwise overflow the stack long before
// any frame-size limit triggers. 64 levels is far beyond any legitimate probcon document.
constexpr int kMaxNestingDepth = 64;

class JsonParser {
 public:
  JsonParser(std::string_view text, std::string_view what) : text_(text), what_(what) {}

  Result<Json> Parse() {
    Json value;
    RETURN_IF_ERROR(ParseValue(&value));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON value");
    }
    return value;
  }

 private:
  Status Error(std::string message) const {
    return InvalidArgumentError(std::string(what_) + ": " + std::move(message) +
                                " at offset " + std::to_string(pos_));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Consume(char expected) {
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == expected) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ParseValue(Json* out) {
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{' || c == '[') {
      if (depth_ >= kMaxNestingDepth) {
        return Error("nesting deeper than " + std::to_string(kMaxNestingDepth) + " levels");
      }
      ++depth_;
      const Status status = c == '{' ? ParseObject(out) : ParseArray(out);
      --depth_;
      return status;
    }
    if (c == '"') {
      out->type = Json::Type::kString;
      return ParseString(&out->text);
    }
    if (c == 't' || c == 'f' || c == 'n') return ParseKeyword(out);
    return ParseNumber(out);
  }

  Status ParseObject(Json* out) {
    out->type = Json::Type::kObject;
    CHECK(Consume('{'));
    if (Consume('}')) return Status::Ok();
    while (true) {
      SkipWhitespace();
      std::string key;
      RETURN_IF_ERROR(ParseString(&key));
      if (!Consume(':')) return Error("expected ':' after object key");
      Json value;
      RETURN_IF_ERROR(ParseValue(&value));
      out->fields.emplace_back(std::move(key), std::move(value));
      if (Consume(',')) continue;
      if (Consume('}')) return Status::Ok();
      return Error("expected ',' or '}' in object");
    }
  }

  Status ParseArray(Json* out) {
    out->type = Json::Type::kArray;
    CHECK(Consume('['));
    if (Consume(']')) return Status::Ok();
    while (true) {
      Json value;
      RETURN_IF_ERROR(ParseValue(&value));
      out->items.push_back(std::move(value));
      if (Consume(',')) continue;
      if (Consume(']')) return Status::Ok();
      return Error("expected ',' or ']' in array");
    }
  }

  Status ParseString(std::string* out) {
    if (pos_ >= text_.size() || text_[pos_] != '"') return Error("expected string");
    ++pos_;
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return Status::Ok();
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        const char escaped = text_[pos_++];
        switch (escaped) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'b': out->push_back('\b'); break;
          case 'f': out->push_back('\f'); break;
          case 'n': out->push_back('\n'); break;
          case 'r': out->push_back('\r'); break;
          case 't': out->push_back('\t'); break;
          case 'u': RETURN_IF_ERROR(ParseUnicodeEscape(out)); break;
          default: return Error("unsupported escape sequence");
        }
        continue;
      }
      out->push_back(c);
    }
    return Error("unterminated string");
  }

  // Reads the four hex digits after a "\u" (pos_ already past the 'u').
  Status ParseHex4(uint32_t* out) {
    if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
    uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<uint32_t>(c - 'A' + 10);
      } else {
        return Error("invalid hex digit in \\u escape");
      }
    }
    *out = value;
    return Status::Ok();
  }

  // Decodes one \uXXXX escape (combining surrogate pairs) into UTF-8 bytes. The writer
  // emits \u00XX for control characters, so the parser must read them back for accepted
  // documents to round-trip.
  Status ParseUnicodeEscape(std::string* out) {
    uint32_t code = 0;
    RETURN_IF_ERROR(ParseHex4(&code));
    if (code >= 0xD800 && code <= 0xDBFF) {  // High surrogate: a low one must follow.
      if (pos_ + 2 > text_.size() || text_[pos_] != '\\' || text_[pos_ + 1] != 'u') {
        return Error("unpaired surrogate in \\u escape");
      }
      pos_ += 2;
      uint32_t low = 0;
      RETURN_IF_ERROR(ParseHex4(&low));
      if (low < 0xDC00 || low > 0xDFFF) {
        return Error("unpaired surrogate in \\u escape");
      }
      code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
    } else if (code >= 0xDC00 && code <= 0xDFFF) {
      return Error("unpaired surrogate in \\u escape");
    }
    if (code < 0x80) {
      out->push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (code >> 6)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else if (code < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (code >> 12)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (code >> 18)));
      out->push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
    return Status::Ok();
  }

  Status ParseKeyword(Json* out) {
    const std::string_view rest = text_.substr(pos_);
    if (rest.starts_with("true")) {
      out->type = Json::Type::kBool;
      out->boolean = true;
      pos_ += 4;
      return Status::Ok();
    }
    if (rest.starts_with("false")) {
      out->type = Json::Type::kBool;
      out->boolean = false;
      pos_ += 5;
      return Status::Ok();
    }
    if (rest.starts_with("null")) {
      out->type = Json::Type::kNull;
      pos_ += 4;
      return Status::Ok();
    }
    return Error("unrecognized token");
  }

  Status ParseNumber(Json* out) {
    const size_t start = pos_;
    auto is_number_char = [](char c) {
      return (c >= '0' && c <= '9') || c == '-' || c == '+' || c == '.' || c == 'e' ||
             c == 'E';
    };
    while (pos_ < text_.size() && is_number_char(text_[pos_])) ++pos_;
    if (pos_ == start) return Error("expected a value");
    out->type = Json::Type::kNumber;
    out->text = std::string(text_.substr(start, pos_ - start));
    return Status::Ok();
  }

  std::string_view text_;
  std::string_view what_;
  size_t pos_ = 0;
  int depth_ = 0;
};

void WriteValue(const Json& value, int indent, std::string* out) {
  const std::string pad = indent >= 0 ? std::string(2 * static_cast<size_t>(indent), ' ')
                                      : std::string();
  const std::string inner_pad =
      indent >= 0 ? std::string(2 * static_cast<size_t>(indent + 1), ' ') : std::string();
  switch (value.type) {
    case Json::Type::kNull:
      *out += "null";
      return;
    case Json::Type::kBool:
      *out += value.boolean ? "true" : "false";
      return;
    case Json::Type::kNumber:
      *out += value.text;
      return;
    case Json::Type::kString:
      *out += '"';
      *out += JsonEscapeString(value.text);
      *out += '"';
      return;
    case Json::Type::kArray: {
      if (value.items.empty()) {
        *out += "[]";
        return;
      }
      *out += '[';
      for (size_t i = 0; i < value.items.size(); ++i) {
        if (indent >= 0) {
          *out += i == 0 ? "\n" : ",\n";
          *out += inner_pad;
        } else if (i > 0) {
          *out += ", ";
        }
        WriteValue(value.items[i], indent >= 0 ? indent + 1 : -1, out);
      }
      if (indent >= 0) {
        *out += '\n';
        *out += pad;
      }
      *out += ']';
      return;
    }
    case Json::Type::kObject: {
      if (value.fields.empty()) {
        *out += "{}";
        return;
      }
      *out += '{';
      for (size_t i = 0; i < value.fields.size(); ++i) {
        if (indent >= 0) {
          *out += i == 0 ? "\n" : ",\n";
          *out += inner_pad;
        } else if (i > 0) {
          *out += ", ";
        }
        *out += '"';
        *out += JsonEscapeString(value.fields[i].first);
        *out += "\": ";
        WriteValue(value.fields[i].second, indent >= 0 ? indent + 1 : -1, out);
      }
      if (indent >= 0) {
        *out += '\n';
        *out += pad;
      }
      *out += '}';
      return;
    }
  }
}

Status TypeError(std::string_view what, std::string_view key, std::string_view expected) {
  return InvalidArgumentError(std::string(what) + ": field '" + std::string(key) +
                              "' must be " + std::string(expected));
}

// Whether `value` can be converted to int without undefined behavior. Written so NaN
// fails both comparisons; the bounds are exact doubles (|INT_MIN| and INT_MAX+1 are
// powers of two minus at most one, well within double's 53-bit mantissa).
bool FitsInInt(double value) {
  return value >= static_cast<double>(std::numeric_limits<int>::min()) &&
         value <= static_cast<double>(std::numeric_limits<int>::max());
}

}  // namespace

Json Json::Null() { return Json{}; }

Json Json::Bool(bool value) {
  Json out;
  out.type = Type::kBool;
  out.boolean = value;
  return out;
}

Json Json::Number(double value) {
  Json out;
  out.type = Type::kNumber;
  out.text = FormatDouble(value);
  return out;
}

Json Json::Number(int value) {
  Json out;
  out.type = Type::kNumber;
  out.text = std::to_string(value);
  return out;
}

Json Json::Number(uint64_t value) {
  Json out;
  out.type = Type::kNumber;
  out.text = std::to_string(value);
  return out;
}

Json Json::String(std::string value) {
  Json out;
  out.type = Type::kString;
  out.text = std::move(value);
  return out;
}

Json Json::Array() {
  Json out;
  out.type = Type::kArray;
  return out;
}

Json Json::Object() {
  Json out;
  out.type = Type::kObject;
  return out;
}

Json& Json::Append(Json item) {
  CHECK(type == Type::kArray);
  items.push_back(std::move(item));
  return *this;
}

Json& Json::Set(std::string_view key, Json value) {
  CHECK(type == Type::kObject);
  fields.emplace_back(std::string(key), std::move(value));
  return *this;
}

const Json* Json::Find(std::string_view key) const {
  for (const auto& [name, value] : fields) {
    if (name == key) return &value;
  }
  return nullptr;
}

double Json::NumberValue() const {
  if (type != Type::kNumber) return 0.0;
  return std::strtod(text.c_str(), nullptr);
}

Result<Json> ParseJson(std::string_view text, std::string_view what) {
  JsonParser parser(text, what);
  return parser.Parse();
}

std::string WriteJson(const Json& value, int indent) {
  std::string out;
  WriteValue(value, indent, &out);
  return out;
}

std::string FormatDouble(double value) {
  std::array<char, 32> buffer;
  const auto [ptr, ec] = std::to_chars(buffer.data(), buffer.data() + buffer.size(), value);
  CHECK(ec == std::errc());
  return std::string(buffer.data(), ptr);
}

std::string JsonEscapeString(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

Status JsonReadDouble(const Json& object, std::string_view key, double* out,
                      std::string_view what) {
  const Json* field = object.Find(key);
  if (field == nullptr) return Status::Ok();
  if (field->type != Json::Type::kNumber) return TypeError(what, key, "a number");
  *out = field->NumberValue();
  return Status::Ok();
}

Status JsonReadInt(const Json& object, std::string_view key, int* out,
                   std::string_view what) {
  double value = *out;
  RETURN_IF_ERROR(JsonReadDouble(object, key, &value, what));
  if (!FitsInInt(value)) {
    return TypeError(what, key, "an integer within int range");
  }
  *out = static_cast<int>(value);
  return Status::Ok();
}

Status JsonReadUint64(const Json& object, std::string_view key, uint64_t* out,
                      std::string_view what) {
  const Json* field = object.Find(key);
  if (field == nullptr) return Status::Ok();
  if (field->type != Json::Type::kNumber) return TypeError(what, key, "a number");
  // Parse the raw token strictly: from_chars over uint64_t rejects a sign, rejects
  // anything past 2^64-1, and `ptr` lets us reject trailing text ("1e3", "1.5") instead
  // of silently truncating — strtoull would wrap "-1" to 18446744073709551615.
  const std::string& text = field->text;
  uint64_t value = 0;
  const auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc() || ptr != text.data() + text.size()) {
    return TypeError(what, key, "a non-negative integer (decimal digits only)");
  }
  *out = value;
  return Status::Ok();
}

Status JsonReadBool(const Json& object, std::string_view key, bool* out,
                    std::string_view what) {
  const Json* field = object.Find(key);
  if (field == nullptr) return Status::Ok();
  if (field->type != Json::Type::kBool) return TypeError(what, key, "a boolean");
  *out = field->boolean;
  return Status::Ok();
}

Status JsonReadString(const Json& object, std::string_view key, std::string* out,
                      std::string_view what) {
  const Json* field = object.Find(key);
  if (field == nullptr) return Status::Ok();
  if (field->type != Json::Type::kString) return TypeError(what, key, "a string");
  *out = field->text;
  return Status::Ok();
}

Status JsonReadIntList(const Json& object, std::string_view key, std::vector<int>* out,
                       std::string_view what) {
  const Json* field = object.Find(key);
  if (field == nullptr) return Status::Ok();
  if (field->type != Json::Type::kArray) return TypeError(what, key, "an array");
  out->clear();
  for (const Json& item : field->items) {
    if (item.type != Json::Type::kNumber) {
      return TypeError(what, key, "an array of numbers");
    }
    const double value = item.NumberValue();
    if (!FitsInInt(value)) {
      return TypeError(what, key, "an array of integers within int range");
    }
    out->push_back(static_cast<int>(value));
  }
  return Status::Ok();
}

Status JsonReadDoubleList(const Json& object, std::string_view key, std::vector<double>* out,
                          std::string_view what) {
  const Json* field = object.Find(key);
  if (field == nullptr) return Status::Ok();
  if (field->type != Json::Type::kArray) return TypeError(what, key, "an array");
  out->clear();
  for (const Json& item : field->items) {
    if (item.type != Json::Type::kNumber) {
      return TypeError(what, key, "an array of numbers");
    }
    out->push_back(item.NumberValue());
  }
  return Status::Ok();
}

}  // namespace probcon
