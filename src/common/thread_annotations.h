// Thread-safety annotation macros, enforced twice:
//
//   1. probcon-lint's concurrency rules (R6-R8, see docs/LINTING.md) parse these macros
//      textually and enforce them on every build, with every compiler, including the
//      regions clang cannot see through (std::unique_lock, manual lock()/unlock()).
//   2. Under clang the macros expand to the native thread-safety attributes, so the
//      dedicated `lint-thread-safety` CI job (clang + libc++ +
//      -D_LIBCPP_ENABLE_THREAD_SAFETY_ANNOTATIONS -Wthread-safety -Werror) re-checks the
//      same contracts with a completely independent implementation.
//
// Under gcc (the default toolchain here) everything expands to nothing, so annotations are
// free and the -Werror build is unaffected.
//
// Conventions:
//   - Every mutex-protected member is annotated PROBCON_GUARDED_BY(its_mutex_).
//   - Functions that assume a caller-held lock (the `FooLocked()` naming convention) are
//     annotated PROBCON_REQUIRES(mutex_).
//   - Intended lock order is declared on the mutex members themselves with
//     PROBCON_ACQUIRED_BEFORE / PROBCON_ACQUIRED_AFTER; probcon-lint folds the declared
//     edges into the global lock-order graph, so code that nests locks against the declared
//     order forms a cycle and fails R6 even before a second conflicting site exists.
//   - Functions that analyze locking their own way (e.g. std::unique_lock regions, which
//     clang's analysis cannot model) carry PROBCON_NO_THREAD_SAFETY_ANALYSIS with a comment;
//     probcon-lint still analyzes them, so coverage is never lost, only clang's double-check.

#ifndef PROBCON_SRC_COMMON_THREAD_ANNOTATIONS_H_
#define PROBCON_SRC_COMMON_THREAD_ANNOTATIONS_H_

#if defined(__clang__) && !defined(SWIG)
#define PROBCON_THREAD_ANNOTATION_ATTRIBUTE(x) __attribute__((x))
#else
#define PROBCON_THREAD_ANNOTATION_ATTRIBUTE(x)  // no-op outside clang
#endif

// Type-level: marks a class as a lockable capability (unused for std::mutex, which libc++
// annotates itself; available for future wrapper types).
#define PROBCON_CAPABILITY(x) PROBCON_THREAD_ANNOTATION_ATTRIBUTE(capability(x))
#define PROBCON_SCOPED_CAPABILITY PROBCON_THREAD_ANNOTATION_ATTRIBUTE(scoped_lockable)

// Data members.
#define PROBCON_GUARDED_BY(x) PROBCON_THREAD_ANNOTATION_ATTRIBUTE(guarded_by(x))
#define PROBCON_PT_GUARDED_BY(x) PROBCON_THREAD_ANNOTATION_ATTRIBUTE(pt_guarded_by(x))
#define PROBCON_ACQUIRED_BEFORE(...) \
  PROBCON_THREAD_ANNOTATION_ATTRIBUTE(acquired_before(__VA_ARGS__))
#define PROBCON_ACQUIRED_AFTER(...) \
  PROBCON_THREAD_ANNOTATION_ATTRIBUTE(acquired_after(__VA_ARGS__))

// Functions.
#define PROBCON_REQUIRES(...) \
  PROBCON_THREAD_ANNOTATION_ATTRIBUTE(requires_capability(__VA_ARGS__))
#define PROBCON_REQUIRES_SHARED(...) \
  PROBCON_THREAD_ANNOTATION_ATTRIBUTE(requires_shared_capability(__VA_ARGS__))
#define PROBCON_ACQUIRE(...) PROBCON_THREAD_ANNOTATION_ATTRIBUTE(acquire_capability(__VA_ARGS__))
#define PROBCON_RELEASE(...) PROBCON_THREAD_ANNOTATION_ATTRIBUTE(release_capability(__VA_ARGS__))
#define PROBCON_EXCLUDES(...) PROBCON_THREAD_ANNOTATION_ATTRIBUTE(locks_excluded(__VA_ARGS__))
#define PROBCON_RETURN_CAPABILITY(x) PROBCON_THREAD_ANNOTATION_ATTRIBUTE(lock_returned(x))
#define PROBCON_NO_THREAD_SAFETY_ANALYSIS \
  PROBCON_THREAD_ANNOTATION_ATTRIBUTE(no_thread_safety_analysis)

#endif  // PROBCON_SRC_COMMON_THREAD_ANNOTATIONS_H_
