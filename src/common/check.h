// Lightweight assertion macros in the style of Google's CHECK family.
//
// CHECK(cond) aborts the process (in every build type) when `cond` is false, printing the
// failing expression, source location, and an optional streamed message:
//
//   CHECK(quorum_size <= cluster_size) << "quorum " << quorum_size << " exceeds cluster";
//
// DCHECK is identical in debug builds and compiles to nothing in NDEBUG builds.

#ifndef PROBCON_SRC_COMMON_CHECK_H_
#define PROBCON_SRC_COMMON_CHECK_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string_view>

namespace probcon {
namespace internal {

// Accumulates the streamed message for a failed CHECK and aborts on destruction.
class CheckFailureStream {
 public:
  CheckFailureStream(std::string_view condition, std::string_view file, int line) {
    stream_ << "CHECK failed: " << condition << " at " << file << ":" << line;
  }

  CheckFailureStream(const CheckFailureStream&) = delete;
  CheckFailureStream& operator=(const CheckFailureStream&) = delete;

  [[noreturn]] ~CheckFailureStream() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }

  template <typename T>
  CheckFailureStream& operator<<(const T& value) {
    stream_ << " " << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

// Swallows the streamed message when the CHECK condition holds.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal
}  // namespace probcon

#define PROBCON_CHECK_IMPL(cond, cond_text)                                     \
  (cond) ? (void)0                                                             \
         : (void)(::probcon::internal::CheckFailureStream(cond_text, __FILE__, \
                                                          __LINE__))

#define CHECK(cond)                                                                       \
  if (cond) {                                                                             \
  } else                                                                                  \
    ::probcon::internal::CheckFailureStream(#cond, __FILE__, __LINE__)

#define CHECK_EQ(a, b) CHECK((a) == (b)) << "(" << (a) << " vs " << (b) << ")"
#define CHECK_NE(a, b) CHECK((a) != (b)) << "(" << (a) << " vs " << (b) << ")"
#define CHECK_LT(a, b) CHECK((a) < (b)) << "(" << (a) << " vs " << (b) << ")"
#define CHECK_LE(a, b) CHECK((a) <= (b)) << "(" << (a) << " vs " << (b) << ")"
#define CHECK_GT(a, b) CHECK((a) > (b)) << "(" << (a) << " vs " << (b) << ")"
#define CHECK_GE(a, b) CHECK((a) >= (b)) << "(" << (a) << " vs " << (b) << ")"

#ifdef NDEBUG
#define DCHECK(cond) \
  if (true) {        \
  } else             \
    ::probcon::internal::NullStream()
#else
#define DCHECK(cond) CHECK(cond)
#endif

#endif  // PROBCON_SRC_COMMON_CHECK_H_
