// Minimal JSON document model shared by every subsystem that speaks JSON on disk or on the
// wire (chaos plan files, the probcon::serve query protocol).
//
// The model is deliberately small: objects keep their fields in insertion order (so writers
// are byte-deterministic), numbers keep their raw token on parse (so uint64 seeds survive
// without a double round-trip), and the writer emits either compact one-line documents or
// human-diffable two-space-indented ones. There is no DOM mutation API beyond appending —
// documents here are built once and serialized, or parsed once and read.

#ifndef PROBCON_SRC_COMMON_JSON_H_
#define PROBCON_SRC_COMMON_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/common/status.h"

namespace probcon {

struct Json {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  std::string text;  // Number token or decoded string.
  std::vector<Json> items;
  std::vector<std::pair<std::string, Json>> fields;

  // Builders (writer side). Numbers built from doubles use shortest round-trip formatting,
  // so structurally equal documents serialize byte-identically.
  static Json Null();
  static Json Bool(bool value);
  static Json Number(double value);
  static Json Number(int value);
  static Json Number(uint64_t value);
  static Json String(std::string value);
  static Json Array();
  static Json Object();

  Json& Append(Json item);                       // Arrays.
  Json& Set(std::string_view key, Json value);   // Objects; appends (no replace).

  // Reader-side lookup; nullptr when the key is absent. Linear scan (documents are small).
  const Json* Find(std::string_view key) const;

  bool IsNumber() const { return type == Type::kNumber; }
  bool IsObject() const { return type == Type::kObject; }
  bool IsArray() const { return type == Type::kArray; }
  bool IsString() const { return type == Type::kString; }

  // Number value of a kNumber node (0.0 otherwise).
  double NumberValue() const;
};

// Parses one JSON document; trailing non-whitespace is an error. `what` names the document
// in error messages ("plan JSON", "serve request", ...). Supported escapes: \" \\ \/ \n \t.
Result<Json> ParseJson(std::string_view text, std::string_view what = "JSON");

// Serializes. indent < 0: compact single line ({"a": 1, "b": [2]}). indent >= 0: two-space
// indentation starting at `indent` levels, matching the chaos plan-file layout.
std::string WriteJson(const Json& value, int indent = -1);

// Shortest round-trip formatting of a double (std::to_chars): the canonical number token
// used by every deterministic JSON writer in the repository.
std::string FormatDouble(double value);

// Escapes backslash, quote, and control characters for embedding in a JSON string literal.
std::string JsonEscapeString(std::string_view text);

// Typed field extraction. A missing field leaves `*out` untouched (callers pre-load
// defaults); a present field of the wrong type is an InvalidArgument error mentioning
// `what` and the key.
Status JsonReadDouble(const Json& object, std::string_view key, double* out,
                      std::string_view what = "JSON");
Status JsonReadInt(const Json& object, std::string_view key, int* out,
                   std::string_view what = "JSON");
Status JsonReadUint64(const Json& object, std::string_view key, uint64_t* out,
                      std::string_view what = "JSON");
Status JsonReadBool(const Json& object, std::string_view key, bool* out,
                    std::string_view what = "JSON");
Status JsonReadString(const Json& object, std::string_view key, std::string* out,
                      std::string_view what = "JSON");
Status JsonReadIntList(const Json& object, std::string_view key, std::vector<int>* out,
                       std::string_view what = "JSON");
Status JsonReadDoubleList(const Json& object, std::string_view key, std::vector<double>* out,
                          std::string_view what = "JSON");

}  // namespace probcon

#endif  // PROBCON_SRC_COMMON_JSON_H_
