#include "src/faultmodel/afr.h"

#include <cmath>

#include "src/common/check.h"

namespace probcon {

double RateFromAfr(double afr) {
  CHECK(afr >= 0.0 && afr < 1.0) << "AFR out of range:" << afr;
  return -std::log1p(-afr) / kHoursPerYear;
}

double AfrFromRate(double rate_per_hour) {
  CHECK_GE(rate_per_hour, 0.0);
  return -std::expm1(-rate_per_hour * kHoursPerYear);
}

double AfrFromMtbfHours(double mtbf_hours) {
  CHECK_GT(mtbf_hours, 0.0);
  return -std::expm1(-kHoursPerYear / mtbf_hours);
}

double MtbfHoursFromAfr(double afr) {
  CHECK(afr > 0.0 && afr < 1.0) << "AFR out of range:" << afr;
  return kHoursPerYear / (-std::log1p(-afr));
}

double RescaleWindowProbability(double p, double from_window, double to_window) {
  CHECK(p >= 0.0 && p < 1.0) << "probability out of range:" << p;
  CHECK_GT(from_window, 0.0);
  CHECK_GT(to_window, 0.0);
  return -std::expm1(std::log1p(-p) * to_window / from_window);
}

}  // namespace probcon
