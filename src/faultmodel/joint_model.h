// Joint failure models over a cluster for one analysis window (paper §2, "faults are
// correlated").
//
// A JointFailureModel describes the joint law of which nodes fail during a window. The
// independent model is what §3 of the paper analyzes; the correlated models capture the three
// correlation mechanisms §2 catalogs: platform-wide events (software rollouts, TEE
// vulnerabilities) as common-cause shocks, physical co-location (racks sharing vibration,
// temperature, power) as failure domains, and cluster-wide environmental drift as an
// exchangeable beta-binomial prior.
//
// Configurations are bitmasks: bit i set means node i failed during the window (N <= 64).
// Models expose exact per-configuration probabilities where tractable, so they compose with
// the exact enumeration analyzer as well as the Monte Carlo one.

#ifndef PROBCON_SRC_FAULTMODEL_JOINT_MODEL_H_
#define PROBCON_SRC_FAULTMODEL_JOINT_MODEL_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/common/rng.h"

namespace probcon {

using FailureConfiguration = uint64_t;

inline int CountFailures(FailureConfiguration config) { return __builtin_popcountll(config); }
inline bool NodeFailed(FailureConfiguration config, int node) {
  return (config >> node) & 1u;
}

class JointFailureModel {
 public:
  virtual ~JointFailureModel() = default;

  virtual int n() const = 0;

  // Samples a failure configuration for one window.
  virtual FailureConfiguration Sample(Rng& rng) const = 0;

  // P(node fails during the window), marginally.
  virtual double MarginalFailureProbability(int node) const = 0;

  // Exact P(configuration == config), or nullopt when only sampling is tractable.
  virtual std::optional<double> ConfigurationProbability(FailureConfiguration config) const {
    (void)config;
    return std::nullopt;
  }

  virtual std::string Describe() const = 0;
  virtual std::unique_ptr<JointFailureModel> Clone() const = 0;
};

// Nodes fail independently with per-node probabilities (the paper's §3 model).
class IndependentFailureModel final : public JointFailureModel {
 public:
  explicit IndependentFailureModel(std::vector<double> probabilities);

  static IndependentFailureModel Uniform(int n, double p);

  int n() const override { return static_cast<int>(probabilities_.size()); }
  FailureConfiguration Sample(Rng& rng) const override;
  double MarginalFailureProbability(int node) const override;
  std::optional<double> ConfigurationProbability(FailureConfiguration config) const override;
  std::string Describe() const override;
  std::unique_ptr<JointFailureModel> Clone() const override;

  const std::vector<double>& probabilities() const { return probabilities_; }

 private:
  std::vector<double> probabilities_;
};

// Independent base failures plus a cluster-wide shock: with probability `shock_probability`
// a common-cause event occurs (rollout bug, platform CVE) and each node additionally fails
// with its `shock_hit_probability`. Exact probabilities available by conditioning on the
// shock.
class CommonCauseFailureModel final : public JointFailureModel {
 public:
  CommonCauseFailureModel(std::vector<double> base_probabilities, double shock_probability,
                          std::vector<double> shock_hit_probabilities);

  int n() const override { return static_cast<int>(base_probabilities_.size()); }
  FailureConfiguration Sample(Rng& rng) const override;
  double MarginalFailureProbability(int node) const override;
  std::optional<double> ConfigurationProbability(FailureConfiguration config) const override;
  std::string Describe() const override;
  std::unique_ptr<JointFailureModel> Clone() const override;

 private:
  std::vector<double> base_probabilities_;
  double shock_probability_;
  std::vector<double> shock_hit_probabilities_;
};

// Nodes live in failure domains (racks / power zones); a domain event fails every member.
// On top of that, nodes fail independently with their base probabilities.
class FailureDomainModel final : public JointFailureModel {
 public:
  // `domain_of[i]` is node i's domain id in [0, #domains); `domain_probabilities[d]` is the
  // probability that domain d suffers a domain-wide event in the window.
  FailureDomainModel(std::vector<double> base_probabilities, std::vector<int> domain_of,
                     std::vector<double> domain_probabilities);

  int n() const override { return static_cast<int>(base_probabilities_.size()); }
  FailureConfiguration Sample(Rng& rng) const override;
  double MarginalFailureProbability(int node) const override;
  // Exact by enumerating domain-event subsets; intended for #domains <= ~20.
  std::optional<double> ConfigurationProbability(FailureConfiguration config) const override;
  std::string Describe() const override;
  std::unique_ptr<JointFailureModel> Clone() const override;

  int domain_count() const { return static_cast<int>(domain_probabilities_.size()); }

 private:
  std::vector<double> base_probabilities_;
  std::vector<int> domain_of_;
  std::vector<double> domain_probabilities_;
};

// Exchangeable correlation: a window-wide failure level p is drawn from Beta(alpha, beta) and
// nodes then fail iid with probability p. Captures "good days / bad days" drift; the marginal
// is alpha/(alpha+beta) but failures are positively correlated.
class BetaBinomialFailureModel final : public JointFailureModel {
 public:
  BetaBinomialFailureModel(int n, double alpha, double beta);

  int n() const override { return n_; }
  FailureConfiguration Sample(Rng& rng) const override;
  double MarginalFailureProbability(int node) const override;
  std::optional<double> ConfigurationProbability(FailureConfiguration config) const override;
  std::string Describe() const override;
  std::unique_ptr<JointFailureModel> Clone() const override;

  // Pairwise correlation coefficient of failure indicators: 1/(alpha+beta+1).
  double PairwiseCorrelation() const { return 1.0 / (alpha_ + beta_ + 1.0); }

 private:
  int n_;
  double alpha_;
  double beta_;
};

// Gamma(shape, 1) sampler (Marsaglia-Tsang); exposed for reuse by telemetry generators.
double SampleGamma(Rng& rng, double shape);
// Beta(alpha, beta) sampler.
double SampleBeta(Rng& rng, double alpha, double beta);

}  // namespace probcon

#endif  // PROBCON_SRC_FAULTMODEL_JOINT_MODEL_H_
