#include "src/faultmodel/estimator.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "src/common/check.h"
#include "src/prob/kahan.h"

namespace probcon {
namespace {

// Profile score for the Weibull shape parameter k with left truncation and right censoring.
// For fixed k the scale MLE satisfies lambda^k = sum(t_i^k - e_i^k) / D with D = #failures;
// substituting back, the score in k is
//   g(k) = D/k + sum_{failures} log t_i - D * sum(t^k log t - e^k log e) / sum(t^k - e^k).
double WeibullProfileScore(double k, const std::vector<LifetimeObservation>& observations) {
  double failures = 0.0;
  KahanSum log_t_failures;
  KahanSum powered;           // sum t^k - e^k
  KahanSum powered_weighted;  // sum t^k log t - e^k log e
  for (const auto& obs : observations) {
    if (obs.failed) {
      failures += 1.0;
      log_t_failures.Add(std::log(obs.exit_age));
    }
    const double tk = std::pow(obs.exit_age, k);
    powered.Add(tk);
    powered_weighted.Add(tk * std::log(obs.exit_age));
    if (obs.entry_age > 0.0) {
      const double ek = std::pow(obs.entry_age, k);
      powered.Add(-ek);
      powered_weighted.Add(-ek * std::log(obs.entry_age));
    }
  }
  return failures / k + log_t_failures.Total() -
         failures * powered_weighted.Total() / powered.Total();
}

}  // namespace

Status ValidateObservations(const std::vector<LifetimeObservation>& observations) {
  if (observations.empty()) {
    return InvalidArgumentError("no observations");
  }
  for (const auto& obs : observations) {
    if (obs.entry_age < 0.0 || !(obs.exit_age > obs.entry_age)) {
      return InvalidArgumentError("observation interval must satisfy 0 <= entry < exit");
    }
  }
  return Status::Ok();
}

Result<ConstantFaultCurve> FitExponential(
    const std::vector<LifetimeObservation>& observations) {
  RETURN_IF_ERROR(ValidateObservations(observations));
  double failures = 0.0;
  KahanSum exposure;
  for (const auto& obs : observations) {
    if (obs.failed) {
      failures += 1.0;
    }
    exposure.Add(obs.exit_age - obs.entry_age);
  }
  if (failures == 0.0) {
    return InvalidArgumentError("exponential MLE needs at least one failure");
  }
  return ConstantFaultCurve(failures / exposure.Total());
}

Result<WeibullFaultCurve> FitWeibull(const std::vector<LifetimeObservation>& observations) {
  RETURN_IF_ERROR(ValidateObservations(observations));
  int failures = 0;
  double first_failure_age = -1.0;
  bool distinct_failure_ages = false;
  for (const auto& obs : observations) {
    if (!obs.failed) {
      continue;
    }
    ++failures;
    if (first_failure_age < 0.0) {
      first_failure_age = obs.exit_age;
    } else if (obs.exit_age != first_failure_age) {
      distinct_failure_ages = true;
    }
  }
  if (failures < 2 || !distinct_failure_ages) {
    return InvalidArgumentError("Weibull MLE needs >= 2 failures at distinct ages");
  }

  // The profile score is decreasing in k; bisect for its root.
  double lo = 0.05;
  double hi = 50.0;
  double score_lo = WeibullProfileScore(lo, observations);
  double score_hi = WeibullProfileScore(hi, observations);
  if (score_lo < 0.0 || score_hi > 0.0) {
    return InvalidArgumentError("Weibull shape MLE outside [0.05, 50]");
  }
  for (int i = 0; i < 200; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (WeibullProfileScore(mid, observations) > 0.0) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  const double shape = 0.5 * (lo + hi);

  KahanSum powered;
  for (const auto& obs : observations) {
    powered.Add(std::pow(obs.exit_age, shape));
    if (obs.entry_age > 0.0) {
      powered.Add(-std::pow(obs.entry_age, shape));
    }
  }
  const double scale = std::pow(powered.Total() / failures, 1.0 / shape);
  return WeibullFaultCurve(shape, scale);
}

Result<std::vector<TraceFaultCurve::Point>> NelsonAalen(
    const std::vector<LifetimeObservation>& observations) {
  RETURN_IF_ERROR(ValidateObservations(observations));
  // Group failures by age.
  std::map<double, int> failures_at;
  for (const auto& obs : observations) {
    if (obs.failed) {
      failures_at[obs.exit_age] += 1;
    }
  }
  if (failures_at.empty()) {
    return InvalidArgumentError("Nelson-Aalen needs at least one failure");
  }

  std::vector<TraceFaultCurve::Point> points;
  points.reserve(failures_at.size() + 1);
  KahanSum cumulative;
  points.push_back({0.0, 0.0});
  for (const auto& [age, count] : failures_at) {
    // Risk set: devices under observation just before `age`.
    int at_risk = 0;
    for (const auto& obs : observations) {
      if (obs.entry_age < age && obs.exit_age >= age) {
        ++at_risk;
      }
    }
    CHECK_GT(at_risk, 0);
    cumulative.Add(static_cast<double>(count) / static_cast<double>(at_risk));
    points.push_back({age, cumulative.Total()});
  }
  return points;
}

double LogLikelihood(const FaultCurve& curve,
                     const std::vector<LifetimeObservation>& observations) {
  KahanSum ll;
  for (const auto& obs : observations) {
    if (obs.failed) {
      ll.Add(std::log(std::max(curve.HazardRate(obs.exit_age), 1e-300)));
    }
    ll.Add(-(curve.CumulativeHazard(obs.exit_age) - curve.CumulativeHazard(obs.entry_age)));
  }
  return ll.Total();
}

}  // namespace probcon
