#include "src/faultmodel/fault_curve.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "src/common/check.h"

namespace probcon {
namespace {

// Adaptive Simpson integration for curves without closed-form cumulative hazards.
double SimpsonStep(const FaultCurve& curve, double a, double fa, double b, double fb) {
  const double m = 0.5 * (a + b);
  const double fm = curve.HazardRate(m);
  return (b - a) / 6.0 * (fa + 4.0 * fm + fb);
}

double AdaptiveSimpson(const FaultCurve& curve, double a, double fa, double b, double fb,
                       double whole, double tolerance, int depth) {
  const double m = 0.5 * (a + b);
  const double fm = curve.HazardRate(m);
  const double left = SimpsonStep(curve, a, fa, m, fm);
  const double right = SimpsonStep(curve, m, fm, b, fb);
  const double delta = left + right - whole;
  if (depth <= 0 || std::fabs(delta) <= 15.0 * tolerance) {
    return left + right + delta / 15.0;
  }
  return AdaptiveSimpson(curve, a, fa, m, fm, left, 0.5 * tolerance, depth - 1) +
         AdaptiveSimpson(curve, m, fm, b, fb, right, 0.5 * tolerance, depth - 1);
}

}  // namespace

double FaultCurve::CumulativeHazard(double t) const {
  CHECK_GE(t, 0.0);
  if (t == 0.0) {
    return 0.0;
  }
  const double fa = HazardRate(0.0);
  const double fb = HazardRate(t);
  const double whole = SimpsonStep(*this, 0.0, fa, t, fb);
  return AdaptiveSimpson(*this, 0.0, fa, t, fb, whole, 1e-12, 40);
}

double FaultCurve::Survival(double t) const { return std::exp(-CumulativeHazard(t)); }

double FaultCurve::FailureProbability(double t0, double t1) const {
  CHECK(t0 >= 0.0 && t1 >= t0) << "bad window [" << t0 << "," << t1 << "]";
  const double delta_hazard = CumulativeHazard(t1) - CumulativeHazard(t0);
  return -std::expm1(-std::max(0.0, delta_hazard));
}

double FaultCurve::SampleFailureAge(double current_age, double unit_uniform) const {
  CHECK(unit_uniform >= 0.0 && unit_uniform < 1.0);
  // Invert S(t | current_age) = u, i.e. find t with H(t) - H(current_age) = -log(u').
  const double target = CumulativeHazard(current_age) - std::log1p(-unit_uniform);
  // Bracket by doubling, then bisect.
  double lo = current_age;
  double hi = std::max(current_age, 1.0);
  int expansions = 0;
  while (CumulativeHazard(hi) < target && expansions < 200) {
    lo = hi;
    hi *= 2.0;
    ++expansions;
  }
  if (CumulativeHazard(hi) < target) {
    return hi;  // Hazard saturates; report the far horizon.
  }
  for (int i = 0; i < 100; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (CumulativeHazard(mid) < target) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

// ---------------------------------------------------------------------------
// ConstantFaultCurve

ConstantFaultCurve::ConstantFaultCurve(double rate) : rate_(rate) {
  CHECK_GE(rate, 0.0);
}

ConstantFaultCurve ConstantFaultCurve::FromWindowProbability(double p, double window) {
  CHECK(p >= 0.0 && p < 1.0) << "window probability out of range:" << p;
  CHECK_GT(window, 0.0);
  return ConstantFaultCurve(-std::log1p(-p) / window);
}

double ConstantFaultCurve::SampleFailureAge(double current_age, double unit_uniform) const {
  if (rate_ == 0.0) {
    return std::numeric_limits<double>::infinity();
  }
  return current_age - std::log1p(-unit_uniform) / rate_;
}

std::string ConstantFaultCurve::Describe() const {
  std::ostringstream os;
  os << "constant(rate=" << rate_ << ")";
  return os.str();
}

std::unique_ptr<FaultCurve> ConstantFaultCurve::Clone() const {
  return std::make_unique<ConstantFaultCurve>(*this);
}

// ---------------------------------------------------------------------------
// WeibullFaultCurve

WeibullFaultCurve::WeibullFaultCurve(double shape, double scale)
    : shape_(shape), scale_(scale) {
  CHECK_GT(shape, 0.0);
  CHECK_GT(scale, 0.0);
}

double WeibullFaultCurve::HazardRate(double t) const {
  CHECK_GE(t, 0.0);
  if (t == 0.0) {
    if (shape_ < 1.0) {
      // Hazard diverges at 0 for infant-mortality shapes; clamp to a large finite value so
      // numeric consumers stay well-defined.
      return 1e12;
    }
    return shape_ == 1.0 ? 1.0 / scale_ : 0.0;
  }
  return (shape_ / scale_) * std::pow(t / scale_, shape_ - 1.0);
}

double WeibullFaultCurve::CumulativeHazard(double t) const {
  CHECK_GE(t, 0.0);
  return std::pow(t / scale_, shape_);
}

double WeibullFaultCurve::SampleFailureAge(double current_age, double unit_uniform) const {
  const double target = CumulativeHazard(current_age) - std::log1p(-unit_uniform);
  return scale_ * std::pow(target, 1.0 / shape_);
}

std::string WeibullFaultCurve::Describe() const {
  std::ostringstream os;
  os << "weibull(shape=" << shape_ << ", scale=" << scale_ << ")";
  return os.str();
}

std::unique_ptr<FaultCurve> WeibullFaultCurve::Clone() const {
  return std::make_unique<WeibullFaultCurve>(*this);
}

// ---------------------------------------------------------------------------
// GompertzFaultCurve

GompertzFaultCurve::GompertzFaultCurve(double base_rate, double aging_rate)
    : base_rate_(base_rate), aging_rate_(aging_rate) {
  CHECK_GE(base_rate, 0.0);
}

double GompertzFaultCurve::HazardRate(double t) const {
  CHECK_GE(t, 0.0);
  return base_rate_ * std::exp(aging_rate_ * t);
}

double GompertzFaultCurve::CumulativeHazard(double t) const {
  CHECK_GE(t, 0.0);
  if (aging_rate_ == 0.0) {
    return base_rate_ * t;
  }
  // Integral of b*e^{a s} over [0, t] = b/a * (e^{a t} - 1).
  return base_rate_ / aging_rate_ * std::expm1(aging_rate_ * t);
}

std::string GompertzFaultCurve::Describe() const {
  std::ostringstream os;
  os << "gompertz(base=" << base_rate_ << ", aging=" << aging_rate_ << ")";
  return os.str();
}

std::unique_ptr<FaultCurve> GompertzFaultCurve::Clone() const {
  return std::make_unique<GompertzFaultCurve>(*this);
}

// ---------------------------------------------------------------------------
// CompositeFaultCurve

CompositeFaultCurve::CompositeFaultCurve(std::vector<std::unique_ptr<FaultCurve>> components)
    : components_(std::move(components)) {
  CHECK(!components_.empty()) << "composite curve needs at least one component";
  for (const auto& component : components_) {
    CHECK(component != nullptr);
  }
}

CompositeFaultCurve::CompositeFaultCurve(const CompositeFaultCurve& other) {
  components_.reserve(other.components_.size());
  for (const auto& component : other.components_) {
    components_.push_back(component->Clone());
  }
}

double CompositeFaultCurve::HazardRate(double t) const {
  double sum = 0.0;
  for (const auto& component : components_) {
    sum += component->HazardRate(t);
  }
  return sum;
}

double CompositeFaultCurve::CumulativeHazard(double t) const {
  double sum = 0.0;
  for (const auto& component : components_) {
    sum += component->CumulativeHazard(t);
  }
  return sum;
}

std::string CompositeFaultCurve::Describe() const {
  std::ostringstream os;
  os << "composite(";
  for (size_t i = 0; i < components_.size(); ++i) {
    os << (i == 0 ? "" : " + ") << components_[i]->Describe();
  }
  os << ")";
  return os.str();
}

std::unique_ptr<FaultCurve> CompositeFaultCurve::Clone() const {
  return std::make_unique<CompositeFaultCurve>(*this);
}

CompositeFaultCurve MakeBathtubCurve(double infant_shape, double infant_scale,
                                     double useful_life_rate, double wearout_shape,
                                     double wearout_scale) {
  CHECK_LT(infant_shape, 1.0);
  CHECK_GT(wearout_shape, 1.0);
  std::vector<std::unique_ptr<FaultCurve>> parts;
  parts.push_back(std::make_unique<WeibullFaultCurve>(infant_shape, infant_scale));
  parts.push_back(std::make_unique<ConstantFaultCurve>(useful_life_rate));
  parts.push_back(std::make_unique<WeibullFaultCurve>(wearout_shape, wearout_scale));
  return CompositeFaultCurve(std::move(parts));
}

// ---------------------------------------------------------------------------
// PiecewiseLinearFaultCurve

PiecewiseLinearFaultCurve::PiecewiseLinearFaultCurve(std::vector<Knot> knots)
    : knots_(std::move(knots)) {
  CHECK(!knots_.empty());
  CHECK_GE(knots_.front().time, 0.0);
  for (size_t i = 0; i < knots_.size(); ++i) {
    CHECK_GE(knots_[i].hazard, 0.0);
    if (i > 0) {
      CHECK_GT(knots_[i].time, knots_[i - 1].time) << "knot times must strictly increase";
    }
  }
  // Precompute H at each knot (trapezoids); the hazard before the first knot is held at the
  // first knot's value.
  cumulative_at_knot_.resize(knots_.size());
  cumulative_at_knot_[0] = knots_[0].hazard * knots_[0].time;
  for (size_t i = 1; i < knots_.size(); ++i) {
    const double dt = knots_[i].time - knots_[i - 1].time;
    cumulative_at_knot_[i] =
        cumulative_at_knot_[i - 1] + 0.5 * (knots_[i].hazard + knots_[i - 1].hazard) * dt;
  }
}

double PiecewiseLinearFaultCurve::HazardRate(double t) const {
  CHECK_GE(t, 0.0);
  if (t <= knots_.front().time) {
    return knots_.front().hazard;
  }
  if (t >= knots_.back().time) {
    return knots_.back().hazard;
  }
  const auto it = std::lower_bound(
      knots_.begin(), knots_.end(), t,
      [](const Knot& knot, double time) { return knot.time < time; });
  const size_t hi = static_cast<size_t>(it - knots_.begin());
  const Knot& a = knots_[hi - 1];
  const Knot& b = knots_[hi];
  const double alpha = (t - a.time) / (b.time - a.time);
  return a.hazard + alpha * (b.hazard - a.hazard);
}

double PiecewiseLinearFaultCurve::CumulativeHazard(double t) const {
  CHECK_GE(t, 0.0);
  if (t <= knots_.front().time) {
    return knots_.front().hazard * t;
  }
  if (t >= knots_.back().time) {
    return cumulative_at_knot_.back() + knots_.back().hazard * (t - knots_.back().time);
  }
  const auto it = std::lower_bound(
      knots_.begin(), knots_.end(), t,
      [](const Knot& knot, double time) { return knot.time < time; });
  const size_t hi = static_cast<size_t>(it - knots_.begin());
  const Knot& a = knots_[hi - 1];
  const double h_t = HazardRate(t);
  return cumulative_at_knot_[hi - 1] + 0.5 * (a.hazard + h_t) * (t - a.time);
}

std::string PiecewiseLinearFaultCurve::Describe() const {
  std::ostringstream os;
  os << "piecewise_linear(" << knots_.size() << " knots)";
  return os.str();
}

std::unique_ptr<FaultCurve> PiecewiseLinearFaultCurve::Clone() const {
  return std::make_unique<PiecewiseLinearFaultCurve>(*this);
}

// ---------------------------------------------------------------------------
// TraceFaultCurve

TraceFaultCurve::TraceFaultCurve(std::vector<Point> points) : points_(std::move(points)) {
  CHECK_GE(points_.size(), 2u) << "trace curve needs at least two points";
  CHECK_GE(points_.front().age, 0.0);
  CHECK_GE(points_.front().cumulative_hazard, 0.0);
  for (size_t i = 1; i < points_.size(); ++i) {
    CHECK_GT(points_[i].age, points_[i - 1].age);
    CHECK_GE(points_[i].cumulative_hazard, points_[i - 1].cumulative_hazard)
        << "cumulative hazard must be nondecreasing";
  }
}

double TraceFaultCurve::HazardRate(double t) const {
  CHECK_GE(t, 0.0);
  // Slope of the interpolated cumulative hazard.
  if (t >= points_.back().age) {
    const auto& a = points_[points_.size() - 2];
    const auto& b = points_.back();
    return (b.cumulative_hazard - a.cumulative_hazard) / (b.age - a.age);
  }
  size_t hi = 1;
  while (points_[hi].age < t) {
    ++hi;
  }
  const auto& a = points_[hi - 1];
  const auto& b = points_[hi];
  return (b.cumulative_hazard - a.cumulative_hazard) / (b.age - a.age);
}

double TraceFaultCurve::CumulativeHazard(double t) const {
  CHECK_GE(t, 0.0);
  if (t <= points_.front().age) {
    // Linear ramp from the origin to the first observation.
    if (points_.front().age == 0.0) {
      return points_.front().cumulative_hazard;
    }
    return points_.front().cumulative_hazard * (t / points_.front().age);
  }
  if (t >= points_.back().age) {
    return points_.back().cumulative_hazard + HazardRate(t) * (t - points_.back().age);
  }
  size_t hi = 1;
  while (points_[hi].age < t) {
    ++hi;
  }
  const auto& a = points_[hi - 1];
  const auto& b = points_[hi];
  const double alpha = (t - a.age) / (b.age - a.age);
  return a.cumulative_hazard + alpha * (b.cumulative_hazard - a.cumulative_hazard);
}

std::string TraceFaultCurve::Describe() const {
  std::ostringstream os;
  os << "trace(" << points_.size() << " points)";
  return os.str();
}

std::unique_ptr<FaultCurve> TraceFaultCurve::Clone() const {
  return std::make_unique<TraceFaultCurve>(*this);
}

}  // namespace probcon
