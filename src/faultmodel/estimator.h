// Fitting fault curves from fleet telemetry (paper §2/§4: "fault curves can be computed from
// telemetry").
//
// Input is survival data in its standard fleet form: per-device observation intervals that are
// left-truncated (a device enters monitoring at some age) and right-censored (many devices are
// still alive when the data is cut). Estimators:
//
//   * FitExponential  — MLE rate = failures / device-hours of exposure (the AFR computation
//                       Backblaze publishes).
//   * FitWeibull      — profile-likelihood MLE for (shape, scale) with censoring+truncation;
//                       shape < 1 detects infant mortality, > 1 wear-out.
//   * NelsonAalen     — nonparametric cumulative-hazard estimate, consumable as a
//                       TraceFaultCurve for fully data-driven curves.

#ifndef PROBCON_SRC_FAULTMODEL_ESTIMATOR_H_
#define PROBCON_SRC_FAULTMODEL_ESTIMATOR_H_

#include <vector>

#include "src/common/status.h"
#include "src/faultmodel/fault_curve.h"

namespace probcon {

struct LifetimeObservation {
  double entry_age = 0.0;  // Age at which observation began (left truncation).
  double exit_age = 0.0;   // Age at failure, or at censoring.
  bool failed = false;     // True if the device failed at exit_age; false if censored.
};

// Validates an observation set: nonempty, exit > entry, ages nonnegative.
Status ValidateObservations(const std::vector<LifetimeObservation>& observations);

// MLE under a constant hazard. Requires at least one failure.
Result<ConstantFaultCurve> FitExponential(const std::vector<LifetimeObservation>& observations);

// Profile-likelihood MLE under a Weibull hazard. Requires at least two failures at distinct
// ages; searches shape in [0.05, 50].
Result<WeibullFaultCurve> FitWeibull(const std::vector<LifetimeObservation>& observations);

// Nelson-Aalen cumulative hazard estimate: one point per distinct failure age, with increments
// d_j / (number at risk just before that age). The result plugs into TraceFaultCurve.
Result<std::vector<TraceFaultCurve::Point>> NelsonAalen(
    const std::vector<LifetimeObservation>& observations);

// Log-likelihood of `curve` on `observations` (truncation/censoring aware); model-comparison
// helper for choosing between fitted shapes.
double LogLikelihood(const FaultCurve& curve,
                     const std::vector<LifetimeObservation>& observations);

}  // namespace probcon

#endif  // PROBCON_SRC_FAULTMODEL_ESTIMATOR_H_
