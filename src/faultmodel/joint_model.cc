#include "src/faultmodel/joint_model.h"

#include <cmath>
#include <sstream>

#include "src/common/check.h"

namespace probcon {
namespace {

void CheckProbabilityVector(const std::vector<double>& probabilities) {
  CHECK(!probabilities.empty());
  CHECK_LE(probabilities.size(), 64u) << "bitmask configurations support up to 64 nodes";
  for (const double p : probabilities) {
    CHECK(p >= 0.0 && p <= 1.0) << "probability out of range:" << p;
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// IndependentFailureModel

IndependentFailureModel::IndependentFailureModel(std::vector<double> probabilities)
    : probabilities_(std::move(probabilities)) {
  CheckProbabilityVector(probabilities_);
}

IndependentFailureModel IndependentFailureModel::Uniform(int n, double p) {
  CHECK_GT(n, 0);
  return IndependentFailureModel(std::vector<double>(static_cast<size_t>(n), p));
}

FailureConfiguration IndependentFailureModel::Sample(Rng& rng) const {
  FailureConfiguration config = 0;
  for (size_t i = 0; i < probabilities_.size(); ++i) {
    if (rng.NextBernoulli(probabilities_[i])) {
      config |= FailureConfiguration{1} << i;
    }
  }
  return config;
}

double IndependentFailureModel::MarginalFailureProbability(int node) const {
  CHECK(node >= 0 && node < n());
  return probabilities_[node];
}

std::optional<double> IndependentFailureModel::ConfigurationProbability(
    FailureConfiguration config) const {
  double prob = 1.0;
  for (int i = 0; i < n(); ++i) {
    prob *= NodeFailed(config, i) ? probabilities_[i] : (1.0 - probabilities_[i]);
  }
  return prob;
}

std::string IndependentFailureModel::Describe() const {
  std::ostringstream os;
  os << "independent(n=" << n() << ")";
  return os.str();
}

std::unique_ptr<JointFailureModel> IndependentFailureModel::Clone() const {
  return std::make_unique<IndependentFailureModel>(*this);
}

// ---------------------------------------------------------------------------
// CommonCauseFailureModel

CommonCauseFailureModel::CommonCauseFailureModel(std::vector<double> base_probabilities,
                                                 double shock_probability,
                                                 std::vector<double> shock_hit_probabilities)
    : base_probabilities_(std::move(base_probabilities)),
      shock_probability_(shock_probability),
      shock_hit_probabilities_(std::move(shock_hit_probabilities)) {
  CheckProbabilityVector(base_probabilities_);
  CheckProbabilityVector(shock_hit_probabilities_);
  CHECK_EQ(base_probabilities_.size(), shock_hit_probabilities_.size());
  CHECK(shock_probability >= 0.0 && shock_probability <= 1.0);
}

FailureConfiguration CommonCauseFailureModel::Sample(Rng& rng) const {
  const bool shock = rng.NextBernoulli(shock_probability_);
  FailureConfiguration config = 0;
  for (int i = 0; i < n(); ++i) {
    bool failed = rng.NextBernoulli(base_probabilities_[i]);
    if (shock && !failed) {
      failed = rng.NextBernoulli(shock_hit_probabilities_[i]);
    }
    if (failed) {
      config |= FailureConfiguration{1} << i;
    }
  }
  return config;
}

double CommonCauseFailureModel::MarginalFailureProbability(int node) const {
  CHECK(node >= 0 && node < n());
  const double base = base_probabilities_[node];
  const double with_shock = base + (1.0 - base) * shock_hit_probabilities_[node];
  return (1.0 - shock_probability_) * base + shock_probability_ * with_shock;
}

std::optional<double> CommonCauseFailureModel::ConfigurationProbability(
    FailureConfiguration config) const {
  // Condition on the shock indicator.
  double no_shock = 1.0;
  double with_shock = 1.0;
  for (int i = 0; i < n(); ++i) {
    const double base = base_probabilities_[i];
    const double combined = base + (1.0 - base) * shock_hit_probabilities_[i];
    if (NodeFailed(config, i)) {
      no_shock *= base;
      with_shock *= combined;
    } else {
      no_shock *= 1.0 - base;
      with_shock *= 1.0 - combined;
    }
  }
  return (1.0 - shock_probability_) * no_shock + shock_probability_ * with_shock;
}

std::string CommonCauseFailureModel::Describe() const {
  std::ostringstream os;
  os << "common_cause(n=" << n() << ", shock=" << shock_probability_ << ")";
  return os.str();
}

std::unique_ptr<JointFailureModel> CommonCauseFailureModel::Clone() const {
  return std::make_unique<CommonCauseFailureModel>(*this);
}

// ---------------------------------------------------------------------------
// FailureDomainModel

FailureDomainModel::FailureDomainModel(std::vector<double> base_probabilities,
                                       std::vector<int> domain_of,
                                       std::vector<double> domain_probabilities)
    : base_probabilities_(std::move(base_probabilities)),
      domain_of_(std::move(domain_of)),
      domain_probabilities_(std::move(domain_probabilities)) {
  CheckProbabilityVector(base_probabilities_);
  CHECK_EQ(domain_of_.size(), base_probabilities_.size());
  CHECK(!domain_probabilities_.empty());
  for (const double p : domain_probabilities_) {
    CHECK(p >= 0.0 && p <= 1.0);
  }
  for (const int d : domain_of_) {
    CHECK(d >= 0 && d < domain_count()) << "domain id out of range:" << d;
  }
}

FailureConfiguration FailureDomainModel::Sample(Rng& rng) const {
  uint64_t failed_domains = 0;
  for (int d = 0; d < domain_count(); ++d) {
    if (rng.NextBernoulli(domain_probabilities_[d])) {
      failed_domains |= uint64_t{1} << d;
    }
  }
  FailureConfiguration config = 0;
  for (int i = 0; i < n(); ++i) {
    const bool domain_down = (failed_domains >> domain_of_[i]) & 1u;
    if (domain_down || rng.NextBernoulli(base_probabilities_[i])) {
      config |= FailureConfiguration{1} << i;
    }
  }
  return config;
}

double FailureDomainModel::MarginalFailureProbability(int node) const {
  CHECK(node >= 0 && node < n());
  const double base = base_probabilities_[node];
  const double domain = domain_probabilities_[domain_of_[node]];
  return 1.0 - (1.0 - base) * (1.0 - domain);
}

std::optional<double> FailureDomainModel::ConfigurationProbability(
    FailureConfiguration config) const {
  const int domains = domain_count();
  if (domains > 20) {
    return std::nullopt;  // 2^D enumeration would be too expensive.
  }
  double total = 0.0;
  for (uint64_t event = 0; event < (uint64_t{1} << domains); ++event) {
    double prob = 1.0;
    for (int d = 0; d < domains; ++d) {
      prob *= ((event >> d) & 1u) ? domain_probabilities_[d] : 1.0 - domain_probabilities_[d];
    }
    if (prob == 0.0) {
      continue;
    }
    for (int i = 0; i < n() && prob > 0.0; ++i) {
      const bool domain_down = (event >> domain_of_[i]) & 1u;
      if (NodeFailed(config, i)) {
        prob *= domain_down ? 1.0 : base_probabilities_[i];
      } else {
        prob *= domain_down ? 0.0 : 1.0 - base_probabilities_[i];
      }
    }
    total += prob;
  }
  return total;
}

std::string FailureDomainModel::Describe() const {
  std::ostringstream os;
  os << "failure_domains(n=" << n() << ", domains=" << domain_count() << ")";
  return os.str();
}

std::unique_ptr<JointFailureModel> FailureDomainModel::Clone() const {
  return std::make_unique<FailureDomainModel>(*this);
}

// ---------------------------------------------------------------------------
// BetaBinomialFailureModel

BetaBinomialFailureModel::BetaBinomialFailureModel(int n, double alpha, double beta)
    : n_(n), alpha_(alpha), beta_(beta) {
  CHECK(n > 0 && n <= 64);
  CHECK_GT(alpha, 0.0);
  CHECK_GT(beta, 0.0);
}

FailureConfiguration BetaBinomialFailureModel::Sample(Rng& rng) const {
  const double p = SampleBeta(rng, alpha_, beta_);
  FailureConfiguration config = 0;
  for (int i = 0; i < n_; ++i) {
    if (rng.NextBernoulli(p)) {
      config |= FailureConfiguration{1} << i;
    }
  }
  return config;
}

double BetaBinomialFailureModel::MarginalFailureProbability(int node) const {
  CHECK(node >= 0 && node < n_);
  return alpha_ / (alpha_ + beta_);
}

std::optional<double> BetaBinomialFailureModel::ConfigurationProbability(
    FailureConfiguration config) const {
  // For k failures out of n: integral of p^k (1-p)^(n-k) over Beta(alpha, beta)
  //   = B(alpha + k, beta + n - k) / B(alpha, beta).
  const int k = CountFailures(config);
  const double log_prob = std::lgamma(alpha_ + k) + std::lgamma(beta_ + n_ - k) -
                          std::lgamma(alpha_ + beta_ + n_) - std::lgamma(alpha_) -
                          std::lgamma(beta_) + std::lgamma(alpha_ + beta_);
  return std::exp(log_prob);
}

std::string BetaBinomialFailureModel::Describe() const {
  std::ostringstream os;
  os << "beta_binomial(n=" << n_ << ", alpha=" << alpha_ << ", beta=" << beta_ << ")";
  return os.str();
}

std::unique_ptr<JointFailureModel> BetaBinomialFailureModel::Clone() const {
  return std::make_unique<BetaBinomialFailureModel>(*this);
}

// ---------------------------------------------------------------------------
// Samplers

double SampleGamma(Rng& rng, double shape) {
  CHECK_GT(shape, 0.0);
  if (shape < 1.0) {
    // Boost to shape+1 and scale back (Marsaglia-Tsang trick).
    const double u = std::max(rng.NextDouble(), 1e-300);
    return SampleGamma(rng, shape + 1.0) * std::pow(u, 1.0 / shape);
  }
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  while (true) {
    double x;
    double v;
    do {
      x = rng.NextNormal();
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = rng.NextDouble();
    if (u < 1.0 - 0.0331 * x * x * x * x) {
      return d * v;
    }
    if (u > 0.0 && std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
      return d * v;
    }
  }
}

double SampleBeta(Rng& rng, double alpha, double beta) {
  const double x = SampleGamma(rng, alpha);
  const double y = SampleGamma(rng, beta);
  return x / (x + y);
}

}  // namespace probcon
