// Conversions between the metrics the reliability literature reports (paper §2):
// Annual Failure Rate (AFR, the Backblaze drive-stats metric), instantaneous failure rate
// lambda, MTBF/MTTF hours, and per-analysis-window failure probabilities.
//
// Convention: time is measured in HOURS throughout this module; kHoursPerYear converts.

#ifndef PROBCON_SRC_FAULTMODEL_AFR_H_
#define PROBCON_SRC_FAULTMODEL_AFR_H_

namespace probcon {

inline constexpr double kHoursPerYear = 8766.0;  // 365.25 days.

// AFR -> exponential rate (per hour): AFR = 1 - exp(-lambda * year).
double RateFromAfr(double afr);

// Exponential rate (per hour) -> AFR.
double AfrFromRate(double rate_per_hour);

// MTBF hours -> AFR, under the exponential assumption (AFR = 1 - exp(-year/MTBF)).
double AfrFromMtbfHours(double mtbf_hours);

// AFR -> MTBF hours.
double MtbfHoursFromAfr(double afr);

// Rescales a failure probability from one window length to another under the exponential
// assumption: p_w = 1 - (1-p)^{w'/w}.
double RescaleWindowProbability(double p, double from_window, double to_window);

}  // namespace probcon

#endif  // PROBCON_SRC_FAULTMODEL_AFR_H_
