#include "src/faultmodel/round_schedule.h"

#include <cmath>
#include <memory>
#include <sstream>
#include <utility>
#include <vector>

#include "src/common/check.h"

namespace probcon {

Status RoundSchedule::Validate(double round_hours,
                               const std::vector<std::vector<double>>& round_probabilities) {
  if (!(round_hours > 0.0) || !std::isfinite(round_hours)) {
    return InvalidArgumentError("round_hours must be positive and finite");
  }
  if (round_probabilities.empty()) {
    return InvalidArgumentError("schedule needs at least one round");
  }
  const size_t n = round_probabilities.front().size();
  if (n == 0) {
    return InvalidArgumentError("schedule needs at least one node");
  }
  for (size_t r = 0; r < round_probabilities.size(); ++r) {
    if (round_probabilities[r].size() != n) {
      std::ostringstream os;
      os << "round " << r << " has " << round_probabilities[r].size() << " probabilities, want "
         << n;
      return InvalidArgumentError(os.str());
    }
    for (size_t i = 0; i < n; ++i) {
      const double p = round_probabilities[r][i];
      // p == 1 would mean an infinite hazard increment; the trace-curve round trip (and any
      // survival-form math) excludes it.
      if (!(p >= 0.0) || !(p < 1.0) || !std::isfinite(p)) {
        std::ostringstream os;
        os << "round " << r << " node " << i << " probability " << p << " outside [0, 1)";
        return InvalidArgumentError(os.str());
      }
    }
  }
  return Status::Ok();
}

RoundSchedule::RoundSchedule(double round_hours,
                             std::vector<std::vector<double>> round_probabilities)
    : round_hours_(round_hours), round_probabilities_(std::move(round_probabilities)) {
  const Status valid = Validate(round_hours_, round_probabilities_);
  CHECK(valid.ok()) << valid.ToString();
}

RoundSchedule RoundSchedule::FromCurves(const std::vector<const FaultCurve*>& curves,
                                        const std::vector<double>& ages, double round_hours,
                                        int rounds) {
  CHECK(!curves.empty());
  CHECK_EQ(curves.size(), ages.size());
  CHECK_GT(rounds, 0);
  CHECK_GT(round_hours, 0.0);
  std::vector<std::vector<double>> matrix(rounds, std::vector<double>(curves.size(), 0.0));
  for (size_t i = 0; i < curves.size(); ++i) {
    CHECK(curves[i] != nullptr);
    CHECK_GE(ages[i], 0.0);
    for (int r = 0; r < rounds; ++r) {
      const double start = ages[i] + r * round_hours;
      matrix[r][i] = curves[i]->FailureProbability(start, start + round_hours);
    }
  }
  return RoundSchedule(round_hours, std::move(matrix));
}

RoundSchedule RoundSchedule::FromCurve(const FaultCurve& curve, int n, double age,
                                       double round_hours, int rounds) {
  CHECK_GT(n, 0);
  const std::vector<const FaultCurve*> curves(static_cast<size_t>(n), &curve);
  const std::vector<double> ages(static_cast<size_t>(n), age);
  return FromCurves(curves, ages, round_hours, rounds);
}

const std::vector<double>& RoundSchedule::RoundProbabilities(int round) const {
  CHECK(round >= 0 && round < rounds());
  return round_probabilities_[round];
}

std::vector<double> RoundSchedule::CumulativeFailureProbabilities() const {
  // Track survival in product form; with per-round survivals bounded away from zero this
  // stays well conditioned without log-space gymnastics.
  std::vector<double> cumulative(static_cast<size_t>(n()), 0.0);
  for (int i = 0; i < n(); ++i) {
    double survival = 1.0;
    for (int r = 0; r < rounds(); ++r) {
      survival *= 1.0 - round_probabilities_[r][i];
    }
    cumulative[i] = 1.0 - survival;
  }
  return cumulative;
}

std::unique_ptr<FaultCurve> RoundSchedule::NodeCurve(int node) const {
  CHECK(node >= 0 && node < n());
  // Knots at round boundaries with H_r = sum_{s<r} -ln(1 - p^(s)): the trace curve
  // interpolates H linearly between knots, so its window failure probability over round r
  // is 1 - exp(-(H_{r+1} - H_r)) = p^(r) exactly.
  std::vector<TraceFaultCurve::Point> points;
  points.reserve(static_cast<size_t>(rounds()) + 1);
  double cumulative_hazard = 0.0;
  points.push_back({0.0, 0.0});
  for (int r = 0; r < rounds(); ++r) {
    cumulative_hazard += -std::log1p(-round_probabilities_[r][node]);
    points.push_back({(r + 1) * round_hours_, cumulative_hazard});
  }
  return std::make_unique<TraceFaultCurve>(std::move(points));
}

}  // namespace probcon
