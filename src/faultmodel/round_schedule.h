// Round schedules: time-varying per-round failure probabilities (the "Bernoulli Meets PBFT"
// view of the paper's §3 math).
//
// The one-shot theorems evaluate P(safe/live) for a single vector of per-node failure
// probabilities. Real consensus runs rounds back to back while every node ages along its
// fault curve, so the probability vector drifts round over round: round r of a node deployed
// at age a covers ages [a + r*d, a + (r+1)*d) and fails within it with
//
//   p_i^(r) = 1 - exp(-(H_i(a_i + (r+1)d) - H_i(a_i + r*d)))
//
// — exactly FaultCurve::FailureProbability over the round window. A RoundSchedule is that
// matrix of probabilities, materialized so the analysis layer (per-round Theorem 3.1/3.2 plus
// cumulative mission reliability, src/analysis/round_analysis.h) and the discrete-event
// simulator consume the *same* numbers: NodeCurve() rebuilds a trace curve whose per-round
// window failure probabilities reproduce the schedule exactly, and that curve drives
// sim::FailureInjector for cross-validation.

#ifndef PROBCON_SRC_FAULTMODEL_ROUND_SCHEDULE_H_
#define PROBCON_SRC_FAULTMODEL_ROUND_SCHEDULE_H_

#include <memory>
#include <vector>

#include "src/common/status.h"
#include "src/faultmodel/fault_curve.h"

namespace probcon {

class RoundSchedule {
 public:
  // Structural validation, exposed for edge callers (the serving daemon) that build
  // schedules from untrusted JSON: at least one round, rectangular rows of width >= 1,
  // probabilities in [0, 1), positive finite round length. The constructor CHECKs the same
  // conditions, so edges must call this first and surface the Status.
  static Status Validate(double round_hours,
                         const std::vector<std::vector<double>>& round_probabilities);

  // `round_probabilities[r][i]` = P(node i fails during round r | alive at its start).
  // CHECK-fails unless Validate() accepts the inputs.
  RoundSchedule(double round_hours, std::vector<std::vector<double>> round_probabilities);

  // Evaluates each curve's window failure probability round by round, starting node i at
  // age `ages[i]`. `curves.size() == ages.size()`, rounds >= 1, round_hours > 0.
  static RoundSchedule FromCurves(const std::vector<const FaultCurve*>& curves,
                                  const std::vector<double>& ages, double round_hours,
                                  int rounds);

  // Homogeneous convenience: n nodes sharing one curve and one deployment age.
  static RoundSchedule FromCurve(const FaultCurve& curve, int n, double age,
                                 double round_hours, int rounds);

  int rounds() const { return static_cast<int>(round_probabilities_.size()); }
  int n() const { return static_cast<int>(round_probabilities_.front().size()); }
  double round_hours() const { return round_hours_; }
  double mission_hours() const { return round_hours_ * rounds(); }

  const std::vector<double>& RoundProbabilities(int round) const;

  // P(node i has failed by the end of the mission), assuming a node that fails stays failed:
  // 1 - prod_r (1 - p_i^(r)). One entry per node.
  std::vector<double> CumulativeFailureProbabilities() const;

  // Rebuilds node i's failure law as a trace curve with knots at round boundaries and
  // cumulative hazard H_r = sum_{s<r} -ln(1 - p_i^(s)). Its FailureProbability over round
  // r's window is exactly round_probabilities_[r][i], so driving sim::FailureInjector with
  // these curves replays the schedule the analysis consumed — the cross-validation hinge.
  std::unique_ptr<FaultCurve> NodeCurve(int node) const;

 private:
  double round_hours_;
  std::vector<std::vector<double>> round_probabilities_;
};

}  // namespace probcon

#endif  // PROBCON_SRC_FAULTMODEL_ROUND_SCHEDULE_H_
