// Fault curves: per-node, time-dependent failure models (paper §2).
//
// A fault curve captures "the unique, time-dependent fault profile of a given server". We
// model it as a hazard function h(t) — the instantaneous failure rate at age t — from which
// everything the analysis needs follows:
//
//   cumulative hazard    H(t)  = ∫_0^t h(s) ds
//   survival             S(t)  = exp(-H(t))
//   window failure prob  P(fail in [t0,t1] | alive at t0) = 1 - exp(-(H(t1) - H(t0)))
//
// The library ships the shapes the fault literature reports: constant rate (memoryless),
// Weibull (infant mortality for shape < 1, wear-out for shape > 1), the classic bathtub curve
// (a competing-risks sum of the above), piecewise-linear hazards for rollout/workload spikes,
// and trace-driven empirical curves. Curves are value-cloneable and cheap.

#ifndef PROBCON_SRC_FAULTMODEL_FAULT_CURVE_H_
#define PROBCON_SRC_FAULTMODEL_FAULT_CURVE_H_

#include <memory>
#include <string>
#include <vector>

namespace probcon {

class FaultCurve {
 public:
  virtual ~FaultCurve() = default;

  // Instantaneous hazard rate at age `t` (failures per unit time, t >= 0).
  virtual double HazardRate(double t) const = 0;

  // Cumulative hazard H(t). The base class integrates HazardRate numerically (adaptive
  // Simpson); subclasses with closed forms override.
  virtual double CumulativeHazard(double t) const;

  // Survival probability to age t.
  double Survival(double t) const;

  // Probability of failing during [t0, t1], conditioned on being alive at t0.
  double FailureProbability(double t0, double t1) const;

  // Samples a failure age for a device alive at `current_age` (inverse-CDF via bisection on
  // the cumulative hazard; subclasses may override with closed forms).
  virtual double SampleFailureAge(double current_age, double unit_uniform) const;

  virtual std::string Describe() const = 0;
  virtual std::unique_ptr<FaultCurve> Clone() const = 0;
};

// Memoryless constant-rate curve; the model behind every number in the paper's §3 analysis.
class ConstantFaultCurve final : public FaultCurve {
 public:
  explicit ConstantFaultCurve(double rate);

  // Curve whose probability of failure within `window` equals `p` (e.g. "1% per analysis
  // window", the paper's p_u).
  static ConstantFaultCurve FromWindowProbability(double p, double window);

  double rate() const { return rate_; }

  double HazardRate(double /*t*/) const override { return rate_; }
  double CumulativeHazard(double t) const override { return rate_ * t; }
  double SampleFailureAge(double current_age, double unit_uniform) const override;
  std::string Describe() const override;
  std::unique_ptr<FaultCurve> Clone() const override;

 private:
  double rate_;
};

// Weibull hazard: h(t) = (shape/scale) * (t/scale)^(shape-1).
// shape < 1: infant mortality; shape == 1: constant; shape > 1: wear-out.
class WeibullFaultCurve final : public FaultCurve {
 public:
  WeibullFaultCurve(double shape, double scale);

  double shape() const { return shape_; }
  double scale() const { return scale_; }

  double HazardRate(double t) const override;
  double CumulativeHazard(double t) const override;
  double SampleFailureAge(double current_age, double unit_uniform) const override;
  std::string Describe() const override;
  std::unique_ptr<FaultCurve> Clone() const override;

 private:
  double shape_;
  double scale_;
};

// Gompertz hazard: h(t) = base_rate * exp(aging_rate * t). The empirical shape behind
// "silent corruption errors become more frequent as cores age" (paper §2, citing the
// Google/Meta SDC studies): risk compounds exponentially with age. aging_rate == 0
// degenerates to a constant curve; negative rates model burn-in improvement.
class GompertzFaultCurve final : public FaultCurve {
 public:
  GompertzFaultCurve(double base_rate, double aging_rate);

  double base_rate() const { return base_rate_; }
  double aging_rate() const { return aging_rate_; }

  double HazardRate(double t) const override;
  double CumulativeHazard(double t) const override;
  std::string Describe() const override;
  std::unique_ptr<FaultCurve> Clone() const override;

 private:
  double base_rate_;
  double aging_rate_;
};

// Competing risks: the device fails when ANY component risk fires, so hazards add. The classic
// disk bathtub is BathtubFaultCurve() = infant Weibull + constant useful-life + wear-out
// Weibull.
class CompositeFaultCurve final : public FaultCurve {
 public:
  explicit CompositeFaultCurve(std::vector<std::unique_ptr<FaultCurve>> components);
  CompositeFaultCurve(const CompositeFaultCurve& other);

  double HazardRate(double t) const override;
  double CumulativeHazard(double t) const override;
  std::string Describe() const override;
  std::unique_ptr<FaultCurve> Clone() const override;

  size_t component_count() const { return components_.size(); }

 private:
  std::vector<std::unique_ptr<FaultCurve>> components_;
};

// Convenience constructor for the disk-style bathtub shape.
CompositeFaultCurve MakeBathtubCurve(double infant_shape, double infant_scale,
                                     double useful_life_rate, double wearout_shape,
                                     double wearout_scale);

// Piecewise-linear hazard, for operational events whose risk profile is known in advance
// (software rollouts, peak-hours load, planned maintenance). Knots must be strictly
// increasing in time; the hazard is linearly interpolated and held constant after the last
// knot.
class PiecewiseLinearFaultCurve final : public FaultCurve {
 public:
  struct Knot {
    double time;
    double hazard;
  };

  explicit PiecewiseLinearFaultCurve(std::vector<Knot> knots);

  double HazardRate(double t) const override;
  double CumulativeHazard(double t) const override;
  std::string Describe() const override;
  std::unique_ptr<FaultCurve> Clone() const override;

 private:
  std::vector<Knot> knots_;
  std::vector<double> cumulative_at_knot_;  // H(knots_[i].time), precomputed.
};

// Empirical curve from a Nelson-Aalen-style cumulative hazard estimate: a step function of
// (age, cumulative_hazard) points produced by estimators in estimator.h. Hazard between points
// is the local slope.
class TraceFaultCurve final : public FaultCurve {
 public:
  struct Point {
    double age;
    double cumulative_hazard;
  };

  explicit TraceFaultCurve(std::vector<Point> points);

  double HazardRate(double t) const override;
  double CumulativeHazard(double t) const override;
  std::string Describe() const override;
  std::unique_ptr<FaultCurve> Clone() const override;

 private:
  std::vector<Point> points_;
};

}  // namespace probcon

#endif  // PROBCON_SRC_FAULTMODEL_FAULT_CURVE_H_
