// Availability of quorum systems under probabilistic failure models (Naor-Wool style, but with
// heterogeneous and correlated node failures).

#ifndef PROBCON_SRC_QUORUM_AVAILABILITY_H_
#define PROBCON_SRC_QUORUM_AVAILABILITY_H_

#include "src/faultmodel/joint_model.h"
#include "src/prob/probability.h"
#include "src/quorum/quorum_system.h"

namespace probcon {

// P(the set of surviving nodes contains a quorum). Uses a Poisson-binomial fast path for
// threshold systems under independent failures; otherwise exact 2^N enumeration (requires the
// model to expose exact configuration probabilities and n <= 25).
Probability QuorumAvailability(const QuorumSystem& system, const JointFailureModel& model);

// Per-node load under the uniform strategy over minimal quorums. For a threshold system this
// is k/n for every node; for an explicit system it is (number of minimal quorums containing
// the node * quorum pick probability). Returns the maximum per-node load (the Naor-Wool load
// figure of merit for the uniform strategy).
double UniformStrategyMaxLoad(const QuorumSystem& system);

}  // namespace probcon

#endif  // PROBCON_SRC_QUORUM_AVAILABILITY_H_
