#include "src/quorum/quorum_system.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "src/common/check.h"
#include "src/prob/kahan.h"

namespace probcon {
namespace {

// Calls `visit(t)` for every subset t of `mask` with exactly `size` bits. Returns false early
// if `visit` returns true (found).
template <typename Visitor>
bool AnyCombination(NodeSet mask, int size, Visitor visit) {
  std::vector<int> positions;
  for (int i = 0; i < 64; ++i) {
    if ((mask >> i) & 1u) {
      positions.push_back(i);
    }
  }
  const int m = static_cast<int>(positions.size());
  if (size > m) {
    return false;
  }
  if (size == 0) {
    return visit(NodeSet{0});
  }
  std::vector<int> idx(size);
  for (int i = 0; i < size; ++i) {
    idx[i] = i;
  }
  while (true) {
    NodeSet t = 0;
    for (const int i : idx) {
      t |= NodeSet{1} << positions[i];
    }
    if (visit(t)) {
      return true;
    }
    // Next combination.
    int i = size - 1;
    while (i >= 0 && idx[i] == m - size + i) {
      --i;
    }
    if (i < 0) {
      return false;
    }
    ++idx[i];
    for (int j = i + 1; j < size; ++j) {
      idx[j] = idx[j - 1] + 1;
    }
  }
}

}  // namespace

int QuorumSystem::MinQuorumCardinality() const {
  const int nodes = n();
  CHECK_LE(nodes, 25) << "generic minimal-quorum search is exponential; use a threshold system";
  // Breadth-first over cardinalities.
  for (int size = 0; size <= nodes; ++size) {
    bool found = AnyCombination(FullNodeSet(nodes), size,
                                [this](NodeSet s) { return IsQuorum(s); });
    if (found) {
      return size;
    }
  }
  return nodes + 1;  // No quorum exists at all (degenerate system).
}

// ---------------------------------------------------------------------------
// ThresholdQuorumSystem

ThresholdQuorumSystem::ThresholdQuorumSystem(int n, int k) : n_(n), k_(k) {
  CHECK(n > 0 && n <= 64);
  CHECK(k > 0 && k <= n) << "threshold" << k << "invalid for n=" << n;
}

ThresholdQuorumSystem ThresholdQuorumSystem::Majority(int n) {
  return ThresholdQuorumSystem(n, n / 2 + 1);
}

std::string ThresholdQuorumSystem::Describe() const {
  std::ostringstream os;
  os << "threshold(" << k_ << " of " << n_ << ")";
  return os.str();
}

std::unique_ptr<QuorumSystem> ThresholdQuorumSystem::Clone() const {
  return std::make_unique<ThresholdQuorumSystem>(*this);
}

// ---------------------------------------------------------------------------
// WeightedQuorumSystem

WeightedQuorumSystem::WeightedQuorumSystem(std::vector<double> weights, double threshold)
    : weights_(std::move(weights)), threshold_(threshold) {
  CHECK(!weights_.empty());
  CHECK_LE(weights_.size(), 64u);
  for (const double w : weights_) {
    CHECK_GE(w, 0.0);
  }
  CHECK_GT(threshold, 0.0);
  CHECK_LE(threshold, TotalWeight());
}

bool WeightedQuorumSystem::IsQuorum(NodeSet s) const {
  double sum = 0.0;
  for (int i = 0; i < n(); ++i) {
    if ((s >> i) & 1u) {
      sum += weights_[i];
    }
  }
  return sum >= threshold_;
}

double WeightedQuorumSystem::TotalWeight() const {
  KahanSum sum;
  for (const double w : weights_) {
    sum.Add(w);
  }
  return sum.Total();
}

std::string WeightedQuorumSystem::Describe() const {
  std::ostringstream os;
  os << "weighted(n=" << n() << ", threshold=" << threshold_ << ")";
  return os.str();
}

std::unique_ptr<QuorumSystem> WeightedQuorumSystem::Clone() const {
  return std::make_unique<WeightedQuorumSystem>(*this);
}

// ---------------------------------------------------------------------------
// GridQuorumSystem

GridQuorumSystem::GridQuorumSystem(int rows, int cols) : rows_(rows), cols_(cols) {
  CHECK(rows > 0 && cols > 0);
  CHECK_LE(rows * cols, 64);
}

bool GridQuorumSystem::IsQuorum(NodeSet s) const {
  // Node (r, c) is bit r*cols + c. Quorum = some full row and some full column.
  bool has_row = false;
  for (int r = 0; r < rows_ && !has_row; ++r) {
    const NodeSet row_mask = ((NodeSet{1} << cols_) - 1) << (r * cols_);
    has_row = (s & row_mask) == row_mask;
  }
  if (!has_row) {
    return false;
  }
  for (int c = 0; c < cols_; ++c) {
    NodeSet col_mask = 0;
    for (int r = 0; r < rows_; ++r) {
      col_mask |= NodeSet{1} << (r * cols_ + c);
    }
    if ((s & col_mask) == col_mask) {
      return true;
    }
  }
  return false;
}

std::string GridQuorumSystem::Describe() const {
  std::ostringstream os;
  os << "grid(" << rows_ << "x" << cols_ << ")";
  return os.str();
}

std::unique_ptr<QuorumSystem> GridQuorumSystem::Clone() const {
  return std::make_unique<GridQuorumSystem>(*this);
}

// ---------------------------------------------------------------------------
// ExplicitQuorumSystem

ExplicitQuorumSystem::ExplicitQuorumSystem(int n, std::vector<NodeSet> minimal_quorums)
    : n_(n), minimal_quorums_(std::move(minimal_quorums)) {
  CHECK(n > 0 && n <= 64);
  CHECK(!minimal_quorums_.empty());
  for (const NodeSet q : minimal_quorums_) {
    CHECK(q != 0) << "empty quorum";
    CHECK((q & ~FullNodeSet(n)) == 0) << "quorum references nodes outside [0,n)";
  }
}

bool ExplicitQuorumSystem::IsQuorum(NodeSet s) const {
  for (const NodeSet q : minimal_quorums_) {
    if ((s & q) == q) {
      return true;
    }
  }
  return false;
}

int ExplicitQuorumSystem::MinQuorumCardinality() const {
  int best = n_ + 1;
  for (const NodeSet q : minimal_quorums_) {
    best = std::min(best, NodeSetSize(q));
  }
  return best;
}

std::string ExplicitQuorumSystem::Describe() const {
  std::ostringstream os;
  os << "explicit(n=" << n_ << ", " << minimal_quorums_.size() << " minimal quorums)";
  return os.str();
}

std::unique_ptr<QuorumSystem> ExplicitQuorumSystem::Clone() const {
  return std::make_unique<ExplicitQuorumSystem>(*this);
}

// ---------------------------------------------------------------------------
// Structural predicates

bool QuorumSystemsIntersect(const QuorumSystem& a, const QuorumSystem& b) {
  return QuorumSystemsIntersectInAtLeast(a, b, 1);
}

bool QuorumSystemsIntersectInAtLeast(const QuorumSystem& a, const QuorumSystem& b, int m) {
  CHECK_EQ(a.n(), b.n());
  CHECK_GE(m, 1);
  const int n = a.n();

  // Threshold x threshold short-circuit: min intersection of a k_a-set and k_b-set is
  // k_a + k_b - n.
  const auto* ta = dynamic_cast<const ThresholdQuorumSystem*>(&a);
  const auto* tb = dynamic_cast<const ThresholdQuorumSystem*>(&b);
  if (ta != nullptr && tb != nullptr) {
    return ta->k() + tb->k() - n >= m;
  }

  CHECK_LE(n, 20) << "generic intersection check is exponential; use threshold systems";
  // Counterexample: an a-quorum A and a b-quorum B with |A cap B| <= m-1. B may use all of
  // complement(A) plus at most m-1 nodes of A.
  const NodeSet full = FullNodeSet(n);
  for (NodeSet set_a = 0; set_a <= full; ++set_a) {
    if (!a.IsQuorum(set_a)) {
      continue;
    }
    const NodeSet outside = ComplementNodeSet(set_a, n);
    const bool counterexample = AnyCombination(
        set_a, m - 1, [&](NodeSet t) { return b.IsQuorum(outside | t); });
    if (counterexample || (m == 1 && b.IsQuorum(outside))) {
      return false;
    }
    if (set_a == full) {
      break;  // Avoid wraparound when n == 64 (excluded by CHECK, but be safe).
    }
  }
  return true;
}

}  // namespace probcon
