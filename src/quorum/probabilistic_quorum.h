// Probabilistic quorums (Malkhi-Reiter-Wright; paper §4 "re-imagining consensus beyond
// quorums" and §5 "Probabilistic quorums").
//
// Instead of guaranteeing that any two quorums intersect, sample quorums uniformly at random
// and accept a small, quantified non-intersection probability. With quorum size l*sqrt(N) the
// non-intersection probability decays like exp(-l^2), so much smaller-than-majority quorums
// suffice once guarantees are probabilistic — exactly the trade the paper advocates exposing.

#ifndef PROBCON_SRC_QUORUM_PROBABILISTIC_QUORUM_H_
#define PROBCON_SRC_QUORUM_PROBABILISTIC_QUORUM_H_

#include <vector>

#include "src/common/rng.h"
#include "src/prob/probability.h"

namespace probcon {

// P(two independently drawn uniform random subsets of sizes q1 and q2 of [n] are disjoint)
// = C(n-q1, q2) / C(n, q2). Complement-tracked (the interesting regime is "almost always
// intersect").
Probability RandomQuorumsDisjoint(int n, int q1, int q2);

// P(a uniformly drawn q-subset of [n] contains ONLY nodes from a fixed bad set of size f):
// the hypergeometric C(f, q) / C(n, q). This is the paper's "Q_vc_t is overkill" computation —
// the probability a sampled trigger quorum contains no correct node.
Probability RandomQuorumAllFromSet(int n, int q, int f);

// P(a q-subset whose members each independently fail with probability p is entirely faulty):
// p^q. The iid version of the above.
Probability IidQuorumAllFaulty(int q, double p);

// Smallest quorum size q such that two random q-subsets of [n] intersect with probability at
// least `target`. Returns n if even q = n misses the target (cannot happen for target < 1).
int MinQuorumSizeForIntersection(int n, const Probability& target);

// Smallest q such that a random q-subset contains at least one node outside a bad set of
// size f with probability at least `target` (the probabilistic replacement for f+1-sized
// view-change trigger quorums).
int MinQuorumSizeForCorrectMember(int n, int f, const Probability& target);

// Samples a uniform q-subset of [0, n) as a sorted index vector.
std::vector<int> SampleRandomQuorum(Rng& rng, int n, int q);

}  // namespace probcon

#endif  // PROBCON_SRC_QUORUM_PROBABILISTIC_QUORUM_H_
