#include "src/quorum/availability.h"

#include <algorithm>
#include <vector>

#include "src/common/check.h"
#include "src/prob/kahan.h"
#include "src/prob/poisson_binomial.h"

namespace probcon {

Probability QuorumAvailability(const QuorumSystem& system, const JointFailureModel& model) {
  CHECK_EQ(system.n(), model.n());
  const int n = system.n();

  // Fast path: threshold quorum + independent failures -> Poisson-binomial tail.
  const auto* threshold = dynamic_cast<const ThresholdQuorumSystem*>(&system);
  const auto* independent = dynamic_cast<const IndependentFailureModel*>(&model);
  if (threshold != nullptr && independent != nullptr) {
    const PoissonBinomial failures(independent->probabilities());
    // Available iff #failures <= n - k.
    return failures.CdfLe(n - threshold->k());
  }

  CHECK_LE(n, 25) << "exact enumeration limited to n <= 25; use Monte Carlo for larger n";
  // Accumulate the *unavailable* mass (typically the small side) and return its complement.
  KahanSum unavailable;
  const FailureConfiguration full = FullNodeSet(n);
  for (FailureConfiguration failed = 0;; ++failed) {
    const NodeSet alive = ComplementNodeSet(failed, n);
    if (!system.IsQuorum(alive)) {
      const auto prob = model.ConfigurationProbability(failed);
      CHECK(prob.has_value()) << "model" << model.Describe()
                              << "lacks exact configuration probabilities";
      unavailable.Add(*prob);
    }
    if (failed == full) {
      break;
    }
  }
  return Probability::FromComplement(std::min(1.0, std::max(0.0, unavailable.Total())));
}

double UniformStrategyMaxLoad(const QuorumSystem& system) {
  if (const auto* threshold = dynamic_cast<const ThresholdQuorumSystem*>(&system)) {
    // Uniform over all k-subsets: every node appears in a C(n-1, k-1)/C(n, k) = k/n fraction.
    return static_cast<double>(threshold->k()) / static_cast<double>(threshold->n());
  }
  if (const auto* grid = dynamic_cast<const GridQuorumSystem*>(&system)) {
    // Uniform over (row, column) picks: node load = P(its row) + P(its col) - P(both).
    const double pr = 1.0 / grid->rows();
    const double pc = 1.0 / grid->cols();
    return pr + pc - pr * pc;
  }
  if (const auto* explicit_system = dynamic_cast<const ExplicitQuorumSystem*>(&system)) {
    const auto& quorums = explicit_system->minimal_quorums();
    std::vector<double> load(explicit_system->n(), 0.0);
    const double pick = 1.0 / static_cast<double>(quorums.size());
    for (const NodeSet q : quorums) {
      for (int i = 0; i < explicit_system->n(); ++i) {
        if ((q >> i) & 1u) {
          load[i] += pick;
        }
      }
    }
    return *std::max_element(load.begin(), load.end());
  }
  CHECK(false) << "UniformStrategyMaxLoad unsupported for" << system.Describe();
  return 1.0;
}

}  // namespace probcon
