#include "src/quorum/probabilistic_quorum.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"
#include "src/prob/combinatorics.h"

namespace probcon {

Probability RandomQuorumsDisjoint(int n, int q1, int q2) {
  CHECK(n > 0 && q1 >= 0 && q2 >= 0 && q1 <= n && q2 <= n);
  if (q1 + q2 > n) {
    return Probability::Zero();  // Pigeonhole: must intersect.
  }
  const double log_prob = LogChoose(n - q1, q2) - LogChoose(n, q2);
  return Probability::FromProbability(std::exp(log_prob));
}

Probability RandomQuorumAllFromSet(int n, int q, int f) {
  CHECK(n > 0 && q >= 1 && q <= n && f >= 0 && f <= n);
  if (q > f) {
    return Probability::Zero();
  }
  const double log_prob = LogChoose(f, q) - LogChoose(n, q);
  return Probability::FromProbability(std::exp(log_prob));
}

Probability IidQuorumAllFaulty(int q, double p) {
  CHECK_GE(q, 1);
  CHECK(p >= 0.0 && p <= 1.0);
  return Probability::FromProbability(std::pow(p, q));
}

int MinQuorumSizeForIntersection(int n, const Probability& target) {
  for (int q = 1; q <= n; ++q) {
    const Probability intersect = RandomQuorumsDisjoint(n, q, q).Not();
    if (!(intersect < target)) {
      return q;
    }
  }
  return n;
}

int MinQuorumSizeForCorrectMember(int n, int f, const Probability& target) {
  CHECK(f >= 0 && f < n) << "no correct nodes exist";
  for (int q = 1; q <= n; ++q) {
    const Probability hit_correct = RandomQuorumAllFromSet(n, q, f).Not();
    if (!(hit_correct < target)) {
      return q;
    }
  }
  return n;
}

std::vector<int> SampleRandomQuorum(Rng& rng, int n, int q) {
  CHECK(q >= 0 && q <= n);
  const auto sampled = rng.SampleWithoutReplacement(static_cast<size_t>(n),
                                                    static_cast<size_t>(q));
  std::vector<int> quorum(sampled.begin(), sampled.end());
  std::sort(quorum.begin(), quorum.end());
  return quorum;
}

}  // namespace probcon
