// Quorum systems (paper §3.1, §5 "Quorum Systems").
//
// A quorum system over N nodes is a monotone predicate IsQuorum(S): any superset of a quorum
// is a quorum. Consensus protocols are parameterized here by *which* sets can act as
// non-equivocation / persistence / view-change quorums; the analysis module then asks, for a
// failure configuration, whether the surviving nodes still contain a quorum and whether two
// quorum families still intersect.
//
// Node sets are bitmasks (bit i = node i), matching FailureConfiguration in the fault model.

#ifndef PROBCON_SRC_QUORUM_QUORUM_SYSTEM_H_
#define PROBCON_SRC_QUORUM_QUORUM_SYSTEM_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace probcon {

using NodeSet = uint64_t;

inline int NodeSetSize(NodeSet s) { return __builtin_popcountll(s); }
inline NodeSet FullNodeSet(int n) {
  return n >= 64 ? ~NodeSet{0} : ((NodeSet{1} << n) - 1);
}
inline NodeSet ComplementNodeSet(NodeSet s, int n) { return FullNodeSet(n) & ~s; }

class QuorumSystem {
 public:
  virtual ~QuorumSystem() = default;

  virtual int n() const = 0;

  // True iff `s` contains at least one quorum. Must be monotone in `s`.
  virtual bool IsQuorum(NodeSet s) const = 0;

  // Cardinality of the smallest quorum (generic implementation searches; threshold systems
  // answer in O(1)).
  virtual int MinQuorumCardinality() const;

  virtual std::string Describe() const = 0;
  virtual std::unique_ptr<QuorumSystem> Clone() const = 0;
};

// "Any k of n nodes" — the family behind every configuration in the paper's analysis
// (|Q_eq|, |Q_per|, |Q_vc|, |Q_vc_t| are all threshold quorums).
class ThresholdQuorumSystem final : public QuorumSystem {
 public:
  ThresholdQuorumSystem(int n, int k);

  static ThresholdQuorumSystem Majority(int n);

  int n() const override { return n_; }
  int k() const { return k_; }
  bool IsQuorum(NodeSet s) const override { return NodeSetSize(s) >= k_; }
  int MinQuorumCardinality() const override { return k_; }
  std::string Describe() const override;
  std::unique_ptr<QuorumSystem> Clone() const override;

 private:
  int n_;
  int k_;
};

// Stake-weighted quorums: IsQuorum(S) iff sum of weights in S >= threshold. Models
// proof-of-stake-style trust assignment (paper §2 point 1).
class WeightedQuorumSystem final : public QuorumSystem {
 public:
  WeightedQuorumSystem(std::vector<double> weights, double threshold);

  int n() const override { return static_cast<int>(weights_.size()); }
  bool IsQuorum(NodeSet s) const override;
  std::string Describe() const override;
  std::unique_ptr<QuorumSystem> Clone() const override;

  double TotalWeight() const;

 private:
  std::vector<double> weights_;
  double threshold_;
};

// Classic grid construction: nodes arranged rows x cols; a quorum is a full row plus a full
// column. O(sqrt N) quorum size with guaranteed pairwise intersection.
class GridQuorumSystem final : public QuorumSystem {
 public:
  GridQuorumSystem(int rows, int cols);

  int n() const override { return rows_ * cols_; }
  int rows() const { return rows_; }
  int cols() const { return cols_; }
  bool IsQuorum(NodeSet s) const override;
  int MinQuorumCardinality() const override { return rows_ + cols_ - 1; }
  std::string Describe() const override;
  std::unique_ptr<QuorumSystem> Clone() const override;

 private:
  int rows_;
  int cols_;
};

// Arbitrary quorum family given by its minimal quorums (monotone closure is implicit).
class ExplicitQuorumSystem final : public QuorumSystem {
 public:
  ExplicitQuorumSystem(int n, std::vector<NodeSet> minimal_quorums);

  int n() const override { return n_; }
  bool IsQuorum(NodeSet s) const override;
  int MinQuorumCardinality() const override;
  std::string Describe() const override;
  std::unique_ptr<QuorumSystem> Clone() const override;

  const std::vector<NodeSet>& minimal_quorums() const { return minimal_quorums_; }

 private:
  int n_;
  std::vector<NodeSet> minimal_quorums_;
};

// --- Structural predicates -------------------------------------------------

// True iff every quorum of `a` intersects every quorum of `b`. Exact: searches for a
// counterexample set S with IsQuorum_a(S) and IsQuorum_b(complement(S)); threshold x
// threshold pairs short-circuit to k_a + k_b > n.
bool QuorumSystemsIntersect(const QuorumSystem& a, const QuorumSystem& b);

// True iff every quorum of `a` intersects every quorum of `b` in at least `m` nodes.
bool QuorumSystemsIntersectInAtLeast(const QuorumSystem& a, const QuorumSystem& b, int m);

}  // namespace probcon

#endif  // PROBCON_SRC_QUORUM_QUORUM_SYSTEM_H_
