#include "src/serve/spec.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <utility>

#include "src/faultmodel/fault_curve.h"
#include "src/faultmodel/round_schedule.h"
#include "src/lifecycle/fleet_model.h"
#include "src/lifecycle/repair_sweep.h"

namespace probcon::serve {
namespace {

constexpr std::string_view kWhat = "serve request";

constexpr std::string_view kKindNames[kRequestKindCount] = {
    "ping",       "table1",     "table2", "quorum_size",
    "placement",  "end_to_end", "montecarlo", "stats", "health",
    "availability", "mission_reliability", "repair_sweep",
};

// Caps that keep a single request's cost bounded. The engine CHECKs sit deeper (exact
// enumeration n <= 25, placement n <= 10 / r <= 5); these edge limits are at or below
// every engine precondition so malformed input degrades to INVALID_ARGUMENT, never a
// crash.
constexpr int kMaxClusterNodes = 200;       // count-DP paths are O(n^2); 200 is instant.
constexpr int kMaxPlacementNodes = 10;      // OptimizeRackPlacement precondition.
constexpr int kMaxPlacementRacks = 5;       // OptimizeRackPlacement precondition.
constexpr uint64_t kMaxTrials = 1u << 30;   // ~1e9 Monte Carlo trials per request.

// Fleet-lifecycle caps. The direct CTMC solvers are O(m^3) in the lumped state count m, so
// a single availability request is held to m <= 1024 (~1e9 flops, about a second) and a
// repair sweep — up to kMaxSweepPoints solves — to m <= 256. Uniformization costs
// terms * m^2 with terms ~ Lambda * 1.02 * t; the product is bounded below at parse time so
// no admissible request can pin an engine thread for more than a few seconds.
constexpr int kMaxFleetClasses = 8;
constexpr int kMaxFleetClassCount = 100;     // nodes per vintage class
constexpr int kMaxFleetStatesServe = 1024;   // availability / mission_reliability
constexpr int kMaxSweepStates = 256;         // repair_sweep (many solves per request)
constexpr int kMaxSweepPoints = 64;
constexpr int kMaxScheduleRounds = 512;
constexpr double kMaxMissionHours = 1e7;     // ~1141 years
constexpr double kMaxUniformizationCost = 2e9;  // Poisson terms * m^2 flop budget

Status CheckProbabilities(const std::vector<double>& probabilities, std::string_view field) {
  for (double p : probabilities) {
    if (!(p >= 0.0 && p <= 1.0)) {  // negated to catch NaN
      return InvalidArgumentError(std::string(kWhat) + ": " + std::string(field) +
                                  " entries must lie in [0, 1], got " + FormatDouble(p));
    }
  }
  return Status::Ok();
}

Status CheckFinite(double value, std::string_view field) {
  if (!std::isfinite(value)) {
    return InvalidArgumentError(std::string(kWhat) + ": " + std::string(field) +
                                " must be finite");
  }
  return Status::Ok();
}

// Builds a FaultCurve from its JSON spec (see the FaultSpec doc in spec.h).
Result<std::unique_ptr<FaultCurve>> CurveFromJson(const Json& curve) {
  if (!curve.IsObject()) {
    return InvalidArgumentError(std::string(kWhat) + ": \"curve\" must be an object");
  }
  std::string curve_kind;
  RETURN_IF_ERROR(JsonReadString(curve, "kind", &curve_kind, kWhat));
  if (curve_kind.empty()) {
    return InvalidArgumentError(std::string(kWhat) + ": curve requires a \"kind\"");
  }
  if (curve_kind == "constant") {
    double rate = -1.0;
    double window_probability = -1.0;
    double window = 0.0;
    RETURN_IF_ERROR(JsonReadDouble(curve, "rate", &rate, kWhat));
    RETURN_IF_ERROR(JsonReadDouble(curve, "window_probability", &window_probability, kWhat));
    RETURN_IF_ERROR(JsonReadDouble(curve, "window", &window, kWhat));
    if (window_probability >= 0.0) {
      if (!(window_probability <= 1.0) || window <= 0.0) {
        return InvalidArgumentError(std::string(kWhat) +
                                    ": constant curve via window_probability requires "
                                    "window_probability in [0, 1] and window > 0");
      }
      return std::unique_ptr<FaultCurve>(std::make_unique<ConstantFaultCurve>(
          ConstantFaultCurve::FromWindowProbability(window_probability, window)));
    }
    if (!(rate >= 0.0) || !std::isfinite(rate)) {
      return InvalidArgumentError(std::string(kWhat) +
                                  ": constant curve requires \"rate\" >= 0 (or "
                                  "\"window_probability\" + \"window\")");
    }
    return std::unique_ptr<FaultCurve>(std::make_unique<ConstantFaultCurve>(rate));
  }
  if (curve_kind == "weibull") {
    double shape = 0.0;
    double scale = 0.0;
    RETURN_IF_ERROR(JsonReadDouble(curve, "shape", &shape, kWhat));
    RETURN_IF_ERROR(JsonReadDouble(curve, "scale", &scale, kWhat));
    if (!(shape > 0.0) || !(scale > 0.0)) {
      return InvalidArgumentError(std::string(kWhat) +
                                  ": weibull curve requires shape > 0 and scale > 0");
    }
    return std::unique_ptr<FaultCurve>(std::make_unique<WeibullFaultCurve>(shape, scale));
  }
  if (curve_kind == "gompertz") {
    double base_rate = -1.0;
    double aging_rate = 0.0;
    RETURN_IF_ERROR(JsonReadDouble(curve, "base_rate", &base_rate, kWhat));
    RETURN_IF_ERROR(JsonReadDouble(curve, "aging_rate", &aging_rate, kWhat));
    if (!(base_rate >= 0.0) || !std::isfinite(aging_rate)) {
      return InvalidArgumentError(
          std::string(kWhat) +
          ": gompertz curve requires base_rate >= 0 and a finite aging_rate");
    }
    return std::unique_ptr<FaultCurve>(
        std::make_unique<GompertzFaultCurve>(base_rate, aging_rate));
  }
  if (curve_kind == "bathtub") {
    double infant_shape = 0.0, infant_scale = 0.0;
    double useful_life_rate = -1.0;
    double wearout_shape = 0.0, wearout_scale = 0.0;
    RETURN_IF_ERROR(JsonReadDouble(curve, "infant_shape", &infant_shape, kWhat));
    RETURN_IF_ERROR(JsonReadDouble(curve, "infant_scale", &infant_scale, kWhat));
    RETURN_IF_ERROR(JsonReadDouble(curve, "useful_life_rate", &useful_life_rate, kWhat));
    RETURN_IF_ERROR(JsonReadDouble(curve, "wearout_shape", &wearout_shape, kWhat));
    RETURN_IF_ERROR(JsonReadDouble(curve, "wearout_scale", &wearout_scale, kWhat));
    if (!(infant_shape > 0.0) || !(infant_scale > 0.0) || !(useful_life_rate >= 0.0) ||
        !(wearout_shape > 0.0) || !(wearout_scale > 0.0)) {
      return InvalidArgumentError(
          std::string(kWhat) +
          ": bathtub curve requires infant_shape/infant_scale/wearout_shape/wearout_scale "
          "> 0 and useful_life_rate >= 0");
    }
    return std::unique_ptr<FaultCurve>(std::make_unique<CompositeFaultCurve>(MakeBathtubCurve(
        infant_shape, infant_scale, useful_life_rate, wearout_shape, wearout_scale)));
  }
  return InvalidArgumentError(std::string(kWhat) + ": unknown curve kind \"" + curve_kind +
                              "\" (want constant, weibull, gompertz, or bathtub)");
}

Result<std::string> ReadProtocol(const Json& params) {
  std::string protocol;
  RETURN_IF_ERROR(JsonReadString(params, "protocol", &protocol, kWhat));
  if (protocol != "raft" && protocol != "pbft") {
    return InvalidArgumentError(std::string(kWhat) + ": \"protocol\" must be \"raft\" or "
                                                     "\"pbft\", got \"" +
                                protocol + "\"");
  }
  return protocol;
}

Json DoubleListJson(const std::vector<double>& values) {
  Json array = Json::Array();
  for (double v : values) {
    array.Append(Json::Number(v));
  }
  return array;
}

// Parses the "fleet" object shared by the lifecycle kinds. Class curves are resolved to
// lumped rates here (FleetClass::FromCurve semantics: hazard frozen at the class age), so
// canonical keys and engines only ever see rates — a curve spec and its resolved rates
// memoize to the same entry.
Result<FleetParams> FleetFromJson(const Json* fleet_json, int max_states) {
  if (fleet_json == nullptr || !fleet_json->IsObject()) {
    return InvalidArgumentError(std::string(kWhat) + ": a \"fleet\" object is required");
  }
  const Json* classes = fleet_json->Find("classes");
  if (classes == nullptr || !classes->IsArray() || classes->items.empty()) {
    return InvalidArgumentError(std::string(kWhat) +
                                ": fleet requires a non-empty \"classes\" array");
  }
  if (static_cast<int>(classes->items.size()) > kMaxFleetClasses) {
    return InvalidArgumentError(std::string(kWhat) + ": fleet is limited to " +
                                std::to_string(kMaxFleetClasses) + " classes");
  }
  FleetParams params;
  for (size_t i = 0; i < classes->items.size(); ++i) {
    const Json& class_json = classes->items[i];
    if (!class_json.IsObject()) {
      return InvalidArgumentError(std::string(kWhat) + ": fleet classes must be objects");
    }
    FleetClass cls;
    RETURN_IF_ERROR(JsonReadInt(class_json, "count", &cls.count, kWhat));
    if (cls.count < 1 || cls.count > kMaxFleetClassCount) {
      return InvalidArgumentError(std::string(kWhat) + ": fleet class " + std::to_string(i) +
                                  " requires 1 <= count <= " +
                                  std::to_string(kMaxFleetClassCount));
    }
    double rate = -1.0;
    RETURN_IF_ERROR(JsonReadDouble(class_json, "failure_rate", &rate, kWhat));
    if (const Json* curve_json = class_json.Find("curve"); curve_json != nullptr) {
      if (rate >= 0.0) {
        return InvalidArgumentError(std::string(kWhat) + ": fleet class " + std::to_string(i) +
                                    " must give \"failure_rate\" or \"curve\", not both");
      }
      Result<std::unique_ptr<FaultCurve>> curve = CurveFromJson(*curve_json);
      if (!curve.ok()) return curve.status();
      double age = 0.0;
      RETURN_IF_ERROR(JsonReadDouble(class_json, "age", &age, kWhat));
      if (!(age >= 0.0) || !std::isfinite(age)) {
        return InvalidArgumentError(std::string(kWhat) + ": fleet class ages must be >= 0");
      }
      rate = (*curve)->HazardRate(age);
    }
    if (!(rate > 0.0) || !std::isfinite(rate)) {
      return InvalidArgumentError(std::string(kWhat) + ": fleet class " + std::to_string(i) +
                                  " needs failure_rate > 0 (or a curve with a positive "
                                  "hazard at its age)");
    }
    cls.failure_rate = rate;
    RETURN_IF_ERROR(JsonReadBool(class_json, "old", &cls.in_old, kWhat));
    RETURN_IF_ERROR(JsonReadBool(class_json, "new", &cls.in_new, kWhat));
    params.classes.push_back(cls);
  }
  RETURN_IF_ERROR(JsonReadDouble(*fleet_json, "repair_rate", &params.repair_rate, kWhat));
  RETURN_IF_ERROR(JsonReadInt(*fleet_json, "repair_servers", &params.repair_servers, kWhat));
  Status valid = FleetModel::Validate(params, max_states);
  if (!valid.ok()) {
    return InvalidArgumentError(std::string(kWhat) + ": " + valid.message());
  }
  return params;
}

int FleetTotalNodes(const FleetParams& params) {
  int total = 0;
  for (const FleetClass& cls : params.classes) {
    total += cls.count;
  }
  return total;
}

// Rejects mission horizons whose uniformization would blow the per-request flop budget.
// The uniformization rate is bounded by the total failure rate plus the repair pool rate,
// so the bound is computable at the edge — INVALID_ARGUMENT here, never a multi-minute
// engine stall.
Status CheckUniformizationBudget(const FleetParams& params, double mission_hours) {
  double exit_rate = 0.0;
  double states = 1.0;
  for (const FleetClass& cls : params.classes) {
    exit_rate += cls.count * cls.failure_rate;
    states *= cls.count + 1;
  }
  exit_rate += std::min(FleetTotalNodes(params), params.repair_servers) * params.repair_rate;
  const double poisson_mean = 1.02 * exit_rate * mission_hours;
  const double terms = poisson_mean + 12.0 * std::sqrt(poisson_mean) + 50.0;
  if (terms * states * states > kMaxUniformizationCost) {
    return InvalidArgumentError(
        std::string(kWhat) +
        ": mission_hours * fleet rates exceed the uniformization budget (shorten the "
        "mission, shrink the fleet, or lower the rates)");
  }
  return Status::Ok();
}

// Parses the "schedule" object of a mission_reliability request into the request's
// (round_hours, schedule_probabilities) pair: either an explicit matrix or a curve form
// evaluated round by round. Probabilities are validated against RoundSchedule::Validate so
// the engine's RoundSchedule construction cannot CHECK-fail on wire input.
Status ParseSchedule(const Json& schedule, int min_n, ServeRequest* request) {
  if (!schedule.IsObject()) {
    return InvalidArgumentError(std::string(kWhat) + ": \"schedule\" must be an object");
  }
  RETURN_IF_ERROR(JsonReadDouble(schedule, "round_hours", &request->round_hours, kWhat));
  if (!(request->round_hours > 0.0) || !std::isfinite(request->round_hours)) {
    return InvalidArgumentError(std::string(kWhat) + ": schedule requires round_hours > 0");
  }
  const Json* matrix = schedule.Find("round_probabilities");
  if (matrix != nullptr) {
    if (!matrix->IsArray() || matrix->items.empty()) {
      return InvalidArgumentError(std::string(kWhat) +
                                  ": round_probabilities must be a non-empty array of rows");
    }
    for (const Json& row : matrix->items) {
      if (!row.IsArray()) {
        return InvalidArgumentError(std::string(kWhat) +
                                    ": round_probabilities rows must be arrays");
      }
      std::vector<double> probabilities;
      probabilities.reserve(row.items.size());
      for (const Json& item : row.items) {
        if (!item.IsNumber()) {
          return InvalidArgumentError(std::string(kWhat) +
                                      ": round_probabilities entries must be numbers");
        }
        probabilities.push_back(item.NumberValue());
      }
      request->schedule_probabilities.push_back(std::move(probabilities));
    }
  } else {
    const Json* curve_json = schedule.Find("curve");
    if (curve_json == nullptr) {
      return InvalidArgumentError(std::string(kWhat) +
                                  ": schedule requires \"round_probabilities\" or a "
                                  "\"curve\" form");
    }
    Result<std::unique_ptr<FaultCurve>> curve = CurveFromJson(*curve_json);
    if (!curve.ok()) return curve.status();
    int n = 0;
    int rounds = 0;
    double age = 0.0;
    RETURN_IF_ERROR(JsonReadInt(schedule, "n", &n, kWhat));
    RETURN_IF_ERROR(JsonReadInt(schedule, "rounds", &rounds, kWhat));
    RETURN_IF_ERROR(JsonReadDouble(schedule, "age", &age, kWhat));
    if (n < 1 || n > kMaxClusterNodes || rounds < 1 || rounds > kMaxScheduleRounds) {
      return InvalidArgumentError(std::string(kWhat) +
                                  ": curve schedule requires 1 <= n <= " +
                                  std::to_string(kMaxClusterNodes) + " and 1 <= rounds <= " +
                                  std::to_string(kMaxScheduleRounds));
    }
    if (!(age >= 0.0) || !std::isfinite(age)) {
      return InvalidArgumentError(std::string(kWhat) + ": schedule age must be >= 0");
    }
    for (int r = 0; r < rounds; ++r) {
      const double start = age + r * request->round_hours;
      const double p = (*curve)->FailureProbability(start, start + request->round_hours);
      request->schedule_probabilities.push_back(
          std::vector<double>(static_cast<size_t>(n), p));
    }
  }
  if (static_cast<int>(request->schedule_probabilities.size()) > kMaxScheduleRounds) {
    return InvalidArgumentError(std::string(kWhat) + ": schedule is limited to " +
                                std::to_string(kMaxScheduleRounds) + " rounds");
  }
  Status valid = RoundSchedule::Validate(request->round_hours,
                                         request->schedule_probabilities);
  if (!valid.ok()) {
    return InvalidArgumentError(std::string(kWhat) + ": " + valid.message());
  }
  const int n = static_cast<int>(request->schedule_probabilities.front().size());
  if (n > kMaxClusterNodes || n < min_n) {
    return InvalidArgumentError(std::string(kWhat) + ": schedule requires " +
                                std::to_string(min_n) + " <= n <= " +
                                std::to_string(kMaxClusterNodes));
  }
  return Status::Ok();
}

Json FleetCanonicalJson(const FleetParams& fleet) {
  Json object = Json::Object();
  Json classes = Json::Array();
  for (const FleetClass& cls : fleet.classes) {
    Json class_json = Json::Object();
    class_json.Set("count", Json::Number(cls.count));
    class_json.Set("failure_rate", Json::Number(cls.failure_rate));
    class_json.Set("old", Json::Bool(cls.in_old));
    class_json.Set("new", Json::Bool(cls.in_new));
    classes.Append(std::move(class_json));
  }
  object.Set("classes", std::move(classes));
  object.Set("repair_rate", Json::Number(fleet.repair_rate));
  object.Set("repair_servers", Json::Number(fleet.repair_servers));
  return object;
}

}  // namespace

std::string_view RequestKindName(RequestKind kind) {
  const int index = static_cast<int>(kind);
  CHECK(index >= 0 && index < kRequestKindCount);
  return kKindNames[index];
}

Result<RequestKind> RequestKindFromName(std::string_view name) {
  for (int i = 0; i < kRequestKindCount; ++i) {
    if (kKindNames[i] == name) {
      return static_cast<RequestKind>(i);
    }
  }
  return InvalidArgumentError(std::string(kWhat) + ": unknown request kind \"" +
                              std::string(name) + "\"");
}

FaultSpec FaultSpec::Uniform(int n, double p) {
  FaultSpec spec;
  spec.probabilities.assign(static_cast<size_t>(n), p);
  return spec;
}

Result<FaultSpec> FaultSpec::FromJson(const Json* json, int default_n, double default_p,
                                      int max_n) {
  if (json == nullptr) {
    if (default_n <= 0) {
      return InvalidArgumentError(std::string(kWhat) +
                                  ": a \"fault\" object (or \"n\") is required");
    }
    return Uniform(default_n, default_p);
  }
  if (!json->IsObject()) {
    return InvalidArgumentError(std::string(kWhat) + ": \"fault\" must be an object");
  }

  FaultSpec spec;
  std::vector<double> probabilities;
  RETURN_IF_ERROR(JsonReadDoubleList(*json, "probabilities", &probabilities, kWhat));
  if (!probabilities.empty()) {
    RETURN_IF_ERROR(CheckProbabilities(probabilities, "fault.probabilities"));
    spec.probabilities = std::move(probabilities);
  } else if (const Json* curve_json = json->Find("curve"); curve_json != nullptr) {
    Result<std::unique_ptr<FaultCurve>> curve = CurveFromJson(*curve_json);
    if (!curve.ok()) return curve.status();
    double window = 0.0;
    RETURN_IF_ERROR(JsonReadDouble(*json, "window", &window, kWhat));
    if (!(window > 0.0) || !std::isfinite(window)) {
      return InvalidArgumentError(std::string(kWhat) +
                                  ": a curve-based fault spec requires \"window\" > 0");
    }
    std::vector<double> ages;
    RETURN_IF_ERROR(JsonReadDoubleList(*json, "ages", &ages, kWhat));
    if (ages.empty()) {
      int n = default_n;
      RETURN_IF_ERROR(JsonReadInt(*json, "n", &n, kWhat));
      double age = 0.0;
      RETURN_IF_ERROR(JsonReadDouble(*json, "age", &age, kWhat));
      if (n <= 0) {
        return InvalidArgumentError(std::string(kWhat) +
                                    ": curve-based fault spec requires \"n\" or \"ages\"");
      }
      ages.assign(static_cast<size_t>(n), age);
    }
    for (double age : ages) {
      if (!(age >= 0.0) || !std::isfinite(age)) {
        return InvalidArgumentError(std::string(kWhat) + ": node ages must be >= 0");
      }
      spec.probabilities.push_back((*curve)->FailureProbability(age, age + window));
    }
  } else {
    int n = default_n;
    double p = default_p;
    RETURN_IF_ERROR(JsonReadInt(*json, "n", &n, kWhat));
    RETURN_IF_ERROR(JsonReadDouble(*json, "p", &p, kWhat));
    if (n <= 0) {
      return InvalidArgumentError(std::string(kWhat) + ": uniform fault spec requires n > 0");
    }
    if (!(p >= 0.0 && p <= 1.0)) {
      return InvalidArgumentError(std::string(kWhat) +
                                  ": uniform fault spec requires p in [0, 1]");
    }
    spec = Uniform(n, p);
  }

  if (spec.probabilities.empty()) {
    return InvalidArgumentError(std::string(kWhat) + ": fault spec resolves to zero nodes");
  }
  if (spec.n() > max_n) {
    return InvalidArgumentError(std::string(kWhat) + ": fault spec resolves to " +
                                std::to_string(spec.n()) + " nodes, above the limit of " +
                                std::to_string(max_n));
  }
  return spec;
}

Json FaultSpec::ToCanonicalJson() const {
  Json object = Json::Object();
  object.Set("probabilities", DoubleListJson(probabilities));
  return object;
}

Result<ServeRequest> ServeRequest::FromParams(RequestKind kind, const Json& params) {
  if (!params.IsObject()) {
    return InvalidArgumentError(std::string(kWhat) + ": \"params\" must be an object");
  }
  ServeRequest request;
  request.kind = kind;
  const Json* fault_json = params.Find("fault");

  switch (kind) {
    case RequestKind::kPing:
    case RequestKind::kHealth:
      return request;

    case RequestKind::kStats:
      RETURN_IF_ERROR(JsonReadBool(params, "reset", &request.stats_reset, kWhat));
      return request;

    case RequestKind::kTable1:
    case RequestKind::kTable2: {
      // Accept a top-level {"n": ..} shorthand matching the paper tables (uniform p=1%).
      int n = 0;
      RETURN_IF_ERROR(JsonReadInt(params, "n", &n, kWhat));
      Result<FaultSpec> fault =
          FaultSpec::FromJson(fault_json, n, /*default_p=*/0.01, kMaxClusterNodes);
      if (!fault.ok()) return fault.status();
      request.fault = *std::move(fault);
      if (n > 0 && request.fault.n() != n) {
        return InvalidArgumentError(std::string(kWhat) + ": \"n\" (" + std::to_string(n) +
                                    ") disagrees with the fault spec (" +
                                    std::to_string(request.fault.n()) + " nodes)");
      }
      const int min_n = kind == RequestKind::kTable1 ? 4 : 3;
      if (request.fault.n() < min_n) {
        return InvalidArgumentError(std::string(kWhat) + ": " +
                                    std::string(RequestKindName(kind)) + " requires n >= " +
                                    std::to_string(min_n));
      }
      return request;
    }

    case RequestKind::kQuorumSize: {
      Result<std::string> protocol = ReadProtocol(params);
      if (!protocol.ok()) return protocol.status();
      request.protocol = *std::move(protocol);
      Result<FaultSpec> fault =
          FaultSpec::FromJson(fault_json, /*default_n=*/0, /*default_p=*/0.01,
                              /*max_n=*/100);  // sizer searches O(n^2) configs
      if (!fault.ok()) return fault.status();
      request.fault = *std::move(fault);
      if (request.fault.n() < 3) {
        return InvalidArgumentError(std::string(kWhat) + ": quorum sizing requires n >= 3");
      }
      request.target_live = 0.999;
      request.target_safe = 0.9999;
      RETURN_IF_ERROR(JsonReadDouble(params, "target_live", &request.target_live, kWhat));
      RETURN_IF_ERROR(JsonReadDouble(params, "target_safe", &request.target_safe, kWhat));
      if (!(request.target_live > 0.0 && request.target_live < 1.0) ||
          !(request.target_safe > 0.0 && request.target_safe < 1.0)) {
        return InvalidArgumentError(std::string(kWhat) +
                                    ": reliability targets must lie in (0, 1)");
      }
      return request;
    }

    case RequestKind::kPlacement: {
      RETURN_IF_ERROR(JsonReadDoubleList(params, "node_probabilities",
                                         &request.node_probabilities, kWhat));
      RETURN_IF_ERROR(JsonReadDoubleList(params, "rack_probabilities",
                                         &request.rack_probabilities, kWhat));
      if (request.node_probabilities.empty() || request.rack_probabilities.empty()) {
        return InvalidArgumentError(
            std::string(kWhat) +
            ": placement requires \"node_probabilities\" and \"rack_probabilities\"");
      }
      RETURN_IF_ERROR(CheckProbabilities(request.node_probabilities, "node_probabilities"));
      RETURN_IF_ERROR(CheckProbabilities(request.rack_probabilities, "rack_probabilities"));
      if (static_cast<int>(request.node_probabilities.size()) > kMaxPlacementNodes ||
          static_cast<int>(request.rack_probabilities.size()) > kMaxPlacementRacks) {
        return InvalidArgumentError(std::string(kWhat) + ": placement search is limited to " +
                                    std::to_string(kMaxPlacementNodes) + " nodes and " +
                                    std::to_string(kMaxPlacementRacks) + " racks");
      }
      return request;
    }

    case RequestKind::kEndToEnd: {
      Result<std::string> protocol = ReadProtocol(params);
      if (!protocol.ok()) return protocol.status();
      request.protocol = *std::move(protocol);
      int n = 0;
      RETURN_IF_ERROR(JsonReadInt(params, "n", &n, kWhat));
      Result<FaultSpec> fault =
          FaultSpec::FromJson(fault_json, n, /*default_p=*/0.01, kMaxClusterNodes);
      if (!fault.ok()) return fault.status();
      request.fault = *std::move(fault);
      if (request.fault.n() < 3) {
        return InvalidArgumentError(std::string(kWhat) + ": end_to_end requires n >= 3");
      }
      RETURN_IF_ERROR(JsonReadDouble(params, "window_hours", &request.window_hours, kWhat));
      RETURN_IF_ERROR(JsonReadDouble(params, "mttr_hours", &request.mttr_hours, kWhat));
      RETURN_IF_ERROR(JsonReadDouble(params, "data_loss_given_violation",
                                     &request.data_loss_given_violation, kWhat));
      RETURN_IF_ERROR(JsonReadDouble(params, "mission_hours", &request.mission_hours, kWhat));
      RETURN_IF_ERROR(CheckFinite(request.window_hours, "window_hours"));
      RETURN_IF_ERROR(CheckFinite(request.mttr_hours, "mttr_hours"));
      RETURN_IF_ERROR(CheckFinite(request.mission_hours, "mission_hours"));
      if (!(request.window_hours > 0.0) || !(request.mttr_hours >= 0.0) ||
          !(request.mission_hours > 0.0)) {
        return InvalidArgumentError(
            std::string(kWhat) +
            ": end_to_end requires window_hours > 0, mttr_hours >= 0, mission_hours > 0");
      }
      if (!(request.data_loss_given_violation >= 0.0 &&
            request.data_loss_given_violation <= 1.0)) {
        return InvalidArgumentError(std::string(kWhat) +
                                    ": data_loss_given_violation must lie in [0, 1]");
      }
      return request;
    }

    case RequestKind::kMonteCarlo: {
      Result<std::string> protocol = ReadProtocol(params);
      if (!protocol.ok()) return protocol.status();
      request.protocol = *std::move(protocol);
      const Json* model = params.Find("model");
      std::string model_kind = "independent";
      if (model != nullptr) {
        if (!model->IsObject()) {
          return InvalidArgumentError(std::string(kWhat) + ": \"model\" must be an object");
        }
        RETURN_IF_ERROR(JsonReadString(*model, "kind", &model_kind, kWhat));
      }
      if (model_kind == "independent") {
        Result<FaultSpec> fault =
            FaultSpec::FromJson(fault_json, /*default_n=*/0, /*default_p=*/0.01,
                                kMaxClusterNodes);
        if (!fault.ok()) return fault.status();
        request.fault = *std::move(fault);
        if (request.fault.n() < 3) {
          return InvalidArgumentError(std::string(kWhat) + ": montecarlo requires n >= 3");
        }
      } else if (model_kind == "beta_binomial") {
        request.beta_binomial = true;
        RETURN_IF_ERROR(JsonReadInt(*model, "n", &request.beta_n, kWhat));
        RETURN_IF_ERROR(JsonReadDouble(*model, "alpha", &request.alpha, kWhat));
        RETURN_IF_ERROR(JsonReadDouble(*model, "beta", &request.beta, kWhat));
        if (request.beta_n < 3 || request.beta_n > kMaxClusterNodes) {
          return InvalidArgumentError(std::string(kWhat) +
                                      ": beta_binomial model requires 3 <= n <= " +
                                      std::to_string(kMaxClusterNodes));
        }
        if (!(request.alpha > 0.0) || !(request.beta > 0.0)) {
          return InvalidArgumentError(std::string(kWhat) +
                                      ": beta_binomial model requires alpha > 0, beta > 0");
        }
      } else {
        return InvalidArgumentError(std::string(kWhat) + ": unknown model kind \"" +
                                    model_kind +
                                    "\" (want independent or beta_binomial)");
      }
      RETURN_IF_ERROR(JsonReadUint64(params, "trials", &request.trials, kWhat));
      RETURN_IF_ERROR(JsonReadUint64(params, "seed", &request.seed, kWhat));
      if (request.trials == 0 || request.trials > kMaxTrials) {
        return InvalidArgumentError(std::string(kWhat) + ": trials must lie in [1, " +
                                    std::to_string(kMaxTrials) + "]");
      }
      return request;
    }

    case RequestKind::kAvailability: {
      Result<std::string> protocol = ReadProtocol(params);
      if (!protocol.ok()) return protocol.status();
      request.protocol = *std::move(protocol);
      Result<FleetParams> fleet =
          FleetFromJson(params.Find("fleet"), kMaxFleetStatesServe);
      if (!fleet.ok()) return fleet.status();
      request.fleet = *std::move(fleet);
      RETURN_IF_ERROR(JsonReadBool(params, "reconfiguration", &request.reconfiguration,
                                   kWhat));
      RETURN_IF_ERROR(JsonReadInt(params, "loss_threshold", &request.loss_threshold, kWhat));
      if (request.loss_threshold < 0 ||
          request.loss_threshold > FleetTotalNodes(request.fleet)) {
        return InvalidArgumentError(std::string(kWhat) +
                                    ": loss_threshold must lie in [0, total fleet nodes]");
      }
      if (request.reconfiguration) {
        bool any_new = false;
        for (const FleetClass& cls : request.fleet.classes) {
          any_new = any_new || cls.in_new;
        }
        if (!any_new) {
          return InvalidArgumentError(std::string(kWhat) +
                                      ": reconfiguration analysis needs at least one class "
                                      "in the new membership (\"new\": true)");
        }
      }
      return request;
    }

    case RequestKind::kMissionReliability: {
      Result<std::string> protocol = ReadProtocol(params);
      if (!protocol.ok()) return protocol.status();
      request.protocol = *std::move(protocol);
      const Json* schedule = params.Find("schedule");
      if (schedule != nullptr) {
        if (params.Find("fleet") != nullptr) {
          return InvalidArgumentError(std::string(kWhat) +
                                      ": give \"schedule\" or \"fleet\", not both");
        }
        request.schedule_mode = true;
        const int min_n = request.protocol == "pbft" ? 4 : 3;
        RETURN_IF_ERROR(ParseSchedule(*schedule, min_n, &request));
        return request;
      }
      Result<FleetParams> fleet =
          FleetFromJson(params.Find("fleet"), kMaxFleetStatesServe);
      if (!fleet.ok()) return fleet.status();
      request.fleet = *std::move(fleet);
      RETURN_IF_ERROR(JsonReadDouble(params, "mission_hours", &request.mission_hours, kWhat));
      RETURN_IF_ERROR(CheckFinite(request.mission_hours, "mission_hours"));
      if (!(request.mission_hours > 0.0) || request.mission_hours > kMaxMissionHours) {
        return InvalidArgumentError(std::string(kWhat) +
                                    ": mission_hours must lie in (0, " +
                                    FormatDouble(kMaxMissionHours) + "]");
      }
      RETURN_IF_ERROR(JsonReadBool(params, "reconfiguration", &request.reconfiguration,
                                   kWhat));
      RETURN_IF_ERROR(CheckUniformizationBudget(request.fleet, request.mission_hours));
      return request;
    }

    case RequestKind::kRepairSweep: {
      Result<std::string> protocol = ReadProtocol(params);
      if (!protocol.ok()) return protocol.status();
      request.protocol = *std::move(protocol);
      Result<FleetParams> fleet = FleetFromJson(params.Find("fleet"), kMaxSweepStates);
      if (!fleet.ok()) return fleet.status();
      request.fleet = *std::move(fleet);
      // The sweep replaces the repair rate point by point; zeroing the base keeps requests
      // that differ only in an ignored "repair_rate" on the same canonical key.
      request.fleet.repair_rate = 0.0;
      RETURN_IF_ERROR(JsonReadDoubleList(params, "repair_rates", &request.sweep_repair_rates,
                                         kWhat));
      if (!request.sweep_repair_rates.empty() &&
          (params.Find("min_rate") != nullptr || params.Find("max_rate") != nullptr ||
           params.Find("points") != nullptr)) {
        return InvalidArgumentError(
            std::string(kWhat) +
            ": give either explicit \"repair_rates\" or a min_rate/max_rate/points grid, "
            "not both");
      }
      if (request.sweep_repair_rates.empty()) {
        double min_rate = 0.0;
        double max_rate = 0.0;
        int points = 0;
        RETURN_IF_ERROR(JsonReadDouble(params, "min_rate", &min_rate, kWhat));
        RETURN_IF_ERROR(JsonReadDouble(params, "max_rate", &max_rate, kWhat));
        RETURN_IF_ERROR(JsonReadInt(params, "points", &points, kWhat));
        if (!(min_rate > 0.0) || !std::isfinite(min_rate) || !(max_rate >= min_rate) ||
            !std::isfinite(max_rate) || points < 1 || points > kMaxSweepPoints) {
          return InvalidArgumentError(
              std::string(kWhat) +
              ": repair_sweep requires \"repair_rates\" or a grid with 0 < min_rate <= "
              "max_rate and 1 <= points <= " +
              std::to_string(kMaxSweepPoints));
        }
        request.sweep_repair_rates = GeometricRepairRates(min_rate, max_rate, points);
      }
      if (static_cast<int>(request.sweep_repair_rates.size()) > kMaxSweepPoints) {
        return InvalidArgumentError(std::string(kWhat) + ": repair_sweep is limited to " +
                                    std::to_string(kMaxSweepPoints) + " rates");
      }
      for (double rate : request.sweep_repair_rates) {
        if (!(rate > 0.0) || !std::isfinite(rate)) {
          return InvalidArgumentError(std::string(kWhat) +
                                      ": repair rates must be positive and finite");
        }
      }
      RETURN_IF_ERROR(JsonReadDouble(params, "target_availability",
                                     &request.sweep_target_availability, kWhat));
      if (request.sweep_target_availability != 0.0 &&
          (!(request.sweep_target_availability > 0.0) ||
           !(request.sweep_target_availability < 1.0))) {
        return InvalidArgumentError(std::string(kWhat) +
                                    ": target_availability must lie in (0, 1)");
      }
      return request;
    }
  }
  return InvalidArgumentError(std::string(kWhat) + ": unhandled request kind");
}

Json ServeRequest::CanonicalParams() const {
  Json object = Json::Object();
  switch (kind) {
    case RequestKind::kPing:
    case RequestKind::kHealth:
      break;
    case RequestKind::kStats:
      if (stats_reset) {
        object.Set("reset", Json::Bool(true));
      }
      break;
    case RequestKind::kTable1:
    case RequestKind::kTable2:
      object.Set("fault", fault.ToCanonicalJson());
      break;
    case RequestKind::kQuorumSize:
      object.Set("protocol", Json::String(protocol));
      object.Set("fault", fault.ToCanonicalJson());
      object.Set("target_live", Json::Number(target_live));
      object.Set("target_safe", Json::Number(target_safe));
      break;
    case RequestKind::kPlacement:
      object.Set("node_probabilities", DoubleListJson(node_probabilities));
      object.Set("rack_probabilities", DoubleListJson(rack_probabilities));
      break;
    case RequestKind::kEndToEnd:
      object.Set("protocol", Json::String(protocol));
      object.Set("fault", fault.ToCanonicalJson());
      object.Set("window_hours", Json::Number(window_hours));
      object.Set("mttr_hours", Json::Number(mttr_hours));
      object.Set("data_loss_given_violation", Json::Number(data_loss_given_violation));
      object.Set("mission_hours", Json::Number(mission_hours));
      break;
    case RequestKind::kMonteCarlo: {
      object.Set("protocol", Json::String(protocol));
      Json model = Json::Object();
      if (beta_binomial) {
        model.Set("kind", Json::String("beta_binomial"));
        model.Set("n", Json::Number(beta_n));
        model.Set("alpha", Json::Number(alpha));
        model.Set("beta", Json::Number(beta));
      } else {
        model.Set("kind", Json::String("independent"));
        model.Set("fault", fault.ToCanonicalJson());
      }
      object.Set("model", std::move(model));
      object.Set("trials", Json::Number(trials));
      object.Set("seed", Json::Number(seed));
      break;
    }
    case RequestKind::kAvailability:
      object.Set("protocol", Json::String(protocol));
      object.Set("fleet", FleetCanonicalJson(fleet));
      object.Set("reconfiguration", Json::Bool(reconfiguration));
      object.Set("loss_threshold", Json::Number(loss_threshold));
      break;
    case RequestKind::kMissionReliability:
      object.Set("protocol", Json::String(protocol));
      if (schedule_mode) {
        Json schedule = Json::Object();
        schedule.Set("round_hours", Json::Number(round_hours));
        Json matrix = Json::Array();
        for (const std::vector<double>& row : schedule_probabilities) {
          matrix.Append(DoubleListJson(row));
        }
        schedule.Set("round_probabilities", std::move(matrix));
        object.Set("schedule", std::move(schedule));
      } else {
        object.Set("fleet", FleetCanonicalJson(fleet));
        object.Set("mission_hours", Json::Number(mission_hours));
        object.Set("reconfiguration", Json::Bool(reconfiguration));
      }
      break;
    case RequestKind::kRepairSweep:
      object.Set("protocol", Json::String(protocol));
      object.Set("fleet", FleetCanonicalJson(fleet));
      object.Set("repair_rates", DoubleListJson(sweep_repair_rates));
      object.Set("target_availability", Json::Number(sweep_target_availability));
      break;
  }
  return object;
}

std::string ServeRequest::CanonicalKey() const {
  std::string key(RequestKindName(kind));
  key += ' ';
  key += WriteJson(CanonicalParams());
  return key;
}

Result<RequestEnvelope> RequestEnvelope::Parse(std::string_view payload) {
  Result<Json> parsed = ParseJson(payload, kWhat);
  if (!parsed.ok()) return parsed.status();
  const Json& root = *parsed;
  if (!root.IsObject()) {
    return InvalidArgumentError(std::string(kWhat) + ": envelope must be an object");
  }
  int version = 0;
  RETURN_IF_ERROR(JsonReadInt(root, "v", &version, kWhat));
  if (version != kProtocolVersion) {
    return InvalidArgumentError(std::string(kWhat) + ": unsupported protocol version " +
                                std::to_string(version) + " (this server speaks v" +
                                std::to_string(kProtocolVersion) + ")");
  }
  RequestEnvelope envelope;
  RETURN_IF_ERROR(JsonReadUint64(root, "id", &envelope.id, kWhat));
  RETURN_IF_ERROR(JsonReadDouble(root, "deadline_ms", &envelope.deadline_ms, kWhat));
  RETURN_IF_ERROR(JsonReadBool(root, "trace", &envelope.trace, kWhat));
  if (!std::isfinite(envelope.deadline_ms) || envelope.deadline_ms > kMaxDeadlineMs) {
    return InvalidArgumentError(std::string(kWhat) + ": deadline_ms must be finite and <= " +
                                FormatDouble(kMaxDeadlineMs));
  }
  std::string kind_name;
  RETURN_IF_ERROR(JsonReadString(root, "kind", &kind_name, kWhat));
  Result<RequestKind> kind = RequestKindFromName(kind_name);
  if (!kind.ok()) return kind.status();
  static const Json kEmptyParams = Json::Object();
  const Json* params = root.Find("params");
  Result<ServeRequest> request =
      ServeRequest::FromParams(*kind, params != nullptr ? *params : kEmptyParams);
  if (!request.ok()) return request.status();
  envelope.request = *std::move(request);
  return envelope;
}

std::string RequestEnvelope::Serialize(uint64_t id, std::string_view kind, const Json& params,
                                       double deadline_ms, bool trace) {
  Json root = Json::Object();
  root.Set("v", Json::Number(kProtocolVersion));
  root.Set("id", Json::Number(id));
  root.Set("kind", Json::String(std::string(kind)));
  if (deadline_ms > 0.0) {
    root.Set("deadline_ms", Json::Number(deadline_ms));
  }
  if (trace) {
    root.Set("trace", Json::Bool(true));
  }
  root.Set("params", params);
  return WriteJson(root);
}

Result<ResponseEnvelope> ResponseEnvelope::Parse(std::string_view payload) {
  Result<Json> parsed = ParseJson(payload, "serve response");
  if (!parsed.ok()) return parsed.status();
  const Json& root = *parsed;
  if (!root.IsObject()) {
    return InvalidArgumentError("serve response: envelope must be an object");
  }
  ResponseEnvelope envelope;
  RETURN_IF_ERROR(JsonReadUint64(root, "id", &envelope.id, "serve response"));
  if (root.Find("status") == nullptr) {
    return UnavailableError("serve response: missing status (corrupt envelope)");
  }
  std::string status_name;
  RETURN_IF_ERROR(JsonReadString(root, "status", &status_name, "serve response"));
  if (status_name != "OK") {
    std::string error_text;
    RETURN_IF_ERROR(JsonReadString(root, "error", &error_text, "serve response"));
    // A status name the writer could not have emitted means the bytes were corrupted in
    // flight, not that the server sent a verdict: fail the parse so the client treats the
    // stream as broken and retries, instead of fabricating a definite error status.
    StatusCode code = StatusCode::kOk;
    for (int c = 1; c <= static_cast<int>(StatusCode::kUnavailable); ++c) {
      if (StatusCodeName(static_cast<StatusCode>(c)) == status_name) {
        code = static_cast<StatusCode>(c);
        break;
      }
    }
    if (code == StatusCode::kOk) {
      return UnavailableError("serve response: unknown status name \"" + status_name +
                              "\" (corrupt envelope)");
    }
    envelope.status = Status(code, std::move(error_text));
    return envelope;
  }
  RETURN_IF_ERROR(JsonReadBool(root, "cached", &envelope.cached, "serve response"));
  RETURN_IF_ERROR(JsonReadBool(root, "degraded", &envelope.degraded, "serve response"));
  if (const Json* result = root.Find("result"); result != nullptr) {
    envelope.result = *result;
  }
  if (const Json* trace = root.Find("trace"); trace != nullptr) {
    envelope.trace = *trace;
  }
  return envelope;
}

std::string ResponseEnvelope::Serialize() const {
  Json root = Json::Object();
  root.Set("v", Json::Number(kProtocolVersion));
  root.Set("id", Json::Number(id));
  root.Set("status", Json::String(std::string(StatusCodeName(status.code()))));
  if (status.ok()) {
    root.Set("cached", Json::Bool(cached));
    if (degraded) {
      // Only present on degraded answers: normal responses stay byte-identical to builds
      // without brownout support.
      root.Set("degraded", Json::Bool(true));
    }
    root.Set("result", result);
    if (trace.type != Json::Type::kNull) {
      root.Set("trace", trace);
    }
  } else {
    root.Set("error", Json::String(status.message()));
  }
  return WriteJson(root);
}

}  // namespace probcon::serve
