#include "src/serve/cache.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "src/common/check.h"
#include "src/exec/thread_pool.h"

namespace probcon::serve {
namespace {

// Fixed per-entry bookkeeping charge (list node, map node, iterators), so a budget of B
// bytes cannot be defeated by millions of tiny entries.
constexpr size_t kEntryOverheadBytes = 128;

// FNV-1a over the key bytes. std::hash<std::string> would do, but a spelled-out hash keeps
// shard assignment identical across standard libraries, which keeps per-shard stats (and
// tests pinning collision behavior) portable.
size_t HashKey(const std::string& key) {
  uint64_t hash = 1469598103934665603ull;
  for (const char c : key) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;
  }
  return static_cast<size_t>(hash);
}

}  // namespace

QueryCache::QueryCache(size_t budget_bytes, MetricsRegistry* metrics, int shard_count)
    : shard_budget_bytes_(budget_bytes / static_cast<size_t>(std::max(shard_count, 1))) {
  CHECK(shard_count >= 1) << "cache shard count must be >= 1";
  shards_.reserve(static_cast<size_t>(shard_count));
  for (int i = 0; i < shard_count; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  if (metrics != nullptr) {
    hit_counter_ = &metrics->GetCounter("serve.cache.hits");
    miss_counter_ = &metrics->GetCounter("serve.cache.misses");
    coalesced_counter_ = &metrics->GetCounter("serve.cache.coalesced");
    follower_retry_counter_ = &metrics->GetCounter("serve.cache.follower_retries");
    eviction_counter_ = &metrics->GetCounter("serve.cache.evictions");
    bytes_gauge_ = &metrics->GetGauge("serve.cache.bytes");
    entries_gauge_ = &metrics->GetGauge("serve.cache.entries");
  }
}

QueryCache::Shard& QueryCache::ShardFor(const std::string& key) {
  return *shards_[HashKey(key) % shards_.size()];
}

bool QueryCache::TryGet(const std::string& key, std::string* value) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.entries.find(key);
  if (it == shard.entries.end()) {
    return false;  // Absent or in flight; the caller falls back to GetOrCompute.
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_it);
  ++shard.hits;
  if (hit_counter_ != nullptr) hit_counter_->Increment();
  *value = it->second.value;
  return true;
}

// NO_THREAD_SAFETY_ANALYSIS: clang cannot model std::unique_lock's unlock/relock dance
// around compute() and the help loop (libc++ only annotates lock_guard/scoped_lock).
// probcon-lint's R7/R8 DO track the toggles, so the region stays covered.
Result<std::string> QueryCache::GetOrCompute(
    const std::string& key, const std::function<Result<std::string>()>& compute,
    bool* was_cached) PROBCON_NO_THREAD_SAFETY_ANALYSIS {
  Shard& shard = ShardFor(key);
  std::unique_lock<std::mutex> lock(shard.mutex);
  while (true) {
    if (auto it = shard.entries.find(key); it != shard.entries.end()) {
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_it);
      ++shard.hits;
      if (hit_counter_ != nullptr) hit_counter_->Increment();
      if (was_cached != nullptr) *was_cached = true;
      return it->second.value;
    }
    if (auto it = shard.flights.find(key); it != shard.flights.end()) {
      // Single-flight follower: wait for the leader, share its outcome. The wait helps
      // the exec pool rather than blocking blindly: the leader's engine fans chunks onto
      // that same pool, and its own help loop (ParallelFor) may steal a queued request
      // for THIS key — which lands right here, on the leader's stack. A blind cv.wait
      // would then deadlock the flight against itself; helping (and bounded sleeps
      // otherwise) keeps every waiter making progress no matter whose stack it is on.
      std::shared_ptr<Flight> flight = it->second;
      ++shard.coalesced;
      if (coalesced_counter_ != nullptr) coalesced_counter_->Increment();
      while (!flight->done) {
        lock.unlock();
        const bool helped = ThreadPool::Global().TryRunOneTask();
        lock.lock();
        if (flight->done) break;
        if (!helped) {
          flight->cv.wait_for(lock, std::chrono::milliseconds(1));
        }
      }
      if (flight->result.status().code() == StatusCode::kCancelled) {
        // The leader was cancelled (typically its own, possibly shorter, deadline). That
        // says nothing about THIS caller's budget, so retry rather than inherit the
        // cancellation: we become (or follow) a fresh flight, and if our own token is
        // already cancelled the compute notices immediately.
        ++shard.follower_retries;
        if (follower_retry_counter_ != nullptr) follower_retry_counter_->Increment();
        continue;
      }
      if (flight->result.ok()) {
        ++shard.hits;
        if (hit_counter_ != nullptr) hit_counter_->Increment();
        if (was_cached != nullptr) *was_cached = true;
      } else if (was_cached != nullptr) {
        *was_cached = false;
      }
      return flight->result;
    }
    // Single-flight leader.
    std::shared_ptr<Flight> flight = std::make_shared<Flight>();
    shard.flights.emplace(key, flight);
    ++shard.misses;
    if (miss_counter_ != nullptr) miss_counter_->Increment();

    lock.unlock();
    Result<std::string> result = compute();
    lock.lock();

    if (result.ok()) {
      InsertLocked(shard, key, *result);
    }
    flight->result = result;
    flight->done = true;
    shard.flights.erase(key);
    flight->cv.notify_all();
    if (was_cached != nullptr) *was_cached = false;
    return result;
  }
}

void QueryCache::InsertLocked(Shard& shard, const std::string& key,
                              const std::string& value) {
  const size_t charged = key.size() + value.size() + kEntryOverheadBytes;
  if (charged > shard_budget_bytes_) {
    return;  // Larger than the whole shard; serve it uncached.
  }
  CHECK(shard.entries.find(key) == shard.entries.end())
      << "single-flight should prevent double insert";
  while (shard.entry_bytes + charged > shard_budget_bytes_ && !shard.lru.empty()) {
    const std::string& victim_key = shard.lru.back();
    auto victim = shard.entries.find(victim_key);
    CHECK(victim != shard.entries.end());
    const size_t victim_bytes = victim->second.charged_bytes;
    shard.entry_bytes -= victim_bytes;
    shard.entries.erase(victim);
    shard.lru.pop_back();
    ++shard.evictions;
    if (eviction_counter_ != nullptr) eviction_counter_->Increment();
    if (bytes_gauge_ != nullptr) bytes_gauge_->Add(-static_cast<double>(victim_bytes));
    if (entries_gauge_ != nullptr) entries_gauge_->Add(-1.0);
  }
  shard.lru.push_front(key);
  Entry entry;
  entry.value = value;
  entry.charged_bytes = charged;
  entry.lru_it = shard.lru.begin();
  shard.entries.emplace(key, std::move(entry));
  shard.entry_bytes += charged;
  if (bytes_gauge_ != nullptr) bytes_gauge_->Add(static_cast<double>(charged));
  if (entries_gauge_ != nullptr) entries_gauge_->Add(1.0);
}

QueryCache::Stats QueryCache::snapshot() const {
  Stats stats;
  for (const auto& shard_ptr : shards_) {
    const Shard& shard = *shard_ptr;
    std::lock_guard<std::mutex> lock(shard.mutex);
    stats.hits += shard.hits;
    stats.misses += shard.misses;
    stats.coalesced += shard.coalesced;
    stats.follower_retries += shard.follower_retries;
    stats.evictions += shard.evictions;
    stats.entry_count += shard.entries.size();
    stats.entry_bytes += shard.entry_bytes;
  }
  return stats;
}

}  // namespace probcon::serve
