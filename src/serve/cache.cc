#include "src/serve/cache.h"

#include <utility>

#include "src/common/check.h"

namespace probcon::serve {
namespace {

// Fixed per-entry bookkeeping charge (list node, map node, iterators), so a budget of B
// bytes cannot be defeated by millions of tiny entries.
constexpr size_t kEntryOverheadBytes = 128;

}  // namespace

QueryCache::QueryCache(size_t budget_bytes, MetricsRegistry* metrics)
    : budget_bytes_(budget_bytes) {
  if (metrics != nullptr) {
    hit_counter_ = &metrics->GetCounter("serve.cache.hits");
    miss_counter_ = &metrics->GetCounter("serve.cache.misses");
    coalesced_counter_ = &metrics->GetCounter("serve.cache.coalesced");
    follower_retry_counter_ = &metrics->GetCounter("serve.cache.follower_retries");
    eviction_counter_ = &metrics->GetCounter("serve.cache.evictions");
    bytes_gauge_ = &metrics->GetGauge("serve.cache.bytes");
    entries_gauge_ = &metrics->GetGauge("serve.cache.entries");
  }
}

Result<std::string> QueryCache::GetOrCompute(
    const std::string& key, const std::function<Result<std::string>()>& compute,
    bool* was_cached) {
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    if (auto it = entries_.find(key); it != entries_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second.lru_it);
      ++hits_;
      if (hit_counter_ != nullptr) hit_counter_->Increment();
      if (was_cached != nullptr) *was_cached = true;
      return it->second.value;
    }
    if (auto it = flights_.find(key); it != flights_.end()) {
      // Single-flight follower: wait for the leader, share its outcome.
      std::shared_ptr<Flight> flight = it->second;
      ++coalesced_;
      if (coalesced_counter_ != nullptr) coalesced_counter_->Increment();
      flight->cv.wait(lock, [&] { return flight->done; });
      if (flight->result.status().code() == StatusCode::kCancelled) {
        // The leader was cancelled (typically its own, possibly shorter, deadline). That
        // says nothing about THIS caller's budget, so retry rather than inherit the
        // cancellation: we become (or follow) a fresh flight, and if our own token is
        // already cancelled the compute notices immediately.
        ++follower_retries_;
        if (follower_retry_counter_ != nullptr) follower_retry_counter_->Increment();
        continue;
      }
      if (flight->result.ok()) {
        ++hits_;
        if (hit_counter_ != nullptr) hit_counter_->Increment();
        if (was_cached != nullptr) *was_cached = true;
      } else if (was_cached != nullptr) {
        *was_cached = false;
      }
      return flight->result;
    }
    // Single-flight leader.
    std::shared_ptr<Flight> flight = std::make_shared<Flight>();
    flights_.emplace(key, flight);
    ++misses_;
    if (miss_counter_ != nullptr) miss_counter_->Increment();

    lock.unlock();
    Result<std::string> result = compute();
    lock.lock();

    if (result.ok()) {
      InsertLocked(key, *result);
    }
    flight->result = result;
    flight->done = true;
    flights_.erase(key);
    flight->cv.notify_all();
    if (was_cached != nullptr) *was_cached = false;
    return result;
  }
}

void QueryCache::InsertLocked(const std::string& key, const std::string& value) {
  const size_t charged = key.size() + value.size() + kEntryOverheadBytes;
  if (charged > budget_bytes_) {
    return;  // Larger than the whole cache; serve it uncached.
  }
  CHECK(entries_.find(key) == entries_.end()) << "single-flight should prevent double insert";
  while (entry_bytes_ + charged > budget_bytes_ && !lru_.empty()) {
    const std::string& victim_key = lru_.back();
    auto victim = entries_.find(victim_key);
    CHECK(victim != entries_.end());
    entry_bytes_ -= victim->second.charged_bytes;
    entries_.erase(victim);
    lru_.pop_back();
    ++evictions_;
    if (eviction_counter_ != nullptr) eviction_counter_->Increment();
  }
  lru_.push_front(key);
  Entry entry;
  entry.value = value;
  entry.charged_bytes = charged;
  entry.lru_it = lru_.begin();
  entries_.emplace(key, std::move(entry));
  entry_bytes_ += charged;
  if (bytes_gauge_ != nullptr) bytes_gauge_->Set(static_cast<double>(entry_bytes_));
  if (entries_gauge_ != nullptr) {
    entries_gauge_->Set(static_cast<double>(entries_.size()));
  }
}

QueryCache::Stats QueryCache::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Stats stats;
  stats.hits = hits_;
  stats.misses = misses_;
  stats.coalesced = coalesced_;
  stats.follower_retries = follower_retries_;
  stats.evictions = evictions_;
  stats.entry_count = entries_.size();
  stats.entry_bytes = entry_bytes_;
  return stats;
}

}  // namespace probcon::serve
