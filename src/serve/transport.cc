#include "src/serve/transport.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <utility>

#include "src/common/thread_annotations.h"
#include "src/obs/span.h"
#include "src/serve/framing.h"

namespace probcon::serve {
namespace {

// Accept-loop poll tick: the latency bound on noticing Stop(). Purely a shutdown
// responsiveness knob; no request ever waits on it.
constexpr int kAcceptPollMs = 50;

// The reactor currently running on this thread (compared by address only, so a void* —
// Reactor is private to TcpServer). Lets a response that completes inline inside
// QueryServer::Submit (warm cache hits, pings, shed requests) skip the mailbox+eventfd
// round trip and append straight to the connection's outbound buffer.
thread_local const void* t_current_reactor = nullptr;

int DefaultReactorCount() {
  const unsigned hw = std::thread::hardware_concurrency();
  return static_cast<int>(std::min(hw == 0 ? 1u : hw, 4u));
}

bool SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

}  // namespace

// One reactor shard: a thread owning an epoll instance and a disjoint set of connections.
// All Conn state is touched only by this shard's thread; the only cross-thread surface is
// the mutex-guarded Mailbox (new fds from the acceptor, responses from the exec pool) and
// a couple of atomics for stats.
class TcpServer::Reactor {
 public:
  Reactor(QueryServer& server, const TcpServerOptions& options, int index,
          MetricsRegistry* metrics, Counter* closed_counter, Gauge* active_gauge,
          Histogram* write_ms, Histogram* loop_ms)
      : server_(server),
        options_(options),
        index_(index),
        closed_counter_(closed_counter),
        active_gauge_(active_gauge),
        write_ms_(write_ms),
        loop_ms_(loop_ms) {
    if (metrics != nullptr) {
      shard_gauge_ = &metrics->GetGauge("serve.connections.active.shard" +
                                        std::to_string(index));
    }
  }

  ~Reactor() { Stop(); }

  Status Start() {
    epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
    if (epoll_fd_ < 0) {
      return UnavailableError("epoll_create1(): " + std::string(std::strerror(errno)));
    }
    const int wake_fd = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
    if (wake_fd < 0) {
      ::close(epoll_fd_);
      epoll_fd_ = -1;
      return UnavailableError("eventfd(): " + std::string(std::strerror(errno)));
    }
    mailbox_ = std::make_shared<Mailbox>();
    {
      // Not yet published to any other thread, but locking keeps the guarded-field
      // contract checkable (uncontended, start-up only).
      std::lock_guard<std::mutex> lock(mailbox_->mutex);
      mailbox_->wake_fd = wake_fd;
    }
    epoll_event event{};
    event.events = EPOLLIN;
    event.data.u64 = 0;  // Conn ids start at 1; 0 is the mailbox eventfd.
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd, &event) != 0) {
      const std::string error = std::strerror(errno);
      ::close(wake_fd);
      ::close(epoll_fd_);
      epoll_fd_ = -1;
      return UnavailableError("epoll_ctl(eventfd): " + error);
    }
    stop_.store(false);
    thread_ = std::thread([this] { Loop(); });
    return Status::Ok();
  }

  // Signals the loop and joins it. The reactor thread itself closes every connection fd
  // and the epoll/eventfd descriptors on the way out (shard-local teardown), so Stop()
  // never races the loop on an fd.
  void Stop() {
    stop_.store(true, std::memory_order_release);
    if (mailbox_ != nullptr) {
      Wake();
    }
    if (thread_.joinable()) {
      thread_.join();
    }
  }

  // Hands a freshly accepted (already nonblocking) fd to this shard. Returns false when
  // the shard has stopped; the caller keeps ownership of the fd in that case.
  bool AddConnection(int fd) {
    std::lock_guard<std::mutex> lock(mailbox_->mutex);
    if (mailbox_->stopped) {
      return false;
    }
    mailbox_->new_fds.push_back(fd);
    WakeLocked();
    return true;
  }

  size_t connection_count() const { return live_count_.load(std::memory_order_relaxed); }

 private:
  struct Conn {
    Conn(uint64_t id_in, int fd_in, uint32_t max_frame_bytes)
        : id(id_in), fd(fd_in), decoder(max_frame_bytes) {}

    const uint64_t id;
    int fd;
    FrameDecoder decoder;
    std::string outbound;        // Encoded frames waiting for the socket.
    size_t outbound_offset = 0;  // Prefix of `outbound` already sent.
    int inflight = 0;            // Requests submitted, response not yet queued.
    uint32_t interest = EPOLLIN;  // Current epoll mask.
    bool read_closed = false;  // Peer half-closed; answer what's in flight, then close.
    bool dead = false;         // fd closed; reaped at the end of the round.
    bool in_drain = false;     // DrainFrames re-entrancy guard (inline completions).
    bool flush_queued = false;
  };

  // The shard's cross-thread inbox. `stopped`/`wake_fd` are guarded by `mutex`; after
  // teardown flips `stopped`, late responses are dropped here instead of touching freed
  // reactor state — response callbacks keep the Mailbox alive via shared_ptr.
  // Lock-order invariant: the mailbox mutex is a LEAF — nothing else is ever acquired
  // while it is held (WakeLocked's one-byte eventfd write is nonblocking by construction).
  struct Mailbox {
    std::mutex mutex;
    bool stopped PROBCON_GUARDED_BY(mutex) = false;
    bool signaled PROBCON_GUARDED_BY(mutex) = false;
    int wake_fd PROBCON_GUARDED_BY(mutex) = -1;
    std::vector<int> new_fds PROBCON_GUARDED_BY(mutex);
    std::vector<std::pair<uint64_t, std::string>> responses PROBCON_GUARDED_BY(mutex);
  };

  void Wake() {
    std::lock_guard<std::mutex> lock(mailbox_->mutex);
    WakeLocked();
  }

  void WakeLocked() PROBCON_REQUIRES(mailbox_->mutex) {
    if (!mailbox_->signaled && mailbox_->wake_fd >= 0) {
      const uint64_t one = 1;
      [[maybe_unused]] const ssize_t n =
          ::write(mailbox_->wake_fd, &one, sizeof(one));
      mailbox_->signaled = true;
    }
  }

  size_t PendingBytes(const Conn* conn) const {
    return conn->outbound.size() - conn->outbound_offset;
  }

  void Loop() {
    t_current_reactor = this;
    constexpr int kMaxEvents = 256;
    epoll_event events[kMaxEvents];
    while (!stop_.load(std::memory_order_acquire)) {
      const int ready = ::epoll_wait(epoll_fd_, events, kMaxEvents, -1);
      if (ready < 0) {
        if (errno == EINTR) continue;
        break;  // epoll fd gone; only possible on teardown.
      }
      SpanTimer round;
      for (int i = 0; i < ready; ++i) {
        const uint64_t id = events[i].data.u64;
        if (id == 0) {
          continue;  // Mailbox eventfd; drained unconditionally below.
        }
        const auto it = conns_.find(id);
        if (it == conns_.end()) {
          continue;  // Closed earlier in this round.
        }
        Conn* conn = it->second.get();
        if ((events[i].events & (EPOLLERR | EPOLLHUP)) != 0) {
          MarkDead(conn);
          continue;
        }
        if ((events[i].events & EPOLLIN) != 0) {
          HandleReadable(conn);
        }
        if (!conn->dead && (events[i].events & EPOLLOUT) != 0) {
          FlushConn(conn);
        }
      }
      DrainMailbox();
      FlushPending();
      ReapDead();
      if (loop_ms_ != nullptr) loop_ms_->Record(round.ElapsedMs());
    }
    Teardown();
    t_current_reactor = nullptr;
  }

  void RegisterConn(int fd) {
    const uint64_t id = next_conn_id_++;
    auto conn = std::make_unique<Conn>(id, fd, server_.options().max_frame_bytes);
    epoll_event event{};
    event.events = EPOLLIN;
    event.data.u64 = id;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &event) != 0) {
      ::close(fd);
      return;
    }
    conns_.emplace(id, std::move(conn));
    live_count_.fetch_add(1, std::memory_order_relaxed);
    if (active_gauge_ != nullptr) active_gauge_->Add(1.0);
    if (shard_gauge_ != nullptr) {
      shard_gauge_->Set(static_cast<double>(live_count_.load(std::memory_order_relaxed)));
    }
  }

  void HandleReadable(Conn* conn) {
    char buffer[64 * 1024];
    while (!conn->dead && !conn->read_closed) {
      if (conn->inflight >= options_.max_inflight_per_conn) {
        break;  // Backpressure: at the pipelining cap, leave bytes in the kernel.
      }
      const ssize_t received = ::recv(conn->fd, buffer, sizeof(buffer), 0);
      if (received > 0) {
        conn->decoder.Feed(std::string_view(buffer, static_cast<size_t>(received)));
        DrainFrames(conn);
        continue;
      }
      if (received == 0) {
        // Half-close: the peer is done sending but may still be reading. Finish the
        // pipelined requests already in flight, flush, then close.
        conn->read_closed = true;
        break;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      MarkDead(conn);
      return;
    }
    MaybeFinishHalfClosed(conn);
    if (!conn->dead) UpdateInterest(conn);
  }

  // Decodes and submits buffered frames while the connection is under its pipelining cap.
  // Inline completions (warm hits and other requests QueryServer answers synchronously)
  // re-enter the reactor via CompleteInline *during* Submit — they decrement `inflight`,
  // so the loop condition naturally keeps draining; the in_drain guard stops recursion.
  void DrainFrames(Conn* conn) {
    if (conn->in_drain || conn->dead) return;
    conn->in_drain = true;
    while (!conn->dead && conn->inflight < options_.max_inflight_per_conn) {
      Result<std::optional<std::string>> next = conn->decoder.Next();
      if (!next.ok()) {
        MarkDead(conn);  // Bad magic / oversized frame: drop the connection.
        break;
      }
      if (!next->has_value()) break;
      ++conn->inflight;
      SubmitFrame(conn->id, *std::move(*next));
    }
    conn->in_drain = false;
    if (!conn->dead) UpdateInterest(conn);
  }

  void SubmitFrame(uint64_t conn_id, std::string payload) {
    // The callback owns only refcounted state (the mailbox), so a response that completes
    // while — or after — the transport tears down is dropped safely. The raw `this` is
    // dereferenced only when this very thread is the reactor's loop thread, which
    // guarantees the reactor is alive.
    std::shared_ptr<Mailbox> mailbox = mailbox_;
    Reactor* self = this;
    server_.Submit(std::move(payload), [mailbox, self, conn_id](std::string response) {
      if (t_current_reactor == self) {
        self->CompleteInline(conn_id, std::move(response));
        return;
      }
      std::lock_guard<std::mutex> lock(mailbox->mutex);
      if (mailbox->stopped) return;
      mailbox->responses.emplace_back(conn_id, std::move(response));
      if (!mailbox->signaled && mailbox->wake_fd >= 0) {
        const uint64_t one = 1;
        [[maybe_unused]] const ssize_t n =
            ::write(mailbox->wake_fd, &one, sizeof(one));
        mailbox->signaled = true;
      }
    });
  }

  // Fast path for responses completing synchronously inside Submit on this very thread.
  void CompleteInline(uint64_t conn_id, std::string response) {
    const auto it = conns_.find(conn_id);
    if (it == conns_.end()) return;
    Conn* conn = it->second.get();
    --conn->inflight;
    if (conn->dead) return;
    AppendResponse(conn, response);
  }

  void DrainMailbox() {
    std::vector<int> fds;
    std::vector<std::pair<uint64_t, std::string>> responses;
    {
      std::lock_guard<std::mutex> lock(mailbox_->mutex);
      if (mailbox_->signaled) {
        uint64_t counter = 0;
        [[maybe_unused]] const ssize_t n =
            ::read(mailbox_->wake_fd, &counter, sizeof(counter));
        mailbox_->signaled = false;
      }
      fds.swap(mailbox_->new_fds);
      responses.swap(mailbox_->responses);
    }
    for (const int fd : fds) {
      RegisterConn(fd);
    }
    for (auto& [conn_id, payload] : responses) {
      const auto it = conns_.find(conn_id);
      if (it == conns_.end()) continue;  // Connection closed while the engine ran.
      Conn* conn = it->second.get();
      --conn->inflight;
      if (conn->dead) continue;
      AppendResponse(conn, payload);
      // A completed response frees pipeline capacity: decode any frames the kernel (or
      // the decoder) was holding while this connection sat at its cap.
      DrainFrames(conn);
    }
  }

  void AppendResponse(Conn* conn, const std::string& payload) {
    // Compact the sent prefix before growing, so the buffer stays bounded by the unsent
    // bytes rather than the connection's lifetime traffic.
    if (conn->outbound_offset > 0 &&
        (conn->outbound_offset == conn->outbound.size() ||
         conn->outbound_offset > 64 * 1024)) {
      conn->outbound.erase(0, conn->outbound_offset);
      conn->outbound_offset = 0;
    }
    conn->outbound += EncodeFrame(payload);
    if (PendingBytes(conn) > options_.max_conn_outbound_bytes) {
      // Slow consumer: it stopped reading while responses kept completing. Disconnect
      // rather than buffer without bound; the client can reconnect and retry.
      MarkDead(conn);
      return;
    }
    QueueFlush(conn);
  }

  void QueueFlush(Conn* conn) {
    if (!conn->flush_queued) {
      conn->flush_queued = true;
      flush_list_.push_back(conn->id);
    }
  }

  // Flushes every connection that queued responses this round — one send() per
  // connection per round, however many responses completed.
  void FlushPending() {
    for (const uint64_t id : flush_list_) {
      const auto it = conns_.find(id);
      if (it == conns_.end()) continue;
      Conn* conn = it->second.get();
      conn->flush_queued = false;
      if (!conn->dead) FlushConn(conn);
    }
    flush_list_.clear();
  }

  void FlushConn(Conn* conn) {
    SpanTimer span;
    bool progressed = false;
    while (PendingBytes(conn) > 0) {
      const ssize_t sent =
          ::send(conn->fd, conn->outbound.data() + conn->outbound_offset,
                 PendingBytes(conn), MSG_NOSIGNAL);
      if (sent > 0) {
        conn->outbound_offset += static_cast<size_t>(sent);
        progressed = true;
        continue;
      }
      if (sent < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      if (sent < 0 && errno == EINTR) continue;
      MarkDead(conn);
      return;
    }
    if (PendingBytes(conn) == 0) {
      conn->outbound.clear();
      conn->outbound_offset = 0;
    }
    if (progressed && write_ms_ != nullptr) write_ms_->Record(span.ElapsedMs());
    MaybeFinishHalfClosed(conn);
    if (!conn->dead) UpdateInterest(conn);
  }

  void MaybeFinishHalfClosed(Conn* conn) {
    if (!conn->dead && conn->read_closed && conn->inflight == 0 &&
        PendingBytes(conn) == 0) {
      MarkDead(conn);  // Every pipelined request answered and flushed; close our side.
    }
  }

  void UpdateInterest(Conn* conn) {
    uint32_t want = 0;
    if (!conn->read_closed && conn->inflight < options_.max_inflight_per_conn) {
      want |= EPOLLIN;
    }
    if (PendingBytes(conn) > 0) {
      want |= EPOLLOUT;
    }
    if (want == conn->interest) return;
    epoll_event event{};
    event.events = want;
    event.data.u64 = conn->id;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &event) == 0) {
      conn->interest = want;
    }
  }

  void MarkDead(Conn* conn) {
    if (conn->dead) return;
    conn->dead = true;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn->fd, nullptr);
    ::close(conn->fd);
    conn->fd = -1;
    dead_list_.push_back(conn->id);
    live_count_.fetch_sub(1, std::memory_order_relaxed);
    if (closed_counter_ != nullptr) closed_counter_->Increment();
    if (active_gauge_ != nullptr) active_gauge_->Add(-1.0);
    if (shard_gauge_ != nullptr) {
      shard_gauge_->Set(static_cast<double>(live_count_.load(std::memory_order_relaxed)));
    }
  }

  // Destroys dead Conn objects. Deferred to the end of the round so that event handlers,
  // inline completions, and the mailbox drain can keep raw Conn pointers within a round.
  void ReapDead() {
    for (const uint64_t id : dead_list_) {
      conns_.erase(id);
    }
    dead_list_.clear();
  }

  // Runs on the reactor thread after the loop exits: close every owned fd, drop every
  // connection, then seal the mailbox so late responses are dropped instead of written.
  void Teardown() {
    const size_t live = conns_.size();
    for (auto& [id, conn] : conns_) {
      if (conn->fd >= 0) ::close(conn->fd);
    }
    conns_.clear();
    live_count_.store(0, std::memory_order_relaxed);
    if (closed_counter_ != nullptr && live > 0) {
      closed_counter_->Increment(static_cast<uint64_t>(live));
    }
    if (active_gauge_ != nullptr && live > 0) active_gauge_->Add(-static_cast<double>(live));
    if (shard_gauge_ != nullptr) shard_gauge_->Set(0.0);
    int wake_fd = -1;
    std::vector<int> orphaned;
    {
      std::lock_guard<std::mutex> lock(mailbox_->mutex);
      mailbox_->stopped = true;
      wake_fd = mailbox_->wake_fd;
      mailbox_->wake_fd = -1;
      orphaned.swap(mailbox_->new_fds);
      mailbox_->responses.clear();
    }
    for (const int fd : orphaned) {
      ::close(fd);  // Accepted but never registered.
    }
    if (wake_fd >= 0) ::close(wake_fd);
    if (epoll_fd_ >= 0) {
      ::close(epoll_fd_);
      epoll_fd_ = -1;
    }
  }

  QueryServer& server_;
  const TcpServerOptions options_;
  [[maybe_unused]] const int index_;
  Gauge* shard_gauge_ = nullptr;
  Counter* const closed_counter_;
  Gauge* const active_gauge_;
  Histogram* const write_ms_;
  Histogram* const loop_ms_;

  int epoll_fd_ = -1;
  std::shared_ptr<Mailbox> mailbox_;
  std::thread thread_;
  std::atomic<bool> stop_{false};
  std::atomic<size_t> live_count_{0};

  // Reactor-thread-only state.
  uint64_t next_conn_id_ = 1;
  std::map<uint64_t, std::unique_ptr<Conn>> conns_;
  std::vector<uint64_t> flush_list_;
  std::vector<uint64_t> dead_list_;
};

TcpServer::TcpServer(QueryServer& server, MetricsRegistry* metrics, TcpServerOptions options)
    : server_(server), options_(options), metrics_(metrics) {
  if (metrics != nullptr) {
    accepted_counter_ = &metrics->GetCounter("serve.connections.accepted");
    closed_counter_ = &metrics->GetCounter("serve.connections.closed");
    active_gauge_ = &metrics->GetGauge("serve.connections.active");
    write_ms_ = &metrics->GetHistogram("serve.stage_ms.write",
                                       HistogramOptions::ServeLatencyMs());
    loop_ms_ = &metrics->GetHistogram("serve.reactor.loop_ms",
                                      HistogramOptions::ServeLatencyMs());
  }
}

TcpServer::~TcpServer() { Stop(); }

Status TcpServer::Start(uint16_t port) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return UnavailableError("socket(): " + std::string(std::strerror(errno)));
  }
  const int enable = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &enable, sizeof(enable));

  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  address.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&address), sizeof(address)) < 0) {
    const std::string error = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return UnavailableError("bind(127.0.0.1:" + std::to_string(port) + "): " + error);
  }
  if (::listen(listen_fd_, options_.listen_backlog) < 0) {
    const std::string error = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return UnavailableError("listen(): " + error);
  }
  socklen_t address_len = sizeof(address);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&address), &address_len) == 0) {
    port_ = ntohs(address.sin_port);
  }

  const int reactor_count =
      options_.reactors > 0 ? options_.reactors : DefaultReactorCount();
  reactors_.clear();
  for (int i = 0; i < reactor_count; ++i) {
    auto reactor = std::make_unique<Reactor>(server_, options_, i, metrics_,
                                             closed_counter_, active_gauge_, write_ms_,
                                             loop_ms_);
    Status started = reactor->Start();
    if (!started.ok()) {
      reactors_.clear();  // Joins and tears down the shards already running.
      ::close(listen_fd_);
      listen_fd_ = -1;
      return started;
    }
    reactors_.push_back(std::move(reactor));
  }

  stopping_.store(false);
  next_reactor_ = 0;
  acceptor_ = std::thread([this] { AcceptLoop(); });
  return Status::Ok();
}

void TcpServer::AcceptLoop() {
  while (!stopping_.load()) {
    pollfd pfd{};
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    const int ready = ::poll(&pfd, 1, kAcceptPollMs);
    if (ready <= 0) {
      continue;  // Timeout or EINTR; re-check stopping_.
    }
    const int client_fd = ::accept(listen_fd_, nullptr, nullptr);
    if (client_fd < 0) {
      continue;
    }
    if (!SetNonBlocking(client_fd)) {
      ::close(client_fd);
      continue;
    }
    const int enable = 1;
    ::setsockopt(client_fd, IPPROTO_TCP, TCP_NODELAY, &enable, sizeof(enable));
    if (accepted_counter_ != nullptr) accepted_counter_->Increment();
    // Round-robin shard assignment at accept; the connection belongs to that shard for
    // its whole life.
    Reactor& reactor = *reactors_[next_reactor_++ % reactors_.size()];
    if (!reactor.AddConnection(client_fd)) {
      ::close(client_fd);
      if (closed_counter_ != nullptr) closed_counter_->Increment();
    }
  }
}

size_t TcpServer::connection_count() const {
  size_t total = 0;
  for (const auto& reactor : reactors_) {
    total += reactor->connection_count();
  }
  return total;
}

void TcpServer::Stop() {
  if (stopping_.exchange(true)) {
    return;
  }
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
  }
  if (acceptor_.joinable()) {
    acceptor_.join();
  }
  // With the acceptor gone, nothing hands new fds to the shards; each shard closes its
  // own connections on its own thread.
  for (const auto& reactor : reactors_) {
    reactor->Stop();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

}  // namespace probcon::serve
