#include "src/serve/transport.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <string>
#include <utility>

#include "src/obs/span.h"
#include "src/serve/framing.h"

namespace probcon::serve {
namespace {

// Accept-loop poll tick: the latency bound on noticing Stop(). Purely a shutdown
// responsiveness knob; no request ever waits on it.
constexpr int kAcceptPollMs = 50;

}  // namespace

TcpServer::TcpServer(QueryServer& server, MetricsRegistry* metrics) : server_(server) {
  if (metrics != nullptr) {
    accepted_counter_ = &metrics->GetCounter("serve.connections.accepted");
    closed_counter_ = &metrics->GetCounter("serve.connections.closed");
    active_gauge_ = &metrics->GetGauge("serve.connections.active");
    write_ms_ = &metrics->GetHistogram("serve.stage_ms.write",
                                       HistogramOptions::ServeLatencyMs());
  }
}

TcpServer::~TcpServer() { Stop(); }

Status TcpServer::Start(uint16_t port) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return UnavailableError("socket(): " + std::string(std::strerror(errno)));
  }
  const int enable = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &enable, sizeof(enable));

  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  address.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&address), sizeof(address)) < 0) {
    const std::string error = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return UnavailableError("bind(127.0.0.1:" + std::to_string(port) + "): " + error);
  }
  if (::listen(listen_fd_, 64) < 0) {
    const std::string error = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return UnavailableError("listen(): " + error);
  }
  socklen_t address_len = sizeof(address);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&address), &address_len) == 0) {
    port_ = ntohs(address.sin_port);
  }
  stopping_.store(false);
  acceptor_ = std::thread([this] { AcceptLoop(); });
  return Status::Ok();
}

void TcpServer::AcceptLoop() {
  while (!stopping_.load()) {
    pollfd pfd{};
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    const int ready = ::poll(&pfd, 1, kAcceptPollMs);
    if (ready <= 0) {
      continue;  // Timeout or EINTR; re-check stopping_.
    }
    const int client_fd = ::accept(listen_fd_, nullptr, nullptr);
    if (client_fd < 0) {
      continue;
    }
    auto connection = std::make_shared<Connection>();
    connection->fd = client_fd;
    {
      std::lock_guard<std::mutex> lock(connections_mutex_);
      if (stopping_.load()) {
        ::close(client_fd);
        return;
      }
      connections_.push_back(connection);
      if (accepted_counter_ != nullptr) accepted_counter_->Increment();
      if (active_gauge_ != nullptr) {
        active_gauge_->Set(static_cast<double>(connections_.size()));
      }
      // Assigning `reader` under the mutex means the reader thread — which may exit
      // immediately on a dead connection — cannot reach its self-reap (which takes this
      // mutex) before the handle it will detach exists.
      connection->reader = std::thread([this, connection] { ReaderLoop(connection); });
    }
  }
}

void TcpServer::ReaderLoop(const std::shared_ptr<Connection>& connection) {
  FrameDecoder decoder(server_.options().max_frame_bytes);
  char buffer[16 * 1024];
  while (!stopping_.load()) {
    const ssize_t received = ::recv(connection->fd, buffer, sizeof(buffer), 0);
    if (received <= 0) {
      break;  // Peer closed, connection error, or our own shutdown() from Stop().
    }
    decoder.Feed(std::string_view(buffer, static_cast<size_t>(received)));
    bool corrupt = false;
    while (true) {
      Result<std::optional<std::string>> next = decoder.Next();
      if (!next.ok()) {
        corrupt = true;  // Bad magic / oversized frame: drop the connection.
        break;
      }
      if (!next->has_value()) {
        break;
      }
      server_.Submit(**next, [connection, write_ms = write_ms_](std::string response) {
        WriteFrame(connection, response, write_ms);
      });
    }
    if (corrupt) {
      break;
    }
  }
  CloseConnection(connection);
  // Self-reap so a long-running daemon does not accumulate one dead Connection (and one
  // unjoined thread handle) per disconnected client. Exactly one party owns the cleanup:
  // if the connection is still registered we take it and detach our own handle; if Stop()
  // already swapped the list out, Stop() joins us instead.
  std::thread self;
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    const auto it = std::find(connections_.begin(), connections_.end(), connection);
    if (it != connections_.end()) {
      connections_.erase(it);
      self = std::move(connection->reader);
      if (closed_counter_ != nullptr) closed_counter_->Increment();
      if (active_gauge_ != nullptr) {
        active_gauge_->Set(static_cast<double>(connections_.size()));
      }
    }
  }
  if (self.joinable()) {
    self.detach();
  }
}

void TcpServer::WriteFrame(const std::shared_ptr<Connection>& connection,
                           const std::string& payload, Histogram* write_ms) {
  // The span covers encode + per-connection lock wait + send, so a slow or backpressured
  // client shows up in serve.stage_ms.write rather than hiding in request latency (the
  // request itself already answered by the time this runs).
  SpanTimer span;
  const std::string frame = EncodeFrame(payload);
  std::lock_guard<std::mutex> lock(connection->write_mutex);
  if (connection->closed) {
    return;  // Response raced with connection teardown; drop it.
  }
  size_t sent = 0;
  while (sent < frame.size()) {
    const ssize_t n = ::send(connection->fd, frame.data() + sent, frame.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) {
      return;
    }
    sent += static_cast<size_t>(n);
  }
  if (write_ms != nullptr) write_ms->Record(span.ElapsedMs());
}

void TcpServer::CloseConnection(const std::shared_ptr<Connection>& connection) {
  std::lock_guard<std::mutex> lock(connection->write_mutex);
  if (!connection->closed) {
    connection->closed = true;
    ::close(connection->fd);
  }
}

size_t TcpServer::connection_count() const {
  std::lock_guard<std::mutex> lock(connections_mutex_);
  return connections_.size();
}

void TcpServer::Stop() {
  if (stopping_.exchange(true)) {
    return;
  }
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
  }
  if (acceptor_.joinable()) {
    acceptor_.join();
  }
  std::vector<std::shared_ptr<Connection>> connections;
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    connections.swap(connections_);
    if (closed_counter_ != nullptr) {
      closed_counter_->Increment(static_cast<uint64_t>(connections.size()));
    }
    if (active_gauge_ != nullptr) active_gauge_->Set(0.0);
  }
  for (const auto& connection : connections) {
    // Unblock the reader's recv() without closing the fd out from under a concurrent
    // write; CloseConnection (from the reader, and again here) owns the actual close.
    // Checked under write_mutex so we never shutdown() an already-closed (and possibly
    // recycled) descriptor.
    std::lock_guard<std::mutex> lock(connection->write_mutex);
    if (!connection->closed) {
      ::shutdown(connection->fd, SHUT_RDWR);
    }
  }
  for (const auto& connection : connections) {
    if (connection->reader.joinable()) {
      connection->reader.join();
    }
    CloseConnection(connection);
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

}  // namespace probcon::serve
