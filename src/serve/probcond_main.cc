// probcond — the reliability-query daemon.
//
// Usage:
//   probcond [--port N] [--cache-bytes N] [--max-inflight N] [--default-deadline-ms N]
//
// Binds 127.0.0.1 (port 0 = ephemeral; the chosen port is printed on stdout as
// "probcond listening on 127.0.0.1:<port>" for scripts to scrape), serves the framed JSON
// protocol (docs/SERVING.md), and shuts down gracefully on SIGINT/SIGTERM: stop accepting,
// answer in-flight requests, print a metrics summary, exit 0.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>

#include "src/obs/metrics.h"
#include "src/serve/server.h"
#include "src/serve/transport.h"

namespace {

std::atomic<bool> g_shutdown{false};

void HandleSignal(int /*signum*/) { g_shutdown.store(true); }

bool ParseFlag(int argc, char** argv, int* i, const char* name, long long* out) {
  if (std::strcmp(argv[*i], name) != 0) {
    return false;
  }
  if (*i + 1 >= argc) {
    std::fprintf(stderr, "missing value for %s\n", name);
    std::exit(2);
  }
  *out = std::atoll(argv[++*i]);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  long long port = 0;
  long long cache_bytes = 64LL << 20;
  long long max_inflight = 64;
  long long default_deadline_ms = 0;
  for (int i = 1; i < argc; ++i) {
    if (ParseFlag(argc, argv, &i, "--port", &port) ||
        ParseFlag(argc, argv, &i, "--cache-bytes", &cache_bytes) ||
        ParseFlag(argc, argv, &i, "--max-inflight", &max_inflight) ||
        ParseFlag(argc, argv, &i, "--default-deadline-ms", &default_deadline_ms)) {
      continue;
    }
    std::fprintf(stderr, "unknown flag %s\n", argv[i]);
    return 2;
  }

  probcon::MetricsRegistry metrics;
  probcon::serve::ServerOptions options;
  options.cache_bytes = static_cast<size_t>(cache_bytes);
  options.max_inflight = static_cast<int>(max_inflight);
  options.default_deadline_ms = static_cast<double>(default_deadline_ms);
  probcon::serve::QueryServer server(options, &metrics);
  probcon::serve::TcpServer transport(server);

  const probcon::Status started = transport.Start(static_cast<uint16_t>(port));
  if (!started.ok()) {
    std::fprintf(stderr, "probcond: %s\n", started.ToString().c_str());
    return 1;
  }
  std::printf("probcond listening on 127.0.0.1:%u\n", transport.port());
  std::fflush(stdout);

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  while (!g_shutdown.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  // Graceful shutdown: refuse new work, let in-flight requests answer, then tear the
  // transport down so those answers reach their connections.
  std::printf("probcond draining...\n");
  std::fflush(stdout);
  server.Drain();
  transport.Stop();

  const auto cache = server.cache().snapshot();
  std::printf("probcond stats: requests=%llu cache_hits=%llu cache_misses=%llu shed=%llu\n",
              static_cast<unsigned long long>(metrics.GetCounter("serve.requests").value()),
              static_cast<unsigned long long>(cache.hits),
              static_cast<unsigned long long>(cache.misses),
              static_cast<unsigned long long>(metrics.GetCounter("serve.shed").value()));
  return 0;
}
