// probcond — the reliability-query daemon.
//
// Usage:
//   probcond [--port N] [--cache-bytes N] [--cache-shards N] [--max-inflight N]
//            [--reactors N] [--max-inflight-per-conn N] [--default-deadline-ms N]
//            [--no-brownout] [--brownout-trip-sheds N] [--brownout-recover-admits N]
//            [--brownout-lane N] [--brownout-trials N]
//            [--metrics-interval-s N --metrics-path FILE]
//
// The --brownout-* flags tune the overload circuit breaker (docs/SERVING.md, "Brownout &
// health"): after --brownout-trip-sheds sheds within the breaker window, montecarlo and
// end_to_end answer in degraded mode (capped at --brownout-trials trials, flagged
// "degraded": true) through a --brownout-lane-slot side lane until
// --brownout-recover-admits consecutive normal admits close the breaker. --no-brownout
// disables degradation entirely (overload always sheds).
//
// --reactors picks the transport's reactor-shard count (0 = auto), --max-inflight-per-conn
// the per-connection pipelining cap, and --cache-shards the memo-cache shard count; see
// docs/SERVING.md for how the three interact.
//
// Binds 127.0.0.1 (port 0 = ephemeral; the chosen port is printed on stdout as
// "probcond listening on 127.0.0.1:<port>" for scripts to scrape), serves the framed JSON
// protocol (docs/SERVING.md), and shuts down gracefully on SIGINT/SIGTERM: stop accepting,
// answer in-flight requests, print a metrics summary, exit 0.
//
// --metrics-interval-s with --metrics-path enables a periodic metrics dump: every N
// seconds (measured in 50ms shutdown-poll ticks, so no extra clock enters the daemon) the
// full registry plus exec-pool telemetry is written as deterministic metrics JSON
// (docs/OBSERVABILITY.md) to FILE via write-temp-then-rename, so scrapers never observe a
// torn file. A final dump is written after drain. For on-demand snapshots use the `stats`
// verb instead (probcon-cli stats).

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include <atomic>
#include <chrono>
#include <fstream>
#include <string>
#include <thread>

#include "src/exec/thread_pool.h"
#include "src/obs/export.h"
#include "src/obs/metrics.h"
#include "src/serve/server.h"
#include "src/serve/transport.h"

namespace {

std::atomic<bool> g_shutdown{false};

void HandleSignal(int /*signum*/) { g_shutdown.store(true); }

bool ParseFlag(int argc, char** argv, int* i, const char* name, long long* out) {
  if (std::strcmp(argv[*i], name) != 0) {
    return false;
  }
  if (*i + 1 >= argc) {
    std::fprintf(stderr, "missing value for %s\n", name);
    std::exit(2);
  }
  *out = std::atoll(argv[++*i]);
  return true;
}

bool ParseStringFlag(int argc, char** argv, int* i, const char* name, std::string* out) {
  if (std::strcmp(argv[*i], name) != 0) {
    return false;
  }
  if (*i + 1 >= argc) {
    std::fprintf(stderr, "missing value for %s\n", name);
    std::exit(2);
  }
  *out = argv[++*i];
  return true;
}

// Snapshots the live registry (plus exec-pool telemetry, which ExportMetrics accumulates —
// hence a fresh snapshot registry per dump) and writes it atomically to `path`.
void DumpMetrics(const probcon::MetricsRegistry& metrics, const std::string& path) {
  probcon::MetricsRegistry snapshot;
  metrics.SnapshotInto(&snapshot);
  probcon::ThreadPool::Global().ExportMetrics(snapshot);
  const std::string temp = path + ".tmp";
  {
    std::ofstream out(temp, std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "probcond: cannot write %s\n", temp.c_str());
      return;
    }
    probcon::WriteMetricsJson(snapshot, out);
    out << '\n';
  }
  if (std::rename(temp.c_str(), path.c_str()) != 0) {
    std::fprintf(stderr, "probcond: rename %s -> %s failed\n", temp.c_str(), path.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  long long port = 0;
  long long cache_bytes = 64LL << 20;
  long long max_inflight = 64;
  long long cache_shards = probcon::serve::kDefaultCacheShards;
  long long reactors = 0;
  long long max_inflight_per_conn = probcon::serve::kDefaultMaxInflightPerConn;
  long long default_deadline_ms = 0;
  long long metrics_interval_s = 0;
  probcon::serve::BrownoutOptions brownout_defaults;
  long long brownout_enabled = 1;
  long long brownout_trip_sheds = brownout_defaults.trip_sheds;
  long long brownout_recover_admits = brownout_defaults.recover_admits;
  long long brownout_lane = brownout_defaults.degraded_lane;
  long long brownout_trials = static_cast<long long>(brownout_defaults.degraded_trials);
  std::string metrics_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--no-brownout") == 0) {
      brownout_enabled = 0;
      continue;
    }
    if (ParseFlag(argc, argv, &i, "--port", &port) ||
        ParseFlag(argc, argv, &i, "--cache-bytes", &cache_bytes) ||
        ParseFlag(argc, argv, &i, "--max-inflight", &max_inflight) ||
        ParseFlag(argc, argv, &i, "--cache-shards", &cache_shards) ||
        ParseFlag(argc, argv, &i, "--reactors", &reactors) ||
        ParseFlag(argc, argv, &i, "--max-inflight-per-conn", &max_inflight_per_conn) ||
        ParseFlag(argc, argv, &i, "--default-deadline-ms", &default_deadline_ms) ||
        ParseFlag(argc, argv, &i, "--brownout-trip-sheds", &brownout_trip_sheds) ||
        ParseFlag(argc, argv, &i, "--brownout-recover-admits", &brownout_recover_admits) ||
        ParseFlag(argc, argv, &i, "--brownout-lane", &brownout_lane) ||
        ParseFlag(argc, argv, &i, "--brownout-trials", &brownout_trials) ||
        ParseFlag(argc, argv, &i, "--metrics-interval-s", &metrics_interval_s) ||
        ParseStringFlag(argc, argv, &i, "--metrics-path", &metrics_path)) {
      continue;
    }
    std::fprintf(stderr, "unknown flag %s\n", argv[i]);
    return 2;
  }
  if ((metrics_interval_s > 0) != !metrics_path.empty()) {
    std::fprintf(stderr,
                 "--metrics-interval-s and --metrics-path must be given together\n");
    return 2;
  }

  probcon::MetricsRegistry metrics;
  probcon::serve::ServerOptions options;
  options.cache_bytes = static_cast<size_t>(cache_bytes);
  options.max_inflight = static_cast<int>(max_inflight);
  options.cache_shards = static_cast<int>(cache_shards);
  options.default_deadline_ms = static_cast<double>(default_deadline_ms);
  options.brownout.enabled = brownout_enabled != 0;
  options.brownout.trip_sheds = static_cast<int>(brownout_trip_sheds);
  options.brownout.recover_admits = static_cast<int>(brownout_recover_admits);
  options.brownout.degraded_lane = static_cast<int>(brownout_lane);
  options.brownout.degraded_trials = static_cast<uint64_t>(brownout_trials);
  probcon::serve::QueryServer server(options, &metrics);
  probcon::serve::TcpServerOptions transport_options;
  transport_options.reactors = static_cast<int>(reactors);
  transport_options.max_inflight_per_conn = static_cast<int>(max_inflight_per_conn);
  probcon::serve::TcpServer transport(server, &metrics, transport_options);

  const probcon::Status started = transport.Start(static_cast<uint16_t>(port));
  if (!started.ok()) {
    std::fprintf(stderr, "probcond: %s\n", started.ToString().c_str());
    return 1;
  }
  std::printf("probcond listening on 127.0.0.1:%u\n", transport.port());
  std::fflush(stdout);

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  // The metrics dump rides the existing 50ms shutdown poll: 20 ticks per second, no
  // second clock source in the daemon.
  const long long dump_every_ticks = metrics_interval_s * 20;
  long long ticks = 0;
  while (!g_shutdown.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    if (dump_every_ticks > 0 && ++ticks >= dump_every_ticks) {
      ticks = 0;
      DumpMetrics(metrics, metrics_path);
    }
  }

  // Graceful shutdown: refuse new work, let in-flight requests answer, then tear the
  // transport down so those answers reach their connections.
  std::printf("probcond draining...\n");
  std::fflush(stdout);
  server.Drain();
  transport.Stop();
  if (dump_every_ticks > 0) {
    DumpMetrics(metrics, metrics_path);  // Final window, so a scrape can't miss the tail.
  }

  const auto cache = server.cache().snapshot();
  std::printf("probcond stats: requests=%llu cache_hits=%llu cache_misses=%llu shed=%llu\n",
              static_cast<unsigned long long>(metrics.GetCounter("serve.requests").value()),
              static_cast<unsigned long long>(cache.hits),
              static_cast<unsigned long long>(cache.misses),
              static_cast<unsigned long long>(metrics.GetCounter("serve.shed").value()));
  return 0;
}
