// Length-framed message encoding for the probcon::serve wire protocol.
//
// A frame is a fixed 8-byte header followed by the payload bytes:
//
//   bytes 0..3   magic "PCSV" (rejects cross-protocol connections immediately)
//   bytes 4..7   payload length, unsigned 32-bit big-endian
//   bytes 8..    payload (UTF-8 JSON)
//
// The decoder is incremental — transports feed whatever the socket returned and pull
// complete payloads out — and enforces a maximum payload length up front, so a malicious or
// corrupt length field is rejected before any allocation of that size happens. Pure
// byte-shuffling: no I/O, no clocks, fully unit-testable (tests/serve/framing_test.cc).

#ifndef PROBCON_SRC_SERVE_FRAMING_H_
#define PROBCON_SRC_SERVE_FRAMING_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "src/common/status.h"

namespace probcon::serve {

inline constexpr char kFrameMagic[4] = {'P', 'C', 'S', 'V'};
inline constexpr size_t kFrameHeaderBytes = 8;

// Hard ceiling on any frame this code will ever produce or accept, independent of the
// configured per-server limit.
inline constexpr uint32_t kAbsoluteMaxPayloadBytes = 64u << 20;

// Encodes one frame. CHECK-fails on payloads above kAbsoluteMaxPayloadBytes (requests and
// responses here are KB-scale; hitting the ceiling is a programmer error).
std::string EncodeFrame(std::string_view payload);

// Incremental decoder: Feed() appends raw bytes, Next() yields the next complete payload or
// nullopt when more bytes are needed. A bad magic or oversized declared length poisons the
// decoder — every later call returns the same error, and the transport must drop the
// connection.
class FrameDecoder {
 public:
  explicit FrameDecoder(uint32_t max_payload_bytes = kAbsoluteMaxPayloadBytes);

  void Feed(std::string_view bytes);

  // Next complete payload, nullopt when the buffered bytes end mid-frame, or an error for a
  // corrupt stream.
  Result<std::optional<std::string>> Next();

  // Bytes buffered but not yet returned (diagnostics / tests).
  size_t buffered_bytes() const { return buffer_.size() - consumed_; }

  // Classifies end-of-stream for a transport that just saw the peer close. Ok when the
  // stream ended on a frame boundary (nothing partial buffered); the sticky poison error
  // when the stream was already corrupt; otherwise UNAVAILABLE describing the partial
  // frame — mid-header or mid-payload — so callers surface a clean typed error instead of
  // hanging on bytes that will never arrive.
  Status AtEof() const;

 private:
  uint32_t max_payload_bytes_;
  std::string buffer_;
  size_t consumed_ = 0;  // Prefix of buffer_ already handed out.
  Status poisoned_;      // First framing error, sticky.
};

}  // namespace probcon::serve

#endif  // PROBCON_SRC_SERVE_FRAMING_H_
