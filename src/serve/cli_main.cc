// probcon-cli — command-line client for a probcond daemon.
//
// Usage:
//   probcon-cli --port N [--deadline-ms D] [--repeat K] [--concurrency N] [--trace]
//               <kind> [<params-json>]
//
//   probcon-cli --port 7421 table1 '{"n": 4}'
//   probcon-cli --port 7421 quorum_size '{"protocol": "pbft", "fault": {"n": 7, "p": 0.02}}'
//   probcon-cli --port 7421 montecarlo
//       '{"protocol": "raft", "fault": {"n": 31, "p": 0.05}, "trials": 1000000}'
//   probcon-cli --port 7421 availability
//       '{"protocol": "raft", "fleet": {"classes": [{"count": 5, "failure_rate": 1e-3}],
//         "repair_rate": 0.5}}'
//   probcon-cli --port 7421 mission_reliability
//       '{"protocol": "raft", "schedule": {"curve": {"kind": "weibull", "shape": 0.7,
//         "scale": 100000}, "n": 5, "round_hours": 24, "rounds": 30}}'
//   probcon-cli --port 7421 repair_sweep
//       '{"protocol": "raft", "fleet": {"classes": [{"count": 5, "failure_rate": 1e-3}]},
//         "min_rate": 0.01, "max_rate": 10, "points": 16, "target_availability": 0.99999}'
//   probcon-cli --port 7421 stats                  # live metrics snapshot (JSON)
//   probcon-cli --port 7421 stats '{"reset": true}'  # ...and zero counters/histograms
//
// Prints the response envelope as indented JSON on stdout. Exit codes are one per error
// class, so scripts can branch on the failure mode without parsing JSON:
//
//   0  OK
//   1  transport failure (connect/framing/stream)
//   2  usage / malformed params
//   3  INVALID_ARGUMENT (and other client-input rejections)
//   4  DEADLINE_EXCEEDED
//   5  UNAVAILABLE (draining server)
//   6  RESOURCE_EXHAUSTED (load shed; retry with backoff)
//   7  any other server-reported status
//
// Server-reported errors also print "probcon-cli: <STATUS_NAME>: <message>" to stderr (the
// envelope still prints to stdout). With --repeat, the worst (highest) code wins.
// --repeat issues the same query K times over one connection (cache behavior is visible in
// the "cached" field of each response). --concurrency pipelines the repeats in batches of
// N over that single connection (responses may complete out of order server-side; they are
// matched back by request id and always print in request order). --trace asks the daemon
// to echo its per-stage span breakdown (parse/canonicalize/cache/engine,
// docs/OBSERVABILITY.md) in a "trace" field.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "src/common/json.h"
#include "src/serve/client.h"

int main(int argc, char** argv) {
  long long port = 0;
  double deadline_ms = 0.0;
  long long repeat = 1;
  long long concurrency = 1;
  bool trace = false;
  int i = 1;
  for (; i < argc; ++i) {
    if (std::strcmp(argv[i], "--port") == 0 && i + 1 < argc) {
      port = std::atoll(argv[++i]);
    } else if (std::strcmp(argv[i], "--deadline-ms") == 0 && i + 1 < argc) {
      deadline_ms = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--repeat") == 0 && i + 1 < argc) {
      repeat = std::atoll(argv[++i]);
    } else if (std::strcmp(argv[i], "--concurrency") == 0 && i + 1 < argc) {
      concurrency = std::atoll(argv[++i]);
    } else if (std::strcmp(argv[i], "--trace") == 0) {
      trace = true;
    } else if (argv[i][0] == '-') {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 2;
    } else {
      break;
    }
  }
  if (port <= 0 || i >= argc || concurrency <= 0) {
    std::fprintf(stderr,
                 "usage: probcon-cli --port N [--deadline-ms D] [--repeat K] "
                 "[--concurrency N] [--trace] <kind> [<params-json>]\n");
    return 2;
  }
  const std::string kind = argv[i++];
  const std::string params_text = i < argc ? argv[i] : "{}";

  probcon::Result<probcon::Json> params = probcon::ParseJson(params_text, "params");
  if (!params.ok()) {
    std::fprintf(stderr, "probcon-cli: %s\n", params.status().ToString().c_str());
    return 2;
  }

  auto channel = probcon::serve::TcpChannel::Connect(static_cast<uint16_t>(port));
  if (!channel.ok()) {
    std::fprintf(stderr, "probcon-cli: %s\n", channel.status().ToString().c_str());
    return 1;
  }
  probcon::serve::ServeClient client(std::move(*channel));

  // One exit code per error class; INVALID_ARGUMENT keeps the historical 3.
  auto status_exit_code = [](probcon::StatusCode code) {
    switch (code) {
      case probcon::StatusCode::kOk:
        return 0;
      case probcon::StatusCode::kDeadlineExceeded:
        return 4;
      case probcon::StatusCode::kUnavailable:
        return 5;
      case probcon::StatusCode::kResourceExhausted:
        return 6;
      case probcon::StatusCode::kInvalidArgument:
      case probcon::StatusCode::kOutOfRange:
      case probcon::StatusCode::kFailedPrecondition:
      case probcon::StatusCode::kNotFound:
        return 3;
      default:
        return 7;
    }
  };

  int exit_code = 0;
  auto print_response = [&exit_code, &status_exit_code](
                            const probcon::serve::ResponseEnvelope& response) {
    probcon::Json rendered = probcon::Json::Object();
    rendered.Set("id", probcon::Json::Number(response.id));
    rendered.Set("status",
                 probcon::Json::String(std::string(
                     probcon::StatusCodeName(response.status.code()))));
    if (response.status.ok()) {
      rendered.Set("cached", probcon::Json::Bool(response.cached));
      if (response.degraded) {
        rendered.Set("degraded", probcon::Json::Bool(true));
      }
      rendered.Set("result", response.result);
      if (response.trace.type != probcon::Json::Type::kNull) {
        rendered.Set("trace", response.trace);
      }
    } else {
      rendered.Set("error", probcon::Json::String(response.status.message()));
      std::fprintf(stderr, "probcon-cli: %s: %s\n",
                   std::string(probcon::StatusCodeName(response.status.code())).c_str(),
                   response.status.message().c_str());
      exit_code = std::max(exit_code, status_exit_code(response.status.code()));
    }
    std::printf("%s\n", probcon::WriteJson(rendered, 0).c_str());
  };

  for (long long done = 0; done < repeat;) {
    const long long batch = std::min(concurrency, repeat - done);
    if (batch == 1) {
      probcon::Result<probcon::serve::ResponseEnvelope> response =
          client.Query(kind, *params, deadline_ms, trace);
      if (!response.ok()) {
        std::fprintf(stderr, "probcon-cli: %s\n", response.status().ToString().c_str());
        return 1;
      }
      print_response(*response);
    } else {
      // Pipeline the batch over the single connection; QueryBatch returns envelopes in
      // request order regardless of server-side completion order.
      std::vector<probcon::serve::ServeClient::BatchItem> items(
          static_cast<size_t>(batch));
      for (auto& item : items) {
        item.kind = kind;
        item.params = *params;
        item.deadline_ms = deadline_ms;
        item.trace = trace;
      }
      probcon::Result<std::vector<probcon::serve::ResponseEnvelope>> responses =
          client.QueryBatch(items);
      if (!responses.ok()) {
        std::fprintf(stderr, "probcon-cli: %s\n", responses.status().ToString().c_str());
        return 1;
      }
      for (const auto& response : *responses) {
        print_response(response);
      }
    }
    done += batch;
  }
  return exit_code;
}
