// The query server: admission control, memoization, deadlines, and graceful drain around
// the execution engine. Transport-agnostic — the TCP listener (transport.h), the loopback
// channel (client.h), and the tests all speak to the same QueryServer.
//
// Request lifecycle:
//
//   Submit(payload)
//     -> request-text memo probe            (a payload seen before — any id — maps straight
//                                            to its cache key, skipping parse/canonicalize)
//     -> parse + validate envelope          (errors answer inline: INVALID_ARGUMENT)
//     -> ping / stats answer inline         (introspection must work under overload)
//     -> drain check                        (UNAVAILABLE while draining)
//     -> admission control                  (RESOURCE_EXHAUSTED above max_inflight —
//                                            load shedding is a fast reject, never a queue)
//     -> cache.GetOrCompute(canonical key)  (hit: answer without touching the engines;
//                                            concurrent identical misses single-flight)
//     -> ExecuteRequest on the exec pool, with a CancelToken the deadline watchdog fires
//
// Observability: every stage of that lifecycle is timed with SpanTimer (src/obs/span.h)
// and recorded
// into the serve.stage_ms.{parse,canonicalize,cache,engine,serialize} histograms plus
// per-kind end-to-end latency histograms (serve.latency_ms.<kind>); a request carrying
// `trace: true` gets its span breakdown echoed back in the response envelope. The `stats`
// verb snapshots the whole registry (plus exec-pool telemetry) as JSON, optionally
// resetting counters/histograms afterwards. docs/OBSERVABILITY.md catalogues the metric
// names.
//
// Deadlines are cooperative: the watchdog thread cancels the request's token when its
// deadline passes, the engine's inner loops poll the token every kCancellationPollStride
// iterations and bail, and the reply is DEADLINE_EXCEEDED. A wedged reply is impossible as
// long as engines honor the token — which tests/analysis/cancellation_test.cc locks in.
//
// This layer is where wall-clock time enters the system (deadline arming, latency
// metrics). Everything below it — engines, cache keys, results — stays clock-free, which
// is what keeps served answers byte-identical to offline tool output.

#ifndef PROBCON_SRC_SERVE_SERVER_H_
#define PROBCON_SRC_SERVE_SERVER_H_

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/common/cancellation.h"
#include "src/common/thread_annotations.h"
#include "src/obs/metrics.h"
#include "src/obs/span.h"
#include "src/serve/cache.h"
#include "src/serve/engine.h"
#include "src/serve/spec.h"

namespace probcon::serve {

// Brownout circuit breaker: under sustained shedding the server stops failing the
// expensive-but-degradable verbs (montecarlo, end_to_end) outright and instead answers
// them in degraded mode — a reduced trial count, or a stale-but-flagged memo entry —
// through a small dedicated admission lane. Every degraded answer carries
// `"degraded": true`; normal answers are byte-identical to a build without brownout.
struct BrownoutOptions {
  bool enabled = true;
  // Breaker window: admit/shed tallies are halved once their sum reaches `window`, a
  // cheap exponential-decay approximation of a sliding window.
  int window = 64;
  // Sheds within the window that trip the breaker open.
  int trip_sheds = 8;
  // Consecutive normal admits that close an open breaker again.
  int recover_admits = 32;
  // Extra in-flight slots (on top of max_inflight) reserved for degraded answers while
  // the breaker is open.
  int degraded_lane = 4;
  // Trial cap applied to degraded montecarlo / end_to_end runs.
  uint64_t degraded_trials = 1u << 14;
};

struct ServerOptions {
  size_t cache_bytes = 64u << 20;     // Memoization budget (split across cache shards).
  int cache_shards = kDefaultCacheShards;  // Memo-cache shard count (>= 1).
  int max_inflight = 64;              // Admission limit; above it requests are shed.
  uint32_t max_frame_bytes = 4u << 20;  // Per-connection frame limit (transports).
  double default_deadline_ms = 0.0;   // Applied when a request carries none; <= 0 = none.
  BrownoutOptions brownout;           // Overload degradation (see above).
};

// Default per-connection pipelining cap, shared by the TCP transport and the loopback
// batch path so both enforce identical semantics: at most this many requests of one
// connection may be in flight at once; beyond it the connection's reads pause (TCP) or its
// submissions block (loopback) until responses complete.
inline constexpr int kDefaultMaxInflightPerConn = 32;

class QueryServer {
 public:
  // `metrics` may be nullptr (all instrumentation disabled); otherwise it must outlive
  // the server. Instruments are internally thread-safe, so request threads record into
  // them without extra locking, and the transport layer may share the same registry.
  explicit QueryServer(ServerOptions options, MetricsRegistry* metrics = nullptr);

  // Implies Drain().
  ~QueryServer();

  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  // Processes one request payload; `done` receives the serialized response envelope
  // exactly once, possibly on another thread, possibly before Submit returns (parse
  // errors, shed requests, cache hits, and pings all answer inline).
  void Submit(std::string payload, std::function<void(std::string response)> done);

  // Synchronous convenience wrapper around Submit (loopback transport, tests).
  std::string Handle(std::string payload);

  // Stops admitting work (new requests answer UNAVAILABLE) and blocks until every
  // in-flight request has answered. Idempotent.
  void Drain();

  bool draining() const;
  int inflight() const;
  const ServerOptions& options() const { return options_; }
  QueryCache& cache() { return cache_; }

 private:
  struct DeadlineEntry {
    std::chrono::steady_clock::time_point when;
    std::shared_ptr<CancelToken> token;
  };

  // Arms the watchdog to fire `token` at `when`.
  void ArmDeadline(std::chrono::steady_clock::time_point when,
                   std::shared_ptr<CancelToken> token);
  void WatchdogLoop();

  // Runs the already-parsed request (cache + engine) and builds the response payload.
  // `key` is the canonical key computed in Submit (where the warm-hit probe needed it) and
  // `canonicalize_ms` its span; `deadline_ms` is the effective deadline (request or server
  // default), `started` the Submit entry time (total-latency anchor), `parse_ms` the
  // envelope-parse span measured in Submit — these feed the trace echo and the
  // cancellation-latency histogram.
  std::string RunRequest(const RequestEnvelope& envelope, const std::string& key,
                         double canonicalize_ms,
                         const std::shared_ptr<CancelToken>& token, bool deadline_armed,
                         double deadline_ms, std::chrono::steady_clock::time_point started,
                         double parse_ms);

  // The `stats` verb: a consistent snapshot of the live registry plus exec-pool telemetry,
  // rendered via obs::MetricsToJsonValue. `reset` zeroes counters/histograms afterwards.
  Json StatsResult(bool reset);

  // The `health` verb: ready/degraded/draining plus the breaker internals.
  Json HealthResult();

  void RecordLatencyMs(double elapsed_ms, RequestKind kind);
  void FinishOne(bool degraded = false);

  // Breaker bookkeeping; all require state_mutex_ held.
  void RecordAdmitLocked() PROBCON_REQUIRES(state_mutex_);
  // Records a would-shed event (trips the breaker when warranted) and returns true when
  // the request may enter the degraded lane instead of being shed.
  bool BrownoutShedLocked(RequestKind kind) PROBCON_REQUIRES(state_mutex_);
  void SetHealthGaugeLocked() PROBCON_REQUIRES(state_mutex_);

  const ServerOptions options_;
  MetricsRegistry* const metrics_;
  QueryCache cache_;

  // Lock order (see DESIGN.md decision 12): state_mutex_ is acquired first when ordered
  // with memo_mutex_ or watchdog_mutex_; in practice Submit holds them one at a time, and
  // the ACQUIRED_AFTER declarations below make the intended order checkable.
  mutable std::mutex state_mutex_;
  std::condition_variable drained_cv_;
  bool draining_ PROBCON_GUARDED_BY(state_mutex_) = false;
  int inflight_ PROBCON_GUARDED_BY(state_mutex_) = 0;

  // Brownout breaker state (state_mutex_). The tallies decay by halving (see
  // BrownoutOptions::window), so the breaker reacts to recent pressure, not history.
  bool breaker_open_ PROBCON_GUARDED_BY(state_mutex_) = false;
  int window_admits_ PROBCON_GUARDED_BY(state_mutex_) = 0;
  int window_sheds_ PROBCON_GUARDED_BY(state_mutex_) = 0;
  int recover_streak_ PROBCON_GUARDED_BY(state_mutex_) = 0;
  int degraded_inflight_ PROBCON_GUARDED_BY(state_mutex_) = 0;
  uint64_t breaker_trips_ PROBCON_GUARDED_BY(state_mutex_) = 0;

  // Request-text memo: wire payload with the id digits excised -> canonical cache key, so
  // a repeat request (any id) skips JSON parsing and canonicalization — most of the
  // per-request CPU on a warm server. The excised text preserves every other byte, so two
  // payloads share an entry iff they differ only in the envelope id; entries are created
  // only for successfully parsed, non-trace engine requests. Bounded (cleared wholesale
  // when full): a front cache, never a source of truth. Lookups never iterate the map, so
  // the unordered container stays within the determinism lint's rules.
  struct TextMemoEntry {
    std::string cache_key;
    RequestKind kind = RequestKind::kPing;
  };
  std::mutex memo_mutex_ PROBCON_ACQUIRED_AFTER(state_mutex_);
  std::unordered_map<std::string, TextMemoEntry> request_memo_ PROBCON_GUARDED_BY(memo_mutex_);

  // Pre-created instruments (nullptr when metrics are disabled). All of them are
  // internally thread-safe; no server lock is held while recording.
  Counter* requests_counter_ = nullptr;
  Counter* text_memo_hits_ = nullptr;
  Counter* text_memo_misses_ = nullptr;
  Counter* shed_counter_ = nullptr;
  Counter* error_counter_ = nullptr;
  Counter* deadline_counter_ = nullptr;
  Counter* degraded_counter_ = nullptr;        // serve.degraded: every degraded answer.
  Counter* degraded_stale_counter_ = nullptr;  // serve.degraded.stale: memo-served subset.
  Counter* brownout_trips_counter_ = nullptr;  // serve.brownout.trips
  Gauge* health_gauge_ = nullptr;              // serve.health: 0 ready, 1 degraded, 2 draining.
  Gauge* degraded_inflight_gauge_ = nullptr;   // serve.degraded_inflight
  Histogram* latency_histogram_ = nullptr;
  Histogram* kind_latency_[kRequestKindCount] = {};
  Histogram* parse_ms_ = nullptr;
  Histogram* canonicalize_ms_ = nullptr;
  Histogram* cache_ms_ = nullptr;
  Histogram* engine_ms_ = nullptr;
  Histogram* serialize_ms_ = nullptr;
  Histogram* cancel_latency_ms_ = nullptr;
  Gauge* inflight_gauge_ = nullptr;
  // Engine progress counters, wired into the analyzers' poll-stride flushes.
  EngineProgress progress_;

  std::mutex watchdog_mutex_ PROBCON_ACQUIRED_AFTER(state_mutex_);
  std::condition_variable watchdog_cv_;
  // Min-heap by `when`.
  std::vector<DeadlineEntry> deadlines_ PROBCON_GUARDED_BY(watchdog_mutex_);
  bool watchdog_shutdown_ PROBCON_GUARDED_BY(watchdog_mutex_) = false;
  std::thread watchdog_;
};

}  // namespace probcon::serve

#endif  // PROBCON_SRC_SERVE_SERVER_H_
