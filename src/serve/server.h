// The query server: admission control, memoization, deadlines, and graceful drain around
// the execution engine. Transport-agnostic — the TCP listener (transport.h), the loopback
// channel (client.h), and the tests all speak to the same QueryServer.
//
// Request lifecycle:
//
//   Submit(payload)
//     -> parse + validate envelope          (errors answer inline: INVALID_ARGUMENT)
//     -> drain check                        (UNAVAILABLE while draining)
//     -> admission control                  (RESOURCE_EXHAUSTED above max_inflight —
//                                            load shedding is a fast reject, never a queue)
//     -> cache.GetOrCompute(canonical key)  (hit: answer without touching the engines;
//                                            concurrent identical misses single-flight)
//     -> ExecuteRequest on the exec pool, with a CancelToken the deadline watchdog fires
//
// Deadlines are cooperative: the watchdog thread cancels the request's token when its
// deadline passes, the engine's inner loops poll the token every kCancellationPollStride
// iterations and bail, and the reply is DEADLINE_EXCEEDED. A wedged reply is impossible as
// long as engines honor the token — which tests/analysis/cancellation_test.cc locks in.
//
// This layer is where wall-clock time enters the system (deadline arming, latency
// metrics). Everything below it — engines, cache keys, results — stays clock-free, which
// is what keeps served answers byte-identical to offline tool output.

#ifndef PROBCON_SRC_SERVE_SERVER_H_
#define PROBCON_SRC_SERVE_SERVER_H_

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/common/cancellation.h"
#include "src/obs/metrics.h"
#include "src/serve/cache.h"
#include "src/serve/spec.h"

namespace probcon::serve {

struct ServerOptions {
  size_t cache_bytes = 64u << 20;     // Memoization budget.
  int max_inflight = 64;              // Admission limit; above it requests are shed.
  uint32_t max_frame_bytes = 4u << 20;  // Per-connection frame limit (transports).
  double default_deadline_ms = 0.0;   // Applied when a request carries none; <= 0 = none.
};

class QueryServer {
 public:
  // `metrics` may be nullptr; otherwise it must outlive the server and is updated only
  // from inside the server's own synchronization (the registry itself is not thread-safe).
  explicit QueryServer(ServerOptions options, MetricsRegistry* metrics = nullptr);

  // Implies Drain().
  ~QueryServer();

  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  // Processes one request payload; `done` receives the serialized response envelope
  // exactly once, possibly on another thread, possibly before Submit returns (parse
  // errors, shed requests, cache hits, and pings all answer inline).
  void Submit(std::string payload, std::function<void(std::string response)> done);

  // Synchronous convenience wrapper around Submit (loopback transport, tests).
  std::string Handle(std::string payload);

  // Stops admitting work (new requests answer UNAVAILABLE) and blocks until every
  // in-flight request has answered. Idempotent.
  void Drain();

  bool draining() const;
  int inflight() const;
  const ServerOptions& options() const { return options_; }
  QueryCache& cache() { return cache_; }

 private:
  struct DeadlineEntry {
    std::chrono::steady_clock::time_point when;
    std::shared_ptr<CancelToken> token;
  };

  // Arms the watchdog to fire `token` at `when`.
  void ArmDeadline(std::chrono::steady_clock::time_point when,
                   std::shared_ptr<CancelToken> token);
  void WatchdogLoop();

  // Runs the already-parsed request (cache + engine) and builds the response payload.
  std::string RunRequest(const RequestEnvelope& envelope,
                         const std::shared_ptr<CancelToken>& token, bool deadline_armed);

  void RecordLatencyMs(double elapsed_ms);
  void FinishOne();

  const ServerOptions options_;
  MetricsRegistry* const metrics_;
  QueryCache cache_;

  mutable std::mutex state_mutex_;
  std::condition_variable drained_cv_;
  bool draining_ = false;
  int inflight_ = 0;

  // Pre-created instruments, updated under state_mutex_ (nullptr when disabled).
  Counter* requests_counter_ = nullptr;
  Counter* shed_counter_ = nullptr;
  Counter* error_counter_ = nullptr;
  Counter* deadline_counter_ = nullptr;
  Histogram* latency_histogram_ = nullptr;

  std::mutex watchdog_mutex_;
  std::condition_variable watchdog_cv_;
  std::vector<DeadlineEntry> deadlines_;  // Min-heap by `when`.
  bool watchdog_shutdown_ = false;
  std::thread watchdog_;
};

}  // namespace probcon::serve

#endif  // PROBCON_SRC_SERVE_SERVER_H_
