#include "src/serve/client.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstring>
#include <limits>
#include <map>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>

#include "src/exec/thread_pool.h"
#include "src/obs/metrics.h"
#include "src/serve/framing.h"
#include "src/serve/server.h"

namespace probcon::serve {

Result<std::vector<std::string>> Channel::RoundTripBatch(
    const std::vector<std::string>& payloads) {
  std::vector<std::string> responses;
  responses.reserve(payloads.size());
  for (const std::string& payload : payloads) {
    Result<std::string> response = RoundTrip(payload);
    if (!response.ok()) {
      return response.status();
    }
    responses.push_back(*std::move(response));
  }
  return responses;
}

Result<std::string> LoopbackChannel::RoundTrip(const std::string& payload) {
  return server_.Handle(payload);
}

Result<std::vector<std::string>> LoopbackChannel::RoundTripBatch(
    const std::vector<std::string>& payloads) {
  struct BatchState {
    std::mutex mutex;
    std::condition_variable cv;
    std::vector<std::string> responses;
    size_t completed = 0;
    int inflight = 0;
  };
  BatchState state;
  state.responses.resize(payloads.size());

  // Wait for `ready` while helping the exec pool: with a small (or inline) pool the
  // batch's own engine work may be queued behind this thread, so block only when there
  // is genuinely nothing to run.
  auto wait_for = [&state](auto ready) {
    while (true) {
      {
        std::unique_lock<std::mutex> lock(state.mutex);
        if (ready()) return;
      }
      if (!ThreadPool::Global().TryRunOneTask()) {
        std::unique_lock<std::mutex> lock(state.mutex);
        if (ready()) return;
        state.cv.wait_for(lock, std::chrono::milliseconds(1));
      }
    }
  };

  for (size_t i = 0; i < payloads.size(); ++i) {
    // Same pipelining cap as one TCP connection: at most kDefaultMaxInflightPerConn of
    // this batch in flight at once.
    wait_for([&state] { return state.inflight < kDefaultMaxInflightPerConn; });
    {
      std::lock_guard<std::mutex> lock(state.mutex);
      ++state.inflight;
    }
    server_.Submit(payloads[i], [&state, i](std::string response) {
      std::lock_guard<std::mutex> lock(state.mutex);
      state.responses[i] = std::move(response);
      ++state.completed;
      --state.inflight;
      state.cv.notify_all();
    });
  }
  wait_for([&state, &payloads] { return state.completed == payloads.size(); });
  return std::move(state.responses);
}

TcpChannel::~TcpChannel() {
  if (fd_ >= 0) {
    ::close(fd_);
  }
}

Result<std::unique_ptr<TcpChannel>> TcpChannel::Connect(uint16_t port, double timeout_ms) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return UnavailableError("socket(): " + std::string(std::strerror(errno)));
  }
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  address.sin_port = htons(port);
  if (timeout_ms > 0.0) {
    // Nonblocking connect bounded by poll(); the fd stays nonblocking so the exchange
    // paths can enforce the whole-exchange deadline with poll() as well.
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
      const std::string error = std::strerror(errno);
      ::close(fd);
      return UnavailableError("fcntl(O_NONBLOCK): " + error);
    }
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&address), sizeof(address)) < 0) {
      if (errno != EINPROGRESS) {
        const std::string error = std::strerror(errno);
        ::close(fd);
        return UnavailableError("connect(127.0.0.1:" + std::to_string(port) + "): " + error);
      }
      pollfd pfd{};
      pfd.fd = fd;
      pfd.events = POLLOUT;
      const int wait_ms = static_cast<int>(std::ceil(timeout_ms));
      const int ready = ::poll(&pfd, 1, wait_ms > 0 ? wait_ms : 1);
      if (ready <= 0) {
        ::close(fd);
        return UnavailableError("connect(127.0.0.1:" + std::to_string(port) +
                                "): timed out after " + std::to_string(wait_ms) + "ms");
      }
      int so_error = 0;
      socklen_t len = sizeof(so_error);
      if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &len) < 0 || so_error != 0) {
        const std::string error = std::strerror(so_error != 0 ? so_error : errno);
        ::close(fd);
        return UnavailableError("connect(127.0.0.1:" + std::to_string(port) + "): " + error);
      }
    }
  } else if (::connect(fd, reinterpret_cast<const sockaddr*>(&address), sizeof(address)) < 0) {
    const std::string error = std::strerror(errno);
    ::close(fd);
    return UnavailableError("connect(127.0.0.1:" + std::to_string(port) + "): " + error);
  }
  // NOLINTNEXTLINE(probcon-ownership): private constructor; make_unique cannot reach it.
  return std::unique_ptr<TcpChannel>(new TcpChannel(fd, timeout_ms));
}

void TcpChannel::Abort() { ::shutdown(fd_, SHUT_RDWR); }

Result<std::string> TcpChannel::RoundTrip(const std::string& payload) {
  if (timeout_ms_ > 0.0) {
    // The fd is nonblocking; reuse the poll-driven batch path so the whole-exchange
    // deadline applies.
    Result<std::vector<std::string>> responses = RoundTripBatch({payload});
    if (!responses.ok()) {
      return responses.status();
    }
    return std::move((*responses)[0]);
  }
  const std::string frame = EncodeFrame(payload);
  size_t sent = 0;
  while (sent < frame.size()) {
    const ssize_t n = ::send(fd_, frame.data() + sent, frame.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      return UnavailableError("send(): " + std::string(std::strerror(errno)));
    }
    sent += static_cast<size_t>(n);
  }
  FrameDecoder decoder;
  char buffer[16 * 1024];
  while (true) {
    Result<std::optional<std::string>> next = decoder.Next();
    if (!next.ok()) {
      return next.status();
    }
    if (next->has_value()) {
      return **next;
    }
    const ssize_t received = ::recv(fd_, buffer, sizeof(buffer), 0);
    if (received < 0) {
      return UnavailableError("recv(): " + std::string(std::strerror(errno)));
    }
    if (received == 0) {
      Status eof = decoder.AtEof();
      if (!eof.ok()) {
        return eof;
      }
      return UnavailableError("connection closed before the response arrived");
    }
    decoder.Feed(std::string_view(buffer, static_cast<size_t>(received)));
  }
}

Result<std::vector<std::string>> TcpChannel::RoundTripBatch(
    const std::vector<std::string>& payloads) {
  std::vector<std::string> responses;
  responses.reserve(payloads.size());
  FrameDecoder decoder;
  char buffer[64 * 1024];
  std::string wire;        // Encoded frames queued for the socket.
  size_t wire_offset = 0;  // Prefix of `wire` already sent.
  size_t next_frame = 0;   // Next payload to encode into `wire`.

  using Clock = std::chrono::steady_clock;
  const bool bounded = timeout_ms_ > 0.0;
  const Clock::time_point deadline =
      Clock::now() + std::chrono::microseconds(
                         bounded ? static_cast<int64_t>(timeout_ms_ * 1000.0) : 0);

  while (responses.size() < payloads.size()) {
    // Drain whatever the decoder already buffered before touching the socket.
    while (responses.size() < payloads.size()) {
      Result<std::optional<std::string>> next = decoder.Next();
      if (!next.ok()) {
        return next.status();
      }
      if (!next->has_value()) break;
      responses.push_back(*std::move(*next));
    }
    if (responses.size() == payloads.size()) break;

    // Encode more requests while under the pipelining window — the same cap the server
    // enforces per connection, so the batch never provokes server-side read pauses.
    while (next_frame < payloads.size() &&
           next_frame - responses.size() <
               static_cast<size_t>(kDefaultMaxInflightPerConn)) {
      wire += EncodeFrame(payloads[next_frame]);
      ++next_frame;
    }
    if (wire_offset == wire.size()) {
      wire.clear();
      wire_offset = 0;
    }

    // Interleave sending with reading: a blocking send here could deadlock with a server
    // whose responses we are not draining (both kernel buffers full, both sides writing).
    pollfd pfd{};
    pfd.fd = fd_;
    pfd.events = POLLIN;
    if (wire_offset < wire.size()) {
      pfd.events |= POLLOUT;
    }
    int wait_ms = -1;
    if (bounded) {
      // Whole-exchange bound: a peer dripping one byte per read resets any per-read
      // timeout forever, so the deadline is absolute for the exchange.
      const auto remaining = deadline - Clock::now();
      if (remaining <= Clock::duration::zero()) {
        return UnavailableError(
            "exchange timed out after " + std::to_string(timeout_ms_) + "ms (" +
            std::to_string(responses.size()) + " of " + std::to_string(payloads.size()) +
            " responses received)");
      }
      const auto remaining_ms =
          std::chrono::duration_cast<std::chrono::milliseconds>(remaining).count();
      wait_ms = static_cast<int>(remaining_ms) + 1;
    }
    const int ready = ::poll(&pfd, 1, wait_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return UnavailableError("poll(): " + std::string(std::strerror(errno)));
    }
    if (ready == 0) {
      continue;  // Timer expired; the top of the loop reports the timeout.
    }
    if ((pfd.revents & POLLOUT) != 0 && wire_offset < wire.size()) {
      const ssize_t n = ::send(fd_, wire.data() + wire_offset, wire.size() - wire_offset,
                               MSG_NOSIGNAL | MSG_DONTWAIT);
      if (n > 0) {
        wire_offset += static_cast<size_t>(n);
      } else if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR) {
        return UnavailableError("send(): " + std::string(std::strerror(errno)));
      }
    }
    if ((pfd.revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
      const ssize_t received = ::recv(fd_, buffer, sizeof(buffer), MSG_DONTWAIT);
      if (received > 0) {
        decoder.Feed(std::string_view(buffer, static_cast<size_t>(received)));
      } else if (received == 0) {
        Status eof = decoder.AtEof();
        if (!eof.ok()) {
          return eof;
        }
        return UnavailableError("connection closed mid-batch (" +
                                std::to_string(responses.size()) + " of " +
                                std::to_string(payloads.size()) + " responses received)");
      } else if (errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR) {
        return UnavailableError("recv(): " + std::string(std::strerror(errno)));
      }
    }
  }
  return responses;
}

Result<ResponseEnvelope> ServeClient::Query(std::string_view kind, const Json& params,
                                            double deadline_ms, bool trace) {
  const uint64_t id = next_id_++;
  const std::string payload = RequestEnvelope::Serialize(id, kind, params, deadline_ms, trace);
  Result<std::string> response = channel_->RoundTrip(payload);
  if (!response.ok()) {
    return response.status();
  }
  Result<ResponseEnvelope> envelope = ResponseEnvelope::Parse(*response);
  if (envelope.ok() && envelope->id != id) {
    return UnavailableError("response id " + std::to_string(envelope->id) +
                            " does not match request id " + std::to_string(id) +
                            " (corrupt stream)");
  }
  return envelope;
}

Result<std::vector<ResponseEnvelope>> ServeClient::QueryBatch(
    const std::vector<BatchItem>& items) {
  std::vector<std::string> payloads;
  payloads.reserve(items.size());
  std::map<uint64_t, size_t> slot_by_id;
  for (size_t i = 0; i < items.size(); ++i) {
    const uint64_t id = next_id_++;
    slot_by_id[id] = i;
    payloads.push_back(RequestEnvelope::Serialize(id, items[i].kind, items[i].params,
                                                  items[i].deadline_ms, items[i].trace));
  }
  Result<std::vector<std::string>> raw = channel_->RoundTripBatch(payloads);
  if (!raw.ok()) {
    return raw.status();
  }
  if (raw->size() != items.size()) {
    // A count mismatch means the stream lost or invented frames — wire corruption, not a
    // server verdict; UNAVAILABLE tells callers the connection is unusable.
    return UnavailableError("batch returned " + std::to_string(raw->size()) +
                            " responses for " + std::to_string(items.size()) + " requests");
  }
  // Responses arrive in completion order; the envelope id routes each one back to its
  // request slot.
  std::vector<ResponseEnvelope> ordered(items.size());
  std::vector<bool> filled(items.size(), false);
  for (const std::string& text : *raw) {
    Result<ResponseEnvelope> envelope = ResponseEnvelope::Parse(text);
    if (!envelope.ok()) {
      return envelope.status();
    }
    const auto slot = slot_by_id.find(envelope->id);
    if (slot == slot_by_id.end() || filled[slot->second]) {
      return UnavailableError("response id " + std::to_string(envelope->id) +
                              " matches no outstanding request in the batch");
    }
    filled[slot->second] = true;
    ordered[slot->second] = *std::move(envelope);
  }
  return ordered;
}

// ---------------------------------------------------------------------------
// Resilience layer.

double DecorrelatedJitterBackoffMs(Rng& rng, double base_ms, double cap_ms, double prev_ms) {
  const double low = base_ms;
  const double high = std::max(low, 3.0 * (prev_ms > 0.0 ? prev_ms : base_ms));
  const double value = low + (high - low) * rng.NextDouble();
  return std::min(cap_ms, value);
}

namespace {

// Envelope statuses the server means as "try again": everything else is a verdict.
bool RetryableStatus(StatusCode code) {
  return code == StatusCode::kUnavailable || code == StatusCode::kResourceExhausted;
}

double RemainingMs(std::chrono::steady_clock::time_point start, double deadline_ms) {
  if (deadline_ms <= 0.0) {
    return std::numeric_limits<double>::infinity();
  }
  const double elapsed =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
          .count();
  return deadline_ms - elapsed;
}

}  // namespace

ResilientClient::ResilientClient(ChannelFactory factory, RetryOptions options,
                                 MetricsRegistry* metrics)
    : factory_(std::move(factory)),
      options_(options),
      metrics_(metrics),
      jitter_rng_(DeriveStreamSeed(options.seed, 0xB0FFull)) {}

ResilientClient::ChannelFactory ResilientClient::TcpFactory(uint16_t port,
                                                            double attempt_timeout_ms) {
  return [port, attempt_timeout_ms]() -> Result<std::unique_ptr<Channel>> {
    Result<std::unique_ptr<TcpChannel>> channel = TcpChannel::Connect(port, attempt_timeout_ms);
    if (!channel.ok()) {
      return channel.status();
    }
    return std::unique_ptr<Channel>(std::move(*channel));
  };
}

Status ResilientClient::EnsureChannel() {
  if (channel_ != nullptr) {
    return Status::Ok();
  }
  Result<std::unique_ptr<Channel>> channel = factory_();
  if (!channel.ok()) {
    return channel.status();
  }
  channel_ = std::move(*channel);
  if (ever_connected_ && metrics_ != nullptr) {
    metrics_->GetCounter("serve.client.reconnects").Increment();
  }
  ever_connected_ = true;
  return Status::Ok();
}

bool ResilientClient::BackoffBeforeRetry(double remaining_ms) {
  if (retries_ >= options_.retry_budget) {
    return false;
  }
  if (remaining_ms <= 0.0) {
    return false;
  }
  double sleep_ms = DecorrelatedJitterBackoffMs(jitter_rng_, options_.initial_backoff_ms,
                                                options_.max_backoff_ms, prev_backoff_ms_);
  prev_backoff_ms_ = sleep_ms;
  if (std::isfinite(remaining_ms)) {
    // Leave at least a millisecond of deadline for the attempt itself.
    sleep_ms = std::min(sleep_ms, std::max(0.0, remaining_ms - 1.0));
  }
  if (sleep_ms > 0.0) {
    std::this_thread::sleep_for(
        std::chrono::microseconds(static_cast<int64_t>(sleep_ms * 1000.0)));
  }
  ++retries_;
  if (metrics_ != nullptr) {
    metrics_->GetCounter("serve.client.retries").Increment();
  }
  return true;
}

Result<ResponseEnvelope> ResilientClient::Query(std::string_view kind, const Json& params,
                                                double deadline_ms, bool trace) {
  const auto start = std::chrono::steady_clock::now();
  const bool bounded = deadline_ms > 0.0;
  Status last = UnavailableError("no attempt was made");
  for (int attempt = 0; attempt < options_.max_attempts; ++attempt) {
    if (attempt > 0 && !BackoffBeforeRetry(RemainingMs(start, deadline_ms))) {
      break;
    }
    const double remaining = RemainingMs(start, deadline_ms);
    if (remaining <= 0.0) {
      break;
    }
    Status ready = EnsureChannel();
    if (!ready.ok()) {
      last = ready;
      continue;
    }
    const uint64_t id = next_id_++;
    const std::string payload =
        RequestEnvelope::Serialize(id, kind, params, bounded ? remaining : 0.0, trace);
    Result<std::string> raw = channel_->RoundTrip(payload);
    if (!raw.ok()) {
      last = raw.status();
      channel_.reset();  // The stream state is unknown; retries dial fresh.
      continue;
    }
    Result<ResponseEnvelope> envelope = ResponseEnvelope::Parse(*raw);
    if (!envelope.ok()) {
      last = envelope.status();
      channel_.reset();
      continue;
    }
    if (envelope->id != id) {
      last = UnavailableError("response id " + std::to_string(envelope->id) +
                              " does not match request id " + std::to_string(id) +
                              " (corrupt stream)");
      channel_.reset();
      continue;
    }
    if (!envelope->status.ok() && RetryableStatus(envelope->status.code()) &&
        attempt + 1 < options_.max_attempts) {
      // Definite server answer asking for a retry; the connection itself is healthy.
      last = envelope->status;
      continue;
    }
    return envelope;
  }
  if (bounded && RemainingMs(start, deadline_ms) <= 0.0) {
    return DeadlineExceededError("call deadline of " + std::to_string(deadline_ms) +
                                 "ms expired during retries; last error: " + last.message());
  }
  return last;
}

Result<std::vector<std::string>> ResilientClient::ExchangeBatch(
    const std::vector<std::string>& payloads) {
  if (options_.hedge_delay_ms <= 0.0) {
    return channel_->RoundTripBatch(payloads);
  }
  struct HedgeState {
    std::mutex mutex;
    std::condition_variable cv;
    bool primary_done = false;
    bool hedge_started = false;
    bool hedge_done = false;
    std::unique_ptr<Channel> hedge_channel;
    Result<std::vector<std::string>> hedge_result = UnavailableError("hedge not run");
  };
  HedgeState state;
  std::thread hedger([this, &state, &payloads] {
    {
      std::unique_lock<std::mutex> lock(state.mutex);
      state.cv.wait_for(
          lock,
          std::chrono::microseconds(static_cast<int64_t>(options_.hedge_delay_ms * 1000.0)),
          [&state] { return state.primary_done; });
      if (state.primary_done) {
        return;
      }
    }
    Result<std::unique_ptr<Channel>> channel = factory_();
    Channel* hedge = nullptr;
    {
      std::lock_guard<std::mutex> lock(state.mutex);
      if (!channel.ok() || state.primary_done) {
        return;
      }
      state.hedge_channel = std::move(*channel);
      state.hedge_started = true;
      hedge = state.hedge_channel.get();
      ++hedges_;
    }
    if (metrics_ != nullptr) {
      metrics_->GetCounter("serve.client.hedges").Increment();
    }
    Result<std::vector<std::string>> result = hedge->RoundTripBatch(payloads);
    {
      std::lock_guard<std::mutex> lock(state.mutex);
      state.hedge_result = std::move(result);
      state.hedge_done = true;
    }
    state.cv.notify_all();
  });
  Result<std::vector<std::string>> primary = channel_->RoundTripBatch(payloads);
  {
    std::lock_guard<std::mutex> lock(state.mutex);
    state.primary_done = true;  // A hedge that has not launched yet now never will.
    if (primary.ok() && state.hedge_started && !state.hedge_done) {
      state.hedge_channel->Abort();  // Unblock the losing exchange promptly.
    }
  }
  state.cv.notify_all();
  hedger.join();
  if (primary.ok()) {
    return primary;
  }
  if (state.hedge_started && state.hedge_result.ok()) {
    // The hedge connection carried the batch; adopt it for future attempts.
    channel_ = std::move(state.hedge_channel);
    return std::move(state.hedge_result);
  }
  return primary;
}

Result<std::vector<ResponseEnvelope>> ResilientClient::QueryBatch(
    const std::vector<ServeClient::BatchItem>& items) {
  const auto start = std::chrono::steady_clock::now();
  // The retry loop is bounded by the longest per-item deadline; one unbounded item makes
  // the loop unbounded (max_attempts and the budget still apply).
  bool bounded = true;
  double call_deadline_ms = 0.0;
  for (const ServeClient::BatchItem& item : items) {
    if (item.deadline_ms <= 0.0) {
      bounded = false;
    } else {
      call_deadline_ms = std::max(call_deadline_ms, item.deadline_ms);
    }
  }
  if (!bounded) {
    call_deadline_ms = 0.0;
  }

  std::vector<std::optional<ResponseEnvelope>> resolved(items.size());
  std::vector<size_t> pending(items.size());
  for (size_t i = 0; i < items.size(); ++i) {
    pending[i] = i;
  }
  Status last = UnavailableError("no attempt was made");
  for (int attempt = 0; attempt < options_.max_attempts && !pending.empty(); ++attempt) {
    if (attempt > 0 && !BackoffBeforeRetry(RemainingMs(start, call_deadline_ms))) {
      break;
    }
    const double remaining = RemainingMs(start, call_deadline_ms);
    if (remaining <= 0.0) {
      break;
    }
    Status ready = EnsureChannel();
    if (!ready.ok()) {
      last = ready;
      continue;
    }
    // Re-send only the unresolved items, with fresh ids and their remaining deadlines.
    std::map<uint64_t, size_t> slot_by_id;
    std::vector<std::string> payloads;
    payloads.reserve(pending.size());
    for (size_t slot : pending) {
      const ServeClient::BatchItem& item = items[slot];
      double item_deadline = item.deadline_ms;
      if (item_deadline > 0.0) {
        item_deadline = std::max(1.0, RemainingMs(start, item_deadline));
      }
      const uint64_t id = next_id_++;
      slot_by_id[id] = slot;
      payloads.push_back(
          RequestEnvelope::Serialize(id, item.kind, item.params, item_deadline, item.trace));
    }
    Result<std::vector<std::string>> raw = ExchangeBatch(payloads);
    if (!raw.ok()) {
      last = raw.status();
      channel_.reset();
      continue;
    }
    bool corrupt = false;
    for (const std::string& text : *raw) {
      Result<ResponseEnvelope> envelope = ResponseEnvelope::Parse(text);
      if (!envelope.ok()) {
        last = envelope.status();
        corrupt = true;
        break;
      }
      const auto slot = slot_by_id.find(envelope->id);
      if (slot == slot_by_id.end() || resolved[slot->second].has_value()) {
        last = UnavailableError("response id " + std::to_string(envelope->id) +
                                " matches no outstanding request in the batch");
        corrupt = true;
        break;
      }
      if (!envelope->status.ok() && RetryableStatus(envelope->status.code())) {
        last = envelope->status;  // Leave the slot pending for the next attempt.
        continue;
      }
      resolved[slot->second] = *std::move(envelope);
    }
    if (corrupt) {
      channel_.reset();
    }
    std::vector<size_t> still;
    for (size_t slot : pending) {
      if (!resolved[slot].has_value()) {
        still.push_back(slot);
      }
    }
    pending = std::move(still);
  }

  std::vector<ResponseEnvelope> ordered(items.size());
  for (size_t i = 0; i < items.size(); ++i) {
    if (resolved[i].has_value()) {
      ordered[i] = *std::move(resolved[i]);
      continue;
    }
    // Exhausted the policy: the item still gets a definite envelope carrying the last
    // transport/retryable status (DEADLINE_EXCEEDED when the call deadline ran out).
    ResponseEnvelope envelope;
    envelope.id = 0;
    envelope.status =
        (bounded && RemainingMs(start, call_deadline_ms) <= 0.0)
            ? DeadlineExceededError("call deadline of " + std::to_string(call_deadline_ms) +
                                    "ms expired during retries; last error: " + last.message())
            : last;
    ordered[i] = std::move(envelope);
  }
  return ordered;
}

}  // namespace probcon::serve
