#include "src/serve/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <optional>
#include <utility>

#include "src/serve/framing.h"
#include "src/serve/server.h"

namespace probcon::serve {

Result<std::string> LoopbackChannel::RoundTrip(const std::string& payload) {
  return server_.Handle(payload);
}

TcpChannel::~TcpChannel() {
  if (fd_ >= 0) {
    ::close(fd_);
  }
}

Result<std::unique_ptr<TcpChannel>> TcpChannel::Connect(uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return UnavailableError("socket(): " + std::string(std::strerror(errno)));
  }
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  address.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&address), sizeof(address)) < 0) {
    const std::string error = std::strerror(errno);
    ::close(fd);
    return UnavailableError("connect(127.0.0.1:" + std::to_string(port) + "): " + error);
  }
  // NOLINTNEXTLINE(probcon-ownership): private constructor; make_unique cannot reach it.
  return std::unique_ptr<TcpChannel>(new TcpChannel(fd));
}

Result<std::string> TcpChannel::RoundTrip(const std::string& payload) {
  const std::string frame = EncodeFrame(payload);
  size_t sent = 0;
  while (sent < frame.size()) {
    const ssize_t n = ::send(fd_, frame.data() + sent, frame.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      return UnavailableError("send(): " + std::string(std::strerror(errno)));
    }
    sent += static_cast<size_t>(n);
  }
  FrameDecoder decoder;
  char buffer[16 * 1024];
  while (true) {
    Result<std::optional<std::string>> next = decoder.Next();
    if (!next.ok()) {
      return next.status();
    }
    if (next->has_value()) {
      return **next;
    }
    const ssize_t received = ::recv(fd_, buffer, sizeof(buffer), 0);
    if (received <= 0) {
      return UnavailableError("connection closed mid-response");
    }
    decoder.Feed(std::string_view(buffer, static_cast<size_t>(received)));
  }
}

Result<ResponseEnvelope> ServeClient::Query(std::string_view kind, const Json& params,
                                            double deadline_ms, bool trace) {
  const std::string payload =
      RequestEnvelope::Serialize(next_id_++, kind, params, deadline_ms, trace);
  Result<std::string> response = channel_->RoundTrip(payload);
  if (!response.ok()) {
    return response.status();
  }
  return ResponseEnvelope::Parse(*response);
}

}  // namespace probcon::serve
