#include "src/serve/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <map>
#include <mutex>
#include <optional>
#include <utility>

#include "src/exec/thread_pool.h"
#include "src/serve/framing.h"
#include "src/serve/server.h"

namespace probcon::serve {

Result<std::vector<std::string>> Channel::RoundTripBatch(
    const std::vector<std::string>& payloads) {
  std::vector<std::string> responses;
  responses.reserve(payloads.size());
  for (const std::string& payload : payloads) {
    Result<std::string> response = RoundTrip(payload);
    if (!response.ok()) {
      return response.status();
    }
    responses.push_back(*std::move(response));
  }
  return responses;
}

Result<std::string> LoopbackChannel::RoundTrip(const std::string& payload) {
  return server_.Handle(payload);
}

Result<std::vector<std::string>> LoopbackChannel::RoundTripBatch(
    const std::vector<std::string>& payloads) {
  struct BatchState {
    std::mutex mutex;
    std::condition_variable cv;
    std::vector<std::string> responses;
    size_t completed = 0;
    int inflight = 0;
  };
  BatchState state;
  state.responses.resize(payloads.size());

  // Wait for `ready` while helping the exec pool: with a small (or inline) pool the
  // batch's own engine work may be queued behind this thread, so block only when there
  // is genuinely nothing to run.
  auto wait_for = [&state](auto ready) {
    while (true) {
      {
        std::unique_lock<std::mutex> lock(state.mutex);
        if (ready()) return;
      }
      if (!ThreadPool::Global().TryRunOneTask()) {
        std::unique_lock<std::mutex> lock(state.mutex);
        if (ready()) return;
        state.cv.wait_for(lock, std::chrono::milliseconds(1));
      }
    }
  };

  for (size_t i = 0; i < payloads.size(); ++i) {
    // Same pipelining cap as one TCP connection: at most kDefaultMaxInflightPerConn of
    // this batch in flight at once.
    wait_for([&state] { return state.inflight < kDefaultMaxInflightPerConn; });
    {
      std::lock_guard<std::mutex> lock(state.mutex);
      ++state.inflight;
    }
    server_.Submit(payloads[i], [&state, i](std::string response) {
      std::lock_guard<std::mutex> lock(state.mutex);
      state.responses[i] = std::move(response);
      ++state.completed;
      --state.inflight;
      state.cv.notify_all();
    });
  }
  wait_for([&state, &payloads] { return state.completed == payloads.size(); });
  return std::move(state.responses);
}

TcpChannel::~TcpChannel() {
  if (fd_ >= 0) {
    ::close(fd_);
  }
}

Result<std::unique_ptr<TcpChannel>> TcpChannel::Connect(uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return UnavailableError("socket(): " + std::string(std::strerror(errno)));
  }
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  address.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&address), sizeof(address)) < 0) {
    const std::string error = std::strerror(errno);
    ::close(fd);
    return UnavailableError("connect(127.0.0.1:" + std::to_string(port) + "): " + error);
  }
  // NOLINTNEXTLINE(probcon-ownership): private constructor; make_unique cannot reach it.
  return std::unique_ptr<TcpChannel>(new TcpChannel(fd));
}

Result<std::string> TcpChannel::RoundTrip(const std::string& payload) {
  const std::string frame = EncodeFrame(payload);
  size_t sent = 0;
  while (sent < frame.size()) {
    const ssize_t n = ::send(fd_, frame.data() + sent, frame.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      return UnavailableError("send(): " + std::string(std::strerror(errno)));
    }
    sent += static_cast<size_t>(n);
  }
  FrameDecoder decoder;
  char buffer[16 * 1024];
  while (true) {
    Result<std::optional<std::string>> next = decoder.Next();
    if (!next.ok()) {
      return next.status();
    }
    if (next->has_value()) {
      return **next;
    }
    const ssize_t received = ::recv(fd_, buffer, sizeof(buffer), 0);
    if (received <= 0) {
      return UnavailableError("connection closed mid-response");
    }
    decoder.Feed(std::string_view(buffer, static_cast<size_t>(received)));
  }
}

Result<std::vector<std::string>> TcpChannel::RoundTripBatch(
    const std::vector<std::string>& payloads) {
  std::vector<std::string> responses;
  responses.reserve(payloads.size());
  FrameDecoder decoder;
  char buffer[64 * 1024];
  std::string wire;        // Encoded frames queued for the socket.
  size_t wire_offset = 0;  // Prefix of `wire` already sent.
  size_t next_frame = 0;   // Next payload to encode into `wire`.

  while (responses.size() < payloads.size()) {
    // Drain whatever the decoder already buffered before touching the socket.
    while (responses.size() < payloads.size()) {
      Result<std::optional<std::string>> next = decoder.Next();
      if (!next.ok()) {
        return next.status();
      }
      if (!next->has_value()) break;
      responses.push_back(*std::move(*next));
    }
    if (responses.size() == payloads.size()) break;

    // Encode more requests while under the pipelining window — the same cap the server
    // enforces per connection, so the batch never provokes server-side read pauses.
    while (next_frame < payloads.size() &&
           next_frame - responses.size() <
               static_cast<size_t>(kDefaultMaxInflightPerConn)) {
      wire += EncodeFrame(payloads[next_frame]);
      ++next_frame;
    }
    if (wire_offset == wire.size()) {
      wire.clear();
      wire_offset = 0;
    }

    // Interleave sending with reading: a blocking send here could deadlock with a server
    // whose responses we are not draining (both kernel buffers full, both sides writing).
    pollfd pfd{};
    pfd.fd = fd_;
    pfd.events = POLLIN;
    if (wire_offset < wire.size()) {
      pfd.events |= POLLOUT;
    }
    const int ready = ::poll(&pfd, 1, -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return UnavailableError("poll(): " + std::string(std::strerror(errno)));
    }
    if ((pfd.revents & POLLOUT) != 0 && wire_offset < wire.size()) {
      const ssize_t n = ::send(fd_, wire.data() + wire_offset, wire.size() - wire_offset,
                               MSG_NOSIGNAL | MSG_DONTWAIT);
      if (n > 0) {
        wire_offset += static_cast<size_t>(n);
      } else if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR) {
        return UnavailableError("send(): " + std::string(std::strerror(errno)));
      }
    }
    if ((pfd.revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
      const ssize_t received = ::recv(fd_, buffer, sizeof(buffer), MSG_DONTWAIT);
      if (received > 0) {
        decoder.Feed(std::string_view(buffer, static_cast<size_t>(received)));
      } else if (received == 0) {
        return UnavailableError("connection closed mid-batch (" +
                                std::to_string(responses.size()) + " of " +
                                std::to_string(payloads.size()) + " responses received)");
      } else if (errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR) {
        return UnavailableError("recv(): " + std::string(std::strerror(errno)));
      }
    }
  }
  return responses;
}

Result<ResponseEnvelope> ServeClient::Query(std::string_view kind, const Json& params,
                                            double deadline_ms, bool trace) {
  const std::string payload =
      RequestEnvelope::Serialize(next_id_++, kind, params, deadline_ms, trace);
  Result<std::string> response = channel_->RoundTrip(payload);
  if (!response.ok()) {
    return response.status();
  }
  return ResponseEnvelope::Parse(*response);
}

Result<std::vector<ResponseEnvelope>> ServeClient::QueryBatch(
    const std::vector<BatchItem>& items) {
  std::vector<std::string> payloads;
  payloads.reserve(items.size());
  std::map<uint64_t, size_t> slot_by_id;
  for (size_t i = 0; i < items.size(); ++i) {
    const uint64_t id = next_id_++;
    slot_by_id[id] = i;
    payloads.push_back(RequestEnvelope::Serialize(id, items[i].kind, items[i].params,
                                                  items[i].deadline_ms, items[i].trace));
  }
  Result<std::vector<std::string>> raw = channel_->RoundTripBatch(payloads);
  if (!raw.ok()) {
    return raw.status();
  }
  if (raw->size() != items.size()) {
    return InternalError("batch returned " + std::to_string(raw->size()) +
                         " responses for " + std::to_string(items.size()) + " requests");
  }
  // Responses arrive in completion order; the envelope id routes each one back to its
  // request slot.
  std::vector<ResponseEnvelope> ordered(items.size());
  std::vector<bool> filled(items.size(), false);
  for (const std::string& text : *raw) {
    Result<ResponseEnvelope> envelope = ResponseEnvelope::Parse(text);
    if (!envelope.ok()) {
      return envelope.status();
    }
    const auto slot = slot_by_id.find(envelope->id);
    if (slot == slot_by_id.end() || filled[slot->second]) {
      return InternalError("response id " + std::to_string(envelope->id) +
                           " matches no outstanding request in the batch");
    }
    filled[slot->second] = true;
    ordered[slot->second] = *std::move(envelope);
  }
  return ordered;
}

}  // namespace probcon::serve
