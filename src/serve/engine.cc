#include "src/serve/engine.h"

#include <algorithm>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "src/analysis/end_to_end.h"
#include "src/analysis/placement.h"
#include "src/analysis/reliability.h"
#include "src/analysis/round_analysis.h"
#include "src/common/rng.h"
#include "src/faultmodel/joint_model.h"
#include "src/faultmodel/round_schedule.h"
#include "src/lifecycle/fleet_model.h"
#include "src/lifecycle/repair_sweep.h"
#include "src/markov/ctmc.h"
#include "src/prob/interval.h"
#include "src/prob/probability.h"
#include "src/probnative/quorum_sizer.h"
#include "src/serve/spec.h"

namespace probcon::serve {
namespace {

// One table row as served: both the paper-formatted percent strings (byte-identical to the
// regression-locked tables) and the raw complements for programmatic clients.
Json ReportJson(const ReliabilityReport& report) {
  Json object = Json::Object();
  object.Set("safe", Json::String(FormatPercent(report.safe)));
  object.Set("live", Json::String(FormatPercent(report.live)));
  object.Set("safe_and_live", Json::String(FormatPercent(report.safe_and_live)));
  object.Set("unsafe_probability", Json::Number(report.safe.complement()));
  object.Set("not_live_probability", Json::Number(report.live.complement()));
  return object;
}

Result<Json> RunTable1(const ServeRequest& request, const CancelToken* cancel,
                       const EngineProgress& progress) {
  const ReliabilityAnalyzer analyzer =
      ReliabilityAnalyzer::ForIndependentNodes(request.fault.probabilities);
  const PbftConfig config = PbftConfig::Standard(request.fault.n());
  ReliabilityReport report;
  Result<Probability> safe = analyzer.TryEventProbability(MakePbftSafePredicate(config),
                                                          AnalysisMethod::kAuto, cancel,
                                                          progress.enum_configs);
  if (!safe.ok()) return safe.status();
  Result<Probability> live = analyzer.TryEventProbability(MakePbftLivePredicate(config),
                                                          AnalysisMethod::kAuto, cancel,
                                                          progress.enum_configs);
  if (!live.ok()) return live.status();
  Result<Probability> both = analyzer.TryEventProbability(
      MakePbftSafeAndLivePredicate(config), AnalysisMethod::kAuto, cancel,
                                                          progress.enum_configs);
  if (!both.ok()) return both.status();
  report.safe = *safe;
  report.live = *live;
  report.safe_and_live = *both;

  Json result = Json::Object();
  result.Set("protocol", Json::String("pbft"));
  result.Set("n", Json::Number(request.fault.n()));
  result.Set("config", Json::String(config.Describe()));
  result.Set("report", ReportJson(report));
  return result;
}

Result<Json> RunTable2(const ServeRequest& request, const CancelToken* cancel,
                       const EngineProgress& progress) {
  const ReliabilityAnalyzer analyzer =
      ReliabilityAnalyzer::ForIndependentNodes(request.fault.probabilities);
  const RaftConfig config = RaftConfig::Standard(request.fault.n());
  ReliabilityReport report;
  const bool structurally_safe = RaftIsSafeStructurally(config);
  report.safe = structurally_safe ? Probability::One() : Probability::Zero();
  Result<Probability> live = analyzer.TryEventProbability(MakeRaftLivePredicate(config),
                                                          AnalysisMethod::kAuto, cancel,
                                                          progress.enum_configs);
  if (!live.ok()) return live.status();
  report.live = *live;
  report.safe_and_live = structurally_safe ? report.live : Probability::Zero();

  Json result = Json::Object();
  result.Set("protocol", Json::String("raft"));
  result.Set("n", Json::Number(request.fault.n()));
  result.Set("config", Json::String(config.Describe()));
  result.Set("report", ReportJson(report));
  return result;
}

Result<Json> RunQuorumSize(const ServeRequest& request, const CancelToken* cancel) {
  if (IsCancelled(cancel)) {
    return CancelledError("quorum sizing cancelled before start");
  }
  Json result = Json::Object();
  result.Set("protocol", Json::String(request.protocol));
  if (request.protocol == "raft") {
    Result<SizedRaftConfig> sized = SizeRaftQuorums(
        request.fault.probabilities, Probability::FromProbability(request.target_live));
    if (!sized.ok()) return sized.status();
    Json config = Json::Object();
    config.Set("n", Json::Number(sized->config.n));
    config.Set("q_per", Json::Number(sized->config.q_per));
    config.Set("q_vc", Json::Number(sized->config.q_vc));
    result.Set("config", std::move(config));
    result.Set("live", Json::String(FormatPercent(sized->live)));
    result.Set("not_live_probability", Json::Number(sized->live.complement()));
    return result;
  }
  Result<SizedPbftConfig> sized = SizePbftQuorums(
      request.fault.probabilities, Probability::FromProbability(request.target_safe),
      Probability::FromProbability(request.target_live));
  if (!sized.ok()) return sized.status();
  Json config = Json::Object();
  config.Set("n", Json::Number(sized->config.n));
  config.Set("q_eq", Json::Number(sized->config.q_eq));
  config.Set("q_per", Json::Number(sized->config.q_per));
  config.Set("q_vc", Json::Number(sized->config.q_vc));
  config.Set("q_vc_t", Json::Number(sized->config.q_vc_t));
  result.Set("config", std::move(config));
  result.Set("safe", Json::String(FormatPercent(sized->safe)));
  result.Set("live", Json::String(FormatPercent(sized->live)));
  result.Set("unsafe_probability", Json::Number(sized->safe.complement()));
  result.Set("not_live_probability", Json::Number(sized->live.complement()));
  return result;
}

Result<Json> RunPlacement(const ServeRequest& request, const CancelToken* cancel) {
  if (IsCancelled(cancel)) {
    return CancelledError("placement search cancelled before start");
  }
  const PlacementResult placement =
      OptimizeRackPlacement(request.node_probabilities, request.rack_probabilities);
  Json result = Json::Object();
  Json rack_of = Json::Array();
  for (int rack : placement.rack_of) {
    rack_of.Append(Json::Number(rack));
  }
  result.Set("rack_of", std::move(rack_of));
  result.Set("safe_and_live", Json::String(FormatPercent(placement.safe_and_live)));
  result.Set("failure_probability", Json::Number(placement.safe_and_live.complement()));
  return result;
}

// Degraded-mode estimate of one predicate probability: a seeded Monte Carlo run standing
// in for the exact enumeration. The seed is a fixed function of the stream index alone, so
// a degraded answer is bit-deterministic — the same request degrades to the same bytes on
// every server. `max_ci_width` accumulates the widest Wilson interval, reported back to
// the client as the honesty label on the approximation.
template <typename Predicate>
Result<Probability> EstimateDegraded(const ReliabilityAnalyzer& analyzer,
                                     Predicate&& predicate, uint64_t trials, uint64_t stream,
                                     const CancelToken* cancel,
                                     const EngineProgress& progress, double* max_ci_width) {
  MonteCarloOptions options;
  options.trials = trials;
  options.seed = DeriveStreamSeed(0xDE64ull, stream);  // "DEGD"
  options.cancel = cancel;
  options.progress = progress.mc_trials;
  Result<ConfidenceInterval> estimate =
      analyzer.TryEstimateEventProbability(std::forward<Predicate>(predicate), options);
  if (!estimate.ok()) return estimate.status();
  *max_ci_width = std::max(*max_ci_width, estimate->high - estimate->low);
  return Probability::FromProbability(estimate->point);
}

Result<Json> RunEndToEnd(const ServeRequest& request, const CancelToken* cancel,
                         const EngineProgress& progress) {
  const ReliabilityAnalyzer analyzer =
      ReliabilityAnalyzer::ForIndependentNodes(request.fault.probabilities);
  const bool degraded = request.degraded && request.degraded_trials > 0;
  double max_ci_width = 0.0;
  EndToEndParams params;
  if (request.protocol == "raft") {
    const RaftConfig config = RaftConfig::Standard(request.fault.n());
    const bool structurally_safe = RaftIsSafeStructurally(config);
    params.consensus.safe = structurally_safe ? Probability::One() : Probability::Zero();
    Result<Probability> live =
        degraded ? EstimateDegraded(analyzer, MakeRaftLivePredicate(config),
                                    request.degraded_trials, 1, cancel, progress,
                                    &max_ci_width)
                 : analyzer.TryEventProbability(MakeRaftLivePredicate(config),
                                                AnalysisMethod::kAuto, cancel,
                                                progress.enum_configs);
    if (!live.ok()) return live.status();
    params.consensus.live = *live;
    params.consensus.safe_and_live =
        structurally_safe ? params.consensus.live : Probability::Zero();
  } else {
    const PbftConfig config = PbftConfig::Standard(request.fault.n());
    Result<Probability> safe =
        degraded ? EstimateDegraded(analyzer, MakePbftSafePredicate(config),
                                    request.degraded_trials, 2, cancel, progress,
                                    &max_ci_width)
                 : analyzer.TryEventProbability(MakePbftSafePredicate(config),
                                                AnalysisMethod::kAuto, cancel,
                                                progress.enum_configs);
    if (!safe.ok()) return safe.status();
    Result<Probability> live =
        degraded ? EstimateDegraded(analyzer, MakePbftLivePredicate(config),
                                    request.degraded_trials, 3, cancel, progress,
                                    &max_ci_width)
                 : analyzer.TryEventProbability(MakePbftLivePredicate(config),
                                                AnalysisMethod::kAuto, cancel,
                                                progress.enum_configs);
    if (!live.ok()) return live.status();
    Result<Probability> both =
        degraded ? EstimateDegraded(analyzer, MakePbftSafeAndLivePredicate(config),
                                    request.degraded_trials, 4, cancel, progress,
                                    &max_ci_width)
                 : analyzer.TryEventProbability(MakePbftSafeAndLivePredicate(config),
                                                AnalysisMethod::kAuto, cancel,
                                                progress.enum_configs);
    if (!both.ok()) return both.status();
    params.consensus.safe = *safe;
    params.consensus.live = *live;
    params.consensus.safe_and_live = *both;
  }
  params.window_hours = request.window_hours;
  params.mean_time_to_recover = request.mttr_hours;
  params.data_loss_given_violation = request.data_loss_given_violation;
  params.mission_hours = request.mission_hours;
  const EndToEndReport report = ComputeEndToEnd(params);

  Json result = Json::Object();
  result.Set("protocol", Json::String(request.protocol));
  result.Set("n", Json::Number(request.fault.n()));
  result.Set("consensus", ReportJson(params.consensus));
  result.Set("availability", Json::String(FormatPercent(report.availability)));
  result.Set("mission_durability", Json::String(FormatPercent(report.mission_durability)));
  result.Set("outage_minutes_per_year", Json::Number(report.outage_minutes_per_year));
  if (degraded) {
    result.Set("degraded", Json::Bool(true));
    result.Set("degraded_trials", Json::Number(request.degraded_trials));
    result.Set("max_ci_width", Json::Number(max_ci_width));
  }
  return result;
}

Result<Json> RunMonteCarlo(const ServeRequest& request, const CancelToken* cancel,
                           const EngineProgress& progress) {
  std::unique_ptr<JointFailureModel> model;
  int n = 0;
  if (request.beta_binomial) {
    n = request.beta_n;
    model = std::make_unique<BetaBinomialFailureModel>(n, request.alpha, request.beta);
  } else {
    n = request.fault.n();
    model = std::make_unique<IndependentFailureModel>(request.fault.probabilities);
  }
  const ReliabilityAnalyzer analyzer{std::move(model)};
  // Brownout: cap the trial count but keep the caller's seed, so the degraded answer is
  // still a deterministic prefix-style estimate of the requested run.
  const bool degraded = request.degraded && request.degraded_trials > 0 &&
                        request.degraded_trials < request.trials;
  const uint64_t trials = degraded ? request.degraded_trials : request.trials;
  MonteCarloOptions options;
  options.trials = trials;
  options.seed = request.seed;
  options.cancel = cancel;
  options.progress = progress.mc_trials;

  Json result = Json::Object();
  result.Set("protocol", Json::String(request.protocol));
  result.Set("n", Json::Number(n));
  result.Set("trials", Json::Number(trials));
  result.Set("seed", Json::Number(request.seed));
  Result<ConfidenceInterval> estimate =
      request.protocol == "raft"
          ? analyzer.TryEstimateEventProbability(
                MakeRaftLivePredicate(RaftConfig::Standard(n)), options)
          : analyzer.TryEstimateEventProbability(
                MakePbftSafeAndLivePredicate(PbftConfig::Standard(n)), options);
  if (!estimate.ok()) return estimate.status();
  result.Set("event", Json::String(request.protocol == "raft" ? "live" : "safe_and_live"));
  Json interval = Json::Object();
  interval.Set("point", Json::Number(estimate->point));
  interval.Set("lower", Json::Number(estimate->low));
  interval.Set("upper", Json::Number(estimate->high));
  result.Set("estimate", std::move(interval));
  if (degraded) {
    result.Set("degraded", Json::Bool(true));
    result.Set("requested_trials", Json::Number(request.trials));
    result.Set("ci_width", Json::Number(estimate->high - estimate->low));
  }
  return result;
}

FleetProtocol ProtocolFromRequest(const ServeRequest& request) {
  return request.protocol == "pbft" ? FleetProtocol::kPbft : FleetProtocol::kRaft;
}

// Probability rendered the same way ReportJson renders report cells: the paper-formatted
// percent string next to the raw complement for programmatic clients.
void SetProbabilityFields(Json* object, std::string_view name,
                          std::string_view complement_name, const Probability& p) {
  object->Set(name, Json::String(FormatPercent(p)));
  object->Set(complement_name, Json::Number(p.complement()));
}

Result<Json> RunAvailability(const ServeRequest& request, const CancelToken* cancel,
                             const EngineProgress& progress) {
  const FleetModel model(request.fleet, ProtocolFromRequest(request));
  CtmcSolveOptions options;
  options.cancel = cancel;
  options.progress = progress.ctmc_steps;

  Result<Probability> availability =
      model.TrySteadyStateAvailability(/*reconfiguration=*/false, options);
  if (!availability.ok()) return availability.status();
  Result<double> mttu = model.TryMeanTimeToUnavailability(/*reconfiguration=*/false, options);
  if (!mttu.ok()) return mttu.status();

  Json result = Json::Object();
  result.Set("protocol", Json::String(request.protocol));
  result.Set("total_nodes", Json::Number(model.total_nodes()));
  result.Set("states", Json::Number(model.state_count()));
  SetProbabilityFields(&result, "availability", "unavailability", *availability);
  result.Set("downtime_hours_per_year",
             Json::Number(FleetModel::DowntimeHoursPerYear(*availability)));
  result.Set("mttu_hours", Json::Number(*mttu));
  if (request.loss_threshold > 0) {
    Result<double> mttql = model.TryMeanTimeToQuorumLoss(request.loss_threshold, options);
    if (!mttql.ok()) return mttql.status();
    result.Set("loss_threshold", Json::Number(request.loss_threshold));
    result.Set("mttql_hours", Json::Number(*mttql));
  }
  if (request.reconfiguration) {
    Result<Probability> joint =
        model.TrySteadyStateAvailability(/*reconfiguration=*/true, options);
    if (!joint.ok()) return joint.status();
    Result<double> joint_mttu =
        model.TryMeanTimeToUnavailability(/*reconfiguration=*/true, options);
    if (!joint_mttu.ok()) return joint_mttu.status();
    Json reconfig = Json::Object();
    SetProbabilityFields(&reconfig, "availability", "unavailability", *joint);
    reconfig.Set("downtime_hours_per_year",
                 Json::Number(FleetModel::DowntimeHoursPerYear(*joint)));
    reconfig.Set("mttu_hours", Json::Number(*joint_mttu));
    result.Set("reconfiguration", std::move(reconfig));
  }
  return result;
}

Result<Json> RunMissionReliability(const ServeRequest& request, const CancelToken* cancel,
                                   const EngineProgress& progress) {
  Json result = Json::Object();
  result.Set("protocol", Json::String(request.protocol));
  if (request.schedule_mode) {
    // Per-round mode: Theorems 3.1/3.2 per schedule round + cumulative mission aggregates.
    const RoundSchedule schedule(request.round_hours, request.schedule_probabilities);
    Result<RoundAnalysis> analysis =
        request.protocol == "raft"
            ? TryAnalyzeRaftRounds(RaftConfig::Standard(schedule.n()), schedule,
                                   AnalysisMethod::kAuto, cancel, progress.enum_configs)
            : TryAnalyzePbftRounds(PbftConfig::Standard(schedule.n()), schedule,
                                   AnalysisMethod::kAuto, cancel, progress.enum_configs);
    if (!analysis.ok()) return analysis.status();
    result.Set("mode", Json::String("schedule"));
    result.Set("n", Json::Number(schedule.n()));
    result.Set("rounds", Json::Number(schedule.rounds()));
    result.Set("round_hours", Json::Number(schedule.round_hours()));
    result.Set("mission_hours", Json::Number(schedule.mission_hours()));
    Json mission = Json::Object();
    SetProbabilityFields(&mission, "safe", "unsafe_probability", analysis->mission_safe);
    SetProbabilityFields(&mission, "live", "not_live_probability", analysis->mission_live);
    SetProbabilityFields(&mission, "safe_and_live", "failure_probability",
                         analysis->mission_safe_and_live);
    result.Set("mission", std::move(mission));
    result.Set("final_round", ReportJson(analysis->per_round.back()));
    result.Set("final_cumulative", ReportJson(analysis->cumulative.back()));
    return result;
  }
  // Fleet CTMC mode: P(no liveness outage within the mission) via uniformization.
  const FleetModel model(request.fleet, ProtocolFromRequest(request));
  CtmcSolveOptions options;
  options.cancel = cancel;
  options.progress = progress.ctmc_steps;
  Result<Probability> reliability =
      model.TryMissionReliability(request.mission_hours, request.reconfiguration, options);
  if (!reliability.ok()) return reliability.status();
  result.Set("mode", Json::String("fleet"));
  result.Set("total_nodes", Json::Number(model.total_nodes()));
  result.Set("states", Json::Number(model.state_count()));
  result.Set("mission_hours", Json::Number(request.mission_hours));
  result.Set("reconfiguration_window", Json::Bool(request.reconfiguration));
  SetProbabilityFields(&result, "mission_reliability", "outage_probability", *reliability);
  return result;
}

Result<Json> RunRepairSweep(const ServeRequest& request, const CancelToken* cancel,
                            const EngineProgress& progress) {
  CtmcSolveOptions options;
  options.cancel = cancel;
  options.progress = progress.ctmc_steps;
  std::optional<double> target;
  if (request.sweep_target_availability > 0.0) {
    target = request.sweep_target_availability;
  }
  Result<RepairSweepResult> sweep =
      TryRepairRateSweep(request.fleet, ProtocolFromRequest(request),
                         request.sweep_repair_rates, target, options);
  if (!sweep.ok()) return sweep.status();

  Json result = Json::Object();
  result.Set("protocol", Json::String(request.protocol));
  Json points = Json::Array();
  for (const RepairSweepPoint& point : sweep->points) {
    Json row = Json::Object();
    row.Set("repair_rate", Json::Number(point.repair_rate));
    SetProbabilityFields(&row, "availability", "unavailability", point.availability);
    row.Set("mttu_hours", Json::Number(point.mttu_hours));
    row.Set("downtime_hours_per_year", Json::Number(point.downtime_hours_per_year));
    points.Append(std::move(row));
  }
  result.Set("points", std::move(points));
  if (target.has_value()) {
    result.Set("target_availability", Json::Number(*target));
    if (sweep->first_rate_meeting_target.has_value()) {
      result.Set("first_rate_meeting_target",
                 Json::Number(*sweep->first_rate_meeting_target));
    } else {
      result.Set("first_rate_meeting_target", Json::Null());
    }
  }
  return result;
}

}  // namespace

Result<Json> ExecuteRequest(const ServeRequest& request, const CancelToken* cancel,
                            const EngineProgress& progress) {
  switch (request.kind) {
    case RequestKind::kPing: {
      Json result = Json::Object();
      result.Set("ok", Json::Bool(true));
      return result;
    }
    case RequestKind::kTable1:
      return RunTable1(request, cancel, progress);
    case RequestKind::kTable2:
      return RunTable2(request, cancel, progress);
    case RequestKind::kQuorumSize:
      return RunQuorumSize(request, cancel);
    case RequestKind::kPlacement:
      return RunPlacement(request, cancel);
    case RequestKind::kEndToEnd:
      return RunEndToEnd(request, cancel, progress);
    case RequestKind::kMonteCarlo:
      return RunMonteCarlo(request, cancel, progress);
    case RequestKind::kAvailability:
      return RunAvailability(request, cancel, progress);
    case RequestKind::kMissionReliability:
      return RunMissionReliability(request, cancel, progress);
    case RequestKind::kRepairSweep:
      return RunRepairSweep(request, cancel, progress);
    case RequestKind::kStats:
    case RequestKind::kHealth:
      // Handled inline by the server; stats and health requests never reach the engine.
      break;
  }
  return InternalError("unhandled request kind");
}

}  // namespace probcon::serve
