#include "src/serve/engine.h"

#include <algorithm>
#include <memory>
#include <utility>
#include <vector>

#include "src/analysis/end_to_end.h"
#include "src/analysis/placement.h"
#include "src/analysis/reliability.h"
#include "src/common/rng.h"
#include "src/faultmodel/joint_model.h"
#include "src/prob/interval.h"
#include "src/prob/probability.h"
#include "src/probnative/quorum_sizer.h"
#include "src/serve/spec.h"

namespace probcon::serve {
namespace {

// One table row as served: both the paper-formatted percent strings (byte-identical to the
// regression-locked tables) and the raw complements for programmatic clients.
Json ReportJson(const ReliabilityReport& report) {
  Json object = Json::Object();
  object.Set("safe", Json::String(FormatPercent(report.safe)));
  object.Set("live", Json::String(FormatPercent(report.live)));
  object.Set("safe_and_live", Json::String(FormatPercent(report.safe_and_live)));
  object.Set("unsafe_probability", Json::Number(report.safe.complement()));
  object.Set("not_live_probability", Json::Number(report.live.complement()));
  return object;
}

Result<Json> RunTable1(const ServeRequest& request, const CancelToken* cancel,
                       const EngineProgress& progress) {
  const ReliabilityAnalyzer analyzer =
      ReliabilityAnalyzer::ForIndependentNodes(request.fault.probabilities);
  const PbftConfig config = PbftConfig::Standard(request.fault.n());
  ReliabilityReport report;
  Result<Probability> safe = analyzer.TryEventProbability(MakePbftSafePredicate(config),
                                                          AnalysisMethod::kAuto, cancel,
                                                          progress.enum_configs);
  if (!safe.ok()) return safe.status();
  Result<Probability> live = analyzer.TryEventProbability(MakePbftLivePredicate(config),
                                                          AnalysisMethod::kAuto, cancel,
                                                          progress.enum_configs);
  if (!live.ok()) return live.status();
  Result<Probability> both = analyzer.TryEventProbability(
      MakePbftSafeAndLivePredicate(config), AnalysisMethod::kAuto, cancel,
                                                          progress.enum_configs);
  if (!both.ok()) return both.status();
  report.safe = *safe;
  report.live = *live;
  report.safe_and_live = *both;

  Json result = Json::Object();
  result.Set("protocol", Json::String("pbft"));
  result.Set("n", Json::Number(request.fault.n()));
  result.Set("config", Json::String(config.Describe()));
  result.Set("report", ReportJson(report));
  return result;
}

Result<Json> RunTable2(const ServeRequest& request, const CancelToken* cancel,
                       const EngineProgress& progress) {
  const ReliabilityAnalyzer analyzer =
      ReliabilityAnalyzer::ForIndependentNodes(request.fault.probabilities);
  const RaftConfig config = RaftConfig::Standard(request.fault.n());
  ReliabilityReport report;
  const bool structurally_safe = RaftIsSafeStructurally(config);
  report.safe = structurally_safe ? Probability::One() : Probability::Zero();
  Result<Probability> live = analyzer.TryEventProbability(MakeRaftLivePredicate(config),
                                                          AnalysisMethod::kAuto, cancel,
                                                          progress.enum_configs);
  if (!live.ok()) return live.status();
  report.live = *live;
  report.safe_and_live = structurally_safe ? report.live : Probability::Zero();

  Json result = Json::Object();
  result.Set("protocol", Json::String("raft"));
  result.Set("n", Json::Number(request.fault.n()));
  result.Set("config", Json::String(config.Describe()));
  result.Set("report", ReportJson(report));
  return result;
}

Result<Json> RunQuorumSize(const ServeRequest& request, const CancelToken* cancel) {
  if (IsCancelled(cancel)) {
    return CancelledError("quorum sizing cancelled before start");
  }
  Json result = Json::Object();
  result.Set("protocol", Json::String(request.protocol));
  if (request.protocol == "raft") {
    Result<SizedRaftConfig> sized = SizeRaftQuorums(
        request.fault.probabilities, Probability::FromProbability(request.target_live));
    if (!sized.ok()) return sized.status();
    Json config = Json::Object();
    config.Set("n", Json::Number(sized->config.n));
    config.Set("q_per", Json::Number(sized->config.q_per));
    config.Set("q_vc", Json::Number(sized->config.q_vc));
    result.Set("config", std::move(config));
    result.Set("live", Json::String(FormatPercent(sized->live)));
    result.Set("not_live_probability", Json::Number(sized->live.complement()));
    return result;
  }
  Result<SizedPbftConfig> sized = SizePbftQuorums(
      request.fault.probabilities, Probability::FromProbability(request.target_safe),
      Probability::FromProbability(request.target_live));
  if (!sized.ok()) return sized.status();
  Json config = Json::Object();
  config.Set("n", Json::Number(sized->config.n));
  config.Set("q_eq", Json::Number(sized->config.q_eq));
  config.Set("q_per", Json::Number(sized->config.q_per));
  config.Set("q_vc", Json::Number(sized->config.q_vc));
  config.Set("q_vc_t", Json::Number(sized->config.q_vc_t));
  result.Set("config", std::move(config));
  result.Set("safe", Json::String(FormatPercent(sized->safe)));
  result.Set("live", Json::String(FormatPercent(sized->live)));
  result.Set("unsafe_probability", Json::Number(sized->safe.complement()));
  result.Set("not_live_probability", Json::Number(sized->live.complement()));
  return result;
}

Result<Json> RunPlacement(const ServeRequest& request, const CancelToken* cancel) {
  if (IsCancelled(cancel)) {
    return CancelledError("placement search cancelled before start");
  }
  const PlacementResult placement =
      OptimizeRackPlacement(request.node_probabilities, request.rack_probabilities);
  Json result = Json::Object();
  Json rack_of = Json::Array();
  for (int rack : placement.rack_of) {
    rack_of.Append(Json::Number(rack));
  }
  result.Set("rack_of", std::move(rack_of));
  result.Set("safe_and_live", Json::String(FormatPercent(placement.safe_and_live)));
  result.Set("failure_probability", Json::Number(placement.safe_and_live.complement()));
  return result;
}

// Degraded-mode estimate of one predicate probability: a seeded Monte Carlo run standing
// in for the exact enumeration. The seed is a fixed function of the stream index alone, so
// a degraded answer is bit-deterministic — the same request degrades to the same bytes on
// every server. `max_ci_width` accumulates the widest Wilson interval, reported back to
// the client as the honesty label on the approximation.
template <typename Predicate>
Result<Probability> EstimateDegraded(const ReliabilityAnalyzer& analyzer,
                                     Predicate&& predicate, uint64_t trials, uint64_t stream,
                                     const CancelToken* cancel,
                                     const EngineProgress& progress, double* max_ci_width) {
  MonteCarloOptions options;
  options.trials = trials;
  options.seed = DeriveStreamSeed(0xDE64ull, stream);  // "DEGD"
  options.cancel = cancel;
  options.progress = progress.mc_trials;
  Result<ConfidenceInterval> estimate =
      analyzer.TryEstimateEventProbability(std::forward<Predicate>(predicate), options);
  if (!estimate.ok()) return estimate.status();
  *max_ci_width = std::max(*max_ci_width, estimate->high - estimate->low);
  return Probability::FromProbability(estimate->point);
}

Result<Json> RunEndToEnd(const ServeRequest& request, const CancelToken* cancel,
                         const EngineProgress& progress) {
  const ReliabilityAnalyzer analyzer =
      ReliabilityAnalyzer::ForIndependentNodes(request.fault.probabilities);
  const bool degraded = request.degraded && request.degraded_trials > 0;
  double max_ci_width = 0.0;
  EndToEndParams params;
  if (request.protocol == "raft") {
    const RaftConfig config = RaftConfig::Standard(request.fault.n());
    const bool structurally_safe = RaftIsSafeStructurally(config);
    params.consensus.safe = structurally_safe ? Probability::One() : Probability::Zero();
    Result<Probability> live =
        degraded ? EstimateDegraded(analyzer, MakeRaftLivePredicate(config),
                                    request.degraded_trials, 1, cancel, progress,
                                    &max_ci_width)
                 : analyzer.TryEventProbability(MakeRaftLivePredicate(config),
                                                AnalysisMethod::kAuto, cancel,
                                                progress.enum_configs);
    if (!live.ok()) return live.status();
    params.consensus.live = *live;
    params.consensus.safe_and_live =
        structurally_safe ? params.consensus.live : Probability::Zero();
  } else {
    const PbftConfig config = PbftConfig::Standard(request.fault.n());
    Result<Probability> safe =
        degraded ? EstimateDegraded(analyzer, MakePbftSafePredicate(config),
                                    request.degraded_trials, 2, cancel, progress,
                                    &max_ci_width)
                 : analyzer.TryEventProbability(MakePbftSafePredicate(config),
                                                AnalysisMethod::kAuto, cancel,
                                                progress.enum_configs);
    if (!safe.ok()) return safe.status();
    Result<Probability> live =
        degraded ? EstimateDegraded(analyzer, MakePbftLivePredicate(config),
                                    request.degraded_trials, 3, cancel, progress,
                                    &max_ci_width)
                 : analyzer.TryEventProbability(MakePbftLivePredicate(config),
                                                AnalysisMethod::kAuto, cancel,
                                                progress.enum_configs);
    if (!live.ok()) return live.status();
    Result<Probability> both =
        degraded ? EstimateDegraded(analyzer, MakePbftSafeAndLivePredicate(config),
                                    request.degraded_trials, 4, cancel, progress,
                                    &max_ci_width)
                 : analyzer.TryEventProbability(MakePbftSafeAndLivePredicate(config),
                                                AnalysisMethod::kAuto, cancel,
                                                progress.enum_configs);
    if (!both.ok()) return both.status();
    params.consensus.safe = *safe;
    params.consensus.live = *live;
    params.consensus.safe_and_live = *both;
  }
  params.window_hours = request.window_hours;
  params.mean_time_to_recover = request.mttr_hours;
  params.data_loss_given_violation = request.data_loss_given_violation;
  params.mission_hours = request.mission_hours;
  const EndToEndReport report = ComputeEndToEnd(params);

  Json result = Json::Object();
  result.Set("protocol", Json::String(request.protocol));
  result.Set("n", Json::Number(request.fault.n()));
  result.Set("consensus", ReportJson(params.consensus));
  result.Set("availability", Json::String(FormatPercent(report.availability)));
  result.Set("mission_durability", Json::String(FormatPercent(report.mission_durability)));
  result.Set("outage_minutes_per_year", Json::Number(report.outage_minutes_per_year));
  if (degraded) {
    result.Set("degraded", Json::Bool(true));
    result.Set("degraded_trials", Json::Number(request.degraded_trials));
    result.Set("max_ci_width", Json::Number(max_ci_width));
  }
  return result;
}

Result<Json> RunMonteCarlo(const ServeRequest& request, const CancelToken* cancel,
                           const EngineProgress& progress) {
  std::unique_ptr<JointFailureModel> model;
  int n = 0;
  if (request.beta_binomial) {
    n = request.beta_n;
    model = std::make_unique<BetaBinomialFailureModel>(n, request.alpha, request.beta);
  } else {
    n = request.fault.n();
    model = std::make_unique<IndependentFailureModel>(request.fault.probabilities);
  }
  const ReliabilityAnalyzer analyzer{std::move(model)};
  // Brownout: cap the trial count but keep the caller's seed, so the degraded answer is
  // still a deterministic prefix-style estimate of the requested run.
  const bool degraded = request.degraded && request.degraded_trials > 0 &&
                        request.degraded_trials < request.trials;
  const uint64_t trials = degraded ? request.degraded_trials : request.trials;
  MonteCarloOptions options;
  options.trials = trials;
  options.seed = request.seed;
  options.cancel = cancel;
  options.progress = progress.mc_trials;

  Json result = Json::Object();
  result.Set("protocol", Json::String(request.protocol));
  result.Set("n", Json::Number(n));
  result.Set("trials", Json::Number(trials));
  result.Set("seed", Json::Number(request.seed));
  Result<ConfidenceInterval> estimate =
      request.protocol == "raft"
          ? analyzer.TryEstimateEventProbability(
                MakeRaftLivePredicate(RaftConfig::Standard(n)), options)
          : analyzer.TryEstimateEventProbability(
                MakePbftSafeAndLivePredicate(PbftConfig::Standard(n)), options);
  if (!estimate.ok()) return estimate.status();
  result.Set("event", Json::String(request.protocol == "raft" ? "live" : "safe_and_live"));
  Json interval = Json::Object();
  interval.Set("point", Json::Number(estimate->point));
  interval.Set("lower", Json::Number(estimate->low));
  interval.Set("upper", Json::Number(estimate->high));
  result.Set("estimate", std::move(interval));
  if (degraded) {
    result.Set("degraded", Json::Bool(true));
    result.Set("requested_trials", Json::Number(request.trials));
    result.Set("ci_width", Json::Number(estimate->high - estimate->low));
  }
  return result;
}

}  // namespace

Result<Json> ExecuteRequest(const ServeRequest& request, const CancelToken* cancel,
                            const EngineProgress& progress) {
  switch (request.kind) {
    case RequestKind::kPing: {
      Json result = Json::Object();
      result.Set("ok", Json::Bool(true));
      return result;
    }
    case RequestKind::kTable1:
      return RunTable1(request, cancel, progress);
    case RequestKind::kTable2:
      return RunTable2(request, cancel, progress);
    case RequestKind::kQuorumSize:
      return RunQuorumSize(request, cancel);
    case RequestKind::kPlacement:
      return RunPlacement(request, cancel);
    case RequestKind::kEndToEnd:
      return RunEndToEnd(request, cancel, progress);
    case RequestKind::kMonteCarlo:
      return RunMonteCarlo(request, cancel, progress);
    case RequestKind::kStats:
    case RequestKind::kHealth:
      // Handled inline by the server; stats and health requests never reach the engine.
      break;
  }
  return InternalError("unhandled request kind");
}

}  // namespace probcon::serve
