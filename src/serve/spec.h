// Typed request model of the probcon::serve protocol (wire format: docs/SERVING.md).
//
// A request names one of the toolkit's engines (`kind`) plus its parameters; parsing here
// does three jobs:
//
//   1. Validation — every engine precondition (n ranges, probability ranges, placement
//      search-space caps) is checked at the edge and surfaces as INVALID_ARGUMENT, so no
//      client input can reach a CHECK inside an engine.
//   2. Fault-curve resolution — parameters accept per-node probabilities directly OR a
//      fault-curve spec from src/faultmodel (constant / weibull / gompertz / bathtub plus
//      node ages and an analysis window), which is resolved to window failure
//      probabilities at parse time.
//   3. Canonicalization — CanonicalKey() serializes the *parsed* request with a fixed
//      field order, resolved defaults, and shortest-round-trip numbers. Semantically
//      identical requests (reordered fields, "0.01" vs "1e-2", an explicit default, a
//      curve spec vs its resolved probabilities) therefore map to the same memoization
//      cache entry.

#ifndef PROBCON_SRC_SERVE_SPEC_H_
#define PROBCON_SRC_SERVE_SPEC_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/json.h"
#include "src/common/status.h"
#include "src/lifecycle/fleet_model.h"

namespace probcon::serve {

// Protocol version spoken by this build; bumped on incompatible envelope changes.
inline constexpr int kProtocolVersion = 1;

// Largest accepted deadline_ms (~31.7 years). Anything longer is indistinguishable from
// "no deadline" and the bound keeps deadline_ms * 1000 safely inside int64 microseconds,
// so the server's steady_clock arithmetic cannot overflow on attacker-chosen values.
inline constexpr double kMaxDeadlineMs = 1e12;

enum class RequestKind : int {
  kPing = 0,     // liveness / readiness probe; never cached, never queued
  kTable1,       // PBFT reliability report (paper Table 1 engine)
  kTable2,       // Raft reliability report (paper Table 2 engine)
  kQuorumSize,   // dynamic quorum sizing to reliability targets
  kPlacement,    // rack placement optimization
  kEndToEnd,     // availability / mission-durability derivation
  kMonteCarlo,   // Monte Carlo estimate with Wilson CI
  kStats,        // live metrics snapshot (obs registry); never cached, never queued
  kHealth,       // readiness / brownout state machine snapshot; never cached, never queued
  kAvailability,        // fleet-lifecycle steady-state availability / MTTU / MTTQL
  kMissionReliability,  // fleet CTMC mission reliability OR per-round schedule analysis
  kRepairSweep,         // repair-rate sweep ("how fast must repair be for five nines?")
};

inline constexpr int kRequestKindCount = 12;

std::string_view RequestKindName(RequestKind kind);
Result<RequestKind> RequestKindFromName(std::string_view name);

// Per-node failure probabilities for one analysis window, resolved from any of the
// accepted JSON spellings:
//
//   {"n": 5, "p": 0.01}                          uniform
//   {"probabilities": [0.01, 0.02, ...]}         explicit per node
//   {"n": 5, "curve": {...}, "age": a, "window": w}
//   {"ages": [...], "curve": {...}, "window": w} per-node ages
//
// Curve objects: {"kind": "constant", "rate": r} or {"kind": "constant",
// "window_probability": p, "window": w}; {"kind": "weibull", "shape": k, "scale": s};
// {"kind": "gompertz", "base_rate": b, "aging_rate": a}; {"kind": "bathtub",
// "infant_shape": ..., "infant_scale": ..., "useful_life_rate": ..., "wearout_shape": ...,
// "wearout_scale": ...}. With a curve, node i's probability is
// FailureProbability(age_i, age_i + window).
struct FaultSpec {
  std::vector<double> probabilities;

  int n() const { return static_cast<int>(probabilities.size()); }

  static FaultSpec Uniform(int n, double p);

  // Parses from `field` (an object). `json == nullptr` resolves to Uniform(default_n,
  // default_p) when default_n > 0, or an error naming the missing field otherwise.
  static Result<FaultSpec> FromJson(const Json* json, int default_n, double default_p,
                                    int max_n);

  // {"probabilities": [...]} with shortest-round-trip numbers — the canonical form.
  Json ToCanonicalJson() const;
};

// One fully parsed, validated request. Fields are a union-by-convention: each kind reads
// its own subset (listed next to the member).
struct ServeRequest {
  RequestKind kind = RequestKind::kPing;

  FaultSpec fault;            // table1, table2, quorum_size, end_to_end, montecarlo
  std::string protocol;       // quorum_size, end_to_end, montecarlo: "raft" | "pbft"
  double target_live = 0.0;   // quorum_size
  double target_safe = 0.0;   // quorum_size (pbft)

  std::vector<double> node_probabilities;  // placement
  std::vector<double> rack_probabilities;  // placement

  double window_hours = 24.0;               // end_to_end
  double mttr_hours = 1.0;                  // end_to_end
  double data_loss_given_violation = 1.0;   // end_to_end
  double mission_hours = 8766.0;            // end_to_end

  bool beta_binomial = false;  // montecarlo: beta-binomial instead of independent model
  int beta_n = 0;              // montecarlo (beta_binomial)
  double alpha = 0.0;          // montecarlo (beta_binomial)
  double beta = 0.0;           // montecarlo (beta_binomial)
  uint64_t trials = 1'000'000;  // montecarlo
  uint64_t seed = 42;           // montecarlo

  bool stats_reset = false;  // stats: zero counters/histograms after the snapshot

  // Fleet-lifecycle kinds (availability, mission_reliability, repair_sweep). The fleet is
  // resolved at parse time: class specs may carry an explicit failure_rate or a fault curve
  // plus an age (lumped via FleetClass::FromCurve), and `protocol` selects the quorum rule.
  //
  //   "fleet": {"classes": [{"count": 3, "failure_rate": 1e-3}
  //                         | {"count": 2, "curve": {...}, "age": 8766,
  //                            "old": true, "new": false}, ...],
  //             "repair_rate": 0.5, "repair_servers": 2}
  FleetParams fleet;
  bool reconfiguration = false;  // availability, mission_reliability: joint-quorum window
  int loss_threshold = 0;        // availability: MTTQL threshold; 0 skips the metric

  // mission_reliability, schedule mode: "schedule" instead of "fleet"/"mission_hours" —
  // either explicit {"round_probabilities": [[..], ..], "round_hours": h} or a curve form
  // {"curve": {...}, "n": 4, "age": 0, "round_hours": 24, "rounds": 30}. The matrix is
  // resolved at parse time; `schedule_mode` records which mode the request took.
  bool schedule_mode = false;
  double round_hours = 0.0;
  std::vector<std::vector<double>> schedule_probabilities;

  // repair_sweep: explicit {"repair_rates": [..]} or a geometric grid {"min_rate": ..,
  // "max_rate": .., "points": ..}, resolved at parse time; optional availability target.
  std::vector<double> sweep_repair_rates;
  double sweep_target_availability = 0.0;  // 0 = no target requested

  // Server-internal brownout markers — never parsed from the wire and never part of
  // CanonicalParams/CanonicalKey: the server sets them on its own copy when it admits a
  // request into the degraded lane, and the engines honor them by capping trial counts.
  bool degraded = false;
  uint64_t degraded_trials = 0;  // Trial cap for degraded montecarlo / end_to_end runs.

  // Parses and validates the `params` object of a request envelope.
  static Result<ServeRequest> FromParams(RequestKind kind, const Json& params);

  // Canonical parameter object: fixed field order, resolved fault probabilities, defaults
  // materialized.
  Json CanonicalParams() const;

  // The memoization key: "<kind> <compact canonical params>".
  std::string CanonicalKey() const;
};

// Request envelope: {"v": 1, "id": <uint64>, "kind": "...", "deadline_ms": <double, opt>,
// "trace": <bool, opt>, "params": {...}}. `deadline_ms <= 0` means no deadline;
// `trace: true` asks the server to echo its per-stage span breakdown in the response.
struct RequestEnvelope {
  uint64_t id = 0;
  double deadline_ms = 0.0;
  bool trace = false;
  ServeRequest request;

  static Result<RequestEnvelope> Parse(std::string_view payload);

  // Client-side assembly (the raw `params` travel untouched; the server canonicalizes).
  static std::string Serialize(uint64_t id, std::string_view kind, const Json& params,
                               double deadline_ms, bool trace = false);
};

// Response envelope: {"v": 1, "id": ..., "status": "OK", "cached": bool, "result": {...},
// "trace": {...}} on success ("trace" only when the request asked for it);
// {"v": 1, "id": ..., "status": "<CODE>", "error": "..."} otherwise.
struct ResponseEnvelope {
  uint64_t id = 0;
  Status status;
  bool cached = false;
  // True when the server answered in brownout-degraded mode (reduced trial count or a
  // stale memo entry); serialized as `"degraded": true` between "cached" and "result" and
  // omitted entirely for normal answers, keeping them byte-identical to older builds.
  bool degraded = false;
  Json result;
  // Span breakdown (RequestTrace::ToJson shape) when the request carried `trace: true`;
  // kNull otherwise and then omitted from the wire.
  Json trace;

  static Result<ResponseEnvelope> Parse(std::string_view payload);
  std::string Serialize() const;
};

}  // namespace probcon::serve

#endif  // PROBCON_SRC_SERVE_SPEC_H_
