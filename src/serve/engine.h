// The serve-side execution engine: maps one parsed ServeRequest onto the toolkit's
// analysis entry points and renders the answer as a JSON result object.
//
// This layer owns the "byte-identical to the offline tools" guarantee: table cells go
// through the same AnalyzeRaft/AnalyzePbft + FormatPercent pipeline the regression-locked
// tables use, and numeric fields are serialized with the shared shortest-round-trip
// FormatDouble, so a served answer can be diffed against tool output directly.
//
// Everything here is synchronous and deterministic; the cancel token is the only channel
// by which the outside world (deadline watchdog, shutdown) can interrupt a computation.

#ifndef PROBCON_SRC_SERVE_ENGINE_H_
#define PROBCON_SRC_SERVE_ENGINE_H_

#include <atomic>
#include <cstdint>

#include "src/common/cancellation.h"
#include "src/common/json.h"
#include "src/common/status.h"
#include "src/serve/spec.h"

namespace probcon::serve {

// Optional progress cells the engines flush into at their cancellation-poll boundaries
// (kCancellationPollStride), so a live request's advance is visible from outside — the
// server wires these to the serve.engine.mc_trials / serve.engine.enum_configs counters.
// Null cells disable the corresponding instrumentation; progress never feeds back into any
// computed value.
struct EngineProgress {
  std::atomic<uint64_t>* mc_trials = nullptr;     // Monte Carlo trials completed.
  std::atomic<uint64_t>* enum_configs = nullptr;  // exact-enumeration configs evaluated.
  std::atomic<uint64_t>* ctmc_steps = nullptr;    // CTMC solver steps (terms / solves).
};

// Executes `request` to completion (or until `cancel` fires, returning kCancelled).
// INVALID_ARGUMENT never escapes here for a request that passed ServeRequest::FromParams;
// NOT_FOUND can (quorum sizing with unattainable targets).
Result<Json> ExecuteRequest(const ServeRequest& request, const CancelToken* cancel,
                            const EngineProgress& progress = {});

}  // namespace probcon::serve

#endif  // PROBCON_SRC_SERVE_ENGINE_H_
