#include "src/serve/framing.h"

#include <cstring>

#include "src/common/check.h"

namespace probcon::serve {

std::string EncodeFrame(std::string_view payload) {
  CHECK_LE(payload.size(), kAbsoluteMaxPayloadBytes) << "frame payload too large";
  const uint32_t length = static_cast<uint32_t>(payload.size());
  std::string frame;
  frame.reserve(kFrameHeaderBytes + payload.size());
  frame.append(kFrameMagic, sizeof(kFrameMagic));
  frame.push_back(static_cast<char>((length >> 24) & 0xff));
  frame.push_back(static_cast<char>((length >> 16) & 0xff));
  frame.push_back(static_cast<char>((length >> 8) & 0xff));
  frame.push_back(static_cast<char>(length & 0xff));
  frame.append(payload);
  return frame;
}

FrameDecoder::FrameDecoder(uint32_t max_payload_bytes)
    : max_payload_bytes_(max_payload_bytes < kAbsoluteMaxPayloadBytes ? max_payload_bytes
                                                                      : kAbsoluteMaxPayloadBytes) {}

void FrameDecoder::Feed(std::string_view bytes) {
  // Compact the consumed prefix before growing; keeps the buffer bounded by one frame plus
  // whatever the transport read ahead.
  if (consumed_ > 0 && consumed_ == buffer_.size()) {
    buffer_.clear();
    consumed_ = 0;
  } else if (consumed_ > 4096) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  buffer_.append(bytes);
}

Result<std::optional<std::string>> FrameDecoder::Next() {
  if (!poisoned_.ok()) {
    return poisoned_;
  }
  const size_t available = buffer_.size() - consumed_;
  if (available < kFrameHeaderBytes) {
    return std::optional<std::string>();
  }
  const char* header = buffer_.data() + consumed_;
  if (std::memcmp(header, kFrameMagic, sizeof(kFrameMagic)) != 0) {
    poisoned_ = InvalidArgumentError("frame: bad magic (not a probcon-serve stream)");
    return poisoned_;
  }
  const uint32_t length = (static_cast<uint32_t>(static_cast<unsigned char>(header[4])) << 24) |
                          (static_cast<uint32_t>(static_cast<unsigned char>(header[5])) << 16) |
                          (static_cast<uint32_t>(static_cast<unsigned char>(header[6])) << 8) |
                          static_cast<uint32_t>(static_cast<unsigned char>(header[7]));
  if (length > max_payload_bytes_) {
    poisoned_ = ResourceExhaustedError("frame: declared payload of " + std::to_string(length) +
                                       " bytes exceeds the " +
                                       std::to_string(max_payload_bytes_) + "-byte limit");
    return poisoned_;
  }
  if (available < kFrameHeaderBytes + length) {
    return std::optional<std::string>();
  }
  std::string payload = buffer_.substr(consumed_ + kFrameHeaderBytes, length);
  consumed_ += kFrameHeaderBytes + length;
  return std::optional<std::string>(std::move(payload));
}

Status FrameDecoder::AtEof() const {
  if (!poisoned_.ok()) {
    return poisoned_;
  }
  const size_t available = buffer_.size() - consumed_;
  if (available == 0) {
    return Status::Ok();
  }
  if (available < kFrameHeaderBytes) {
    return UnavailableError("connection closed mid-frame: only " +
                            std::to_string(available) + " of " +
                            std::to_string(kFrameHeaderBytes) + " header bytes arrived");
  }
  const char* header = buffer_.data() + consumed_;
  const uint32_t length = (static_cast<uint32_t>(static_cast<unsigned char>(header[4])) << 24) |
                          (static_cast<uint32_t>(static_cast<unsigned char>(header[5])) << 16) |
                          (static_cast<uint32_t>(static_cast<unsigned char>(header[6])) << 8) |
                          static_cast<uint32_t>(static_cast<unsigned char>(header[7]));
  return UnavailableError("connection closed mid-frame: " +
                          std::to_string(available - kFrameHeaderBytes) + " of " +
                          std::to_string(length) + " payload bytes arrived");
}

}  // namespace probcon::serve
