#include "src/serve/server.h"

#include <algorithm>
#include <utility>

#include "src/common/json.h"
#include "src/exec/thread_pool.h"
#include "src/obs/export.h"
#include "src/serve/engine.h"

namespace probcon::serve {
namespace {

// Best-effort recovery of the request id from a payload that failed full envelope parsing,
// so even malformed-request errors can be correlated by the client.
uint64_t RecoverRequestId(std::string_view payload) {
  Result<Json> parsed = ParseJson(payload, "serve request");
  if (!parsed.ok() || !parsed->IsObject()) return 0;
  uint64_t id = 0;
  Status status = JsonReadUint64(*parsed, "id", &id, "serve request");
  return status.ok() ? id : 0;
}

std::string ErrorResponse(uint64_t id, Status status) {
  ResponseEnvelope envelope;
  envelope.id = id;
  envelope.status = std::move(status);
  return envelope.Serialize();
}

// Entry bound for the request-text memo. When full the memo is cleared wholesale — the
// next requests repopulate it; a front cache needs no smarter eviction.
constexpr size_t kRequestMemoCap = 4096;

// The exact layout RequestEnvelope::Serialize emits. The fast-path scan accepts only this
// layout, so the excised digit span is provably the top-level envelope id: any other field
// order — including a payload whose params object places an "id" key first — fails the
// prefix check and takes the full parse path instead.
constexpr std::string_view kWireIdPrefix = "{\"v\": 1, \"id\": ";
constexpr std::string_view kWireKindSep = ", \"kind\": ";

struct WireScan {
  uint64_t id = 0;
  size_t id_begin = 0;  // First digit of the envelope id.
  size_t id_end = 0;    // One past the last digit.
};

bool ScanWirePayload(std::string_view payload, WireScan* scan) {
  if (payload.size() < kWireIdPrefix.size() + 1 + kWireKindSep.size()) return false;
  if (payload.compare(0, kWireIdPrefix.size(), kWireIdPrefix) != 0) return false;
  size_t pos = kWireIdPrefix.size();
  uint64_t value = 0;
  size_t digits = 0;
  while (pos < payload.size() && payload[pos] >= '0' && payload[pos] <= '9') {
    if (++digits > 19) return false;  // 19 decimal digits always fit a uint64.
    value = value * 10 + static_cast<uint64_t>(payload[pos] - '0');
    ++pos;
  }
  if (digits == 0) return false;
  if (payload.compare(pos, kWireKindSep.size(), kWireKindSep) != 0) return false;
  scan->id = value;
  scan->id_begin = kWireIdPrefix.size();
  scan->id_end = pos;
  return true;
}

// Splices the response envelope around a cached result text instead of parsing and
// re-serializing it: the cached value IS WriteJson(result), and WriteJson's compact form
// is deterministic, so this is byte-identical to ResponseEnvelope::Serialize at a fraction
// of the cost. (Json::Number(uint64_t) renders via std::to_string, matching the id
// rendering here.)
std::string SpliceCachedResponse(uint64_t id, const std::string& cached_text) {
  std::string out;
  out.reserve(cached_text.size() + 64);
  out += "{\"v\": ";
  out += std::to_string(kProtocolVersion);
  out += ", \"id\": ";
  out += std::to_string(id);
  out += ", \"status\": \"OK\", \"cached\": true, \"result\": ";
  out += cached_text;
  out += '}';
  return out;
}

// The degraded-lane variant: identical layout plus the `degraded` flag, matching the
// field order ResponseEnvelope::Serialize emits (v, id, status, cached, degraded, result).
std::string SpliceDegradedCachedResponse(uint64_t id, const std::string& cached_text) {
  std::string out;
  out.reserve(cached_text.size() + 80);
  out += "{\"v\": ";
  out += std::to_string(kProtocolVersion);
  out += ", \"id\": ";
  out += std::to_string(id);
  out += ", \"status\": \"OK\", \"cached\": true, \"degraded\": true, \"result\": ";
  out += cached_text;
  out += '}';
  return out;
}

// The verbs the brownout lane may answer in degraded mode: the ones whose cost is a free
// parameter (trial counts), so a cheaper honest answer exists.
bool DegradableKind(RequestKind kind) {
  return kind == RequestKind::kMonteCarlo || kind == RequestKind::kEndToEnd;
}

}  // namespace

QueryServer::QueryServer(ServerOptions options, MetricsRegistry* metrics)
    : options_(options),
      metrics_(metrics),
      cache_(options.cache_bytes, metrics, options.cache_shards) {
  if (metrics_ != nullptr) {
    // Serve latencies span warm cache hits (~10us) to deadline-bounded engine runs, so
    // every latency histogram here uses the fine-grained 1us-floor layout.
    const HistogramOptions latency = HistogramOptions::ServeLatencyMs();
    requests_counter_ = &metrics_->GetCounter("serve.requests");
    text_memo_hits_ = &metrics_->GetCounter("serve.text_memo.hits");
    text_memo_misses_ = &metrics_->GetCounter("serve.text_memo.misses");
    shed_counter_ = &metrics_->GetCounter("serve.shed");
    error_counter_ = &metrics_->GetCounter("serve.errors");
    deadline_counter_ = &metrics_->GetCounter("serve.deadline_exceeded");
    latency_histogram_ = &metrics_->GetHistogram("serve.latency_ms", latency);
    for (int i = 0; i < kRequestKindCount; ++i) {
      const auto kind = static_cast<RequestKind>(i);
      kind_latency_[i] = &metrics_->GetHistogram(
          "serve.latency_ms." + std::string(RequestKindName(kind)), latency);
    }
    parse_ms_ = &metrics_->GetHistogram("serve.stage_ms.parse", latency);
    canonicalize_ms_ = &metrics_->GetHistogram("serve.stage_ms.canonicalize", latency);
    cache_ms_ = &metrics_->GetHistogram("serve.stage_ms.cache", latency);
    engine_ms_ = &metrics_->GetHistogram("serve.stage_ms.engine", latency);
    serialize_ms_ = &metrics_->GetHistogram("serve.stage_ms.serialize", latency);
    cancel_latency_ms_ = &metrics_->GetHistogram("serve.cancel_latency_ms", latency);
    inflight_gauge_ = &metrics_->GetGauge("serve.inflight");
    degraded_counter_ = &metrics_->GetCounter("serve.degraded");
    degraded_stale_counter_ = &metrics_->GetCounter("serve.degraded.stale");
    brownout_trips_counter_ = &metrics_->GetCounter("serve.brownout.trips");
    health_gauge_ = &metrics_->GetGauge("serve.health");
    degraded_inflight_gauge_ = &metrics_->GetGauge("serve.degraded_inflight");
    progress_.mc_trials = &metrics_->GetCounter("serve.engine.mc_trials").cell();
    progress_.enum_configs = &metrics_->GetCounter("serve.engine.enum_configs").cell();
    progress_.ctmc_steps = &metrics_->GetCounter("serve.engine.ctmc_steps").cell();
  }
  watchdog_ = std::thread([this] { WatchdogLoop(); });
}

QueryServer::~QueryServer() {
  Drain();
  {
    std::lock_guard<std::mutex> lock(watchdog_mutex_);
    watchdog_shutdown_ = true;
  }
  watchdog_cv_.notify_all();
  watchdog_.join();
}

bool QueryServer::draining() const {
  std::lock_guard<std::mutex> lock(state_mutex_);
  return draining_;
}

int QueryServer::inflight() const {
  std::lock_guard<std::mutex> lock(state_mutex_);
  return inflight_;
}

void QueryServer::Submit(std::string payload, std::function<void(std::string)> done) {
  const auto started = std::chrono::steady_clock::now();
  SpanTimer span;

  // Request-text fast path: excise the envelope id digits and probe the text memo. A hit
  // maps this payload straight to its canonical cache key — no JSON parse, no
  // canonicalization — and a warm result then answers with a single splice. Shedding and
  // drain rejects ride the same shortcut, so overload rejects stay cheap too.
  WireScan scan;
  const bool scanned = ScanWirePayload(payload, &scan);
  std::string memo_text;
  bool admitted = false;
  bool degraded_admission = false;  // Admitted through the brownout lane, over capacity.
  if (scanned) {
    memo_text.reserve(payload.size());
    memo_text.append(payload, 0, scan.id_begin);
    memo_text.append(payload, scan.id_end, std::string::npos);
    bool memo_hit = false;
    TextMemoEntry entry;
    {
      std::lock_guard<std::mutex> lock(memo_mutex_);
      const auto it = request_memo_.find(memo_text);
      if (it != request_memo_.end()) {
        memo_hit = true;
        entry = it->second;
      }
    }
    if (text_memo_hits_ != nullptr) {
      (memo_hit ? text_memo_hits_ : text_memo_misses_)->Increment();
    }
    if (memo_hit) {
      {
        std::lock_guard<std::mutex> lock(state_mutex_);
        if (requests_counter_ != nullptr) requests_counter_->Increment();
        if (draining_) {
          if (error_counter_ != nullptr) error_counter_->Increment();
          done(ErrorResponse(scan.id, UnavailableError("server is draining")));
          return;
        }
        if (inflight_ >= options_.max_inflight) {
          if (!BrownoutShedLocked(entry.kind)) {
            if (shed_counter_ != nullptr) shed_counter_->Increment();
            done(ErrorResponse(scan.id,
                               ResourceExhaustedError(
                                   "server at capacity (" +
                                   std::to_string(options_.max_inflight) +
                                   " requests in flight); retry with backoff")));
            return;
          }
          degraded_admission = true;
          ++degraded_inflight_;
          if (degraded_inflight_gauge_ != nullptr) {
            degraded_inflight_gauge_->Set(degraded_inflight_);
          }
        } else {
          RecordAdmitLocked();
        }
        ++inflight_;
        if (inflight_gauge_ != nullptr) inflight_gauge_->Set(inflight_);
      }
      admitted = true;
      SpanTimer cache_span;
      std::string cached_text;
      if (cache_.TryGet(entry.cache_key, &cached_text)) {
        if (cache_ms_ != nullptr) cache_ms_->Record(cache_span.ElapsedMs());
        SpanTimer serialize_span;
        std::string payload_out = degraded_admission
                                      ? SpliceDegradedCachedResponse(scan.id, cached_text)
                                      : SpliceCachedResponse(scan.id, cached_text);
        if (degraded_admission) {
          if (degraded_counter_ != nullptr) degraded_counter_->Increment();
          if (degraded_stale_counter_ != nullptr) degraded_stale_counter_->Increment();
        }
        if (serialize_ms_ != nullptr) serialize_ms_->Record(serialize_span.ElapsedMs());
        RecordLatencyMs(std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - started)
                            .count(),
                        entry.kind);
        done(std::move(payload_out));
        FinishOne(degraded_admission);
        return;
      }
      // The memoized result has been evicted from the cache — fall through to the full
      // parse path, keeping the admission slot already taken.
    }
  }

  Result<RequestEnvelope> parsed = RequestEnvelope::Parse(payload);
  const double parse_ms = span.LapMs();
  if (parse_ms_ != nullptr) parse_ms_->Record(parse_ms);
  if (!parsed.ok()) {
    if (admitted) {
      FinishOne(degraded_admission);  // Unreachable for memoized texts; keep books.
    } else if (requests_counter_ != nullptr) {
      requests_counter_->Increment();
    }
    if (error_counter_ != nullptr) error_counter_->Increment();
    done(ErrorResponse(RecoverRequestId(payload), parsed.status()));
    return;
  }
  RequestEnvelope envelope = *std::move(parsed);

  // Pings answer inline: they are the readiness probe, so they must not queue behind work
  // and must succeed even while shedding.
  if (envelope.request.kind == RequestKind::kPing) {
    if (requests_counter_ != nullptr) requests_counter_->Increment();
    ResponseEnvelope response;
    response.id = envelope.id;
    response.result = Json::Object();
    response.result.Set("ok", Json::Bool(true));
    response.result.Set("draining", Json::Bool(draining()));
    done(response.Serialize());
    RecordLatencyMs(span.ElapsedMs(), RequestKind::kPing);
    return;
  }

  // Stats answer inline too, and before the drain/admission checks on purpose:
  // introspection is most valuable exactly when the server is overloaded or draining.
  if (envelope.request.kind == RequestKind::kStats) {
    if (requests_counter_ != nullptr) requests_counter_->Increment();
    ResponseEnvelope response;
    response.id = envelope.id;
    response.result = StatsResult(envelope.request.stats_reset);
    if (envelope.trace) {
      RequestTrace trace;
      trace.AddStage("parse", parse_ms);
      trace.AddStage("snapshot", span.LapMs());
      trace.total_ms = span.ElapsedMs();
      response.trace = trace.ToJson();
    }
    done(response.Serialize());
    RecordLatencyMs(span.ElapsedMs(), RequestKind::kStats);
    return;
  }

  // Health answers inline and pre-admission for the same reason stats does: the breaker
  // state is most interesting exactly while the server is shedding or draining.
  if (envelope.request.kind == RequestKind::kHealth) {
    if (requests_counter_ != nullptr) requests_counter_->Increment();
    ResponseEnvelope response;
    response.id = envelope.id;
    response.result = HealthResult();
    done(response.Serialize());
    RecordLatencyMs(span.ElapsedMs(), RequestKind::kHealth);
    return;
  }

  if (!admitted) {
    std::lock_guard<std::mutex> lock(state_mutex_);
    if (requests_counter_ != nullptr) requests_counter_->Increment();
    if (draining_) {
      if (error_counter_ != nullptr) error_counter_->Increment();
      done(ErrorResponse(envelope.id, UnavailableError("server is draining")));
      return;
    }
    if (inflight_ >= options_.max_inflight) {
      if (!BrownoutShedLocked(envelope.request.kind)) {
        // Load shedding: a fast, cheap reject. The client can retry against another
        // replica or back off; queueing here would only convert overload into latency.
        if (shed_counter_ != nullptr) shed_counter_->Increment();
        done(ErrorResponse(envelope.id,
                           ResourceExhaustedError(
                               "server at capacity (" +
                               std::to_string(options_.max_inflight) +
                               " requests in flight); retry with backoff")));
        return;
      }
      degraded_admission = true;
      ++degraded_inflight_;
      if (degraded_inflight_gauge_ != nullptr) {
        degraded_inflight_gauge_->Set(degraded_inflight_);
      }
    } else {
      RecordAdmitLocked();
    }
    ++inflight_;
    if (inflight_gauge_ != nullptr) inflight_gauge_->Set(inflight_);
  }

  // Warm-path fast serve: canonicalize and probe the cache on the caller's thread (a
  // reactor, for TCP traffic) before paying the pool hop. TryGet never blocks on an
  // in-flight computation, so a hit answers inline with no cross-thread handoff — the
  // common warm case — while misses and single-flight waits take the pool path below.
  SpanTimer key_span;
  const std::string key = envelope.request.CanonicalKey();
  const double canonicalize_ms = key_span.LapMs();
  if (canonicalize_ms_ != nullptr) canonicalize_ms_->Record(canonicalize_ms);
  if (scanned && !envelope.trace) {
    // Memoize text -> key so the next identical payload (any id) takes the fast path.
    // Only engine kinds reach this point — ping and stats answered above — so a memo hit
    // can never route into those inline branches. Trace requests are excluded: their
    // responses carry per-request spans and must not be spliced from the cache.
    std::lock_guard<std::mutex> lock(memo_mutex_);
    if (request_memo_.size() >= kRequestMemoCap) request_memo_.clear();
    request_memo_.emplace(std::move(memo_text),
                          TextMemoEntry{key, envelope.request.kind});
  }
  std::string cached_text;
  if (cache_.TryGet(key, &cached_text)) {
    const double cache_ms = key_span.LapMs();
    if (cache_ms_ != nullptr) cache_ms_->Record(cache_ms);
    SpanTimer serialize_span;
    if (degraded_admission) {
      if (degraded_counter_ != nullptr) degraded_counter_->Increment();
      if (degraded_stale_counter_ != nullptr) degraded_stale_counter_->Increment();
    }
    std::string payload_out;
    if (!envelope.trace) {
      payload_out = degraded_admission
                        ? SpliceDegradedCachedResponse(envelope.id, cached_text)
                        : SpliceCachedResponse(envelope.id, cached_text);
    } else {
      ResponseEnvelope response;
      response.id = envelope.id;
      response.cached = true;
      response.degraded = degraded_admission;
      Result<Json> result = ParseJson(cached_text, "cached result");
      CHECK(result.ok()) << result.status().ToString();
      response.result = *std::move(result);
      RequestTrace trace;
      trace.AddStage("parse", parse_ms);
      trace.AddStage("canonicalize", canonicalize_ms);
      trace.AddStage("cache", cache_ms);
      trace.total_ms = std::chrono::duration<double, std::milli>(
                           std::chrono::steady_clock::now() - started)
                           .count();
      response.trace = trace.ToJson();
      payload_out = response.Serialize();
    }
    if (serialize_ms_ != nullptr) serialize_ms_->Record(serialize_span.ElapsedMs());
    RecordLatencyMs(
        std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - started)
            .count(),
        envelope.request.kind);
    done(std::move(payload_out));
    FinishOne(degraded_admission);
    return;
  }

  // A degraded admission with no memo to serve runs the engine in degraded mode: the
  // request copy is marked so the engine caps its trial count, and RunRequest bypasses
  // the cache (degraded results must never poison the memo).
  if (degraded_admission) {
    envelope.request.degraded = true;
    envelope.request.degraded_trials = options_.brownout.degraded_trials;
  }

  double deadline_ms = envelope.deadline_ms;
  if (deadline_ms <= 0.0) deadline_ms = options_.default_deadline_ms;
  // Envelope parsing already rejects deadlines above kMaxDeadlineMs; the clamp also
  // covers an operator-configured default, keeping the microseconds cast in range.
  deadline_ms = std::min(deadline_ms, kMaxDeadlineMs);
  auto token = std::make_shared<CancelToken>();
  const bool deadline_armed = deadline_ms > 0.0;
  if (deadline_armed) {
    ArmDeadline(started + std::chrono::microseconds(static_cast<int64_t>(deadline_ms * 1e3)),
                token);
  }

  ThreadPool::Global().Submit(
      [this, envelope = std::move(envelope), key, canonicalize_ms, token, deadline_armed,
       deadline_ms, started, parse_ms, degraded_admission,
       done = std::move(done)]() mutable {
        std::string response = RunRequest(envelope, key, canonicalize_ms, token,
                                          deadline_armed, deadline_ms, started, parse_ms);
        const auto finished = std::chrono::steady_clock::now();
        RecordLatencyMs(std::chrono::duration<double, std::milli>(finished - started).count(),
                        envelope.request.kind);
        done(std::move(response));
        FinishOne(degraded_admission);
      });
}

std::string QueryServer::RunRequest(const RequestEnvelope& envelope, const std::string& key,
                                    double canonicalize_ms,
                                    const std::shared_ptr<CancelToken>& token,
                                    bool deadline_armed, double deadline_ms,
                                    std::chrono::steady_clock::time_point started,
                                    double parse_ms) {
  RequestTrace trace;
  trace.AddStage("parse", parse_ms);
  trace.AddStage("canonicalize", canonicalize_ms);  // Measured in Submit, alongside the key.
  SpanTimer span;

  bool was_cached = false;
  double engine_ms = -1.0;  // >= 0 iff this request was the single-flight leader.
  auto run_engine = [&]() -> Result<std::string> {
    SpanTimer engine_span;
    Result<Json> result = ExecuteRequest(envelope.request, token.get(), progress_);
    engine_ms = engine_span.ElapsedMs();
    if (engine_ms_ != nullptr) engine_ms_->Record(engine_ms);
    if (!result.ok()) return result.status();
    return WriteJson(*result);
  };
  // Degraded runs bypass the memo entirely: their capped-trial answers must neither be
  // stored (they would poison later full-fidelity reads) nor join a single-flight group
  // (the leader may be computing the full answer under a deadline this request lacks).
  Result<std::string> result_text = envelope.request.degraded
                                        ? run_engine()
                                        : cache_.GetOrCompute(key, run_engine, &was_cached);
  // The cache span covers the whole lookup: hit splice, single-flight wait on a follower,
  // or the nested engine run on the leader.
  const double cache_ms = span.LapMs();
  trace.AddStage("cache", cache_ms);
  if (cache_ms_ != nullptr) cache_ms_->Record(cache_ms);
  if (engine_ms >= 0.0) trace.AddStage("engine", engine_ms);

  ResponseEnvelope response;
  response.id = envelope.id;
  if (result_text.ok()) {
    response.cached = was_cached;
    response.degraded = envelope.request.degraded;
    if (envelope.request.degraded && degraded_counter_ != nullptr) {
      degraded_counter_->Increment();
    }
    Result<Json> result = ParseJson(*result_text, "cached result");
    CHECK(result.ok()) << result.status().ToString();
    response.result = *std::move(result);
    if (envelope.trace) {
      trace.total_ms =
          std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                    started)
              .count();
      response.trace = trace.ToJson();
    }
  } else {
    Status status = result_text.status();
    // The engine reports cooperative cancellation as kCancelled; when the cancel came from
    // this request's own deadline, the client-facing code is DEADLINE_EXCEEDED.
    if (status.code() == StatusCode::kCancelled && deadline_armed && token->Cancelled()) {
      status = DeadlineExceededError("deadline expired after " +
                                     FormatDouble(envelope.deadline_ms) + " ms: " +
                                     status.message());
      if (deadline_counter_ != nullptr) deadline_counter_->Increment();
      if (cancel_latency_ms_ != nullptr) {
        // How long past its deadline the request took to actually come back — the
        // responsiveness of the cooperative-cancellation poll loops.
        const double elapsed_ms =
            std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                      started)
                .count();
        cancel_latency_ms_->Record(std::max(0.0, elapsed_ms - deadline_ms));
      }
    } else {
      if (error_counter_ != nullptr) error_counter_->Increment();
    }
    response.status = std::move(status);
  }

  span.Restart();
  std::string payload = response.Serialize();
  if (serialize_ms_ != nullptr) serialize_ms_->Record(span.ElapsedMs());
  return payload;
}

Json QueryServer::StatsResult(bool reset) {
  // Deep-copy the live registry, then layer the exec pool's point-in-time telemetry onto
  // the private copy. ExportMetrics *increments* counters, so it must only ever target a
  // fresh snapshot registry — exporting into the live one twice would double-count.
  MetricsRegistry snapshot;
  if (metrics_ != nullptr) {
    metrics_->SnapshotInto(&snapshot);
  }
  ThreadPool::Global().ExportMetrics(snapshot);
  Json result = Json::Object();
  result.Set("metrics", MetricsToJsonValue(snapshot));
  if (reset && metrics_ != nullptr) {
    // Gauges (levels) survive; counters and histograms start a fresh window. The cache's
    // internal Stats and the pool's own telemetry are cumulative and unaffected.
    metrics_->Reset();
    result.Set("reset", Json::Bool(true));
  }
  return result;
}

std::string QueryServer::Handle(std::string payload) {
  std::string response;
  std::mutex mutex;
  std::condition_variable cv;
  bool ready = false;
  Submit(std::move(payload), [&](std::string text) {
    std::lock_guard<std::mutex> lock(mutex);
    response = std::move(text);
    ready = true;
    cv.notify_one();
  });
  std::unique_lock<std::mutex> lock(mutex);
  // Help the pool while waiting so Handle works even on a 0-worker pool.
  while (!ready) {
    lock.unlock();
    const bool helped = ThreadPool::Global().TryRunOneTask();
    lock.lock();
    if (!helped && !ready) {
      cv.wait_for(lock, std::chrono::milliseconds(1));
    }
  }
  return response;
}

// NO_THREAD_SAFETY_ANALYSIS: clang cannot model std::unique_lock's unlock/relock help
// loop (libc++ only annotates lock_guard/scoped_lock); probcon-lint still covers it.
void QueryServer::Drain() PROBCON_NO_THREAD_SAFETY_ANALYSIS {
  std::unique_lock<std::mutex> lock(state_mutex_);
  draining_ = true;
  SetHealthGaugeLocked();
  while (inflight_ > 0) {
    // Help the pool drain instead of only blocking: the in-flight jobs may be queued
    // behind this very thread on a small pool.
    lock.unlock();
    const bool helped = ThreadPool::Global().TryRunOneTask();
    lock.lock();
    if (!helped && inflight_ > 0) {
      drained_cv_.wait_for(lock, std::chrono::milliseconds(1));
    }
  }
}

void QueryServer::FinishOne(bool degraded) {
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    --inflight_;
    if (inflight_gauge_ != nullptr) inflight_gauge_->Set(inflight_);
    if (degraded) {
      --degraded_inflight_;
      if (degraded_inflight_gauge_ != nullptr) {
        degraded_inflight_gauge_->Set(degraded_inflight_);
      }
    }
    if (inflight_ == 0) drained_cv_.notify_all();
  }
}

void QueryServer::SetHealthGaugeLocked() {
  if (health_gauge_ == nullptr) return;
  health_gauge_->Set(draining_ ? 2 : (breaker_open_ ? 1 : 0));
}

void QueryServer::RecordAdmitLocked() {
  ++window_admits_;
  if (window_admits_ + window_sheds_ >= options_.brownout.window) {
    window_admits_ /= 2;
    window_sheds_ /= 2;
  }
  if (breaker_open_) {
    ++recover_streak_;
    if (recover_streak_ >= options_.brownout.recover_admits) {
      breaker_open_ = false;
      recover_streak_ = 0;
      SetHealthGaugeLocked();
    }
  }
}

bool QueryServer::BrownoutShedLocked(RequestKind kind) {
  ++window_sheds_;
  recover_streak_ = 0;
  if (window_admits_ + window_sheds_ >= options_.brownout.window) {
    window_admits_ /= 2;
    window_sheds_ /= 2;
  }
  if (!options_.brownout.enabled) return false;
  if (!breaker_open_ && window_sheds_ >= options_.brownout.trip_sheds) {
    breaker_open_ = true;
    ++breaker_trips_;
    if (brownout_trips_counter_ != nullptr) brownout_trips_counter_->Increment();
    SetHealthGaugeLocked();
  }
  return breaker_open_ && DegradableKind(kind) &&
         degraded_inflight_ < options_.brownout.degraded_lane;
}

Json QueryServer::HealthResult() {
  std::lock_guard<std::mutex> lock(state_mutex_);
  Json result = Json::Object();
  result.Set("state", Json::String(draining_ ? "draining"
                                             : (breaker_open_ ? "degraded" : "ready")));
  result.Set("inflight", Json::Number(inflight_));
  result.Set("degraded_inflight", Json::Number(degraded_inflight_));
  result.Set("max_inflight", Json::Number(options_.max_inflight));
  Json brownout = Json::Object();
  brownout.Set("enabled", Json::Bool(options_.brownout.enabled));
  brownout.Set("breaker_open", Json::Bool(breaker_open_));
  brownout.Set("trips", Json::Number(breaker_trips_));
  brownout.Set("window_sheds", Json::Number(window_sheds_));
  brownout.Set("window_admits", Json::Number(window_admits_));
  brownout.Set("recover_streak", Json::Number(recover_streak_));
  brownout.Set("degraded_lane", Json::Number(options_.brownout.degraded_lane));
  brownout.Set("degraded_trials", Json::Number(options_.brownout.degraded_trials));
  result.Set("brownout", std::move(brownout));
  return result;
}

void QueryServer::RecordLatencyMs(double elapsed_ms, RequestKind kind) {
  if (latency_histogram_ != nullptr) latency_histogram_->Record(elapsed_ms);
  Histogram* kind_histogram = kind_latency_[static_cast<int>(kind)];
  if (kind_histogram != nullptr) kind_histogram->Record(elapsed_ms);
}

void QueryServer::ArmDeadline(std::chrono::steady_clock::time_point when,
                              std::shared_ptr<CancelToken> token) {
  {
    std::lock_guard<std::mutex> lock(watchdog_mutex_);
    deadlines_.push_back(DeadlineEntry{when, std::move(token)});
    std::push_heap(deadlines_.begin(), deadlines_.end(),
                   [](const DeadlineEntry& a, const DeadlineEntry& b) { return a.when > b.when; });
  }
  watchdog_cv_.notify_one();
}

// NO_THREAD_SAFETY_ANALYSIS: the whole loop runs under a std::unique_lock that cv-waits
// release and reacquire; clang's analysis cannot follow unique_lock (see DESIGN.md 12).
void QueryServer::WatchdogLoop() PROBCON_NO_THREAD_SAFETY_ANALYSIS {
  const auto later_first = [](const DeadlineEntry& a, const DeadlineEntry& b) {
    return a.when > b.when;
  };
  std::unique_lock<std::mutex> lock(watchdog_mutex_);
  while (true) {
    if (watchdog_shutdown_) return;
    if (deadlines_.empty()) {
      watchdog_cv_.wait(lock);
      continue;
    }
    const auto next = deadlines_.front().when;
    if (std::chrono::steady_clock::now() < next) {
      watchdog_cv_.wait_until(lock, next);
      continue;
    }
    std::pop_heap(deadlines_.begin(), deadlines_.end(), later_first);
    DeadlineEntry expired = std::move(deadlines_.back());
    deadlines_.pop_back();
    expired.token->Cancel();
  }
}

}  // namespace probcon::serve
