// Client-side channels to a query server, behind one synchronous interface:
//
//   * LoopbackChannel — calls a QueryServer in-process. No sockets, no threads beyond the
//     exec pool: the transport the unit tests and benches use, so protocol behavior is
//     testable without binding ports.
//   * TcpChannel — the framed TCP protocol against a probcond daemon.
//
// ServeClient layers envelope assembly/parsing on any channel. Request ids are assigned
// monotonically per client; channels here are synchronous (one outstanding request), so
// the id is a correlation aid for logs rather than a demultiplexing key.

#ifndef PROBCON_SRC_SERVE_CLIENT_H_
#define PROBCON_SRC_SERVE_CLIENT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "src/common/json.h"
#include "src/common/status.h"
#include "src/serve/spec.h"

namespace probcon::serve {

class QueryServer;

// One request/response exchange; `payload` and the returned string are envelope JSON.
class Channel {
 public:
  virtual ~Channel() = default;
  virtual Result<std::string> RoundTrip(const std::string& payload) = 0;
};

// In-process channel; `server` must outlive the channel.
class LoopbackChannel final : public Channel {
 public:
  explicit LoopbackChannel(QueryServer& server) : server_(server) {}
  Result<std::string> RoundTrip(const std::string& payload) override;

 private:
  QueryServer& server_;
};

// Framed-TCP channel to 127.0.0.1:port.
class TcpChannel final : public Channel {
 public:
  ~TcpChannel() override;

  static Result<std::unique_ptr<TcpChannel>> Connect(uint16_t port);

  Result<std::string> RoundTrip(const std::string& payload) override;

 private:
  explicit TcpChannel(int fd) : fd_(fd) {}

  int fd_;
};

class ServeClient {
 public:
  // Takes ownership of `channel`.
  explicit ServeClient(std::unique_ptr<Channel> channel) : channel_(std::move(channel)) {}

  // Issues one query. `params` is the raw params object; `deadline_ms <= 0` means no
  // client-requested deadline. `trace` asks the server to echo its per-stage span
  // breakdown in the response envelope's `trace` field (kNull when not requested or the
  // request failed). The returned envelope's `status` carries server-side errors; a
  // non-OK Result means the exchange itself failed (connection, framing, unparseable
  // response).
  Result<ResponseEnvelope> Query(std::string_view kind, const Json& params,
                                 double deadline_ms = 0.0, bool trace = false);

 private:
  std::unique_ptr<Channel> channel_;
  uint64_t next_id_ = 1;
};

}  // namespace probcon::serve

#endif  // PROBCON_SRC_SERVE_CLIENT_H_
