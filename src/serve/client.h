// Client-side channels to a query server, behind one synchronous interface:
//
//   * LoopbackChannel — calls a QueryServer in-process. No sockets, no threads beyond the
//     exec pool: the transport the unit tests and benches use, so protocol behavior is
//     testable without binding ports.
//   * TcpChannel — the framed TCP protocol against a probcond daemon.
//
// ServeClient layers envelope assembly/parsing on any channel. Request ids are assigned
// monotonically per client. RoundTrip keeps the classic one-outstanding-request shape;
// RoundTripBatch pipelines a whole batch over the same connection — both channels bound
// the batch to kDefaultMaxInflightPerConn requests in flight at once, mirroring the
// server-side pipelining cap, and QueryBatch matches the (possibly out-of-order)
// responses back to request order by envelope id.

#ifndef PROBCON_SRC_SERVE_CLIENT_H_
#define PROBCON_SRC_SERVE_CLIENT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/json.h"
#include "src/common/status.h"
#include "src/serve/spec.h"

namespace probcon::serve {

class QueryServer;

// One request/response exchange; `payload` and the returned string are envelope JSON.
class Channel {
 public:
  virtual ~Channel() = default;
  virtual Result<std::string> RoundTrip(const std::string& payload) = 0;

  // Sends every payload over this channel and returns the raw responses in ARRIVAL
  // order — with pipelining that is not request order; callers correlate by envelope id
  // (ServeClient::QueryBatch does). The base implementation degrades to sequential
  // RoundTrip calls; pipelining channels override it.
  virtual Result<std::vector<std::string>> RoundTripBatch(
      const std::vector<std::string>& payloads);
};

// In-process channel; `server` must outlive the channel.
class LoopbackChannel final : public Channel {
 public:
  explicit LoopbackChannel(QueryServer& server) : server_(server) {}
  Result<std::string> RoundTrip(const std::string& payload) override;

  // Pipelines through QueryServer::Submit, keeping at most kDefaultMaxInflightPerConn
  // requests in flight — the same cap the TCP transport enforces per connection — and
  // helps the exec pool while waiting so a small pool can't deadlock the batch.
  Result<std::vector<std::string>> RoundTripBatch(
      const std::vector<std::string>& payloads) override;

 private:
  QueryServer& server_;
};

// Framed-TCP channel to 127.0.0.1:port.
class TcpChannel final : public Channel {
 public:
  ~TcpChannel() override;

  static Result<std::unique_ptr<TcpChannel>> Connect(uint16_t port);

  Result<std::string> RoundTrip(const std::string& payload) override;

  // Pipelined batch: interleaves nonblocking sends with reads (poll on POLLIN|POLLOUT),
  // so the client never sits in a blocking send while the server waits for it to drain
  // responses. Caps the unsent backlog so at most ~kDefaultMaxInflightPerConn requests
  // are on the wire ahead of the oldest unanswered one.
  Result<std::vector<std::string>> RoundTripBatch(
      const std::vector<std::string>& payloads) override;

 private:
  explicit TcpChannel(int fd) : fd_(fd) {}

  int fd_;
};

class ServeClient {
 public:
  // Takes ownership of `channel`.
  explicit ServeClient(std::unique_ptr<Channel> channel) : channel_(std::move(channel)) {}

  // Issues one query. `params` is the raw params object; `deadline_ms <= 0` means no
  // client-requested deadline. `trace` asks the server to echo its per-stage span
  // breakdown in the response envelope's `trace` field (kNull when not requested or the
  // request failed). The returned envelope's `status` carries server-side errors; a
  // non-OK Result means the exchange itself failed (connection, framing, unparseable
  // response).
  Result<ResponseEnvelope> Query(std::string_view kind, const Json& params,
                                 double deadline_ms = 0.0, bool trace = false);

  // One entry of a pipelined batch; same fields as Query's parameters.
  struct BatchItem {
    std::string kind;
    Json params;
    double deadline_ms = 0.0;
    bool trace = false;
  };

  // Issues the whole batch pipelined over the channel and returns envelopes in REQUEST
  // order: responses arrive out of order and are matched back by id. A non-OK Result
  // means the exchange failed (connection, framing, a response id that matches no
  // request); per-request errors ride in each envelope's `status`.
  Result<std::vector<ResponseEnvelope>> QueryBatch(const std::vector<BatchItem>& items);

 private:
  std::unique_ptr<Channel> channel_;
  uint64_t next_id_ = 1;
};

}  // namespace probcon::serve

#endif  // PROBCON_SRC_SERVE_CLIENT_H_
