// Client-side channels to a query server, behind one synchronous interface:
//
//   * LoopbackChannel — calls a QueryServer in-process. No sockets, no threads beyond the
//     exec pool: the transport the unit tests and benches use, so protocol behavior is
//     testable without binding ports.
//   * TcpChannel — the framed TCP protocol against a probcond daemon.
//
// ServeClient layers envelope assembly/parsing on any channel. Request ids are assigned
// monotonically per client. RoundTrip keeps the classic one-outstanding-request shape;
// RoundTripBatch pipelines a whole batch over the same connection — both channels bound
// the batch to kDefaultMaxInflightPerConn requests in flight at once, mirroring the
// server-side pipelining cap, and QueryBatch matches the (possibly out-of-order)
// responses back to request order by envelope id.

#ifndef PROBCON_SRC_SERVE_CLIENT_H_
#define PROBCON_SRC_SERVE_CLIENT_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/json.h"
#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/serve/spec.h"

namespace probcon {
class MetricsRegistry;
}  // namespace probcon

namespace probcon::serve {

class QueryServer;

// One request/response exchange; `payload` and the returned string are envelope JSON.
class Channel {
 public:
  virtual ~Channel() = default;
  virtual Result<std::string> RoundTrip(const std::string& payload) = 0;

  // Sends every payload over this channel and returns the raw responses in ARRIVAL
  // order — with pipelining that is not request order; callers correlate by envelope id
  // (ServeClient::QueryBatch does). The base implementation degrades to sequential
  // RoundTrip calls; pipelining channels override it.
  virtual Result<std::vector<std::string>> RoundTripBatch(
      const std::vector<std::string>& payloads);

  // Best-effort cross-thread cancel of any in-progress exchange: the losing side of a
  // hedged pair is aborted so its thread unblocks promptly. Default is a no-op (loopback
  // exchanges are already bounded by server deadlines); TcpChannel shuts the socket down,
  // making blocked operations fail with UNAVAILABLE.
  virtual void Abort() {}
};

// In-process channel; `server` must outlive the channel.
class LoopbackChannel final : public Channel {
 public:
  explicit LoopbackChannel(QueryServer& server) : server_(server) {}
  Result<std::string> RoundTrip(const std::string& payload) override;

  // Pipelines through QueryServer::Submit, keeping at most kDefaultMaxInflightPerConn
  // requests in flight — the same cap the TCP transport enforces per connection — and
  // helps the exec pool while waiting so a small pool can't deadlock the batch.
  Result<std::vector<std::string>> RoundTripBatch(
      const std::vector<std::string>& payloads) override;

 private:
  QueryServer& server_;
};

// Framed-TCP channel to 127.0.0.1:port.
class TcpChannel final : public Channel {
 public:
  ~TcpChannel() override;

  // `timeout_ms > 0` bounds the connect AND each later exchange (RoundTrip or
  // RoundTripBatch) as a whole: an exchange still incomplete after `timeout_ms` of wall
  // time fails with UNAVAILABLE. This is the defense against stalled and slow-dripped
  // connections — without a whole-exchange bound, a peer trickling one byte per poll
  // interval defeats any per-read timeout. `timeout_ms <= 0` keeps the classic unbounded
  // blocking behavior.
  static Result<std::unique_ptr<TcpChannel>> Connect(uint16_t port, double timeout_ms = 0.0);

  Result<std::string> RoundTrip(const std::string& payload) override;

  // Pipelined batch: interleaves nonblocking sends with reads (poll on POLLIN|POLLOUT),
  // so the client never sits in a blocking send while the server waits for it to drain
  // responses. Caps the unsent backlog so at most ~kDefaultMaxInflightPerConn requests
  // are on the wire ahead of the oldest unanswered one.
  Result<std::vector<std::string>> RoundTripBatch(
      const std::vector<std::string>& payloads) override;

  // Shuts the socket down (both directions) without closing the fd, so an exchange blocked
  // in another thread observes EOF and fails with UNAVAILABLE. Safe to call concurrently
  // with RoundTrip/RoundTripBatch; the fd itself is closed only by the destructor.
  void Abort() override;

 private:
  TcpChannel(int fd, double timeout_ms) : fd_(fd), timeout_ms_(timeout_ms) {}

  int fd_;
  double timeout_ms_;
};

class ServeClient {
 public:
  // Takes ownership of `channel`.
  explicit ServeClient(std::unique_ptr<Channel> channel) : channel_(std::move(channel)) {}

  // Issues one query. `params` is the raw params object; `deadline_ms <= 0` means no
  // client-requested deadline. `trace` asks the server to echo its per-stage span
  // breakdown in the response envelope's `trace` field (kNull when not requested or the
  // request failed). The returned envelope's `status` carries server-side errors; a
  // non-OK Result means the exchange itself failed (connection, framing, unparseable
  // response).
  Result<ResponseEnvelope> Query(std::string_view kind, const Json& params,
                                 double deadline_ms = 0.0, bool trace = false);

  // One entry of a pipelined batch; same fields as Query's parameters.
  struct BatchItem {
    std::string kind;
    Json params;
    double deadline_ms = 0.0;
    bool trace = false;
  };

  // Issues the whole batch pipelined over the channel and returns envelopes in REQUEST
  // order: responses arrive out of order and are matched back by id. A non-OK Result
  // means the exchange failed (connection, framing, a response id that matches no
  // request); per-request errors ride in each envelope's `status`.
  Result<std::vector<ResponseEnvelope>> QueryBatch(const std::vector<BatchItem>& items);

 private:
  std::unique_ptr<Channel> channel_;
  uint64_t next_id_ = 1;
};

// ---------------------------------------------------------------------------
// Resilience layer: retries with decorrelated jitter, per-call deadlines, hedging.

// One decorrelated-jitter backoff step (Brooker): uniform in [base, 3 * prev], capped.
// Deterministic given the rng stream — the schedule is a pure function of the retry seed
// and the attempt sequence, never of the wall clock.
double DecorrelatedJitterBackoffMs(Rng& rng, double base_ms, double cap_ms, double prev_ms);

struct RetryOptions {
  // Total attempts per call, first try included. 1 disables retries.
  int max_attempts = 4;
  double initial_backoff_ms = 2.0;
  double max_backoff_ms = 250.0;
  // Root of the jitter stream (via DeriveStreamSeed): two clients with the same seed and
  // call sequence back off identically.
  uint64_t seed = 1;
  // Lifetime cap on retries across ALL calls of one ResilientClient — the "retry budget"
  // that stops a flaky network from turning every caller into a retry storm.
  uint64_t retry_budget = ~0ull;
  // Per-attempt wall bound handed to the channel factory (TcpFactory wires it into
  // TcpChannel::Connect); 0 leaves attempts unbounded.
  double attempt_timeout_ms = 0.0;
  // > 0 arms a hedged second batch for QueryBatch: if the primary exchange has not
  // completed after this many milliseconds, a second connection races the same batch and
  // the first complete result wins (the loser is Abort()ed). Safe because every query
  // verb is pure.
  double hedge_delay_ms = 0.0;
};

// A self-healing client: wraps a channel factory and retries idempotent-safe failures
// with capped decorrelated-jitter backoff, reconnecting after transport errors.
//
// Retry policy (all query verbs are pure, so "idempotent-safe" is about NOT retrying
// requests the server judged, only requests that never got a usable verdict):
//   * transport failures (connection refused/reset/closed mid-frame, corrupt stream,
//     exchange timeout) → drop the connection, back off, retry on a fresh one;
//   * envelope status UNAVAILABLE or RESOURCE_EXHAUSTED → server asked for a retry;
//   * every other envelope status (OK, INVALID_ARGUMENT, DEADLINE_EXCEEDED, ...) is a
//     definite verdict and is returned as-is.
// A call-level `deadline_ms` bounds the whole retry loop: remaining budget shrinks each
// attempt (and is what the server is told), and the loop returns DEADLINE_EXCEEDED rather
// than start an attempt it cannot finish.
class ResilientClient {
 public:
  using ChannelFactory = std::function<Result<std::unique_ptr<Channel>>()>;

  // `metrics`, when non-null, receives serve.client.retries / serve.client.hedges /
  // serve.client.reconnects counters. Must outlive the client.
  ResilientClient(ChannelFactory factory, RetryOptions options,
                  MetricsRegistry* metrics = nullptr);

  // A factory dialing 127.0.0.1:port with the given per-attempt timeout.
  static ChannelFactory TcpFactory(uint16_t port, double attempt_timeout_ms = 0.0);

  // As ServeClient::Query, but retried per the policy above. `deadline_ms <= 0` means no
  // call deadline (retries are then bounded only by max_attempts and the budget).
  Result<ResponseEnvelope> Query(std::string_view kind, const Json& params,
                                 double deadline_ms = 0.0, bool trace = false);

  // As ServeClient::QueryBatch, pipelined and retried: only unresolved items are re-sent
  // on retry, and with hedge_delay_ms > 0 a stalled primary races a hedge connection.
  // Every item resolves to a definite envelope — items that exhaust the retry policy come
  // back carrying the last transport/retryable status instead of an answer.
  Result<std::vector<ResponseEnvelope>> QueryBatch(
      const std::vector<ServeClient::BatchItem>& items);

  uint64_t retries() const { return retries_; }
  uint64_t hedges() const { return hedges_; }

 private:
  // Sleeps one jittered backoff step (clipped to the remaining deadline). Returns false
  // when the deadline or the retry budget is exhausted.
  bool BackoffBeforeRetry(double remaining_ms);
  Result<std::vector<std::string>> ExchangeBatch(const std::vector<std::string>& payloads);
  Status EnsureChannel();

  ChannelFactory factory_;
  RetryOptions options_;
  MetricsRegistry* metrics_;
  std::unique_ptr<Channel> channel_;
  Rng jitter_rng_;
  double prev_backoff_ms_ = 0.0;
  bool ever_connected_ = false;
  uint64_t next_id_ = 1;
  uint64_t retries_ = 0;
  uint64_t hedges_ = 0;
};

}  // namespace probcon::serve

#endif  // PROBCON_SRC_SERVE_CLIENT_H_
