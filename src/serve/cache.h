// Content-addressed memoization cache with single-flight computation.
//
// The daemon's workload is dominated by repeated queries (dashboards refreshing the same
// tables, fleets of clients asking about the same deployment), and every query here is a
// pure function of its canonical key — so memoization is semantically free. Two mechanisms
// work together:
//
//   * LRU over canonical keys with a byte budget: entries are charged key + value bytes,
//     and the least-recently-used entries are evicted when an insert would exceed the
//     budget.
//   * Single-flight: when K requests for the same uncached key arrive concurrently, one
//     becomes the leader and computes; the other K-1 block on the in-flight entry and
//     share its result. The expensive engines run once per distinct key, not once per
//     request.
//
// Errors are NOT cached: a failed computation wakes the followers with the error but
// leaves the key absent, so the next request retries. Cancellation gets one step more:
// a CANCELLED leader result (its deadline, not the followers') is never handed to
// followers — they loop and recompute under their own budgets, so a short-deadline
// leader cannot starve longer-deadline requests for the same key. (Deadline errors are
// per-request policy, not properties of the key.)
//
// Thread-safe. Metric instruments are created at construction and updated under the cache
// mutex (the instruments themselves are also internally thread-safe, so stats snapshots
// may read them concurrently).

#ifndef PROBCON_SRC_SERVE_CACHE_H_
#define PROBCON_SRC_SERVE_CACHE_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "src/common/status.h"
#include "src/obs/metrics.h"

namespace probcon::serve {

class QueryCache {
 public:
  // `metrics` may be nullptr (no instrumentation); otherwise it must outlive the cache.
  QueryCache(size_t budget_bytes, MetricsRegistry* metrics);

  QueryCache(const QueryCache&) = delete;
  QueryCache& operator=(const QueryCache&) = delete;

  // Returns the cached value for `key`, or runs `compute` (at most once across concurrent
  // callers of the same key) and caches its result. `was_cached` (optional) reports
  // whether the value was served without running `compute` in THIS call — true for both
  // direct hits and follower waits.
  Result<std::string> GetOrCompute(const std::string& key,
                                   const std::function<Result<std::string>()>& compute,
                                   bool* was_cached);

  // Point-in-time snapshot, for stats endpoints and tests.
  struct Stats {
    uint64_t hits = 0;        // direct hits + follower waits that got a value
    uint64_t misses = 0;      // leader computations started
    uint64_t coalesced = 0;   // follower waits (subset of hits)
    // Follower waits that ended in a cancelled leader and looped to recompute under their
    // own budget; each retry re-counts as a miss or a fresh coalesced wait.
    uint64_t follower_retries = 0;
    uint64_t evictions = 0;
    size_t entry_count = 0;
    size_t entry_bytes = 0;
  };
  Stats snapshot() const;

 private:
  struct Entry {
    std::string value;
    size_t charged_bytes = 0;
    std::list<std::string>::iterator lru_it;
  };

  // One in-flight computation; followers wait on `cv` until `done`.
  struct Flight {
    std::condition_variable cv;
    bool done = false;
    Result<std::string> result = Status(StatusCode::kInternal, "flight not finished");
  };

  // Inserts `key -> value` and evicts LRU entries down to the budget. Mutex held.
  void InsertLocked(const std::string& key, const std::string& value);

  const size_t budget_bytes_;

  mutable std::mutex mutex_;
  std::list<std::string> lru_;  // Front = most recent.
  std::map<std::string, Entry> entries_;
  std::map<std::string, std::shared_ptr<Flight>> flights_;

  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t coalesced_ = 0;
  uint64_t follower_retries_ = 0;
  uint64_t evictions_ = 0;
  size_t entry_bytes_ = 0;

  // Pre-created instruments (nullptr when metrics are disabled); updated under mutex_.
  Counter* hit_counter_ = nullptr;
  Counter* miss_counter_ = nullptr;
  Counter* coalesced_counter_ = nullptr;
  Counter* follower_retry_counter_ = nullptr;
  Counter* eviction_counter_ = nullptr;
  Gauge* bytes_gauge_ = nullptr;
  Gauge* entries_gauge_ = nullptr;
};

}  // namespace probcon::serve

#endif  // PROBCON_SRC_SERVE_CACHE_H_
