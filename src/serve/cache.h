// Content-addressed memoization cache, sharded by key hash, with single-flight
// computation per shard.
//
// The daemon's workload is dominated by repeated queries (dashboards refreshing the same
// tables, fleets of clients asking about the same deployment), and every query here is a
// pure function of its canonical key — so memoization is semantically free. Three
// mechanisms work together:
//
//   * Sharding: keys hash to one of N independent shards, each with its own mutex, LRU
//     list, flight table, and byte budget (total budget / N). Warm hits on distinct keys
//     therefore never contend on a shared lock — which is what lets the reactor threads
//     answer cache hits inline at wire speed while engine computations run elsewhere.
//   * LRU over canonical keys with a byte budget: entries are charged key + value bytes,
//     and the least-recently-used entries of the owning shard are evicted when an insert
//     would exceed that shard's budget.
//   * Single-flight: when K requests for the same uncached key arrive concurrently, one
//     becomes the leader and computes; the other K-1 block on the in-flight entry and
//     share its result. A key maps to exactly one shard, so sharding preserves the
//     "expensive engines run once per distinct key" guarantee unchanged.
//
// Errors are NOT cached: a failed computation wakes the followers with the error but
// leaves the key absent, so the next request retries. Cancellation gets one step more:
// a CANCELLED leader result (its deadline, not the followers') is never handed to
// followers — they loop and recompute under their own budgets, so a short-deadline
// leader cannot starve longer-deadline requests for the same key. (Deadline errors are
// per-request policy, not properties of the key.)
//
// Thread-safe. Metric instruments are created at construction and shared across shards
// (counters/gauges are internally atomic, so shards update them without coordination and
// the stats verb reads a consistent aggregate); snapshot() locks shards one at a time and
// sums their books.

#ifndef PROBCON_SRC_SERVE_CACHE_H_
#define PROBCON_SRC_SERVE_CACHE_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/common/thread_annotations.h"
#include "src/obs/metrics.h"

namespace probcon::serve {

// Default shard count: enough that a handful of reactor threads plus the exec pool rarely
// collide on one shard mutex, small enough that the per-shard budget stays far above any
// single response.
inline constexpr int kDefaultCacheShards = 8;

class QueryCache {
 public:
  // `metrics` may be nullptr (no instrumentation); otherwise it must outlive the cache.
  // `shard_count` must be >= 1; each shard owns budget_bytes / shard_count bytes.
  QueryCache(size_t budget_bytes, MetricsRegistry* metrics,
             int shard_count = kDefaultCacheShards);

  QueryCache(const QueryCache&) = delete;
  QueryCache& operator=(const QueryCache&) = delete;

  // Returns the cached value for `key`, or runs `compute` (at most once across concurrent
  // callers of the same key) and caches its result. `was_cached` (optional) reports
  // whether the value was served without running `compute` in THIS call — true for both
  // direct hits and follower waits.
  Result<std::string> GetOrCompute(const std::string& key,
                                   const std::function<Result<std::string>()>& compute,
                                   bool* was_cached);

  // Non-blocking probe: on a direct hit, refreshes the entry's LRU position, counts the
  // hit, fills `*value`, and returns true. Returns false for absent keys AND for keys
  // with a computation in flight — it never waits, so a reactor thread can call it on the
  // hot path and fall back to the (possibly blocking) GetOrCompute path off-thread.
  bool TryGet(const std::string& key, std::string* value);

  int shard_count() const { return static_cast<int>(shards_.size()); }

  // Point-in-time snapshot aggregated across shards, for stats endpoints and tests.
  struct Stats {
    uint64_t hits = 0;        // direct hits + follower waits that got a value
    uint64_t misses = 0;      // leader computations started
    uint64_t coalesced = 0;   // follower waits (subset of hits)
    // Follower waits that ended in a cancelled leader and looped to recompute under their
    // own budget; each retry re-counts as a miss or a fresh coalesced wait.
    uint64_t follower_retries = 0;
    uint64_t evictions = 0;
    size_t entry_count = 0;
    size_t entry_bytes = 0;
  };
  Stats snapshot() const;

 private:
  struct Entry {
    std::string value;
    size_t charged_bytes = 0;
    std::list<std::string>::iterator lru_it;
  };

  // One in-flight computation; followers wait on `cv` until `done`.
  struct Flight {
    std::condition_variable cv;
    bool done = false;
    Result<std::string> result = Status(StatusCode::kInternal, "flight not finished");
  };

  // One independent cache: everything below `mutex` is guarded by it. Lock-order
  // invariant: a shard mutex is a LEAF on the engine path — GetOrCompute drops it around
  // both `compute()` and the pool help loop, so it is never held across engine execution
  // (see DESIGN.md decision 12).
  struct Shard {
    mutable std::mutex mutex;
    std::list<std::string> lru PROBCON_GUARDED_BY(mutex);  // Front = most recent.
    std::map<std::string, Entry> entries PROBCON_GUARDED_BY(mutex);
    std::map<std::string, std::shared_ptr<Flight>> flights PROBCON_GUARDED_BY(mutex);
    uint64_t hits PROBCON_GUARDED_BY(mutex) = 0;
    uint64_t misses PROBCON_GUARDED_BY(mutex) = 0;
    uint64_t coalesced PROBCON_GUARDED_BY(mutex) = 0;
    uint64_t follower_retries PROBCON_GUARDED_BY(mutex) = 0;
    uint64_t evictions PROBCON_GUARDED_BY(mutex) = 0;
    size_t entry_bytes PROBCON_GUARDED_BY(mutex) = 0;
  };

  Shard& ShardFor(const std::string& key);

  // Inserts `key -> value` into `shard` and evicts LRU entries down to the shard budget.
  void InsertLocked(Shard& shard, const std::string& key, const std::string& value)
      PROBCON_REQUIRES(shard.mutex);

  const size_t shard_budget_bytes_;
  std::vector<std::unique_ptr<Shard>> shards_;

  // Pre-created instruments (nullptr when metrics are disabled); counters/gauges are
  // atomic, so shards update them concurrently (gauges via Add deltas).
  Counter* hit_counter_ = nullptr;
  Counter* miss_counter_ = nullptr;
  Counter* coalesced_counter_ = nullptr;
  Counter* follower_retry_counter_ = nullptr;
  Counter* eviction_counter_ = nullptr;
  Gauge* bytes_gauge_ = nullptr;
  Gauge* entries_gauge_ = nullptr;
};

}  // namespace probcon::serve

#endif  // PROBCON_SRC_SERVE_CACHE_H_
