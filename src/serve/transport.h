// TCP transport for the query server: a loopback listener that speaks the framed protocol
// (framing.h) and forwards payloads to a QueryServer.
//
// Scope: this is an analysis daemon for operators and dashboards, not an internet-facing
// service — it binds 127.0.0.1 only. One reader thread per connection (connection counts
// are small; the expensive work happens on the exec pool anyway), responses are written
// back under a per-connection mutex in completion order. A framing error (bad magic,
// oversized length) closes the connection; request-level errors travel inside response
// envelopes and keep the connection open.

#ifndef PROBCON_SRC_SERVE_TRANSPORT_H_
#define PROBCON_SRC_SERVE_TRANSPORT_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/common/status.h"
#include "src/serve/server.h"

namespace probcon::serve {

class TcpServer {
 public:
  // `server` must outlive this object. `metrics` may be nullptr; when given (and
  // outliving this object) the transport records connection churn
  // (serve.connections.{accepted,closed} counters, serve.connections.active gauge) and
  // response write latency (serve.stage_ms.write histogram). Instruments are internally
  // thread-safe, so reader threads record without a transport lock.
  explicit TcpServer(QueryServer& server, MetricsRegistry* metrics = nullptr);
  ~TcpServer();

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  // Binds 127.0.0.1:`port` (0 = ephemeral) and starts accepting. Fails with UNAVAILABLE
  // if the port is taken.
  Status Start(uint16_t port);

  // The bound port (after a successful Start).
  uint16_t port() const { return port_; }

  // Stops accepting, closes every connection, joins all threads. Idempotent; does NOT
  // drain the QueryServer (callers drain first for graceful shutdown, so in-flight
  // responses still reach their connections).
  void Stop();

  // Number of currently registered connections. Readers self-reap on disconnect, so this
  // tracks live clients (it does not grow without bound on churn). For tests and stats.
  size_t connection_count() const;

 private:
  struct Connection {
    int fd = -1;
    std::mutex write_mutex;
    bool closed = false;  // Guarded by write_mutex.
    std::thread reader;
  };

  void AcceptLoop();
  void ReaderLoop(const std::shared_ptr<Connection>& connection);
  // Static on purpose: response callbacks capture only refcounted/registry-owned state
  // (never `this`), so a response that completes while the transport is tearing down
  // cannot touch a dead TcpServer. `write_ms` may be nullptr.
  static void WriteFrame(const std::shared_ptr<Connection>& connection,
                         const std::string& payload, Histogram* write_ms);
  static void CloseConnection(const std::shared_ptr<Connection>& connection);

  QueryServer& server_;
  // Pre-created instruments (nullptr when metrics are disabled).
  Counter* accepted_counter_ = nullptr;
  Counter* closed_counter_ = nullptr;
  Gauge* active_gauge_ = nullptr;
  Histogram* write_ms_ = nullptr;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  std::thread acceptor_;

  mutable std::mutex connections_mutex_;
  // Live connections only: ReaderLoop removes (and detaches) its own entry when the
  // client disconnects; Stop() swaps out and joins whatever is left.
  std::vector<std::shared_ptr<Connection>> connections_;
};

}  // namespace probcon::serve

#endif  // PROBCON_SRC_SERVE_TRANSPORT_H_
