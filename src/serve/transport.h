// TCP transport for the query server: a loopback listener that speaks the framed protocol
// (framing.h) and forwards payloads to a QueryServer.
//
// Scope: this is an analysis daemon for operators and dashboards, not an internet-facing
// service — it binds 127.0.0.1 only. The transport is a multi-reactor epoll event loop:
//
//   * N reactor shards, each a thread owning one epoll instance and a disjoint set of
//     connections. The acceptor assigns each new connection to a shard (round-robin) and
//     never touches it again; all per-connection state is single-threaded inside its
//     shard, so the hot path takes no per-connection locks at all.
//   * Pipelining: a connection may have up to `max_inflight_per_conn` requests in flight.
//     Responses carry the request id and complete out of order; when a connection is at
//     its cap the shard stops reading from it (kernel-buffer backpressure) and resumes as
//     responses complete. Admission control in the QueryServer still applies on top.
//   * Bounded writes: responses queue in a per-connection outbound buffer flushed on
//     EPOLLOUT. A consumer that stops reading accumulates outbound bytes until
//     `max_conn_outbound_bytes`, at which point the shard disconnects it — a slow client
//     can cost at most one buffer, never unbounded daemon memory.
//   * Shard-local teardown: Stop() signals each reactor and joins it; the reactor thread
//     itself closes its fds and frees its connections on the way out, so no other thread
//     ever races a shard's epoll set. Responses that complete after teardown are dropped
//     at the (mutex-guarded) mailbox, never written to a dead fd.
//
// A framing error (bad magic, oversized length) closes the connection; request-level
// errors travel inside response envelopes and keep the connection open.

#ifndef PROBCON_SRC_SERVE_TRANSPORT_H_
#define PROBCON_SRC_SERVE_TRANSPORT_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "src/common/status.h"
#include "src/serve/server.h"

namespace probcon::serve {

struct TcpServerOptions {
  // Reactor shard count; <= 0 picks min(hardware_concurrency, 4), at least 1.
  int reactors = 0;
  // Per-connection pipelining cap: reads pause while this many requests are in flight.
  int max_inflight_per_conn = kDefaultMaxInflightPerConn;
  // Slow-consumer bound: a connection whose pending outbound bytes exceed this is
  // disconnected. Must comfortably exceed the largest single response frame.
  size_t max_conn_outbound_bytes = 16u << 20;
  // listen(2) backlog.
  int listen_backlog = 256;
};

class TcpServer {
 public:
  // `server` must outlive this object. `metrics` may be nullptr; when given (and
  // outliving this object) the transport records connection churn
  // (serve.connections.{accepted,closed} counters, serve.connections.active gauge plus a
  // per-shard serve.connections.active.shard<k> gauge), response write latency
  // (serve.stage_ms.write) and per-wakeup reactor processing time (serve.reactor.loop_ms).
  // Instruments are internally thread-safe, so shards record without a transport lock.
  explicit TcpServer(QueryServer& server, MetricsRegistry* metrics = nullptr,
                     TcpServerOptions options = {});
  ~TcpServer();

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  // Binds 127.0.0.1:`port` (0 = ephemeral), spins up the reactor shards, and starts
  // accepting. Fails with UNAVAILABLE if the port is taken.
  Status Start(uint16_t port);

  // The bound port (after a successful Start).
  uint16_t port() const { return port_; }

  // Stops accepting, tears down every reactor shard (each shard closes its own
  // connections on its own thread), joins all threads. Idempotent; does NOT drain the
  // QueryServer (callers drain first for graceful shutdown, so in-flight responses still
  // reach their connections).
  void Stop();

  // Number of currently registered connections, summed across shards. Shards reap
  // disconnected clients inline, so this tracks live clients. For tests and stats.
  size_t connection_count() const;

  int reactor_count() const { return static_cast<int>(reactors_.size()); }

 private:
  class Reactor;

  void AcceptLoop();

  QueryServer& server_;
  const TcpServerOptions options_;
  MetricsRegistry* const metrics_;
  // Pre-created instruments (nullptr when metrics are disabled).
  Counter* accepted_counter_ = nullptr;
  Counter* closed_counter_ = nullptr;
  Gauge* active_gauge_ = nullptr;
  Histogram* write_ms_ = nullptr;
  Histogram* loop_ms_ = nullptr;

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  std::thread acceptor_;
  uint64_t next_reactor_ = 0;  // Acceptor-thread only: round-robin shard assignment.

  std::vector<std::unique_ptr<Reactor>> reactors_;
};

}  // namespace probcon::serve

#endif  // PROBCON_SRC_SERVE_TRANSPORT_H_
