// Small dense linear algebra: just enough to solve the linear systems that Markov reliability
// models produce (steady-state balance equations, absorbing-chain expected hitting times).
// Row-major doubles; sizes here are tens to a few thousand states, so no blocking or SIMD.

#ifndef PROBCON_SRC_LINALG_MATRIX_H_
#define PROBCON_SRC_LINALG_MATRIX_H_

#include <cstddef>
#include <string>
#include <vector>

#include "src/common/check.h"
#include "src/common/status.h"

namespace probcon {

using Vector = std::vector<double>;

class Matrix {
 public:
  Matrix() = default;
  Matrix(size_t rows, size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  static Matrix Identity(size_t n);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  double& At(size_t r, size_t c) {
    DCHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  double At(size_t r, size_t c) const {
    DCHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  Matrix Transposed() const;
  Matrix operator*(const Matrix& other) const;
  Vector operator*(const Vector& v) const;
  Matrix operator+(const Matrix& other) const;
  Matrix operator-(const Matrix& other) const;
  Matrix Scaled(double s) const;

  // Max-abs-element norm.
  double MaxAbs() const;

  std::string ToString() const;

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<double> data_;
};

// LU decomposition with partial pivoting; reusable for multiple right-hand sides.
class LuDecomposition {
 public:
  // Factors `a` (square). Returns an error Status if the matrix is singular to working
  // precision.
  static Result<LuDecomposition> Factor(const Matrix& a);

  // Solves A x = b.
  Vector Solve(const Vector& b) const;

  // Determinant of the factored matrix.
  double Determinant() const;

 private:
  LuDecomposition(Matrix lu, std::vector<size_t> pivots, int pivot_sign)
      : lu_(std::move(lu)), pivots_(std::move(pivots)), pivot_sign_(pivot_sign) {}

  Matrix lu_;
  std::vector<size_t> pivots_;
  int pivot_sign_ = 1;
};

// Convenience: solves A x = b, returning an error for singular A.
Result<Vector> SolveLinearSystem(const Matrix& a, const Vector& b);

}  // namespace probcon

#endif  // PROBCON_SRC_LINALG_MATRIX_H_
