#include "src/linalg/matrix.h"

#include <cmath>
#include <numeric>
#include <sstream>

namespace probcon {

Matrix Matrix::Identity(size_t n) {
  Matrix m(n, n);
  for (size_t i = 0; i < n; ++i) {
    m.At(i, i) = 1.0;
  }
  return m;
}

Matrix Matrix::Transposed() const {
  Matrix t(cols_, rows_);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t c = 0; c < cols_; ++c) {
      t.At(c, r) = At(r, c);
    }
  }
  return t;
}

Matrix Matrix::operator*(const Matrix& other) const {
  CHECK_EQ(cols_, other.rows_);
  Matrix out(rows_, other.cols_);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t k = 0; k < cols_; ++k) {
      const double a = At(r, k);
      if (a == 0.0) {
        continue;
      }
      for (size_t c = 0; c < other.cols_; ++c) {
        out.At(r, c) += a * other.At(k, c);
      }
    }
  }
  return out;
}

Vector Matrix::operator*(const Vector& v) const {
  CHECK_EQ(cols_, v.size());
  Vector out(rows_, 0.0);
  for (size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    for (size_t c = 0; c < cols_; ++c) {
      acc += At(r, c) * v[c];
    }
    out[r] = acc;
  }
  return out;
}

Matrix Matrix::operator+(const Matrix& other) const {
  CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  Matrix out = *this;
  for (size_t i = 0; i < data_.size(); ++i) {
    out.data_[i] += other.data_[i];
  }
  return out;
}

Matrix Matrix::operator-(const Matrix& other) const {
  CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  Matrix out = *this;
  for (size_t i = 0; i < data_.size(); ++i) {
    out.data_[i] -= other.data_[i];
  }
  return out;
}

Matrix Matrix::Scaled(double s) const {
  Matrix out = *this;
  for (double& x : out.data_) {
    x *= s;
  }
  return out;
}

double Matrix::MaxAbs() const {
  double m = 0.0;
  for (const double x : data_) {
    m = std::max(m, std::fabs(x));
  }
  return m;
}

std::string Matrix::ToString() const {
  std::ostringstream os;
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t c = 0; c < cols_; ++c) {
      os << (c == 0 ? "" : " ") << At(r, c);
    }
    os << "\n";
  }
  return os.str();
}

Result<LuDecomposition> LuDecomposition::Factor(const Matrix& a) {
  CHECK_EQ(a.rows(), a.cols());
  const size_t n = a.rows();
  Matrix lu = a;
  std::vector<size_t> pivots(n);
  std::iota(pivots.begin(), pivots.end(), size_t{0});
  int sign = 1;

  for (size_t col = 0; col < n; ++col) {
    // Partial pivoting: pick the largest magnitude entry in this column at or below the
    // diagonal.
    size_t pivot_row = col;
    double best = std::fabs(lu.At(col, col));
    for (size_t r = col + 1; r < n; ++r) {
      const double mag = std::fabs(lu.At(r, col));
      if (mag > best) {
        best = mag;
        pivot_row = r;
      }
    }
    if (best < 1e-300) {
      return Status(StatusCode::kInvalidArgument, "matrix is singular to working precision");
    }
    if (pivot_row != col) {
      for (size_t c = 0; c < n; ++c) {
        std::swap(lu.At(col, c), lu.At(pivot_row, c));
      }
      std::swap(pivots[col], pivots[pivot_row]);
      sign = -sign;
    }
    const double pivot = lu.At(col, col);
    for (size_t r = col + 1; r < n; ++r) {
      const double factor = lu.At(r, col) / pivot;
      lu.At(r, col) = factor;
      for (size_t c = col + 1; c < n; ++c) {
        lu.At(r, c) -= factor * lu.At(col, c);
      }
    }
  }
  return LuDecomposition(std::move(lu), std::move(pivots), sign);
}

Vector LuDecomposition::Solve(const Vector& b) const {
  const size_t n = lu_.rows();
  CHECK_EQ(b.size(), n);
  Vector x(n);
  for (size_t i = 0; i < n; ++i) {
    x[i] = b[pivots_[i]];
  }
  // Forward substitution (L has implicit unit diagonal).
  for (size_t r = 1; r < n; ++r) {
    double acc = x[r];
    for (size_t c = 0; c < r; ++c) {
      acc -= lu_.At(r, c) * x[c];
    }
    x[r] = acc;
  }
  // Back substitution.
  for (size_t r = n; r-- > 0;) {
    double acc = x[r];
    for (size_t c = r + 1; c < n; ++c) {
      acc -= lu_.At(r, c) * x[c];
    }
    x[r] = acc / lu_.At(r, r);
  }
  return x;
}

double LuDecomposition::Determinant() const {
  double det = pivot_sign_;
  for (size_t i = 0; i < lu_.rows(); ++i) {
    det *= lu_.At(i, i);
  }
  return det;
}

Result<Vector> SolveLinearSystem(const Matrix& a, const Vector& b) {
  auto lu = LuDecomposition::Factor(a);
  if (!lu.ok()) {
    return lu.status();
  }
  return lu->Solve(b);
}

}  // namespace probcon
