// Named metric instruments for simulation runs (design sibling of SampleStats, but
// streaming): a Counter is a monotone event count, a Gauge a last-write-wins level, a
// Histogram a bucketed distribution that keeps only per-bucket counts plus streaming
// count/sum/min/max — it never retains individual samples, so million-commit runs cost O(1)
// memory per instrument.
//
// Instruments live in a MetricsRegistry keyed by name; lookups create on first use so
// call-sites need no registration step. Registries iterate in name order, which makes
// exporters (src/obs/export.h) byte-deterministic for deterministic runs.

#ifndef PROBCON_SRC_OBS_METRICS_H_
#define PROBCON_SRC_OBS_METRICS_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace probcon {

class Counter {
 public:
  void Increment(uint64_t delta = 1) { value_ += delta; }
  uint64_t value() const { return value_; }

 private:
  uint64_t value_ = 0;
};

class Gauge {
 public:
  void Set(double value) { value_ = value; }
  void Add(double delta) { value_ += delta; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

// Bucket layout for a Histogram: `bounds` are strictly increasing upper bounds; a value v
// lands in the first bucket with v <= bound, and values above the last bound land in an
// implicit overflow bucket.
struct HistogramOptions {
  std::vector<double> bounds;

  // Explicit upper bounds (must be strictly increasing, non-empty).
  static HistogramOptions Fixed(std::vector<double> bounds);

  // Exponential bucketing: bounds first, first*factor, first*factor^2, ... (`bucket_count`
  // bounds total). Requires first > 0, factor > 1.
  static HistogramOptions Exponential(double first_bound, double factor, int bucket_count);

  // Default layout for millisecond latencies: 1ms..~8s, doubling.
  static HistogramOptions DefaultLatencyMs() { return Exponential(1.0, 2.0, 14); }
};

class Histogram {
 public:
  explicit Histogram(HistogramOptions options = HistogramOptions::DefaultLatencyMs());

  void Record(double value);

  uint64_t count() const { return count_; }
  bool empty() const { return count_ == 0; }
  double sum() const { return sum_; }
  double Mean() const;
  double Min() const;
  double Max() const;

  const std::vector<double>& bucket_bounds() const { return bounds_; }
  // bucket_bounds().size() + 1 entries; the last is the overflow bucket.
  const std::vector<uint64_t>& bucket_counts() const { return counts_; }

  // Quantile estimate (q in [0, 1]) by linear interpolation inside the containing bucket;
  // exact only up to bucket resolution, clamped to the observed [Min, Max].
  double ApproxQuantile(double q) const;

 private:
  std::vector<double> bounds_;
  std::vector<uint64_t> counts_;
  uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Name -> instrument maps, one per kind (the same name may exist as different kinds; they
// are distinct instruments). Get* creates on first use; `options` on GetHistogram only
// applies at creation.
class MetricsRegistry {
 public:
  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  Histogram& GetHistogram(const std::string& name,
                          const HistogramOptions& options = HistogramOptions::DefaultLatencyMs());

  // Read-side lookups; nullptr when the instrument was never touched.
  const Counter* FindCounter(const std::string& name) const;
  const Gauge* FindGauge(const std::string& name) const;
  const Histogram* FindHistogram(const std::string& name) const;

  const std::map<std::string, Counter>& counters() const { return counters_; }
  const std::map<std::string, Gauge>& gauges() const { return gauges_; }
  const std::map<std::string, Histogram>& histograms() const { return histograms_; }

  bool empty() const { return counters_.empty() && gauges_.empty() && histograms_.empty(); }

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace probcon

#endif  // PROBCON_SRC_OBS_METRICS_H_
