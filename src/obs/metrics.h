// Named metric instruments for simulation runs AND the serving path (design sibling of
// SampleStats, but streaming): a Counter is a monotone event count, a Gauge a
// last-write-wins level, a Histogram a bucketed distribution that keeps only per-bucket
// counts plus streaming count/sum/min/max — it never retains individual samples, so
// million-commit runs cost O(1) memory per instrument.
//
// Instruments live in a MetricsRegistry keyed by name; lookups create on first use so
// call-sites need no registration step. A name identifies exactly ONE instrument kind:
// requesting an existing name as a different kind (or a histogram with different bucket
// bounds) is a programming error and CHECK-fails naming the conflicting instrument, so a
// counter and a gauge can never silently shadow each other in an export. Registries
// iterate in name order, which makes exporters (src/obs/export.h) byte-deterministic for
// deterministic runs.
//
// Thread safety: Counter and Gauge are lock-free atomics, Histogram::Record takes a
// per-instrument mutex, and the registry's Get*/Find* lookups are internally locked — so
// the serving daemon's request threads can update instruments concurrently and a stats
// endpoint can SnapshotInto() a consistent copy while traffic flows. The raw map
// accessors (counters()/gauges()/histograms()) remain unsynchronized views: iterate them
// only when no thread can be creating instruments (single-threaded simulation exports, or
// a private snapshot registry).

#ifndef PROBCON_SRC_OBS_METRICS_H_
#define PROBCON_SRC_OBS_METRICS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/thread_annotations.h"

namespace probcon {

class Counter {
 public:
  Counter() = default;
  Counter(const Counter& other) : value_(other.value()) {}
  Counter& operator=(const Counter&) = delete;

  void Increment(uint64_t delta = 1) { value_.fetch_add(delta, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

  // The underlying cell, for wiring into progress hooks that take a raw atomic (the
  // analysis engines report trial/configuration progress through std::atomic<uint64_t>*
  // so they stay free of obs dependencies).
  std::atomic<uint64_t>& cell() { return value_; }

 private:
  std::atomic<uint64_t> value_{0};
};

class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge& other) : value_(other.value()) {}
  Gauge& operator=(const Gauge&) = delete;

  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  void Add(double delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

// Bucket layout for a Histogram: `bounds` are strictly increasing upper bounds; a value v
// lands in the first bucket with v <= bound, and values above the last bound land in an
// implicit overflow bucket.
struct HistogramOptions {
  std::vector<double> bounds;

  // Explicit upper bounds (must be strictly increasing, non-empty).
  static HistogramOptions Fixed(std::vector<double> bounds);

  // Exponential bucketing: bounds first, first*factor, first*factor^2, ... (`bucket_count`
  // bounds total). Requires first > 0, factor > 1.
  static HistogramOptions Exponential(double first_bound, double factor, int bucket_count);

  // Default layout for millisecond latencies: 1ms..~8s, doubling.
  static HistogramOptions DefaultLatencyMs() { return Exponential(1.0, 2.0, 14); }

  // Fine-grained layout for served-request latencies in milliseconds: 1us..~8s, doubling.
  // Warm cache hits sit around 10us, so the default 1ms-floor layout would collapse the
  // entire warm distribution into one bucket.
  static HistogramOptions ServeLatencyMs() { return Exponential(0.001, 2.0, 24); }
};

// A point-in-time copy of a Histogram's state: what exporters and stats endpoints consume.
// Quantiles are computed here, from the frozen bucket counts.
struct HistogramSnapshot {
  std::vector<double> bounds;
  std::vector<uint64_t> counts;  // bounds.size() + 1; last is the overflow bucket.
  uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;

  bool empty() const { return count == 0; }
  double Mean() const;

  // Quantile estimate (q in [0, 1]) by linear interpolation inside the containing bucket;
  // exact up to bucket resolution, clamped to the observed [min, max]. Requires count > 0.
  double Quantile(double q) const;
};

class Histogram {
 public:
  explicit Histogram(HistogramOptions options = HistogramOptions::DefaultLatencyMs());
  Histogram(const Histogram& other);
  Histogram& operator=(const Histogram&) = delete;

  void Record(double value);

  // Consistent copy of the full state, taken under the instrument lock.
  HistogramSnapshot snapshot() const;

  uint64_t count() const;
  bool empty() const { return count() == 0; }
  double sum() const;
  double Mean() const;
  double Min() const;
  double Max() const;

  // Bucket layout is immutable after construction, so this needs no lock.
  const std::vector<double>& bucket_bounds() const { return bounds_; }
  // bucket_bounds().size() + 1 entries; the last is the overflow bucket. Copied under the
  // instrument lock.
  std::vector<uint64_t> bucket_counts() const;

  // Convenience wrapper over snapshot().Quantile(q).
  double ApproxQuantile(double q) const;

  void Reset();

 private:
  const std::vector<double> bounds_;

  // Instrument lock. LEAF by construction: Record/snapshot hold it only around plain
  // loads/stores, never while calling out (see DESIGN.md decision 12).
  mutable std::mutex mutex_;
  std::vector<uint64_t> counts_ PROBCON_GUARDED_BY(mutex_);
  uint64_t count_ PROBCON_GUARDED_BY(mutex_) = 0;
  double sum_ PROBCON_GUARDED_BY(mutex_) = 0.0;
  double min_ PROBCON_GUARDED_BY(mutex_) = 0.0;
  double max_ PROBCON_GUARDED_BY(mutex_) = 0.0;
};

// Name -> instrument maps, one per kind. Get* creates on first use and CHECK-fails when
// `name` already exists as a different kind, or when GetHistogram is called with bucket
// bounds that differ from the instrument's existing layout.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  Histogram& GetHistogram(const std::string& name,
                          const HistogramOptions& options = HistogramOptions::DefaultLatencyMs());

  // Read-side lookups; nullptr when the instrument was never touched.
  const Counter* FindCounter(const std::string& name) const;
  const Gauge* FindGauge(const std::string& name) const;
  const Histogram* FindHistogram(const std::string& name) const;

  // Unsynchronized map views (see the thread-safety note in the file comment). The
  // analysis escapes below are the CONTRACT, not an oversight: callers promise no
  // concurrent instrument creation while iterating.
  // NOLINTNEXTLINE(probcon-guarded-field): documented unsynchronized view; callers serialize
  const std::map<std::string, Counter>& counters() const PROBCON_NO_THREAD_SAFETY_ANALYSIS { return counters_; }
  // NOLINTNEXTLINE(probcon-guarded-field): documented unsynchronized view; callers serialize
  const std::map<std::string, Gauge>& gauges() const PROBCON_NO_THREAD_SAFETY_ANALYSIS { return gauges_; }
  // NOLINTNEXTLINE(probcon-guarded-field): documented unsynchronized view; callers serialize
  const std::map<std::string, Histogram>& histograms() const PROBCON_NO_THREAD_SAFETY_ANALYSIS { return histograms_; }

  bool empty() const;

  // Deep-copies every instrument into `out` (which should be empty), taking each
  // instrument's own synchronization — safe while other threads keep updating this
  // registry. `out` is then private to the caller and can be exported without locks.
  void SnapshotInto(MetricsRegistry* out) const;

  // Zeroes every counter and histogram — the "reset" of a stats window. Gauges are
  // levels (in-flight requests, cache bytes), not rates, so they keep their values.
  void Reset();

 private:
  // Registry lock, ordered BEFORE the per-instrument Histogram lock: GetHistogram copies
  // a Histogram (which takes the source instrument's lock) while holding this. That edge
  // is in the lock-order graph via the call path (probcon-lint --dump-lock-graph).
  mutable std::mutex mutex_;
  std::map<std::string, Counter> counters_ PROBCON_GUARDED_BY(mutex_);
  std::map<std::string, Gauge> gauges_ PROBCON_GUARDED_BY(mutex_);
  std::map<std::string, Histogram> histograms_ PROBCON_GUARDED_BY(mutex_);
};

}  // namespace probcon

#endif  // PROBCON_SRC_OBS_METRICS_H_
