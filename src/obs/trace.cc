#include "src/obs/trace.h"

#include <utility>

#include "src/common/check.h"

namespace probcon {

std::string_view TraceEventTypeName(TraceEventType type) {
  switch (type) {
    case TraceEventType::kElectionStarted:
      return "election_started";
    case TraceEventType::kLeaderElected:
      return "leader_elected";
    case TraceEventType::kViewChangeStarted:
      return "view_change_started";
    case TraceEventType::kNewViewAdopted:
      return "new_view_adopted";
    case TraceEventType::kCommit:
      return "commit";
    case TraceEventType::kMessageDropped:
      return "message_dropped";
    case TraceEventType::kNodeCrashed:
      return "node_crashed";
    case TraceEventType::kNodeRecovered:
      return "node_recovered";
    case TraceEventType::kClientSubmitted:
      return "client_submitted";
    case TraceEventType::kSnapshotTaken:
      return "snapshot_taken";
    case TraceEventType::kCheckpointStable:
      return "checkpoint_stable";
    case TraceEventType::kRoundAdvanced:
      return "round_advanced";
    case TraceEventType::kDecided:
      return "decided";
    case TraceEventType::kSafetyViolation:
      return "safety_violation";
    case TraceEventType::kRegimeStarted:
      return "regime_started";
    case TraceEventType::kRegimeEnded:
      return "regime_ended";
    case TraceEventType::kStateLost:
      return "state_lost";
  }
  return "?";
}

size_t TraceLog::CountOf(TraceEventType type, int node) const {
  size_t count = 0;
  for (const TraceEvent& event : events_) {
    if (event.type == type && (node == -2 || event.node == node)) {
      ++count;
    }
  }
  return count;
}

std::vector<TraceEvent> TraceLog::EventsOfType(TraceEventType type) const {
  std::vector<TraceEvent> result;
  for (const TraceEvent& event : events_) {
    if (event.type == type) {
      result.push_back(event);
    }
  }
  return result;
}

Tracer::Tracer(TraceLog* log, MetricsRegistry* metrics, Clock clock)
    : log_(log), metrics_(metrics), clock_(std::move(clock)) {
  CHECK(log != nullptr);
  CHECK(clock_ != nullptr);
}

void Tracer::Record(TraceEventType type, int node, int peer, uint64_t value,
                    std::string detail) {
  if (log_ == nullptr) {
    return;
  }
  TraceEvent event;
  event.time = clock_();
  event.type = type;
  event.node = node;
  event.peer = peer;
  event.value = value;
  event.detail = std::move(detail);
  log_->Append(std::move(event));
}

void Tracer::CounterAdd(const std::string& name, uint64_t delta) {
  if (metrics_ != nullptr) {
    metrics_->GetCounter(name).Increment(delta);
  }
}

void Tracer::GaugeSet(const std::string& name, double value) {
  if (metrics_ != nullptr) {
    metrics_->GetGauge(name).Set(value);
  }
}

void Tracer::HistogramRecord(const std::string& name, double value,
                             const HistogramOptions& options) {
  if (metrics_ != nullptr) {
    metrics_->GetHistogram(name, options).Record(value);
  }
}

}  // namespace probcon
