// Structured simulation tracing.
//
// A TraceLog is an append-only sequence of typed, sim-timestamped events (elections, view
// changes, commits, drops, crashes, ...). Protocol code records events through a Tracer
// handle owned by the Simulator; a default-constructed Tracer is DISABLED and every call on
// it is an inline null-check no-op, so untraced runs (every bench) pay one branch per
// call-site and allocate nothing.
//
// Because all event content derives from sim state (time, node ids, terms/views/slots) and
// the simulator is deterministic, two runs with the same seed produce identical TraceLogs —
// the exporters in src/obs/export.h therefore emit byte-identical files, which is the
// contract tests/obs/tracer_test.cc pins down.
//
// This layer deliberately does not depend on src/sim: times are plain doubles fed by a clock
// callback, so the obs library can also serve non-simulated callers.

#ifndef PROBCON_SRC_OBS_TRACE_H_
#define PROBCON_SRC_OBS_TRACE_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "src/obs/metrics.h"

namespace probcon {

enum class TraceEventType : int {
  kElectionStarted = 0,  // value = term.
  kLeaderElected,        // value = term.
  kViewChangeStarted,    // value = the view being entered.
  kNewViewAdopted,       // value = the adopted view.
  kCommit,               // value = slot, one event per (node, slot) execution.
  kMessageDropped,       // node = sender, peer = destination.
  kNodeCrashed,
  kNodeRecovered,
  kClientSubmitted,   // node = -1, value = command id.
  kSnapshotTaken,     // value = last index folded into the snapshot.
  kCheckpointStable,  // value = certified sequence.
  kRoundAdvanced,     // value = round (Ben-Or style round protocols).
  kDecided,           // value = deciding round; detail carries the decided value.
  kSafetyViolation,   // node = -1, value = slot; detail describes the conflict.
  kRegimeStarted,     // node = -1, value = regime index; detail = regime kind.
  kRegimeEnded,       // node = -1, value = regime index; detail = regime kind.
  kStateLost,         // value = durable writes lost when the node restarted.
};

// Stable snake_case name, used by the exporters and RunReport.
std::string_view TraceEventTypeName(TraceEventType type);

struct TraceEvent {
  double time = 0.0;
  TraceEventType type = TraceEventType::kElectionStarted;
  int node = -1;  // -1 = environment/cluster-wide.
  int peer = -1;  // Secondary node (e.g. drop destination), -1 if unused.
  uint64_t value = 0;
  std::string detail;

  bool operator==(const TraceEvent&) const = default;
};

class TraceLog {
 public:
  void Append(TraceEvent event) { events_.push_back(std::move(event)); }

  const std::vector<TraceEvent>& events() const { return events_; }
  size_t size() const { return events_.size(); }
  bool empty() const { return events_.empty(); }
  void Clear() { events_.clear(); }

  // Count of events of `type`; node = -2 means any node.
  size_t CountOf(TraceEventType type, int node = -2) const;

  std::vector<TraceEvent> EventsOfType(TraceEventType type) const;

 private:
  std::vector<TraceEvent> events_;
};

// Recording handle. Copyable; a copy refers to the same log/registry. All mutating calls are
// no-ops when disabled, and the event convenience methods double as the canonical vocabulary
// of instrumentation call-sites across the stack.
class Tracer {
 public:
  using Clock = std::function<double()>;

  Tracer() = default;  // Disabled: records nothing.
  Tracer(TraceLog* log, MetricsRegistry* metrics, Clock clock);

  bool enabled() const { return log_ != nullptr; }
  MetricsRegistry* metrics() const { return metrics_; }
  double now() const { return clock_ ? clock_() : 0.0; }

  // --- Raw event record ---
  void Record(TraceEventType type, int node, int peer = -1, uint64_t value = 0,
              std::string detail = {});

  // --- Metric helpers (no-ops when no registry is attached) ---
  void CounterAdd(const std::string& name, uint64_t delta = 1);
  void GaugeSet(const std::string& name, double value);
  void HistogramRecord(const std::string& name, double value,
                       const HistogramOptions& options = HistogramOptions::DefaultLatencyMs());

  // --- Event vocabulary ---
  void ElectionStarted(int node, uint64_t term) {
    Record(TraceEventType::kElectionStarted, node, -1, term);
  }
  void LeaderElected(int node, uint64_t term) {
    Record(TraceEventType::kLeaderElected, node, -1, term);
  }
  void ViewChangeStarted(int node, uint64_t view) {
    Record(TraceEventType::kViewChangeStarted, node, -1, view);
  }
  void NewViewAdopted(int node, uint64_t view) {
    Record(TraceEventType::kNewViewAdopted, node, -1, view);
  }
  void Commit(int node, uint64_t slot) { Record(TraceEventType::kCommit, node, -1, slot); }
  void MessageDropped(int from, int to) {
    Record(TraceEventType::kMessageDropped, from, to);
  }
  void NodeCrashed(int node) { Record(TraceEventType::kNodeCrashed, node); }
  void NodeRecovered(int node) { Record(TraceEventType::kNodeRecovered, node); }
  void ClientSubmitted(uint64_t command_id) {
    Record(TraceEventType::kClientSubmitted, -1, -1, command_id);
  }
  void SnapshotTaken(int node, uint64_t last_included) {
    Record(TraceEventType::kSnapshotTaken, node, -1, last_included);
  }
  void CheckpointStable(int node, uint64_t sequence) {
    Record(TraceEventType::kCheckpointStable, node, -1, sequence);
  }
  void RoundAdvanced(int node, uint64_t round) {
    Record(TraceEventType::kRoundAdvanced, node, -1, round);
  }
  void Decided(int node, uint64_t round, int decided_value) {
    Record(TraceEventType::kDecided, node, -1, round, std::to_string(decided_value));
  }
  void SafetyViolationDetected(uint64_t slot, std::string detail) {
    Record(TraceEventType::kSafetyViolation, -1, -1, slot, std::move(detail));
  }
  void RegimeStarted(uint64_t index, std::string kind) {
    Record(TraceEventType::kRegimeStarted, -1, -1, index, std::move(kind));
  }
  void RegimeEnded(uint64_t index, std::string kind) {
    Record(TraceEventType::kRegimeEnded, -1, -1, index, std::move(kind));
  }
  void StateLost(int node, uint64_t lost_writes) {
    Record(TraceEventType::kStateLost, node, -1, lost_writes);
  }

 private:
  TraceLog* log_ = nullptr;
  MetricsRegistry* metrics_ = nullptr;
  Clock clock_;
};

}  // namespace probcon

#endif  // PROBCON_SRC_OBS_TRACE_H_
