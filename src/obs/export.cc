#include "src/obs/export.h"

#include <cstdio>
#include <ostream>
#include <sstream>
#include <utility>

namespace probcon {
namespace {

// CSV field with minimal quoting: wrap in quotes iff the text contains a comma, quote, or
// newline; embedded quotes double per RFC 4180.
std::string CsvEscape(std::string_view text) {
  if (text.find_first_of(",\"\n") == std::string_view::npos) {
    return std::string(text);
  }
  std::string result = "\"";
  for (const char c : text) {
    if (c == '"') {
      result += "\"\"";
    } else {
      result += c;
    }
  }
  result += '"';
  return result;
}

void WriteHistogramJson(const Histogram& histogram, std::ostream& out) {
  const HistogramSnapshot snap = histogram.snapshot();
  out << "{\"count\": " << snap.count;
  if (snap.count > 0) {
    out << ", \"sum\": " << FormatMetricValue(snap.sum)
        << ", \"min\": " << FormatMetricValue(snap.min)
        << ", \"max\": " << FormatMetricValue(snap.max)
        << ", \"mean\": " << FormatMetricValue(snap.Mean())
        << ", \"p50\": " << FormatMetricValue(snap.Quantile(0.5))
        << ", \"p90\": " << FormatMetricValue(snap.Quantile(0.9))
        << ", \"p99\": " << FormatMetricValue(snap.Quantile(0.99));
  }
  out << ", \"buckets\": [";
  for (size_t i = 0; i < snap.counts.size(); ++i) {
    if (i > 0) {
      out << ", ";
    }
    out << "{\"le\": ";
    if (i < snap.bounds.size()) {
      out << FormatMetricValue(snap.bounds[i]);
    } else {
      out << "\"inf\"";
    }
    out << ", \"count\": " << snap.counts[i] << "}";
  }
  out << "]}";
}

Json HistogramToJsonValue(const Histogram& histogram) {
  const HistogramSnapshot snap = histogram.snapshot();
  Json value = Json::Object();
  value.Set("count", Json::Number(snap.count));
  if (snap.count > 0) {
    value.Set("sum", Json::Number(snap.sum));
    value.Set("min", Json::Number(snap.min));
    value.Set("max", Json::Number(snap.max));
    value.Set("mean", Json::Number(snap.Mean()));
    value.Set("p50", Json::Number(snap.Quantile(0.5)));
    value.Set("p90", Json::Number(snap.Quantile(0.9)));
    value.Set("p99", Json::Number(snap.Quantile(0.99)));
  }
  Json buckets = Json::Array();
  for (size_t i = 0; i < snap.counts.size(); ++i) {
    Json bucket = Json::Object();
    if (i < snap.bounds.size()) {
      bucket.Set("le", Json::Number(snap.bounds[i]));
    } else {
      bucket.Set("le", Json::String("inf"));
    }
    bucket.Set("count", Json::Number(snap.counts[i]));
    buckets.Append(std::move(bucket));
  }
  value.Set("buckets", std::move(buckets));
  return value;
}

}  // namespace

std::string FormatMetricValue(double value) {
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.9g", value);
  return buffer;
}

std::string JsonEscape(std::string_view text) {
  std::string result;
  result.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':
        result += "\\\"";
        break;
      case '\\':
        result += "\\\\";
        break;
      case '\n':
        result += "\\n";
        break;
      case '\r':
        result += "\\r";
        break;
      case '\t':
        result += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          result += buffer;
        } else {
          result += c;
        }
    }
  }
  return result;
}

void WriteTraceJson(const TraceLog& trace, std::ostream& out) {
  out << "{\"events\": [";
  bool first = true;
  for (const TraceEvent& event : trace.events()) {
    if (!first) {
      out << ",";
    }
    first = false;
    out << "\n  {\"t\": " << FormatMetricValue(event.time) << ", \"type\": \""
        << TraceEventTypeName(event.type) << "\", \"node\": " << event.node
        << ", \"peer\": " << event.peer << ", \"value\": " << event.value << ", \"detail\": \""
        << JsonEscape(event.detail) << "\"}";
  }
  out << "\n]}\n";
}

std::string TraceToJson(const TraceLog& trace) {
  std::ostringstream out;
  WriteTraceJson(trace, out);
  return out.str();
}

void WriteTraceCsv(const TraceLog& trace, std::ostream& out) {
  out << "time,type,node,peer,value,detail\n";
  for (const TraceEvent& event : trace.events()) {
    out << FormatMetricValue(event.time) << "," << TraceEventTypeName(event.type) << ","
        << event.node << "," << event.peer << "," << event.value << ","
        << CsvEscape(event.detail) << "\n";
  }
}

std::string TraceToCsv(const TraceLog& trace) {
  std::ostringstream out;
  WriteTraceCsv(trace, out);
  return out.str();
}

void WriteMetricsJson(const MetricsRegistry& metrics, std::ostream& out) {
  out << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, counter] : metrics.counters()) {
    out << (first ? "" : ", ") << "\"" << JsonEscape(name) << "\": " << counter.value();
    first = false;
  }
  out << "},\n  \"gauges\": {";
  first = true;
  for (const auto& [name, gauge] : metrics.gauges()) {
    out << (first ? "" : ", ") << "\"" << JsonEscape(name)
        << "\": " << FormatMetricValue(gauge.value());
    first = false;
  }
  out << "},\n  \"histograms\": {";
  first = true;
  for (const auto& [name, histogram] : metrics.histograms()) {
    out << (first ? "" : ", ") << "\"" << JsonEscape(name) << "\": ";
    WriteHistogramJson(histogram, out);
    first = false;
  }
  out << "}\n}\n";
}

std::string MetricsToJson(const MetricsRegistry& metrics) {
  std::ostringstream out;
  WriteMetricsJson(metrics, out);
  return out.str();
}

Json MetricsToJsonValue(const MetricsRegistry& metrics) {
  Json document = Json::Object();
  Json counters = Json::Object();
  for (const auto& [name, counter] : metrics.counters()) {
    counters.Set(name, Json::Number(counter.value()));
  }
  document.Set("counters", std::move(counters));
  Json gauges = Json::Object();
  for (const auto& [name, gauge] : metrics.gauges()) {
    gauges.Set(name, Json::Number(gauge.value()));
  }
  document.Set("gauges", std::move(gauges));
  Json histograms = Json::Object();
  for (const auto& [name, histogram] : metrics.histograms()) {
    histograms.Set(name, HistogramToJsonValue(histogram));
  }
  document.Set("histograms", std::move(histograms));
  return document;
}

void WriteMetricsCsv(const MetricsRegistry& metrics, std::ostream& out) {
  out << "kind,name,field,value\n";
  for (const auto& [name, counter] : metrics.counters()) {
    out << "counter," << CsvEscape(name) << ",value," << counter.value() << "\n";
  }
  for (const auto& [name, gauge] : metrics.gauges()) {
    out << "gauge," << CsvEscape(name) << ",value," << FormatMetricValue(gauge.value())
        << "\n";
  }
  for (const auto& [name, histogram] : metrics.histograms()) {
    const std::string escaped = CsvEscape(name);
    const HistogramSnapshot snap = histogram.snapshot();
    out << "histogram," << escaped << ",count," << snap.count << "\n";
    if (snap.count > 0) {
      out << "histogram," << escaped << ",sum," << FormatMetricValue(snap.sum) << "\n";
      out << "histogram," << escaped << ",min," << FormatMetricValue(snap.min) << "\n";
      out << "histogram," << escaped << ",max," << FormatMetricValue(snap.max) << "\n";
      out << "histogram," << escaped << ",p50," << FormatMetricValue(snap.Quantile(0.5))
          << "\n";
      out << "histogram," << escaped << ",p90," << FormatMetricValue(snap.Quantile(0.9))
          << "\n";
      out << "histogram," << escaped << ",p99," << FormatMetricValue(snap.Quantile(0.99))
          << "\n";
    }
    for (size_t i = 0; i < snap.counts.size(); ++i) {
      out << "histogram," << escaped << ",bucket_le_"
          << (i < snap.bounds.size() ? FormatMetricValue(snap.bounds[i]) : "inf") << ","
          << snap.counts[i] << "\n";
    }
  }
}

std::string MetricsToCsv(const MetricsRegistry& metrics) {
  std::ostringstream out;
  WriteMetricsCsv(metrics, out);
  return out.str();
}

}  // namespace probcon
