#include "src/obs/export.h"

#include <cstdio>
#include <ostream>
#include <sstream>

namespace probcon {
namespace {

// CSV field with minimal quoting: wrap in quotes iff the text contains a comma, quote, or
// newline; embedded quotes double per RFC 4180.
std::string CsvEscape(std::string_view text) {
  if (text.find_first_of(",\"\n") == std::string_view::npos) {
    return std::string(text);
  }
  std::string result = "\"";
  for (const char c : text) {
    if (c == '"') {
      result += "\"\"";
    } else {
      result += c;
    }
  }
  result += '"';
  return result;
}

void WriteHistogramJson(const Histogram& histogram, std::ostream& out) {
  out << "{\"count\": " << histogram.count();
  if (histogram.count() > 0) {
    out << ", \"sum\": " << FormatMetricValue(histogram.sum())
        << ", \"min\": " << FormatMetricValue(histogram.Min())
        << ", \"max\": " << FormatMetricValue(histogram.Max())
        << ", \"mean\": " << FormatMetricValue(histogram.Mean());
  }
  out << ", \"buckets\": [";
  const auto& bounds = histogram.bucket_bounds();
  const auto& counts = histogram.bucket_counts();
  for (size_t i = 0; i < counts.size(); ++i) {
    if (i > 0) {
      out << ", ";
    }
    out << "{\"le\": ";
    if (i < bounds.size()) {
      out << FormatMetricValue(bounds[i]);
    } else {
      out << "\"inf\"";
    }
    out << ", \"count\": " << counts[i] << "}";
  }
  out << "]}";
}

}  // namespace

std::string FormatMetricValue(double value) {
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.9g", value);
  return buffer;
}

std::string JsonEscape(std::string_view text) {
  std::string result;
  result.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':
        result += "\\\"";
        break;
      case '\\':
        result += "\\\\";
        break;
      case '\n':
        result += "\\n";
        break;
      case '\r':
        result += "\\r";
        break;
      case '\t':
        result += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          result += buffer;
        } else {
          result += c;
        }
    }
  }
  return result;
}

void WriteTraceJson(const TraceLog& trace, std::ostream& out) {
  out << "{\"events\": [";
  bool first = true;
  for (const TraceEvent& event : trace.events()) {
    if (!first) {
      out << ",";
    }
    first = false;
    out << "\n  {\"t\": " << FormatMetricValue(event.time) << ", \"type\": \""
        << TraceEventTypeName(event.type) << "\", \"node\": " << event.node
        << ", \"peer\": " << event.peer << ", \"value\": " << event.value << ", \"detail\": \""
        << JsonEscape(event.detail) << "\"}";
  }
  out << "\n]}\n";
}

std::string TraceToJson(const TraceLog& trace) {
  std::ostringstream out;
  WriteTraceJson(trace, out);
  return out.str();
}

void WriteTraceCsv(const TraceLog& trace, std::ostream& out) {
  out << "time,type,node,peer,value,detail\n";
  for (const TraceEvent& event : trace.events()) {
    out << FormatMetricValue(event.time) << "," << TraceEventTypeName(event.type) << ","
        << event.node << "," << event.peer << "," << event.value << ","
        << CsvEscape(event.detail) << "\n";
  }
}

std::string TraceToCsv(const TraceLog& trace) {
  std::ostringstream out;
  WriteTraceCsv(trace, out);
  return out.str();
}

void WriteMetricsJson(const MetricsRegistry& metrics, std::ostream& out) {
  out << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, counter] : metrics.counters()) {
    out << (first ? "" : ", ") << "\"" << JsonEscape(name) << "\": " << counter.value();
    first = false;
  }
  out << "},\n  \"gauges\": {";
  first = true;
  for (const auto& [name, gauge] : metrics.gauges()) {
    out << (first ? "" : ", ") << "\"" << JsonEscape(name)
        << "\": " << FormatMetricValue(gauge.value());
    first = false;
  }
  out << "},\n  \"histograms\": {";
  first = true;
  for (const auto& [name, histogram] : metrics.histograms()) {
    out << (first ? "" : ", ") << "\"" << JsonEscape(name) << "\": ";
    WriteHistogramJson(histogram, out);
    first = false;
  }
  out << "}\n}\n";
}

std::string MetricsToJson(const MetricsRegistry& metrics) {
  std::ostringstream out;
  WriteMetricsJson(metrics, out);
  return out.str();
}

void WriteMetricsCsv(const MetricsRegistry& metrics, std::ostream& out) {
  out << "kind,name,field,value\n";
  for (const auto& [name, counter] : metrics.counters()) {
    out << "counter," << CsvEscape(name) << ",value," << counter.value() << "\n";
  }
  for (const auto& [name, gauge] : metrics.gauges()) {
    out << "gauge," << CsvEscape(name) << ",value," << FormatMetricValue(gauge.value())
        << "\n";
  }
  for (const auto& [name, histogram] : metrics.histograms()) {
    const std::string escaped = CsvEscape(name);
    out << "histogram," << escaped << ",count," << histogram.count() << "\n";
    if (histogram.count() > 0) {
      out << "histogram," << escaped << ",sum," << FormatMetricValue(histogram.sum()) << "\n";
      out << "histogram," << escaped << ",min," << FormatMetricValue(histogram.Min()) << "\n";
      out << "histogram," << escaped << ",max," << FormatMetricValue(histogram.Max()) << "\n";
    }
    const auto& bounds = histogram.bucket_bounds();
    const auto& counts = histogram.bucket_counts();
    for (size_t i = 0; i < counts.size(); ++i) {
      out << "histogram," << escaped << ",bucket_le_"
          << (i < bounds.size() ? FormatMetricValue(bounds[i]) : "inf") << "," << counts[i]
          << "\n";
    }
  }
}

std::string MetricsToCsv(const MetricsRegistry& metrics) {
  std::ostringstream out;
  WriteMetricsCsv(metrics, out);
  return out.str();
}

}  // namespace probcon
