// Per-request span timing for the serving path: a SpanTimer measures elapsed wall time on
// the monotonic clock, and a RequestTrace accumulates named stage durations (parse →
// canonicalize → cache → engine → serialize) that the serve layer records into stage
// histograms and, when a client sends `trace: true`, echoes back in the response envelope.
//
// This is the only obs component that reads a clock. probcon-lint R1 waives the
// *monotonic* clock ban for exactly these two files (see monotonic_clock_allowlist in
// tools/lint/rules.h): span durations are telemetry about a computation, never inputs to
// one, so the determinism-of-results contract survives. Calendar clocks stay banned.
//
// Stage durations are independent measurements, not a partition of the total: the engine
// stage nests inside the cache stage (the single-flight leader computes under the cache's
// miss path), so RequestTrace carries an explicit total rather than summing stages.

#ifndef PROBCON_SRC_OBS_SPAN_H_
#define PROBCON_SRC_OBS_SPAN_H_

#include <chrono>
#include <string>
#include <utility>
#include <vector>

#include "src/common/json.h"

namespace probcon {

// Monotonic stopwatch with lap support. ElapsedMs() reads the time since construction (or
// the last Restart); LapMs() reads the time since the previous lap mark and advances it —
// the natural fit for timing consecutive pipeline stages with one timer.
class SpanTimer {
 public:
  SpanTimer();

  double ElapsedMs() const;
  double LapMs();
  void Restart();

 private:
  std::chrono::steady_clock::time_point start_;
  std::chrono::steady_clock::time_point lap_;
};

// An ordered list of named stage durations plus the request's end-to-end total.
struct RequestTrace {
  struct Stage {
    std::string name;
    double ms = 0.0;
  };

  std::vector<Stage> stages;
  double total_ms = 0.0;

  void AddStage(std::string name, double ms) { stages.push_back({std::move(name), ms}); }

  // {"total_ms": t, "stages": [{"stage": "parse", "ms": m}, ...]} — the `trace` field of a
  // serve response envelope.
  Json ToJson() const;
};

}  // namespace probcon

#endif  // PROBCON_SRC_OBS_SPAN_H_
