// Trace and metrics exporters: JSON (one self-contained document) and CSV (one row per
// event / instrument reading).
//
// Output is deterministic: instruments are emitted in registry (name) order, events in
// append order, and all doubles are formatted with a fixed "%.9g" so identical runs yield
// byte-identical files. That property is what lets tests diff whole exports.

#ifndef PROBCON_SRC_OBS_EXPORT_H_
#define PROBCON_SRC_OBS_EXPORT_H_

#include <iosfwd>
#include <string>
#include <string_view>

#include "src/common/json.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace probcon {

// "%.9g" formatting, shared by every exporter (and RunReport) for determinism.
std::string FormatMetricValue(double value);

// Escapes `\`, `"`, and control characters for embedding in a JSON string literal.
std::string JsonEscape(std::string_view text);

// {"events": [{"t": ..., "type": "...", "node": ..., "peer": ..., "value": ..., "detail":
// "..."}, ...]}
void WriteTraceJson(const TraceLog& trace, std::ostream& out);
std::string TraceToJson(const TraceLog& trace);

// Header "time,type,node,peer,value,detail"; detail is double-quote escaped.
void WriteTraceCsv(const TraceLog& trace, std::ostream& out);
std::string TraceToCsv(const TraceLog& trace);

// {"counters": {...}, "gauges": {...}, "histograms": {name: {count, sum, min, max, mean,
// p50, p90, p99, buckets: [{"le": bound-or-"inf", "count": n}, ...]}}}. The quantiles are
// interpolated from bucket counts (HistogramSnapshot::Quantile) and omitted, like the other
// moments, when the histogram is empty.
void WriteMetricsJson(const MetricsRegistry& metrics, std::ostream& out);
std::string MetricsToJson(const MetricsRegistry& metrics);

// Same document as WriteMetricsJson, but as a Json value — for embedding inside a larger
// document (the serve `stats` verb nests it in a response envelope). Doubles go through
// FormatDouble (shortest round-trip) rather than "%.9g", per the wire-format convention.
Json MetricsToJsonValue(const MetricsRegistry& metrics);

// Header "kind,name,field,value"; histograms expand to count/sum/min/max/p50/p90/p99 plus
// one "bucket_le_<bound>" row per bucket.
void WriteMetricsCsv(const MetricsRegistry& metrics, std::ostream& out);
std::string MetricsToCsv(const MetricsRegistry& metrics);

}  // namespace probcon

#endif  // PROBCON_SRC_OBS_EXPORT_H_
