#include "src/obs/run_report.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>
#include <vector>

#include "src/obs/export.h"

namespace probcon {
namespace {

// Event types worth a column in the per-node table, in display order.
constexpr TraceEventType kNodeColumns[] = {
    TraceEventType::kElectionStarted, TraceEventType::kLeaderElected,
    TraceEventType::kViewChangeStarted, TraceEventType::kNewViewAdopted,
    TraceEventType::kCommit,            TraceEventType::kSnapshotTaken,
    TraceEventType::kCheckpointStable,  TraceEventType::kRoundAdvanced,
    TraceEventType::kDecided,           TraceEventType::kNodeCrashed,
    TraceEventType::kNodeRecovered,     TraceEventType::kMessageDropped,
};

void RenderAlignedPairs(const std::vector<std::pair<std::string, std::string>>& rows,
                        std::ostringstream& out) {
  size_t width = 0;
  for (const auto& [name, value] : rows) {
    width = std::max(width, name.size());
  }
  for (const auto& [name, value] : rows) {
    out << "  " << name << std::string(width - name.size() + 2, ' ') << value << "\n";
  }
}

void RenderHistogram(const std::string& name, const Histogram& histogram,
                     const RunReportOptions& options, std::ostringstream& out) {
  out << "  " << name << ": count=" << histogram.count();
  if (histogram.empty()) {
    out << "\n";
    return;
  }
  out << " mean=" << FormatMetricValue(histogram.Mean())
      << " min=" << FormatMetricValue(histogram.Min())
      << " max=" << FormatMetricValue(histogram.Max())
      << " p50~" << FormatMetricValue(histogram.ApproxQuantile(0.5))
      << " p99~" << FormatMetricValue(histogram.ApproxQuantile(0.99)) << "\n";
  const auto& bounds = histogram.bucket_bounds();
  const auto& counts = histogram.bucket_counts();
  const uint64_t fullest = *std::max_element(counts.begin(), counts.end());
  for (size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) {
      continue;  // Keep the report compact; empty buckets carry no information here.
    }
    const std::string label =
        i < bounds.size() ? "le " + FormatMetricValue(bounds[i]) : "overflow";
    const int bar = static_cast<int>((counts[i] * static_cast<uint64_t>(
                                          options.histogram_bar_width) + fullest - 1) /
                                     fullest);
    out << "    [" << label << "] " << counts[i] << " " << std::string(bar, '#') << "\n";
  }
}

}  // namespace

std::string RenderRunReport(const TraceLog& trace, const MetricsRegistry& metrics,
                            const RunReportOptions& options) {
  std::ostringstream out;
  out << "=== run report ===\n";
  if (trace.empty()) {
    out << "trace: no events recorded\n";
  } else {
    out << "trace: " << trace.size() << " events spanning t=["
        << FormatMetricValue(trace.events().front().time) << ", "
        << FormatMetricValue(trace.events().back().time) << "]\n";
  }

  if (!metrics.counters().empty()) {
    out << "\n-- counters --\n";
    std::vector<std::pair<std::string, std::string>> rows;
    for (const auto& [name, counter] : metrics.counters()) {
      rows.emplace_back(name, std::to_string(counter.value()));
    }
    RenderAlignedPairs(rows, out);
  }

  if (!metrics.gauges().empty()) {
    out << "\n-- gauges --\n";
    std::vector<std::pair<std::string, std::string>> rows;
    for (const auto& [name, gauge] : metrics.gauges()) {
      rows.emplace_back(name, FormatMetricValue(gauge.value()));
    }
    RenderAlignedPairs(rows, out);
  }

  if (!metrics.histograms().empty()) {
    out << "\n-- histograms --\n";
    for (const auto& [name, histogram] : metrics.histograms()) {
      RenderHistogram(name, histogram, options, out);
    }
  }

  // Per-node event counts, from the trace itself.
  std::map<int, std::map<TraceEventType, size_t>> per_node;
  for (const TraceEvent& event : trace.events()) {
    if (event.node >= 0) {
      ++per_node[event.node][event.type];
    }
  }
  if (!per_node.empty()) {
    std::set<TraceEventType> present;
    for (const auto& [node, counts] : per_node) {
      for (const auto& [type, count] : counts) {
        present.insert(type);
      }
    }
    std::vector<TraceEventType> columns;
    for (const TraceEventType type : kNodeColumns) {
      if (present.count(type) > 0) {
        columns.push_back(type);
      }
    }
    out << "\n-- per-node event counts --\n  node";
    for (const TraceEventType type : columns) {
      out << "  " << TraceEventTypeName(type);
    }
    out << "\n";
    for (const auto& [node, counts] : per_node) {
      out << "  " << node;
      for (const TraceEventType type : columns) {
        const auto it = counts.find(type);
        const size_t count = it == counts.end() ? 0 : it->second;
        // Right-align under the column header (header width + 2 spaces of separator).
        std::string text = std::to_string(count);
        const size_t column_width = TraceEventTypeName(type).size() + 2;
        out << std::string(column_width > text.size() ? column_width - text.size() : 1, ' ')
            << text;
      }
      out << "\n";
    }
  }

  // Fault-injection + violation timeline.
  std::vector<const TraceEvent*> timeline;
  for (const TraceEvent& event : trace.events()) {
    if (event.type == TraceEventType::kNodeCrashed ||
        event.type == TraceEventType::kNodeRecovered ||
        event.type == TraceEventType::kSafetyViolation ||
        event.type == TraceEventType::kRegimeStarted ||
        event.type == TraceEventType::kRegimeEnded ||
        event.type == TraceEventType::kStateLost) {
      timeline.push_back(&event);
    }
  }
  if (!timeline.empty()) {
    out << "\n-- fault timeline --\n";
    size_t shown = 0;
    for (const TraceEvent* event : timeline) {
      if (options.max_timeline_rows != 0 && shown >= options.max_timeline_rows) {
        out << "  ... " << (timeline.size() - shown) << " more\n";
        break;
      }
      out << "  t=" << FormatMetricValue(event->time) << "  ";
      if (event->type == TraceEventType::kSafetyViolation) {
        out << "SAFETY VIOLATION slot " << event->value;
        if (!event->detail.empty()) {
          out << ": " << event->detail;
        }
      } else if (event->type == TraceEventType::kRegimeStarted ||
                 event->type == TraceEventType::kRegimeEnded) {
        out << "regime " << event->value << " (" << event->detail << ") "
            << (event->type == TraceEventType::kRegimeStarted ? "started" : "ended");
      } else if (event->type == TraceEventType::kStateLost) {
        out << "node " << event->node << " restarted losing " << event->value
            << " unsynced write(s)";
      } else {
        out << "node " << event->node << " "
            << (event->type == TraceEventType::kNodeCrashed ? "crashed" : "recovered");
      }
      out << "\n";
      ++shown;
    }
  }
  return out.str();
}

}  // namespace probcon
