// Human-readable summary of one instrumented run: aggregate counters/gauges, histogram
// summaries with ASCII bucket bars, a per-node event-count table derived from the trace, and
// the fault-injection timeline (crash/recover/safety-violation events in time order).
//
// The report is plain text on purpose — it is what a developer reads to answer "why did this
// run lose liveness" before reaching for the JSON trace.

#ifndef PROBCON_SRC_OBS_RUN_REPORT_H_
#define PROBCON_SRC_OBS_RUN_REPORT_H_

#include <string>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace probcon {

struct RunReportOptions {
  // Cap on fault-timeline rows (earliest kept; a truncation note is appended). 0 = no cap.
  size_t max_timeline_rows = 40;
  // Width of the '#' bar for the fullest histogram bucket.
  int histogram_bar_width = 30;
};

std::string RenderRunReport(const TraceLog& trace, const MetricsRegistry& metrics,
                            const RunReportOptions& options = {});

}  // namespace probcon

#endif  // PROBCON_SRC_OBS_RUN_REPORT_H_
