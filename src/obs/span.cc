#include "src/obs/span.h"

namespace probcon {
namespace {

double MsBetween(std::chrono::steady_clock::time_point from,
                 std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double, std::milli>(to - from).count();
}

}  // namespace

SpanTimer::SpanTimer() { Restart(); }

double SpanTimer::ElapsedMs() const {
  return MsBetween(start_, std::chrono::steady_clock::now());
}

double SpanTimer::LapMs() {
  const auto now = std::chrono::steady_clock::now();
  const double ms = MsBetween(lap_, now);
  lap_ = now;
  return ms;
}

void SpanTimer::Restart() {
  start_ = std::chrono::steady_clock::now();
  lap_ = start_;
}

Json RequestTrace::ToJson() const {
  Json value = Json::Object();
  value.Set("total_ms", Json::Number(total_ms));
  Json items = Json::Array();
  for (const Stage& stage : stages) {
    Json entry = Json::Object();
    entry.Set("stage", Json::String(stage.name));
    entry.Set("ms", Json::Number(stage.ms));
    items.Append(std::move(entry));
  }
  value.Set("stages", std::move(items));
  return value;
}

}  // namespace probcon
