#include "src/obs/metrics.h"

#include <algorithm>

#include "src/common/check.h"

namespace probcon {

HistogramOptions HistogramOptions::Fixed(std::vector<double> bounds) {
  CHECK(!bounds.empty());
  for (size_t i = 1; i < bounds.size(); ++i) {
    CHECK_LT(bounds[i - 1], bounds[i]) << "histogram bounds must be strictly increasing";
  }
  return HistogramOptions{std::move(bounds)};
}

HistogramOptions HistogramOptions::Exponential(double first_bound, double factor,
                                               int bucket_count) {
  CHECK_GT(first_bound, 0.0);
  CHECK_GT(factor, 1.0);
  CHECK_GT(bucket_count, 0);
  std::vector<double> bounds;
  bounds.reserve(static_cast<size_t>(bucket_count));
  double bound = first_bound;
  for (int i = 0; i < bucket_count; ++i) {
    bounds.push_back(bound);
    bound *= factor;
  }
  return HistogramOptions{std::move(bounds)};
}

double HistogramSnapshot::Mean() const {
  CHECK_GT(count, 0u);
  return sum / static_cast<double>(count);
}

double HistogramSnapshot::Quantile(double q) const {
  CHECK_GT(count, 0u);
  CHECK(q >= 0.0 && q <= 1.0);
  // Nearest-rank target (1-based), mirroring SampleStats::Percentile semantics.
  const uint64_t target =
      static_cast<uint64_t>(q * static_cast<double>(count - 1) + 0.5) + 1;
  uint64_t cumulative = 0;
  for (size_t bucket = 0; bucket < counts.size(); ++bucket) {
    if (counts[bucket] == 0) {
      continue;
    }
    if (cumulative + counts[bucket] >= target) {
      // Interpolate within the bucket; clamp the edges to the observed extremes so
      // single-bucket histograms stay exact at q=0/1.
      const double low = bucket == 0 ? min : std::max(min, bounds[bucket - 1]);
      const double high = bucket == bounds.size() ? max : std::min(max, bounds[bucket]);
      const double within =
          static_cast<double>(target - cumulative) / static_cast<double>(counts[bucket]);
      return low + (high - low) * within;
    }
    cumulative += counts[bucket];
  }
  return max;  // Unreachable given the invariants, but keeps the compiler satisfied.
}

Histogram::Histogram(HistogramOptions options) : bounds_(std::move(options.bounds)) {
  CHECK(!bounds_.empty());
  counts_.assign(bounds_.size() + 1, 0);
}

Histogram::Histogram(const Histogram& other) : bounds_(other.bounds_) {
  std::lock_guard<std::mutex> lock(other.mutex_);
  counts_ = other.counts_;
  count_ = other.count_;
  sum_ = other.sum_;
  min_ = other.min_;
  max_ = other.max_;
}

void Histogram::Record(double value) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const size_t bucket = static_cast<size_t>(it - bounds_.begin());
  std::lock_guard<std::mutex> lock(mutex_);
  ++counts_[bucket];
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot snap;
  snap.bounds = bounds_;
  std::lock_guard<std::mutex> lock(mutex_);
  snap.counts = counts_;
  snap.count = count_;
  snap.sum = sum_;
  snap.min = min_;
  snap.max = max_;
  return snap;
}

uint64_t Histogram::count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return count_;
}

double Histogram::sum() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return sum_;
}

double Histogram::Mean() const { return snapshot().Mean(); }

double Histogram::Min() const {
  std::lock_guard<std::mutex> lock(mutex_);
  CHECK_GT(count_, 0u);
  return min_;
}

double Histogram::Max() const {
  std::lock_guard<std::mutex> lock(mutex_);
  CHECK_GT(count_, 0u);
  return max_;
}

std::vector<uint64_t> Histogram::bucket_counts() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return counts_;
}

double Histogram::ApproxQuantile(double q) const { return snapshot().Quantile(q); }

void Histogram::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::fill(counts_.begin(), counts_.end(), 0);
  count_ = 0;
  sum_ = 0.0;
  min_ = 0.0;
  max_ = 0.0;
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  CHECK(gauges_.find(name) == gauges_.end())
      << "metric '" << name << "' already registered as a gauge, requested as a counter";
  CHECK(histograms_.find(name) == histograms_.end())
      << "metric '" << name << "' already registered as a histogram, requested as a counter";
  return counters_[name];
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  CHECK(counters_.find(name) == counters_.end())
      << "metric '" << name << "' already registered as a counter, requested as a gauge";
  CHECK(histograms_.find(name) == histograms_.end())
      << "metric '" << name << "' already registered as a histogram, requested as a gauge";
  return gauges_[name];
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name,
                                         const HistogramOptions& options) {
  std::lock_guard<std::mutex> lock(mutex_);
  CHECK(counters_.find(name) == counters_.end())
      << "metric '" << name << "' already registered as a counter, requested as a histogram";
  CHECK(gauges_.find(name) == gauges_.end())
      << "metric '" << name << "' already registered as a gauge, requested as a histogram";
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) {
    CHECK(it->second.bucket_bounds() == options.bounds)
        << "histogram '" << name << "' requested with bucket bounds that differ from its "
        << "registered layout";
    return it->second;
  }
  return histograms_.emplace(name, Histogram(options)).first->second;
}

const Counter* MetricsRegistry::FindCounter(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : &it->second;
}

const Gauge* MetricsRegistry::FindGauge(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : &it->second;
}

const Histogram* MetricsRegistry::FindHistogram(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

bool MetricsRegistry::empty() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return counters_.empty() && gauges_.empty() && histograms_.empty();
}

// NO_THREAD_SAFETY_ANALYSIS: writes `out`'s maps under THIS registry's lock; `out` is
// private to the caller by contract, so out->mutex_ is deliberately not taken.
void MetricsRegistry::SnapshotInto(MetricsRegistry* out) const
    PROBCON_NO_THREAD_SAFETY_ANALYSIS {
  CHECK(out != nullptr);
  std::lock_guard<std::mutex> lock(mutex_);
  // Instrument copy constructors take their own synchronization (atomic loads for
  // counters/gauges, the instrument lock for histograms), so concurrent Record/Increment
  // calls on `this` stay safe while we copy.
  for (const auto& [name, counter] : counters_) {
    out->counters_.emplace(name, counter);
  }
  for (const auto& [name, gauge] : gauges_) {
    out->gauges_.emplace(name, gauge);
  }
  for (const auto& [name, histogram] : histograms_) {
    out->histograms_.emplace(name, histogram);
  }
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, counter] : counters_) {
    counter.Reset();
  }
  for (auto& [name, histogram] : histograms_) {
    histogram.Reset();
  }
}

}  // namespace probcon
