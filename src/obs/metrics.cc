#include "src/obs/metrics.h"

#include <algorithm>

#include "src/common/check.h"

namespace probcon {

HistogramOptions HistogramOptions::Fixed(std::vector<double> bounds) {
  CHECK(!bounds.empty());
  for (size_t i = 1; i < bounds.size(); ++i) {
    CHECK_LT(bounds[i - 1], bounds[i]) << "histogram bounds must be strictly increasing";
  }
  return HistogramOptions{std::move(bounds)};
}

HistogramOptions HistogramOptions::Exponential(double first_bound, double factor,
                                               int bucket_count) {
  CHECK_GT(first_bound, 0.0);
  CHECK_GT(factor, 1.0);
  CHECK_GT(bucket_count, 0);
  std::vector<double> bounds;
  bounds.reserve(static_cast<size_t>(bucket_count));
  double bound = first_bound;
  for (int i = 0; i < bucket_count; ++i) {
    bounds.push_back(bound);
    bound *= factor;
  }
  return HistogramOptions{std::move(bounds)};
}

Histogram::Histogram(HistogramOptions options) : bounds_(std::move(options.bounds)) {
  CHECK(!bounds_.empty());
  counts_.assign(bounds_.size() + 1, 0);
}

void Histogram::Record(double value) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  ++counts_[static_cast<size_t>(it - bounds_.begin())];
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
}

double Histogram::Mean() const {
  CHECK_GT(count_, 0u);
  return sum_ / static_cast<double>(count_);
}

double Histogram::Min() const {
  CHECK_GT(count_, 0u);
  return min_;
}

double Histogram::Max() const {
  CHECK_GT(count_, 0u);
  return max_;
}

double Histogram::ApproxQuantile(double q) const {
  CHECK_GT(count_, 0u);
  CHECK(q >= 0.0 && q <= 1.0);
  // Nearest-rank target (1-based), mirroring SampleStats::Percentile semantics.
  const uint64_t target =
      static_cast<uint64_t>(q * static_cast<double>(count_ - 1) + 0.5) + 1;
  uint64_t cumulative = 0;
  for (size_t bucket = 0; bucket < counts_.size(); ++bucket) {
    if (counts_[bucket] == 0) {
      continue;
    }
    if (cumulative + counts_[bucket] >= target) {
      // Interpolate within the bucket; clamp the edges to the observed extremes so
      // single-bucket histograms stay exact at q=0/1.
      const double low = bucket == 0 ? min_ : std::max(min_, bounds_[bucket - 1]);
      const double high = bucket == bounds_.size() ? max_ : std::min(max_, bounds_[bucket]);
      const double within =
          static_cast<double>(target - cumulative) / static_cast<double>(counts_[bucket]);
      return low + (high - low) * within;
    }
    cumulative += counts_[bucket];
  }
  return max_;  // Unreachable given the invariants, but keeps the compiler satisfied.
}

Counter& MetricsRegistry::GetCounter(const std::string& name) { return counters_[name]; }

Gauge& MetricsRegistry::GetGauge(const std::string& name) { return gauges_[name]; }

Histogram& MetricsRegistry::GetHistogram(const std::string& name,
                                         const HistogramOptions& options) {
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) {
    return it->second;
  }
  return histograms_.emplace(name, Histogram(options)).first->second;
}

const Counter* MetricsRegistry::FindCounter(const std::string& name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : &it->second;
}

const Gauge* MetricsRegistry::FindGauge(const std::string& name) const {
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : &it->second;
}

const Histogram* MetricsRegistry::FindHistogram(const std::string& name) const {
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

}  // namespace probcon
