#include "src/prob/binomial.h"

#include <cmath>

#include "src/common/check.h"
#include "src/prob/combinatorics.h"
#include "src/prob/kahan.h"

namespace probcon {
namespace {

void CheckParams(int n, double p) {
  CHECK_GE(n, 0);
  CHECK(p >= 0.0 && p <= 1.0) << "p out of range:" << p;
}

// Sum of pmf over [lo, hi], accumulated with compensation.
double PmfRangeSum(int n, int lo, int hi, double p) {
  KahanSum sum;
  for (int k = lo; k <= hi; ++k) {
    sum.Add(BinomialPmf(n, k, p));
  }
  return sum.Total();
}

}  // namespace

double BinomialPmf(int n, int k, double p) {
  CheckParams(n, p);
  if (k < 0 || k > n) {
    return 0.0;
  }
  if (p == 0.0) {
    return k == 0 ? 1.0 : 0.0;
  }
  if (p == 1.0) {
    return k == n ? 1.0 : 0.0;
  }
  const double log_pmf = LogChoose(n, k) + static_cast<double>(k) * std::log(p) +
                         static_cast<double>(n - k) * std::log1p(-p);
  return std::exp(log_pmf);
}

Probability BinomialCdf(int n, int k, double p) {
  CheckParams(n, p);
  if (k < 0) {
    return Probability::Zero();
  }
  if (k >= n) {
    return Probability::One();
  }
  // Pick the side with fewer terms around the mean so the summed mass is the small one.
  const double mean = BinomialMean(n, p);
  if (static_cast<double>(k) < mean) {
    return Probability::FromProbability(PmfRangeSum(n, 0, k, p));
  }
  return Probability::FromComplement(PmfRangeSum(n, k + 1, n, p));
}

Probability BinomialTailGe(int n, int k, double p) { return BinomialCdf(n, k - 1, p).Not(); }

double BinomialMean(int n, double p) {
  CheckParams(n, p);
  return static_cast<double>(n) * p;
}

double BinomialVariance(int n, double p) {
  CheckParams(n, p);
  return static_cast<double>(n) * p * (1.0 - p);
}

}  // namespace probcon
