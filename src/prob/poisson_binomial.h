// Poisson-binomial distribution: the failure-count law of a cluster whose nodes fail
// independently with *heterogeneous* probabilities p_1..p_N.
//
// This is the paper's central generalization: once per-node fault curves replace the uniform
// f-threshold assumption, the number of failed nodes follows a Poisson-binomial. Both
// Theorems 3.1 and 3.2 are predicates on the failure count alone, so evaluating a cluster
// reduces to tail sums of this distribution — O(N^2) instead of 2^N enumeration.

#ifndef PROBCON_SRC_PROB_POISSON_BINOMIAL_H_
#define PROBCON_SRC_PROB_POISSON_BINOMIAL_H_

#include <vector>

#include "src/prob/probability.h"

namespace probcon {

class PoissonBinomial {
 public:
  // `probabilities[i]` is node i's failure probability; all must lie in [0, 1].
  explicit PoissonBinomial(std::vector<double> probabilities);

  int n() const { return static_cast<int>(probabilities_.size()); }

  // P(X == k). Zero outside [0, n].
  double Pmf(int k) const;

  // P(X <= k), complement-tracked.
  Probability CdfLe(int k) const;

  // P(X >= k), complement-tracked.
  Probability TailGe(int k) const;

  double Mean() const;
  double Variance() const;

  const std::vector<double>& probabilities() const { return probabilities_; }
  const std::vector<double>& pmf() const { return pmf_; }

 private:
  std::vector<double> probabilities_;
  std::vector<double> pmf_;  // pmf_[k] = P(X == k), k in [0, n].
};

}  // namespace probcon

#endif  // PROBCON_SRC_PROB_POISSON_BINOMIAL_H_
