// Confidence intervals for Monte Carlo estimates of (possibly extreme) probabilities.

#ifndef PROBCON_SRC_PROB_INTERVAL_H_
#define PROBCON_SRC_PROB_INTERVAL_H_

#include <cstdint>

namespace probcon {

struct ConfidenceInterval {
  double point = 0.0;
  double low = 0.0;
  double high = 0.0;
};

// Wilson score interval for a binomial proportion with `successes` out of `trials`, at normal
// quantile `z` (1.96 ~ 95%). Well-behaved at 0 and `trials` successes, unlike the Wald
// interval, which matters when estimating rare failure events.
ConfidenceInterval WilsonInterval(uint64_t successes, uint64_t trials, double z = 1.96);

}  // namespace probcon

#endif  // PROBCON_SRC_PROB_INTERVAL_H_
