// Complement-tracked probability arithmetic.
//
// The paper reports reliability in "nines" — e.g. Raft at N=9, p_u=1% is 99.999998% safe and
// live. A plain double representation of 0.99999998 carries the failure mass (2e-8) with only
// ~8 significant digits to spare; chains of such operations destroy the very quantity being
// reported. `Probability` therefore tracks BOTH p and q = 1-p explicitly, performing every
// operation in formulas that keep the *small* side free of catastrophic cancellation:
//
//   Probability safe = Probability::FromComplement(3.37e-5);
//   safe.nines()            // 4.47...
//   FormatPercent(safe)     // "99.997%" (the paper's table formatting)
//
// Construction from either side preserves that side exactly; combinators (And/Or for
// independent events, disjoint sums, mixtures) propagate both sides.

#ifndef PROBCON_SRC_PROB_PROBABILITY_H_
#define PROBCON_SRC_PROB_PROBABILITY_H_

#include <ostream>
#include <string>

namespace probcon {

class Probability {
 public:
  // Zero probability.
  Probability() : p_(0.0), q_(1.0) {}

  // Constructs from the event probability p in [0, 1]. Exact in p.
  static Probability FromProbability(double p);
  // Constructs from the complement q = 1-p in [0, 1]. Exact in q; use when the event is
  // near-certain and q is the precisely known quantity.
  static Probability FromComplement(double q);

  static Probability Zero() { return FromProbability(0.0); }
  static Probability One() { return FromProbability(1.0); }

  double value() const { return p_; }
  double complement() const { return q_; }

  // Number of nines of the event: -log10(1-p). Infinite for p == 1.
  double nines() const;
  // Number of nines of the complement: -log10(p).
  double complement_nines() const;

  // Complement event.
  Probability Not() const;

  // Both of two independent events.
  Probability And(const Probability& other) const;
  // At least one of two independent events.
  Probability Or(const Probability& other) const;
  // Union of mutually exclusive events (p_a + p_b must be <= 1, modulo rounding).
  Probability SumDisjoint(const Probability& other) const;
  // Mixture: this with weight w, other with weight 1-w.
  Probability Mix(double w, const Probability& other) const;

  bool operator==(const Probability& other) const { return p_ == other.p_ && q_ == other.q_; }
  bool operator<(const Probability& other) const;
  bool operator>(const Probability& other) const { return other < *this; }

 private:
  Probability(double p, double q) : p_(p), q_(q) {}

  double p_;
  double q_;
};

// Renders with the adaptive precision the paper's tables use: two digits beyond the leading
// run of nines, minimum two decimals ("98.18%", "99.97%", "99.99993%").
std::string FormatPercent(const Probability& prob);

// Renders as "X.XX nines" for log-scale comparisons.
std::string FormatNines(const Probability& prob);

std::ostream& operator<<(std::ostream& os, const Probability& prob);

}  // namespace probcon

#endif  // PROBCON_SRC_PROB_PROBABILITY_H_
