#include "src/prob/combinatorics.h"

#include <cmath>
#include <limits>

#include "src/common/check.h"

namespace probcon {

double LogFactorial(int n) {
  CHECK_GE(n, 0);
  return std::lgamma(static_cast<double>(n) + 1.0);
}

double LogChoose(int n, int k) {
  CHECK_GE(n, 0);
  if (k < 0 || k > n) {
    return -std::numeric_limits<double>::infinity();
  }
  return LogFactorial(n) - LogFactorial(k) - LogFactorial(n - k);
}

double Choose(int n, int k) {
  CHECK_GE(n, 0);
  if (k < 0 || k > n) {
    return 0.0;
  }
  k = std::min(k, n - k);
  // Multiplicative formula keeps intermediate values small and exact for modest n.
  double result = 1.0;
  for (int i = 1; i <= k; ++i) {
    result = result * static_cast<double>(n - k + i) / static_cast<double>(i);
  }
  return std::round(result);
}

uint64_t ChooseExact(int n, int k) {
  CHECK_GE(n, 0);
  if (k < 0 || k > n) {
    return 0;
  }
  k = std::min(k, n - k);
  __uint128_t result = 1;
  for (int i = 1; i <= k; ++i) {
    result = result * static_cast<unsigned>(n - k + i) / static_cast<unsigned>(i);
    CHECK(result <= std::numeric_limits<uint64_t>::max()) << "C(" << n << "," << k << ") overflows";
  }
  return static_cast<uint64_t>(result);
}

}  // namespace probcon
