// Combinatorial helpers: exact and log-domain binomial coefficients, log-factorials.

#ifndef PROBCON_SRC_PROB_COMBINATORICS_H_
#define PROBCON_SRC_PROB_COMBINATORICS_H_

#include <cstdint>

namespace probcon {

// ln(n!) via lgamma; exact enough for all n used here.
double LogFactorial(int n);

// ln C(n, k). Returns -inf for k < 0 or k > n.
double LogChoose(int n, int k);

// Exact C(n, k) as a double (exact for results below 2^53; callers needing tail probabilities
// at large n should use LogChoose).
double Choose(int n, int k);

// Exact C(n, k) as unsigned 64-bit; CHECK-fails on overflow. Useful for enumeration counts.
uint64_t ChooseExact(int n, int k);

}  // namespace probcon

#endif  // PROBCON_SRC_PROB_COMBINATORICS_H_
