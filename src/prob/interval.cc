#include "src/prob/interval.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"

namespace probcon {

ConfidenceInterval WilsonInterval(uint64_t successes, uint64_t trials, double z) {
  CHECK_GT(trials, 0u);
  CHECK_LE(successes, trials);
  const double n = static_cast<double>(trials);
  const double phat = static_cast<double>(successes) / n;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = (phat + z2 / (2.0 * n)) / denom;
  const double spread =
      z * std::sqrt(phat * (1.0 - phat) / n + z2 / (4.0 * n * n)) / denom;
  ConfidenceInterval ci;
  ci.point = phat;
  ci.low = std::max(0.0, center - spread);
  ci.high = std::min(1.0, center + spread);
  return ci;
}

}  // namespace probcon
