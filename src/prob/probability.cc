#include "src/prob/probability.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

#include "src/common/check.h"

namespace probcon {
namespace {

double Clamp01(double x) { return std::min(1.0, std::max(0.0, x)); }

}  // namespace

Probability Probability::FromProbability(double p) {
  CHECK(std::isfinite(p)) << "probability must be finite, got" << p;
  CHECK(p >= -1e-12 && p <= 1.0 + 1e-12) << "probability out of range:" << p;
  p = Clamp01(p);
  return Probability(p, 1.0 - p);
}

Probability Probability::FromComplement(double q) {
  CHECK(std::isfinite(q)) << "complement must be finite, got" << q;
  CHECK(q >= -1e-12 && q <= 1.0 + 1e-12) << "complement out of range:" << q;
  q = Clamp01(q);
  return Probability(1.0 - q, q);
}

double Probability::nines() const {
  if (q_ == 0.0) {
    return std::numeric_limits<double>::infinity();
  }
  return -std::log10(q_);
}

double Probability::complement_nines() const {
  if (p_ == 0.0) {
    return std::numeric_limits<double>::infinity();
  }
  return -std::log10(p_);
}

Probability Probability::Not() const { return Probability(q_, p_); }

Probability Probability::And(const Probability& other) const {
  // p = pa*pb is accurate when small. q = 1 - pa*pb = qa + qb - qa*qb keeps the small-q case
  // (both events near-certain) cancellation-free.
  const double p = p_ * other.p_;
  const double q = Clamp01(q_ + other.q_ - q_ * other.q_);
  return Probability(Clamp01(p), q);
}

Probability Probability::Or(const Probability& other) const {
  const double p = Clamp01(p_ + other.p_ - p_ * other.p_);
  const double q = q_ * other.q_;
  return Probability(p, Clamp01(q));
}

Probability Probability::SumDisjoint(const Probability& other) const {
  const double p = Clamp01(p_ + other.p_);
  // q = 1 - (pa + pb) = qa - pb. Accurate when qa dominates; callers that sum many tiny
  // disjoint masses should accumulate with KahanSum and construct once at the end.
  const double q = Clamp01(q_ - other.p_);
  return Probability(p, q);
}

Probability Probability::Mix(double w, const Probability& other) const {
  CHECK(w >= 0.0 && w <= 1.0) << "mixture weight out of range:" << w;
  const double p = Clamp01(w * p_ + (1.0 - w) * other.p_);
  const double q = Clamp01(w * q_ + (1.0 - w) * other.q_);
  return Probability(p, q);
}

bool Probability::operator<(const Probability& other) const {
  // Compare on whichever side is better resolved: for near-one values the complements carry
  // the information.
  if (p_ != other.p_) {
    return p_ < other.p_;
  }
  return q_ > other.q_;
}

std::string FormatPercent(const Probability& prob) {
  const double q = prob.complement();
  if (q == 0.0) {
    return "100%";
  }
  // Two significant digits past the leading run of nines, at least two decimals.
  int decimals = static_cast<int>(std::floor(-std::log10(q))) - 1;
  decimals = std::max(2, std::min(decimals, 12));
  const double percent = 100.0 * (1.0 - q);
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f%%", decimals, percent);
  return buffer;
}

std::string FormatNines(const Probability& prob) {
  char buffer[64];
  if (std::isinf(prob.nines())) {
    return "inf nines";
  }
  std::snprintf(buffer, sizeof(buffer), "%.2f nines", prob.nines());
  return buffer;
}

std::ostream& operator<<(std::ostream& os, const Probability& prob) {
  return os << FormatPercent(prob);
}

}  // namespace probcon
