// Compensated (Kahan-Neumaier) floating-point summation.
//
// Reliability analysis sums up to 2^25 configuration probabilities whose magnitudes span many
// orders of magnitude; naive accumulation loses exactly the low-order mass that determines the
// "nines". KahanSum keeps a running compensation term so the result is accurate to ~1 ulp of
// the true sum.

#ifndef PROBCON_SRC_PROB_KAHAN_H_
#define PROBCON_SRC_PROB_KAHAN_H_

#include <cmath>

namespace probcon {

class KahanSum {
 public:
  KahanSum() = default;
  explicit KahanSum(double initial) : sum_(initial) {}

  void Add(double x) {
    const double t = sum_ + x;
    if (std::fabs(sum_) >= std::fabs(x)) {
      compensation_ += (sum_ - t) + x;
    } else {
      compensation_ += (x - t) + sum_;
    }
    sum_ = t;
  }

  KahanSum& operator+=(double x) {
    Add(x);
    return *this;
  }

  double Total() const { return sum_ + compensation_; }

  // Folds another compensated sum into this one without collapsing it to a plain double
  // first: both the partial's sum and its compensation enter this sum's compensated
  // stream. Used to merge per-chunk partials in fixed chunk order, which keeps parallel
  // reductions bit-identical regardless of how chunks were scheduled.
  void Merge(const KahanSum& other) {
    Add(other.sum_);
    Add(other.compensation_);
  }

  void Reset() {
    sum_ = 0.0;
    compensation_ = 0.0;
  }

 private:
  double sum_ = 0.0;
  double compensation_ = 0.0;
};

}  // namespace probcon

#endif  // PROBCON_SRC_PROB_KAHAN_H_
