#include "src/prob/poisson_binomial.h"

#include <cmath>

#include "src/common/check.h"
#include "src/prob/kahan.h"

namespace probcon {

PoissonBinomial::PoissonBinomial(std::vector<double> probabilities)
    : probabilities_(std::move(probabilities)) {
  for (const double p : probabilities_) {
    CHECK(p >= 0.0 && p <= 1.0) << "node failure probability out of range:" << p;
  }
  // Standard convolution DP. pmf after adding node with failure prob p:
  //   pmf'[k] = pmf[k] * (1-p) + pmf[k-1] * p
  pmf_.assign(probabilities_.size() + 1, 0.0);
  pmf_[0] = 1.0;
  int upper = 0;
  for (const double p : probabilities_) {
    ++upper;
    for (int k = upper; k >= 1; --k) {
      pmf_[k] = pmf_[k] * (1.0 - p) + pmf_[k - 1] * p;
    }
    pmf_[0] *= (1.0 - p);
  }
}

double PoissonBinomial::Pmf(int k) const {
  if (k < 0 || k > n()) {
    return 0.0;
  }
  return pmf_[k];
}

Probability PoissonBinomial::CdfLe(int k) const {
  if (k < 0) {
    return Probability::Zero();
  }
  if (k >= n()) {
    return Probability::One();
  }
  // Sum whichever side holds less mass; the DP keeps small far-tail terms to full relative
  // precision because they are formed purely from products of small numbers.
  const double mean = Mean();
  if (static_cast<double>(k) < mean) {
    KahanSum low;
    for (int i = 0; i <= k; ++i) {
      low.Add(pmf_[i]);
    }
    return Probability::FromProbability(low.Total());
  }
  KahanSum high;
  for (int i = k + 1; i <= n(); ++i) {
    high.Add(pmf_[i]);
  }
  return Probability::FromComplement(high.Total());
}

Probability PoissonBinomial::TailGe(int k) const { return CdfLe(k - 1).Not(); }

double PoissonBinomial::Mean() const {
  KahanSum sum;
  for (const double p : probabilities_) {
    sum.Add(p);
  }
  return sum.Total();
}

double PoissonBinomial::Variance() const {
  KahanSum sum;
  for (const double p : probabilities_) {
    sum.Add(p * (1.0 - p));
  }
  return sum.Total();
}

}  // namespace probcon
