// Binomial distribution with complement-safe tails.
//
// This is the fast path behind Tables 1 and 2 of the paper: with a uniform per-node failure
// probability p, the failure count is Binomial(N, p) and every safety/liveness predicate in
// Theorems 3.1/3.2 reduces to a tail probability. Tails are computed by summing pmf terms on
// the *smaller* side so that nine-counting precision survives.

#ifndef PROBCON_SRC_PROB_BINOMIAL_H_
#define PROBCON_SRC_PROB_BINOMIAL_H_

#include "src/prob/probability.h"

namespace probcon {

// P(X == k) for X ~ Binomial(n, p). Computed in log domain; accurate into the far tails.
double BinomialPmf(int n, int k, double p);

// P(X <= k), complement-tracked.
Probability BinomialCdf(int n, int k, double p);

// P(X >= k), complement-tracked.
Probability BinomialTailGe(int n, int k, double p);

// Expected value n*p and variance n*p*(1-p).
double BinomialMean(int n, double p);
double BinomialVariance(int n, double p);

}  // namespace probcon

#endif  // PROBCON_SRC_PROB_BINOMIAL_H_
