#include "src/exec/thread_pool.h"

#include <chrono>
#include <cstdlib>
#include <string>
#include <utility>

#include "src/common/check.h"
#include "src/obs/metrics.h"

namespace probcon {
namespace {

// Identifies the pool (and worker slot) the current thread belongs to, so nested Submit
// calls can target the submitting worker's own queue.
struct WorkerIdentity {
  ThreadPool* pool = nullptr;
  size_t index = 0;
};

thread_local WorkerIdentity tls_worker;

// The active ScopedThreadPool override, if any. Written only from the (single) thread that
// constructs/destroys the guard; read from any thread entering a parallel section.
std::atomic<ThreadPool*> g_global_override{nullptr};

}  // namespace

ThreadPool::ThreadPool(int worker_count) {
  CHECK_GE(worker_count, 0);
  workers_.reserve(static_cast<size_t>(worker_count));
  for (int i = 0; i < worker_count; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  // Start threads only after the worker vector is complete: WorkerLoop scans all queues.
  for (int i = 0; i < worker_count; ++i) {
    workers_[static_cast<size_t>(i)]->thread =
        std::thread([this, i]() { WorkerLoop(static_cast<size_t>(i)); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(wake_mutex_);
    shutdown_.store(true, std::memory_order_relaxed);
  }
  wake_cv_.notify_all();
  for (auto& worker : workers_) {
    if (worker->thread.joinable()) {
      worker->thread.join();
    }
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  tasks_submitted_.fetch_add(1, std::memory_order_relaxed);
  if (workers_.empty()) {
    // Inline pool: execute on the spot. Callers built on ParallelFor never see the
    // difference because chunk results are merged by index, not completion order.
    // NOLINTNEXTLINE(probcon-determinism): wall-time pool telemetry only; never in results
    const auto start = std::chrono::steady_clock::now();
    task();
    // NOLINTNEXTLINE(probcon-determinism): wall-time pool telemetry only; never in results
    const auto elapsed = std::chrono::steady_clock::now() - start;
    external_busy_ns_.fetch_add(
        static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count()),
        std::memory_order_relaxed);
    tasks_executed_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  size_t target;
  if (tls_worker.pool == this) {
    target = tls_worker.index;
  } else {
    target = next_queue_.fetch_add(1, std::memory_order_relaxed) % workers_.size();
  }
  {
    std::lock_guard<std::mutex> lock(workers_[target]->mutex);
    workers_[target]->queue.push_back(std::move(task));
  }
  pending_.fetch_add(1, std::memory_order_release);
  {
    // Serialize against a worker that is between evaluating the sleep predicate and
    // actually sleeping, so the notify below cannot be lost.
    std::lock_guard<std::mutex> lock(wake_mutex_);
  }
  wake_cv_.notify_one();
}

bool ThreadPool::PopLocal(size_t index, std::function<void()>& task) {
  Worker& worker = *workers_[index];
  std::lock_guard<std::mutex> lock(worker.mutex);
  if (worker.queue.empty()) {
    return false;
  }
  // LIFO on the owner's side: the most recently pushed task is the cache-warm one.
  task = std::move(worker.queue.back());
  worker.queue.pop_back();
  pending_.fetch_sub(1, std::memory_order_relaxed);
  return true;
}

bool ThreadPool::Steal(size_t start_hint, std::function<void()>& task) {
  const size_t n = workers_.size();
  for (size_t offset = 0; offset < n; ++offset) {
    Worker& victim = *workers_[(start_hint + offset) % n];
    std::lock_guard<std::mutex> lock(victim.mutex);
    if (victim.queue.empty()) {
      continue;
    }
    // FIFO on the thief's side: take the oldest task, which is the furthest from the
    // owner's working set.
    task = std::move(victim.queue.front());
    victim.queue.pop_front();
    pending_.fetch_sub(1, std::memory_order_relaxed);
    steals_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  return false;
}

void ThreadPool::RunTask(std::function<void()>& task, std::atomic<uint64_t>& busy_ns) {
  // NOLINTNEXTLINE(probcon-determinism): wall-time pool telemetry only; never in results
  const auto start = std::chrono::steady_clock::now();
  task();
  // NOLINTNEXTLINE(probcon-determinism): wall-time pool telemetry only; never in results
  const auto elapsed = std::chrono::steady_clock::now() - start;
  busy_ns.fetch_add(static_cast<uint64_t>(
                        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count()),
                    std::memory_order_relaxed);
  tasks_executed_.fetch_add(1, std::memory_order_relaxed);
}

bool ThreadPool::TryRunOneTask() {
  if (workers_.empty()) {
    return false;
  }
  std::function<void()> task;
  size_t hint;
  std::atomic<uint64_t>* busy;
  if (tls_worker.pool == this) {
    hint = tls_worker.index;
    busy = &workers_[tls_worker.index]->busy_ns;
  } else {
    hint = next_queue_.fetch_add(1, std::memory_order_relaxed) % workers_.size();
    busy = &external_busy_ns_;
  }
  if (!Steal(hint, task)) {
    return false;
  }
  RunTask(task, *busy);
  return true;
}

void ThreadPool::WorkerLoop(size_t index) {
  tls_worker = WorkerIdentity{this, index};
  Worker& self = *workers_[index];
  std::function<void()> task;
  while (true) {
    if (PopLocal(index, task)) {
      RunTask(task, self.busy_ns);
      task = nullptr;
      continue;
    }
    bool stole = false;
    {
      // Steal() scans our own (empty) queue too; start one past us.
      stole = Steal(index + 1, task);
    }
    if (stole) {
      RunTask(task, self.busy_ns);
      task = nullptr;
      continue;
    }
    std::unique_lock<std::mutex> lock(wake_mutex_);
    if (shutdown_.load(std::memory_order_relaxed) &&
        pending_.load(std::memory_order_acquire) == 0) {
      return;
    }
    if (!shutdown_.load(std::memory_order_relaxed)) {
      wake_cv_.wait(lock, [this]() {
        return shutdown_.load(std::memory_order_relaxed) ||
               pending_.load(std::memory_order_acquire) > 0;
      });
    }
    // Shutdown with tasks still pending: loop around and drain them.
  }
}

ThreadPool::Stats ThreadPool::GetStats() const {
  Stats stats;
  stats.tasks_submitted = tasks_submitted_.load(std::memory_order_relaxed);
  stats.tasks_executed = tasks_executed_.load(std::memory_order_relaxed);
  stats.steals = steals_.load(std::memory_order_relaxed);
  stats.worker_busy_seconds.reserve(workers_.size());
  for (const auto& worker : workers_) {
    stats.worker_busy_seconds.push_back(
        static_cast<double>(worker->busy_ns.load(std::memory_order_relaxed)) * 1e-9);
  }
  stats.external_busy_seconds =
      static_cast<double>(external_busy_ns_.load(std::memory_order_relaxed)) * 1e-9;
  return stats;
}

void ThreadPool::ExportMetrics(MetricsRegistry& registry, const std::string& prefix) const {
  const Stats stats = GetStats();
  registry.GetCounter(prefix + ".tasks_submitted").Increment(stats.tasks_submitted);
  registry.GetCounter(prefix + ".tasks_executed").Increment(stats.tasks_executed);
  registry.GetCounter(prefix + ".steals").Increment(stats.steals);
  registry.GetGauge(prefix + ".workers").Set(static_cast<double>(worker_count()));
  registry.GetGauge(prefix + ".queue_depth").Set(static_cast<double>(queue_depth()));
  for (size_t i = 0; i < stats.worker_busy_seconds.size(); ++i) {
    registry.GetGauge(prefix + ".worker" + std::to_string(i) + ".busy_seconds")
        .Set(stats.worker_busy_seconds[i]);
  }
  registry.GetGauge(prefix + ".external_busy_seconds").Set(stats.external_busy_seconds);
}

int ThreadPool::DefaultWorkerCount() {
  if (const char* raw = std::getenv("PROBCON_THREADS"); raw != nullptr && *raw != '\0') {
    char* end = nullptr;
    const long parsed = std::strtol(raw, &end, 10);
    if (end != nullptr && *end == '\0' && parsed >= 0 && parsed <= 1024) {
      return static_cast<int>(parsed);
    }
  }
  const unsigned hardware = std::thread::hardware_concurrency();
  return hardware == 0 ? 1 : static_cast<int>(hardware);
}

ThreadPool& ThreadPool::Global() {
  if (ThreadPool* override_pool = g_global_override.load(std::memory_order_acquire)) {
    return *override_pool;
  }
  static ThreadPool pool(DefaultWorkerCount());
  return pool;
}

ScopedThreadPool::ScopedThreadPool(int worker_count)
    : pool_(std::make_unique<ThreadPool>(worker_count)),
      previous_(g_global_override.exchange(pool_.get(), std::memory_order_acq_rel)) {}

ScopedThreadPool::~ScopedThreadPool() {
  g_global_override.store(previous_, std::memory_order_release);
}

}  // namespace probcon
