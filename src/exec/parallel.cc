#include "src/exec/parallel.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <exception>
#include <limits>
#include <memory>
#include <mutex>

#include "src/common/check.h"
#include "src/common/thread_annotations.h"

namespace probcon {
namespace {

// Shared state of one ParallelFor call. Heap-allocated and owned jointly with the helper
// tasks: a helper that never got scheduled before the loop finished elsewhere may run
// after ParallelFor returned — it then finds the cursor exhausted and exits without
// touching anything but the cursor, which the shared_ptr keeps alive.
struct ForGroup {
  std::function<void(uint64_t, uint64_t, uint64_t)> body;
  uint64_t begin = 0;
  uint64_t end = 0;
  uint64_t chunk_size = 0;
  uint64_t chunks = 0;
  std::atomic<uint64_t> next_chunk{0};
  // Completion bookkeeping. The group mutex is a LEAF: chunk bodies run OUTSIDE it, and
  // nothing else is ever acquired while it is held (see DESIGN.md decision 12).
  std::mutex mutex;
  std::condition_variable done;
  uint64_t completed PROBCON_GUARDED_BY(mutex) = 0;
  std::exception_ptr error PROBCON_GUARDED_BY(mutex);
  uint64_t error_chunk PROBCON_GUARDED_BY(mutex) = std::numeric_limits<uint64_t>::max();
};

// Claims chunks off the group's cursor and runs them until none remain. This is the ONLY
// work a ParallelFor participant ever executes while a loop is outstanding. In particular
// the waiting caller must never fall back to running arbitrary queued pool tasks: a queued
// task is allowed to block (e.g. a serve request waiting on a single-flight cache leader),
// and executing one on the stack of the very computation it waits for deadlocks the
// process. Strict chunk-claiming makes the caller's participation closed over this loop's
// own work, which is what actually guarantees nested parallel sections cannot deadlock.
void RunChunks(const std::shared_ptr<ForGroup>& group) {
  while (true) {
    const uint64_t chunk = group->next_chunk.fetch_add(1, std::memory_order_relaxed);
    if (chunk >= group->chunks) {
      return;
    }
    const uint64_t chunk_begin = group->begin + chunk * group->chunk_size;
    const uint64_t chunk_end = std::min(group->end, chunk_begin + group->chunk_size);
    std::exception_ptr error;
    try {
      group->body(chunk_begin, chunk_end, chunk);
    } catch (...) {
      error = std::current_exception();
    }
    std::lock_guard<std::mutex> lock(group->mutex);
    if (error && chunk < group->error_chunk) {
      group->error_chunk = chunk;
      group->error = error;
    }
    if (++group->completed == group->chunks) {
      group->done.notify_all();
    }
  }
}

}  // namespace

// NO_THREAD_SAFETY_ANALYSIS: the completion wait reads ForGroup::completed under a
// std::unique_lock, which clang's analysis cannot follow; probcon-lint still covers it.
void ParallelFor(uint64_t begin, uint64_t end, uint64_t chunk_size,
                 const std::function<void(uint64_t, uint64_t, uint64_t)>& body,
                 ThreadPool* pool) PROBCON_NO_THREAD_SAFETY_ANALYSIS {
  CHECK_GT(chunk_size, 0u);
  const uint64_t total = end > begin ? end - begin : 0;
  if (total == 0) {
    return;
  }
  ThreadPool& executor = pool != nullptr ? *pool : ThreadPool::Global();
  const uint64_t chunks = (total + chunk_size - 1) / chunk_size;
  if (chunks == 1 || executor.worker_count() == 0) {
    // Sequential fast path, in chunk order; exceptions propagate directly.
    for (uint64_t chunk = 0; chunk < chunks; ++chunk) {
      const uint64_t chunk_begin = begin + chunk * chunk_size;
      const uint64_t chunk_end = std::min(end, chunk_begin + chunk_size);
      body(chunk_begin, chunk_end, chunk);
    }
    return;
  }

  auto group = std::make_shared<ForGroup>();
  group->body = body;  // Copied: a late helper may outlive the caller's reference.
  group->begin = begin;
  group->end = end;
  group->chunk_size = chunk_size;
  group->chunks = chunks;

  // One helper per worker (capped by the chunks the caller won't take itself). Helpers
  // that find the cursor already exhausted exit immediately, so over-submitting is
  // harmless; under-submitting just means the caller claims more chunks.
  const uint64_t helpers =
      std::min(chunks - 1, static_cast<uint64_t>(executor.worker_count()));
  for (uint64_t i = 0; i < helpers; ++i) {
    executor.Submit([group]() { RunChunks(group); });
  }
  RunChunks(group);

  // Every chunk is claimed once the caller's loop exits; wait only for claimed chunks
  // still finishing on workers — a bounded wait, no generic task-stealing.
  std::unique_lock<std::mutex> lock(group->mutex);
  while (group->completed != group->chunks) {
    group->done.wait(lock);
  }
  if (group->error) {
    std::rethrow_exception(group->error);
  }
}

}  // namespace probcon
