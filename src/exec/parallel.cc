#include "src/exec/parallel.h"

#include <algorithm>
#include <condition_variable>
#include <exception>
#include <limits>
#include <mutex>

#include "src/common/check.h"

namespace probcon {
namespace {

// Completion state shared by the chunk tasks of one ParallelFor call. The object lives on
// the caller's stack; tasks touch it only before releasing `mutex` for the last time, and
// the caller returns only after observing remaining == 0 under that same mutex, so the
// tasks can never outlive it.
struct ForGroup {
  std::mutex mutex;
  std::condition_variable done;
  uint64_t remaining = 0;
  std::exception_ptr error;
  uint64_t error_chunk = std::numeric_limits<uint64_t>::max();
};

}  // namespace

void ParallelFor(uint64_t begin, uint64_t end, uint64_t chunk_size,
                 const std::function<void(uint64_t, uint64_t, uint64_t)>& body,
                 ThreadPool* pool) {
  CHECK_GT(chunk_size, 0u);
  const uint64_t total = end > begin ? end - begin : 0;
  if (total == 0) {
    return;
  }
  ThreadPool& executor = pool != nullptr ? *pool : ThreadPool::Global();
  const uint64_t chunks = (total + chunk_size - 1) / chunk_size;
  if (chunks == 1 || executor.worker_count() == 0) {
    // Sequential fast path, in chunk order; exceptions propagate directly.
    for (uint64_t chunk = 0; chunk < chunks; ++chunk) {
      const uint64_t chunk_begin = begin + chunk * chunk_size;
      const uint64_t chunk_end = std::min(end, chunk_begin + chunk_size);
      body(chunk_begin, chunk_end, chunk);
    }
    return;
  }

  ForGroup group;
  group.remaining = chunks;
  for (uint64_t chunk = 0; chunk < chunks; ++chunk) {
    const uint64_t chunk_begin = begin + chunk * chunk_size;
    const uint64_t chunk_end = std::min(end, chunk_begin + chunk_size);
    executor.Submit([&group, &body, chunk_begin, chunk_end, chunk]() {
      std::exception_ptr error;
      try {
        body(chunk_begin, chunk_end, chunk);
      } catch (...) {
        error = std::current_exception();
      }
      std::lock_guard<std::mutex> lock(group.mutex);
      if (error && chunk < group.error_chunk) {
        group.error_chunk = chunk;
        group.error = error;
      }
      if (--group.remaining == 0) {
        group.done.notify_all();
      }
    });
  }

  // Help drain the pool while our chunks are outstanding; sleep only when every queue is
  // empty (our remaining chunks are then running on workers).
  while (true) {
    {
      std::unique_lock<std::mutex> lock(group.mutex);
      if (group.remaining == 0) {
        break;
      }
    }
    if (!executor.TryRunOneTask()) {
      std::unique_lock<std::mutex> lock(group.mutex);
      group.done.wait(lock, [&group]() { return group.remaining == 0; });
      break;
    }
  }
  if (group.error) {
    std::rethrow_exception(group.error);
  }
}

}  // namespace probcon
