// Deterministic parallel loops over integer ranges, built on ThreadPool.
//
// All three helpers follow the exec determinism contract (thread_pool.h): work is split
// into fixed-size chunks, each chunk produces an independent result, and results are
// combined in ascending chunk order on the calling thread. Chunk size is part of an
// algorithm's definition — changing it changes floating-point merge order — so callers pick
// a constant and keep it; the worker count never appears in the math.
//
// ParallelFor blocks until every chunk has run. The calling thread participates by
// claiming chunks of ITS OWN loop off a shared cursor — never by running arbitrary queued
// pool tasks, which may block on unrelated synchronization (a queued task that waits on
// the caller's computation would deadlock against it). Claiming guarantees nested parallel
// sections cannot deadlock, and a 0-worker pool degrades to a plain sequential loop. If chunk bodies throw, the exception
// from the LOWEST-indexed failing chunk is rethrown after all chunks finish — deterministic
// error reporting under nondeterministic scheduling.

#ifndef PROBCON_SRC_EXEC_PARALLEL_H_
#define PROBCON_SRC_EXEC_PARALLEL_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <utility>
#include <vector>

#include "src/exec/thread_pool.h"

namespace probcon {

// Runs body(chunk_begin, chunk_end, chunk_index) over [begin, end) split into chunks of
// `chunk_size` (the last chunk may be short). Chunks execute concurrently on `pool`
// (nullptr = ThreadPool::Global()); the call returns once all chunks completed.
void ParallelFor(uint64_t begin, uint64_t end, uint64_t chunk_size,
                 const std::function<void(uint64_t, uint64_t, uint64_t)>& body,
                 ThreadPool* pool = nullptr);

// Map-reduce over [begin, end): chunk_fn(chunk_begin, chunk_end, chunk_index) -> Result
// per chunk, then merge(acc, std::move(partial)) folded in ascending chunk order starting
// from `init`. Bit-identical for any worker count (including 0) as long as chunk_size is
// held fixed.
template <typename Result, typename ChunkFn, typename MergeFn>
Result ParallelReduce(uint64_t begin, uint64_t end, uint64_t chunk_size, Result init,
                      const ChunkFn& chunk_fn, const MergeFn& merge,
                      ThreadPool* pool = nullptr) {
  const uint64_t total = end > begin ? end - begin : 0;
  if (total == 0) {
    return init;
  }
  const uint64_t chunks = (total + chunk_size - 1) / chunk_size;
  std::vector<std::optional<Result>> partials(chunks);
  ParallelFor(
      begin, end, chunk_size,
      [&](uint64_t chunk_begin, uint64_t chunk_end, uint64_t chunk_index) {
        partials[chunk_index].emplace(chunk_fn(chunk_begin, chunk_end, chunk_index));
      },
      pool);
  Result acc = std::move(init);
  for (auto& partial : partials) {
    merge(acc, std::move(*partial));
  }
  return acc;
}

// Runs `trials` independent evaluations of fn(trial_index) concurrently — one task per
// trial, sized for heavyweight bodies like full simulator runs — and returns the results
// in trial order. Deterministic whenever fn(i) is a pure function of i.
template <typename Fn>
auto RunTrials(uint64_t trials, const Fn& fn, ThreadPool* pool = nullptr)
    -> std::vector<decltype(fn(uint64_t{0}))> {
  using Result = decltype(fn(uint64_t{0}));
  std::vector<std::optional<Result>> slots(trials);
  ParallelFor(
      0, trials, 1,
      [&](uint64_t begin, uint64_t end, uint64_t /*chunk_index*/) {
        for (uint64_t i = begin; i < end; ++i) {
          slots[i].emplace(fn(i));
        }
      },
      pool);
  std::vector<Result> results;
  results.reserve(trials);
  for (auto& slot : slots) {
    results.push_back(std::move(*slot));
  }
  return results;
}

}  // namespace probcon

#endif  // PROBCON_SRC_EXEC_PARALLEL_H_
