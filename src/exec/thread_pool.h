// probcon::exec — a deterministic parallel runtime for the toolkit's embarrassingly
// parallel workloads: Monte Carlo estimation, exact 2^N enumeration, and independent
// simulator trials.
//
// The pool is a fixed-size set of workers, each owning a deque of tasks. Submission from a
// worker thread pushes to that worker's own queue; external submission round-robins across
// queues. Idle workers pop their own queue LIFO and steal from other queues FIFO, so load
// balances without a central lock on the hot path. Callers that wait for a batch of tasks
// (ParallelFor in parallel.h) help execute queued tasks instead of blocking, which makes
// nested parallel sections deadlock-free and lets a 1-worker (or even 0-worker) pool make
// progress.
//
// DETERMINISM CONTRACT (see docs/PERFORMANCE.md): the pool itself schedules
// nondeterministically, but every parallel algorithm built on it partitions work into
// chunks whose SIZE is a fixed constant — never a function of the worker count — computes
// an independent partial result per chunk, and merges partials in ascending chunk order on
// the calling thread. Under that discipline results are bit-identical for any
// PROBCON_THREADS value, including 0, which is what tests/exec/ verifies.
//
// Sizing: ThreadPool::Global() reads PROBCON_THREADS (0 = run everything inline on the
// calling thread); unset or empty falls back to std::thread::hardware_concurrency().

#ifndef PROBCON_SRC_EXEC_THREAD_POOL_H_
#define PROBCON_SRC_EXEC_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/common/thread_annotations.h"

namespace probcon {

class MetricsRegistry;

class ThreadPool {
 public:
  // Spawns `worker_count` workers (0 = no threads; Submit runs tasks inline).
  explicit ThreadPool(int worker_count);

  // Joins all workers after draining every queued task.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int worker_count() const { return static_cast<int>(workers_.size()); }

  // Enqueues a task. From a worker of this pool the task lands on that worker's own queue
  // (cheap nested submission); otherwise queues are filled round-robin.
  void Submit(std::function<void()> task);

  // Pops and runs one queued task, scanning all queues. Returns false when every queue is
  // empty. Used by waiters to help instead of blocking.
  bool TryRunOneTask();

  // Tasks queued but not yet popped, summed over every worker queue — a point-in-time
  // backlog signal (the serving daemon exports it as the exec.pool.queue_depth gauge).
  uint64_t queue_depth() const { return pending_.load(std::memory_order_relaxed); }

  // Point-in-time scheduler statistics.
  struct Stats {
    uint64_t tasks_submitted = 0;
    uint64_t tasks_executed = 0;
    // Cross-queue takes: worker-from-other-worker plus caller help via TryRunOneTask.
    uint64_t steals = 0;
    // Time spent inside tasks, per worker; helper (non-worker) time is aggregated last.
    std::vector<double> worker_busy_seconds;
    double external_busy_seconds = 0.0;
  };
  Stats GetStats() const;

  // Writes the stats snapshot into `registry` as counters/gauges under `prefix`:
  // <prefix>.tasks_submitted, .tasks_executed, .steals (counters), <prefix>.workers,
  // .queue_depth, .worker<i>.busy_seconds, .external_busy_seconds (gauges). Counters are
  // Incremented by the snapshot values, so call this once per registry (a fresh snapshot
  // registry per stats request), after — or at a point-in-time during — the parallel work
  // of interest.
  void ExportMetrics(MetricsRegistry& registry, const std::string& prefix = "exec.pool") const;

  // The process-wide pool, sized by DefaultWorkerCount() on first use. Tests and benches
  // substitute their own via ScopedThreadPool.
  static ThreadPool& Global();

  // PROBCON_THREADS if set to a valid non-negative integer, else hardware_concurrency().
  static int DefaultWorkerCount();

 private:
  friend class ScopedThreadPool;

  // Per-worker queue. The queue mutex is a LEAF: no task body runs under it, and no other
  // pool lock is taken while it is held (see DESIGN.md decision 12).
  struct Worker {
    mutable std::mutex mutex;
    std::deque<std::function<void()>> queue PROBCON_GUARDED_BY(mutex);
    std::atomic<uint64_t> busy_ns{0};
    std::thread thread;
  };

  void WorkerLoop(size_t index);
  bool PopLocal(size_t index, std::function<void()>& task);
  // Steals the oldest task from any other queue, scanning from `start_hint`.
  bool Steal(size_t start_hint, std::function<void()>& task);
  void RunTask(std::function<void()>& task, std::atomic<uint64_t>& busy_ns);

  std::vector<std::unique_ptr<Worker>> workers_;

  // Sleep/wake handshake only; the predicate state itself is atomic. Also a LEAF — held
  // only around the shutdown flip and the lost-notify fence in Submit.
  std::mutex wake_mutex_;
  std::condition_variable wake_cv_;
  std::atomic<uint64_t> pending_{0};  // Tasks queued but not yet popped.
  std::atomic<bool> shutdown_{false};

  std::atomic<uint64_t> next_queue_{0};  // Round-robin cursor for external Submit.
  std::atomic<uint64_t> tasks_submitted_{0};
  std::atomic<uint64_t> tasks_executed_{0};
  std::atomic<uint64_t> steals_{0};
  std::atomic<uint64_t> external_busy_ns_{0};
};

// RAII override of ThreadPool::Global(): while alive, every parallel helper that defaults
// to the global pool uses this pool instead. Used by the determinism tests and the
// thread-count benchmarks; overrides nest (restores the previous override on destruction).
class ScopedThreadPool {
 public:
  explicit ScopedThreadPool(int worker_count);
  ~ScopedThreadPool();

  ScopedThreadPool(const ScopedThreadPool&) = delete;
  ScopedThreadPool& operator=(const ScopedThreadPool&) = delete;

  ThreadPool& pool() { return *pool_; }

 private:
  std::unique_ptr<ThreadPool> pool_;
  ThreadPool* previous_;
};

}  // namespace probcon

#endif  // PROBCON_SRC_EXEC_THREAD_POOL_H_
