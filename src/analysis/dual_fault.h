// Dual crash/Byzantine fault analysis (paper §2, point 4: "most nodes fail by crashing but
// from time to time exhibit malicious behavior", and §5's Upright).
//
// Each node has TWO failure probabilities per analysis window: p_crash (fail-stop) and p_byz
// (arbitrary/malicious — e.g. a mercurial core). The paper quotes Google's fleet numbers:
// ~4% annual crash rate but ~0.01% corruption-execution rate. Forcing that world into pure
// CFT is optimistic (a single Byzantine node breaks Raft's safety); pure BFT pays 3f+1
// replication for faults that almost never happen.
//
// Upright's model splits the budget: tolerate up to `u` total failures (liveness) of which
// at most `r` may be Byzantine (safety), with n = 2u + r + 1. This module computes exact
// probabilistic safety/liveness for that family — plus the Raft and PBFT baselines under the
// same dual fault model — using a trinomial count distribution over (crashed, Byzantine)
// node counts.

#ifndef PROBCON_SRC_ANALYSIS_DUAL_FAULT_H_
#define PROBCON_SRC_ANALYSIS_DUAL_FAULT_H_

#include <string>
#include <vector>

#include "src/analysis/reliability.h"
#include "src/prob/kahan.h"
#include "src/prob/probability.h"

namespace probcon {

// Per-node, per-window fault probabilities; the two modes are mutually exclusive (a node
// counts as Byzantine if compromised, else crashed if crashed, else correct).
struct DualFaultProbabilities {
  double crash = 0.0;
  double byzantine = 0.0;
};

// Joint law of (#crashed, #Byzantine) for independent heterogeneous nodes: the trinomial
// analogue of PoissonBinomial. O(N^3) construction, exact.
class DualFaultCounts {
 public:
  explicit DualFaultCounts(const std::vector<DualFaultProbabilities>& nodes);

  int n() const { return n_; }

  // P(#crashed == crashed && #Byzantine == byzantine).
  double Pmf(int crashed, int byzantine) const;

  // P(predicate(crashed, byzantine)) with complement tracking; `predicate` is the GOOD event.
  template <typename Predicate>
  Probability EventProbability(Predicate predicate) const;

 private:
  int n_;
  // pmf_[c * (n+1) + b].
  std::vector<double> pmf_;
};

// Upright-style configuration: n >= 2u + r + 1, r <= u.
struct UprightConfig {
  int n = 0;
  int u = 0;  // Total failures tolerated (liveness).
  int r = 0;  // Byzantine failures tolerated (safety).

  // Minimal cluster for the given budgets: n = 2u + r + 1.
  static UprightConfig ForBudgets(int u, int r);

  std::string Describe() const;
};

// Safe iff #Byzantine <= r; live iff #crashed + #Byzantine <= u (and safe — a protocol whose
// safety broke has no meaningful liveness; matching the paper's S&L accounting).
bool UprightIsSafe(const UprightConfig& config, int byzantine_count);
bool UprightIsLive(const UprightConfig& config, int crashed_count, int byzantine_count);

ReliabilityReport AnalyzeUpright(const UprightConfig& config,
                                 const std::vector<DualFaultProbabilities>& nodes);

// Baselines under the dual model:
//  * Raft: safe iff NO Byzantine node exists (a single equivocator can split the log);
//    live iff correct >= majority.
//  * PBFT (standard quorums): Theorem 3.1 with |Byz| = Byzantine count, and crashed nodes
//    reducing |Correct| for liveness.
ReliabilityReport AnalyzeRaftUnderDualFaults(int n,
                                             const std::vector<DualFaultProbabilities>& nodes);
ReliabilityReport AnalyzePbftUnderDualFaults(const PbftConfig& config,
                                             const std::vector<DualFaultProbabilities>& nodes);

// --- template definition ------------------------------------------------------

template <typename Predicate>
Probability DualFaultCounts::EventProbability(Predicate predicate) const {
  // Accumulate the smaller of {holds, fails} mass for complement precision (same approach
  // as ReliabilityAnalyzer's count DP).
  KahanSum holds;
  KahanSum fails;
  for (int crashed = 0; crashed <= n_; ++crashed) {
    for (int byzantine = 0; byzantine + crashed <= n_; ++byzantine) {
      const double mass = Pmf(crashed, byzantine);
      if (predicate(crashed, byzantine)) {
        holds += mass;
      } else {
        fails += mass;
      }
    }
  }
  if (fails.Total() <= holds.Total()) {
    const double fail_mass = fails.Total();
    return Probability::FromComplement(fail_mass < 0.0 ? 0.0 : fail_mass);
  }
  const double hold_mass = holds.Total();
  return Probability::FromProbability(hold_mass < 0.0 ? 0.0 : hold_mass);
}

}  // namespace probcon

#endif  // PROBCON_SRC_ANALYSIS_DUAL_FAULT_H_
