// Per-round reliability over a RoundSchedule: the paper's one-shot Theorems 3.1/3.2
// re-evaluated for every consensus round as the fleet ages along its fault curves, plus the
// cumulative mission-level aggregates an operator actually plans against.
//
// Two complementary fault regimes are reported side by side:
//
//   per_round    Fresh Bernoulli draws each round (the "Bernoulli Meets PBFT" model): round
//                r is analyzed with the schedule's p^(r) vector alone. mission_live /
//                mission_safe multiply these per-round probabilities, which assumes
//                round-over-round independence — faulty nodes are rejuvenated between
//                rounds (crash-recovery, proactive restarts).
//   cumulative   Fail-stop accumulation: round r is analyzed with q_i^(r) =
//                1 - prod_{s<=r}(1 - p_i^(s)), the probability node i has failed by round
//                r's end with no repair. The last entry is the mission-end report; under
//                fail-stop, "live at every round" equals "live at the last round" because
//                the failed set only grows.
//
// The same schedule drives sim::FailureInjector through RoundSchedule::NodeCurve, so every
// number here is cross-validated against discrete-event campaigns in
// tests/analysis/round_analysis_test.cc.

#ifndef PROBCON_SRC_ANALYSIS_ROUND_ANALYSIS_H_
#define PROBCON_SRC_ANALYSIS_ROUND_ANALYSIS_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "src/analysis/protocol_spec.h"
#include "src/analysis/reliability.h"
#include "src/common/cancellation.h"
#include "src/common/status.h"
#include "src/faultmodel/round_schedule.h"
#include "src/prob/probability.h"

namespace probcon {

struct RoundAnalysis {
  // One report per schedule round, fresh-draw regime.
  std::vector<ReliabilityReport> per_round;
  // One report per schedule round, fail-stop regime (accumulated failure probabilities).
  std::vector<ReliabilityReport> cumulative;
  // P(every round safe/live) under the fresh-draw independence assumption.
  Probability mission_safe;
  Probability mission_live;
  Probability mission_safe_and_live;
};

// Evaluates `config` against every round of `schedule` (config.n must equal schedule.n()).
// Cancellable: polls between rounds and inside each round's evaluation; `progress`, when
// non-null, accumulates evaluated rounds (two regimes per round).
Result<RoundAnalysis> TryAnalyzeRaftRounds(const RaftConfig& config,
                                           const RoundSchedule& schedule,
                                           AnalysisMethod method = AnalysisMethod::kAuto,
                                           const CancelToken* cancel = nullptr,
                                           std::atomic<uint64_t>* progress = nullptr);
Result<RoundAnalysis> TryAnalyzePbftRounds(const PbftConfig& config,
                                           const RoundSchedule& schedule,
                                           AnalysisMethod method = AnalysisMethod::kAuto,
                                           const CancelToken* cancel = nullptr,
                                           std::atomic<uint64_t>* progress = nullptr);

// CHECK-on-error conveniences for examples and tests.
RoundAnalysis AnalyzeRaftRounds(const RaftConfig& config, const RoundSchedule& schedule,
                                AnalysisMethod method = AnalysisMethod::kAuto);
RoundAnalysis AnalyzePbftRounds(const PbftConfig& config, const RoundSchedule& schedule,
                                AnalysisMethod method = AnalysisMethod::kAuto);

}  // namespace probcon

#endif  // PROBCON_SRC_ANALYSIS_ROUND_ANALYSIS_H_
