#include "src/analysis/weighted.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"
#include "src/prob/kahan.h"

namespace probcon {

double WeightedRaftConfig::TotalStake() const {
  KahanSum sum;
  for (const double stake : stakes) {
    CHECK_GE(stake, 0.0);
    sum.Add(stake);
  }
  return sum.Total();
}

bool WeightedRaftConfig::IsStructurallySafe() const {
  return 2.0 * quorum_weight > TotalStake();
}

WeightedRaftConfig WeightedRaftConfig::Uniform(int n) {
  CHECK_GT(n, 0);
  WeightedRaftConfig config;
  config.stakes.assign(n, 1.0);
  config.quorum_weight = std::floor(n / 2.0) + 1.0;
  return config;
}

WeightedRaftConfig WeightedRaftConfig::StakeByReliability(
    const std::vector<double>& failure_probabilities) {
  CHECK(!failure_probabilities.empty());
  WeightedRaftConfig config;
  for (double p : failure_probabilities) {
    CHECK(p >= 0.0 && p <= 1.0);
    p = std::min(std::max(p, 1e-9), 1.0 - 1e-9);
    // Nodes with p >= 0.5 carry negative log-odds; clamp to a tiny positive stake — weights
    // must stay nonnegative for the 2*quorum > total intersection argument to hold.
    config.stakes.push_back(std::max(std::log((1.0 - p) / p), 1e-3));
  }
  // Smallest structurally safe threshold (with a hair of slack for float comparisons).
  config.quorum_weight = config.TotalStake() / 2.0 * (1.0 + 1e-9) +
                         *std::min_element(config.stakes.begin(), config.stakes.end()) * 1e-6;
  return config;
}

ReliabilityReport AnalyzeWeightedRaft(const WeightedRaftConfig& config,
                                      const std::vector<double>& failure_probabilities) {
  CHECK_EQ(config.stakes.size(), failure_probabilities.size());
  const int n = static_cast<int>(config.stakes.size());
  CHECK_LE(n, 25) << "weighted analysis enumerates 2^N configurations";

  ReliabilityReport report;
  const bool structurally_safe = config.IsStructurallySafe();
  report.safe = structurally_safe ? Probability::One() : Probability::Zero();

  const auto analyzer = ReliabilityAnalyzer::ForIndependentNodes(failure_probabilities);
  const ConfigurationPredicate live([&config](FailureConfiguration failed, int nodes) {
    KahanSum surviving;
    for (int i = 0; i < nodes; ++i) {
      if (!NodeFailed(failed, i)) {
        surviving.Add(config.stakes[i]);
      }
    }
    return surviving.Total() >= config.quorum_weight;
  });
  report.live = analyzer.EventProbability(live);
  report.safe_and_live = structurally_safe ? report.live : Probability::Zero();
  return report;
}

}  // namespace probcon
