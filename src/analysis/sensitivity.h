// Sensitivity analysis: which node's fault curve matters most?
//
// Operators acting on the paper's advice ("replace the failure-prone nodes", "pick the most
// sustainable hardware with no reliability trade-off") need to know where a cluster's
// failure mass actually comes from. This module differentiates the safe-and-live complement
// with respect to each node's failure probability — for the Poisson-binomial analysis this
// derivative is EXACT: conditioning on node i,
//
//   complement(p) = p_i * complement(rest | node i failed)
//                 + (1 - p_i) * complement(rest | node i correct)
//
// is linear in p_i, so d(complement)/dp_i is the difference of the two conditionals.

#ifndef PROBCON_SRC_ANALYSIS_SENSITIVITY_H_
#define PROBCON_SRC_ANALYSIS_SENSITIVITY_H_

#include <vector>

#include "src/analysis/reliability.h"

namespace probcon {

struct NodeSensitivity {
  int node = 0;
  // d(unreliability)/dp_i, exact. Larger = this node's reliability matters more.
  double derivative = 0.0;
  // Unreliability if this node were perfect (p_i = 0): the best achievable by fixing it.
  double complement_if_perfect = 0.0;
  // Unreliability if this node were certainly failed (p_i = 1).
  double complement_if_failed = 0.0;
};

// Per-node sensitivities of P(NOT predicate) for a count predicate over independent nodes.
// `predicate` is the GOOD event (e.g. a Raft liveness predicate).
std::vector<NodeSensitivity> AnalyzeSensitivity(
    const std::vector<double>& failure_probabilities, const FailurePredicate& predicate);

// Convenience: sensitivities of standard-quorum Raft's safe-and-live probability.
std::vector<NodeSensitivity> RaftSensitivity(const std::vector<double>& failure_probabilities);

}  // namespace probcon

#endif  // PROBCON_SRC_ANALYSIS_SENSITIVITY_H_
