#include "src/analysis/dual_fault.h"

#include <algorithm>
#include <sstream>

#include "src/common/check.h"

namespace probcon {

DualFaultCounts::DualFaultCounts(const std::vector<DualFaultProbabilities>& nodes)
    : n_(static_cast<int>(nodes.size())) {
  CHECK_GT(n_, 0);
  for (const auto& node : nodes) {
    CHECK(node.crash >= 0.0 && node.byzantine >= 0.0 &&
          node.crash + node.byzantine <= 1.0)
        << "invalid dual fault probabilities (" << node.crash << "," << node.byzantine << ")";
  }
  // Trinomial convolution DP over (crashed, byzantine) counts.
  const int stride = n_ + 1;
  pmf_.assign(static_cast<size_t>(stride) * stride, 0.0);
  pmf_[0] = 1.0;
  int upper = 0;
  for (const auto& node : nodes) {
    const double ok = 1.0 - node.crash - node.byzantine;
    ++upper;
    for (int crashed = upper; crashed >= 0; --crashed) {
      for (int byzantine = upper - crashed; byzantine >= 0; --byzantine) {
        double mass = pmf_[crashed * stride + byzantine] * ok;
        if (crashed > 0) {
          mass += pmf_[(crashed - 1) * stride + byzantine] * node.crash;
        }
        if (byzantine > 0) {
          mass += pmf_[crashed * stride + (byzantine - 1)] * node.byzantine;
        }
        pmf_[crashed * stride + byzantine] = mass;
      }
    }
  }
}

double DualFaultCounts::Pmf(int crashed, int byzantine) const {
  if (crashed < 0 || byzantine < 0 || crashed + byzantine > n_) {
    return 0.0;
  }
  return pmf_[crashed * (n_ + 1) + byzantine];
}

UprightConfig UprightConfig::ForBudgets(int u, int r) {
  CHECK_GE(u, 0);
  CHECK(r >= 0 && r <= u) << "Upright requires r <= u";
  UprightConfig config;
  config.u = u;
  config.r = r;
  config.n = 2 * u + r + 1;
  return config;
}

std::string UprightConfig::Describe() const {
  std::ostringstream os;
  os << "upright(n=" << n << ", u=" << u << ", r=" << r << ")";
  return os.str();
}

bool UprightIsSafe(const UprightConfig& config, int byzantine_count) {
  CHECK(byzantine_count >= 0 && byzantine_count <= config.n);
  return byzantine_count <= config.r;
}

bool UprightIsLive(const UprightConfig& config, int crashed_count, int byzantine_count) {
  CHECK(crashed_count >= 0 && byzantine_count >= 0 &&
        crashed_count + byzantine_count <= config.n);
  return UprightIsSafe(config, byzantine_count) &&
         crashed_count + byzantine_count <= config.u;
}

ReliabilityReport AnalyzeUpright(const UprightConfig& config,
                                 const std::vector<DualFaultProbabilities>& nodes) {
  CHECK_EQ(config.n, static_cast<int>(nodes.size()));
  CHECK_GE(config.n, 2 * config.u + config.r + 1) << "understaffed Upright configuration";
  const DualFaultCounts counts(nodes);
  ReliabilityReport report;
  report.safe = counts.EventProbability(
      [&config](int /*crashed*/, int byzantine) { return UprightIsSafe(config, byzantine); });
  report.live = counts.EventProbability([&config](int crashed, int byzantine) {
    return UprightIsLive(config, crashed, byzantine);
  });
  // Live implies safe here, so the intersection is liveness.
  report.safe_and_live = report.live;
  return report;
}

ReliabilityReport AnalyzeRaftUnderDualFaults(
    int n, const std::vector<DualFaultProbabilities>& nodes) {
  CHECK_EQ(n, static_cast<int>(nodes.size()));
  const DualFaultCounts counts(nodes);
  const int majority = n / 2 + 1;
  ReliabilityReport report;
  // CFT protocols have no defense against even one equivocator.
  report.safe = counts.EventProbability(
      [](int /*crashed*/, int byzantine) { return byzantine == 0; });
  report.live = counts.EventProbability([n, majority](int crashed, int byzantine) {
    return n - crashed - byzantine >= majority;
  });
  report.safe_and_live = counts.EventProbability([n, majority](int crashed, int byzantine) {
    return byzantine == 0 && n - crashed >= majority;
  });
  return report;
}

ReliabilityReport AnalyzePbftUnderDualFaults(
    const PbftConfig& config, const std::vector<DualFaultProbabilities>& nodes) {
  CHECK_EQ(config.n, static_cast<int>(nodes.size()));
  const DualFaultCounts counts(nodes);
  auto safe = [&config](int /*crashed*/, int byzantine) {
    return PbftIsSafe(config, byzantine);
  };
  // Theorem 3.1's liveness, with crashed nodes additionally depleting |Correct|.
  auto live = [&config](int crashed, int byzantine) {
    const int correct = config.n - crashed - byzantine;
    const int max_quorum = std::max({config.q_eq, config.q_per, config.q_vc});
    return byzantine <= config.q_vc - config.q_vc_t && correct >= max_quorum &&
           byzantine < config.q_vc_t;
  };
  ReliabilityReport report;
  report.safe = counts.EventProbability(safe);
  report.live = counts.EventProbability(live);
  report.safe_and_live = counts.EventProbability([&](int crashed, int byzantine) {
    return safe(crashed, byzantine) && live(crashed, byzantine);
  });
  return report;
}

}  // namespace probcon
