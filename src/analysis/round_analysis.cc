#include "src/analysis/round_analysis.h"

#include <utility>
#include <vector>

#include "src/common/check.h"

namespace probcon {
namespace {

// Per-round q_i vectors under fail-stop accumulation: q_i^(r) = 1 - prod_{s<=r}(1 - p^(s)).
// Survival is carried in product form per node, so each round's vector is exact in the
// complement — the quantity the near-one reliability math cares about.
std::vector<std::vector<double>> AccumulatedProbabilities(const RoundSchedule& schedule) {
  std::vector<double> survival(static_cast<size_t>(schedule.n()), 1.0);
  std::vector<std::vector<double>> accumulated;
  accumulated.reserve(static_cast<size_t>(schedule.rounds()));
  for (int r = 0; r < schedule.rounds(); ++r) {
    const std::vector<double>& p = schedule.RoundProbabilities(r);
    std::vector<double> q(static_cast<size_t>(schedule.n()), 0.0);
    for (int i = 0; i < schedule.n(); ++i) {
      survival[static_cast<size_t>(i)] *= 1.0 - p[static_cast<size_t>(i)];
      q[static_cast<size_t>(i)] = 1.0 - survival[static_cast<size_t>(i)];
    }
    accumulated.push_back(std::move(q));
  }
  return accumulated;
}

// Evaluates one round's report for either protocol (overloads picked by config type). Raft
// safety is structural; PBFT safety and both liveness laws come from the failure-count DP
// over the round's vector.
Result<ReliabilityReport> TryAnalyzeOneRound(const RaftConfig& config,
                                             std::vector<double> probabilities,
                                             AnalysisMethod method, const CancelToken* cancel) {
  const ReliabilityAnalyzer analyzer =
      ReliabilityAnalyzer::ForIndependentNodes(std::move(probabilities));
  ReliabilityReport report;
  const bool structurally_safe = RaftIsSafeStructurally(config);
  report.safe = structurally_safe ? Probability::One() : Probability::Zero();
  auto live = analyzer.TryEventProbability(MakeRaftLivePredicate(config), method, cancel);
  if (!live.ok()) {
    return live.status();
  }
  report.live = *live;
  report.safe_and_live = structurally_safe ? report.live : Probability::Zero();
  return report;
}

Result<ReliabilityReport> TryAnalyzeOneRound(const PbftConfig& config,
                                             std::vector<double> probabilities,
                                             AnalysisMethod method, const CancelToken* cancel) {
  const ReliabilityAnalyzer analyzer =
      ReliabilityAnalyzer::ForIndependentNodes(std::move(probabilities));
  ReliabilityReport report;
  auto safe = analyzer.TryEventProbability(MakePbftSafePredicate(config), method, cancel);
  if (!safe.ok()) {
    return safe.status();
  }
  auto live = analyzer.TryEventProbability(MakePbftLivePredicate(config), method, cancel);
  if (!live.ok()) {
    return live.status();
  }
  auto both =
      analyzer.TryEventProbability(MakePbftSafeAndLivePredicate(config), method, cancel);
  if (!both.ok()) {
    return both.status();
  }
  report.safe = *safe;
  report.live = *live;
  report.safe_and_live = *both;
  return report;
}

template <typename Config>
Result<RoundAnalysis> TryAnalyzeRounds(const Config& config, const RoundSchedule& schedule,
                                       AnalysisMethod method, const CancelToken* cancel,
                                       std::atomic<uint64_t>* progress) {
  CHECK_EQ(config.n, schedule.n());
  const std::vector<std::vector<double>> accumulated = AccumulatedProbabilities(schedule);
  RoundAnalysis analysis;
  analysis.per_round.reserve(static_cast<size_t>(schedule.rounds()));
  analysis.cumulative.reserve(static_cast<size_t>(schedule.rounds()));
  analysis.mission_safe = Probability::One();
  analysis.mission_live = Probability::One();
  analysis.mission_safe_and_live = Probability::One();
  for (int r = 0; r < schedule.rounds(); ++r) {
    if (IsCancelled(cancel)) {
      return CancelledError("round analysis cancelled");
    }
    auto fresh = TryAnalyzeOneRound(config, schedule.RoundProbabilities(r), method, cancel);
    if (!fresh.ok()) {
      return fresh.status();
    }
    auto fail_stop =
        TryAnalyzeOneRound(config, accumulated[static_cast<size_t>(r)], method, cancel);
    if (!fail_stop.ok()) {
      return fail_stop.status();
    }
    // And() multiplies in complement-aware form, so a mission of thousands of >5-nines
    // rounds keeps its failure mass intact instead of rounding back to 1.0.
    analysis.mission_safe = analysis.mission_safe.And(fresh->safe);
    analysis.mission_live = analysis.mission_live.And(fresh->live);
    analysis.mission_safe_and_live = analysis.mission_safe_and_live.And(fresh->safe_and_live);
    analysis.per_round.push_back(*std::move(fresh));
    analysis.cumulative.push_back(*std::move(fail_stop));
    if (progress != nullptr) {
      progress->fetch_add(2, std::memory_order_relaxed);
    }
  }
  return analysis;
}

}  // namespace

Result<RoundAnalysis> TryAnalyzeRaftRounds(const RaftConfig& config,
                                           const RoundSchedule& schedule,
                                           AnalysisMethod method, const CancelToken* cancel,
                                           std::atomic<uint64_t>* progress) {
  return TryAnalyzeRounds(config, schedule, method, cancel, progress);
}

Result<RoundAnalysis> TryAnalyzePbftRounds(const PbftConfig& config,
                                           const RoundSchedule& schedule,
                                           AnalysisMethod method, const CancelToken* cancel,
                                           std::atomic<uint64_t>* progress) {
  return TryAnalyzeRounds(config, schedule, method, cancel, progress);
}

RoundAnalysis AnalyzeRaftRounds(const RaftConfig& config, const RoundSchedule& schedule,
                                AnalysisMethod method) {
  auto analysis = TryAnalyzeRaftRounds(config, schedule, method);
  CHECK(analysis.ok()) << analysis.status().ToString();
  return *std::move(analysis);
}

RoundAnalysis AnalyzePbftRounds(const PbftConfig& config, const RoundSchedule& schedule,
                                AnalysisMethod method) {
  auto analysis = TryAnalyzePbftRounds(config, schedule, method);
  CHECK(analysis.ok()) << analysis.status().ToString();
  return *std::move(analysis);
}

}  // namespace probcon
