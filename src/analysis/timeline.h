// Reliability timelines: how a cluster's probabilistic guarantees EVOLVE as its nodes age
// (paper §2, "fault likelihood evolves over time", and §4's preemptive-reconfiguration loop).
//
// The f-threshold model is static; fault curves are not. Given per-node curves and current
// ages, this module evaluates the per-window failure probabilities at a series of future
// instants and recomputes the Raft reliability report at each — producing the "cluster nines
// over the fleet's lifetime" series that makes bathtub wear-out and rollout spikes visible
// at the system level.

#ifndef PROBCON_SRC_ANALYSIS_TIMELINE_H_
#define PROBCON_SRC_ANALYSIS_TIMELINE_H_

#include <vector>

#include "src/analysis/reliability.h"
#include "src/faultmodel/fault_curve.h"

namespace probcon {

struct TimelinePoint {
  double time = 0.0;  // Offset from now.
  std::vector<double> window_failure_probabilities;
  ReliabilityReport report;
};

struct TimelineOptions {
  double horizon = 0.0;       // How far into the future to sweep.
  int steps = 0;              // Number of evaluation instants (>= 2, includes both ends).
  double window = 0.0;        // Per-instant analysis window (e.g. one month).
};

// Evaluates standard-quorum Raft reliability at `steps` instants over [0, horizon].
// `curves[i]` (borrowed) drives node i, whose age at instant t is `ages[i] + t`.
std::vector<TimelinePoint> RaftReliabilityTimeline(const RaftConfig& config,
                                                   const std::vector<const FaultCurve*>& curves,
                                                   const std::vector<double>& ages,
                                                   const TimelineOptions& options);

// The instant (from the timeline above) at which safe-and-live first drops below `target`;
// -1.0 if it never does. This is the signal a preemptive reconfigurer acts on.
double FirstTimeBelowTarget(const std::vector<TimelinePoint>& timeline,
                            const Probability& target);

}  // namespace probcon

#endif  // PROBCON_SRC_ANALYSIS_TIMELINE_H_
