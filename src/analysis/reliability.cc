#include "src/analysis/reliability.h"

#include <algorithm>

#include "src/common/check.h"
#include "src/prob/kahan.h"
#include "src/prob/poisson_binomial.h"
#include "src/quorum/quorum_system.h"

namespace probcon {
namespace {

// Evaluates a count predicate against the Poisson-binomial failure-count law.
Probability CountDpProbability(const FailurePredicate& predicate,
                               const IndependentFailureModel& model) {
  const int n = model.n();
  const PoissonBinomial counts(model.probabilities());
  // Sum the smaller of {holds, fails} mass for complement accuracy.
  KahanSum holds_mass;
  KahanSum fails_mass;
  for (int k = 0; k <= n; ++k) {
    const auto verdict = predicate.HoldsForCount(k, n);
    CHECK(verdict.has_value());
    if (*verdict) {
      holds_mass.Add(counts.Pmf(k));
    } else {
      fails_mass.Add(counts.Pmf(k));
    }
  }
  const double holds = holds_mass.Total();
  const double fails = fails_mass.Total();
  if (fails <= holds) {
    return Probability::FromComplement(std::max(0.0, fails));
  }
  return Probability::FromProbability(std::max(0.0, holds));
}

Probability ExactEnumerationProbability(const FailurePredicate& predicate,
                                        const JointFailureModel& model) {
  const int n = model.n();
  CHECK_LE(n, 25) << "exact enumeration limited to n <= 25";
  KahanSum holds_mass;
  KahanSum fails_mass;
  const FailureConfiguration full = FullNodeSet(n);
  FailureConfiguration config = 0;
  while (true) {
    const auto prob = model.ConfigurationProbability(config);
    CHECK(prob.has_value()) << "model" << model.Describe()
                            << "lacks exact configuration probabilities";
    if (predicate.Holds(config, n)) {
      holds_mass.Add(*prob);
    } else {
      fails_mass.Add(*prob);
    }
    if (config == full) {
      break;
    }
    ++config;
  }
  const double holds = holds_mass.Total();
  const double fails = fails_mass.Total();
  if (fails <= holds) {
    return Probability::FromComplement(std::max(0.0, fails));
  }
  return Probability::FromProbability(std::max(0.0, holds));
}

}  // namespace

ReliabilityAnalyzer::ReliabilityAnalyzer(std::unique_ptr<JointFailureModel> model)
    : model_(std::move(model)) {
  CHECK(model_ != nullptr);
}

ReliabilityAnalyzer ReliabilityAnalyzer::ForIndependentNodes(
    std::vector<double> failure_probabilities) {
  return ReliabilityAnalyzer(
      std::make_unique<IndependentFailureModel>(std::move(failure_probabilities)));
}

ReliabilityAnalyzer ReliabilityAnalyzer::ForUniformNodes(int n, double p) {
  return ForIndependentNodes(std::vector<double>(static_cast<size_t>(n), p));
}

Probability ReliabilityAnalyzer::EventProbability(const FailurePredicate& predicate,
                                                  AnalysisMethod method) const {
  const auto* independent = dynamic_cast<const IndependentFailureModel*>(model_.get());
  const bool count_only = predicate.HoldsForCount(0, n()).has_value();

  if (method == AnalysisMethod::kAuto) {
    if (count_only && independent != nullptr) {
      method = AnalysisMethod::kCountDp;
    } else {
      method = AnalysisMethod::kExact;
    }
  }
  switch (method) {
    case AnalysisMethod::kCountDp:
      CHECK(count_only) << "predicate is not count-only";
      CHECK(independent != nullptr) << "count DP requires an independent model";
      return CountDpProbability(predicate, *independent);
    case AnalysisMethod::kExact:
      return ExactEnumerationProbability(predicate, *model_);
    case AnalysisMethod::kMonteCarlo: {
      const ConfidenceInterval ci = EstimateEventProbability(predicate);
      return Probability::FromProbability(ci.point);
    }
    case AnalysisMethod::kAuto:
      break;
  }
  CHECK(false) << "unreachable";
  return Probability::Zero();
}

ConfidenceInterval ReliabilityAnalyzer::EstimateEventProbability(
    const FailurePredicate& predicate, const MonteCarloOptions& options) const {
  CHECK_GT(options.trials, 0u);
  Rng rng(options.seed);
  uint64_t holds = 0;
  for (uint64_t t = 0; t < options.trials; ++t) {
    const FailureConfiguration config = model_->Sample(rng);
    if (predicate.Holds(config, n())) {
      ++holds;
    }
  }
  return WilsonInterval(holds, options.trials);
}

// ---------------------------------------------------------------------------
// Protocol reports

CountPredicate MakeRaftLivePredicate(RaftConfig config) {
  return CountPredicate([config](int failure_count, int n) {
    CHECK_EQ(n, config.n);
    return RaftIsLive(config, n - failure_count);
  });
}

CountPredicate MakePbftSafePredicate(PbftConfig config) {
  return CountPredicate([config](int failure_count, int n) {
    CHECK_EQ(n, config.n);
    return PbftIsSafe(config, failure_count);
  });
}

CountPredicate MakePbftLivePredicate(PbftConfig config) {
  return CountPredicate([config](int failure_count, int n) {
    CHECK_EQ(n, config.n);
    return PbftIsLive(config, failure_count);
  });
}

CountPredicate MakePbftSafeAndLivePredicate(PbftConfig config) {
  return CountPredicate([config](int failure_count, int n) {
    CHECK_EQ(n, config.n);
    return PbftIsSafe(config, failure_count) && PbftIsLive(config, failure_count);
  });
}

ReliabilityReport AnalyzeRaft(const RaftConfig& config, const ReliabilityAnalyzer& analyzer,
                              AnalysisMethod method) {
  CHECK_EQ(config.n, analyzer.n());
  ReliabilityReport report;
  const bool structurally_safe = RaftIsSafeStructurally(config);
  report.safe = structurally_safe ? Probability::One() : Probability::Zero();
  report.live = analyzer.EventProbability(MakeRaftLivePredicate(config), method);
  report.safe_and_live = structurally_safe ? report.live : Probability::Zero();
  return report;
}

ReliabilityReport AnalyzePbft(const PbftConfig& config, const ReliabilityAnalyzer& analyzer,
                              AnalysisMethod method) {
  CHECK_EQ(config.n, analyzer.n());
  ReliabilityReport report;
  report.safe = analyzer.EventProbability(MakePbftSafePredicate(config), method);
  report.live = analyzer.EventProbability(MakePbftLivePredicate(config), method);
  report.safe_and_live =
      analyzer.EventProbability(MakePbftSafeAndLivePredicate(config), method);
  return report;
}

}  // namespace probcon
